(** Per-replica measurement: release-commit throughput and latency, stage
    byte counts, speculative-memory accounting, replay counters.

    Throughput and latency are always computed over {e release-committed}
    transactions — the paper's definition (§6.1): a transaction counts
    when the watermark passes it and its result goes back to the client. *)

type t

val create : Sim.Engine.t -> t

val note_executed : t -> unit
(** Execution commit (speculative) — for pipeline-depth accounting. *)

val note_user_abort : t -> unit

val note_submitted : t -> bytes:int -> unit
(** A transaction's log entered a batch: bytes start accumulating as
    speculative (delayed-commit) memory (§5). *)

val note_serialized : t -> bytes:int -> unit

val note_replicated : t -> bytes:int -> unit
(** One batch flushed into a proposed log entry of [bytes] wire bytes;
    also counts the entry for the average-batch-size gauge. *)

val note_deadline_flush : t -> unit
(** Adaptive batching: a batch was flushed by its
    [target_batch_delay_ns] deadline event rather than by filling. *)

val note_event_release : t -> unit
(** A durability notification advanced the watermark and drove a release
    pass directly (event-driven release, Adaptive policy). *)

val note_released : t -> start:int -> latency:int -> bytes:int -> unit
(** Release commit: count it, record client latency, release its bytes.
    [start] is the transaction's execution-start time: samples whose
    transaction began before the current measurement window opened (see
    {!reset_window}) are excluded from the latency histogram — their
    latency includes pre-warm-up queueing — but still count toward
    throughput. *)

val note_dropped_speculative : t -> bytes:int -> unit
(** Failover dropped a speculative transaction (never released). *)

val note_client_request : t -> unit
(** A [Client_req] arrived at this replica (any disposition). *)

val note_cached_reply : t -> unit
(** A retried request was answered from the session table without
    re-execution — the dedup path. *)

val note_busy_reply : t -> unit
(** Admission control shed a request with [Busy]. *)

val note_redirect : t -> unit
(** A non-serving replica answered [Not_leader]. *)

val note_parked : t -> ns:int -> unit
(** A client request that had been parked (retry limit exhausted) finally
    resolved after spending [ns] parked in total; counts the request and
    accumulates the parked time. Recorded client-side — pair it with the
    [Client_park] stage histogram for the distribution. *)

val max_stages : int

val note_stage : t -> stage:int -> latency:int -> unit
(** Record one pipeline-stage latency sample. [stage] is a
    {!Trace.stage_index}; out-of-range indices are ignored. Fed by
    {!Trace} when a sampled transaction's span completes. *)

val stage_hist : t -> int -> Sim.Metrics.Hist.t
(** Latency histogram of one stage (windowed; cleared by
    {!reset_window}).
    @raise Invalid_argument outside [0, max_stages). *)

val note_replayed : t -> txns:int -> writes:int -> unit
val sample_speculative_memory : t -> unit
(** Called at each watermark tick; feeds the average-memory gauge. *)

val released : t -> int
val release_series : t -> Sim.Metrics.Series.t
(** Releases bucketed per 100 ms of virtual time (failover timeline). *)

val latency : t -> Sim.Metrics.Hist.t
val executed : t -> int
val user_aborts : t -> int
val replayed_txns : t -> int
val replayed_writes : t -> int
val client_requests : t -> int
val cached_replies : t -> int
val busy_replies : t -> int
val redirects : t -> int

val parked_ns : t -> int
(** Total ns resolved client requests spent parked (availability gap). *)

val parked_requests : t -> int
(** Resolved client requests that were parked at least once. *)

val serialized_bytes : t -> int
val replicated_bytes : t -> int
val speculative_bytes : t -> int
(** Currently accumulated delayed-commit memory. *)

val entries_flushed : t -> int
(** Log entries proposed this window ([released / entries_flushed] is the
    realized average batch size). *)

val deadline_flushes : t -> int
val event_releases : t -> int

val note_read_served : t -> unit
(** A snapshot read was served with [Ok_read] from this replica. *)

val note_read_parked : t -> unit
(** A read request was refused (no valid lease, or retry budget
    exhausted) — the replica answered [Busy]. *)

val note_read_redirect : t -> unit
(** A read request was answered [Not_leader] (redirect to a serving
    replica). *)

val note_read_miss : t -> unit
(** A pinned read hit a reclaimed version ({!Silo.Db.Snapshot_miss}) and
    was retried at a fresher pin. *)

val reads_served : t -> int
val reads_parked : t -> int
val reads_redirected : t -> int
val read_misses : t -> int

val avg_speculative_bytes : t -> float
val peak_speculative_bytes : t -> int

val throughput : t -> start:int -> stop:int -> float
(** Released transactions per virtual second over the window. *)

val reset_window : t -> unit
(** Zero the windowed counters (throughput, latency, series, stage
    histograms) without touching gauges — call after warm-up. Also marks
    the window start: later releases of transactions that {e began}
    before this moment are excluded from the latency histograms. *)
