type t = {
  cfg : Config.t;
  eng : Sim.Engine.t;
  net : Paxos.Msg.t Sim.Net.t;
  replicas : Replica.t array;
  mutable w_start : int;
  mutable w_stop : int;
}

let create ?(initial_leader = Some 0) cfg app =
  Config.validate cfg;
  let eng = Sim.Engine.create ~seed:cfg.Config.seed () in
  let net = Sim.Net.create eng ~nodes:cfg.Config.replicas ~latency:cfg.Config.net_latency in
  let replicas =
    Array.init cfg.Config.replicas (fun id ->
        Replica.create cfg eng net ~id ~app ?initial_leader ())
  in
  { cfg; eng; net; replicas; w_start = 0; w_stop = 0 }

let engine t = t.eng
let network t = t.net
let config t = t.cfg
let replicas t = t.replicas
let replica t i = t.replicas.(i)

let leader t =
  Array.to_list t.replicas
  |> List.find_opt (fun r -> Replica.is_serving r && Replica.is_alive r)

let run t ?(warmup = 0) ~duration () =
  if warmup > 0 then begin
    Sim.Engine.run ~until:(Sim.Engine.now t.eng + warmup) t.eng;
    Array.iter
      (fun r ->
        Stats.reset_window (Replica.stats r);
        Sim.Cpu.reset_busy (Replica.cpu r))
      t.replicas
  end;
  t.w_start <- Sim.Engine.now t.eng;
  Sim.Engine.run ~until:(t.w_start + duration) t.eng;
  t.w_stop <- Sim.Engine.now t.eng

let crash_replica t i =
  Sim.Net.crash t.net i;
  Replica.crash t.replicas.(i)

let window t = (t.w_start, t.w_stop)

let released t =
  Array.fold_left (fun acc r -> acc + Stats.released (Replica.stats r)) 0 t.replicas

let throughput t =
  let dt = t.w_stop - t.w_start in
  if dt <= 0 then 0.0 else float_of_int (released t) *. 1e9 /. float_of_int dt

let latency t =
  Sim.Metrics.Hist.merge
    (Array.to_list t.replicas |> List.map (fun r -> Stats.latency (Replica.stats r)))

let release_rate t =
  let tbl = Hashtbl.create 64 in
  Array.iter
    (fun r ->
      List.iter
        (fun (sec, rate) ->
          let cur = match Hashtbl.find_opt tbl sec with Some v -> v | None -> 0.0 in
          Hashtbl.replace tbl sec (cur +. rate))
        (Sim.Metrics.Series.rate_per_sec (Stats.release_series (Replica.stats r))))
    t.replicas;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let executed t =
  Array.fold_left (fun acc r -> acc + Stats.executed (Replica.stats r)) 0 t.replicas

let user_aborts t =
  Array.fold_left (fun acc r -> acc + Stats.user_aborts (Replica.stats r)) 0 t.replicas
