type t = {
  cfg : Config.t;
  eng : Sim.Engine.t;
  net : Paxos.Msg.t Sim.Net.t;
  app : App.t;
  on_durable :
    (replica:int -> stream:int -> idx:int -> Store.Wire.entry -> unit) option;
  replicas : Replica.t array;
  mutable w_start : int;
  mutable w_stop : int;
}

let create ?(initial_leader = Some 0) ?on_durable cfg app =
  Config.validate cfg;
  let eng = Sim.Engine.create ~seed:cfg.Config.seed () in
  (* Client sessions live on the same net, as nodes
     [replicas .. replicas+clients-1]: their links share the latency and
     fault model, so loss/dup/reorder exercises the retry + dedup path. *)
  let net =
    Sim.Net.create eng
      ~nodes:(cfg.Config.replicas + cfg.Config.clients)
      ~latency:cfg.Config.net_latency
  in
  let hook id =
    Option.map (fun f ~stream ~idx entry -> f ~replica:id ~stream ~idx entry) on_durable
  in
  let replicas =
    Array.init cfg.Config.replicas (fun id ->
        Replica.create cfg eng net ~id ~app ?initial_leader ?on_durable:(hook id) ())
  in
  { cfg; eng; net; app; on_durable; replicas; w_start = 0; w_stop = 0 }

let engine t = t.eng
let network t = t.net
let config t = t.cfg
let replicas t = t.replicas
let replica t i = t.replicas.(i)

let leader t =
  Array.to_list t.replicas
  |> List.find_opt (fun r -> Replica.is_serving r && Replica.is_alive r)

let run t ?(warmup = 0) ~duration () =
  if warmup > 0 then begin
    Sim.Engine.run ~until:(Sim.Engine.now t.eng + warmup) t.eng;
    Array.iter
      (fun r ->
        Stats.reset_window (Replica.stats r);
        Sim.Cpu.reset_busy (Replica.cpu r))
      t.replicas
  end;
  t.w_start <- Sim.Engine.now t.eng;
  Sim.Engine.run ~until:(t.w_start + duration) t.eng;
  t.w_stop <- Sim.Engine.now t.eng

let crash_replica t i =
  Sim.Net.crash t.net i;
  Replica.crash t.replicas.(i)

let hook t id =
  Option.map
    (fun f ~stream ~idx entry -> f ~replica:id ~stream ~idx entry)
    t.on_durable

(* Crash-recovery: a restarted machine keeps nothing — it is rebuilt from
   scratch (fresh database, fresh streams), catches up from the per-stream
   union of every alive replica's journal, and rejoins as a follower; the
   remaining gap closes through the ordinary fetch path.

   A *voluntary* rebuild of a still-alive replica (a tainted ex-leader) is
   different: only its database is suspect. Its own journal stays in the
   donor set, and its Paxos acceptor state — accepted-but-uncommitted
   slots, granted vote — is salvaged into the fresh replica, because an
   accepted slot here may be the last surviving copy of an entry committed
   at a since-dead leader; wiping it would let the next Prepare quorum
   no-op-fill a chosen slot. *)
let restart_replica t i =
  let old = t.replicas.(i) in
  let was_alive = Replica.is_alive old in
  if was_alive then begin
    Sim.Net.crash t.net i;
    Replica.crash old
  end;
  let donors =
    Array.to_list t.replicas
    |> List.filter (fun r -> Replica.id r <> i && Replica.is_alive r)
  in
  let donors = if was_alive then old :: donors else donors in
  Sim.Net.recover t.net i;
  let r = Replica.create t.cfg t.eng t.net ~id:i ~app:t.app ?on_durable:(hook t i) () in
  Replica.catch_up_from r ~donors;
  if was_alive then Replica.salvage_protocol_state r ~old;
  t.replicas.(i) <- r

let window t = (t.w_start, t.w_stop)

let released t =
  Array.fold_left (fun acc r -> acc + Stats.released (Replica.stats r)) 0 t.replicas

let throughput t =
  let dt = t.w_stop - t.w_start in
  if dt <= 0 then 0.0 else float_of_int (released t) *. 1e9 /. float_of_int dt

let latency t =
  Sim.Metrics.Hist.merge
    (Array.to_list t.replicas |> List.map (fun r -> Stats.latency (Replica.stats r)))

let release_rate t =
  let tbl = Hashtbl.create 64 in
  Array.iter
    (fun r ->
      List.iter
        (fun (sec, rate) ->
          let cur = match Hashtbl.find_opt tbl sec with Some v -> v | None -> 0.0 in
          Hashtbl.replace tbl sec (cur +. rate))
        (Sim.Metrics.Series.rate_per_sec (Stats.release_series (Replica.stats r))))
    t.replicas;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let stage_breakdown t =
  List.filter_map
    (fun stage ->
      let idx = Trace.stage_index stage in
      let h =
        Sim.Metrics.Hist.merge
          (Array.to_list t.replicas
          |> List.map (fun r -> Stats.stage_hist (Replica.stats r) idx))
      in
      let n = Sim.Metrics.Hist.count h in
      if n = 0 then None
      else
        Some
          ( Trace.stage_name stage,
            n,
            Sim.Metrics.Hist.percentile h 50.0,
            Sim.Metrics.Hist.percentile h 95.0,
            Sim.Metrics.Hist.percentile h 99.0 ))
    Trace.all_stages

let executed t =
  Array.fold_left (fun acc r -> acc + Stats.executed (Replica.stats r)) 0 t.replicas

let user_aborts t =
  Array.fold_left (fun acc r -> acc + Stats.user_aborts (Replica.stats r)) 0 t.replicas

(* Batching-pipeline diagnostics, summed across replicas. *)
let entries_flushed t =
  Array.fold_left
    (fun acc r -> acc + Stats.entries_flushed (Replica.stats r))
    0 t.replicas

let deadline_flushes t =
  Array.fold_left
    (fun acc r -> acc + Stats.deadline_flushes (Replica.stats r))
    0 t.replicas

let event_releases t =
  Array.fold_left
    (fun acc r -> acc + Stats.event_releases (Replica.stats r))
    0 t.replicas

(* Follower-replay diagnostics. *)
let replayed_txns t =
  Array.fold_left
    (fun acc r -> acc + Stats.replayed_txns (Replica.stats r))
    0 t.replicas

let replay_lag t =
  let h =
    Sim.Metrics.Hist.merge
      (Array.to_list t.replicas
      |> List.map (fun r ->
             Stats.stage_hist (Replica.stats r) (Trace.stage_index Trace.Replay_lag)))
  in
  let n = Sim.Metrics.Hist.count h in
  if n = 0 then None
  else
    Some
      (n, Sim.Metrics.Hist.percentile h 50.0, Sim.Metrics.Hist.percentile h 95.0)

let coalesced_proposals t =
  Array.fold_left
    (fun acc r ->
      Array.fold_left
        (fun acc s -> acc + (Paxos.Stream.stats s).Paxos.Stream.coalesced)
        acc (Replica.streams r))
    0 t.replicas
