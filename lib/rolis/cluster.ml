let src = Logs.Src.create "rolis.cluster" ~doc:"Cluster coordination events"

module Log = (val Logs.src_log src : Logs.LOG)

type t = {
  cfg : Config.t;
  eng : Sim.Engine.t;
  net : Paxos.Msg.t Sim.Net.t;
  app : App.t;
  on_durable :
    (replica:int -> stream:int -> idx:int -> Store.Wire.entry -> unit) option;
  replicas : Replica.t array; (* pool-sized: members + spare slots *)
  mutable w_start : int;
  mutable w_stop : int;
  (* Cluster-side membership mirror, advanced as operations complete.
     Ground truth is the replicated configuration log; this mirror decides
     which pool slots the management plane treats as voters. *)
  mutable members : int list;
  mutable mgen : int;
  mutable learners : int list;
  (* Client-side parked-time / redirect-count stats: pass to
     {!Client.spawn} (via [?stats]) so every session records into it;
     merged into [stage_breakdown]. Read-only sessions record into the
     separate [client_read_stats] so read and write dispositions stay
     distinguishable. *)
  client_stats : Stats.t;
  client_read_stats : Stats.t;
  mutable adds : int;
  mutable removes : int;
  mutable handoffs : int;
  mutable ops_skipped : int;
  (* Per-replica durable disk: the newest checkpoint image each replica
     published, surviving that replica's crash (a restarted node can load
     its own image, and any image is reachable for bootstrap even while
     its owner is down). *)
  disk : Checkpoint.replica_image option array;
  (* Dedup evidence harvested from journal entries before truncation
     drops them: (stream, idx) -> request keys that counted as applied
     (already filtered by the final-watermark rule at harvest time).
     {!Check.exactly_once} consults it for slots absent from every
     surviving journal. *)
  harvested : (int * int, (int * int) list) Hashtbl.t;
  (* Highest per-stream cover already truncated cluster-wide (inclusive);
     a bootstrap image must cover at least this much. *)
  mutable trunc_frontier : int array;
  (* Retention gate: a freshly quorum-stable frontier waits
     [checkpoint_retention] before truncation applies, so a follower
     lagging within the permitted window still finds its slots in the
     log. *)
  mutable pending_frontier : (int * int array) option;
  mutable truncation_rounds : int;
  mutable auto_rebuilds : int;
}

(* Quorum-stable frontier over the persisted images: rank images by their
   scalar min-over-streams cover, keep the top-majority, take the
   elementwise min F over those. Every kept image then covers F on every
   stream, and with images persisted on disk each remains reachable even
   while its owner is down — so some image covering F always exists for a
   rebuild, whatever minority the nemesis takes. Majority is over the
   current voter set: spares and removed nodes neither count toward nor
   against stability. *)
let stable_frontier t =
  let images = List.filter_map (fun i -> t.disk.(i)) t.members in
  let majority = (List.length t.members / 2) + 1 in
  if List.length images < majority then None
  else begin
    let scalar ck =
      Array.fold_left min max_int ck.Checkpoint.ri_cover
    in
    let ranked =
      List.sort (fun a b -> compare (scalar b) (scalar a)) images
    in
    let top = List.filteri (fun i _ -> i < majority) ranked in
    match top with
    | [] -> None
    | ck0 :: rest ->
        let f = Array.copy ck0.Checkpoint.ri_cover in
        List.iter
          (fun ck ->
            Array.iteri
              (fun s c -> if c < f.(s) then f.(s) <- c)
              ck.Checkpoint.ri_cover)
          rest;
        Some f
  end

(* Record the request keys of every journal entry at or below [cover]
   before those entries can disappear from the union of surviving
   journals — at truncation, and when a rebuilt replica restarts with a
   checkpoint instead of the full journal. Idempotent per slot. *)
let harvest_upto t ~donors ~cover =
  let final_w epoch =
    List.fold_left
      (fun acc r ->
        match acc with
        | Some _ -> acc
        | None -> Replica.final_watermark r ~epoch)
      None donors
  in
  List.iter
    (fun r ->
      List.iter
        (fun (s, idx, (e : Store.Wire.entry)) ->
          if idx <= cover.(s) && not (Hashtbl.mem t.harvested (s, idx)) then begin
            let w =
              match final_w e.Store.Wire.epoch with
              | Some w -> w
              | None -> max_int
              (* Unsealed epoch: an entry below a checkpoint cover was
                 consumed whole (last_ts <= the replay watermark), so all
                 its transactions end up below the eventual final W. *)
            in
            let keys =
              List.filter_map
                (fun (txn : Store.Wire.txn_log) ->
                  match txn.Store.Wire.req with
                  | Some key when txn.Store.Wire.ts <= w -> Some key
                  | Some _ | None -> None)
                e.Store.Wire.txns
            in
            Hashtbl.replace t.harvested (s, idx) keys
          end)
        (Replica.journal r))
    donors

let alive_list t =
  Array.to_list t.replicas |> List.filter Replica.is_alive

(* The image a rebuilt replica bootstraps from: any persisted image whose
   cover reaches the already-truncated frontier on every stream (entries
   below [trunc_frontier] are gone from every surviving journal, so a
   shallower image would leave an unfillable gap). Among the valid ones,
   prefer the deepest cover, then the freshest — both shorten the tail. *)
let best_image t =
  Array.to_list t.disk
  |> List.filter_map Fun.id
  |> List.filter (fun ck ->
         let ok = ref true in
         Array.iteri
           (fun s f -> if ck.Checkpoint.ri_cover.(s) < f then ok := false)
           t.trunc_frontier;
         !ok)
  |> List.fold_left
       (fun acc ck ->
         let key ck =
           ( Array.fold_left min max_int ck.Checkpoint.ri_cover,
             ck.Checkpoint.ri_taken_at )
         in
         match acc with
         | Some best when key best >= key ck -> acc
         | Some _ | None -> Some ck)
       None

let engine t = t.eng
let network t = t.net
let config t = t.cfg
let replicas t = t.replicas
let replica t i = t.replicas.(i)
let members t = t.members
let learners t = t.learners
let membership_gen t = t.mgen
let client_stats t = t.client_stats
let client_read_stats t = t.client_read_stats
let adds t = t.adds
let removes t = t.removes
let handoffs t = t.handoffs
let ops_skipped t = t.ops_skipped

let leader t =
  Array.to_list t.replicas
  |> List.find_opt (fun r -> Replica.is_serving r && Replica.is_alive r)

(* Window management is split out so a {!Shard} deployment — many
   clusters on ONE shared engine — can advance virtual time once and
   bracket every cluster's measurement window around it. *)
let reset_window t =
  Array.iter
    (fun r ->
      Stats.reset_window (Replica.stats r);
      Sim.Cpu.reset_busy (Replica.cpu r))
    t.replicas;
  Stats.reset_window t.client_stats;
  Stats.reset_window t.client_read_stats

let open_window t = t.w_start <- Sim.Engine.now t.eng
let close_window t = t.w_stop <- Sim.Engine.now t.eng

let run t ?(warmup = 0) ~duration () =
  if warmup > 0 then begin
    Sim.Engine.run ~until:(Sim.Engine.now t.eng + warmup) t.eng;
    reset_window t
  end;
  open_window t;
  Sim.Engine.run ~until:(t.w_start + duration) t.eng;
  close_window t

let crash_replica t i =
  Sim.Net.crash t.net i;
  Replica.crash t.replicas.(i)

let hook t id =
  Option.map
    (fun f ~stream ~idx entry -> f ~replica:id ~stream ~idx entry)
    t.on_durable

(* Crash-recovery: a restarted machine keeps nothing but its disk — it is
   rebuilt from scratch (fresh database, fresh streams) and rejoins as a
   follower. Without checkpoints it catches up from the per-stream union
   of every alive replica's journal; with a usable persisted image it
   bootstraps checkpoint + journal tail instead
   ({!Replica.bootstrap_from_checkpoint}), so rebuild time is bounded by
   the checkpoint interval rather than history length. The remaining gap
   closes through the ordinary fetch path either way.

   A *voluntary* rebuild of a still-alive replica (a tainted ex-leader) is
   different: only its database is suspect. Its own journal stays in the
   donor set, and its Paxos acceptor state — accepted-but-uncommitted
   slots, granted vote — is salvaged into the fresh replica, because an
   accepted slot here may be the last surviving copy of an entry committed
   at a since-dead leader; wiping it would let the next Prepare quorum
   no-op-fill a chosen slot. *)
(* The newest membership view any alive replica has adopted — the cluster
   mirror may lag a change that completed while the coordinator was not
   looking. Falls back to the mirror when everything is down. *)
let current_view t =
  let best =
    Array.fold_left
      (fun acc r ->
        if Replica.is_alive r then
          match acc with
          | Some (g, _) when g >= Replica.mgen r -> acc
          | Some _ | None -> Some (Replica.mgen r, Replica.view r)
        else acc)
      None t.replicas
  in
  match best with
  | Some (g, v) -> (v, g)
  | None -> (Paxos.Member.stable t.members, t.mgen)

let restart_replica ?(learner = false) t i =
  let old = t.replicas.(i) in
  let was_alive = Replica.is_alive old in
  if was_alive then begin
    Sim.Net.crash t.net i;
    Replica.crash old
  end;
  let donors =
    Array.to_list t.replicas
    |> List.filter (fun r -> Replica.id r <> i && Replica.is_alive r)
  in
  let donors = if was_alive then old :: donors else donors in
  Sim.Net.recover t.net i;
  let r =
    Replica.create t.cfg t.eng t.net ~id:i ~app:t.app
      ~membership:(current_view t) ~learner ?on_durable:(hook t i) ()
  in
  (match if t.cfg.Config.checkpoint_interval > 0 then best_image t else None with
  | Some ck ->
      (* The rebuilt replica's journal will hold only the tail above the
         image's cover; harvest the dedup evidence of everything below it
         while the donors still archive those entries. *)
      harvest_upto t ~donors ~cover:ck.Checkpoint.ri_cover;
      ignore (Replica.bootstrap_from_checkpoint r ~ckpt:ck ~donors)
  | None -> Replica.catch_up_from r ~donors);
  if was_alive then Replica.salvage_protocol_state r ~old
  else
    (* Persistent votedFor: even a crash-restarted node must remember the
       vote it granted, or — removed, re-added and restarted inside one
       ballot — it could vote twice in the same epoch. *)
    Replica.salvage_vote r ~old;
  t.replicas.(i) <- r;
  (* A leader's learner registrations die with its stream objects on
     restart; re-assert them everywhere. *)
  if t.learners <> [] then
    Array.iter
      (fun r -> if Replica.is_alive r then Replica.set_learners r t.learners)
      t.replicas

(* The checkpoint/truncation coordinator (modeled as a crash-free
   cluster-management duty, like the membership service real deployments
   rely on): persist finished images to each replica's disk, advance the
   quorum-stable frontier behind the retention gate, drive journal
   truncation, and rebuild any follower wedged behind a compaction floor
   ({!Paxos.Stream.trunc_stalled}). Spawned only when
   [checkpoint_interval > 0]. *)
let coordinator_loop t () =
  while true do
    Sim.Engine.sleep t.cfg.Config.watermark_interval;
    (* 1. Persist newest images. *)
    Array.iteri
      (fun i r ->
        if Replica.is_alive r then
          match Replica.last_checkpoint r with
          | Some ck ->
              let newer =
                match t.disk.(i) with
                | None -> true
                | Some old ->
                    ck.Checkpoint.ri_taken_at > old.Checkpoint.ri_taken_at
              in
              if newer then t.disk.(i) <- Some ck
          | None -> ())
      t.replicas;
    (* 2. Truncation at the retention-gated quorum-stable frontier. *)
    if t.cfg.Config.checkpoint_truncate then begin
      let now = Sim.Engine.now t.eng in
      match t.pending_frontier with
      | Some (at, f) when now - at >= t.cfg.Config.checkpoint_retention ->
          let donors = alive_list t in
          harvest_upto t ~donors ~cover:f;
          List.iter (fun r -> Replica.apply_truncation r ~cover:f) donors;
          Array.iteri
            (fun s c -> if c > t.trunc_frontier.(s) then t.trunc_frontier.(s) <- c)
            f;
          t.truncation_rounds <- t.truncation_rounds + 1;
          t.pending_frontier <- None
      | Some _ -> ()
      | None -> (
          match stable_frontier t with
          | Some f
            when Array.exists
                   (fun s -> f.(s) > t.trunc_frontier.(s))
                   (Array.init (Array.length f) Fun.id) ->
              t.pending_frontier <- Some (now, f)
          | Some _ | None -> ())
    end;
    (* 3. Rebuild followers wedged behind a compaction floor: their next
       slots were truncated cluster-wide, so only a checkpoint bootstrap
       can make progress. *)
    Array.iteri
      (fun i r ->
        if
          Replica.is_alive r
          && (not (Replica.is_serving r))
          && (not (Replica.is_tainted r))
          && Replica.any_trunc_stalled r
          && Option.is_some (best_image t)
        then begin
          t.auto_rebuilds <- t.auto_rebuilds + 1;
          restart_replica t i
        end)
      t.replicas
  done

let create ?(initial_leader = Some 0) ?on_durable ?eng cfg app =
  Config.validate cfg;
  (* [?eng] lets a {!Shard} deployment host many clusters inside one
     engine (one virtual clock, one scheduler); absent, the engine is
     created exactly as before so single-cluster runs are untouched. *)
  let eng =
    match eng with
    | Some e -> e
    | None -> Sim.Engine.create ~seed:cfg.Config.seed ()
  in
  let pool = Config.pool cfg in
  (* Client sessions live on the same net, as nodes
     [pool .. pool+clients-1]: their links share the latency and fault
     model, so loss/dup/reorder exercises the retry + dedup path. Spare
     pool slots sit between the base replicas and the clients; they are
     dark (crashed at birth) until a membership change brings one in. *)
  let net =
    Sim.Net.create eng ~nodes:(pool + cfg.Config.clients)
      ~latency:cfg.Config.net_latency
  in
  (* Geo topology: a named WAN profile assigns every node (replicas,
     spares and clients alike) a region round-robin and installs the
     profile's intra/inter latency matrix. [Config.validate] already
     rejected unknown names; [""] (the default) installs nothing, so the
     network draws the identical RNG sequence as before. *)
  (match Sim.Net.wan_profile cfg.Config.wan_profile with
  | Some p ->
      let nodes = pool + cfg.Config.clients in
      let regions = Array.init nodes (fun i -> i mod p.Sim.Net.wp_regions) in
      Sim.Net.apply_regions net ~regions ~intra:p.Sim.Net.wp_intra
        ~inter:p.Sim.Net.wp_inter
  | None -> ());
  let hook id =
    Option.map (fun f ~stream ~idx entry -> f ~replica:id ~stream ~idx entry) on_durable
  in
  let replicas =
    Array.init pool (fun id ->
        Replica.create cfg eng net ~id ~app ?initial_leader ?on_durable:(hook id) ())
  in
  for id = cfg.Config.replicas to pool - 1 do
    Sim.Net.crash net id;
    Replica.crash replicas.(id)
  done;
  let nstreams = Config.nstreams cfg in
  let t =
    {
      cfg;
      eng;
      net;
      app;
      on_durable;
      replicas;
      w_start = 0;
      w_stop = 0;
      members = List.init cfg.Config.replicas Fun.id;
      mgen = 0;
      learners = [];
      client_stats = Stats.create eng;
      client_read_stats = Stats.create eng;
      adds = 0;
      removes = 0;
      handoffs = 0;
      ops_skipped = 0;
      disk = Array.make pool None;
      harvested = Hashtbl.create 4096;
      trunc_frontier = Array.make nstreams (-1);
      pending_frontier = None;
      truncation_rounds = 0;
      auto_rebuilds = 0;
    }
  in
  (* Spawned only when configured: the default config must stay
     bit-identical to pre-checkpoint runs. *)
  if cfg.Config.checkpoint_interval > 0 then
    ignore (Sim.Engine.spawn eng ~name:"ckpt-coord" (coordinator_loop t));
  t

(* ---- live reconfiguration operations ----

   Blocking management-plane operations: call them from inside a spawned
   simulation process (the nemesis, a bench driver). Each is defensive —
   an operation that is illegal or cannot complete within its deadline is
   counted in [ops_skipped] and returns [false], leaving the cluster in a
   safe (possibly unchanged) state; chaos plans may therefore schedule
   operations optimistically. *)

let op_deadline t = Sim.Engine.now t.eng + (10 * t.cfg.Config.election_timeout)

let wait_until t ~deadline pred =
  while (not (pred ())) && Sim.Engine.now t.eng < deadline do
    Sim.Engine.sleep (10 * Sim.Engine.ms)
  done;
  pred ()

let skip t reason =
  t.ops_skipped <- t.ops_skipped + 1;
  Log.debug (fun m -> m "membership op skipped: %s" reason);
  false

let set_all_learners t =
  Array.iter
    (fun r -> if Replica.is_alive r then Replica.set_learners r t.learners)
    t.replicas

(* Drive a reconfiguration to the stable voter set [target] (sorted):
   re-propose through whoever currently leads until a leader's adopted
   view is exactly [Stable target]. Re-proposing is safe — a leader
   refuses while a change is in flight, and adopted generations are
   monotone. *)
let drive_reconfig t ~target ~deadline =
  let adopted () =
    match leader t with
    | Some l -> (
        match Replica.view l with
        | Paxos.Member.Stable c -> c = target
        | Paxos.Member.Joint _ -> false)
    | None -> false
  in
  let ok = ref (adopted ()) in
  while (not !ok) && Sim.Engine.now t.eng < deadline do
    (match leader t with
    | Some l -> ignore (Replica.propose_reconfig l ~members:target)
    | None -> ());
    Sim.Engine.sleep (20 * Sim.Engine.ms);
    ok := adopted ()
  done;
  if !ok then begin
    t.members <- target;
    (match leader t with
    | Some l -> t.mgen <- max t.mgen (Replica.mgen l)
    | None -> ());
    t.learners <- List.filter (fun i -> not (List.mem i target)) t.learners;
    set_all_learners t
  end;
  !ok

(* Planned leader transfer to [target]; see {!Replica.begin_handoff}. *)
let handoff t ~target =
  match leader t with
  | None -> skip t "handoff: no serving leader"
  | Some l when Replica.id l = target -> skip t "handoff: target already leads"
  | Some l ->
      if not (List.mem target t.members) then skip t "handoff: target not a voter"
      else if not (Replica.is_alive t.replicas.(target)) then
        skip t "handoff: target down"
      else if Replica.is_tainted t.replicas.(target) then
        skip t "handoff: target tainted"
      else begin
        let e0 = Replica.served_epoch l in
        let deadline = op_deadline t in
        Replica.begin_handoff l ~target;
        let done_ () =
          match leader t with
          | Some l' -> Replica.id l' = target && Replica.served_epoch l' > e0
          | None -> false
        in
        if wait_until t ~deadline done_ then begin
          t.handoffs <- t.handoffs + 1;
          true
        end
        else skip t "handoff: transfer did not complete"
      end

(* Bring pool slot [i] in as a voter: restart it as a non-voting learner,
   bootstrap it (checkpoint + tail when available), wait until its replay
   frontier trails the leader's durable frontier by at most
   [learner_lag_bound], then run the joint-consensus change that promotes
   it. *)
let add_replica t i =
  if i < 0 || i >= Array.length t.replicas then skip t "add: bad node id"
  else if List.mem i t.members then skip t "add: already a voter"
  else if List.mem i t.learners then skip t "add: already joining"
  else begin
    restart_replica ~learner:true t i;
    t.learners <- List.sort_uniq compare (i :: t.learners);
    set_all_learners t;
    let deadline = op_deadline t in
    let caught_up () =
      Replica.is_alive t.replicas.(i)
      &&
      match leader t with
      | Some l ->
          Replica.durable_frontier l - Replica.replay_frontier t.replicas.(i)
          <= t.cfg.Config.learner_lag_bound
      | None -> false
    in
    if not (wait_until t ~deadline caught_up) then begin
      t.learners <- List.filter (fun x -> x <> i) t.learners;
      set_all_learners t;
      skip t "add: learner never caught up"
    end
    else begin
      let target = List.sort_uniq compare (i :: t.members) in
      if drive_reconfig t ~target ~deadline then begin
        t.adds <- t.adds + 1;
        Log.debug (fun m -> m "added replica %d (gen %d)" i t.mgen);
        true
      end
      else begin
        t.learners <- List.filter (fun x -> x <> i) t.learners;
        set_all_learners t;
        skip t "add: reconfiguration did not commit"
      end
    end
  end

(* Take voter [i] out: joint-consensus change to the remaining set (the
   leader hands off first if it is removing itself), then harvest the
   removed node's full journal as dedup evidence and decommission it.
   Refuses to go below [min_members]. *)
let remove_replica t i =
  if not (List.mem i t.members) then skip t "remove: not a voter"
  else if List.length t.members - 1 < t.cfg.Config.min_members then
    skip t "remove: would violate min_members"
  else begin
    let target = List.filter (fun x -> x <> i) t.members in
    (match leader t with
    | Some l when Replica.id l = i -> (
        (* Self-removal: transfer leadership to a survivor first so the
           change is driven (and completed) by a remaining voter. The
           leader-side fallback in [Replica.propose_reconfig] covers the
           case where this handoff fails. *)
        match List.filter (fun x -> Replica.is_alive t.replicas.(x)) target with
        | tgt :: _ -> ignore (handoff t ~target:tgt)
        | [] -> ())
    | Some _ | None -> ());
    let deadline = op_deadline t in
    if drive_reconfig t ~target ~deadline then begin
      let victim = t.replicas.(i) in
      if Replica.is_alive victim then begin
        (* Evidence harvest before decommission: the removed node's
           journal leaves the surviving union, but any request it alone
           still archives must stay auditable for exactly-once. *)
        let everything =
          Array.make (Config.nstreams t.cfg) max_int
        in
        harvest_upto t ~donors:[ victim ] ~cover:everything;
        crash_replica t i
      end;
      t.removes <- t.removes + 1;
      Log.debug (fun m -> m "removed replica %d (gen %d)" i t.mgen);
      true
    end
    else skip t "remove: reconfiguration did not commit"
  end

let window t = (t.w_start, t.w_stop)

let released t =
  Array.fold_left (fun acc r -> acc + Stats.released (Replica.stats r)) 0 t.replicas

let throughput t =
  let dt = t.w_stop - t.w_start in
  if dt <= 0 then 0.0 else float_of_int (released t) *. 1e9 /. float_of_int dt

let latency t =
  Sim.Metrics.Hist.merge
    (Array.to_list t.replicas |> List.map (fun r -> Stats.latency (Replica.stats r)))

let release_rate t =
  let tbl = Hashtbl.create 64 in
  Array.iter
    (fun r ->
      List.iter
        (fun (sec, rate) ->
          let cur = match Hashtbl.find_opt tbl sec with Some v -> v | None -> 0.0 in
          Hashtbl.replace tbl sec (cur +. rate))
        (Sim.Metrics.Series.rate_per_sec (Stats.release_series (Replica.stats r))))
    t.replicas;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let stage_breakdown t =
  List.filter_map
    (fun stage ->
      let idx = Trace.stage_index stage in
      let h =
        Sim.Metrics.Hist.merge
          (Stats.stage_hist t.client_stats idx
          :: Stats.stage_hist t.client_read_stats idx
          :: (Array.to_list t.replicas
             |> List.map (fun r -> Stats.stage_hist (Replica.stats r) idx)))
      in
      let n = Sim.Metrics.Hist.count h in
      if n = 0 then None
      else
        Some
          ( Trace.stage_name stage,
            n,
            Sim.Metrics.Hist.percentile h 50.0,
            Sim.Metrics.Hist.percentile h 95.0,
            Sim.Metrics.Hist.percentile h 99.0 ))
    Trace.all_stages

let executed t =
  Array.fold_left (fun acc r -> acc + Stats.executed (Replica.stats r)) 0 t.replicas

let user_aborts t =
  Array.fold_left (fun acc r -> acc + Stats.user_aborts (Replica.stats r)) 0 t.replicas

(* Batching-pipeline diagnostics, summed across replicas. *)
let entries_flushed t =
  Array.fold_left
    (fun acc r -> acc + Stats.entries_flushed (Replica.stats r))
    0 t.replicas

let deadline_flushes t =
  Array.fold_left
    (fun acc r -> acc + Stats.deadline_flushes (Replica.stats r))
    0 t.replicas

let event_releases t =
  Array.fold_left
    (fun acc r -> acc + Stats.event_releases (Replica.stats r))
    0 t.replicas

(* Follower-replay diagnostics. *)
let replayed_txns t =
  Array.fold_left
    (fun acc r -> acc + Stats.replayed_txns (Replica.stats r))
    0 t.replicas

let replay_lag t =
  let h =
    Sim.Metrics.Hist.merge
      (Array.to_list t.replicas
      |> List.map (fun r ->
             Stats.stage_hist (Replica.stats r) (Trace.stage_index Trace.Replay_lag)))
  in
  let n = Sim.Metrics.Hist.count h in
  if n = 0 then None
  else
    Some
      (n, Sim.Metrics.Hist.percentile h 50.0, Sim.Metrics.Hist.percentile h 95.0)

(* Follower-read diagnostics. *)
let reads_served t =
  Array.fold_left
    (fun acc r -> acc + Stats.reads_served (Replica.stats r))
    0 t.replicas

let reads_parked t =
  Array.fold_left
    (fun acc r -> acc + Stats.reads_parked (Replica.stats r))
    0 t.replicas

let reads_redirected t =
  Array.fold_left
    (fun acc r -> acc + Stats.reads_redirected (Replica.stats r))
    0 t.replicas

let read_misses t =
  Array.fold_left
    (fun acc r -> acc + Stats.read_misses (Replica.stats r))
    0 t.replicas

let read_audit_skipped t =
  Array.fold_left (fun acc r -> acc + Replica.read_audit_skipped r) 0 t.replicas

let read_staleness t =
  let h =
    Sim.Metrics.Hist.merge
      (Array.to_list t.replicas
      |> List.map (fun r ->
             Stats.stage_hist (Replica.stats r)
               (Trace.stage_index Trace.Read_staleness)))
  in
  let n = Sim.Metrics.Hist.count h in
  if n = 0 then None
  else
    Some
      (n, Sim.Metrics.Hist.percentile h 50.0, Sim.Metrics.Hist.percentile h 95.0)

let coalesced_proposals t =
  Array.fold_left
    (fun acc r ->
      Array.fold_left
        (fun acc s -> acc + (Paxos.Stream.stats s).Paxos.Stream.coalesced)
        acc (Replica.streams r))
    0 t.replicas

(* Checkpoint / truncation telemetry. *)

let harvested_requests t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.harvested []

let trunc_frontier t = Array.copy t.trunc_frontier
let truncation_rounds t = t.truncation_rounds
let auto_rebuilds t = t.auto_rebuilds

let checkpoints_taken t =
  Array.fold_left (fun acc r -> acc + Replica.checkpoints_taken r) 0 t.replicas

let journal_bytes_total t =
  Array.fold_left (fun acc r -> acc + Replica.journal_bytes r) 0 t.replicas

let journal_entries_total t =
  Array.fold_left (fun acc r -> acc + Replica.journal_length r) 0 t.replicas

let truncated_entries_total t =
  Array.fold_left (fun acc r -> acc + Replica.truncated_entries r) 0 t.replicas

let newest_checkpoint t =
  Array.fold_left
    (fun acc d ->
      match (acc, d) with
      | None, d -> d
      | Some _, None -> acc
      | Some a, Some b ->
          if b.Checkpoint.ri_taken_at > a.Checkpoint.ri_taken_at then d else acc)
    None t.disk
