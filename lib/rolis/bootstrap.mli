(** Adding a new replica without snapshots (paper §4.3, after MongoDB's
    logless replica addition).

    A brand-new replica (1) picks an existing {e follower} as its sync
    source, (2) performs an asynchronous "pull": it scans the source's
    live database table by table while the source keeps working, and
    (3) replays the source's retained log entries. Because replay is an
    idempotent per-key compare-and-swap on [(epoch, ts)], replaying
    entries that raced with the scan cannot corrupt the copy — whichever
    stamp is newer wins, on either path. *)

val pull_snapshot :
  src:Silo.Db.t -> dst:Silo.Db.t -> ?rows_per_yield:int -> unit -> int
(** Copy every live record (value and [(epoch, ts)] stamp) from [src]'s
    tables into the same-named tables of [dst], creating the tables on
    demand. Yields to the simulation every [rows_per_yield] rows (default
    256) and charges scan costs to the source machine, so the source keeps
    committing concurrently — the race this module exists to tolerate.
    Returns the number of rows copied. Must run inside a process. *)

val replay_entries : dst:Silo.Db.t -> Store.Wire.entry list -> int
(** Apply archived log entries to [dst] via the standard replay CAS
    (charging replay cost). Safe to call with entries that overlap the
    snapshot, or repeatedly. Returns the number of key-applies that won
    their CAS. Must run inside a process. *)

val sync_new_replica :
  src:Replica.t -> dst:Silo.Db.t -> ?ckpt:Checkpoint.replica_image -> unit -> int * int
(** The full §4.3 flow against a live source replica (which must have been
    built with [archive_entries = true]): snapshot pull, then replay of
    everything the source has made durable. With [ckpt] the pull is
    replaced by installing the persisted checkpoint image (paying its
    modeled load time) and replaying only the source's journal {e tail}
    above the image's per-stream cover — bounded work regardless of
    history length. Returns [(rows_copied, applies_won)]. Must run inside
    a process. *)
