let src = Logs.Src.create "rolis.client" ~doc:"Client session events"

module Log = (val Logs.src_log src : Logs.LOG)

type t = {
  net : Paxos.Msg.t Sim.Net.t;
  cfg : Config.t;
  cid : int;
  node : int;
  rng : Sim.Rng.t;
  gen : unit -> string;
  stopped : bool ref;
  stats : Stats.t option; (* shared cluster-side client stats, if wired *)
  ro : bool; (* read-only session: issues [Read_req] instead of [Client_req] *)
  (* Read routing preference: replica ids in try-order (nearest first in a
     WAN topology, or the lease-holding subset a bench arm serves from).
     Write sessions ignore it and rotate over the whole pool. *)
  prefer : int array;
  mutable pref_i : int; (* current index into [prefer] *)
  mutable hint : int; (* current guess at the leader *)
  mutable seq : int; (* seq of the in-flight (or last issued) request *)
  mutable completed : int; (* highest seq terminally resolved *)
  mutable t0 : int; (* first-send time of the in-flight request *)
  mutable acked : int list; (* Ok-acked seqs, newest first *)
  mutable aborted : int;
  mutable retries : int;
  mutable redirects : int;
  mutable busy : int;
  mutable timeouts : int;
  mutable parked : int;
  mutable req_parked_ns : int; (* parked time of the in-flight request *)
  mutable req_redirects : int; (* redirects of the in-flight request *)
  lat : Sim.Metrics.Hist.t;
}

let cid t = t.cid
let node t = t.node
let is_ro t = t.ro
let acked_count t = List.length t.acked
let acked_seqs t = List.rev_map (fun seq -> (t.cid, seq)) t.acked
let aborted t = t.aborted
let retries t = t.retries
let redirects t = t.redirects
let busy_replies t = t.busy
let timeouts t = t.timeouts
let parked t = t.parked
let issued t = t.seq
let latency t = t.lat

(* Read sessions rotate within their preference list; write sessions scan
   the whole pool looking for the leader. *)
let rotate_hint t =
  if t.ro then begin
    t.pref_i <- (t.pref_i + 1) mod Array.length t.prefer;
    t.hint <- t.prefer.(t.pref_i)
  end
  else t.hint <- (t.hint + 1) mod Config.pool t.cfg

let send_req t payload =
  let body =
    if t.ro then Paxos.Msg.Read_req { cid = t.cid; seq = t.seq; payload }
    else Paxos.Msg.Client_req { cid = t.cid; seq = t.seq; payload }
  in
  let m = { Paxos.Msg.from = t.node; body } in
  Sim.Net.send t.net ~size:(Paxos.Msg.size m) ~src:t.node ~dst:t.hint m

(* Exponential backoff with seeded jitter: attempt [a] sleeps a uniform
   draw from (b/2, b] where b = min(max, base * 2^a). *)
let backoff_sleep t ~attempt =
  let b =
    min t.cfg.Config.client_backoff_max
      (t.cfg.Config.client_backoff_base * (1 lsl min attempt 16))
  in
  Sim.Engine.sleep (b - Sim.Rng.int t.rng (max 1 (b / 2)))

(* Fold the in-flight request's parked time and redirect count into the
   shared stats once it resolves — availability seen from the client. *)
let record_resolution t =
  match t.stats with
  | None -> ()
  | Some s ->
      if t.req_redirects > 0 then
        Stats.note_stage s ~stage:Trace.(stage_index Client_redirect)
          ~latency:t.req_redirects;
      if t.req_parked_ns > 0 then begin
        Stats.note_parked s ~ns:t.req_parked_ns;
        Stats.note_stage s ~stage:Trace.(stage_index Client_park)
          ~latency:t.req_parked_ns
      end

let record_ok t ~from =
  let latency = Sim.Engine.time () - t.t0 in
  Sim.Metrics.Hist.add t.lat latency;
  record_resolution t;
  t.acked <- t.seq :: t.acked;
  t.completed <- t.seq;
  t.hint <- from

(* Drive one request to a terminal reply (Ok or Aborted), retrying through
   timeouts, Busy shedding and leader redirects. After [client_retry_limit]
   attempts the request is parked — the client sleeps and re-drives it
   later, so an unreachable cluster degrades gracefully instead of
   spinning. A write request is never abandoned: exactly-once is about
   duplicate execution, not about giving up. A read request, being
   idempotent and free of any exactly-once obligation, is abandoned after
   one park: a permanently unservable read (a hot key overwritten faster
   than the snapshot pin advances past it) must not head-of-line block
   the session forever. *)
let drive t payload =
  t.t0 <- Sim.Engine.time ();
  t.req_parked_ns <- 0;
  t.req_redirects <- 0;
  (* Each read starts back at the session's home replica (nearest under a
     WAN profile, the assigned serving replica otherwise). Busy/redirect
     rotations and [record_ok]'s hint adoption are per-request routing
     state: without this reset, a warmup-time Busy storm from followers
     that have no lease yet would funnel every session to the leader
     permanently. *)
  if t.ro then begin
    t.pref_i <- t.cid mod Array.length t.prefer;
    t.hint <- t.prefer.(t.pref_i)
  end;
  let attempts = ref 0 in
  let finished = ref false in
  while (not !finished) && not !(t.stopped) do
    if !attempts >= t.cfg.Config.client_retry_limit then begin
      t.parked <- t.parked + 1;
      attempts := 0;
      Log.debug (fun m -> m "client %d parks seq %d" t.cid t.seq);
      let nap =
        t.cfg.Config.client_park_interval
        + Sim.Rng.int t.rng (max 1 (t.cfg.Config.client_park_interval / 2))
      in
      t.req_parked_ns <- t.req_parked_ns + nap;
      Sim.Engine.sleep nap;
      if t.ro then begin
        record_resolution t;
        t.completed <- t.seq;
        finished := true
      end
    end;
    if not !finished then begin
      if !attempts > 0 then t.retries <- t.retries + 1;
      send_req t payload;
      incr attempts;
      let deadline = Sim.Engine.time () + t.cfg.Config.client_timeout in
      let waiting = ref true in
      while !waiting && not !finished do
        let left = deadline - Sim.Engine.time () in
        if left <= 0 then begin
          t.timeouts <- t.timeouts + 1;
          rotate_hint t;
          waiting := false;
          backoff_sleep t ~attempt:!attempts
        end
        else
          match Sim.Net.recv_timeout t.net t.node left with
          | Some
              { Paxos.Msg.from; body = Paxos.Msg.Client_rep { cid; seq; reply } }
            when cid = t.cid && seq = t.seq -> (
              match reply with
              | Paxos.Msg.Ok_released | Paxos.Msg.Ok_read _ ->
                  record_ok t ~from;
                  finished := true
              | Paxos.Msg.Aborted ->
                  t.aborted <- t.aborted + 1;
                  record_resolution t;
                  t.completed <- t.seq;
                  t.hint <- from;
                  finished := true
              | Paxos.Msg.Busy ->
                  t.busy <- t.busy + 1;
                  (* A read session tries another lease holder after the
                     backoff — the replica that shed us may be lease-parked
                     for a while; a write session re-tries the same leader. *)
                  if t.ro then rotate_hint t;
                  waiting := false;
                  backoff_sleep t ~attempt:!attempts
              | Paxos.Msg.Not_leader { hint } ->
                  t.redirects <- t.redirects + 1;
                  t.req_redirects <- t.req_redirects + 1;
                  (* A read session never leaves its preference list: the
                     hint points at the leader, and adopting it — e.g.
                     during warmup, before the first heartbeat has granted
                     any lease — would permanently funnel every session
                     there. Rotate to the next preferred replica instead. *)
                  if t.ro then rotate_hint t
                  else (
                    match hint with
                    | Some h -> t.hint <- h
                    | None -> rotate_hint t);
                  waiting := false;
                  (* Short pause, not full backoff: an election may be in
                     progress and the hint goes stale quickly. *)
                  Sim.Engine.sleep
                    (t.cfg.Config.client_backoff_base
                    + Sim.Rng.int t.rng (max 1 t.cfg.Config.client_backoff_base)
                    ))
          | Some _ -> () (* stale reply for an older attempt or seq *)
          | None -> () (* next iteration observes the elapsed deadline *)
      done
    end
  done

(* Blocking single-request API for driver-managed sessions (the 2PC
   coordinator in {!Shard}): issue one payload and drive it to a terminal
   disposition from the calling process. [`Stopped] can only happen when
   the session's [stopped] flag fires mid-request — drivers that must
   finish a protocol (a write is never abandoned) pass a never-true flag
   and quiesce between logical transactions instead. *)
let request t payload =
  t.seq <- t.seq + 1;
  let aborted_before = t.aborted in
  drive t payload;
  if t.completed < t.seq then `Stopped
  else if t.aborted > aborted_before then `Aborted
  else `Ok

let run t () =
  while true do
    if !(t.stopped) then
      (* Passive drain: stop issuing, but a late ack for the in-flight
         request still counts — the cluster may release it after the
         workload stops. *)
      match Sim.Net.recv_timeout t.net t.node (50 * Sim.Engine.ms) with
      | Some
          {
            Paxos.Msg.from;
            body =
              Paxos.Msg.Client_rep
                { cid; seq; reply = Paxos.Msg.Ok_released | Paxos.Msg.Ok_read _ };
          }
        when cid = t.cid && seq = t.seq && t.completed < t.seq -> record_ok t ~from
      | Some _ | None -> ()
    else begin
      t.seq <- t.seq + 1;
      drive t (t.gen ())
    end
  done

let create net ~cfg ~cid ?(stopped = ref false) ?stats ?(ro = false) ?prefer
    ?(gen = fun () -> invalid_arg "Client: no generator") () =
  if cid < 0 || cid >= cfg.Config.clients then invalid_arg "Client.spawn: bad cid";
  if ro && not cfg.Config.follower_reads then
    invalid_arg "Client.spawn: read-only sessions need Config.follower_reads";
  let prefer =
    match prefer with
    | Some p ->
        if Array.length p = 0 then invalid_arg "Client.spawn: empty prefer list";
        Array.iter
          (fun r ->
            if r < 0 || r >= Config.pool cfg then
              invalid_arg "Client.spawn: prefer entry outside the pool")
          p;
        p
    | None -> Array.init cfg.Config.replicas Fun.id
  in
  let eng = Sim.Net.engine net in
  let pref_i = cid mod Array.length prefer in
  {
    net;
    cfg;
    cid;
    node = Config.pool cfg + cid;
    rng = Sim.Rng.split (Sim.Engine.rng eng);
    gen;
    stopped;
    stats;
    ro;
    prefer;
    pref_i;
    hint = (if ro then prefer.(pref_i) else cid mod cfg.Config.replicas);
    seq = 0;
    completed = 0;
    t0 = 0;
    acked = [];
    aborted = 0;
    retries = 0;
    redirects = 0;
    busy = 0;
    timeouts = 0;
    parked = 0;
    req_parked_ns = 0;
    req_redirects = 0;
    lat = Sim.Metrics.Hist.create ();
  }

let spawn net ~cfg ~cid ?stopped ?stats ?ro ?prefer ~gen () =
  let t = create net ~cfg ~cid ?stopped ?stats ?ro ?prefer ~gen () in
  ignore
    (Sim.Engine.spawn (Sim.Net.engine net)
       ~name:(Printf.sprintf "client-%d" cid)
       (run t));
  t
