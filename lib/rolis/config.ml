type stream_mode = Per_worker | Single | Sharded of int
type batch_policy = Fixed | Adaptive
type replay_batch = PerTxn | Bulk

(* Conservative upper bound on one TPC-C transaction's wire footprint: a
   Delivery touches ~130 rows; at ~120 wire bytes per write that is under
   16 KiB. [max_batch_bytes] below this could force a batch that cannot
   hold even one transaction. *)
let max_txn_bytes = 16 * 1024

type t = {
  replicas : int;
  spare_replicas : int;
  min_members : int;
  learner_lag_bound : int;
  handoff_drain_timeout : int;
  workers : int;
  cores : int;
  stream_mode : stream_mode;
  batch_policy : batch_policy;
  batch_size : int;
  batch_flush_interval : int;
  target_batch_delay_ns : int;
  max_batch_bytes : int;
  watermark_interval : int;
  heartbeat_interval : int;
  election_timeout : int;
  net_latency : Sim.Net.latency_model;
  costs : Silo.Costs.t;
  physical_serialization : bool;
  networked_clients : bool;
  client_rpc_overhead : int;
  client_rtt : int;
  clients : int;
  client_timeout : int;
  client_retry_limit : int;
  client_backoff_base : int;
  client_backoff_max : int;
  client_park_interval : int;
  admission_max_pending : int;
  admission_max_release : int;
  admission_max_backlog : int;
  enqueue_cs_ns : int;
  entry_overhead_ns : int;
  replay_batch : replay_batch;
  replay_parallel : int;
  disable_replay : bool;
  hash_tables : string list;
  archive_entries : bool;
  checkpoint_interval : int;
  checkpoint_retention : int;
  checkpoint_truncate : bool;
  checkpoint_disk_mb_per_s : int;
  checkpoint_threads : int;
  follower_reads : bool;
  read_lease : int;
  read_workers : int;
  read_retry_limit : int;
  wan_profile : string;
  shards : int;
  cross_pct : float;
  trace_sample_interval : int;
  trace_buffer_capacity : int;
  seed : int64;
}

let default =
  {
    replicas = 3;
    spare_replicas = 0;
    min_members = 1;
    learner_lag_bound = 200 * Sim.Engine.ms;
    handoff_drain_timeout = 500 * Sim.Engine.ms;
    workers = 16;
    cores = 32;
    stream_mode = Per_worker;
    batch_policy = Fixed;
    batch_size = 1000;
    batch_flush_interval = 50 * Sim.Engine.ms;
    target_batch_delay_ns = 2 * Sim.Engine.ms;
    max_batch_bytes = 1024 * 1024;
    watermark_interval = Sim.Engine.ms / 2;
    heartbeat_interval = 100 * Sim.Engine.ms;
    election_timeout = Sim.Engine.s;
    net_latency =
      Sim.Net.Exp_jitter { base = 25 * Sim.Engine.us; jitter_mean = 8 * Sim.Engine.us };
    costs = Silo.Costs.default;
    physical_serialization = false;
    networked_clients = false;
    client_rpc_overhead = 180;
    client_rtt = 60 * Sim.Engine.us;
    clients = 0;
    client_timeout = 100 * Sim.Engine.ms;
    client_retry_limit = 10;
    client_backoff_base = 10 * Sim.Engine.ms;
    client_backoff_max = 500 * Sim.Engine.ms;
    client_park_interval = 200 * Sim.Engine.ms;
    admission_max_pending = 512;
    admission_max_release = 8192;
    admission_max_backlog = 100_000;
    enqueue_cs_ns = 1_200;
    entry_overhead_ns = 200_000;
    replay_batch = PerTxn;
    replay_parallel = 1;
    disable_replay = false;
    hash_tables = [];
    archive_entries = false;
    checkpoint_interval = 0;
    checkpoint_retention = 3 * Sim.Engine.s;
    checkpoint_truncate = true;
    checkpoint_disk_mb_per_s = 500;
    checkpoint_threads = 4;
    follower_reads = false;
    read_lease = 400 * Sim.Engine.ms;
    read_workers = 2;
    read_retry_limit = 8;
    wan_profile = "";
    shards = 1;
    cross_pct = 0.0;
    trace_sample_interval = 64;
    trace_buffer_capacity = 4096;
    seed = 42L;
  }

let ycsb = { default with batch_size = 10_000 }

(* Node numbering: replica slots first (initial members, then spares kept
   dark for add-replica operations), clients after. With no spares this
   is exactly the historical numbering. *)
let pool t = t.replicas + t.spare_replicas

let nstreams t =
  match t.stream_mode with
  | Per_worker -> t.workers
  | Single -> 1
  | Sharded n -> min n t.workers

let validate t =
  if t.replicas < 1 then invalid_arg "Config: need at least one replica";
  if t.spare_replicas < 0 then
    invalid_arg "Config: spare_replicas must be non-negative";
  if t.min_members < 1 then
    invalid_arg
      "Config: min_members must be >= 1 — remove-replica operations may \
       never shrink the voting membership to nothing; a single-member group \
       is the smallest that can still commit";
  if t.min_members > t.replicas then
    invalid_arg
      (Printf.sprintf
         "Config: min_members (%d) cannot exceed the initial membership \
          (replicas = %d) — the cluster would be born below its own \
          reconfiguration floor and no remove-replica operation could ever \
          have been responsible for it"
         t.min_members t.replicas);
  if t.learner_lag_bound <= 0 then
    invalid_arg
      "Config: learner_lag_bound must be positive — it is the maximum \
       replay lag (ns) a catching-up learner may carry before being \
       promoted to voter; a zero or negative bound could promote a learner \
       that would immediately stall quorums (or never promote at all)";
  if t.handoff_drain_timeout <= 0 then
    invalid_arg
      "Config: handoff_drain_timeout must be positive — a planned leader \
       handoff waits this long (ns) for in-flight proposals to drain \
       before transferring; without a positive bound a wedged stream would \
       block the handoff forever";
  if t.workers < 1 then invalid_arg "Config: need at least one worker";
  if t.cores < 1 then invalid_arg "Config: need at least one core";
  if t.batch_size < 1 then invalid_arg "Config: batch_size must be >= 1";
  (match t.stream_mode with
  | Sharded n when n < 1 -> invalid_arg "Config: Sharded needs at least one stream"
  | Sharded _ | Per_worker | Single -> ());
  if t.watermark_interval <= 0 then invalid_arg "Config: watermark interval must be positive";
  if t.batch_flush_interval <= 0 then
    invalid_arg "Config: batch_flush_interval must be positive";
  if t.target_batch_delay_ns <= 0 then
    invalid_arg
      "Config: target_batch_delay_ns must be positive (the adaptive batcher \
       sizes batches to meet this latency budget; use batch_policy = Fixed to \
       disable adaptive sizing instead)";
  if t.max_batch_bytes < max_txn_bytes then
    invalid_arg
      (Printf.sprintf
         "Config: max_batch_bytes (%d) must be at least %d so a batch can hold \
          one maximum-size TPC-C transaction; smaller caps would wedge the \
          batcher on the first large transaction"
         t.max_batch_bytes max_txn_bytes);
  if t.batch_policy = Adaptive && t.batch_flush_interval < t.watermark_interval
  then
    invalid_arg
      "Config: adaptive batching needs batch_flush_interval >= \
       watermark_interval — the flush timer is only the idle-stream backstop \
       under Adaptive policy, so a timer finer than the watermark tick burns \
       cycles without improving release latency; raise batch_flush_interval or \
       lower watermark_interval";
  if t.heartbeat_interval <= 0 then invalid_arg "Config: heartbeat_interval must be positive";
  if t.heartbeat_interval >= t.election_timeout then
    invalid_arg "Config: heartbeat_interval must be smaller than election_timeout";
  if t.client_rtt < 0 then invalid_arg "Config: client_rtt must be non-negative";
  if t.client_rpc_overhead < 0 then
    invalid_arg "Config: client_rpc_overhead must be non-negative";
  if t.clients < 0 then invalid_arg "Config: clients must be non-negative";
  if t.replay_batch = Bulk && t.disable_replay then
    invalid_arg
      "Config: replay_batch = Bulk is meaningless with disable_replay — the \
       bulk fast path never runs when followers do not apply entries; drop one \
       of the two settings";
  if t.replay_parallel < 1 then
    invalid_arg "Config: replay_parallel must be >= 1";
  if t.replay_parallel > 1 && t.replay_batch <> Bulk then
    invalid_arg
      "Config: replay_parallel > 1 requires replay_batch = Bulk — only the \
       bulk path materialises the sorted, conflict-free run that can be cut \
       into key-disjoint slices; the per-transaction path replays in commit \
       order and cannot be parallelised safely";
  (let rec dup = function
     | [] -> None
     | x :: rest -> if List.mem x rest then Some x else dup rest
   in
   match dup t.hash_tables with
   | Some name ->
       invalid_arg
         (Printf.sprintf "Config: hash_tables lists %S twice" name)
   | None -> ());
  if t.checkpoint_interval < 0 then
    invalid_arg "Config: checkpoint_interval must be non-negative (0 disables)";
  if t.checkpoint_interval > 0 then begin
    if t.checkpoint_interval <= t.watermark_interval then
      invalid_arg
        "Config: checkpoint_interval must exceed watermark_interval — the \
         checkpoint duty is armed from the controller tick, so an interval at \
         or below the tick would demand a full fuzzy database scan per \
         watermark recomputation; raise checkpoint_interval (typically 100x \
         the tick) or lower watermark_interval";
    if not t.archive_entries then
      invalid_arg
        "Config: checkpoint_interval > 0 requires archive_entries — crash \
         recovery is checkpoint + journal tail, so without archived entries a \
         rebuilt replica would install the checkpoint image and then have no \
         tail to replay above its frontier (and truncation would have nothing \
         to bound); set archive_entries = true alongside checkpointing";
    if t.checkpoint_retention < t.election_timeout then
      invalid_arg
        (Printf.sprintf
           "Config: checkpoint_retention (%d ns) must be at least \
            election_timeout (%d ns) — the retention floor is the slowest \
            follower lag truncation tolerates: entries younger than the floor \
            are never dropped, and a follower that lags further than \
            election_timeout is treated as failed and rebuilds from a \
            checkpoint anyway; raise checkpoint_retention"
           t.checkpoint_retention t.election_timeout);
    if t.checkpoint_disk_mb_per_s < 1 then
      invalid_arg "Config: checkpoint_disk_mb_per_s must be >= 1";
    if t.checkpoint_threads < 1 then
      invalid_arg "Config: checkpoint_threads must be >= 1"
  end;
  if t.follower_reads then begin
    if t.read_lease <= 0 then
      invalid_arg "Config: read_lease must be positive with follower_reads";
    if t.read_lease >= t.election_timeout then
      invalid_arg
        (Printf.sprintf
           "Config: read_lease (%d ns) must be smaller than election_timeout \
            (%d ns) — a deposed leader's cohort may keep serving snapshot \
            reads until its last lease expires, and a new leader can be \
            elected (and commit writes) only after election_timeout of \
            silence; a lease outliving the timeout would let stale followers \
            serve past the point where the new leader considers their reads \
            fenced"
           t.read_lease t.election_timeout);
    if t.read_workers < 1 then
      invalid_arg "Config: read_workers must be >= 1 with follower_reads";
    if t.read_retry_limit < 1 then
      invalid_arg "Config: read_retry_limit must be >= 1 with follower_reads"
  end;
  if t.wan_profile <> "" && Sim.Net.wan_profile t.wan_profile = None then
    invalid_arg
      (Printf.sprintf "Config: unknown wan_profile %S (known: %s, or \"\")"
         t.wan_profile
         (String.concat ", " Sim.Net.wan_profile_names));
  if t.shards < 1 then invalid_arg "Config: shards must be >= 1";
  if t.cross_pct < 0.0 || t.cross_pct > 1.0 then
    invalid_arg "Config: cross_pct must be in [0, 1]";
  if t.cross_pct > 0.0 && t.shards < 2 then
    invalid_arg
      "Config: cross_pct > 0 needs shards >= 2 — a cross-shard mix with a \
       single shard would silently degrade to local transactions and the \
       measured penalty curve would be a lie";
  if t.shards > 1 && t.clients < 1 then
    invalid_arg
      "Config: shards > 1 requires clients >= 1 — a sharded deployment is \
       driven end-to-end by client sessions (the 2PC coordinator rides the \
       client path); the embedded per-worker generator cannot span shards";
  if t.trace_sample_interval < 0 then
    invalid_arg "Config: trace_sample_interval must be non-negative";
  if t.trace_buffer_capacity < 1 then
    invalid_arg "Config: trace_buffer_capacity must be >= 1";
  if t.clients > 0 then begin
    if t.client_timeout <= 0 then invalid_arg "Config: client_timeout must be positive";
    if t.client_retry_limit < 1 then invalid_arg "Config: client_retry_limit must be >= 1";
    if t.client_backoff_base <= 0 then
      invalid_arg "Config: client_backoff_base must be positive";
    if t.client_backoff_max < t.client_backoff_base then
      invalid_arg "Config: client_backoff_max must be >= client_backoff_base";
    if t.client_park_interval <= 0 then
      invalid_arg "Config: client_park_interval must be positive";
    if t.admission_max_pending < 1 then
      invalid_arg "Config: admission_max_pending must be >= 1";
    if t.admission_max_release < 1 then
      invalid_arg "Config: admission_max_release must be >= 1";
    if t.admission_max_backlog < 1 then
      invalid_arg "Config: admission_max_backlog must be >= 1"
  end
