type stream_mode = Per_worker | Single | Sharded of int

type t = {
  replicas : int;
  workers : int;
  cores : int;
  stream_mode : stream_mode;
  batch_size : int;
  batch_flush_interval : int;
  watermark_interval : int;
  heartbeat_interval : int;
  election_timeout : int;
  net_latency : Sim.Net.latency_model;
  costs : Silo.Costs.t;
  physical_serialization : bool;
  networked_clients : bool;
  client_rpc_overhead : int;
  client_rtt : int;
  enqueue_cs_ns : int;
  entry_overhead_ns : int;
  disable_replay : bool;
  archive_entries : bool;
  seed : int64;
}

let default =
  {
    replicas = 3;
    workers = 16;
    cores = 32;
    stream_mode = Per_worker;
    batch_size = 1000;
    batch_flush_interval = 50 * Sim.Engine.ms;
    watermark_interval = Sim.Engine.ms / 2;
    heartbeat_interval = 100 * Sim.Engine.ms;
    election_timeout = Sim.Engine.s;
    net_latency =
      Sim.Net.Exp_jitter { base = 25 * Sim.Engine.us; jitter_mean = 8 * Sim.Engine.us };
    costs = Silo.Costs.default;
    physical_serialization = false;
    networked_clients = false;
    client_rpc_overhead = 180;
    client_rtt = 60 * Sim.Engine.us;
    enqueue_cs_ns = 1_200;
    entry_overhead_ns = 200_000;
    disable_replay = false;
    archive_entries = false;
    seed = 42L;
  }

let ycsb = { default with batch_size = 10_000 }
let nstreams t =
  match t.stream_mode with
  | Per_worker -> t.workers
  | Single -> 1
  | Sharded n -> min n t.workers

let validate t =
  if t.replicas < 1 then invalid_arg "Config: need at least one replica";
  if t.workers < 1 then invalid_arg "Config: need at least one worker";
  if t.cores < 1 then invalid_arg "Config: need at least one core";
  if t.batch_size < 1 then invalid_arg "Config: batch_size must be >= 1";
  (match t.stream_mode with
  | Sharded n when n < 1 -> invalid_arg "Config: Sharded needs at least one stream"
  | Sharded _ | Per_worker | Single -> ());
  if t.watermark_interval <= 0 then invalid_arg "Config: watermark interval must be positive"
