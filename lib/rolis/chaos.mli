(** Seeded chaos harness: a bank-transfer cluster under a random fault
    plan, checked against the {!Check} invariants.

    One seed determines everything — engine schedule, workload, and
    nemesis plan — so [run_seed ~seed] is a pure function of [seed] and a
    failing seed reproduces exactly (then bisect with the oracle's
    first-divergence report and the nemesis debug log).

    Each run: 300 ms steady state; [duration] of faults (crashes and
    restarts of any replica including the leader, symmetric and one-way
    partitions, loss/dup/reorder bursts); then quiesce — stop the
    workload, heal the network, restart dead and tainted replicas — and
    drain until replay converges. Final checks: Paxos agreement (oracle +
    journal prefixes), sealed-watermark agreement, cross-replica state
    convergence, and money conservation. *)

val bank_table : string
val initial_balance : int

val bank_app : accounts:int -> stopped:bool ref -> App.t
(** Random transfers between [accounts] accounts; conserves total money.
    Setting [stopped] freezes generation so the cluster can quiesce. *)

type outcome = {
  seed : int;
  violations : Check.violation list;  (** empty iff the run passed *)
  released : int;
  executed : int;
  crashes : int;
  restarts : int;
  epochs : int;  (** highest election epoch reached *)
  entries_checked : int;  (** durability commits the oracle cross-checked *)
}

val ok : outcome -> bool
val pp_outcome : Format.formatter -> outcome -> unit

val run_seed :
  ?replicas:int ->
  ?workers:int ->
  ?accounts:int ->
  ?duration:int ->
  seed:int ->
  unit ->
  outcome
(** Defaults: 3 replicas, 4 workers, 48 accounts, 3 virtual seconds of
    fault injection. *)

val run_seeds :
  ?replicas:int ->
  ?workers:int ->
  ?accounts:int ->
  ?duration:int ->
  ?seed0:int ->
  ?on_outcome:(outcome -> unit) ->
  seeds:int ->
  unit ->
  outcome list * outcome option
(** Run seeds [seed0 .. seed0 + seeds - 1] (default [seed0 = 1]);
    returns all outcomes and the first failing one, if any.
    [on_outcome] fires after each seed (progress reporting). *)
