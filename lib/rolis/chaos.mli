(** Seeded chaos harness: a bank-transfer cluster under a random fault
    plan, checked against the {!Check} invariants.

    One seed determines everything — engine schedule, workload, client
    sessions, and nemesis plan — so [run_seed ~seed] is a pure function
    of [seed] and a failing seed reproduces exactly (then bisect with the
    oracle's first-divergence report and the nemesis debug log).

    Each run: 300 ms steady state; [duration] of faults (crashes and
    restarts of any replica including the leader, symmetric and one-way
    partitions, loss/dup/reorder bursts); then quiesce — stop the
    workload, heal the network, restart dead and tainted replicas — and
    drain until replay converges. Final checks: Paxos agreement (oracle +
    journal prefixes), sealed-watermark agreement, cross-replica state
    convergence, money conservation, and — when [clients > 0] — the
    end-to-end exactly-once audit of every client ack against the union
    durable log.

    With [clients > 0] (the default), the bank is driven by real
    {!Client} sessions riding the cluster network as extra nodes: they
    time out, back off, chase leader redirects and retry across failover,
    which is precisely what exercises the replicated session-dedup path
    on freshly promoted leaders. [clients = 0] falls back to the embedded
    per-worker generator. *)

val bank_table : string
val initial_balance : int

val bank_app : ?range:int * int -> accounts:int -> stopped:bool ref -> unit -> App.t
(** Random transfers between [accounts] accounts; conserves total money.
    Setting [stopped] freezes generation so the cluster can quiesce. The
    app also carries a [client_op] parsing ["a b amount"] (transfer),
    ["w a amount"] (withdraw) and ["c a amount"] (credit) payloads, so it
    can be driven by {!Client} sessions — the one-sided forms are the
    cross-shard 2PC halves. [range] restricts setup to loading only the
    inclusive account slice [(lo, hi)] (a shard's partition); money is
    then conserved only globally, across all shards
    ({!Check.money_sharded}). *)

val bank_payload : Sim.Rng.t -> accounts:int -> string
(** One random transfer request ["a b amount"] with [a <> b], suitable as
    a {!Client.spawn} [gen]. *)

val bank_read_payload : Sim.Rng.t -> accounts:int -> string
(** One random balance-read request (an account id), suitable as a
    read-only {!Client.spawn} [gen] against [bank_app]'s [read_op]. *)

type outcome = {
  seed : int;
  violations : Check.violation list;  (** empty iff the run passed *)
  released : int;
  executed : int;
  crashes : int;
  restarts : int;
  epochs : int;  (** highest election epoch reached *)
  entries_checked : int;  (** durability commits the oracle cross-checked *)
  acked : int;  (** requests the client sessions got [Ok_released] for *)
  client_retries : int;  (** client resends (timeout / redirect / busy) *)
  busy_replies : int;  (** admission-control pushback seen by clients *)
  parked : int;  (** times a session exhausted retries and parked *)
  checkpoints : int;  (** completed fuzzy checkpoints (current replicas) *)
  truncations : int;  (** cluster-wide journal truncation rounds *)
  rebuilds : int;  (** coordinator-forced checkpoint rebuilds of wedged followers *)
  adds : int;  (** completed add-replica membership changes (ops mode) *)
  removes : int;  (** completed remove-replica membership changes *)
  handoffs : int;  (** completed planned leader transfers *)
  ops_skipped : int;  (** membership operations refused or timed out *)
  reads_acked : int;  (** balance reads the read-only sessions got answered *)
  reads_served : int;  (** snapshot reads answered, all replicas *)
  reads_parked : int;  (** read requests bounced Busy (lease lapse / backlog) *)
  reads_redirected : int;  (** read requests bounced Not_leader *)
  read_misses : int;  (** snapshot-miss retries (reclaimed version races) *)
  read_audit_skipped : int;
      (** audited read samples dropped past the per-replica cap — nonzero
          means {!Check.snapshot_reads} saw a truncated sample *)
  shards : int;  (** shard groups in the deployment (1 = classic run) *)
  cross_committed : int;  (** cross-shard 2PC transactions committed *)
  cross_aborted : int;  (** cross-shard 2PC transactions aborted *)
}

val ok : outcome -> bool
val pp_outcome : Format.formatter -> outcome -> unit

val run_seed :
  ?replicas:int ->
  ?workers:int ->
  ?clients:int ->
  ?accounts:int ->
  ?duration:int ->
  ?checkpoint_interval:int ->
  ?history_warmup:int ->
  ?ops:bool ->
  ?spares:int ->
  ?follower_reads:bool ->
  ?read_clients:int ->
  ?read_lease:int ->
  ?wan_profile:string ->
  seed:int ->
  unit ->
  outcome
(** Defaults: 3 replicas, 4 workers, 8 client sessions, 48 accounts,
    3 virtual seconds of fault injection, checkpointing off.

    [checkpoint_interval > 0] turns on the checkpoint subsystem with a
    retention equal to the election timeout (the minimum Config allows),
    so truncation rounds fire inside the run and crashes race in-progress
    checkpoints, checkpointer processes and truncation-racing recoveries.
    [history_warmup] adds fault-free run time before the nemesis starts,
    letting journals grow and compaction fire first — the long-history
    crash scenarios.

    [ops] switches the nemesis to the rolling-operations plan
    ({!Sim.Fault.ops_plan}): add-replica (through [spares] dark pool
    slots, default 2), remove-replica, planned leader handoff, and
    rolling restarts, while the client sessions keep committing.
    Checkpointing defaults on in ops mode (joining learners bootstrap
    from the newest image + tail) and the final checks additionally
    assert {!Check.membership_agreement}; the exactly-once audit covers
    removed nodes through the evidence harvested at decommission.

    [follower_reads] turns on the watermark-snapshot read path and adds
    [read_clients] (default 4) read-only {!Client} sessions driving
    balance reads at the replica pool, with a freshness lease of
    [read_lease] (default 150 ms — the chaos election timeout is 300 ms
    and Config requires lease < timeout). The final checks then also run
    {!Check.snapshot_reads} over every replica's audited read sample; the
    read sessions' acks are excluded from the exactly-once audit (reads
    are idempotent). [wan_profile] applies a named {!Sim.Net.wan_profile}
    latency matrix to the whole deployment ([""] = uniform). *)

val run_seeds :
  ?replicas:int ->
  ?workers:int ->
  ?clients:int ->
  ?accounts:int ->
  ?duration:int ->
  ?checkpoint_interval:int ->
  ?history_warmup:int ->
  ?ops:bool ->
  ?spares:int ->
  ?follower_reads:bool ->
  ?read_clients:int ->
  ?read_lease:int ->
  ?wan_profile:string ->
  ?seed0:int ->
  ?on_outcome:(outcome -> unit) ->
  seeds:int ->
  unit ->
  outcome list * outcome option
(** Run seeds [seed0 .. seed0 + seeds - 1] (default [seed0 = 1]);
    returns all outcomes and the first failing one, if any.
    [on_outcome] fires after each seed (progress reporting). *)

val run_sharded_seed :
  ?shards:int ->
  ?cross_pct:float ->
  ?replicas:int ->
  ?workers:int ->
  ?drivers:int ->
  ?accounts_per_shard:int ->
  ?duration:int ->
  seed:int ->
  unit ->
  outcome
(** Sharded chaos: a {!Shard} deployment of [shards] (default 2) bank
    clusters, each loading its own account partition, driven by
    [drivers] (default 6) cross-session drivers issuing transfers —
    one-sided withdraw/credit halves committed through 2PC at
    [cross_pct] (default 0.2). Every shard gets its own independent
    nemesis plan, so coordinator and participant shards crash,
    partition and fail over at uncorrelated moments — including between
    a prepare and its decision, and between a decision and its applies.
    Final checks: every per-shard invariant (oracle, agreement,
    watermarks, convergence, exactly-once) plus {!Check.cross_shard}
    atomicity/exactly-once over the decision marks and
    {!Check.money_sharded} global conservation. Checkpointing stays off
    (truncation could drop decision-carrying slots the cross-shard
    oracle needs). *)

val run_sharded_seeds :
  ?shards:int ->
  ?cross_pct:float ->
  ?replicas:int ->
  ?workers:int ->
  ?drivers:int ->
  ?accounts_per_shard:int ->
  ?duration:int ->
  ?seed0:int ->
  ?on_outcome:(outcome -> unit) ->
  seeds:int ->
  unit ->
  outcome list * outcome option
(** {!run_sharded_seed} over [seed0 .. seed0 + seeds - 1]; same contract
    as {!run_seeds}. *)
