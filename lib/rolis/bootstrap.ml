let pull_snapshot ~src ~dst ?(rows_per_yield = 256) () =
  let copied = ref 0 in
  let src_costs = Silo.Db.costs src in
  List.iter
    (fun src_table ->
      let name = Store.Table.name src_table in
      let dst_table =
        try Silo.Db.table dst name with Not_found -> Silo.Db.create_table dst name
      in
      (* Materialise the keys first: the scan cursor must tolerate the
         source mutating under it, and our B+tree iterators are not
         isolated. A real implementation would use a stable cursor; the
         cost model charges the same either way. *)
      let rows = ref [] in
      Store.Table.iter src_table (fun k r ->
          if not r.Store.Record.deleted then
            rows := (k, r.Store.Record.value, r.Store.Record.epoch, r.Store.Record.ts) :: !rows);
      let batch = ref 0 in
      List.iter
        (fun (k, v, epoch, ts) ->
          (match Store.Table.get dst_table k with
          | Some existing ->
              ignore (Store.Record.cas_apply existing ~epoch ~ts ~value:(Some v))
          | None ->
              let r = Store.Record.make ~epoch ~ts v in
              Store.Table.insert dst_table k r);
          incr copied;
          incr batch;
          if !batch >= rows_per_yield then begin
            batch := 0;
            (* Charge the scan burst to the source machine and yield. *)
            Sim.Cpu.consume (Silo.Db.cpu src)
              (rows_per_yield * src_costs.Silo.Costs.read_ns)
          end)
        (List.rev !rows))
    (Silo.Db.tables src);
  !copied

let replay_entries ~dst entries =
  let applied = ref 0 in
  List.iter
    (fun (entry : Store.Wire.entry) ->
      List.iter
        (fun (txn : Store.Wire.txn_log) ->
          Silo.Db.apply_replay dst txn ~epoch:entry.epoch
            ~writes:(List.length txn.Store.Wire.writes)
            ~applied)
        entry.txns)
    entries;
  !applied

let sync_new_replica ~src ~dst ?ckpt () =
  match ckpt with
  | None ->
      let rows = pull_snapshot ~src:(Replica.db src) ~dst () in
      let applies = replay_entries ~dst (Replica.archived_entries src) in
      (rows, applies)
  | Some (ck : Checkpoint.replica_image) ->
      (* Checkpoint-seeded variant: install the image (idempotent CAS, so
         overlap with the tail is harmless), pay the modeled load time,
         then replay only the source's journal tail above the image's
         per-stream cover — the whole point of truncation-era bootstrap is
         that the replayed tail no longer grows with history. *)
      let rows = Checkpoint.install ~into:dst ck.Checkpoint.ri_image in
      Sim.Engine.sleep
        (Checkpoint.load_cost ~costs:(Silo.Db.costs dst) ck.Checkpoint.ri_image);
      let cover = ck.Checkpoint.ri_cover in
      let tail =
        List.filter_map
          (fun (s, idx, e) ->
            if s >= Array.length cover || idx > cover.(s) then Some e else None)
          (Replica.journal src)
      in
      let applies = replay_entries ~dst tail in
      (rows, applies)
