(* Sized for Trace's stage set (16 stages today); a fixed bound keeps the
   array allocation-free on the hot path. *)
let max_stages = 20

type t = {
  eng : Sim.Engine.t;
  mutable window_start : int;
  mutable executed : int;
  mutable user_aborts : int;
  mutable released : int;
  mutable serialized_bytes : int;
  mutable replicated_bytes : int;
  mutable spec_bytes : int;
  mutable spec_peak : int;
  mutable spec_sum : float;
  mutable spec_samples : int;
  mutable replayed_txns : int;
  mutable replayed_writes : int;
  mutable client_requests : int;
  mutable cached_replies : int;
  mutable busy_replies : int;
  mutable redirects : int;
  mutable parked_ns : int;
  mutable parked_requests : int;
  mutable entries_flushed : int;
  mutable deadline_flushes : int;
  mutable event_releases : int;
  mutable reads_served : int;
  mutable reads_parked : int;
  mutable reads_redirected : int;
  mutable read_misses : int;
  mutable lat : Sim.Metrics.Hist.t;
  mutable series : Sim.Metrics.Series.t;
  mutable stage_hists : Sim.Metrics.Hist.t array;
}

let create eng =
  {
    eng;
    window_start = 0;
    executed = 0;
    user_aborts = 0;
    released = 0;
    serialized_bytes = 0;
    replicated_bytes = 0;
    spec_bytes = 0;
    spec_peak = 0;
    spec_sum = 0.0;
    spec_samples = 0;
    replayed_txns = 0;
    replayed_writes = 0;
    client_requests = 0;
    cached_replies = 0;
    busy_replies = 0;
    redirects = 0;
    parked_ns = 0;
    parked_requests = 0;
    entries_flushed = 0;
    deadline_flushes = 0;
    event_releases = 0;
    reads_served = 0;
    reads_parked = 0;
    reads_redirected = 0;
    read_misses = 0;
    lat = Sim.Metrics.Hist.create ();
    series = Sim.Metrics.Series.create ~bucket_ns:(100 * Sim.Engine.ms);
    stage_hists = Array.init max_stages (fun _ -> Sim.Metrics.Hist.create ());
  }

let note_executed t = t.executed <- t.executed + 1
let note_user_abort t = t.user_aborts <- t.user_aborts + 1

let note_submitted t ~bytes =
  t.spec_bytes <- t.spec_bytes + bytes;
  if t.spec_bytes > t.spec_peak then t.spec_peak <- t.spec_bytes

let note_serialized t ~bytes = t.serialized_bytes <- t.serialized_bytes + bytes

let note_replicated t ~bytes =
  t.replicated_bytes <- t.replicated_bytes + bytes;
  t.entries_flushed <- t.entries_flushed + 1

let note_deadline_flush t = t.deadline_flushes <- t.deadline_flushes + 1
let note_event_release t = t.event_releases <- t.event_releases + 1

let note_released t ~start ~latency ~bytes =
  t.released <- t.released + 1;
  t.spec_bytes <- t.spec_bytes - bytes;
  (* Transactions executed before the measurement window opened carry
     warm-up queueing in their latency; count their release (throughput)
     but keep the contaminated sample out of the histogram. *)
  if start >= t.window_start then Sim.Metrics.Hist.add t.lat latency;
  Sim.Metrics.Series.add t.series ~at:(Sim.Engine.now t.eng) 1

let note_dropped_speculative t ~bytes = t.spec_bytes <- t.spec_bytes - bytes

let note_stage t ~stage ~latency =
  if stage >= 0 && stage < max_stages then
    Sim.Metrics.Hist.add t.stage_hists.(stage) latency

let stage_hist t stage =
  if stage < 0 || stage >= max_stages then invalid_arg "Stats.stage_hist: bad index";
  t.stage_hists.(stage)

let note_client_request t = t.client_requests <- t.client_requests + 1
let note_cached_reply t = t.cached_replies <- t.cached_replies + 1
let note_busy_reply t = t.busy_replies <- t.busy_replies + 1
let note_redirect t = t.redirects <- t.redirects + 1

let note_parked t ~ns =
  t.parked_requests <- t.parked_requests + 1;
  t.parked_ns <- t.parked_ns + ns

let note_read_served t = t.reads_served <- t.reads_served + 1
let note_read_parked t = t.reads_parked <- t.reads_parked + 1
let note_read_redirect t = t.reads_redirected <- t.reads_redirected + 1
let note_read_miss t = t.read_misses <- t.read_misses + 1

let note_replayed t ~txns ~writes =
  t.replayed_txns <- t.replayed_txns + txns;
  t.replayed_writes <- t.replayed_writes + writes

let sample_speculative_memory t =
  t.spec_sum <- t.spec_sum +. float_of_int t.spec_bytes;
  t.spec_samples <- t.spec_samples + 1

let released t = t.released
let release_series t = t.series
let latency t = t.lat
let executed t = t.executed
let user_aborts t = t.user_aborts
let replayed_txns t = t.replayed_txns
let replayed_writes t = t.replayed_writes
let client_requests t = t.client_requests
let cached_replies t = t.cached_replies
let busy_replies t = t.busy_replies
let redirects t = t.redirects
let parked_ns t = t.parked_ns
let parked_requests t = t.parked_requests
let serialized_bytes t = t.serialized_bytes
let replicated_bytes t = t.replicated_bytes
let speculative_bytes t = t.spec_bytes
let entries_flushed t = t.entries_flushed
let deadline_flushes t = t.deadline_flushes
let event_releases t = t.event_releases
let reads_served t = t.reads_served
let reads_parked t = t.reads_parked
let reads_redirected t = t.reads_redirected
let read_misses t = t.read_misses

let avg_speculative_bytes t =
  if t.spec_samples = 0 then 0.0 else t.spec_sum /. float_of_int t.spec_samples

let peak_speculative_bytes t = t.spec_peak

let throughput t ~start ~stop =
  let dt = stop - start in
  if dt <= 0 then 0.0 else float_of_int t.released *. 1e9 /. float_of_int dt

let reset_window t =
  t.window_start <- Sim.Engine.now t.eng;
  t.released <- 0;
  t.executed <- 0;
  t.user_aborts <- 0;
  t.replayed_txns <- 0;
  t.replayed_writes <- 0;
  t.serialized_bytes <- 0;
  t.replicated_bytes <- 0;
  t.entries_flushed <- 0;
  t.deadline_flushes <- 0;
  t.event_releases <- 0;
  t.reads_served <- 0;
  t.reads_parked <- 0;
  t.reads_redirected <- 0;
  t.read_misses <- 0;
  t.spec_sum <- 0.0;
  t.spec_samples <- 0;
  t.lat <- Sim.Metrics.Hist.create ();
  t.series <- Sim.Metrics.Series.create ~bucket_ns:(100 * Sim.Engine.ms);
  t.stage_hists <- Array.init max_stages (fun _ -> Sim.Metrics.Hist.create ())
