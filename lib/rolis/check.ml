type violation = { check : string; detail : string }

let violation check fmt = Format.kasprintf (fun detail -> { check; detail }) fmt
let pp_violation fmt v = Format.fprintf fmt "[%s] %s" v.check v.detail

(* How many violations of one kind we keep; a diverged run would otherwise
   produce one per commit. *)
let cap = 20

module Oracle = struct
  type t = {
    chosen : (int * int, Store.Wire.entry) Hashtbl.t; (* (stream, idx) *)
    mutable checked : int;
    mutable violations : violation list;
    mutable nviol : int;
  }

  let create () =
    { chosen = Hashtbl.create 4096; checked = 0; violations = []; nviol = 0 }

  let entry_sig (e : Store.Wire.entry) =
    Printf.sprintf "{epoch=%d; last_ts=%d; txns=%d; bytes=%d}" e.epoch e.last_ts
      (List.length e.txns) (Store.Wire.byte_size e)

  let observe t ~replica ~stream ~idx entry =
    t.checked <- t.checked + 1;
    match Hashtbl.find_opt t.chosen (stream, idx) with
    | None -> Hashtbl.replace t.chosen (stream, idx) entry
    | Some chosen ->
        if chosen <> entry then begin
          t.nviol <- t.nviol + 1;
          if t.nviol <= cap then
            t.violations <-
              violation "agreement"
                "replica %d committed %s at (stream %d, idx %d) but %s was already chosen"
                replica (entry_sig entry) stream idx (entry_sig chosen)
              :: t.violations
        end

  let violations t = List.rev t.violations
  let entries_checked t = t.checked
end

let alive_replicas cluster =
  Array.to_list (Cluster.replicas cluster) |> List.filter Replica.is_alive

(* A replica's committed journal keyed by absolute (stream, idx). Under
   checkpoint truncation journals are no longer prefixes from zero —
   different replicas retain different windows — so agreement compares
   entries at overlapping absolute slots, never by list position. *)
let stream_logs r =
  let tbl : (int * int, Store.Wire.entry) Hashtbl.t = Hashtbl.create 4096 in
  List.iter
    (fun (s, idx, e) -> Hashtbl.replace tbl (s, idx) e)
    (Replica.journal r);
  tbl

let agreement cluster =
  let reps = alive_replicas cluster in
  let logs = List.map (fun r -> (Replica.id r, stream_logs r)) reps in
  let chosen : (int * int, int * Store.Wire.entry) Hashtbl.t =
    Hashtbl.create 4096
  in
  let viols = ref [] and nviol = ref 0 in
  List.iter
    (fun (id, tbl) ->
      Hashtbl.iter
        (fun (s, idx) e ->
          match Hashtbl.find_opt chosen (s, idx) with
          | None -> Hashtbl.replace chosen (s, idx) (id, e)
          | Some (id0, e0) ->
              if e0 <> e then begin
                incr nviol;
                if !nviol <= cap then
                  viols :=
                    violation "agreement"
                      "stream %d idx %d: replica %d has %s, replica %d has %s" s
                      idx id (Oracle.entry_sig e) id0 (Oracle.entry_sig e0)
                    :: !viols
              end)
        tbl)
    logs;
  List.rev !viols

let watermark_agreement cluster =
  let reps = alive_replicas cluster in
  let max_epoch =
    List.fold_left
      (fun m r -> max m (Paxos.Election.epoch (Replica.election r)))
      1 reps
  in
  let viols = ref [] in
  for e = 1 to max_epoch do
    let ws =
      List.filter_map
        (fun r ->
          Option.map (fun w -> (Replica.id r, w)) (Replica.final_watermark r ~epoch:e))
        reps
    in
    match ws with
    | [] | [ _ ] -> ()
    | (id0, w0) :: rest ->
        List.iter
          (fun (id, w) ->
            if w <> w0 then
              viols :=
                violation "watermark"
                  "epoch %d sealed at W=%d on replica %d but W=%d on replica %d" e
                  w0 id0 w id
                :: !viols)
          rest
  done;
  List.rev !viols

(* Configurations are replicated through the log, so two replicas that
   adopted the same membership generation must hold the same view — a
   mismatch means a config entry forked, the membership analogue of log
   disagreement. Replicas at *different* generations are legal (a node
   down through a change is simply behind). *)
let membership_agreement cluster =
  let reps = alive_replicas cluster in
  let by_gen : (int, int * Paxos.Member.view) Hashtbl.t = Hashtbl.create 8 in
  let viols = ref [] in
  List.iter
    (fun r ->
      let gen = Replica.mgen r and view = Replica.view r in
      match Hashtbl.find_opt by_gen gen with
      | None -> Hashtbl.replace by_gen gen (Replica.id r, view)
      | Some (id0, view0) ->
          if not (Paxos.Member.equal view view0) then
            viols :=
              violation "membership"
                "generation %d: replica %d holds view %a but replica %d holds %a"
                gen (Replica.id r) Paxos.Member.pp view id0
                Paxos.Member.pp view0
              :: !viols)
    reps;
  List.rev !viols

(* Live records of every table, in deterministic (table, key) order. *)
let table_dump db =
  Silo.Db.tables db
  |> List.concat_map (fun t ->
         let acc = ref [] in
         Store.Table.iter t (fun k r ->
             if not r.Store.Record.deleted then
               acc := (Store.Table.name t, k, r.Store.Record.value) :: !acc);
         List.rev !acc)

let convergence cluster =
  match alive_replicas cluster with
  | [] | [ _ ] -> []
  | r0 :: rest ->
      let d0 = table_dump (Replica.db r0) in
      List.filter_map
        (fun r ->
          let d = table_dump (Replica.db r) in
          if d <> d0 then begin
            let diff =
              List.filter (fun x -> not (List.mem x d0)) d
              |> List.map (fun (t, k, v) -> Printf.sprintf "%s[%S]=%S" t k v)
            in
            Some
              (violation "convergence"
                 "replica %d live state differs from replica %d (%d vs %d live \
                  records; e.g. %s)"
                 (Replica.id r) (Replica.id r0) (List.length d) (List.length d0)
                 (match diff with [] -> "missing records" | x :: _ -> x))
          end
          else None)
        rest

(* Exactly-once audit of the client-session layer. Ground truth is the
   union durable log: every committed (stream, idx) slot across alive
   replicas (agreement — checked separately — makes the slot's entry
   unambiguous), plus the cluster's harvested dedup evidence for slots
   that checkpoint truncation dropped from every surviving journal. A
   request-carrying transaction counts as *applied* iff it is below its
   epoch's final watermark — for the last, unsealed epoch, every durable
   transaction counts (valid once the cluster has quiesced and drained:
   nothing above the final watermark remains unreleased). Then:

   - no (client, seq) may be applied more than once, acked or not —
     a duplicate means the session dedup failed (e.g. a retry re-executed
     after a failover that should have answered from the rebuilt table);
   - every *acked* (client, seq) must be applied exactly once — a zero
     count means an ack escaped for a transaction that later vanished,
     i.e. a release-visibility violation (§3.3). *)
let exactly_once cluster ~acked =
  let reps = alive_replicas cluster in
  let final_w epoch =
    List.fold_left
      (fun acc r ->
        match acc with Some _ -> acc | None -> Replica.final_watermark r ~epoch)
      None reps
  in
  let union : (int * int, Store.Wire.entry) Hashtbl.t = Hashtbl.create 4096 in
  List.iter
    (fun r ->
      List.iter
        (fun (s, idx, e) -> Hashtbl.replace union (s, idx) e)
        (Replica.journal r))
    reps;
  let counts : (int * int, int) Hashtbl.t = Hashtbl.create 4096 in
  let bump key =
    let cur = match Hashtbl.find_opt counts key with Some c -> c | None -> 0 in
    Hashtbl.replace counts key (cur + 1)
  in
  Hashtbl.iter
    (fun _ (e : Store.Wire.entry) ->
      let w = match final_w e.epoch with Some w -> w | None -> max_int in
      List.iter
        (fun (txn : Store.Wire.txn_log) ->
          match txn.Store.Wire.req with
          | Some key when txn.Store.Wire.ts <= w -> bump key
          | Some _ | None -> ())
        e.txns)
    union;
  (* Slots truncated from every surviving journal: the coordinator
     harvested their request keys before the drop (already filtered by
     the final-watermark rule at harvest time). Counted only when absent
     from the union — a slot truncated on some replicas but retained on
     another must not count twice. *)
  List.iter
    (fun ((s, idx), keys) ->
      if not (Hashtbl.mem union (s, idx)) then List.iter bump keys)
    (Cluster.harvested_requests cluster);
  let viols = ref [] and nviol = ref 0 in
  Hashtbl.iter
    (fun (cid, seq) c ->
      if c > 1 then begin
        incr nviol;
        if !nviol <= cap then
          viols :=
            violation "exactly-once" "request (client %d, seq %d) applied %d times"
              cid seq c
            :: !viols
      end)
    counts;
  List.iter
    (fun (cid, seq) ->
      match Hashtbl.find_opt counts (cid, seq) with
      | Some _ -> () (* count > 1 already reported above *)
      | None ->
          incr nviol;
          if !nviol <= cap then
            viols :=
              violation "exactly-once"
                "acked request (client %d, seq %d) is not in the applied durable \
                 log (released result lost)"
                cid seq
              :: !viols)
    acked;
  List.rev !viols

(* Snapshot-read audit. Every replica keeps a deterministic sample of the
   reads it served: the pin each used and every observation (table, key,
   observed version timestamp) its body made. Ground truth is again the
   union durable log, filtered by the final-watermark rule: a write counts
   as *applied* iff its transaction is below its epoch's final watermark
   (unsealed last epoch: everything durable — valid once quiesced). For
   each observation, with [exp] = the newest applied write timestamp <=
   the read's pin for that key (0 if none, i.e. only the ts-0 setup record
   could exist):

   - [ots > pin] is always a violation — the read escaped its snapshot and
     saw above-watermark (possibly speculative, never-released) state;
   - [ots < exp] with [exp > 0] is a violation — the read missed an
     applied write below its pin, i.e. a torn or stale snapshot (version
     reclamation dropped a version a pinned read still needed);
   - [ots > exp] is a violation unless checkpoint truncation has dropped
     journal slots (then the write's provenance may simply be gone);
     [ots <= 0] (setup record or absent) is always consistent with
     [exp = 0]. *)
let snapshot_reads cluster =
  let reps = alive_replicas cluster in
  let final_w epoch =
    List.fold_left
      (fun acc r ->
        match acc with Some _ -> acc | None -> Replica.final_watermark r ~epoch)
      None reps
  in
  let union : (int * int, Store.Wire.entry) Hashtbl.t = Hashtbl.create 4096 in
  List.iter
    (fun r ->
      List.iter
        (fun (s, idx, e) -> Hashtbl.replace union (s, idx) e)
        (Replica.journal r))
    reps;
  (* Applied write timestamps per (table, key), descending order not
     needed — we only ever take the max below a pin. *)
  let writes : (int * string, int list) Hashtbl.t = Hashtbl.create 4096 in
  Hashtbl.iter
    (fun _ (e : Store.Wire.entry) ->
      let w = match final_w e.epoch with Some w -> w | None -> max_int in
      List.iter
        (fun (txn : Store.Wire.txn_log) ->
          if txn.Store.Wire.ts <= w then
            List.iter
              (fun (wr : Store.Wire.write) ->
                let key = (wr.Store.Wire.table, wr.Store.Wire.key) in
                let cur =
                  match Hashtbl.find_opt writes key with
                  | Some l -> l
                  | None -> []
                in
                Hashtbl.replace writes key (txn.Store.Wire.ts :: cur))
              txn.Store.Wire.writes)
        e.txns)
    union;
  let truncated =
    Array.exists (fun c -> c >= 0) (Cluster.trunc_frontier cluster)
  in
  let expected_at ~table ~key ~pin =
    match Hashtbl.find_opt writes (table, key) with
    | None -> 0
    | Some l -> List.fold_left (fun m ts -> if ts <= pin then max m ts else m) 0 l
  in
  let viols = ref [] and nviol = ref 0 in
  let bad fmt =
    Format.kasprintf
      (fun detail ->
        incr nviol;
        if !nviol <= cap then
          viols := { check = "snapshot-read"; detail } :: !viols)
      fmt
  in
  List.iter
    (fun r ->
      List.iter
        (fun (pin, obs) ->
          List.iter
            (fun (table, key, ots) ->
              if ots > pin then
                bad
                  "replica %d: read pinned at %d observed table %d key %S at \
                   ts %d — above its snapshot"
                  (Replica.id r) pin table key ots
              else
                let exp = expected_at ~table ~key ~pin in
                if ots < exp && exp > 0 then
                  bad
                    "replica %d: read pinned at %d observed table %d key %S \
                     at ts %d but an applied write at ts %d <= pin exists \
                     (stale/torn snapshot)"
                    (Replica.id r) pin table key ots exp
                else if ots > exp && ots > 0 && not truncated then
                  bad
                    "replica %d: read pinned at %d observed table %d key %S \
                     at ts %d which is in no applied durable transaction"
                    (Replica.id r) pin table key ots)
            obs)
        (Replica.read_audits r))
    reps;
  List.rev !viols

(* Cross-shard 2PC audit over the decision marks the journals carry
   (see {!Shard}): every "!p"/"!c"/"!a"/"!x"/"!r" control transaction
   stamps its wire record with a {!Store.Wire.decision}, so the protocol
   history is replicated state, not driver-side memory. Ground truth per
   shard is the union durable log filtered by the final-watermark rule
   (exactly as {!exactly_once}). After quiesce:

   - a transaction id may carry at most one of {Committed, Aborted};
   - no (xid, shard) may be Applied more than once (the session layer
     must have deduplicated the driver's apply retries);
   - an Applied mark with an Aborted decision — or a Canceled mark with
     a Committed decision — is an atomicity violation;
   - a Committed decision names its participants, and each must carry an
     Applied mark: a shard that failed over between prepare and apply
     must have recovered the staged intent from its journal;
   - an Applied mark with no Committed decision anywhere means a
     participant applied state no coordinator decided.

   Valid with checkpoint truncation off (sharded chaos keeps it off):
   truncation could drop decision-carrying slots from every journal. *)
let cross_shard clusters =
  let applied_marks cluster =
    let reps = alive_replicas cluster in
    let final_w epoch =
      List.fold_left
        (fun acc r ->
          match acc with Some _ -> acc | None -> Replica.final_watermark r ~epoch)
        None reps
    in
    let union : (int * int, Store.Wire.entry) Hashtbl.t = Hashtbl.create 4096 in
    List.iter
      (fun r ->
        List.iter
          (fun (s, idx, e) -> Hashtbl.replace union (s, idx) e)
          (Replica.journal r))
      reps;
    let acc = ref [] in
    Hashtbl.iter
      (fun _ (e : Store.Wire.entry) ->
        let w = match final_w e.epoch with Some w -> w | None -> max_int in
        List.iter
          (fun (txn : Store.Wire.txn_log) ->
            match txn.Store.Wire.decision with
            | Some d when txn.Store.Wire.ts <= w -> acc := d :: !acc
            | Some _ | None -> ())
          e.txns)
      union;
    !acc
  in
  let decided : (int, (bool * int list * int) list) Hashtbl.t =
    Hashtbl.create 256
  in
  let applied : (int * int, int) Hashtbl.t = Hashtbl.create 256 in
  let canceled : (int * int, unit) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri
    (fun shard cluster ->
      List.iter
        (fun (d : Store.Wire.decision) ->
          match d.Store.Wire.d_phase with
          | Store.Wire.Prepared -> ()
          | Store.Wire.Committed | Store.Wire.Aborted ->
              let commit = d.Store.Wire.d_phase = Store.Wire.Committed in
              let cur =
                Option.value ~default:[]
                  (Hashtbl.find_opt decided d.Store.Wire.d_xid)
              in
              Hashtbl.replace decided d.Store.Wire.d_xid
                ((commit, d.Store.Wire.d_parts, shard) :: cur)
          | Store.Wire.Applied ->
              let key = (d.Store.Wire.d_xid, shard) in
              let c = Option.value ~default:0 (Hashtbl.find_opt applied key) in
              Hashtbl.replace applied key (c + 1)
          | Store.Wire.Canceled ->
              Hashtbl.replace canceled (d.Store.Wire.d_xid, shard) ())
        (applied_marks cluster))
    clusters;
  let viols = ref [] and nviol = ref 0 in
  let bad fmt =
    Format.kasprintf
      (fun detail ->
        incr nviol;
        if !nviol <= cap then
          viols := { check = "cross-shard"; detail } :: !viols)
      fmt
  in
  let outcome_of xid =
    match Hashtbl.find_opt decided xid with
    | None -> `Undecided
    | Some ds ->
        let commits = List.filter (fun (c, _, _) -> c) ds
        and aborts = List.filter (fun (c, _, _) -> not c) ds in
        if commits <> [] && aborts <> [] then `Conflict
        else if commits <> [] then
          let _, parts, shard = List.hd commits in
          `Committed (parts, shard)
        else `Aborted
  in
  Hashtbl.iter
    (fun xid ds ->
      (match outcome_of xid with
      | `Conflict ->
          bad "xid %d carries both commit and abort decisions" xid
      | `Committed (parts, shard) ->
          List.iter
            (fun p ->
              if not (Hashtbl.mem applied (xid, p)) then
                bad
                  "xid %d committed (decision on shard %d) but participant \
                   shard %d never applied its intent"
                  xid shard p)
            parts
      | `Aborted | `Undecided -> ());
      ignore ds)
    decided;
  Hashtbl.iter
    (fun (xid, shard) c ->
      if c > 1 then bad "xid %d applied %d times on shard %d" xid c shard;
      match outcome_of xid with
      | `Aborted -> bad "xid %d applied on shard %d despite an abort decision" xid shard
      | `Undecided -> bad "xid %d applied on shard %d with no decision in any log" xid shard
      | `Committed _ | `Conflict -> ())
    applied;
  Hashtbl.iter
    (fun (xid, shard) () ->
      match outcome_of xid with
      | `Committed _ ->
          bad "xid %d canceled on shard %d despite a commit decision" xid shard
      | `Aborted | `Undecided | `Conflict -> ())
    canceled;
  List.rev !viols

let money cluster ~table ~expected =
  alive_replicas cluster
  |> List.filter_map (fun r ->
         let t = Silo.Db.table (Replica.db r) table in
         let sum = ref 0 and bad = ref 0 in
         Store.Table.iter t (fun _ rec_ ->
             if not rec_.Store.Record.deleted then
               match int_of_string_opt rec_.Store.Record.value with
               | Some v -> sum := !sum + v
               | None -> incr bad);
         if !bad > 0 then
           Some
             (violation "money" "replica %d: %d non-numeric balances in %S"
                (Replica.id r) !bad table)
         else if !sum <> expected then
           Some
             (violation "money" "replica %d: sum(%S) = %d, expected %d"
                (Replica.id r) table !sum expected)
         else None)

(* Global conservation across a sharded deployment: each shard owns a
   partition of the accounts and cross-shard transfers move money between
   partitions through 2PC, so no single shard's sum is invariant — only
   the total over one (converged — checked per shard) replica per shard.
   A half-applied cross-shard transfer shows up here as leaked or
   destroyed money even if every per-shard oracle is happy. *)
let money_sharded clusters ~table ~expected =
  let shard_sum cluster =
    match alive_replicas cluster with
    | [] -> None
    | r :: _ ->
        let t = Silo.Db.table (Replica.db r) table in
        let sum = ref 0 and bad = ref 0 in
        Store.Table.iter t (fun _ rec_ ->
            if not rec_.Store.Record.deleted then
              match int_of_string_opt rec_.Store.Record.value with
              | Some v -> sum := !sum + v
              | None -> incr bad);
        Some (Replica.id r, !sum, !bad)
  in
  let total = ref 0 and viols = ref [] and missing = ref false in
  Array.iteri
    (fun shard cluster ->
      match shard_sum cluster with
      | None ->
          missing := true;
          viols :=
            violation "money" "shard %d has no alive replica to audit" shard
            :: !viols
      | Some (rid, sum, bad) ->
          total := !total + sum;
          if bad > 0 then
            viols :=
              violation "money" "shard %d replica %d: %d non-numeric balances"
                shard rid bad
              :: !viols)
    clusters;
  if (not !missing) && !total <> expected then
    viols :=
      violation "money" "global sum(%S) over %d shards = %d, expected %d" table
        (Array.length clusters) !total expected
      :: !viols;
  List.rev !viols
