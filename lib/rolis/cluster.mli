(** A complete Rolis deployment inside one simulation engine: [replicas]
    machines, a network, and an application.

    Typical use (and what every benchmark does):

    {[
      let cluster = Cluster.create cfg app in
      Cluster.run cluster ~warmup:(200 * Sim.Engine.ms) ~duration:Sim.Engine.s ();
      let tps = Cluster.throughput cluster in
    ]}

    Throughput and latency cover {e release-committed} transactions only,
    summed over every replica that served during the measurement window
    (so a failover run counts the old leader's releases before the crash
    and the new leader's after). *)

type t

val create :
  ?initial_leader:int option ->
  ?on_durable:(replica:int -> stream:int -> idx:int -> Store.Wire.entry -> unit) ->
  Config.t ->
  App.t ->
  t
(** Build replicas, load the application on each, spawn all processes.
    [initial_leader] defaults to [Some 0] (skip the cold-start election);
    pass [None] to start leaderless. [on_durable] observes every
    durability commit on every replica (see {!Check.Oracle}). With
    [cfg.clients > 0] the net carries [replicas + clients] nodes; spawn
    the sessions with {!Client.spawn} on {!network}. *)

val engine : t -> Sim.Engine.t
val network : t -> Paxos.Msg.t Sim.Net.t
val config : t -> Config.t
val replicas : t -> Replica.t array
val replica : t -> int -> Replica.t

val leader : t -> Replica.t option
(** The replica currently serving transactions, if any. *)

val run : t -> ?warmup:int -> duration:int -> unit -> unit
(** Advance virtual time by [warmup] (then reset all windowed stats) plus
    [duration]. May be called repeatedly to extend a run. *)

val crash_replica : t -> int -> unit
(** Crash-stop a machine: kill its processes and cut it from the network. *)

val restart_replica : t -> int -> unit
(** Rebuild replica [i] from scratch (crashing it first if still alive):
    fresh database and streams, then either checkpoint + journal-tail
    bootstrap (when [checkpoint_interval > 0] and a persisted image
    covers the truncated frontier — see
    {!Replica.bootstrap_from_checkpoint}) or catch-up from the
    per-stream union of every alive peer's journal
    ({!Replica.catch_up_from}); rejoin as follower. The entries
    committed after the snapshot arrive through the hardened fetch
    path. *)

val window : t -> int * int
(** Measurement window [(start, stop)] of the last {!run}. *)

val released : t -> int
val throughput : t -> float
(** Released transactions per virtual second over the last window. *)

val latency : t -> Sim.Metrics.Hist.t
(** Release latencies merged across replicas. *)

val release_rate : t -> (float * float) list
(** (seconds, releases/sec) in 100 ms buckets, merged across replicas —
    the failover timeline (Fig. 14). *)

val stage_breakdown : t -> (string * int * int * int * int) list
(** Per-pipeline-stage latency summary over the last window, merged
    across replicas: [(stage, samples, p50_ns, p95_ns, p99_ns)] for every
    {!Trace.stage} that recorded at least one sampled span. Empty when
    tracing is disabled ([trace_sample_interval = 0]). *)

val executed : t -> int
val user_aborts : t -> int

val entries_flushed : t -> int
(** Log entries proposed over the window, all replicas —
    [released / entries_flushed] is the realized average batch size. *)

val deadline_flushes : t -> int
(** Batches flushed by the adaptive [target_batch_delay_ns] deadline
    event (0 under the [Fixed] policy). *)

val event_releases : t -> int
(** Release passes triggered directly by a durability notification
    advancing the watermark (0 under the [Fixed] policy). *)

val coalesced_proposals : t -> int
(** Proposals merged into an earlier entry's quorum round by the
    replication layer (0 under the [Fixed] policy). *)

val replayed_txns : t -> int
(** Transactions applied through follower replay over the window, all
    replicas (identical under [PerTxn] and [Bulk] replay — the fast path
    changes cost accounting, not coverage). *)

val replay_lag : t -> (int * int * int) option
(** Follower-lag summary over the window, merged across replicas:
    [(samples, p50, p95)] of durable-frontier minus replayed-frontier on
    the transaction-timestamp axis (which rides virtual ns), one sample
    per replayed entry. [None] when tracing is disabled or no follower
    replayed anything. *)

(** {2 Checkpoint-integrated recovery}

    Active when [checkpoint_interval > 0]: a cluster coordinator process
    (modeled crash-free, like the membership service real deployments
    rely on) persists each follower's finished fuzzy checkpoint to that
    replica's durable disk, computes the quorum-stable frontier over the
    persisted images (top-majority by scalar cover, elementwise min),
    and — after [checkpoint_retention] has elapsed, so a lagging-but-
    permitted follower still finds its slots — truncates every alive
    replica's journal up to it, harvesting the dropped entries' dedup
    evidence first. A follower wedged behind a compaction floor is
    rebuilt automatically via checkpoint bootstrap. *)

val harvested_requests : t -> ((int * int) * (int * int) list) list
(** Per truncated [(stream, idx)] slot, the client request keys its entry
    applied — the evidence {!Check.exactly_once} uses for slots absent
    from every surviving journal. *)

val trunc_frontier : t -> int array
(** Highest per-stream journal index truncated cluster-wide (inclusive;
    [-1] = nothing truncated on that stream). *)

val truncation_rounds : t -> int
val auto_rebuilds : t -> int
(** Followers rebuilt by the coordinator because log catch-up was wedged
    behind a compaction floor. *)

val checkpoints_taken : t -> int
(** Completed checkpoints across current replicas (restart resets a
    replica's count). *)

val journal_bytes_total : t -> int
val journal_entries_total : t -> int
val truncated_entries_total : t -> int

val newest_checkpoint : t -> Checkpoint.replica_image option
(** The freshest persisted image across all replica disks (the `run`
    diagnostics line). *)
