(** A complete Rolis deployment inside one simulation engine: [replicas]
    machines, a network, and an application.

    Typical use (and what every benchmark does):

    {[
      let cluster = Cluster.create cfg app in
      Cluster.run cluster ~warmup:(200 * Sim.Engine.ms) ~duration:Sim.Engine.s ();
      let tps = Cluster.throughput cluster in
    ]}

    Throughput and latency cover {e release-committed} transactions only,
    summed over every replica that served during the measurement window
    (so a failover run counts the old leader's releases before the crash
    and the new leader's after). *)

type t

val create :
  ?initial_leader:int option ->
  ?on_durable:(replica:int -> stream:int -> idx:int -> Store.Wire.entry -> unit) ->
  ?eng:Sim.Engine.t ->
  Config.t ->
  App.t ->
  t
(** Build replicas, load the application on each, spawn all processes.
    [initial_leader] defaults to [Some 0] (skip the cold-start election);
    pass [None] to start leaderless. [on_durable] observes every
    durability commit on every replica (see {!Check.Oracle}). The network
    carries [pool + clients] nodes, where [pool = replicas +
    spare_replicas]: spare slots are created dark (crashed at birth) and
    only join through {!add_replica}; client sessions occupy
    [pool .. pool+clients-1] — spawn them with {!Client.spawn} on
    {!network}, passing {!client_stats}. [eng] hosts the cluster on an
    existing engine instead of creating one — how a {!Shard} deployment
    runs many groups on one virtual clock; omitted, behaviour (and every
    drawn random number) is exactly the historical single-cluster path. *)

val engine : t -> Sim.Engine.t
val network : t -> Paxos.Msg.t Sim.Net.t
val config : t -> Config.t
val replicas : t -> Replica.t array
val replica : t -> int -> Replica.t

val leader : t -> Replica.t option
(** The replica currently serving transactions, if any. *)

val members : t -> int list
(** Current voter set as the management plane tracks it (advanced when a
    reconfiguration completes; the replicated configuration log is ground
    truth). *)

val learners : t -> int list
(** Pool slots currently catching up as non-voting learners. *)

val membership_gen : t -> int
(** Generation of the last completed membership change. *)

val client_stats : t -> Stats.t
(** Shared client-side stats (parked time, redirect counts): pass to
    {!Client.spawn} via [?stats]; merged into {!stage_breakdown} as the
    [client_park] / [client_redirect] stages. *)

val client_read_stats : t -> Stats.t
(** Shared stats for {e read-only} client sessions: pass to
    {!Client.spawn} via [?stats] when spawning with [~ro:true], so the
    read dispositions (park / redirect) stay separate from the write
    path's. Merged into {!stage_breakdown} alongside {!client_stats}. *)

val adds : t -> int
val removes : t -> int
val handoffs : t -> int

val ops_skipped : t -> int
(** Membership operations refused (illegal at the time) or timed out;
    each leaves the cluster in a safe state. *)

val run : t -> ?warmup:int -> duration:int -> unit -> unit
(** Advance virtual time by [warmup] (then reset all windowed stats) plus
    [duration]. May be called repeatedly to extend a run. *)

(** {2 Window management for co-hosted clusters}

    A {!Shard} deployment hosts many clusters on one shared engine: it
    advances virtual time itself and brackets every cluster's measurement
    window with these. [run] is exactly
    [warmup-advance; reset_window; open_window; advance; close_window]. *)

val reset_window : t -> unit
(** Zero every windowed stat (replica, client and read-client side) —
    the end-of-warmup reset. *)

val open_window : t -> unit
(** Mark the measurement window's start at the current virtual time. *)

val close_window : t -> unit
(** Mark the measurement window's end at the current virtual time. *)

val crash_replica : t -> int -> unit
(** Crash-stop a machine: kill its processes and cut it from the network. *)

val restart_replica : ?learner:bool -> t -> int -> unit
(** Rebuild replica [i] from scratch (crashing it first if still alive):
    fresh database and streams, then either checkpoint + journal-tail
    bootstrap (when [checkpoint_interval > 0] and a persisted image
    covers the truncated frontier — see
    {!Replica.bootstrap_from_checkpoint}) or catch-up from the
    per-stream union of every alive peer's journal
    ({!Replica.catch_up_from}); rejoin as follower, carrying the newest
    adopted membership view and — always — the vote the old incarnation
    granted (persistent votedFor; a node that forgot it could vote twice
    in one ballot). [learner] starts it non-voting (see
    {!add_replica}). The entries committed after the snapshot arrive
    through the hardened fetch path. *)

(** {2 Live reconfiguration}

    Blocking management-plane operations — call them from inside a
    spawned simulation process (a nemesis, a bench driver). Every
    operation is defensive: illegal or timed-out operations count in
    {!ops_skipped}, return [false] and leave the cluster in a safe
    state, so chaos plans may schedule them optimistically. *)

val add_replica : t -> int -> bool
(** Bring pool slot [i] in as a voter: restart it as a non-voting
    learner (checkpoint + journal-tail bootstrap when available),
    register it with every replica's truncation gate, wait until its
    replay frontier trails the leader's durable frontier by at most
    [Config.learner_lag_bound], then run the joint-consensus membership
    change (C_old,new, then C_new) that promotes it. *)

val remove_replica : t -> int -> bool
(** Take voter [i] out via joint consensus (the leader hands off first
    when removing itself), then harvest the node's full journal as dedup
    evidence for {!Check.exactly_once} and decommission (crash) it.
    Refuses to shrink below [Config.min_members]. *)

val handoff : t -> target:int -> bool
(** Planned leader transfer: the serving leader drains its release
    queues, steps down clean and grants [target] immediate candidacy —
    no election-timeout gap (see {!Replica.begin_handoff}). *)

val window : t -> int * int
(** Measurement window [(start, stop)] of the last {!run}. *)

val released : t -> int
val throughput : t -> float
(** Released transactions per virtual second over the last window. *)

val latency : t -> Sim.Metrics.Hist.t
(** Release latencies merged across replicas. *)

val release_rate : t -> (float * float) list
(** (seconds, releases/sec) in 100 ms buckets, merged across replicas —
    the failover timeline (Fig. 14). *)

val stage_breakdown : t -> (string * int * int * int * int) list
(** Per-pipeline-stage latency summary over the last window, merged
    across replicas: [(stage, samples, p50_ns, p95_ns, p99_ns)] for every
    {!Trace.stage} that recorded at least one sampled span. Empty when
    tracing is disabled ([trace_sample_interval = 0]). *)

val executed : t -> int
val user_aborts : t -> int

val entries_flushed : t -> int
(** Log entries proposed over the window, all replicas —
    [released / entries_flushed] is the realized average batch size. *)

val deadline_flushes : t -> int
(** Batches flushed by the adaptive [target_batch_delay_ns] deadline
    event (0 under the [Fixed] policy). *)

val event_releases : t -> int
(** Release passes triggered directly by a durability notification
    advancing the watermark (0 under the [Fixed] policy). *)

val coalesced_proposals : t -> int
(** Proposals merged into an earlier entry's quorum round by the
    replication layer (0 under the [Fixed] policy). *)

val replayed_txns : t -> int
(** Transactions applied through follower replay over the window, all
    replicas (identical under [PerTxn] and [Bulk] replay — the fast path
    changes cost accounting, not coverage). *)

val replay_lag : t -> (int * int * int) option
(** Follower-lag summary over the window, merged across replicas:
    [(samples, p50, p95)] of durable-frontier minus replayed-frontier on
    the transaction-timestamp axis (which rides virtual ns), one sample
    per replayed entry. [None] when tracing is disabled or no follower
    replayed anything. *)

(** {2 Follower-read diagnostics}

    All zero unless [Config.follower_reads] is on. *)

val reads_served : t -> int
(** Snapshot reads answered with [Ok_read], all replicas. *)

val reads_parked : t -> int
(** Read requests bounced with [Busy]: lease lapsed, admission-control
    backlog, or retry budget exhausted on snapshot misses. *)

val reads_redirected : t -> int
(** Read requests bounced with [Not_leader] at a replica that could not
    serve but knew a leader hint. *)

val read_misses : t -> int
(** [Snapshot_miss] retries: a read body touched a key whose
    below-pin version was already reclaimed (the read retried at a
    fresher pin). *)

val read_audit_skipped : t -> int
(** Audit-eligible serves dropped because a replica's snapshot-read audit
    cap filled, summed over replicas. Non-zero means the snapshot-read
    oracle audited a truncated sample of this run. *)

val read_staleness : t -> (int * int * int) option
(** Staleness summary over the last window, merged across replicas:
    [(samples, p50, p95)] of durable-frontier minus read pin in virtual
    ns at serve time. [None] when tracing is off or nothing served. *)

(** {2 Checkpoint-integrated recovery}

    Active when [checkpoint_interval > 0]: a cluster coordinator process
    (modeled crash-free, like the membership service real deployments
    rely on) persists each follower's finished fuzzy checkpoint to that
    replica's durable disk, computes the quorum-stable frontier over the
    persisted images (top-majority by scalar cover, elementwise min),
    and — after [checkpoint_retention] has elapsed, so a lagging-but-
    permitted follower still finds its slots — truncates every alive
    replica's journal up to it, harvesting the dropped entries' dedup
    evidence first. A follower wedged behind a compaction floor is
    rebuilt automatically via checkpoint bootstrap. *)

val harvested_requests : t -> ((int * int) * (int * int) list) list
(** Per truncated [(stream, idx)] slot, the client request keys its entry
    applied — the evidence {!Check.exactly_once} uses for slots absent
    from every surviving journal. *)

val trunc_frontier : t -> int array
(** Highest per-stream journal index truncated cluster-wide (inclusive;
    [-1] = nothing truncated on that stream). *)

val truncation_rounds : t -> int
val auto_rebuilds : t -> int
(** Followers rebuilt by the coordinator because log catch-up was wedged
    behind a compaction floor. *)

val checkpoints_taken : t -> int
(** Completed checkpoints across current replicas (restart resets a
    replica's count). *)

val journal_bytes_total : t -> int
val journal_entries_total : t -> int
val truncated_entries_total : t -> int

val newest_checkpoint : t -> Checkpoint.replica_image option
(** The freshest persisted image across all replica disks (the `run`
    diagnostics line). *)
