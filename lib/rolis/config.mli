(** Cluster configuration: every tunable in one place.

    Defaults follow the paper's evaluation setup (§6.1): 3 replicas,
    32-core machines with one core reserved for the watermark/election
    work, batch size 1000 (TPC-C) or 10000 (YCSB++), 0.5 ms watermark
    interval, 100 ms heartbeats, 1 s election timeout, datacenter-class
    network latency. *)

type stream_mode =
  | Per_worker  (** one Paxos stream per database worker (Rolis) *)
  | Single  (** one shared stream for all workers (the §2.2 strawman) *)
  | Sharded of int
      (** [n] streams shared by the workers (ablation: the design space
          between the strawman and Rolis) *)

type batch_policy =
  | Fixed
      (** the paper's static operating point: flush on [batch_size]-fill
          or the [batch_flush_interval] timer, release on the periodic
          watermark tick — bit-identical to the original pipeline *)
  | Adaptive
      (** closed-loop latency targeting: batches are sized from the
          stream's observed arrival rate to meet [target_batch_delay_ns],
          a per-batch deadline event flushes idle streams early, batches
          are additionally capped at [max_batch_bytes], and durability
          notifications drive the release pass directly instead of
          waiting for the watermark tick *)

type replay_batch =
  | PerTxn
      (** the paper's replay loop: one small CAS transaction per replayed
          write-set, polled on the watermark tick — bit-identical to the
          original follower pipeline *)
  | Bulk
      (** follower fast path: each durable entry's write-sets are merged
          (last-writer-wins), sorted by (table, key) and applied through
          a B-tree cursor sweep with one CPU charge per entry; replay
          threads wake on enqueue/watermark events instead of polling,
          so replay latency no longer floors at [watermark_interval] *)

val max_txn_bytes : int
(** Conservative wire-size bound on the largest TPC-C transaction;
    [max_batch_bytes] may not be configured below it. *)

type t = {
  replicas : int;  (** initial voting membership *)
  spare_replicas : int;
      (** extra replica slots provisioned dark (crashed at birth) so
          add-replica operations have nodes to bring in; node numbering is
          [0 .. replicas-1] members, [replicas .. pool-1] spares, then
          clients — with zero spares the historical numbering (and every
          simulated timing) is unchanged *)
  min_members : int;
      (** reconfiguration floor: remove-replica refuses to shrink the
          voting membership below this (>= 1) *)
  learner_lag_bound : int;
      (** ns; a joining node stays a non-voting learner until its replay
          frontier is within this bound of the leader's durable frontier —
          promoting a laggard would stall every quorum behind it *)
  handoff_drain_timeout : int;
      (** ns; planned leader handoff waits at most this long for in-flight
          proposals to drain before granting the target immediate
          candidacy *)
  workers : int;  (** database worker threads per replica *)
  cores : int;  (** CPU cores per machine *)
  stream_mode : stream_mode;
  batch_policy : batch_policy;  (** static vs load-adaptive batching *)
  batch_size : int;  (** transactions per log entry (Adaptive: hard cap) *)
  batch_flush_interval : int;  (** ns; flush partially filled batches *)
  target_batch_delay_ns : int;
      (** ns; Adaptive policy's latency budget for time spent waiting in
          a batch — the knob the paper leaves static in Fig. 16 *)
  max_batch_bytes : int;
      (** Adaptive policy: flush once the pending batch reaches this many
          wire bytes, whatever its transaction count *)
  watermark_interval : int;  (** ns; the 0.5 ms periodic calculation *)
  heartbeat_interval : int;
  election_timeout : int;
  net_latency : Sim.Net.latency_model;
  costs : Silo.Costs.t;
  physical_serialization : bool;
      (** actually encode/decode each entry through {!Store.Wire} instead
          of only charging its byte cost — slower, used by tests *)
  networked_clients : bool;
      (** issue transactions from an open-loop networked client instead of
          the embedded generator (§6.4) *)
  client_rpc_overhead : int;  (** ns of server-side RPC work per txn *)
  client_rtt : int;  (** ns added to client-observed latency *)
  clients : int;
      (** number of networked client {e sessions} ({!Client}); when
          positive, workers serve queued client requests instead of
          running the embedded generator, and the cluster's net carries
          [replicas + clients] nodes (clients are nodes
          [replicas .. replicas+clients-1]) *)
  client_timeout : int;  (** ns a client waits for a reply before retrying *)
  client_retry_limit : int;
      (** attempts before a request is parked (graceful degradation when
          the cluster is unreachable) *)
  client_backoff_base : int;  (** ns; first retry backoff (doubles, jittered) *)
  client_backoff_max : int;  (** ns; backoff ceiling *)
  client_park_interval : int;
      (** ns a parked request sleeps before being re-driven *)
  admission_max_pending : int;
      (** admission control: queued-but-unclaimed client requests beyond
          this bound are answered [Busy] *)
  admission_max_release : int;
      (** admission control: per-worker release-queue bound *)
  admission_max_backlog : int;
      (** admission control: replay-backlog bound *)
  enqueue_cs_ns : int;
      (** critical-section cost of appending to a {e shared} stream; the
          strawman's bottleneck (68.7%% CPU at 30 threads, §2.2) *)
  entry_overhead_ns : int;
      (** fixed replication-layer cost per log entry (message handling,
          interrupts), amortised over the batch — this is what makes
          small batches slow in the Fig. 16 sweep *)
  replay_batch : replay_batch;
      (** per-transaction vs sorted-bulk follower replay (default
          [PerTxn]) *)
  replay_parallel : int;
      (** bulk-replay fan-out: each released entry's sorted run is cut
          into this many key-disjoint slices applied by concurrent
          processes on the follower's CPU (default [1] = the sequential
          bulk sweep). Values > 1 require [replay_batch = Bulk] *)
  disable_replay : bool;
      (** keep followers from applying durable entries (the paper's
          "+Replication" factor-analysis configuration, Fig. 18) *)
  hash_tables : string list;
      (** names of tables every replica backs with the point-lookup hash
          representation instead of the ordered B-tree (default []);
          tables listed here must never be range-scanned — see
          {!Store.Table.repr} *)
  archive_entries : bool;
      (** retain every durable entry in memory — consumed by
          {!Bootstrap} when seeding a brand-new replica (§4.3) *)
  checkpoint_interval : int;
      (** ns between periodic fuzzy checkpoints of below-watermark state;
          [0] disables checkpointing (and therefore journal truncation).
          When positive, [archive_entries] must also be set: recovery is
          checkpoint + journal tail *)
  checkpoint_retention : int;
      (** ns of journal history kept beyond a quorum-stable checkpoint
          frontier before truncation applies it — the slowest follower
          lag truncation tolerates; must be at least [election_timeout] *)
  checkpoint_truncate : bool;
      (** drive {!Paxos.Stream} journal truncation from quorum-stable
          checkpoints (the [--no-truncate] ablation keeps checkpoints but
          retains the full journal) *)
  checkpoint_disk_mb_per_s : int;
      (** modeled bandwidth of the shared checkpoint disk *)
  checkpoint_threads : int;
      (** checkpoint writer threads striping tables across the disk *)
  follower_reads : bool;
      (** serve read-only client sessions from watermark-pinned snapshots
          on every lease-holding replica (followers at their replayed
          frontier, the leader at its release watermark); default [false]
          — the write path and every simulated timing are bit-identical
          with it off *)
  read_lease : int;
      (** ns of read-serving authority one leader heartbeat grants; must
          stay below [election_timeout] so no stale lease outlives a
          leader change (see {!validate}) *)
  read_workers : int;
      (** snapshot-read worker processes per serving replica *)
  read_retry_limit : int;
      (** times a snapshot read retries at a fresher pin after a
          reclaimed-version miss before answering [Busy] *)
  wan_profile : string;
      (** named {!Sim.Net.wan_profile} applied to the cluster's links
          (replicas and clients assigned to regions round-robin);
          [""] (default) keeps the uniform [net_latency] model *)
  shards : int;
      (** number of independent Rolis groups a {!Shard} deployment splits
          the keyspace across; [1] (default) is the classic single-group
          deployment — {!Cluster} ignores this field entirely, so the
          single-group path stays bit-identical *)
  cross_pct : float;
      (** fraction of workload transactions made genuinely distributed
          (cross-shard 2PC) by a partition-aware generator; [0.0] default.
          Requires [shards >= 2] when positive *)
  trace_sample_interval : int;
      (** {!Trace} sampling: record stage spans for every [n]-th
          committed transaction per worker; [0] disables tracing. Purely
          host-side bookkeeping — any value yields bit-identical
          simulated results *)
  trace_buffer_capacity : int;
      (** spans retained per {!Trace} ring buffer (one ring per worker
          plus one for replay/disposition events) *)
  seed : int64;
}

val default : t
(** TPC-C-oriented defaults: 3 replicas, batch 1000. *)

val ycsb : t
(** Same but batch 10000 (paper §6.1). *)

val nstreams : t -> int

val pool : t -> int
(** Total replica slots ([replicas + spare_replicas]); clients are
    numbered after the pool. *)

val validate : t -> unit
(** @raise Invalid_argument on inconsistent settings. *)
