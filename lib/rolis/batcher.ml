type t = {
  cfg : Config.t;
  eng : Sim.Engine.t;
  cpu : Sim.Cpu.t;
  stats : Stats.t;
  trace : Trace.t;
  epoch : unit -> int;
  propose : Store.Wire.entry -> unit;
  mutex : Sim.Sync.Mutex.t option;
  (* Closed-loop feedback from the replication layer: average number of
     flushed entries the stream coalesces into one quorum round (>= 1).
     Adaptive mode folds it into the per-transaction amortization of
     [entry_overhead_ns]. *)
  coalesce_factor : unit -> float;
  adaptive : bool;
  mutable txns : Store.Wire.txn_log list; (* reverse order *)
  mutable count : int;
  mutable bytes : int;
  mutable oldest : int; (* submit time of the first pending txn *)
  (* Adaptive state: smoothed inter-arrival gap (EWMA over virtual time,
     alpha = 1/8; 0 = fewer than two submits seen) and the batch-size
     target derived from it. *)
  mutable last_arrival : int;
  mutable iat_ewma : int;
  mutable target : int;
  (* Generation guard for the scheduled per-batch deadline flush: any
     flush (full, byte-cap, timer, heartbeat) bumps it, so a stale
     deadline event finds a different generation and does nothing. *)
  mutable deadline_gen : int;
}

let create cfg ?(coalesce_factor = fun () -> 1.0) ~cpu ~stats ~trace ~epoch
    ~propose ~shared () =
  let eng = Sim.Cpu.engine_of cpu in
  {
    cfg;
    eng;
    cpu;
    stats;
    trace;
    epoch;
    propose;
    mutex = (if shared then Some (Sim.Sync.Mutex.create eng) else None);
    coalesce_factor;
    adaptive = cfg.Config.batch_policy = Config.Adaptive;
    txns = [];
    count = 0;
    bytes = 0;
    oldest = 0;
    last_arrival = 0;
    iat_ewma = 0;
    target = 1;
    deadline_gen = 0;
  }

let pending t = t.count
let batch_target t = if t.adaptive then t.target else t.cfg.Config.batch_size

(* Build and propose the pending batch. Atomic: no yields, so no
   transaction can slip in between this flush and a subsequent no-op.
   Also safe from an [Engine.schedule] thunk (the deadline event): the
   whole path down through [propose] and the network send only schedules
   future events, never suspends. *)
let flush t =
  if t.count > 0 then begin
    t.deadline_gen <- t.deadline_gen + 1;
    if Trace.has_pending t.trace then
      List.iter
        (fun (txn : Store.Wire.txn_log) ->
          Trace.note_flushed t.trace ~ts:txn.Store.Wire.ts)
        t.txns;
    let entry = Store.Wire.make_entry ~epoch:(t.epoch ()) (List.rev t.txns) in
    t.txns <- [];
    t.count <- 0;
    let bytes = t.bytes in
    t.bytes <- 0;
    Stats.note_replicated t.stats ~bytes;
    t.propose entry
  end

(* The deadline event: flush whatever the batch holds once the oldest
   pending transaction has waited [target_batch_delay_ns]. This is what
   lets an idle or slow stream release early instead of waiting out the
   coarse [batch_flush_interval] timer. *)
let schedule_deadline t ~now =
  let gen = t.deadline_gen in
  Sim.Engine.schedule t.eng
    (now + t.cfg.Config.target_batch_delay_ns)
    (fun () ->
      if t.deadline_gen = gen && t.count > 0 then begin
        Stats.note_deadline_flush t.stats;
        Trace.note_disposition t.trace Trace.Deadline_flush;
        flush t
      end)

(* Adaptive sizing: expected arrivals inside the delay budget, clamped to
   [1, batch_size]. With no rate estimate yet (fewer than two submits
   observed) the target stays at 1 — latency-first until the stream shows
   a rate worth batching for. *)
let retarget t =
  if t.iat_ewma > 0 then
    t.target <-
      max 1
        (min t.cfg.Config.batch_size
           (t.cfg.Config.target_batch_delay_ns / t.iat_ewma))

let submit t txn =
  if t.adaptive then begin
    let now = Sim.Engine.now t.eng in
    if t.count = 0 then begin
      t.oldest <- now;
      schedule_deadline t ~now
    end;
    if t.last_arrival > 0 then begin
      let gap = now - t.last_arrival in
      t.iat_ewma <- (if t.iat_ewma = 0 then gap else ((7 * t.iat_ewma) + gap) / 8);
      retarget t
    end;
    t.last_arrival <- now;
    t.txns <- txn :: t.txns;
    t.count <- t.count + 1;
    t.bytes <- t.bytes + Store.Wire.txn_byte_size txn;
    if
      t.count >= t.cfg.Config.batch_size
      || t.count >= t.target
      || t.bytes >= t.cfg.Config.max_batch_bytes
    then flush t
  end
  else begin
    if t.count = 0 then t.oldest <- Sim.Engine.now t.eng;
    t.txns <- txn :: t.txns;
    t.count <- t.count + 1;
    t.bytes <- t.bytes + Store.Wire.txn_byte_size txn;
    if t.count >= t.cfg.Config.batch_size then flush t
  end

let charge_submit_cost t ~bytes =
  (* Serialization (building the log entry) plus the replication layer's
     copy of it into the stream's log list + consensus CPU (Fig. 18's
     "+Serialization" and "+Replication" factors). *)
  let serialize = Silo.Costs.serialize_cost t.cfg.Config.costs ~bytes in
  (* Fixed per-entry replication cost, amortised over the batch: the
     reason small batches hurt throughput (Fig. 16). Fixed policy uses
     the static batch size; Adaptive amortises over what the closed loop
     actually achieves — the current batch-size target times the
     replication layer's entry-coalescing factor. *)
  let amortize =
    if t.adaptive then
      max 1 (int_of_float (float_of_int t.target *. t.coalesce_factor ()))
    else t.cfg.Config.batch_size
  in
  let replicate =
    Silo.Costs.replicate_cost t.cfg.Config.costs ~bytes
    + (t.cfg.Config.entry_overhead_ns / amortize)
  in
  Stats.note_serialized t.stats ~bytes;
  match t.mutex with
  | None -> Sim.Cpu.consume t.cpu (serialize + replicate)
  | Some mu ->
      (* Shared stream: serialization happens thread-locally, but the
         enqueue itself is a serialized critical section — the strawman's
         plateau (68.7% of CPU at 30 threads in the paper, §2.2). *)
      Sim.Cpu.consume t.cpu (serialize + replicate);
      Sim.Sync.Mutex.lock mu;
      Sim.Cpu.consume t.cpu t.cfg.Config.enqueue_cs_ns;
      Sim.Sync.Mutex.unlock mu

let maybe_flush t ~max_age =
  if t.count > 0 && Sim.Engine.now t.eng - t.oldest >= max_age then flush t

let clear t =
  t.deadline_gen <- t.deadline_gen + 1;
  t.txns <- [];
  t.count <- 0;
  t.bytes <- 0
