type t = {
  cfg : Config.t;
  eng : Sim.Engine.t;
  cpu : Sim.Cpu.t;
  stats : Stats.t;
  trace : Trace.t;
  epoch : unit -> int;
  propose : Store.Wire.entry -> unit;
  mutex : Sim.Sync.Mutex.t option;
  mutable txns : Store.Wire.txn_log list; (* reverse order *)
  mutable count : int;
  mutable bytes : int;
  mutable oldest : int; (* submit time of the first pending txn *)
}

let create cfg ~cpu ~stats ~trace ~epoch ~propose ~shared =
  let eng = Sim.Cpu.engine_of cpu in
  {
    cfg;
    eng;
    cpu;
    stats;
    trace;
    epoch;
    propose;
    mutex = (if shared then Some (Sim.Sync.Mutex.create eng) else None);
    txns = [];
    count = 0;
    bytes = 0;
    oldest = 0;
  }

let pending t = t.count

(* Build and propose the pending batch. Atomic: no yields, so no
   transaction can slip in between this flush and a subsequent no-op. *)
let flush t =
  if t.count > 0 then begin
    if Trace.has_pending t.trace then
      List.iter
        (fun (txn : Store.Wire.txn_log) ->
          Trace.note_flushed t.trace ~ts:txn.Store.Wire.ts)
        t.txns;
    let entry = Store.Wire.make_entry ~epoch:(t.epoch ()) (List.rev t.txns) in
    t.txns <- [];
    t.count <- 0;
    let bytes = t.bytes in
    t.bytes <- 0;
    Stats.note_replicated t.stats ~bytes;
    t.propose entry
  end

let submit t txn =
  if t.count = 0 then t.oldest <- Sim.Engine.now t.eng;
  t.txns <- txn :: t.txns;
  t.count <- t.count + 1;
  t.bytes <- t.bytes + Store.Wire.txn_byte_size txn;
  if t.count >= t.cfg.Config.batch_size then flush t

let charge_submit_cost t ~bytes =
  (* Serialization (building the log entry) plus the replication layer's
     copy of it into the stream's log list + consensus CPU (Fig. 18's
     "+Serialization" and "+Replication" factors). *)
  let serialize = Silo.Costs.serialize_cost t.cfg.Config.costs ~bytes in
  let replicate =
    Silo.Costs.replicate_cost t.cfg.Config.costs ~bytes
    (* Fixed per-entry replication cost, amortised over the batch: the
       reason small batches hurt throughput (Fig. 16). *)
    + (t.cfg.Config.entry_overhead_ns / t.cfg.Config.batch_size)
  in
  Stats.note_serialized t.stats ~bytes;
  match t.mutex with
  | None -> Sim.Cpu.consume t.cpu (serialize + replicate)
  | Some mu ->
      (* Shared stream: serialization happens thread-locally, but the
         enqueue itself is a serialized critical section — the strawman's
         plateau (68.7% of CPU at 30 threads in the paper, §2.2). *)
      Sim.Cpu.consume t.cpu (serialize + replicate);
      Sim.Sync.Mutex.lock mu;
      Sim.Cpu.consume t.cpu t.cfg.Config.enqueue_cs_ns;
      Sim.Sync.Mutex.unlock mu

let maybe_flush t ~max_age =
  if t.count > 0 && Sim.Engine.now t.eng - t.oldest >= max_age then flush t

let clear t =
  t.txns <- [];
  t.count <- 0;
  t.bytes <- 0
