type gen = unit -> Silo.Txn.t -> unit

type t = {
  name : string;
  setup : Silo.Db.t -> unit;
  make_worker : Silo.Db.t -> rng:Sim.Rng.t -> worker:int -> nworkers:int -> gen;
  client_op : (Silo.Db.t -> payload:string -> Silo.Txn.t -> unit) option;
  read_op : (Silo.Db.t -> payload:string -> Silo.Db.snap -> string) option;
}

let counter_app ~keys =
  let key i = Store.Keycodec.encode [ Store.Keycodec.I i ] in
  {
    name = "counter";
    setup =
      (fun db ->
        let table = Silo.Db.create_table db "counters" in
        for i = 0 to keys - 1 do
          Store.Table.insert table (key i) (Store.Record.make "0")
        done);
    make_worker =
      (fun db ~rng ~worker:_ ~nworkers:_ ->
        let table = Silo.Db.table db "counters" in
        fun () txn ->
          let k = key (Sim.Rng.int rng keys) in
          let v =
            match Silo.Txn.get txn table k with
            | Some s -> int_of_string s
            | None -> 0
          in
          Silo.Txn.put txn table k (string_of_int (v + 1)));
    client_op =
      Some
        (fun db ~payload txn ->
          let table = Silo.Db.table db "counters" in
          let k = key (int_of_string payload mod keys) in
          let v =
            match Silo.Txn.get txn table k with
            | Some s -> int_of_string s
            | None -> 0
          in
          Silo.Txn.put txn table k (string_of_int (v + 1)));
    read_op =
      Some
        (fun db ~payload snap ->
          let table = Silo.Db.table db "counters" in
          let k = key (int_of_string payload mod keys) in
          match Silo.Db.snap_get snap table k with
          | Some s -> s
          | None -> "0");
  }
