(** Invariant checking for chaos runs.

    Two layers:

    - {!Oracle} checks {e Paxos agreement continuously}: an [on_durable]
      hook feeds it every durability commit from every replica, and the
      first conflicting commit for a [(stream, index)] slot is flagged at
      the moment it happens — which makes a chaos failure bisectable to
      the exact commit.
    - The cluster-level checks run at chosen points (typically after a
      quiesce): journal prefix agreement, sealed-watermark agreement,
      cross-replica state convergence, and the bank money invariant.

    Money conservation and convergence only hold at {e quiescent} points:
    replay applies transactions per-key, so mid-flight a replica's state
    can transiently violate per-transaction atomicity, but it always
    converges to the serial result once replay drains (paper §3.4). *)

type violation = { check : string; detail : string }

val pp_violation : Format.formatter -> violation -> unit

module Oracle : sig
  type t

  val create : unit -> t

  val observe :
    t -> replica:int -> stream:int -> idx:int -> Store.Wire.entry -> unit
  (** Wire as [Cluster.create ~on_durable:(Oracle.observe oracle)]. O(1)
      per commit: the first commit for a slot is recorded as chosen, every
      later one (other replicas, restarted replicas re-observing their
      injected prefix) must equal it. *)

  val violations : t -> violation list
  val entries_checked : t -> int
end

val agreement : Cluster.t -> violation list
(** All alive replicas agree on the entry at every absolute
    [(stream, idx)] slot their journals share (requires
    [archive_entries]). Keyed by absolute index, not list position:
    under checkpoint truncation different replicas retain different
    journal windows. *)

val watermark_agreement : Cluster.t -> violation list
(** For every sealed epoch, all alive replicas that sealed it agree on its
    final watermark. Safe to run at any time. *)

val membership_agreement : Cluster.t -> violation list
(** Any two alive replicas that adopted the same membership generation
    hold the same view — configurations travel through the replicated
    log, so a same-generation mismatch is a forked config entry.
    Different generations are legal (a node down through a change is
    merely behind). Safe to run at any time. *)

val convergence : Cluster.t -> violation list
(** All alive replicas hold identical live records. Quiescent points
    only: stop the workload, heal the network, and drain replay first. *)

val money : Cluster.t -> table:string -> expected:int -> violation list
(** The integer balances in [table] sum to [expected] on every alive
    replica. Quiescent points only. *)

val cross_shard : Cluster.t array -> violation list
(** Cross-shard 2PC audit of a {!Shard} deployment over the
    {!Store.Wire.decision} marks its journals carry (one cluster per
    shard; requires [archive_entries]). Ground truth per shard is the
    union durable log filtered by the final-watermark rule (as
    {!exactly_once}). Violations: a transaction id with both commit and
    abort decisions; a participant applying its intent more than once
    (apply-retry dedup failure), applying despite an abort decision,
    applying with no decision anywhere, or canceling despite a commit
    decision; and — atomicity's completeness half — a commit decision
    whose named participant never applied (a shard that failed over
    between prepare and apply must recover the intent from its journal).
    Quiescent points only, with checkpoint truncation off. *)

val money_sharded :
  Cluster.t array -> table:string -> expected:int -> violation list
(** Global conservation over a sharded deployment: the balances in
    [table] summed over one alive replica per shard (per-shard
    convergence checked separately) equal [expected]. A half-applied
    cross-shard transfer leaks or destroys money here even when every
    per-shard check passes. Quiescent points only. *)

val exactly_once : Cluster.t -> acked:(int * int) list -> violation list
(** End-to-end exactly-once audit of the client-session layer against the
    union durable log (every [(stream, idx)] slot committed on an alive
    replica; requires [archive_entries]) merged with the cluster's
    harvested dedup evidence for slots checkpoint truncation dropped
    from every surviving journal. A request-carrying
    transaction counts as applied iff it is at or below its epoch's final
    watermark (all of the last, unsealed epoch after a drain). Violations:
    any [(client, seq)] applied more than once (dedup failure), or an
    entry of [acked] — the [(client, seq)] pairs the {!Client} sessions
    got [Ok_released] for — applied zero times (a released result was
    lost: the §3.3 visibility guarantee broken). Quiescent points only. *)

val snapshot_reads : Cluster.t -> violation list
(** Audit of the follower snapshot-read path against the union durable
    log (requires [archive_entries]; meaningful with
    [Config.follower_reads]). Each replica's deterministic sample of
    served reads ({!Replica.read_audits}) records the pin and every
    observation [(table, key, observed version ts)]. Violations: an
    observation above the read's pin (escaped its snapshot — possibly
    speculative state); an observation older than an applied durable
    write at or below the pin (stale or torn snapshot: version
    reclamation raced a pinned read); or — absent checkpoint
    truncation — an observed version present in no applied durable
    transaction. Quiescent points only (the final-watermark rule needs
    the drain). *)
