let src = Logs.Src.create "rolis.shard" ~doc:"Sharded deployment events"

module Log = (val Logs.src_log src : Logs.LOG)

let ms = Sim.Engine.ms

(* ---- the replicated 2PC control surface ---- *)

let table_2pc = "__2pc"

let k_intent xid = Store.Keycodec.encode [ Store.Keycodec.S "i"; Store.Keycodec.I xid ]
let k_decision xid = Store.Keycodec.encode [ Store.Keycodec.S "d"; Store.Keycodec.I xid ]

(* Control payloads ride the ordinary client-request path, so every 2PC
   step inherits replication, exactly-once session dedup and failover
   recovery for free:

     "!p <xid> <sub>"    prepare: stage [sub] as the intent row
     "!c <xid> <parts>"  coordinator decision: commit
     "!a <xid> <parts>"  coordinator decision: abort
     "!x <xid>"          apply the staged intent, consume it
     "!r <xid>"          cancel: discard the staged intent

   Each writes ordinary rows in the [__2pc] table *and* stamps the
   transaction's wire record with a {!Store.Wire.decision} mark, so the
   journal itself carries the protocol history the cross-shard oracle
   audits ({!Check.cross_shard}). *)

let mark txn ~xid phase parts =
  Silo.Txn.set_decision txn
    { Store.Wire.d_xid = xid; d_phase = phase; d_parts = parts }

let split_control payload =
  (* "!p 123 rest..." -> (123, "rest...");  "!x 123" -> (123, "") *)
  let body = String.sub payload 3 (String.length payload - 3) in
  match String.index_opt body ' ' with
  | None -> (int_of_string body, "")
  | Some sp ->
      ( int_of_string (String.sub body 0 sp),
        String.sub body (sp + 1) (String.length body - sp - 1) )

let parse_parts s =
  if s = "" then []
  else String.split_on_char ',' s |> List.map int_of_string

let wrap_app ?(veto = fun ~payload:_ -> false) base =
  let base_op =
    match base.App.client_op with
    | Some op -> op
    | None -> invalid_arg "Shard.wrap_app: base app has no client_op"
  in
  let dispatch db ~payload txn =
    if String.length payload >= 3 && payload.[0] = '!' then begin
      let t2 = Silo.Db.table db table_2pc in
      let xid, rest = split_control payload in
      match payload.[1] with
      | 'p' ->
          (* A vetoed sub-transaction surfaces its abort at prepare time,
             before anything is staged anywhere — the coordinator turns
             the vote into a global abort. *)
          if veto ~payload:rest then Silo.Txn.abort ();
          Silo.Txn.put txn t2 (k_intent xid) rest;
          mark txn ~xid Store.Wire.Prepared []
      | 'c' ->
          Silo.Txn.put txn t2 (k_decision xid) "C";
          mark txn ~xid Store.Wire.Committed (parse_parts rest)
      | 'a' ->
          Silo.Txn.put txn t2 (k_decision xid) "A";
          mark txn ~xid Store.Wire.Aborted (parse_parts rest)
      | 'x' -> (
          (* The intent is read back from the *replicated* database, not
             from any coordinator-side memory: a participant that failed
             over between prepare and apply replays the intent row out of
             its journal and applies the identical sub-transaction. *)
          match Silo.Txn.get txn t2 (k_intent xid) with
          | None -> failwith (Printf.sprintf "2pc: apply %d without intent" xid)
          | Some sub ->
              base_op db ~payload:sub txn;
              Silo.Txn.delete txn t2 (k_intent xid);
              mark txn ~xid Store.Wire.Applied [])
      | 'r' ->
          (match Silo.Txn.get txn t2 (k_intent xid) with
          | Some _ -> Silo.Txn.delete txn t2 (k_intent xid)
          | None -> () (* this participant voted no: nothing staged *));
          mark txn ~xid Store.Wire.Canceled []
      | _ -> failwith ("2pc: bad control payload " ^ payload)
    end
    else base_op db ~payload txn
  in
  {
    base with
    App.setup =
      (fun db ->
        base.App.setup db;
        ignore (Silo.Db.create_table db table_2pc));
    client_op = Some dispatch;
  }

(* ---- deployment ---- *)

(* One logical transaction, as the partition-aware generator emits it. *)
type op =
  | Single of int * string  (** [(shard, payload)]: routes unchanged. *)
  | Multi of (int * string) list
      (** cross-shard: [(participant shard, sub-payload)] list; the first
          participant hosts the coordinator (its log carries the
          decision). *)

type gen = unit -> op

type driver = {
  idx : int;
  sessions : Client.t array; (* one write session per shard, same cid *)
  mutable xid_ctr : int;
  mutable committed : int;
  mutable aborted : int;
  mutable cross_committed : int;
  mutable cross_aborted : int;
  mutable prepares : int;
  mutable idle : bool;
  mutable lat : Sim.Metrics.Hist.t;
  mutable cross_lat : Sim.Metrics.Hist.t;
}

type t = {
  eng : Sim.Engine.t;
  cfg : Config.t;
  router : Router.t;
  clusters : Cluster.t array;
  drivers : driver array;
  stopped : bool ref;
}

let engine t = t.eng
let router t = t.router
let clusters t = t.clusters
let cluster t s = t.clusters.(s)
let shards t = Array.length t.clusters

(* Globally unique transaction ids without coordination: driver-major. *)
let fresh_xid d =
  d.xid_ctr <- d.xid_ctr + 1;
  ((d.idx + 1) * 1_000_000) + d.xid_ctr

let req d s fmt =
  Printf.ksprintf (fun payload -> Client.request d.sessions.(s) payload) fmt

(* Client-driven 2PC, coordinator-on-shard. Every arrow is a replicated
   client request with session dedup, so the whole protocol is idempotent
   under retry and survives any participant's failover:

     1. prepare on each participant (sequential; first abort wins);
     2. all yes -> "!c" on the coordinator shard — once acked, the
        decision is release-committed in its replicated log and the
        transaction is atomically durable;
     3. "!x" on every participant applies its staged intent.

   On any no vote: "!a" on the coordinator records the abort decision,
   then "!r" cancels the staged intents of the shards that voted yes. *)
let run_2pc d parts =
  let xid = fresh_xid d in
  let ids = List.map fst parts in
  let coord = List.hd ids in
  let pstr = String.concat "," (List.map string_of_int ids) in
  let rec prepare yes = function
    | [] -> Ok (List.rev yes)
    | (s, sub) :: rest -> (
        match req d s "!p %d %s" xid sub with
        | `Ok ->
            d.prepares <- d.prepares + 1;
            prepare (s :: yes) rest
        | `Aborted | `Stopped -> Error (List.rev yes))
  in
  match prepare [] parts with
  | Ok _ ->
      ignore (req d coord "!c %d %s" xid pstr);
      List.iter (fun s -> ignore (req d s "!x %d" xid)) ids;
      true
  | Error yes ->
      ignore (req d coord "!a %d %s" xid pstr);
      List.iter (fun s -> ignore (req d s "!r %d" xid)) yes;
      false

let run_driver t d gen () =
  while true do
    if !(t.stopped) then begin
      d.idle <- true;
      Sim.Engine.sleep (10 * ms)
    end
    else begin
      d.idle <- false;
      let t0 = Sim.Engine.time () in
      match gen () with
      | Single (s, payload) -> (
          match Client.request d.sessions.(s) payload with
          | `Ok ->
              d.committed <- d.committed + 1;
              Sim.Metrics.Hist.add d.lat (Sim.Engine.time () - t0)
          | `Aborted -> d.aborted <- d.aborted + 1
          | `Stopped -> ())
      | Multi parts ->
          if run_2pc d parts then begin
            d.committed <- d.committed + 1;
            d.cross_committed <- d.cross_committed + 1;
            let l = Sim.Engine.time () - t0 in
            Sim.Metrics.Hist.add d.lat l;
            Sim.Metrics.Hist.add d.cross_lat l
          end
          else begin
            d.aborted <- d.aborted + 1;
            d.cross_aborted <- d.cross_aborted + 1
          end
    end
  done

let create ?on_durable ?veto cfg router app ~gen =
  if cfg.Config.shards <> Router.shards router then
    invalid_arg "Shard.create: Config.shards disagrees with the router";
  if cfg.Config.shards < 1 then
    invalid_arg "Shard.create: shards must be positive";
  if cfg.Config.clients < 1 then
    invalid_arg "Shard.create: a sharded deployment needs drivers";
  let eng = Sim.Engine.create ~seed:cfg.Config.seed () in
  (* Each shard is a complete, unmodified Rolis cluster — replicas, its
     own network, its own leader and per-worker streams — co-hosted on
     the one virtual clock. The per-shard config is the deployment config
     with the sharding knobs stripped (a cluster never knows it is a
     shard). *)
  let shard_cfg = { cfg with Config.shards = 1; cross_pct = 0.0 } in
  let clusters =
    Array.init cfg.Config.shards (fun s ->
        let on_durable = Option.map (fun f -> f ~shard:s) on_durable in
        Cluster.create ~eng ?on_durable shard_cfg
          (wrap_app ?veto (app ~shard:s)))
  in
  let stopped = ref false in
  (* Drivers replace the per-cluster client fleet: driver [j] holds one
     write session per shard (same cid everywhere), routes single-shard
     payloads directly and runs the 2PC protocol for cross-shard ones.
     Sessions get a never-true stop flag — a driver finishes the protocol
     of its in-flight logical transaction and checks the deployment's
     stop signal only between transactions (a decided 2PC must reach its
     participants; see [quiesce]). *)
  let drivers =
    Array.init cfg.Config.clients (fun j ->
        let sessions =
          Array.init cfg.Config.shards (fun s ->
              Client.create
                (Cluster.network clusters.(s))
                ~cfg:shard_cfg ~cid:j ~stopped:(ref false)
                ~stats:(Cluster.client_stats clusters.(s))
                ())
        in
        {
          idx = j;
          sessions;
          xid_ctr = 0;
          committed = 0;
          aborted = 0;
          cross_committed = 0;
          cross_aborted = 0;
          prepares = 0;
          idle = false;
          lat = Sim.Metrics.Hist.create ();
          cross_lat = Sim.Metrics.Hist.create ();
        })
  in
  let t = { eng; cfg; router; clusters; drivers; stopped } in
  Array.iter
    (fun d ->
      let drng = Sim.Rng.split (Sim.Engine.rng eng) in
      ignore
        (Sim.Engine.spawn eng
           ~name:(Printf.sprintf "shard-driver-%d" d.idx)
           (run_driver t d (gen ~rng:drng ~driver:d.idx))))
    drivers;
  t

let stop t = t.stopped := true

(* Host-side (advances the engine itself, like {!Cluster.run}): stop the
   drivers, then step virtual time until each has finished its in-flight
   logical transaction — a decided 2PC must reach every participant
   before the deployment is a quiescent point. *)
let quiesce ?(timeout = 10 * Sim.Engine.s) t =
  t.stopped := true;
  let deadline = Sim.Engine.now t.eng + timeout in
  while
    (not (Array.for_all (fun d -> d.idle) t.drivers))
    && Sim.Engine.now t.eng < deadline
  do
    Sim.Engine.run ~until:(Sim.Engine.now t.eng + (20 * ms)) t.eng
  done;
  Array.for_all (fun d -> d.idle) t.drivers

let reset_window t =
  Array.iter Cluster.reset_window t.clusters;
  Array.iter
    (fun d ->
      d.committed <- 0;
      d.aborted <- 0;
      d.cross_committed <- 0;
      d.cross_aborted <- 0;
      d.prepares <- 0;
      d.lat <- Sim.Metrics.Hist.create ();
      d.cross_lat <- Sim.Metrics.Hist.create ())
    t.drivers

let run t ?(warmup = 0) ~duration () =
  if warmup > 0 then begin
    Sim.Engine.run ~until:(Sim.Engine.now t.eng + warmup) t.eng;
    reset_window t
  end;
  Array.iter Cluster.open_window t.clusters;
  Sim.Engine.run ~until:(Sim.Engine.now t.eng + duration) t.eng;
  Array.iter Cluster.close_window t.clusters

(* ---- aggregate accounting ---- *)

let sum_drivers t f = Array.fold_left (fun acc d -> acc + f d) 0 t.drivers
let committed t = sum_drivers t (fun d -> d.committed)
let aborted t = sum_drivers t (fun d -> d.aborted)
let cross_committed t = sum_drivers t (fun d -> d.cross_committed)
let cross_aborted t = sum_drivers t (fun d -> d.cross_aborted)
let prepares t = sum_drivers t (fun d -> d.prepares)

let released t =
  Array.fold_left (fun acc c -> acc + Cluster.released c) 0 t.clusters

let throughput t =
  (* Logical transactions per second: a cross-shard transaction counts
     once, however many replicated sub-entries it cost — the honest axis
     for the scaling and penalty figures. *)
  let start, stop = Cluster.window t.clusters.(0) in
  if stop <= start then 0.0
  else
    float_of_int (committed t)
    *. float_of_int Sim.Engine.s
    /. float_of_int (stop - start)

let latency t =
  Sim.Metrics.Hist.merge (Array.to_list (Array.map (fun d -> d.lat) t.drivers))

let cross_latency t =
  Sim.Metrics.Hist.merge
    (Array.to_list (Array.map (fun d -> d.cross_lat) t.drivers))

let acked_seqs t s =
  Array.to_list t.drivers
  |> List.concat_map (fun d -> Client.acked_seqs d.sessions.(s))

let client_retries t =
  Array.fold_left
    (fun acc d ->
      Array.fold_left (fun acc c -> acc + Client.retries c) acc d.sessions)
    0 t.drivers
