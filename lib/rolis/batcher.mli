(** Per-stream transaction batching (paper §3.2, Fig. 6).

    Workers hand their committed write-sets to a batcher right after
    execution commit (atomically — still inside the commit event — so the
    stream's entry timestamps stay monotone). When the batch reaches
    [batch_size], or a flush timer / heartbeat tick forces it, the batch
    becomes one {!Store.Wire.entry} and is proposed on the stream.

    Cost accounting: the per-transaction serialization (memcpy) cost is
    charged to the submitting worker via {!charge_submit_cost}; the flush
    itself additionally charges the entry's bytes once more (the copy into
    the Paxos stream's log list — the paper's +Replication factor).

    In [Single] stream mode one batcher is shared by all workers and
    guarded by a mutex whose critical section costs [enqueue_cs_ns] — this
    is the strawman's scalability bottleneck (§2.2). *)

type t

val create :
  Config.t ->
  cpu:Sim.Cpu.t ->
  stats:Stats.t ->
  trace:Trace.t ->
  epoch:(unit -> int) ->
  propose:(Store.Wire.entry -> unit) ->
  shared:bool ->
  t
(** [trace] observes batch flushes: a flush stamps the [Batch_submit]
    span end of every sampled pending transaction in the batch. *)

val submit : t -> Store.Wire.txn_log -> unit
(** Append one committed transaction (no yield). If the batch is full it
    is proposed immediately (still no yield). *)

val charge_submit_cost : t -> bytes:int -> unit
(** Charge the serialization cost for one submitted transaction; yields.
    In shared mode this also serializes through the enqueue mutex,
    charging the critical-section cost under the lock. Call {e before}
    the next transaction executes. *)

val flush : t -> unit
(** Propose any pending partial batch (no yield). *)

val maybe_flush : t -> max_age:int -> unit
(** Flush if the oldest pending transaction is older than [max_age]. *)

val clear : t -> unit
(** Drop pending transactions (failover: speculative work is abandoned). *)

val pending : t -> int
