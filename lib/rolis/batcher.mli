(** Per-stream transaction batching (paper §3.2, Fig. 6).

    Workers hand their committed write-sets to a batcher right after
    execution commit (atomically — still inside the commit event — so the
    stream's entry timestamps stay monotone). When the batch reaches
    [batch_size], or a flush timer / heartbeat tick forces it, the batch
    becomes one {!Store.Wire.entry} and is proposed on the stream.

    Cost accounting: the per-transaction serialization (memcpy) cost is
    charged to the submitting worker via {!charge_submit_cost}; the flush
    itself additionally charges the entry's bytes once more (the copy into
    the Paxos stream's log list — the paper's +Replication factor).

    In [Single] stream mode one batcher is shared by all workers and
    guarded by a mutex whose critical section costs [enqueue_cs_ns] — this
    is the strawman's scalability bottleneck (§2.2).

    {2 Batch policies}

    [Fixed] (the paper's static point) flushes on [batch_size]-fill or the
    external [batch_flush_interval] timer, exactly as the original
    pipeline did — bit-identical simulated results.

    [Adaptive] closes the loop on latency: each stream tracks its arrival
    rate (an EWMA of inter-submit gaps in virtual time) and sizes batches
    to the number of transactions expected within
    [target_batch_delay_ns]; the first transaction of every batch also
    schedules a deadline event at [oldest + target_batch_delay_ns] which
    flushes whatever is pending, so an idle or slowing stream releases
    early instead of waiting out the coarse flush timer. Batches are
    additionally capped at [max_batch_bytes] wire bytes and (always) at
    [batch_size] transactions. Entry timestamps stay monotone per stream
    and every flush remains yield-free, whichever path triggers it. *)

type t

val create :
  Config.t ->
  ?coalesce_factor:(unit -> float) ->
  cpu:Sim.Cpu.t ->
  stats:Stats.t ->
  trace:Trace.t ->
  epoch:(unit -> int) ->
  propose:(Store.Wire.entry -> unit) ->
  shared:bool ->
  unit ->
  t
(** [trace] observes batch flushes: a flush stamps the [Batch_submit]
    span end of every sampled pending transaction in the batch.
    [coalesce_factor] (Adaptive only) reports the replication layer's
    average entries-per-quorum-round so the per-entry overhead charge can
    be amortised over what the wire actually carries; defaults to 1. *)

val submit : t -> Store.Wire.txn_log -> unit
(** Append one committed transaction (no yield). If the batch is full
    (policy-dependent: static size, adaptive target, or byte cap) it is
    proposed immediately (still no yield). *)

val batch_target : t -> int
(** Current flush threshold in transactions: [batch_size] under [Fixed];
    the rate-derived target under [Adaptive]. *)

val charge_submit_cost : t -> bytes:int -> unit
(** Charge the serialization cost for one submitted transaction; yields.
    In shared mode this also serializes through the enqueue mutex,
    charging the critical-section cost under the lock. Call {e before}
    the next transaction executes. *)

val flush : t -> unit
(** Propose any pending partial batch (no yield). *)

val maybe_flush : t -> max_age:int -> unit
(** Flush if the oldest pending transaction is older than [max_age]. *)

val clear : t -> unit
(** Drop pending transactions (failover: speculative work is abandoned). *)

val pending : t -> int
