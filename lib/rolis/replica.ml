let src = Logs.Src.create "rolis.replica" ~doc:"Replica lifecycle events"

module Log = (val Logs.src_log src : Logs.LOG)

type meta = {
  m_ts : int;
  m_start : int;
  m_bytes : int;
  m_client : (int * int) option; (* (cid, seq) to ack at release *)
  m_tok : Trace.token option; (* stage-span handle of a sampled txn *)
}

(* Client session bookkeeping (exactly-once dedup). Sequence numbers start
   at 1; 0 means "none". Invariant: released <= applied <= claimed on a
   replica that only learns sessions through its own execution; replay can
   move all three at once. *)
type session = {
  mutable s_claimed : int; (* highest seq handed to a worker *)
  mutable s_applied : int; (* highest seq whose txn committed (speculative) *)
  mutable s_released : int; (* highest seq acked to the client *)
  mutable s_aborted : int; (* seq that ended in a user abort, if = claimed *)
}

type t = {
  cfg : Config.t;
  rid : int;
  eng : Sim.Engine.t;
  net : Paxos.Msg.t Sim.Net.t;
  cpu : Sim.Cpu.t;
  db : Silo.Db.t;
  stats : Stats.t;
  trace : Trace.t;
  (* The next four fields are assigned once during construction; they are
     mutable only because the record must exist before the components that
     close over it can be built. *)
  mutable election : Paxos.Election.t option;
  mutable streams : Paxos.Stream.t array;
  mutable batchers : Batcher.t array;
  mutable gens : App.gen array;
  wm : Watermark.t;
  (* (journal idx, entry) pairs: replay needs the index to stamp the
     checkpoint-safe frontier once an apply completes. *)
  replay_queues : (int * Store.Wire.entry) Queue.t array;
  (* Entries across all replay queues, maintained incrementally on every
     enqueue/dequeue: admission control reads it per client request, so
     the O(streams) fold was on the hot path. *)
  mutable backlog : int;
  (* Watermark-state generation: bumped on every durability commit and on
     controller-observed watermark/epoch advances. The per-transaction
     replay loop memoizes its seal probe against it — an unsealed
     straddling entry re-checks [Watermark.final_watermark] only after the
     state could actually have moved, not on every poll tick. *)
  mutable wm_gen : int;
  (* Event-driven replay (Bulk mode): per-stream wakeup generation +
     mailbox, same shape as the batcher's generation-guarded deadline. A
     signal bumps the generation and posts at most one poke; the replay
     loop re-drains while the generation moves and only then parks. *)
  r_gen : int array;
  r_wake : unit Sim.Sync.Mailbox.t array;
  (* Follower-lag telemetry: per-stream replayed frontier (last consumed
     entry timestamp) and the cluster-wide durable frontier, both on the
     transaction-timestamp axis. Lag = durable - min(frontier). *)
  applied_ts : int array;
  mutable durable_max : int;
  (* Checkpoint-safe frontier: per-stream highest txn timestamp / journal
     index whose apply has *completed*. Distinct from [applied_ts], which
     advances before the (yielding) apply runs and so may claim entries
     whose writes are still in flight — a fuzzy checkpoint stamping its
     cover from [applied_ts] could advertise coverage it does not have.
     These move only after [apply_entry]/[apply_entry_bulk] return. *)
  safe_ts : int array;
  safe_idx : int array;
  (* Event-driven release (Adaptive policy): last watermark a release
     pass ran for, so a durability notification that does not advance the
     cluster minimum skips the pass. Watermarks ride the global timestamp
     counter, hence monotone across epochs — never reset. *)
  mutable last_rel_wm : int;
  release_queues : meta Queue.t array; (* one per worker, ts-ordered *)
  mutable procs : Sim.Engine.proc list;
  mutable serving : bool;
  mutable srv_epoch : int;
  mutable tainted : bool;
  (* Membership: the voting view this replica currently believes in,
     adopted from replicated config entries (accept-time, monotone by
     generation) and mirrored into the election and every stream. *)
  mutable view : Paxos.Member.view;
  mutable mgen : int;
  mutable learner : bool; (* non-voting: catching up toward promotion *)
  mutable ckpt_loading : bool; (* checkpoint-load ineligibility window *)
  (* Planned handoff: while draining, new client work is redirected at
     [handoff_target] and the handoff process waits for the release
     queues to empty before granting the target immediate candidacy. *)
  mutable draining : bool;
  mutable handoff_target : int option;
  mutable reconfig_inflight : bool; (* leader: one change at a time *)
  mutable repoch : int; (* epoch currently being replayed *)
  mutable rwm : int; (* live watermark for [repoch] *)
  mutable alive : bool;
  worker_active : bool array;
  (* (stream, idx, entry) triples in reverse durable order: the journal a
     restarted replica replays to rebuild a crashed peer (catch-up). The
     absolute stream index keys checkpoint truncation — timestamps cannot
     (leader-change no-op fill entries carry ts = 0). *)
  mutable journal : (int * int * Store.Wire.entry) list;
  mutable journal_bytes : int;
  mutable truncated_entries : int;
  (* Checkpoint duty (followers only; interval > 0): the controller tick
     arms [ckpt_wake] on cadence, the checkpointer process scans, and the
     finished image is published here for the cluster coordinator to
     persist. [ckpt_inprogress] keeps the controller from double-arming
     across a multi-tick scan. *)
  ckpt_wake : unit Sim.Sync.Mailbox.t;
  mutable last_ckpt : Checkpoint.replica_image option;
  mutable ckpt_count : int;
  mutable ckpt_inprogress : bool;
  mutable last_ckpt_at : int;
  last_heard : int array; (* per peer: last time a message arrived *)
  (* Client-session layer: per-session dedup state, rebuilt by replay so a
     freshly promoted leader answers retries of its predecessor's
     transactions from cache, and the queue of admitted-but-unclaimed
     requests the workers drain. *)
  sessions : (int, session) Hashtbl.t;
  client_q : (int * int * string) Sim.Sync.Mailbox.t;
  (* Follower-read engine (gated on [Config.follower_reads]; all dormant
     otherwise). The freshness lease is the leader's heartbeat-carried
     promise that no newer epoch has released writes: a follower serves
     snapshot reads only while [lease_epoch] is current and [lease_until]
     has not passed. Read requests queue in [read_q] for the read worker
     pool; a deterministic 1-in-N sample of served reads lands in
     [read_audit] as [(pin, observations)] for {!Check.snapshot_reads}. *)
  mutable lease_epoch : int;
  mutable lease_until : int;
  read_q : (int * int * string) Sim.Sync.Mailbox.t;
  read_active : bool array;
  mutable read_seen : int;
  mutable read_audit : (int * (int * string * int) list) list;
  mutable read_audit_n : int;
  mutable read_audit_skipped : int;
      (* audit-eligible serves dropped because [read_audit_cap] was
         reached — surfaced so "audit clean" is never misread as full
         coverage of a long run *)
}

let id t = t.rid
let view t = t.view
let mgen t = t.mgen
let members t = Paxos.Member.voters t.view
let is_learner t = t.learner
let is_draining t = t.draining
let db t = t.db
let cpu t = t.cpu
let stats t = t.stats
let trace t = t.trace
let election t = Option.get t.election
let streams t = t.streams
let is_serving t = t.serving
let served_epoch t = t.srv_epoch
let is_tainted t = t.tainted
let replay_epoch t = t.repoch
let replay_watermark t = t.rwm
let is_alive t = t.alive

let replay_backlog t = t.backlog

(* Reference implementation of the counter above — O(streams); tests
   assert the two agree at arbitrary points. *)
let replay_backlog_scan t =
  Array.fold_left (fun acc q -> acc + Queue.length q) 0 t.replay_queues

let journal t = List.rev t.journal
let journal_length t = List.length t.journal
let journal_bytes t = t.journal_bytes
let truncated_entries t = t.truncated_entries
let archived_entries t = List.rev_map (fun (_, _, e) -> e) t.journal
let last_checkpoint t = t.last_ckpt
let checkpoints_taken t = t.ckpt_count
let any_trunc_stalled t = Array.exists Paxos.Stream.trunc_stalled t.streams

let session t cid =
  match Hashtbl.find_opt t.sessions cid with
  | Some s -> s
  | None ->
      let s = { s_claimed = 0; s_applied = 0; s_released = 0; s_aborted = 0 } in
      Hashtbl.replace t.sessions cid s;
      s

let session_state t ~cid =
  Option.map (fun s -> (s.s_applied, s.s_released)) (Hashtbl.find_opt t.sessions cid)

let spawn t name f =
  let p = Sim.Engine.spawn t.eng ~name:(Printf.sprintf "%s-%d" name t.rid) f in
  t.procs <- p :: t.procs

(* ---- leader side ---- *)

let stream_of_worker t w =
  match t.cfg.Config.stream_mode with
  | Config.Per_worker -> w
  | Config.Single -> 0
  | Config.Sharded _ -> w mod Config.nstreams t.cfg

(* ---- client sessions (exactly-once RPC layer) ---- *)

let client_reply t ~cid ~seq reply =
  let m = { Paxos.Msg.from = t.rid; body = Paxos.Msg.Client_rep { cid; seq; reply } } in
  Sim.Net.send t.net ~size:(Paxos.Msg.size m) ~src:t.rid
    ~dst:(Config.pool t.cfg + cid)
    m

let leader_hint t =
  match Paxos.Election.leader_id (election t) with
  | Some l when l <> t.rid -> Some l
  | Some _ | None -> t.handoff_target

(* Admission control: shed load instead of queueing without bound (§5's
   speculative-memory concern, seen from the client side). *)
let overloaded t =
  Sim.Sync.Mailbox.length t.client_q >= t.cfg.Config.admission_max_pending
  || replay_backlog t >= t.cfg.Config.admission_max_backlog
  || Array.exists
       (fun q -> Queue.length q >= t.cfg.Config.admission_max_release)
       t.release_queues

(* Dispatcher-side triage of a client request. The session table is
   consulted *before* execution: a retry of a released seq is answered
   from cache; a retry of an in-flight seq is dropped (the release pass
   will ack it); anything new passes admission control and queues for a
   worker. *)
let handle_client_req t ~cid ~seq ~payload =
  Stats.note_client_request t.stats;
  if not (t.serving && t.alive) then begin
    Stats.note_redirect t.stats;
    Trace.note_disposition t.trace Trace.Redirect;
    client_reply t ~cid ~seq (Paxos.Msg.Not_leader { hint = leader_hint t })
  end
  else begin
    let s = session t cid in
    if seq <= s.s_released then begin
      Stats.note_cached_reply t.stats;
      Trace.note_disposition t.trace Trace.Cached;
      client_reply t ~cid ~seq Paxos.Msg.Ok_released
    end
    else if seq <= s.s_claimed then begin
      if seq = s.s_aborted then client_reply t ~cid ~seq Paxos.Msg.Aborted
      (* else: executing or awaiting the watermark; release will ack. *)
    end
    else if t.draining then begin
      (* Planned handoff: in-flight work keeps releasing, but new work
         goes to the designated successor. *)
      Stats.note_redirect t.stats;
      Trace.note_disposition t.trace Trace.Redirect;
      client_reply t ~cid ~seq (Paxos.Msg.Not_leader { hint = leader_hint t })
    end
    else if overloaded t then begin
      Stats.note_busy_reply t.stats;
      Trace.note_disposition t.trace Trace.Busy;
      client_reply t ~cid ~seq Paxos.Msg.Busy
    end
    else Sim.Sync.Mailbox.send t.client_q (cid, seq, payload)
  end

let drop_speculative t =
  Array.iter
    (fun q ->
      Queue.iter (fun m -> Stats.note_dropped_speculative t.stats ~bytes:m.m_bytes) q;
      Queue.clear q)
    t.release_queues;
  Array.iter Batcher.clear t.batchers;
  (* Covers both release-queue and still-batched sampled transactions:
     their spans are flushed to the rings marked dropped, never leaked. *)
  Trace.drop_all t.trace

let stop_serving t =
  if t.serving then begin
    Log.debug (fun m -> m "replica %d stops serving (tainted)" t.rid);
    t.serving <- false;
    t.tainted <- true;
    (* The local database holds speculative writes that were never
       released; leading again would serve diverged state. A tainted
       replica still votes and follows, but must be rebuilt (restart)
       before it may stand for election. *)
    Paxos.Election.set_eligible (election t) false;
    drop_speculative t
  end

let worker_loop t w () =
  let gen = t.gens.(w) in
  let s = stream_of_worker t w in
  (* Stagger worker start so per-stream batch boundaries de-phase, as
     thread drift would on real hardware; otherwise every stream flushes
     in lockstep and the watermark wait is unrealistically small. *)
  Sim.Engine.sleep (w * 1_700 * Sim.Engine.us);
  while true do
    if t.serving && t.alive && not t.draining then begin
      if not t.worker_active.(w) then begin
        Sim.Cpu.register t.cpu;
        t.worker_active.(w) <- true
      end;
      let body = gen () in
      let start = Sim.Engine.time () in
      if t.cfg.Config.networked_clients then
        Sim.Cpu.consume t.cpu t.cfg.Config.client_rpc_overhead;
      let r = Silo.Db.run t.db ~worker:w body in
      let dec = Silo.Db.take_decision t.db ~worker:w in
      match r.Silo.Db.tid with
      | Some tid when t.serving ->
          Stats.note_executed t.stats;
          let txn_log =
            {
              Store.Wire.ts = tid.Silo.Tid.ts;
              req = None;
              decision = dec;
              writes = r.Silo.Db.log;
            }
          in
          let bytes = Store.Wire.txn_byte_size txn_log in
          let tok =
            Trace.sample t.trace ~worker:w ~ts:tid.Silo.Tid.ts ~exec_start:start
          in
          (* Append + release record atomically (same event as the
             commit), so stream timestamps stay monotone. *)
          Batcher.submit t.batchers.(s) txn_log;
          Queue.add
            {
              m_ts = tid.Silo.Tid.ts;
              m_start = start;
              m_bytes = bytes;
              m_client = None;
              m_tok = tok;
            }
            t.release_queues.(w);
          Stats.note_submitted t.stats ~bytes;
          Batcher.charge_submit_cost t.batchers.(s) ~bytes;
          (match tok with Some tk -> Trace.note_serialized t.trace tk | None -> ())
      | Some _ -> () (* leadership lapsed mid-transaction: speculative, dropped *)
      | None -> Stats.note_user_abort t.stats
    end
    else begin
      if t.worker_active.(w) then begin
        Sim.Cpu.unregister t.cpu;
        t.worker_active.(w) <- false
      end;
      Sim.Engine.sleep (10 * Sim.Engine.ms)
    end
  done

(* Client-mode worker: serve queued client requests instead of running the
   embedded generator. Claiming the seq and executing happen without an
   intervening yield relative to other claims, so duplicate requests of
   the same seq can never reach two workers. *)
let client_worker_loop t w op () =
  let s = stream_of_worker t w in
  Sim.Engine.sleep (w * 1_700 * Sim.Engine.us);
  while true do
    match Sim.Sync.Mailbox.recv_timeout t.client_q (10 * Sim.Engine.ms) with
    | None ->
        if t.worker_active.(w) then begin
          Sim.Cpu.unregister t.cpu;
          t.worker_active.(w) <- false
        end
    | Some (cid, seq, payload) ->
        if not (t.serving && t.alive) then begin
          if t.alive then begin
            Stats.note_redirect t.stats;
            Trace.note_disposition t.trace Trace.Redirect;
            client_reply t ~cid ~seq (Paxos.Msg.Not_leader { hint = leader_hint t })
          end
        end
        else begin
          if not t.worker_active.(w) then begin
            Sim.Cpu.register t.cpu;
            t.worker_active.(w) <- true
          end;
          let sess = session t cid in
          if seq <= sess.s_released then begin
            Stats.note_cached_reply t.stats;
            Trace.note_disposition t.trace Trace.Cached;
            client_reply t ~cid ~seq Paxos.Msg.Ok_released
          end
          else if seq <= sess.s_claimed then begin
            if seq = sess.s_aborted then client_reply t ~cid ~seq Paxos.Msg.Aborted
          end
          else if t.draining then begin
            Stats.note_redirect t.stats;
            Trace.note_disposition t.trace Trace.Redirect;
            client_reply t ~cid ~seq
              (Paxos.Msg.Not_leader { hint = leader_hint t })
          end
          else begin
            sess.s_claimed <- seq;
            let start = Sim.Engine.time () in
            Sim.Cpu.consume t.cpu t.cfg.Config.client_rpc_overhead;
            let r = Silo.Db.run t.db ~worker:w (op ~payload) in
            let dec = Silo.Db.take_decision t.db ~worker:w in
            match r.Silo.Db.tid with
            | Some tid when t.serving ->
                if seq > sess.s_applied then sess.s_applied <- seq;
                Stats.note_executed t.stats;
                let txn_log =
                  {
                    Store.Wire.ts = tid.Silo.Tid.ts;
                    req = Some (cid, seq);
                    decision = dec;
                    writes = r.Silo.Db.log;
                  }
                in
                let bytes = Store.Wire.txn_byte_size txn_log in
                let tok =
                  Trace.sample t.trace ~worker:w ~ts:tid.Silo.Tid.ts
                    ~exec_start:start
                in
                Batcher.submit t.batchers.(s) txn_log;
                Queue.add
                  {
                    m_ts = tid.Silo.Tid.ts;
                    m_start = start;
                    m_bytes = bytes;
                    m_client = Some (cid, seq);
                    m_tok = tok;
                  }
                  t.release_queues.(w);
                Stats.note_submitted t.stats ~bytes;
                Batcher.charge_submit_cost t.batchers.(s) ~bytes;
                (match tok with
                | Some tk -> Trace.note_serialized t.trace tk
                | None -> ())
            | Some _ ->
                (* Leadership lapsed mid-transaction: the write is
                   speculative and dropped with this tainted replica; the
                   client's retry re-executes at the next leader. *)
                ()
            | None ->
                (* User abort: no effect anywhere, safe to answer now. *)
                sess.s_aborted <- seq;
                Stats.note_user_abort t.stats;
                client_reply t ~cid ~seq Paxos.Msg.Aborted
          end
        end
  done

(* ---- replay side ---- *)

(* Session-table rebuild from a replicated request id: a replayed
   transaction is durable below its epoch's watermark, i.e. released (or
   about to be) at the leader that executed it. Marking it released here
   is what lets a freshly promoted leader answer a retry from cache
   instead of re-executing — including when the old leader died between
   durability and release. *)
let rebuild_session t (txn : Store.Wire.txn_log) =
  match txn.Store.Wire.req with
  | Some (cid, seq) ->
      let sess = session t cid in
      if seq > sess.s_claimed then sess.s_claimed <- seq;
      if seq > sess.s_applied then sess.s_applied <- seq;
      if seq > sess.s_released then sess.s_released <- seq
  | None -> ()

(* Follower-lag bookkeeping. Every consumed entry (replayed or skipped as
   our own proposal) advances this stream's replayed frontier. The lag
   sample is taken on the controller tick — a fixed cadence identical in
   both replay modes — not at entry-apply time: the event-driven bulk
   loop applies each entry the instant it becomes eligible, so apply-time
   samples would always land on the crest of the durability sawtooth and
   overstate its lag relative to the poll-delayed per-txn loop. Pure
   host-side accounting — no virtual-time ops — so it is bit-identity
   safe in both replay modes. *)
let note_consumed t s (entry : Store.Wire.entry) =
  if entry.Store.Wire.last_ts > t.applied_ts.(s) then
    t.applied_ts.(s) <- entry.Store.Wire.last_ts

(* Checkpoint-safe frontier (see [safe_ts]): called once an entry's apply
   has fully completed — or was rightly skipped (own proposal, already in
   the db by execution; above-final-watermark tail, excluded everywhere) —
   so a fuzzy checkpoint stamping [safe_idx] never claims an in-flight
   write. *)
let note_applied t s ~idx (entry : Store.Wire.entry) =
  if entry.Store.Wire.last_ts > t.safe_ts.(s) then
    t.safe_ts.(s) <- entry.Store.Wire.last_ts;
  if idx > t.safe_idx.(s) then t.safe_idx.(s) <- idx

let note_lag t =
  let frontier = Array.fold_left min max_int t.applied_ts in
  if frontier > 0 && frontier <> max_int then
    Trace.note_replay_lag t.trace ~frontier ~durable:t.durable_max

let replay_frontier t =
  let f = Array.fold_left min max_int t.applied_ts in
  if f = max_int then 0 else f

let durable_frontier t = t.durable_max

let apply_entry ?(upto = max_int) t (entry : Store.Wire.entry) =
  (* [upto] truncates the batch at the (final) watermark: transactions
     with [ts <= upto] are safe — they may already have been released to
     clients — while later ones in the same entry may depend on lost
     transactions and must be skipped (§4.1). *)
  if not t.cfg.Config.disable_replay then begin
    Sim.Cpu.register t.cpu;
    let applied = ref 0 in
    List.iter
      (fun (txn : Store.Wire.txn_log) ->
        if txn.Store.Wire.ts <= upto then begin
          rebuild_session t txn;
          let nwrites = List.length txn.writes in
          let sampled = Trace.sample_replay t.trace in
          let r0 = Sim.Engine.now t.eng in
          Silo.Db.apply_replay t.db txn ~epoch:entry.epoch ~writes:nwrites
            ~applied;
          if sampled then
            Trace.note_replay t.trace ~ts:txn.Store.Wire.ts ~start:r0
              ~stop:(Sim.Engine.now t.eng);
          Stats.note_replayed t.stats ~txns:1 ~writes:nwrites
        end)
      entry.txns;
    Sim.Cpu.unregister t.cpu
  end

(* Bulk fast path (replay_batch = Bulk): merge the whole entry's
   write-sets (last-writer-wins per key), sort once, apply through a
   B-tree cursor sweep — one CPU charge, one trace span, one stats update
   per entry instead of per transaction (Rolis §5's replay headroom,
   Fig. 15). *)
let apply_entry_bulk ?(upto = max_int) t (entry : Store.Wire.entry) =
  if not t.cfg.Config.disable_replay then begin
    Sim.Cpu.register t.cpu;
    List.iter
      (fun (txn : Store.Wire.txn_log) ->
        if txn.Store.Wire.ts <= upto then rebuild_session t txn)
      entry.txns;
    let sampled = Trace.sample_replay t.trace in
    let r0 = Sim.Engine.now t.eng in
    let res =
      Silo.Db.apply_replay_entry t.db entry
        ~ways:t.cfg.Config.replay_parallel ~upto ()
    in
    if sampled then
      Trace.note_replay t.trace ~ts:entry.Store.Wire.last_ts ~start:r0
        ~stop:(Sim.Engine.now t.eng);
    Stats.note_replayed t.stats ~txns:res.Silo.Db.re_txns
      ~writes:res.Silo.Db.re_writes;
    Sim.Cpu.unregister t.cpu
  end

(* Event-driven replay wakeup (Bulk mode): bump the stream's generation
   and post at most one poke — [Mailbox.length] counts only queued
   messages, so the mailbox never holds more than one. A signal landing
   while the loop drains either bumps the generation (loop re-drains
   before parking) or wakes the parked waiter; wakeups are never lost. *)
let signal_replay t s =
  t.r_gen.(s) <- t.r_gen.(s) + 1;
  if Sim.Sync.Mailbox.length t.r_wake.(s) = 0 then
    Sim.Sync.Mailbox.send t.r_wake.(s) ()

let signal_replay_all t =
  for s = 0 to Array.length t.r_gen - 1 do
    signal_replay t s
  done

let replay_loop_pertxn t s () =
  let q = t.replay_queues.(s) in
  let poll = t.cfg.Config.watermark_interval in
  let pop () =
    ignore (Queue.pop q);
    t.backlog <- t.backlog - 1
  in
  (* Seal-probe memoization (see [wm_gen]): for an unsealed straddling
     entry, re-probe [final_watermark] only after a durability event could
     have changed the answer, instead of on every poll tick. *)
  let seal_gen = ref (-1) in
  while true do
    match Queue.peek_opt q with
    | None -> Sim.Engine.sleep poll
    | Some (idx, entry) ->
        let e = entry.Store.Wire.epoch in
        if t.serving && e = t.srv_epoch then begin
          (* Our own proposals: already applied by execution. *)
          pop ();
          note_consumed t s entry;
          note_applied t s ~idx entry
        end
        else if e < t.repoch then begin
          (* Left-over from an already-advanced epoch (defensive): apply
             only the part below that epoch's final watermark. *)
          pop ();
          note_consumed t s entry;
          (match Watermark.final_watermark t.wm ~epoch:e with
          | Some w -> apply_entry t entry ~upto:w
          | None -> ());
          note_applied t s ~idx entry
        end
        else if e = t.repoch then begin
          if entry.Store.Wire.last_ts <= t.rwm then begin
            pop ();
            note_consumed t s entry;
            apply_entry t entry;
            note_applied t s ~idx entry
          end
          else if !seal_gen = t.wm_gen then Sim.Engine.sleep poll
          else begin
            match Watermark.final_watermark t.wm ~epoch:e with
            | Some w ->
                (* The epoch is sealed and this entry straddles its final
                   watermark: replay the prefix with [ts <= W] (those
                   results may already be at clients) and skip the tail,
                   which may depend on lost transactions (Fig. 3). *)
                pop ();
                note_consumed t s entry;
                apply_entry t entry ~upto:w;
                note_applied t s ~idx entry
            | None ->
                (* Memoize only the negative probe. A successful pop must
                   leave [seal_gen] stale so the next straddling entry on
                   this stream re-probes under the same generation —
                   after an epoch seals, durability events may be finite,
                   and memoizing the hit would strand every entry after
                   the first one. *)
                seal_gen := t.wm_gen;
                Sim.Engine.sleep poll
          end
        end
        else Sim.Engine.sleep poll (* future epoch: wait for the controller *)
  done

(* Bulk mode: same state machine, but instead of sleeping a poll interval
   the loop drains everything applicable and then parks on the wakeup
   mailbox, re-draining first if the generation moved while it worked. A
   durability commit or watermark advance wakes it immediately, so replay
   latency no longer floors at [watermark_interval]. *)
let replay_loop_bulk t s () =
  let q = t.replay_queues.(s) in
  let pop () =
    ignore (Queue.pop q);
    t.backlog <- t.backlog - 1
  in
  while true do
    let gen = t.r_gen.(s) in
    let continue = ref true in
    while !continue do
      match Queue.peek_opt q with
      | None -> continue := false
      | Some (idx, entry) ->
          let e = entry.Store.Wire.epoch in
          if t.serving && e = t.srv_epoch then begin
            pop ();
            note_consumed t s entry;
            note_applied t s ~idx entry
          end
          else if e < t.repoch then begin
            pop ();
            note_consumed t s entry;
            (match Watermark.final_watermark t.wm ~epoch:e with
            | Some w -> apply_entry_bulk t entry ~upto:w
            | None -> ());
            note_applied t s ~idx entry
          end
          else if e = t.repoch then begin
            if entry.Store.Wire.last_ts <= t.rwm then begin
              pop ();
              note_consumed t s entry;
              apply_entry_bulk t entry;
              note_applied t s ~idx entry
            end
            else
              match Watermark.final_watermark t.wm ~epoch:e with
              | Some w ->
                  pop ();
                  note_consumed t s entry;
                  apply_entry_bulk t entry ~upto:w;
                  note_applied t s ~idx entry
              | None -> continue := false (* unsealed straddle: park *)
          end
          else continue := false (* future epoch: wait for the controller *)
    done;
    if t.r_gen.(s) = gen then Sim.Sync.Mailbox.recv t.r_wake.(s)
  done

let replay_loop t s () =
  match t.cfg.Config.replay_batch with
  | Config.PerTxn -> replay_loop_pertxn t s ()
  | Config.Bulk -> replay_loop_bulk t s ()

(* ---- controller: watermark, release, replay-epoch advancement ---- *)

let release_pass t =
  match Watermark.compute t.wm ~epoch:t.srv_epoch with
  | None -> ()
  | Some w ->
      let now = Sim.Engine.now t.eng in
      let extra_latency = if t.cfg.Config.networked_clients then t.cfg.Config.client_rtt else 0 in
      Array.iter
        (fun q ->
          let continue = ref true in
          while !continue do
            match Queue.peek_opt q with
            | Some m when m.m_ts <= w ->
                ignore (Queue.pop q);
                (* The ack: results become visible to clients only below
                   the watermark (§3.3) — this is the exactly-once "done"
                   signal the oracle checks. *)
                (match m.m_client with
                | Some (cid, seq) ->
                    let sess = session t cid in
                    if seq > sess.s_released then sess.s_released <- seq;
                    client_reply t ~cid ~seq Paxos.Msg.Ok_released
                | None -> ());
                Stats.note_released t.stats ~start:m.m_start
                  ~latency:(now - m.m_start + extra_latency)
                  ~bytes:m.m_bytes;
                (match m.m_tok with
                | Some tk -> Trace.note_released t.trace tk
                | None -> ())
            | Some _ | None -> continue := false
          done)
        t.release_queues

(* A leader that cannot reach a majority must stop serving: its
   speculative transactions can never become durable, and another leader
   may be elected on the other side of the partition. This is the lease
   check that also bounds speculative memory accumulation (§5). *)
let quorum_alive t =
  let voters = Paxos.Member.voters t.view in
  if List.length voters <= 1 then true
  else begin
    let now = Sim.Engine.now t.eng in
    (* Self counts as heard; a joint view needs a fresh majority of BOTH
       configurations, which [Member.quorum] enforces. *)
    let fresh =
      List.filter
        (fun peer ->
          peer = t.rid
          || peer < Array.length t.last_heard
             && now - t.last_heard.(peer) <= t.cfg.Config.election_timeout)
        voters
    in
    Paxos.Member.quorum t.view fresh
  end

(* ---- snapshot reads (epoch-guarded freshness leases) ---- *)

(* Audit sampling of served reads: deterministic (counter-based, no RNG
   draws) and bounded, so long runs keep a representative prefix without
   unbounded host memory. *)
let read_audit_interval = 64
let read_audit_cap = 4096

(* May this replica serve a snapshot read right now? A serving leader may
   — provided it still sees a quorum (the same condition that lets it
   keep releasing); a follower needs a live freshness lease from the
   current epoch's leader. The lease is a fence, not just a hint:
   [Config.validate] enforces [read_lease < election_timeout], and grants
   are only issued while the leader has fresh quorum contact, so by the
   time any successor can finish an election (a full timeout of silence
   later) every lease the deposed leader granted has expired — a
   lease-holding follower can never serve a snapshot that a newer leader
   has silently surpassed. A tainted replica's database holds speculative
   never-durable writes and must not serve reads at all. *)
let may_serve_reads t =
  t.cfg.Config.follower_reads && t.alive && (not t.tainted)
  &&
  if t.serving then quorum_alive t
  else
    t.lease_epoch >= Paxos.Election.epoch (election t)
    && Sim.Engine.now t.eng <= t.lease_until

(* The snapshot pin. Leader: the release watermark — exactly the frontier
   below which results are client-visible (§3.3), so a leader-served read
   observes the same prefix a client can know about. Follower: the
   minimum over streams of the fully-applied frontier [safe_ts] — every
   transaction at or below it has completely replayed here, and
   per-stream timestamp monotonicity means nothing below it is still in
   flight. Pins only advance, and read bodies are yield-free, so version
   reclamation against the current pin (see {!Silo.Db.set_read_floor})
   can never pull a version out from under an in-progress read. *)
let read_pin t =
  if t.serving then
    match Watermark.compute t.wm ~epoch:t.srv_epoch with
    | Some w -> w
    | None -> 0
  else begin
    let f = Array.fold_left min max_int t.safe_ts in
    if f = max_int || f < 0 then 0 else f
  end

(* Dispatcher-side triage of a read request. No session state — snapshot
   reads are idempotent, so there is nothing to deduplicate. An
   ineligible replica redirects toward the leader when it knows one (a
   serving leader always serves reads too) and parks the client with
   [Busy] otherwise; a full read queue sheds like the write path's
   admission control. *)
let handle_read_req t ~cid ~seq ~payload =
  if not (may_serve_reads t) then begin
    match leader_hint t with
    | Some _ as hint ->
        Stats.note_read_redirect t.stats;
        Trace.note_disposition t.trace Trace.Redirect;
        client_reply t ~cid ~seq (Paxos.Msg.Not_leader { hint })
    | None ->
        Stats.note_read_parked t.stats;
        Trace.note_disposition t.trace Trace.Busy;
        client_reply t ~cid ~seq Paxos.Msg.Busy
  end
  else if Sim.Sync.Mailbox.length t.read_q >= t.cfg.Config.admission_max_pending
  then begin
    Stats.note_read_parked t.stats;
    Trace.note_disposition t.trace Trace.Busy;
    client_reply t ~cid ~seq Paxos.Msg.Busy
  end
  else Sim.Sync.Mailbox.send t.read_q (cid, seq, payload)

(* Leader half of the lease protocol, called from the heartbeat tick:
   re-arm every pool node's lease while we are serving AND still see a
   quorum. Spares and learners are included — they replay and may serve
   reads once current. Gated: with follower reads off this sends no
   messages at all (bit-identity of the default path). *)
let grant_leases t =
  if t.cfg.Config.follower_reads && t.serving && quorum_alive t then begin
    let until = Sim.Engine.now t.eng + t.cfg.Config.read_lease in
    let body = Paxos.Msg.Read_lease { epoch = t.srv_epoch; until } in
    for peer = 0 to Config.pool t.cfg - 1 do
      if peer <> t.rid then begin
        let m = { Paxos.Msg.from = t.rid; body } in
        Sim.Net.send t.net ~size:(Paxos.Msg.size m) ~src:t.rid ~dst:peer m
      end
    done
  end

(* Follower half: adopt a grant unless it is from an epoch older than one
   we already hold a lease for. [lease_until] is max-monotone — grant
   times ride real heartbeats, so a newer epoch's grant never shortens an
   adopted lease. Staleness relative to our *known* epoch is checked at
   serve time ([may_serve_reads]), where the answer can still change. *)
let handle_read_lease t ~epoch ~until =
  if epoch >= t.lease_epoch then begin
    t.lease_epoch <- epoch;
    if until > t.lease_until then t.lease_until <- until
  end

(* Read worker: drain the read queue, serving each request against a
   freshly pinned snapshot. The serve path takes no locks and validates
   nothing — its whole cost is [txn_begin_ns] plus [snapshot_read_ns] per
   point read (charged inside {!Silo.Db.read_at}) — which is what
   multiplies cluster read capacity: followers burn their own idle cores.
   A reclaimed-version miss ({!Silo.Db.Snapshot_miss}) retries at the
   fresher pin up to [read_retry_limit] times before shedding. *)
let read_worker_loop t w rop () =
  Sim.Engine.sleep (w * 1_300 * Sim.Engine.us);
  while true do
    match Sim.Sync.Mailbox.recv_timeout t.read_q (10 * Sim.Engine.ms) with
    | None ->
        if t.read_active.(w) then begin
          Sim.Cpu.unregister t.cpu;
          t.read_active.(w) <- false
        end
    | Some (cid, seq, payload) ->
        if not (may_serve_reads t) then begin
          (* The lease lapsed (or we were deposed) while the request sat
             queued: never serve — the snapshot could trail a newer
             leader's released writes. Park the client instead. *)
          if t.alive then begin
            Stats.note_read_parked t.stats;
            Trace.note_disposition t.trace Trace.Busy;
            client_reply t ~cid ~seq Paxos.Msg.Busy
          end
        end
        else begin
          if not t.read_active.(w) then begin
            Sim.Cpu.register t.cpu;
            t.read_active.(w) <- true
          end;
          let start = Sim.Engine.time () in
          t.read_seen <- t.read_seen + 1;
          let eligible = (t.read_seen - 1) mod read_audit_interval = 0 in
          let audit = eligible && t.read_audit_n < read_audit_cap in
          if eligible && not audit then
            t.read_audit_skipped <- t.read_audit_skipped + 1;
          let rec attempt n =
            let pin = read_pin t in
            match Silo.Db.read_at t.db ~audit ~pin (fun s -> rop ~payload s) with
            | v, obs -> Some (pin, v, obs)
            | exception Silo.Db.Snapshot_miss ->
                Stats.note_read_miss t.stats;
                if n + 1 >= t.cfg.Config.read_retry_limit then None
                else attempt (n + 1)
          in
          match attempt 0 with
          | Some (pin, value, obs) ->
              if audit then begin
                t.read_audit <- (pin, obs) :: t.read_audit;
                t.read_audit_n <- t.read_audit_n + 1
              end;
              Stats.note_read_served t.stats;
              Trace.note_read_serve t.trace ~start ~stop:(Sim.Engine.time ())
                ~staleness:(t.durable_max - pin);
              client_reply t ~cid ~seq (Paxos.Msg.Ok_read { value })
          | None ->
              Stats.note_read_parked t.stats;
              Trace.note_disposition t.trace Trace.Busy;
              client_reply t ~cid ~seq Paxos.Msg.Busy
        end
  done

let read_audits t = List.rev t.read_audit
let read_audit_skipped t = t.read_audit_skipped
let lease_valid t = may_serve_reads t

let controller_loop t () =
  while true do
    Sim.Engine.sleep t.cfg.Config.watermark_interval;
    Stats.sample_speculative_memory t.stats;
    (* Follower-lag sample at fixed cadence (see [note_consumed]):
       followers only — a leader's frontier tracks its own skipped
       proposals and would dilute the metric. *)
    if (not t.serving) && not t.cfg.Config.disable_replay then note_lag t;
    if t.serving && not (quorum_alive t) then stop_serving t;
    let rwm_advanced =
      match Watermark.compute t.wm ~epoch:t.repoch with
      | Some w when w > t.rwm ->
          t.rwm <- w;
          true
      | Some _ | None -> false
    in
    let sealed = Watermark.is_sealed t.wm ~epoch:t.repoch in
    let epoch_advanced =
      sealed
      &&
      let drained =
        Array.for_all
          (fun q ->
            match Queue.peek_opt q with
            | None -> true
            | Some (_, e) -> e.Store.Wire.epoch > t.repoch)
          t.replay_queues
      in
      if drained then begin
        t.repoch <- t.repoch + 1;
        t.rwm <-
          (match Watermark.compute t.wm ~epoch:t.repoch with Some w -> w | None -> 0)
      end;
      drained
    in
    if rwm_advanced || epoch_advanced then t.wm_gen <- t.wm_gen + 1;
    (* Bulk replay parks between wakeups; poke every stream whenever its
       go/no-go inputs moved (watermark or epoch advance) and as a sealed
       backstop for entries straddling the final watermark, whose apply
       decision changes without the replay watermark moving. *)
    if
      t.cfg.Config.replay_batch = Config.Bulk
      && (rwm_advanced || epoch_advanced || sealed)
    then signal_replay_all t;
    (* Under the Adaptive policy release is event-driven — durability
       notifications that advance the watermark run the pass directly
       (see [on_commit]) — and the controller tick keeps only its
       lease/seal/epoch duties above. *)
    if t.serving && t.cfg.Config.batch_policy <> Config.Adaptive then
      release_pass t;
    (* Checkpoint duty (followers only — a leader's database holds
       speculative above-watermark writes that must never reach disk):
       arm the checkpointer on cadence; a scan spanning several ticks is
       never double-armed. *)
    if
      t.cfg.Config.checkpoint_interval > 0
      && t.alive && (not t.serving) && (not t.tainted)
      && (not t.ckpt_inprogress)
      && Sim.Engine.now t.eng - t.last_ckpt_at >= t.cfg.Config.checkpoint_interval
    then begin
      t.last_ckpt_at <- Sim.Engine.now t.eng;
      t.ckpt_inprogress <- true;
      if Sim.Sync.Mailbox.length t.ckpt_wake = 0 then
        Sim.Sync.Mailbox.send t.ckpt_wake ()
    end
  done

(* The checkpointer: stamp the safe frontier, scan the database through
   the bandwidth-limited disk, publish the image. The scan is fuzzy —
   replay keeps applying while it runs — which is safe because the stamped
   cover is a *lower* bound (stamped before the scan, applies are
   monotone) and installs go through the strictly-newer CAS. Tombstones
   ride along ([live_only:false]): a below-watermark delete missing from
   the image would resurrect on a rebuilt replica whose [App.setup] seeds
   the row. *)
let checkpoint_loop t () =
  while true do
    Sim.Sync.Mailbox.recv t.ckpt_wake;
    if t.alive && (not t.serving) && not t.tainted then begin
      let cover = Array.copy t.safe_idx in
      let frontier = Array.copy t.safe_ts in
      let wm_snap = Watermark.export t.wm in
      let sessions =
        Hashtbl.fold
          (fun cid s acc ->
            (cid, s.s_claimed, s.s_applied, s.s_released, s.s_aborted) :: acc)
          t.sessions []
        |> List.sort compare
      in
      let taken_at = Sim.Engine.now t.eng in
      let img =
        Checkpoint.write t.db ~threads:t.cfg.Config.checkpoint_threads
          ~disk_mb_per_s:t.cfg.Config.checkpoint_disk_mb_per_s
          ~live_only:false ()
      in
      (* Promotion or taint mid-scan: the image may hold speculative
         writes that were never durable — discard it. *)
      if (not t.serving) && not t.tainted then begin
        t.last_ckpt <-
          Some
            {
              Checkpoint.ri_image = img;
              ri_cover = cover;
              ri_frontier = frontier;
              ri_wm = wm_snap;
              ri_sessions = sessions;
              ri_taken_at = taken_at;
            };
        t.ckpt_count <- t.ckpt_count + 1;
        Log.debug (fun m ->
            m "replica %d checkpoint #%d: %d rows, %d bytes" t.rid t.ckpt_count
              (Checkpoint.row_count img) (Checkpoint.size_bytes img))
      end
    end;
    t.ckpt_inprogress <- false
  done

let flush_timer_loop t () =
  while true do
    Sim.Engine.sleep t.cfg.Config.batch_flush_interval;
    if t.serving then
      Array.iter
        (fun b -> Batcher.maybe_flush b ~max_age:t.cfg.Config.batch_flush_interval)
        t.batchers
  done

(* ---- membership (joint consensus) ---- *)

let view_of_change (c : Store.Wire.member_change) =
  match c.Store.Wire.m_old with
  | [] -> Paxos.Member.stable c.Store.Wire.m_new
  | old_ -> Paxos.Member.joint ~old_ ~new_:c.Store.Wire.m_new

(* Adopt a replicated configuration at *accept* time (Raft §6: a server
   always uses the latest configuration in its log, committed or not).
   Monotone by generation; mirrored into the election and every stream so
   the quorum rule switches atomically with the view. *)
let adopt_config t (c : Store.Wire.member_change) =
  if c.Store.Wire.m_gen > t.mgen then begin
    let view = view_of_change c in
    t.mgen <- c.Store.Wire.m_gen;
    t.view <- view;
    Paxos.Election.set_view (election t) view ~gen:c.Store.Wire.m_gen;
    Array.iter
      (fun s -> Paxos.Stream.set_view s view ~gen:c.Store.Wire.m_gen)
      t.streams;
    (* Learner promotion: the moment the adopted view makes us a voter we
       may stand for election — unless a checkpoint load or taint still
       forbids it. *)
    if t.learner && Paxos.Member.mem view t.rid then begin
      t.learner <- false;
      if t.alive && (not t.tainted) && not t.ckpt_loading then
        Paxos.Election.set_eligible (election t) true
    end;
    Log.debug (fun m ->
        m "replica %d adopts config gen %d: %a" t.rid c.Store.Wire.m_gen
          Paxos.Member.pp view)
  end

(* Propose a configuration entry on stream 0 (configs are totally ordered
   there) and adopt it locally right away. *)
let propose_config t (c : Store.Wire.member_change) =
  adopt_config t c;
  Paxos.Stream.propose t.streams.(0)
    (Store.Wire.config_entry ~epoch:t.srv_epoch ~ts:(Silo.Db.next_ts t.db) c)

(* Start a membership change toward voter set [members]: commit the joint
   configuration C_old,new first; once it is durable, [on_commit] follows
   up with the stable C_new (see [create]). One change in flight at a
   time; a leader mid-drain refuses. *)
let propose_reconfig t ~members =
  let members = List.sort_uniq compare members in
  if
    (not (t.serving && t.alive))
    || t.draining || t.reconfig_inflight || members = []
  then false
  else
    match t.view with
    | Paxos.Member.Joint _ -> false (* a change is already in flight *)
    | Paxos.Member.Stable old_ ->
        if members = old_ then false
        else begin
          t.reconfig_inflight <- true;
          propose_config t
            { Store.Wire.m_gen = t.mgen + 1; m_old = old_; m_new = members };
          true
        end

(* Learners this leader must not truncate away from (forwarded to every
   stream's retention gate). *)
let set_learners t l =
  Array.iter (fun s -> Paxos.Stream.set_learners s l) t.streams

(* ---- planned leader handoff ---- *)

(* Drain-then-transfer (Raft leadership transfer, adapted to the
   speculative pipeline): stop admitting new client work, wait for every
   release queue to empty — everything executed here is then released, so
   the database is exactly the replicated prefix — step down *clean* (no
   taint, still eligible) and grant the target immediate candidacy with
   [Timeout_now], closing the election-timeout gap. If the drain times
   out, the transfer still proceeds but the step-down goes through the
   ordinary deposition path (taint) when the target's election lands. If
   no new epoch appears at all, resume serving: a failed handoff must not
   leave the epoch leaderless. *)
let begin_handoff t ~target =
  if t.serving && t.alive && (not t.draining) && target <> t.rid then begin
    t.draining <- true;
    t.handoff_target <- Some target;
    let epoch = t.srv_epoch in
    Log.debug (fun m ->
        m "replica %d draining epoch %d for handoff to %d" t.rid epoch target);
    spawn t "handoff" (fun () ->
        let deadline =
          Sim.Engine.now t.eng + t.cfg.Config.handoff_drain_timeout
        in
        Array.iter Batcher.flush t.batchers;
        let drained () = Array.for_all Queue.is_empty t.release_queues in
        while
          t.serving && t.alive
          && (not (drained ()))
          && Sim.Engine.now t.eng < deadline
        do
          Sim.Engine.sleep (5 * Sim.Engine.ms)
        done;
        if t.serving && t.alive && t.srv_epoch = epoch then begin
          if drained () then begin
            t.serving <- false;
            Log.debug (fun m ->
                m "replica %d hands off epoch %d to %d (drained clean)" t.rid
                  epoch target)
          end;
          let msg =
            {
              Paxos.Msg.from = t.rid;
              body = Paxos.Msg.Elect (Paxos.Msg.Timeout_now { epoch });
            }
          in
          Sim.Net.send t.net ~size:(Paxos.Msg.size msg) ~src:t.rid ~dst:target
            msg;
          (* Failed-transfer backstop: if the grant elects no one (target
             crashed, ineligible, still loading) resume serving — our
             still-Leader heartbeats have kept everyone's timers reset. *)
          Sim.Engine.sleep (2 * t.cfg.Config.election_timeout);
          if
            t.alive
            && Paxos.Election.is_leader (election t)
            && Paxos.Election.epoch (election t) = epoch
            && (not t.serving) && not t.tainted
          then begin
            Log.debug (fun m ->
                m "replica %d handoff to %d failed; resuming epoch %d" t.rid
                  target epoch);
            t.serving <- true;
            t.handoff_target <- None
          end;
          t.draining <- false
        end
        else t.draining <- false)
  end

(* ---- promotion (new-leader recovery, §4.1) ---- *)

let seal_old_epoch t ~epoch =
  Array.iteri
    (fun i stream ->
      Batcher.flush t.batchers.(i);
      Paxos.Stream.propose stream
        (Store.Wire.noop ~epoch ~ts:(Silo.Db.next_ts t.db)))
    t.streams

let promote t ~epoch =
  spawn t "promote" (fun () ->
      let still_leading () =
        t.alive
        && Paxos.Election.is_leader (election t)
        && Paxos.Election.epoch (election t) = epoch
      in
      (* 1. Every stream finishes Prepare and recommits its tail. *)
      while still_leading () && not (Array.for_all Paxos.Stream.is_caught_up t.streams) do
        Sim.Engine.sleep (5 * Sim.Engine.ms)
      done;
      if still_leading () then begin
        (* 2. Seal the old epoch with a no-op per stream. *)
        seal_old_epoch t ~epoch;
        (* 3. Wait until local replay drains every older epoch. *)
        while still_leading () && t.repoch < epoch do
          Sim.Engine.sleep (5 * Sim.Engine.ms)
        done;
        if still_leading () then begin
          (* 4. Become the execution leader. *)
          Silo.Db.set_epoch t.db epoch;
          Silo.Db.set_physical_deletes t.db true;
          List.iter (fun tbl -> ignore (Store.Table.compact tbl)) (Silo.Db.tables t.db);
          t.srv_epoch <- epoch;
          t.serving <- true;
          t.draining <- false;
          t.handoff_target <- None;
          (* Recover an interrupted membership change (Raft §6): a joint
             view must not persist — the new leader completes it by
             committing the stable target configuration. *)
          (match t.view with
          | Paxos.Member.Joint (_, new_) ->
              t.reconfig_inflight <- true;
              propose_config t
                { Store.Wire.m_gen = t.mgen + 1; m_old = []; m_new = new_ }
          | Paxos.Member.Stable _ -> t.reconfig_inflight <- false);
          Log.debug (fun m ->
              m "replica %d serving epoch %d (promotion complete)" t.rid epoch)
        end
      end)

(* ---- heartbeats: flush + empty transaction per stream (§5) ---- *)

let heartbeat_tick t () =
  (* Loss recovery rides the heartbeat: re-send whatever protocol step is
     stuck (Prepare without a promise quorum, Accepts short of a majority,
     the latest commit position). No-op on streams we do not lead. *)
  Array.iter Paxos.Stream.retransmit t.streams;
  if t.serving then
    Array.iteri
      (fun i stream ->
        Batcher.flush t.batchers.(i);
        Paxos.Stream.propose stream
          (Store.Wire.noop ~epoch:t.srv_epoch ~ts:(Silo.Db.next_ts t.db)))
      t.streams;
  (* Freshness leases ride the same tick (no-op unless follower reads are
     on and we lead with quorum contact). *)
  grant_leases t

(* ---- construction ---- *)

let create cfg eng net ~id:rid ~app ?initial_leader ?membership ?(learner = false)
    ?on_durable () =
  Config.validate cfg;
  let cpu = Sim.Cpu.create eng ~cores:cfg.Config.cores () in
  let is_initial_leader = initial_leader = Some rid in
  let db =
    Silo.Db.create eng cpu ~costs:cfg.Config.costs
      ~physical_deletes:is_initial_leader
      ~hash_tables:cfg.Config.hash_tables ()
  in
  app.App.setup db;
  let nstreams = Config.nstreams cfg in
  (* Default membership: the base replica set. Spare pool slots exist on
     the network but are not voters until a reconfiguration adds them. *)
  let view0, mgen0 =
    match membership with
    | Some (v, g) -> (v, g)
    | None -> (Paxos.Member.stable (List.init cfg.Config.replicas Fun.id), 0)
  in
  let stats = Stats.create eng in
  let trace =
    Trace.create eng ~stats ~workers:cfg.Config.workers
      ~sample_interval:cfg.Config.trace_sample_interval
      ~capacity:cfg.Config.trace_buffer_capacity
  in
  let t =
    {
      cfg;
      rid;
      eng;
      net;
      cpu;
      db;
      stats;
      trace;
      election = None;
      streams = [||];
      batchers = [||];
      gens = [||];
      wm = Watermark.create ~streams:nstreams;
      replay_queues = Array.init nstreams (fun _ -> Queue.create ());
      backlog = 0;
      wm_gen = 0;
      r_gen = Array.make nstreams 0;
      r_wake = Array.init nstreams (fun _ -> Sim.Sync.Mailbox.create eng);
      applied_ts = Array.make nstreams 0;
      durable_max = 0;
      safe_ts = Array.make nstreams 0;
      safe_idx = Array.make nstreams (-1);
      last_rel_wm = -1;
      release_queues = Array.init cfg.Config.workers (fun _ -> Queue.create ());
      procs = [];
      serving = false;
      srv_epoch = 0;
      tainted = false;
      view = view0;
      mgen = mgen0;
      learner;
      ckpt_loading = false;
      draining = false;
      handoff_target = None;
      reconfig_inflight = false;
      repoch = 1;
      rwm = 0;
      alive = true;
      worker_active = Array.make cfg.Config.workers false;
      journal = [];
      journal_bytes = 0;
      truncated_entries = 0;
      ckpt_wake = Sim.Sync.Mailbox.create eng;
      last_ckpt = None;
      ckpt_count = 0;
      ckpt_inprogress = false;
      last_ckpt_at = 0;
      last_heard = Array.make (Config.pool cfg) 0;
      sessions = Hashtbl.create 64;
      client_q = Sim.Sync.Mailbox.create eng;
      lease_epoch = 0;
      lease_until = -1;
      read_q = Sim.Sync.Mailbox.create eng;
      read_active = Array.make cfg.Config.read_workers false;
      read_seen = 0;
      read_audit = [];
      read_audit_n = 0;
      read_audit_skipped = 0;
    }
  in
  let client_op =
    if cfg.Config.clients > 0 then
      match app.App.client_op with
      | Some f -> Some (f db)
      | None ->
          (* Read-only deployments: client slots may exist purely for
             read sessions. The write workers then keep the embedded
             generator, so the write path is identical to clients = 0 —
             exactly what a read-capacity comparison wants. *)
          if cfg.Config.follower_reads && app.App.read_op <> None then None
          else invalid_arg "Replica.create: Config.clients > 0 needs App.client_op"
    else None
  in
  let read_op =
    if cfg.Config.follower_reads then
      match app.App.read_op with
      | Some f -> Some (f db)
      | None ->
          invalid_arg "Replica.create: Config.follower_reads needs App.read_op"
    else None
  in
  (* Turn on prior-version retention in the store: from here on, every
     install that would overwrite a version at or below the current pin
     keeps it in the record's snapshot slot (see {!Silo.Db.set_read_floor}).
     Gated — with follower reads off the store runs the historical
     install path verbatim. *)
  if cfg.Config.follower_reads then
    Silo.Db.set_read_floor db (Some (fun () -> read_pin t));
  (* One encode arena per replica: on_commit runs to completion between
     yields, so the commit-path encodes can all stage through it. *)
  let wire_scratch = Store.Wire.Scratch.create () in
  let on_commit s ~idx (entry : Store.Wire.entry) =
    (* Durability commit: feed the watermark; queue for replay. Physical
       (de)serialization is exercised when configured. *)
    let entry =
      if cfg.Config.physical_serialization then
        Store.Wire.decode (Store.Wire.encode_into wire_scratch entry)
      else entry
    in
    (* Membership-change progress: adoption is normally accept-time (the
       stream's [on_config] hook), but commit is where the *leader* acts —
       a committed joint stage is followed by the stable target, and a
       committed stable stage ends the change. A leader that committed its
       own removal hands off to the first remaining voter. *)
    (match entry.Store.Wire.config with
    | Some c ->
        adopt_config t c;
        if t.serving && c.Store.Wire.m_gen = t.mgen then begin
          if c.Store.Wire.m_old <> [] then
            propose_config t
              {
                Store.Wire.m_gen = t.mgen + 1;
                m_old = [];
                m_new = c.Store.Wire.m_new;
              }
          else begin
            t.reconfig_inflight <- false;
            if not (Paxos.Member.mem t.view t.rid) then
              match Paxos.Member.voters t.view with
              | target :: _ -> begin_handoff t ~target
              | [] -> ()
          end
        end
    | None -> ());
    Watermark.note_durable t.wm ~stream:s ~epoch:entry.epoch ~ts:entry.last_ts;
    (* Watermark state moved: invalidate the per-txn replay loops' seal
       memo and advance the durable frontier for follower-lag samples. *)
    t.wm_gen <- t.wm_gen + 1;
    if entry.Store.Wire.last_ts > t.durable_max then
      t.durable_max <- entry.Store.Wire.last_ts;
    if Trace.has_pending t.trace then
      List.iter
        (fun (txn : Store.Wire.txn_log) ->
          Trace.note_durable t.trace ~ts:txn.Store.Wire.ts)
        entry.txns;
    if cfg.Config.archive_entries then begin
      t.journal <- (s, idx, entry) :: t.journal;
      t.journal_bytes <- t.journal_bytes + Store.Wire.byte_size entry
    end;
    (match on_durable with Some f -> f ~stream:s ~idx entry | None -> ());
    Queue.add (idx, entry) t.replay_queues.(s);
    t.backlog <- t.backlog + 1;
    (* Event-driven replay (Bulk): advance the replay watermark right here
       — waiting for the controller tick would floor replay latency at
       [watermark_interval] — then wake every stream when it moved (the
       new watermark can unblock entries parked on other streams), or just
       this one for the enqueue. *)
    if cfg.Config.replay_batch = Config.Bulk then begin
      let advanced =
        match Watermark.compute t.wm ~epoch:t.repoch with
        | Some w when w > t.rwm ->
            t.rwm <- w;
            true
        | Some _ | None -> false
      in
      if advanced then signal_replay_all t else signal_replay t s
    end;
    (* Event-driven release: when this durability notification advanced
       the cluster minimum, run the release pass right here instead of
       waiting out the controller tick. The whole pass is yield-free
       (queue pops, stats, client acks via [Net.send]), so it is safe in
       the dispatcher's message-handling context. *)
    if cfg.Config.batch_policy = Config.Adaptive && t.serving
       && entry.Store.Wire.epoch = t.srv_epoch
    then
      match Watermark.compute t.wm ~epoch:t.srv_epoch with
      | Some w when w > t.last_rel_wm ->
          t.last_rel_wm <- w;
          Stats.note_event_release t.stats;
          release_pass t
      | Some _ | None -> ()
  in
  let on_higher_epoch e = Paxos.Election.observe_epoch (election t) e in
  let streams =
    Array.init nstreams (fun s ->
        Paxos.Stream.create net ~peers:(Config.pool cfg) ~view:view0
          ~coalesce:(cfg.Config.batch_policy = Config.Adaptive)
          ~coalesce_max_bytes:cfg.Config.max_batch_bytes ~id:s ~me:rid
          ~on_commit:(on_commit s) ~on_higher_epoch
          ~on_config:(fun c -> adopt_config t c)
          ())
  in
  let el =
    Paxos.Election.create net ~me:rid ~peers:(Config.pool cfg) ~view:view0
      ~heartbeat_interval:cfg.Config.heartbeat_interval
      ~election_timeout:cfg.Config.election_timeout ?initial_leader
      ~on_leader_elected:(fun ~epoch ->
        Array.iter (fun s -> Paxos.Stream.become_leader s ~epoch) streams;
        promote t ~epoch)
      ~on_new_epoch:(fun ~epoch:_ ~leader ->
        if leader <> Some rid then begin
          Array.iter Paxos.Stream.step_down streams;
          stop_serving t;
          (* A definite successor ends any handoff from our side. *)
          if leader <> None then begin
            t.handoff_target <- None;
            t.draining <- false
          end
        end)
      ~on_heartbeat_tick:(fun () -> heartbeat_tick t ())
      ()
  in
  t.streams <- streams;
  t.election <- Some el;
  (* A restarted member rejoins with the cluster's current view; stamp its
     generation past the freshly created components' gen-0 default. *)
  if mgen0 > 0 then begin
    Array.iter (fun s -> Paxos.Stream.set_view s view0 ~gen:mgen0) streams;
    Paxos.Election.set_view el view0 ~gen:mgen0
  end;
  (* A learner replicates and replays but neither votes nor stands. *)
  if learner then Paxos.Election.set_eligible el false;
  if cfg.Config.checkpoint_interval > 0 && not cfg.Config.checkpoint_truncate
  then
    (* --no-truncate ablation: retain every slot and journal entry. *)
    Array.iter (fun s -> Paxos.Stream.set_no_truncate s true) streams;
  t.batchers <-
    Array.init nstreams (fun s ->
        Batcher.create cfg
          ~coalesce_factor:(fun () -> Paxos.Stream.coalesce_factor streams.(s))
          ~cpu ~stats:t.stats ~trace:t.trace
          ~epoch:(fun () -> Silo.Db.epoch db)
          ~propose:(fun e -> Paxos.Stream.propose streams.(s) e)
          ~shared:(nstreams < cfg.Config.workers)
          ());
  (if client_op = None then
     t.gens <-
       Array.init cfg.Config.workers (fun w ->
           app.App.make_worker db
             ~rng:(Sim.Rng.split (Sim.Engine.rng eng))
             ~worker:w ~nworkers:cfg.Config.workers));
  (* Processes. *)
  spawn t "dispatch" (fun () ->
      while true do
        let m = Sim.Net.recv net rid in
        (* [from] may be a client node, beyond the replica-sized array. *)
        if m.Paxos.Msg.from < Array.length t.last_heard then
          t.last_heard.(m.Paxos.Msg.from) <- Sim.Engine.now eng;
        match m.Paxos.Msg.body with
        | Paxos.Msg.Elect e -> Paxos.Election.handle el e ~from:m.Paxos.Msg.from
        | Paxos.Msg.Stream { stream; msg } ->
            Paxos.Stream.handle streams.(stream) msg ~from:m.Paxos.Msg.from
        | Paxos.Msg.Client_req { cid; seq; payload } ->
            handle_client_req t ~cid ~seq ~payload
        | Paxos.Msg.Read_req { cid; seq; payload } ->
            handle_read_req t ~cid ~seq ~payload
        | Paxos.Msg.Read_lease { epoch; until } ->
            handle_read_lease t ~epoch ~until
        | Paxos.Msg.Client_rep _ -> () (* not addressed to replicas *)
      done);
  t.procs <- Paxos.Election.start el :: t.procs;
  spawn t "controller" (controller_loop t);
  spawn t "flush-timer" (flush_timer_loop t);
  for w = 0 to cfg.Config.workers - 1 do
    match client_op with
    | Some op -> spawn t (Printf.sprintf "worker%d" w) (client_worker_loop t w op)
    | None -> spawn t (Printf.sprintf "worker%d" w) (worker_loop t w)
  done;
  for s = 0 to nstreams - 1 do
    spawn t (Printf.sprintf "replay%d" s) (replay_loop t s)
  done;
  (* Read worker pool — spawned only when follower reads are on, so the
     default config runs the identical process set. *)
  (match read_op with
  | Some rop ->
      for w = 0 to cfg.Config.read_workers - 1 do
        spawn t (Printf.sprintf "read-worker%d" w) (read_worker_loop t w rop)
      done
  | None -> ());
  (* Spawned only when configured: the default config must stay
     bit-identical to pre-checkpoint runs. *)
  if cfg.Config.checkpoint_interval > 0 then
    spawn t "checkpointer" (checkpoint_loop t);
  t

let crash t =
  t.alive <- false;
  t.serving <- false;
  List.iter Sim.Engine.kill t.procs

let final_watermark t ~epoch = Watermark.final_watermark t.wm ~epoch

(* Restart catch-up: replay the donors' journals of durable entries
   through the protocol-level inject path. Because journals hold only
   *durable* entries — never speculative writes — any alive replica is a
   safe donor, leaders included.

   The rebuilt state must be the per-stream UNION over every alive donor,
   not one donor's journal: per-stream committed logs are prefixes of one
   another (Paxos agreement), so per stream the longest donor log is the
   union. A single donor is not enough — a follower can be ahead on one
   stream and behind on another, and rebuilding a replica from it would
   wipe this replica's memory of entries whose only other holder may
   crash next, letting a future leader no-op-fill released transactions.

   The injected commits rebuild the watermark, the replay queues, and our
   own journal exactly as if we had followed the streams from the start;
   whatever committed after the donors' snapshots arrives through the
   ordinary fetch path. Keyed by absolute stream index — under checkpoint
   truncation a donor's journal starts above zero, and the union of
   truncated journals is contiguous from the lowest retained slot (every
   donor drops the same quorum-stable prefix). *)
let catch_up_from t ~donors =
  let nstreams = Array.length t.streams in
  for s = 0 to nstreams - 1 do
    let union = Hashtbl.create 256 in
    List.iter
      (fun d ->
        List.iter
          (fun (s', idx, e) -> if s' = s then Hashtbl.replace union idx e)
          d.journal)
      donors;
    let idxs =
      Hashtbl.fold (fun i _ acc -> i :: acc) union [] |> List.sort compare
    in
    (match idxs with
    | lo :: _ when lo > 0 -> Paxos.Stream.set_bootstrap_floor t.streams.(s) ~idx:lo
    | _ -> ());
    List.iter
      (fun idx ->
        Paxos.Stream.inject_committed_at t.streams.(s) ~idx
          (Hashtbl.find union idx))
      idxs
  done;
  (* Also merge every donor's accepted-but-uncommitted tail (as *accepted*
     state, never as committed — acceptance is not choice). An accepted
     slot on a survivor can be the only remaining copy of an entry that a
     since-crashed leader committed: without carrying it, this rebuilt
     replica could join a Prepare quorum that excludes that survivor and
     let the new leader no-op-fill a chosen slot. Holding a peer's
     accepted (epoch, value) is always sound — it is equivalent to having
     received that leader's Accept directly. *)
  List.iter
    (fun d ->
      Array.iteri
        (fun s stream ->
          Paxos.Stream.import_tail stream (Paxos.Stream.export_tail d.streams.(s)))
        t.streams)
    donors

(* Voluntary rebuild of an *alive* replica (a tainted ex-leader): only its
   database is suspect — its Paxos acceptor state is sound, and an
   accepted-but-uncommitted slot may be the last surviving copy of an
   entry committed at a since-dead leader. Wiping it would let the next
   Prepare quorum no-op-fill a chosen slot. Graft the old replica's
   accepted tails and vote onto the fresh one (after [catch_up_from]). *)
let salvage_protocol_state t ~old =
  Array.iteri
    (fun s stream ->
      Paxos.Stream.import_tail stream (Paxos.Stream.export_tail old.streams.(s)))
    t.streams;
  Paxos.Election.import_vote (election t) (Paxos.Election.export_vote (election old))

(* Vote durability across restarts, separable from tail salvage: a
   rejoining node must remember the vote it cast before crashing or it
   can grant two votes in one ballot — the removed-then-readded
   double-vote hazard. Models persistent votedFor. *)
let salvage_vote t ~old =
  Paxos.Election.import_vote (election t) (Paxos.Election.export_vote (election old))

(* ---- checkpoint-integrated recovery ---- *)

(* Cluster-coordinated journal truncation at quorum-stable frontier
   [cover]: drop archived entries the checkpoint makes redundant and raise
   the streams' compaction floor so slot truncation may pass lagging
   peers' commit indices (they rebuild from the checkpoint instead). The
   coordinator harvests dedup evidence from the entries *before* calling
   this (see {!Cluster}). *)
let apply_truncation t ~cover =
  let bytes = ref 0 and dropped = ref 0 in
  t.journal <-
    List.filter
      (fun (s, idx, e) ->
        if idx <= cover.(s) then begin
          incr dropped;
          bytes := !bytes + Store.Wire.byte_size e;
          false
        end
        else true)
      t.journal;
  t.truncated_entries <- t.truncated_entries + !dropped;
  t.journal_bytes <- t.journal_bytes - !bytes;
  if t.cfg.Config.checkpoint_truncate then
    Array.iteri
      (fun s stream ->
        if cover.(s) >= 0 then Paxos.Stream.set_trunc_floor stream (cover.(s) + 1))
      t.streams

(* Checkpoint + journal-tail bootstrap (ARIES install-then-replay): the
   image stands in for every slot at or below its cover; only the tail —
   the idx-union over the donors' journals above the cover — goes through
   the protocol-level inject path. Every image row and every tail write
   lands through the strictly-newer (epoch, ts) CAS, so the overlap a
   fuzzy image inevitably has with the tail double-applies harmlessly.
   State installs synchronously (host-side); the modeled load time is
   paid as an election-ineligibility window, so a rebuilt node cannot
   lead before its recovery would really have finished. *)
let bootstrap_from_checkpoint t ~ckpt ~donors =
  let nstreams = Array.length t.streams in
  let cover = ckpt.Checkpoint.ri_cover in
  (* Client dedup state travels with the image: a retry of a transaction
     whose journal entry was truncated must answer from cache, not
     re-execute. *)
  List.iter
    (fun (cid, claimed, applied, released, aborted) ->
      let sess = session t cid in
      if claimed > sess.s_claimed then sess.s_claimed <- claimed;
      if applied > sess.s_applied then sess.s_applied <- applied;
      if released > sess.s_released then sess.s_released <- released;
      sess.s_aborted <- aborted)
    ckpt.Checkpoint.ri_sessions;
  (* Sealed-epoch history below the cover cannot be rederived from the
     tail; without it, cross-epoch straddlers would resolve wrongly. *)
  Watermark.import t.wm ckpt.Checkpoint.ri_wm;
  for s = 0 to nstreams - 1 do
    let f = ckpt.Checkpoint.ri_frontier.(s) in
    if f > t.applied_ts.(s) then t.applied_ts.(s) <- f;
    if f > t.safe_ts.(s) then t.safe_ts.(s) <- f;
    if cover.(s) > t.safe_idx.(s) then t.safe_idx.(s) <- cover.(s);
    if f > t.durable_max then t.durable_max <- f
  done;
  let installed = Checkpoint.install ~into:t.db ckpt.Checkpoint.ri_image in
  for s = 0 to nstreams - 1 do
    Paxos.Stream.set_bootstrap_floor t.streams.(s) ~idx:(cover.(s) + 1);
    let tail = Hashtbl.create 256 in
    List.iter
      (fun d ->
        List.iter
          (fun (s', idx, e) ->
            if s' = s && idx > cover.(s) then Hashtbl.replace tail idx e)
          d.journal)
      donors;
    let idxs =
      Hashtbl.fold (fun i _ acc -> i :: acc) tail [] |> List.sort compare
    in
    List.iter
      (fun idx ->
        Paxos.Stream.inject_committed_at t.streams.(s) ~idx
          (Hashtbl.find tail idx))
      idxs
  done;
  (* Donors' accepted-but-uncommitted tails, exactly as in
     [catch_up_from]. *)
  List.iter
    (fun d ->
      Array.iteri
        (fun s stream ->
          Paxos.Stream.import_tail stream (Paxos.Stream.export_tail d.streams.(s)))
        t.streams)
    donors;
  (* This image is this node's durable one; republish it so the
     coordinator need not wait for the next scan. *)
  t.last_ckpt <- Some ckpt;
  (* Pay the checkpoint-load time: ineligible to lead until a real loader
     would have finished reading the image back. *)
  t.ckpt_loading <- true;
  Paxos.Election.set_eligible (election t) false;
  let cost =
    Checkpoint.load_cost ~costs:t.cfg.Config.costs
      ~threads:t.cfg.Config.checkpoint_threads
      ~disk_mb_per_s:t.cfg.Config.checkpoint_disk_mb_per_s
      ckpt.Checkpoint.ri_image
  in
  spawn t "ckpt-load" (fun () ->
      Sim.Engine.sleep cost;
      t.ckpt_loading <- false;
      (* A learner stays ineligible past the load: promotion to voter
         (see [adopt_config]) is what re-arms candidacy. *)
      if t.alive && (not t.tainted) && not t.learner then
        Paxos.Election.set_eligible (election t) true);
  installed
