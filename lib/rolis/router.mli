(** Range partitioning of the composite key space across shards.

    A router is an ordered list of {!Store.Keycodec}-encoded split keys;
    shard [i] owns the half-open byte range between split [i-1] and split
    [i]. Because the codec is order-preserving, routing is a binary
    search over flat encoded strings and range ownership composes with
    prefix scans: a TPC-C transaction whose keys all lead with one
    warehouse id lands wholly inside one shard. *)

type t

val create : splits:string array -> t
(** [create ~splits] builds a router over [Array.length splits + 1]
    shards. @raise Invalid_argument unless splits are strictly
    increasing. *)

val shards : t -> int
val splits : t -> string array

val shard_of_key : t -> string -> int
(** Owner of an already-encoded key. *)

val shard_of : t -> Store.Keycodec.component list -> int
(** Owner of a composite key (encodes, then routes). *)

val tpcc : warehouses:int -> shards:int -> t
(** Partition TPC-C by warehouse: contiguous, near-equal runs of
    1-based warehouse ids. @raise Invalid_argument with fewer warehouses
    than shards. *)

val tpcc_shard_of_warehouse : t -> int -> int

val tpcc_warehouse_range : t -> warehouses:int -> int -> int * int
(** Inclusive [lo, hi] home-warehouse range of one shard, recovered from
    the split keys. *)

val ycsb : keys:int -> shards:int -> t
(** Partition the YCSB integer key space [0, keys) into equal ranges. *)

val ycsb_key_range : t -> keys:int -> int -> int * int
(** Inclusive [lo, hi] integer key range of one shard, recovered from
    the split keys. *)
