(* Keyspace -> shard range map over Keycodec-encoded split points.

   A router is [shards - 1] encoded keys: shard [i] owns the half-open
   range [splits.(i-1), splits.(i)) (with -inf / +inf at the ends).
   Byte-wise comparison on encodings equals tuple order (Keycodec's
   contract), so routing a composite key is a binary search over flat
   strings — no decoding on the hot path. *)

type t = { shards : int; splits : string array }

let create ~splits =
  let n = Array.length splits in
  for i = 1 to n - 1 do
    if String.compare splits.(i - 1) splits.(i) >= 0 then
      invalid_arg "Router.create: split keys must be strictly increasing"
  done;
  { shards = n + 1; splits = Array.copy splits }

let shards t = t.shards
let splits t = Array.copy t.splits

(* Number of splits <= key, by binary search: shard of an encoded key. *)
let shard_of_key t key =
  let lo = ref 0 and hi = ref (Array.length t.splits) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if String.compare t.splits.(mid) key <= 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let shard_of t components = shard_of_key t (Store.Keycodec.encode components)

(* TPC-C partitions by warehouse: every table keyed on the composite
   space leads with the warehouse id, so split keys are plain
   [I w_start] prefixes. Warehouses are 1-based; shard [i] of [n] owns a
   contiguous run of [warehouses / n] (the first [warehouses mod n]
   shards own one extra). *)
let tpcc ~warehouses ~shards =
  if shards < 1 then invalid_arg "Router.tpcc: shards must be >= 1";
  if warehouses < shards then
    invalid_arg "Router.tpcc: need at least one warehouse per shard";
  let base = warehouses / shards and extra = warehouses mod shards in
  let first = Array.make (shards + 1) 1 in
  for i = 0 to shards - 1 do
    first.(i + 1) <- first.(i) + base + (if i < extra then 1 else 0)
  done;
  let splits =
    Array.init (shards - 1) (fun i ->
        Store.Keycodec.encode [ Store.Keycodec.I first.(i + 1) ])
  in
  create ~splits

let tpcc_shard_of_warehouse t w = shard_of t [ Store.Keycodec.I w ]

(* TPC-C home warehouses of one shard, for partition-aware generators:
   [lo, hi] inclusive. Recovered from the split keys so the router stays
   the single source of truth for the partition. *)
let tpcc_warehouse_range t ~warehouses shard =
  if shard < 0 || shard >= t.shards then invalid_arg "Router.tpcc_warehouse_range";
  let bound i =
    if i < 0 then 1
    else if i >= Array.length t.splits then warehouses + 1
    else
      match Store.Keycodec.decode t.splits.(i) with
      | [ Store.Keycodec.I w ] -> w
      | _ -> invalid_arg "Router.tpcc_warehouse_range: non-warehouse split"
  in
  (bound (shard - 1), bound shard - 1)

(* Integer key range [lo, hi] inclusive owned by one shard of a YCSB
   router, recovered from the split keys. *)
let ycsb_key_range t ~keys shard =
  if shard < 0 || shard >= t.shards then invalid_arg "Router.ycsb_key_range";
  let bound i =
    if i < 0 then 0
    else if i >= Array.length t.splits then keys
    else
      match Store.Keycodec.decode t.splits.(i) with
      | [ Store.Keycodec.I k ] -> k
      | _ -> invalid_arg "Router.ycsb_key_range: non-integer split"
  in
  (bound (shard - 1), bound shard - 1)

(* YCSB partitions its integer key space [0, keys) into equal ranges. *)
let ycsb ~keys ~shards =
  if shards < 1 then invalid_arg "Router.ycsb: shards must be >= 1";
  if keys < shards then invalid_arg "Router.ycsb: need at least one key per shard";
  let splits =
    Array.init (shards - 1) (fun i ->
        Store.Keycodec.encode [ Store.Keycodec.I ((i + 1) * keys / shards) ])
  in
  create ~splits
