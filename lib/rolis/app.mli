(** Application (workload) interface to a Rolis cluster.

    An app declares how to populate a fresh database and how each worker
    generates transaction bodies. [setup] runs identically on every
    replica before the simulation starts (replicas begin in sync, as in
    the paper's setup; adding an out-of-sync replica goes through
    {!Bootstrap}). [make_worker] is called once per worker per replica and
    returns a generator producing one transaction body per call; the body
    runs under {!Silo.Db.run} on the leader. *)

type gen = unit -> Silo.Txn.t -> unit

type t = {
  name : string;
  setup : Silo.Db.t -> unit;
  make_worker : Silo.Db.t -> rng:Sim.Rng.t -> worker:int -> nworkers:int -> gen;
  client_op : (Silo.Db.t -> payload:string -> Silo.Txn.t -> unit) option;
      (** interpret a networked client request: parse [payload] (an
          app-defined encoding) into a transaction body. Required when the
          cluster runs with [Config.clients > 0] — workers then serve
          queued client requests instead of calling [make_worker]'s
          generator. *)
  read_op : (Silo.Db.t -> payload:string -> Silo.Db.snap -> string) option;
      (** interpret a read-only client request against a watermark-pinned
          snapshot ({!Silo.Db.read_at}): parse [payload] and return the
          reply value carried back in [Ok_read]. The body must be pure
          reads through {!Silo.Db.snap_get} — there is no transaction, no
          locks and no validation. Required when the cluster runs with
          [Config.follower_reads] and read-only client sessions. *)
}

val counter_app : keys:int -> t
(** A tiny built-in app (random read-modify-write increments over [keys]
    counters) used by tests and the quickstart example. Its client payload
    is a decimal key index. *)
