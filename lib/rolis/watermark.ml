type stream_state = {
  mutable cur_epoch : int;
  mutable cur_ts : int;
  sealed : (int, int) Hashtbl.t; (* epoch -> final durable ts in that epoch *)
}

(* The live-watermark query used to fold over every stream on each call;
   with per-worker streams that made the 0.5 ms controller tick (and now
   the per-durable-entry release trigger) O(streams). Instead we cache,
   for one epoch at a time, the minimum defined contribution, how many
   streams sit exactly at that minimum, and how many streams have no
   contribution yet. A stream's contribution for a fixed epoch only ever
   grows (None -> Some ts -> Some final), so the cache needs a full
   rescan only when the unique minimum holder advances. *)
type t = {
  streams : stream_state array;
  mutable tracked : int; (* epoch the cache describes; 0 = no cache *)
  mutable undefined : int; (* streams contributing None to [tracked] *)
  mutable cached_min : int; (* min defined contribution (max_int if none) *)
  mutable at_min : int; (* streams whose contribution = cached_min *)
  mutable scans : int; (* full O(streams) rescans, for tests/telemetry *)
}

let create ~streams =
  if streams < 1 then invalid_arg "Watermark.create: need at least one stream";
  {
    streams =
      Array.init streams (fun _ ->
          { cur_epoch = 0; cur_ts = 0; sealed = Hashtbl.create 4 });
    tracked = 0;
    undefined = 0;
    cached_min = max_int;
    at_min = 0;
    scans = 0;
  }

let contribution s ~epoch =
  if s.cur_epoch < epoch then None (* nothing durable in this epoch yet: W undefined *)
  else if s.cur_epoch = epoch then Some s.cur_ts
  else
    (* The stream moved on; its epoch-e tail is final. A stream that never
       produced an entry in e does not constrain W_e. *)
    Some (match Hashtbl.find_opt s.sealed epoch with Some final -> final | None -> max_int)

let rescan t ~epoch =
  t.scans <- t.scans + 1;
  t.tracked <- epoch;
  t.undefined <- 0;
  t.cached_min <- max_int;
  t.at_min <- 0;
  Array.iter
    (fun s ->
      match contribution s ~epoch with
      | None -> t.undefined <- t.undefined + 1
      | Some c ->
          if c < t.cached_min then begin
            t.cached_min <- c;
            t.at_min <- 1
          end
          else if c = t.cached_min then t.at_min <- t.at_min + 1)
    t.streams

(* Fold the cache forward for one stream's contribution moving from
   [c_old] to [c_new] (monotone: None -> Some v -> Some v', v' >= v). *)
let cache_update t c_old c_new =
  match (c_old, c_new) with
  | None, None -> ()
  | None, Some v ->
      t.undefined <- t.undefined - 1;
      if v < t.cached_min then begin
        t.cached_min <- v;
        t.at_min <- 1
      end
      else if v = t.cached_min then t.at_min <- t.at_min + 1
  | Some v0, Some v1 when v1 <> v0 ->
      if v0 = t.cached_min then
        if t.at_min = 1 then rescan t ~epoch:t.tracked
        else t.at_min <- t.at_min - 1
      (* v1 > v0 >= cached_min, so the new value never lowers the min. *)
  | Some _, Some _ -> ()
  | Some _, None -> assert false (* contributions never become undefined *)

let note_durable t ~stream ~epoch ~ts =
  let s = t.streams.(stream) in
  let c_old = if t.tracked > 0 then contribution s ~epoch:t.tracked else None in
  (if epoch > s.cur_epoch then begin
     if s.cur_epoch > 0 then Hashtbl.replace s.sealed s.cur_epoch s.cur_ts;
     s.cur_epoch <- epoch;
     s.cur_ts <- ts
   end
   else if epoch = s.cur_epoch && ts > s.cur_ts then s.cur_ts <- ts);
  if t.tracked > 0 then
    cache_update t c_old (contribution s ~epoch:t.tracked)

(* Reference implementation: the original fold. The cache must agree with
   it exactly (tests cross-check). *)
let compute_scan t ~epoch =
  Array.fold_left
    (fun acc s ->
      match (acc, contribution s ~epoch) with
      | Some w, Some c -> Some (min w c)
      | _, None | None, _ -> None)
    (Some max_int) t.streams

let compute t ~epoch =
  if epoch < 1 then compute_scan t ~epoch
  else begin
    if epoch <> t.tracked then rescan t ~epoch;
    if t.undefined > 0 then None else Some t.cached_min
  end

(* Checkpoint image of the tracker: per-stream durable tail plus sealed
   epochs. A replica rebuilt from a checkpoint injects only the journal
   tail, so without this the sealed history of old epochs would be lost
   and [contribution] would report max_int for them, corrupting
   [final_watermark] agreement across replicas. Sealed lists are sorted
   for deterministic images. *)
type snapshot = (int * int * (int * int) list) array

let export t : snapshot =
  Array.map
    (fun s ->
      let sealed = Hashtbl.fold (fun e ts acc -> (e, ts) :: acc) s.sealed [] in
      (s.cur_epoch, s.cur_ts, List.sort compare sealed))
    t.streams

let import t (snap : snapshot) =
  if Array.length snap <> Array.length t.streams then
    invalid_arg "Watermark.import: stream count mismatch";
  Array.iteri
    (fun i (cur_epoch, cur_ts, sealed) ->
      let s = t.streams.(i) in
      if s.cur_epoch > 0 || s.cur_ts > 0 || Hashtbl.length s.sealed > 0 then
        invalid_arg "Watermark.import: tracker is not fresh";
      s.cur_epoch <- cur_epoch;
      s.cur_ts <- cur_ts;
      List.iter (fun (e, ts) -> Hashtbl.replace s.sealed e ts) sealed)
    snap;
  (* Invalidate the incremental cache; the next compute rescans. *)
  t.tracked <- 0

let scan_count t = t.scans
let is_sealed t ~epoch = Array.for_all (fun s -> s.cur_epoch > epoch) t.streams
let final_watermark t ~epoch = if is_sealed t ~epoch then compute t ~epoch else None
let stream_epoch t ~stream = t.streams.(stream).cur_epoch

let min_epoch t =
  Array.fold_left (fun acc s -> min acc s.cur_epoch) max_int t.streams
