type stream_state = {
  mutable cur_epoch : int;
  mutable cur_ts : int;
  sealed : (int, int) Hashtbl.t; (* epoch -> final durable ts in that epoch *)
}

type t = { streams : stream_state array }

let create ~streams =
  if streams < 1 then invalid_arg "Watermark.create: need at least one stream";
  {
    streams =
      Array.init streams (fun _ ->
          { cur_epoch = 0; cur_ts = 0; sealed = Hashtbl.create 4 });
  }

let note_durable t ~stream ~epoch ~ts =
  let s = t.streams.(stream) in
  if epoch > s.cur_epoch then begin
    if s.cur_epoch > 0 then Hashtbl.replace s.sealed s.cur_epoch s.cur_ts;
    s.cur_epoch <- epoch;
    s.cur_ts <- ts
  end
  else if epoch = s.cur_epoch && ts > s.cur_ts then s.cur_ts <- ts

let contribution s ~epoch =
  if s.cur_epoch < epoch then None (* nothing durable in this epoch yet: W undefined *)
  else if s.cur_epoch = epoch then Some s.cur_ts
  else
    (* The stream moved on; its epoch-e tail is final. A stream that never
       produced an entry in e does not constrain W_e. *)
    Some (match Hashtbl.find_opt s.sealed epoch with Some final -> final | None -> max_int)

let compute t ~epoch =
  Array.fold_left
    (fun acc s ->
      match (acc, contribution s ~epoch) with
      | Some w, Some c -> Some (min w c)
      | _, None | None, _ -> None)
    (Some max_int) t.streams

let is_sealed t ~epoch = Array.for_all (fun s -> s.cur_epoch > epoch) t.streams
let final_watermark t ~epoch = if is_sealed t ~epoch then compute t ~epoch else None
let stream_epoch t ~stream = t.streams.(stream).cur_epoch

let min_epoch t =
  Array.fold_left (fun acc s -> min acc s.cur_epoch) max_int t.streams
