(** Watermark tracking (paper §3.4, §4.1) — the coordination-free boundary
    between speculative and release-committed transactions.

    Each replica feeds this tracker the [(epoch, last_ts)] header of every
    log entry as it becomes {e durable} in each stream, in stream order.
    The watermark for epoch [e] is

    [W_e = min over streams of (latest durable ts in epoch e)]

    computed {e periodically and locally} — an outdated value is always
    safe because the watermark only grows within an epoch, and it never
    crosses epochs.

    Epoch bookkeeping: when a stream's durable tail moves from epoch [e]
    to a later epoch, epoch [e] is {e sealed} for that stream at its final
    timestamp. Once every stream has sealed [e], [final_watermark e]
    is the replay/release boundary for the old epoch: entries at or below
    it are safe; entries above it must be skipped (they may depend on
    transactions that were never durable — the Fig. 3 scenario). *)

type t

val create : streams:int -> t

val note_durable : t -> stream:int -> epoch:int -> ts:int -> unit
(** Feed one durable entry header. Entries arrive in stream order, so
    [(epoch, ts)] is non-decreasing per stream; older stamps are ignored
    defensively. *)

val compute : t -> epoch:int -> int option
(** Live watermark for [epoch]: [None] while some stream has produced
    nothing in (or after) [epoch] yet. Monotone in successive calls for a
    fixed epoch.

    O(1) for repeated queries of the same epoch: the tracker maintains the
    cluster minimum incrementally (cached min + count-at-min, updated by
    {!note_durable}); a full O(streams) rescan happens only when the
    queried epoch changes or the unique minimum holder advances. *)

val compute_scan : t -> epoch:int -> int option
(** Reference implementation of {!compute} (the original full fold).
    Exposed so tests and benchmarks can cross-check the incremental
    cache; always equals [compute] for the same arguments. *)

type snapshot = (int * int * (int * int) list) array
(** Per-stream [(cur_epoch, cur_ts, sealed (epoch, final_ts) list)] — the
    tracker state a checkpoint must carry so a replica rebuilt from
    checkpoint + journal tail still knows the sealed boundaries of epochs
    whose entries were truncated away. *)

val export : t -> snapshot
(** Deterministic image of the tracker (sealed lists sorted). *)

val import : t -> snapshot -> unit
(** Install an exported image into a {e fresh} tracker (same stream
    count). @raise Invalid_argument on stream-count mismatch or if the
    tracker has already observed durable entries. *)

val scan_count : t -> int
(** Number of full O(streams) rescans performed so far (telemetry: the
    event-driven release path should keep this far below the number of
    {!note_durable} calls). *)

val is_sealed : t -> epoch:int -> bool
(** Every stream's durable tail has moved past [epoch]. *)

val final_watermark : t -> epoch:int -> int option
(** The sealed boundary for [epoch]; [None] until {!is_sealed}. Streams
    that never produced an entry in [epoch] do not constrain it. *)

val stream_epoch : t -> stream:int -> int
(** Epoch of the given stream's durable tail (0 = nothing yet). *)

val min_epoch : t -> int
(** Smallest epoch over all streams' durable tails. *)
