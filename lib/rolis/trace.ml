type stage =
  | Execute
  | Serialize
  | Batch_submit
  | Replicate_durable
  | Under_watermark
  | Release
  | Replay
  | Redirect
  | Busy
  | Cached
  | Deadline_flush
  | Replay_lag
  | Client_park
  | Client_redirect
  | Read_serve
  | Read_staleness

let all_stages =
  [
    Execute;
    Serialize;
    Batch_submit;
    Replicate_durable;
    Under_watermark;
    Release;
    Replay;
    Redirect;
    Busy;
    Cached;
    Deadline_flush;
    Replay_lag;
    Client_park;
    Client_redirect;
    Read_serve;
    Read_staleness;
  ]

let n_stages = List.length all_stages

let stage_index = function
  | Execute -> 0
  | Serialize -> 1
  | Batch_submit -> 2
  | Replicate_durable -> 3
  | Under_watermark -> 4
  | Release -> 5
  | Replay -> 6
  | Redirect -> 7
  | Busy -> 8
  | Cached -> 9
  | Deadline_flush -> 10
  | Replay_lag -> 11
  | Client_park -> 12
  | Client_redirect -> 13
  | Read_serve -> 14
  | Read_staleness -> 15

let stage_name = function
  | Execute -> "execute"
  | Serialize -> "serialize"
  | Batch_submit -> "batch_submit"
  | Replicate_durable -> "replicate_durable"
  | Under_watermark -> "under_watermark"
  | Release -> "release"
  | Replay -> "replay"
  | Redirect -> "redirect"
  | Busy -> "busy"
  | Cached -> "cached"
  | Deadline_flush -> "deadline_flush"
  | Replay_lag -> "replay_lag"
  | Client_park -> "client_park"
  | Client_redirect -> "client_redirect"
  | Read_serve -> "read_serve"
  | Read_staleness -> "read_staleness"

let stage_of_name s = List.find_opt (fun st -> stage_name st = s) all_stages

type span = {
  sp_ts : int;
  sp_worker : int;
  sp_stage : stage;
  sp_start : int;
  sp_end : int;
  sp_dropped : bool;
}

(* Bounded ring: overwrites the oldest span once full, so a long run
   keeps the most recent [capacity] samples per worker. *)
module Ring = struct
  type 'a t = { buf : 'a option array; mutable pushed : int }

  let create capacity = { buf = Array.make capacity None; pushed = 0 }

  let push t x =
    t.buf.(t.pushed mod Array.length t.buf) <- Some x;
    t.pushed <- t.pushed + 1

  let to_list t =
    let cap = Array.length t.buf in
    let len = min t.pushed cap in
    let first = t.pushed - len in
    List.init len (fun i -> Option.get t.buf.((first + i) mod cap))
end

(* Timestamps of one in-flight sampled transaction; 0 = not reached. *)
type token = {
  tk_worker : int;
  tk_ts : int;
  tk_exec_start : int;
  tk_commit : int;
  mutable tk_serialized : int;
  mutable tk_flushed : int;
  mutable tk_durable : int;
}

type t = {
  eng : Sim.Engine.t;
  stats : Stats.t;
  interval : int;
  workers : int;
  rings : span Ring.t array; (* workers + 1; last = replay/dispositions *)
  exec_counters : int array; (* per worker *)
  mutable replay_counter : int;
  mutable disp_counter : int;
  pending : (int, token) Hashtbl.t; (* ts -> token *)
}

let create eng ~stats ~workers ~sample_interval ~capacity =
  if sample_interval < 0 then invalid_arg "Trace.create: negative sample_interval";
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  if workers < 1 then invalid_arg "Trace.create: need at least one worker";
  {
    eng;
    stats;
    interval = sample_interval;
    workers;
    rings = Array.init (workers + 1) (fun _ -> Ring.create capacity);
    exec_counters = Array.make workers 0;
    replay_counter = 0;
    disp_counter = 0;
    pending = Hashtbl.create 256;
  }

let enabled t = t.interval > 0
let has_pending t = Hashtbl.length t.pending > 0
let pending_count t = Hashtbl.length t.pending

let ring_of_worker t w = if w >= 0 && w < t.workers then t.rings.(w) else t.rings.(t.workers)

(* ---- leader pipeline ---- *)

let sample t ~worker ~ts ~exec_start =
  if t.interval = 0 then None
  else begin
    let w = if worker >= 0 && worker < t.workers then worker else t.workers - 1 in
    let n = t.exec_counters.(w) in
    t.exec_counters.(w) <- n + 1;
    if n mod t.interval <> 0 then None
    else begin
      let tok =
        {
          tk_worker = worker;
          tk_ts = ts;
          tk_exec_start = exec_start;
          tk_commit = Sim.Engine.now t.eng;
          tk_serialized = 0;
          tk_flushed = 0;
          tk_durable = 0;
        }
      in
      Hashtbl.replace t.pending ts tok;
      Some tok
    end
  end

let note_serialized t tok = if tok.tk_serialized = 0 then tok.tk_serialized <- Sim.Engine.now t.eng

let note_flushed t ~ts =
  match Hashtbl.find_opt t.pending ts with
  | Some tok when tok.tk_flushed = 0 -> tok.tk_flushed <- Sim.Engine.now t.eng
  | Some _ | None -> ()

let note_durable t ~ts =
  match Hashtbl.find_opt t.pending ts with
  | Some tok when tok.tk_durable = 0 -> tok.tk_durable <- Sim.Engine.now t.eng
  | Some _ | None -> ()

(* Emit one stage span. Boundaries stamped out of order (a flush can
   precede the submitting worker's serialization charge when the
   submitted transaction itself filled the batch) clamp to zero width. *)
let push_span t tok ~stage ~t0 ~t1 ~dropped =
  let ring = ring_of_worker t tok.tk_worker in
  let t1 = max t0 t1 in
  Ring.push ring
    {
      sp_ts = tok.tk_ts;
      sp_worker = tok.tk_worker;
      sp_stage = stage;
      sp_start = t0;
      sp_end = t1;
      sp_dropped = dropped;
    };
  if not dropped then
    Stats.note_stage t.stats ~stage:(stage_index stage) ~latency:(t1 - t0)

(* The transaction's completed stage boundaries, in pipeline order. *)
let boundaries tok =
  [
    (Execute, tok.tk_exec_start, tok.tk_commit);
    (Serialize, tok.tk_commit, tok.tk_serialized);
    (Batch_submit, tok.tk_serialized, tok.tk_flushed);
    (Replicate_durable, tok.tk_flushed, tok.tk_durable);
  ]

let emit t tok ~released ~at =
  let rec go last = function
    | [] -> last
    | (stage, t0, t1) :: rest ->
        if t1 = 0 then begin
          (* Stage in progress at drop time: truncate it there. *)
          push_span t tok ~stage ~t0:(max last t0) ~t1:at ~dropped:true;
          at
        end
        else begin
          push_span t tok ~stage ~t0 ~t1 ~dropped:(not released);
          go t1 rest
        end
  in
  let last = go tok.tk_exec_start (boundaries tok) in
  if released then begin
    push_span t tok ~stage:Under_watermark ~t0:last ~t1:at ~dropped:false;
    push_span t tok ~stage:Release ~t0:tok.tk_exec_start ~t1:at ~dropped:false
  end
  else if last < at then
    (* Durable but never released: the drop cut it under the watermark. *)
    push_span t tok ~stage:Under_watermark ~t0:last ~t1:at ~dropped:true

let note_released t tok =
  emit t tok ~released:true ~at:(Sim.Engine.now t.eng);
  Hashtbl.remove t.pending tok.tk_ts

let drop_all t =
  if has_pending t then begin
    let at = Sim.Engine.now t.eng in
    let toks = Hashtbl.fold (fun _ tok acc -> tok :: acc) t.pending [] in
    (* Hashtbl.fold order is unspecified; keep the rings deterministic. *)
    let toks = List.sort (fun a b -> compare a.tk_ts b.tk_ts) toks in
    List.iter (fun tok -> emit t tok ~released:false ~at) toks;
    Hashtbl.reset t.pending
  end

(* ---- follower / dispatcher ---- *)

let sample_replay t =
  if t.interval = 0 then false
  else begin
    let n = t.replay_counter in
    t.replay_counter <- n + 1;
    n mod t.interval = 0
  end

let note_replay t ~ts ~start ~stop =
  Ring.push t.rings.(t.workers)
    {
      sp_ts = ts;
      sp_worker = -1;
      sp_stage = Replay;
      sp_start = start;
      sp_end = max start stop;
      sp_dropped = false;
    };
  Stats.note_stage t.stats ~stage:(stage_index Replay) ~latency:(max 0 (stop - start))

(* Follower lag: one sample per applied entry. The span runs from the
   replica's replayed frontier to the durable frontier — both live on the
   transaction-timestamp axis, which rides virtual time — so its width IS
   the lag. The histogram takes every sample (entries are ~batch_size
   rarer than transactions); the ring keeps them subject to its bound. *)
let note_replay_lag t ~frontier ~durable =
  let durable = max frontier durable in
  if enabled t then
    Ring.push t.rings.(t.workers)
      {
        sp_ts = durable;
        sp_worker = -1;
        sp_stage = Replay_lag;
        sp_start = frontier;
        sp_end = durable;
        sp_dropped = false;
      };
  (* The stage histogram feeds [Cluster.replay_lag] and the bench-diff lag
     gate — record it even with tracing disabled, like the other stage
     stats; only the ring sample is tied to sampling. *)
  Stats.note_stage t.stats ~stage:(stage_index Replay_lag)
    ~latency:(durable - frontier)

(* Snapshot-read service: [Read_serve] is dequeue-to-reply latency of one
   served read, [Read_staleness] the gap between the replica's durable
   frontier and the snapshot pin it served at (both on the
   transaction-timestamp axis, like replay lag). Histograms take every
   serve — they feed the [reads:] diagnostics and the bench staleness
   metric — while the ring sample follows disposition sampling. *)
let note_read_serve t ~start ~stop ~staleness =
  Stats.note_stage t.stats ~stage:(stage_index Read_serve)
    ~latency:(max 0 (stop - start));
  Stats.note_stage t.stats ~stage:(stage_index Read_staleness)
    ~latency:(max 0 staleness);
  if t.interval > 0 then begin
    let n = t.disp_counter in
    t.disp_counter <- n + 1;
    if n mod t.interval = 0 then
      Ring.push t.rings.(t.workers)
        {
          sp_ts = 0;
          sp_worker = -1;
          sp_stage = Read_serve;
          sp_start = start;
          sp_end = max start stop;
          sp_dropped = false;
        }
  end

let note_disposition t stage =
  if t.interval > 0 then begin
    let n = t.disp_counter in
    t.disp_counter <- n + 1;
    if n mod t.interval = 0 then begin
      let now = Sim.Engine.now t.eng in
      Ring.push t.rings.(t.workers)
        {
          sp_ts = 0;
          sp_worker = -1;
          sp_stage = stage;
          sp_start = now;
          sp_end = now;
          sp_dropped = false;
        }
    end
  end

let spans t = List.concat_map Ring.to_list (Array.to_list t.rings)
