(** Simulated client sessions: the end-to-end side of the paper's
    release-visibility guarantee (§3.3).

    A client is one closed-loop session process on the cluster's network
    (node [Config.pool cfg + cid], above the replica pool). It issues requests tagged with its session id
    and a per-session sequence number, and drives each one to a terminal
    reply:

    - {b timeout} → retry against the next replica, with exponential
      backoff and seeded jitter;
    - [Not_leader {hint}] → redirect to the hinted (or next) replica;
    - [Busy] (admission control) → back off and retry;
    - after [Config.client_retry_limit] attempts → {e park}: sleep
      [client_park_interval], then re-drive the same request, so an
      unreachable cluster degrades gracefully (a read-only session
      instead abandons the request after the park — reads are idempotent
      and must not head-of-line block the session on a permanently
      unservable key);
    - [Ok_released] → the result was released below the watermark: the
      exactly-once ack. [Aborted] → user abort, no effect anywhere.

    Retries are deduplicated server-side by the replicated session table
    ({!Replica}), so a request that was committed by a since-crashed
    leader is acked from cache by its successor instead of re-executed —
    the oracle {!Check.exactly_once} verifies this end to end. *)

type t

val spawn :
  Paxos.Msg.t Sim.Net.t ->
  cfg:Config.t ->
  cid:int ->
  ?stopped:bool ref ->
  ?stats:Stats.t ->
  ?ro:bool ->
  ?prefer:int array ->
  gen:(unit -> string) ->
  unit ->
  t
(** Spawn the session process. [gen] produces one request payload per
    issued request (interpreted by the app's [client_op]). When [!stopped]
    becomes true the client stops issuing but keeps draining its inbox, so
    a late ack of the in-flight request still counts. The net must carry
    [Config.pool cfg + cfg.clients] nodes (clients sit above the replica
    pool, spares included). [stats] — typically
    {!Cluster.client_stats} — receives each resolved request's total
    parked time ({!Stats.note_parked} plus the [Client_park] stage
    histogram) and redirect count (the [Client_redirect] stage), the
    availability axes the reconfiguration bench reports.

    [ro] makes this a {e read-only} session: it issues [Read_req] instead
    of [Client_req] (interpreted by the app's [read_op] against a
    watermark-pinned snapshot, see {!Replica}), counts [Ok_read] as its
    terminal ack, and rotates within [prefer] — the replica ids to try in
    order (nearest first under a WAN profile, or the serving subset a
    bench arm reads from; defaults to the base replica set). A [Busy]
    shed rotates a read session to the next preferred replica, since the
    shedding follower may stay lease-parked for a while; a [Not_leader]
    redirect also rotates within [prefer] rather than adopting the hint,
    so read traffic never funnels to the leader. Requires
    [Config.follower_reads]; read-only acks must {e not} feed
    {!Check.exactly_once} (reads execute no transaction — filter with
    {!is_ro}).
    @raise Invalid_argument on an empty or out-of-pool [prefer], or if
    [ro] is set without [Config.follower_reads]. *)

val create :
  Paxos.Msg.t Sim.Net.t ->
  cfg:Config.t ->
  cid:int ->
  ?stopped:bool ref ->
  ?stats:Stats.t ->
  ?ro:bool ->
  ?prefer:int array ->
  ?gen:(unit -> string) ->
  unit ->
  t
(** Build a session {e without} spawning its closed-loop process, for
    driver-managed use via {!request} (the cross-shard 2PC driver in
    {!Shard} owns one such session per participant shard). [gen] is
    unused on this path and defaults to a raising stub. Same validation
    as {!spawn}. *)

val request : t -> string -> [ `Ok | `Aborted | `Stopped ]
(** [request t payload] issues one request on a {!create}d session and
    drives it to a terminal disposition, blocking the calling process
    (must run inside a simulator process on the session's engine).
    [`Stopped] only if the session's [stopped] flag fired mid-request —
    drivers that must finish a multi-step protocol pass a never-true
    flag and check their own stop signal between protocol rounds. *)

val cid : t -> int
val node : t -> int

val is_ro : t -> bool
(** True for read-only sessions (spawned with [~ro:true]). *)

val issued : t -> int
(** Highest sequence number issued so far. *)

val acked_count : t -> int
val acked_seqs : t -> (int * int) list
(** [(cid, seq)] of every [Ok_released] ack, in issue order — the input to
    {!Check.exactly_once}. *)

val aborted : t -> int
val retries : t -> int
val redirects : t -> int
val busy_replies : t -> int
val timeouts : t -> int

val parked : t -> int
(** Times a request exhausted its retry budget and was parked. *)

val latency : t -> Sim.Metrics.Hist.t
(** Client-observed latency: first send to terminal reply. *)
