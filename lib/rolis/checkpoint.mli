(** Fuzzy checkpoints: periodic durable images of below-watermark state.

    Two roles. First, the traditional single-machine recovery story Rolis
    is measured against (paper §7): single-machine databases (e.g. SiloR)
    recover by reloading a disk checkpoint and replaying a tail log,
    which takes {e minutes} for a sizeable store versus Rolis's 1.5–2 s
    replicated failover — the `recovery` benchmark makes that comparison
    concrete. Second, the live cluster's own checkpoint duty: each
    follower periodically images its released (below-watermark) state so
    the Paxos streams can truncate their journals and a rejoining node
    can bootstrap from checkpoint + journal tail in time bounded by the
    checkpoint interval, not by history length.

    Checkpoints record each record's value and [(epoch, ts)] stamp, so
    recovery composes with idempotent log replay ({!Bootstrap}): install
    the image, then re-apply the tail through the per-key strictly-newer
    CAS (ARIES-style install-then-replay). The image is {e fuzzy} — rows
    are scanned while replay continues above the watermark — which is
    safe precisely because installs go through the same CAS. *)

type image
(** A durable checkpoint (contents + metadata). *)

type replica_image = {
  ri_image : image;
  ri_cover : int array;
      (** per-stream journal index up to which the image's tables are
          complete: every commit at [idx <= ri_cover.(s)] is reflected
          (applied before the scan was stamped), so the journal below the
          cover is redundant with the image *)
  ri_frontier : int array;  (** per-stream applied timestamp at the stamp *)
  ri_wm : Watermark.snapshot;
      (** sealed-epoch history, so an importing replica resolves
          cross-epoch straddlers exactly as the original did *)
  ri_sessions : (int * int * int * int * int) list;
      (** client dedup table [(cid, claimed, applied, released, aborted)]:
          without it, a client retry of a transaction whose journal entry
          was truncated would re-execute *)
  ri_taken_at : int;  (** virtual time when the scan was stamped *)
}
(** A live replica's checkpoint: the database image plus everything a
    rebuilt replica cannot rederive from the journal tail. *)

val size_bytes : image -> int
val row_count : image -> int

val disk_time : disk_mb_per_s:int -> bytes:int -> int
(** Transfer time (ns) of [bytes] through the modeled disk. *)

val write :
  Silo.Db.t ->
  ?threads:int ->
  ?disk_mb_per_s:int ->
  ?rows_per_yield:int ->
  ?live_only:bool ->
  unit ->
  image
(** Scan every table with [threads] checkpointer processes (tables are
    striped across them), charging scan CPU and sharing [disk_mb_per_s]
    of write bandwidth. Must run inside a simulation process; virtual
    time advances by the checkpoint duration.

    [live_only] (default true) skips tombstones, matching what a
    single-machine restart needs. Replica checkpoints pass [false]: a
    below-watermark delete must travel with the image, else a rebuilt
    node would resurrect the row from an app-setup-seeded table. *)

val install : into:Silo.Db.t -> image -> int
(** Synchronously graft the image onto [into] (tables created on
    demand), with {e no} modeled cost — callers account the load time
    separately via {!load_cost}. Each row goes through the strictly-newer
    [(epoch, ts)] CAS, so installing over a database that already has
    newer state (or concurrently with tail replay) never regresses a
    write. Returns how many rows actually installed. *)

val load_cost :
  costs:Silo.Costs.t -> ?threads:int -> ?disk_mb_per_s:int -> image -> int
(** Virtual-time cost (ns) a {!recover} of this image would take: disk
    transfer (serialized, bandwidth-limited) plus per-row index-rebuild
    CPU divided across [threads]. {!Replica} installs instantly via
    {!install} and stays election-ineligible for this long instead. *)

val recover :
  into:Silo.Db.t ->
  ?threads:int ->
  ?disk_mb_per_s:int ->
  image ->
  unit
(** Read the checkpoint back (disk bandwidth) and rebuild the database
    (bulk sorted apply per burst) with [threads] loader processes.
    [into] must be a fresh database with no application tables; they are
    created on demand. Must run inside a simulation process. *)
