(** Checkpoint-based durability — the traditional single-machine
    alternative Rolis is measured against (paper §7).

    Single-machine databases (e.g. SiloR) recover by reloading a disk
    checkpoint and replaying a tail log, which takes {e minutes} for a
    sizeable store; Rolis's replicated failover takes 1.5–2 s. This module
    implements the checkpoint path inside the simulator — parallel
    checkpointer threads that scan the database and stream it to a
    bandwidth-limited disk, and a recovery routine that reads it back and
    rebuilds the indexes — so the `recovery` benchmark can make the
    paper's §7 comparison concrete.

    Checkpoints record each live record's value and [(epoch, ts)] stamp,
    so recovery composes with idempotent log replay ({!Bootstrap}), giving
    a fuzzy-checkpoint-plus-log scheme. *)

type image
(** A durable checkpoint (contents + metadata). *)

val size_bytes : image -> int
val row_count : image -> int

val write :
  Silo.Db.t ->
  ?threads:int ->
  ?disk_mb_per_s:int ->
  ?rows_per_yield:int ->
  unit ->
  image
(** Scan every table with [threads] checkpointer processes (tables are
    striped across them), charging scan CPU and sharing [disk_mb_per_s]
    of write bandwidth. Must run inside a simulation process; virtual
    time advances by the checkpoint duration. *)

val recover :
  into:Silo.Db.t ->
  ?threads:int ->
  ?disk_mb_per_s:int ->
  image ->
  unit
(** Read the checkpoint back (disk bandwidth) and rebuild the database
    (per-row insert cost) with [threads] loader processes. [into] must be
    a fresh database with no application tables; they are created on
    demand. Must run inside a simulation process. *)
