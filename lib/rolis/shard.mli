(** Sharded multi-group deployment: each shard is a complete Rolis
    cluster, co-hosted on one virtual clock, with cross-shard
    transactions committed by a two-phase protocol whose prepare and
    decision records are themselves replicated entries in the
    participants' logs (coordinator-on-shard, the CockroachDB/TiKV
    pattern).

    The key property: every 2PC step is an ordinary client request, so
    it inherits replication, exactly-once session dedup and failover
    recovery from the existing machinery. A shard that fails over
    mid-protocol recovers the staged intent — and, on the coordinator
    shard, the commit/abort decision — by replaying its own journal;
    the driver's retries are answered from the rebuilt session table
    instead of re-executing. {!Check.cross_shard} audits the decision
    marks the journals carry.

    Sub-transactions are escrow-style (relative adjustments), so applies
    on different shards commute: atomic durability plus commutativity
    gives cross-shard conservation without a cross-shard lock table —
    the same argument deterministic-backup systems make for replay. *)

val table_2pc : string
(** Name of the control table each wrapped app gains ("__2pc"): intent
    rows keyed [("i", xid)] holding the staged sub-payload, decision
    rows keyed [("d", xid)] holding ["C"] or ["A"]. *)

val wrap_app : ?veto:(payload:string -> bool) -> App.t -> App.t
(** Overlay the 2PC control surface on an app's [client_op]. Control
    payloads ["!p"/"!c"/"!a"/"!x"/"!r"] stage, decide, apply or cancel;
    anything else dispatches to the base [client_op] unchanged (the
    zero-cost single-shard path). [veto ~payload] lets the workload
    surface a deterministic user abort at {e prepare} time (e.g. TPC-C's
    1% NewOrder rollback), turning it into a clean global abort before
    anything is staged.
    @raise Invalid_argument if the base app has no [client_op]. *)

(** {2 Deployment} *)

type op =
  | Single of int * string
      (** [(shard, payload)]: issued directly, routes unchanged. *)
  | Multi of (int * string) list
      (** Cross-shard: participants with their sub-payloads; the first
          participant hosts the coordinator. *)

type gen = unit -> op

type t

val create :
  ?on_durable:
    (shard:int ->
    replica:int ->
    stream:int ->
    idx:int ->
    Store.Wire.entry ->
    unit) ->
  ?veto:(payload:string -> bool) ->
  Config.t ->
  Router.t ->
  (shard:int -> App.t) ->
  gen:(rng:Sim.Rng.t -> driver:int -> gen) ->
  t
(** Build [cfg.shards] complete clusters on one fresh engine (seeded
    from [cfg.seed]) and spawn [cfg.clients] driver processes. Driver
    [j] holds one write session per shard (cid [j] everywhere), pulls
    logical transactions from [gen] (called once per driver with a split
    of the engine RNG) and either routes a [Single] directly or runs the
    2PC protocol for a [Multi]. [app ~shard] supplies each shard's base
    application — constant for a replicated-everywhere schema, or
    range-restricted when each shard loads only its own partition.
    [shards = 1] is the degenerate single-group deployment — everything
    routes to shard 0 — kept legal so scaling benchmarks measure their
    baseline arm through the identical driver machinery.
    @raise Invalid_argument if [cfg.shards <> Router.shards router] or
    [cfg.clients < 1]. *)

val engine : t -> Sim.Engine.t
val router : t -> Router.t
val shards : t -> int
val clusters : t -> Cluster.t array
val cluster : t -> int -> Cluster.t

val run : t -> ?warmup:int -> duration:int -> unit -> unit
(** Advance virtual time; after [warmup], reset every cluster's and
    driver's windowed stats. May be called repeatedly to extend. *)

val reset_window : t -> unit

val stop : t -> unit
(** Freeze the drivers after their in-flight logical transaction. *)

val quiesce : ?timeout:int -> t -> bool
(** {!stop}, then advance virtual time (host-side, like {!run}) until
    every driver is idle — its in-flight 2PC fully decided and applied —
    or [timeout] virtual ns elapse. Returns whether all drivers idled. *)

(** {2 Aggregate accounting} (over the last measurement window) *)

val committed : t -> int
(** Logical transactions committed by the drivers (a cross-shard
    transaction counts once). *)

val aborted : t -> int
val cross_committed : t -> int
val cross_aborted : t -> int

val prepares : t -> int
(** Successful prepare votes recorded across all 2PC rounds. *)

val released : t -> int
(** Release-committed {e sub}-transactions summed over every shard
    (includes 2PC control transactions — the raw log-level axis). *)

val throughput : t -> float
(** Logical transactions per virtual second — the scaling figure's
    y-axis. *)

val latency : t -> Sim.Metrics.Hist.t
(** Driver-observed logical-transaction latency, all drivers merged. *)

val cross_latency : t -> Sim.Metrics.Hist.t
(** Latency of cross-shard transactions only. *)

val acked_seqs : t -> int -> (int * int) list
(** [(cid, seq)] acks of every driver session on shard [s] — the input
    to that shard's {!Check.exactly_once}. *)

val client_retries : t -> int
