type row = {
  r_key : string;
  r_value : string;
  r_epoch : int;
  r_ts : int;
  r_deleted : bool;
}

type table_image = { t_name : string; t_rows : row array }
type image = { tables : table_image list; bytes : int; rows : int }

(* A live replica's periodic fuzzy checkpoint: the database image plus
   everything a rebuilt replica cannot rederive from the journal tail —
   per-stream cover stamps, the watermark tracker's sealed-epoch history,
   and the client-session dedup table (without which a retry of a
   truncated transaction would re-execute). *)
type replica_image = {
  ri_image : image;
  ri_cover : int array;
  ri_frontier : int array;
  ri_wm : Watermark.snapshot;
  ri_sessions : (int * int * int * int * int) list;
  ri_taken_at : int;
}

let size_bytes img = img.bytes
let row_count img = img.rows

(* Shared, bandwidth-limited disk: each writer holds the disk for the
   transfer time of its burst. *)
let disk_time ~disk_mb_per_s ~bytes =
  int_of_float (float_of_int bytes *. 1e9 /. (float_of_int disk_mb_per_s *. 1e6))

let row_bytes r = 16 + String.length r.r_key + String.length r.r_value

let write db ?(threads = 4) ?(disk_mb_per_s = 500) ?(rows_per_yield = 512)
    ?(live_only = true) () =
  let eng = Silo.Db.engine db in
  let cpu = Silo.Db.cpu db in
  let costs = Silo.Db.costs db in
  let disk = Sim.Sync.Mutex.create eng in
  let tables = Silo.Db.tables db in
  let images = Array.make (List.length tables) None in
  let wg = Sim.Sync.Waitgroup.create eng in
  Sim.Sync.Waitgroup.add wg threads;
  for worker = 0 to threads - 1 do
    ignore
      (Sim.Engine.spawn eng ~name:"checkpointer" (fun () ->
           Sim.Cpu.register cpu;
           List.iteri
             (fun i table ->
               if i mod threads = worker then begin
                 (* Collect the rows instantaneously (the iteration's cost
                    is charged below, burst by burst), then pay scan CPU
                    and disk-write time per burst of rows. *)
                 let rows = ref [] in
                 Store.Table.iter table (fun k (r : Store.Record.t) ->
                     if (not r.deleted) || not live_only then
                       rows :=
                         {
                           r_key = k;
                           r_value = r.value;
                           r_epoch = r.epoch;
                           r_ts = r.ts;
                           r_deleted = r.deleted;
                         }
                         :: !rows);
                 let all = Array.of_list (List.rev !rows) in
                 let n = Array.length all in
                 let pos = ref 0 in
                 while !pos < n do
                   let upto = min n (!pos + rows_per_yield) in
                   let bytes = ref 0 in
                   for j = !pos to upto - 1 do
                     bytes := !bytes + row_bytes all.(j)
                   done;
                   Sim.Cpu.consume cpu ((upto - !pos) * costs.Silo.Costs.read_ns);
                   Sim.Sync.Mutex.lock disk;
                   Sim.Engine.sleep (disk_time ~disk_mb_per_s ~bytes:!bytes);
                   Sim.Sync.Mutex.unlock disk;
                   pos := upto
                 done;
                 images.(i) <- Some { t_name = Store.Table.name table; t_rows = all }
               end)
             tables;
           Sim.Cpu.unregister cpu;
           Sim.Sync.Waitgroup.finish wg))
  done;
  Sim.Sync.Waitgroup.wait wg;
  let tables = Array.to_list images |> List.filter_map Fun.id in
  let bytes =
    List.fold_left
      (fun acc t -> Array.fold_left (fun a r -> a + row_bytes r) acc t.t_rows)
      0 tables
  in
  let rows = List.fold_left (fun acc t -> acc + Array.length t.t_rows) 0 tables in
  { tables; bytes; rows }

(* Sorted image install: one sweep per table instead of a per-row point
   lookup ([Store.Table.iter] emits keys ascending for every
   representation, so each [t_rows] run is strictly ascending —
   [apply_sorted_run] dispatches it to a B-tree cursor sweep or hash
   probes as the table demands). Works on fresh and pre-seeded tables
   alike: existing records go through the idempotent (epoch, ts) CAS, so
   installing under concurrent tail replay can never regress a newer
   write — the ARIES install-then-replay contract. *)
let install_table ~into (ti : table_image) =
  let table =
    try Silo.Db.table into ti.t_name
    with Not_found -> Silo.Db.create_table into ti.t_name
  in
  let installed = ref 0 in
  let kvs = Array.to_list (Array.map (fun r -> (r.r_key, r)) ti.t_rows) in
  ignore
    (Store.Table.apply_sorted_run table kvs
       ~f:(fun key row existing ->
         let value = if row.r_deleted then None else Some row.r_value in
         match existing with
         | Some (rec_ : Store.Record.t) ->
             let old_len = String.length rec_.value in
             if Store.Record.cas_apply rec_ ~epoch:row.r_epoch ~ts:row.r_ts ~value
             then begin
               incr installed;
               Store.Table.account_growth table
                 (String.length rec_.value - old_len)
             end;
             None
         | None ->
             let rec_ =
               Store.Record.make ~epoch:row.r_epoch ~ts:row.r_ts row.r_value
             in
             if row.r_deleted then rec_.Store.Record.deleted <- true;
             incr installed;
             Store.Table.account_growth table
               (Store.Record.byte_size ~key rec_);
             Some rec_));
  !installed

let install ~into img =
  List.fold_left (fun acc ti -> acc + install_table ~into ti) 0 img.tables

(* Virtual-time cost of reading an image back and rebuilding the indexes:
   the disk is shared (reads serialize on it, whatever the thread count)
   and the per-row rebuild CPU parallelises across the loader threads.
   Matches what a [recover] run charges, without requiring the caller to
   block through it — {!Replica} installs state synchronously and pays
   this as an ineligibility window instead. *)
let load_cost ~costs ?(threads = 4) ?(disk_mb_per_s = 500) img =
  let cpu_ns =
    img.rows * (costs.Silo.Costs.write_ns + costs.Silo.Costs.read_ns)
  in
  disk_time ~disk_mb_per_s ~bytes:img.bytes + (cpu_ns / max 1 threads)

let recover ~into ?(threads = 4) ?(disk_mb_per_s = 500) img =
  let eng = Silo.Db.engine into in
  let cpu = Silo.Db.cpu into in
  let costs = Silo.Db.costs into in
  let disk = Sim.Sync.Mutex.create eng in
  (* Create tables up front (ids must be dense before loaders run). *)
  List.iter (fun t -> ignore (Silo.Db.create_table into t.t_name)) img.tables;
  let wg = Sim.Sync.Waitgroup.create eng in
  Sim.Sync.Waitgroup.add wg threads;
  for worker = 0 to threads - 1 do
    ignore
      (Sim.Engine.spawn eng ~name:"ckpt-loader" (fun () ->
           Sim.Cpu.register cpu;
           List.iteri
             (fun i t ->
               if i mod threads = worker then begin
                 let n = Array.length t.t_rows in
                 let pos = ref 0 in
                 while !pos < n do
                   let upto = min n (!pos + 512) in
                   let bytes = ref 0 in
                   for j = !pos to upto - 1 do
                     bytes := !bytes + row_bytes t.t_rows.(j)
                   done;
                   (* One sorted sweep per burst (the rows come off the
                      tree in key order), instead of a fresh root-to-leaf
                      descent per row. The modeled charges are unchanged:
                      disk read for the burst, then index-rebuild CPU. *)
                   ignore
                     (install_table ~into
                        {
                          t_name = t.t_name;
                          t_rows = Array.sub t.t_rows !pos (upto - !pos);
                        });
                   Sim.Sync.Mutex.lock disk;
                   Sim.Engine.sleep (disk_time ~disk_mb_per_s ~bytes:!bytes);
                   Sim.Sync.Mutex.unlock disk;
                   Sim.Cpu.consume cpu
                     ((upto - !pos)
                     * (costs.Silo.Costs.write_ns + costs.Silo.Costs.read_ns));
                   pos := upto
                 done
               end)
             img.tables;
           Sim.Cpu.unregister cpu;
           Sim.Sync.Waitgroup.finish wg))
  done;
  Sim.Sync.Waitgroup.wait wg
