type row = { r_key : string; r_value : string; r_epoch : int; r_ts : int }
type table_image = { t_name : string; t_rows : row array }
type image = { tables : table_image list; bytes : int; rows : int }

let size_bytes img = img.bytes
let row_count img = img.rows

(* Shared, bandwidth-limited disk: each writer holds the disk for the
   transfer time of its burst. *)
let disk_time ~disk_mb_per_s ~bytes =
  int_of_float (float_of_int bytes *. 1e9 /. (float_of_int disk_mb_per_s *. 1e6))

let row_bytes r = 16 + String.length r.r_key + String.length r.r_value

let write db ?(threads = 4) ?(disk_mb_per_s = 500) ?(rows_per_yield = 512) () =
  let eng = Silo.Db.engine db in
  let cpu = Silo.Db.cpu db in
  let costs = Silo.Db.costs db in
  let disk = Sim.Sync.Mutex.create eng in
  let tables = Silo.Db.tables db in
  let images = Array.make (List.length tables) None in
  let wg = Sim.Sync.Waitgroup.create eng in
  Sim.Sync.Waitgroup.add wg threads;
  for worker = 0 to threads - 1 do
    ignore
      (Sim.Engine.spawn eng ~name:"checkpointer" (fun () ->
           Sim.Cpu.register cpu;
           List.iteri
             (fun i table ->
               if i mod threads = worker then begin
                 (* Collect the rows instantaneously (the iteration's cost
                    is charged below, burst by burst), then pay scan CPU
                    and disk-write time per burst of rows. *)
                 let rows = ref [] in
                 Store.Table.iter table (fun k (r : Store.Record.t) ->
                     if not r.deleted then
                       rows :=
                         { r_key = k; r_value = r.value; r_epoch = r.epoch; r_ts = r.ts }
                         :: !rows);
                 let all = Array.of_list (List.rev !rows) in
                 let n = Array.length all in
                 let pos = ref 0 in
                 while !pos < n do
                   let upto = min n (!pos + rows_per_yield) in
                   let bytes = ref 0 in
                   for j = !pos to upto - 1 do
                     bytes := !bytes + row_bytes all.(j)
                   done;
                   Sim.Cpu.consume cpu ((upto - !pos) * costs.Silo.Costs.read_ns);
                   Sim.Sync.Mutex.lock disk;
                   Sim.Engine.sleep (disk_time ~disk_mb_per_s ~bytes:!bytes);
                   Sim.Sync.Mutex.unlock disk;
                   pos := upto
                 done;
                 images.(i) <- Some { t_name = Store.Table.name table; t_rows = all }
               end)
             tables;
           Sim.Cpu.unregister cpu;
           Sim.Sync.Waitgroup.finish wg))
  done;
  Sim.Sync.Waitgroup.wait wg;
  let tables = Array.to_list images |> List.filter_map Fun.id in
  let bytes =
    List.fold_left
      (fun acc t -> Array.fold_left (fun a r -> a + row_bytes r) acc t.t_rows)
      0 tables
  in
  let rows = List.fold_left (fun acc t -> acc + Array.length t.t_rows) 0 tables in
  { tables; bytes; rows }

let recover ~into ?(threads = 4) ?(disk_mb_per_s = 500) img =
  let eng = Silo.Db.engine into in
  let cpu = Silo.Db.cpu into in
  let costs = Silo.Db.costs into in
  let disk = Sim.Sync.Mutex.create eng in
  (* Create tables up front (ids must be dense before loaders run). *)
  List.iter (fun t -> ignore (Silo.Db.create_table into t.t_name)) img.tables;
  let wg = Sim.Sync.Waitgroup.create eng in
  Sim.Sync.Waitgroup.add wg threads;
  for worker = 0 to threads - 1 do
    ignore
      (Sim.Engine.spawn eng ~name:"ckpt-loader" (fun () ->
           Sim.Cpu.register cpu;
           List.iteri
             (fun i t ->
               if i mod threads = worker then begin
                 let table = Silo.Db.table into t.t_name in
                 let n = Array.length t.t_rows in
                 let pos = ref 0 in
                 while !pos < n do
                   let upto = min n (!pos + 512) in
                   let bytes = ref 0 in
                   for j = !pos to upto - 1 do
                     let r = t.t_rows.(j) in
                     bytes := !bytes + row_bytes r;
                     Store.Table.insert table r.r_key
                       (Store.Record.make ~epoch:r.r_epoch ~ts:r.r_ts r.r_value)
                   done;
                   (* Disk read for the burst, then index-rebuild CPU. *)
                   Sim.Sync.Mutex.lock disk;
                   Sim.Engine.sleep (disk_time ~disk_mb_per_s ~bytes:!bytes);
                   Sim.Sync.Mutex.unlock disk;
                   Sim.Cpu.consume cpu
                     ((upto - !pos)
                     * (costs.Silo.Costs.write_ns + costs.Silo.Costs.read_ns));
                   pos := upto
                 done
               end)
             img.tables;
           Sim.Cpu.unregister cpu;
           Sim.Sync.Waitgroup.finish wg))
  done;
  Sim.Sync.Waitgroup.wait wg
