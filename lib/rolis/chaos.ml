let src = Logs.Src.create "rolis.chaos" ~doc:"Chaos harness events"

module Log = (val Logs.src_log src : Logs.LOG)

let ms = Sim.Engine.ms

let bank_table = "accounts"
let initial_balance = 1_000

(* The paper's Fig. 3 workload: move a random amount between two random
   accounts in one transaction. Total money is the conserved quantity the
   final check asserts on every replica. [stopped] freezes generation so
   the cluster can quiesce. *)
let bank_app ~accounts ~stopped =
  let key i = Store.Keycodec.encode [ Store.Keycodec.I i ] in
  {
    App.name = "chaos-bank";
    setup =
      (fun db ->
        let t = Silo.Db.create_table db bank_table in
        for i = 0 to accounts - 1 do
          Store.Table.insert t (key i)
            (Store.Record.make (string_of_int initial_balance))
        done);
    make_worker =
      (fun db ~rng ~worker:_ ~nworkers:_ ->
        let t = Silo.Db.table db bank_table in
        fun () txn ->
          if not !stopped then begin
            let a = Sim.Rng.int rng accounts and b = Sim.Rng.int rng accounts in
            if a <> b then begin
              let bal k =
                match Silo.Txn.get txn t (key k) with
                | Some v -> int_of_string v
                | None -> failwith (Printf.sprintf "chaos: account %d missing" k)
              in
              let va = bal a and vb = bal b in
              let amount = 1 + Sim.Rng.int rng 10 in
              Silo.Txn.put txn t (key a) (string_of_int (va - amount));
              Silo.Txn.put txn t (key b) (string_of_int (vb + amount))
            end
          end);
    client_op =
      Some
        (fun db ~payload txn ->
          let t = Silo.Db.table db bank_table in
          match String.split_on_char ' ' payload with
          | [ a; b; amt ] ->
              let a = int_of_string a and b = int_of_string b in
              let amount = int_of_string amt in
              let bal k =
                match Silo.Txn.get txn t (key k) with
                | Some v -> int_of_string v
                | None -> failwith (Printf.sprintf "chaos: account %d missing" k)
              in
              let va = bal a and vb = bal b in
              Silo.Txn.put txn t (key a) (string_of_int (va - amount));
              Silo.Txn.put txn t (key b) (string_of_int (vb + amount))
          | _ -> failwith "chaos: bad transfer payload");
    read_op =
      Some
        (fun db ~payload snap ->
          let t = Silo.Db.table db bank_table in
          match Silo.Db.snap_get snap t (key (int_of_string payload)) with
          | Some v -> v
          | None -> string_of_int initial_balance);
  }

(* Client-side request generator: "a b amount" with a <> b. *)
let bank_payload rng ~accounts =
  let a = Sim.Rng.int rng accounts in
  let b = (a + 1 + Sim.Rng.int rng (accounts - 1)) mod accounts in
  Printf.sprintf "%d %d %d" a b (1 + Sim.Rng.int rng 10)

(* Read-session payload: one account id, answered with its balance. *)
let bank_read_payload rng ~accounts = string_of_int (Sim.Rng.int rng accounts)

type outcome = {
  seed : int;
  violations : Check.violation list;
  released : int;
  executed : int;
  crashes : int;
  restarts : int;
  epochs : int;
  entries_checked : int;
  acked : int;
  client_retries : int;
  busy_replies : int;
  parked : int;
  checkpoints : int;
  truncations : int;
  rebuilds : int;
  adds : int;
  removes : int;
  handoffs : int;
  ops_skipped : int;
  reads_acked : int;
  reads_served : int;
  reads_parked : int;
  reads_redirected : int;
  read_misses : int;
}

let ok o = o.violations = []

let pp_outcome fmt o =
  Format.fprintf fmt
    "seed %d: %s (released=%d executed=%d crashes=%d restarts=%d epochs=%d \
     entries=%d acked=%d retries=%d busy=%d parked=%d ckpts=%d truncs=%d \
     rebuilds=%d adds=%d removes=%d handoffs=%d skipped=%d)"
    o.seed
    (if ok o then "ok" else Printf.sprintf "%d VIOLATIONS" (List.length o.violations))
    o.released o.executed o.crashes o.restarts o.epochs o.entries_checked o.acked
    o.client_retries o.busy_replies o.parked o.checkpoints o.truncations
    o.rebuilds o.adds o.removes o.handoffs o.ops_skipped;
  if o.reads_acked + o.reads_served + o.reads_parked + o.reads_redirected > 0 then
    Format.fprintf fmt
      " (reads: acked=%d served=%d parked=%d redirected=%d misses=%d)"
      o.reads_acked o.reads_served o.reads_parked o.reads_redirected
      o.read_misses;
  List.iter (fun v -> Format.fprintf fmt "@.  %a" Check.pp_violation v) o.violations

let chaos_costs =
  { Silo.Costs.default with Silo.Costs.txn_begin_ns = 50_000; abort_ns = 5_000 }

let run_seed ?(replicas = 3) ?(workers = 4) ?(clients = 8) ?(accounts = 48)
    ?(duration = 3 * Sim.Engine.s) ?(checkpoint_interval = 0)
    ?(history_warmup = 0) ?(ops = false) ?(spares = 2)
    ?(follower_reads = false) ?(read_clients = 4) ?(read_lease = 150 * ms)
    ?(wan_profile = "") ~seed () =
  let stopped = ref false in
  let read_clients = if follower_reads then read_clients else 0 in
  (* Rolling-operations mode keeps checkpointing on: joining learners
     bootstrap from the newest image + journal tail (the PR-6 path) and
     the truncation retention gate must prove it holds log for them. *)
  let checkpoint_interval =
    if ops && checkpoint_interval = 0 then 500 * ms else checkpoint_interval
  in
  let spares = if ops then spares else 0 in
  let cfg =
    {
      Config.default with
      Config.replicas;
      workers;
      cores = 2 * workers;
      batch_size = 50;
      costs = chaos_costs;
      physical_serialization = true;
      archive_entries = true;
      heartbeat_interval = 50 * ms;
      election_timeout = 300 * ms;
      clients = clients + read_clients;
      seed = Int64.of_int seed;
      follower_reads;
      read_lease;
      wan_profile;
      (* Checkpoint chaos: short retention (the floor is the election
         timeout) so truncation rounds actually fire inside a few virtual
         seconds, making crashes race in-progress checkpoints and
         recoveries race truncation. *)
      checkpoint_interval;
      checkpoint_retention = 300 * ms;
      spare_replicas = spares;
      min_members = (if ops then 2 else Config.default.Config.min_members);
    }
  in
  let oracle = Check.Oracle.create () in
  let crashes = ref 0 and restarts = ref 0 in
  let cluster =
    Cluster.create ~on_durable:(Check.Oracle.observe oracle) cfg
      (bank_app ~accounts ~stopped)
  in
  let eng = Cluster.engine cluster in
  let net = Cluster.network cluster in
  (* Real client sessions drive the bank when [clients > 0]: they retry
     across crashes, partitions and elections, and the exactly-once check
     below audits their acks against the union durable log. *)
  let sessions =
    Array.init clients (fun cid ->
        let crng = Sim.Rng.split (Sim.Engine.rng eng) in
        Client.spawn net ~cfg ~cid ~stopped
          ~stats:(Cluster.client_stats cluster)
          ~gen:(fun () -> bank_payload crng ~accounts)
          ())
  in
  (* Read-only sessions ride the same network on the client ids above the
     write sessions. Their acks are balance reads — they must NOT feed
     the exactly-once audit (reads are idempotent by construction); the
     snapshot-read oracle audits them instead. *)
  let read_sessions =
    Array.init read_clients (fun j ->
        let crng = Sim.Rng.split (Sim.Engine.rng eng) in
        Client.spawn net ~cfg ~cid:(clients + j) ~stopped ~ro:true
          ~stats:(Cluster.client_read_stats cluster)
          ~gen:(fun () -> bank_read_payload crng ~accounts)
          ())
  in
  (* Continuous light checking: sealed watermarks must agree while faults
     are active (the oracle checks agreement on every commit already). *)
  let periodic_viols = ref [] in
  ignore
    (Sim.Engine.spawn eng ~name:"chaos-checker" (fun () ->
         while true do
           Sim.Engine.sleep (100 * ms);
           if !periodic_viols = [] then
             periodic_viols := Check.watermark_agreement cluster
         done));
  let violations =
    try
      (* Steady state first, then unleash the nemesis. The plan and the
         cluster share nothing but the seed, yet both are deterministic
         functions of it — a failing seed replays exactly. *)
      Cluster.run cluster ~duration:(300 * ms) ();
      (* Long-history scenarios: keep the cluster healthy for an extra
         warm-up so journals grow, checkpoints complete and truncation
         rounds fire *before* the first fault — the nemesis then crashes
         into a cluster whose logs are already compacted. *)
      if history_warmup > 0 then Cluster.run cluster ~duration:history_warmup ();
      let nrng = Sim.Rng.split (Sim.Engine.rng eng) in
      let plan =
        if ops then
          Sim.Fault.ops_plan nrng ~base:replicas ~spares
            ~min_members:cfg.Config.min_members ()
        else Sim.Fault.random_plan nrng ~nodes:replicas ()
      in
      Log.debug (fun m -> m "seed %d plan:@.%a" seed Sim.Fault.pp_plan plan);
      ignore
        (Sim.Fault.spawn net
           ~on_crash:(fun i ->
             incr crashes;
             Cluster.crash_replica cluster i)
           ~on_restart:(fun i ->
             incr restarts;
             Cluster.restart_replica cluster i)
           ~on_add:(fun i -> ignore (Cluster.add_replica cluster i))
           ~on_remove:(fun i -> ignore (Cluster.remove_replica cluster i))
           ~on_handoff:(fun i -> ignore (Cluster.handoff cluster ~target:i))
           ~on_step:(fun a -> Log.debug (fun m -> m "nemesis: %a" Sim.Fault.pp_action a))
           plan);
      Cluster.run cluster ~duration ();
      (* Quiesce: stop the workload, heal everything, revive stragglers the
         plan's own quiesce tail may have missed — but only nodes that are
         still part of the deployment: decommissioned voters and dark
         spare slots must stay down. *)
      stopped := true;
      Sim.Net.heal_all net;
      Sim.Net.clear_faults net;
      let in_deployment i =
        List.mem i (Cluster.members cluster)
        || List.mem i (Cluster.learners cluster)
      in
      Array.iter
        (fun r ->
          if in_deployment (Replica.id r) && not (Replica.is_alive r) then begin
            incr restarts;
            Cluster.restart_replica cluster (Replica.id r)
          end)
        (Cluster.replicas cluster);
      Cluster.run cluster ~duration:(500 * ms) ();
      (* Tainted ex-leaders hold speculative writes that were never
         released; rebuild them so the convergence check covers every
         replica. *)
      Array.iter
        (fun r ->
          if in_deployment (Replica.id r) && Replica.is_tainted r then begin
            incr restarts;
            Cluster.restart_replica cluster (Replica.id r)
          end)
        (Cluster.replicas cluster);
      (* Drain: heartbeat no-ops push the watermark past the last real
         transaction; followers finish replay. *)
      Cluster.run cluster ~duration:(2_500 * ms) ();
      let acked =
        Array.to_list sessions |> List.concat_map Client.acked_seqs
      in
      Check.Oracle.violations oracle
      @ !periodic_viols
      @ Check.agreement cluster
      @ Check.watermark_agreement cluster
      @ Check.membership_agreement cluster
      @ Check.convergence cluster
      @ Check.money cluster ~table:bank_table
          ~expected:(accounts * initial_balance)
      @ (if clients > 0 then Check.exactly_once cluster ~acked else [])
      @ (if follower_reads then Check.snapshot_reads cluster else [])
    with exn ->
      [
        {
          Check.check = "exception";
          detail = Printexc.to_string exn;
        };
      ]
  in
  let epochs =
    Array.fold_left
      (fun m r ->
        if Replica.is_alive r then max m (Paxos.Election.epoch (Replica.election r))
        else m)
      0 (Cluster.replicas cluster)
  in
  let sum f = Array.fold_left (fun acc c -> acc + f c) 0 sessions in
  let rsum f = Array.fold_left (fun acc c -> acc + f c) 0 read_sessions in
  {
    seed;
    violations;
    released = Cluster.released cluster;
    executed = Cluster.executed cluster;
    crashes = !crashes;
    restarts = !restarts;
    epochs;
    entries_checked = Check.Oracle.entries_checked oracle;
    acked = sum Client.acked_count;
    client_retries = sum Client.retries;
    busy_replies = sum Client.busy_replies;
    parked = sum Client.parked;
    checkpoints = Cluster.checkpoints_taken cluster;
    truncations = Cluster.truncation_rounds cluster;
    rebuilds = Cluster.auto_rebuilds cluster;
    adds = Cluster.adds cluster;
    removes = Cluster.removes cluster;
    handoffs = Cluster.handoffs cluster;
    ops_skipped = Cluster.ops_skipped cluster;
    reads_acked = rsum Client.acked_count;
    reads_served = Cluster.reads_served cluster;
    reads_parked = Cluster.reads_parked cluster;
    reads_redirected = Cluster.reads_redirected cluster;
    read_misses = Cluster.read_misses cluster;
  }

let run_seeds ?replicas ?workers ?clients ?accounts ?duration ?checkpoint_interval
    ?history_warmup ?ops ?spares ?follower_reads ?read_clients ?read_lease
    ?wan_profile ?(seed0 = 1) ?on_outcome ~seeds () =
  let outcomes = ref [] in
  for i = 0 to seeds - 1 do
    let o =
      run_seed ?replicas ?workers ?clients ?accounts ?duration
        ?checkpoint_interval ?history_warmup ?ops ?spares ?follower_reads
        ?read_clients ?read_lease ?wan_profile ~seed:(seed0 + i) ()
    in
    (match on_outcome with Some f -> f o | None -> ());
    outcomes := o :: !outcomes
  done;
  let outcomes = List.rev !outcomes in
  (outcomes, List.find_opt (fun o -> not (ok o)) outcomes)
