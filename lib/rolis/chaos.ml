let src = Logs.Src.create "rolis.chaos" ~doc:"Chaos harness events"

module Log = (val Logs.src_log src : Logs.LOG)

let ms = Sim.Engine.ms

let bank_table = "accounts"
let initial_balance = 1_000

(* The paper's Fig. 3 workload: move a random amount between two random
   accounts in one transaction. Total money is the conserved quantity the
   final check asserts on every replica. [stopped] freezes generation so
   the cluster can quiesce. [range] loads only an inclusive slice of the
   account space — how a sharded deployment gives each shard its own
   partition (conservation then only holds *globally*, which is exactly
   what {!Check.money_sharded} asserts). The client_op additionally
   understands the one-sided halves a cross-shard transfer splits into:
   ["w a amt"] withdraws, ["c a amt"] credits. *)
let bank_app ?range ~accounts ~stopped () =
  let key i = Store.Keycodec.encode [ Store.Keycodec.I i ] in
  let lo, hi = match range with Some r -> r | None -> (0, accounts - 1) in
  {
    App.name = "chaos-bank";
    setup =
      (fun db ->
        let t = Silo.Db.create_table db bank_table in
        for i = lo to hi do
          Store.Table.insert t (key i)
            (Store.Record.make (string_of_int initial_balance))
        done);
    make_worker =
      (fun db ~rng ~worker:_ ~nworkers:_ ->
        let t = Silo.Db.table db bank_table in
        fun () txn ->
          if not !stopped then begin
            let a = Sim.Rng.int rng accounts and b = Sim.Rng.int rng accounts in
            if a <> b then begin
              let bal k =
                match Silo.Txn.get txn t (key k) with
                | Some v -> int_of_string v
                | None -> failwith (Printf.sprintf "chaos: account %d missing" k)
              in
              let va = bal a and vb = bal b in
              let amount = 1 + Sim.Rng.int rng 10 in
              Silo.Txn.put txn t (key a) (string_of_int (va - amount));
              Silo.Txn.put txn t (key b) (string_of_int (vb + amount))
            end
          end);
    client_op =
      Some
        (fun db ~payload txn ->
          let t = Silo.Db.table db bank_table in
          let bal k =
            match Silo.Txn.get txn t (key k) with
            | Some v -> int_of_string v
            | None -> failwith (Printf.sprintf "chaos: account %d missing" k)
          in
          match String.split_on_char ' ' payload with
          | [ "w"; a; amt ] ->
              let a = int_of_string a and amount = int_of_string amt in
              Silo.Txn.put txn t (key a) (string_of_int (bal a - amount))
          | [ "c"; a; amt ] ->
              let a = int_of_string a and amount = int_of_string amt in
              Silo.Txn.put txn t (key a) (string_of_int (bal a + amount))
          | [ a; b; amt ] ->
              let a = int_of_string a and b = int_of_string b in
              let amount = int_of_string amt in
              let va = bal a and vb = bal b in
              Silo.Txn.put txn t (key a) (string_of_int (va - amount));
              Silo.Txn.put txn t (key b) (string_of_int (vb + amount))
          | _ -> failwith "chaos: bad transfer payload");
    read_op =
      Some
        (fun db ~payload snap ->
          let t = Silo.Db.table db bank_table in
          match Silo.Db.snap_get snap t (key (int_of_string payload)) with
          | Some v -> v
          | None -> string_of_int initial_balance);
  }

(* Client-side request generator: "a b amount" with a <> b. *)
let bank_payload rng ~accounts =
  let a = Sim.Rng.int rng accounts in
  let b = (a + 1 + Sim.Rng.int rng (accounts - 1)) mod accounts in
  Printf.sprintf "%d %d %d" a b (1 + Sim.Rng.int rng 10)

(* Read-session payload: one account id, answered with its balance. *)
let bank_read_payload rng ~accounts = string_of_int (Sim.Rng.int rng accounts)

type outcome = {
  seed : int;
  violations : Check.violation list;
  released : int;
  executed : int;
  crashes : int;
  restarts : int;
  epochs : int;
  entries_checked : int;
  acked : int;
  client_retries : int;
  busy_replies : int;
  parked : int;
  checkpoints : int;
  truncations : int;
  rebuilds : int;
  adds : int;
  removes : int;
  handoffs : int;
  ops_skipped : int;
  reads_acked : int;
  reads_served : int;
  reads_parked : int;
  reads_redirected : int;
  read_misses : int;
  read_audit_skipped : int;
      (* audit-eligible snapshot serves dropped after the per-replica
         read-audit cap (4096) filled: non-zero means the snapshot-read
         oracle saw a truncated sample of this run *)
  shards : int; (* 1 for a classic single-group run *)
  cross_committed : int;
  cross_aborted : int;
}

let ok o = o.violations = []

let pp_outcome fmt o =
  Format.fprintf fmt
    "seed %d: %s (released=%d executed=%d crashes=%d restarts=%d epochs=%d \
     entries=%d acked=%d retries=%d busy=%d parked=%d ckpts=%d truncs=%d \
     rebuilds=%d adds=%d removes=%d handoffs=%d skipped=%d)"
    o.seed
    (if ok o then "ok" else Printf.sprintf "%d VIOLATIONS" (List.length o.violations))
    o.released o.executed o.crashes o.restarts o.epochs o.entries_checked o.acked
    o.client_retries o.busy_replies o.parked o.checkpoints o.truncations
    o.rebuilds o.adds o.removes o.handoffs o.ops_skipped;
  if o.reads_acked + o.reads_served + o.reads_parked + o.reads_redirected > 0 then
    Format.fprintf fmt
      " (reads: acked=%d served=%d parked=%d redirected=%d misses=%d \
       audit_skipped=%d)"
      o.reads_acked o.reads_served o.reads_parked o.reads_redirected
      o.read_misses o.read_audit_skipped;
  if o.shards > 1 then
    Format.fprintf fmt " (shards=%d cross: committed=%d aborted=%d)" o.shards
      o.cross_committed o.cross_aborted;
  List.iter (fun v -> Format.fprintf fmt "@.  %a" Check.pp_violation v) o.violations

let chaos_costs =
  { Silo.Costs.default with Silo.Costs.txn_begin_ns = 50_000; abort_ns = 5_000 }

let run_seed ?(replicas = 3) ?(workers = 4) ?(clients = 8) ?(accounts = 48)
    ?(duration = 3 * Sim.Engine.s) ?(checkpoint_interval = 0)
    ?(history_warmup = 0) ?(ops = false) ?(spares = 2)
    ?(follower_reads = false) ?(read_clients = 4) ?(read_lease = 150 * ms)
    ?(wan_profile = "") ~seed () =
  let stopped = ref false in
  let read_clients = if follower_reads then read_clients else 0 in
  (* Rolling-operations mode keeps checkpointing on: joining learners
     bootstrap from the newest image + journal tail (the PR-6 path) and
     the truncation retention gate must prove it holds log for them. *)
  let checkpoint_interval =
    if ops && checkpoint_interval = 0 then 500 * ms else checkpoint_interval
  in
  let spares = if ops then spares else 0 in
  let cfg =
    {
      Config.default with
      Config.replicas;
      workers;
      cores = 2 * workers;
      batch_size = 50;
      costs = chaos_costs;
      physical_serialization = true;
      archive_entries = true;
      heartbeat_interval = 50 * ms;
      election_timeout = 300 * ms;
      clients = clients + read_clients;
      seed = Int64.of_int seed;
      follower_reads;
      read_lease;
      wan_profile;
      (* Checkpoint chaos: short retention (the floor is the election
         timeout) so truncation rounds actually fire inside a few virtual
         seconds, making crashes race in-progress checkpoints and
         recoveries race truncation. *)
      checkpoint_interval;
      checkpoint_retention = 300 * ms;
      spare_replicas = spares;
      min_members = (if ops then 2 else Config.default.Config.min_members);
    }
  in
  let oracle = Check.Oracle.create () in
  let crashes = ref 0 and restarts = ref 0 in
  let cluster =
    Cluster.create ~on_durable:(Check.Oracle.observe oracle) cfg
      (bank_app ~accounts ~stopped ())
  in
  let eng = Cluster.engine cluster in
  let net = Cluster.network cluster in
  (* Real client sessions drive the bank when [clients > 0]: they retry
     across crashes, partitions and elections, and the exactly-once check
     below audits their acks against the union durable log. *)
  let sessions =
    Array.init clients (fun cid ->
        let crng = Sim.Rng.split (Sim.Engine.rng eng) in
        Client.spawn net ~cfg ~cid ~stopped
          ~stats:(Cluster.client_stats cluster)
          ~gen:(fun () -> bank_payload crng ~accounts)
          ())
  in
  (* Read-only sessions ride the same network on the client ids above the
     write sessions. Their acks are balance reads — they must NOT feed
     the exactly-once audit (reads are idempotent by construction); the
     snapshot-read oracle audits them instead. *)
  let read_sessions =
    Array.init read_clients (fun j ->
        let crng = Sim.Rng.split (Sim.Engine.rng eng) in
        Client.spawn net ~cfg ~cid:(clients + j) ~stopped ~ro:true
          ~stats:(Cluster.client_read_stats cluster)
          ~gen:(fun () -> bank_read_payload crng ~accounts)
          ())
  in
  (* Continuous light checking: sealed watermarks must agree while faults
     are active (the oracle checks agreement on every commit already). *)
  let periodic_viols = ref [] in
  ignore
    (Sim.Engine.spawn eng ~name:"chaos-checker" (fun () ->
         while true do
           Sim.Engine.sleep (100 * ms);
           if !periodic_viols = [] then
             periodic_viols := Check.watermark_agreement cluster
         done));
  let violations =
    try
      (* Steady state first, then unleash the nemesis. The plan and the
         cluster share nothing but the seed, yet both are deterministic
         functions of it — a failing seed replays exactly. *)
      Cluster.run cluster ~duration:(300 * ms) ();
      (* Long-history scenarios: keep the cluster healthy for an extra
         warm-up so journals grow, checkpoints complete and truncation
         rounds fire *before* the first fault — the nemesis then crashes
         into a cluster whose logs are already compacted. *)
      if history_warmup > 0 then Cluster.run cluster ~duration:history_warmup ();
      let nrng = Sim.Rng.split (Sim.Engine.rng eng) in
      let plan =
        if ops then
          Sim.Fault.ops_plan nrng ~base:replicas ~spares
            ~min_members:cfg.Config.min_members ()
        else Sim.Fault.random_plan nrng ~nodes:replicas ()
      in
      Log.debug (fun m -> m "seed %d plan:@.%a" seed Sim.Fault.pp_plan plan);
      ignore
        (Sim.Fault.spawn net
           ~on_crash:(fun i ->
             incr crashes;
             Cluster.crash_replica cluster i)
           ~on_restart:(fun i ->
             incr restarts;
             Cluster.restart_replica cluster i)
           ~on_add:(fun i -> ignore (Cluster.add_replica cluster i))
           ~on_remove:(fun i -> ignore (Cluster.remove_replica cluster i))
           ~on_handoff:(fun i -> ignore (Cluster.handoff cluster ~target:i))
           ~on_step:(fun a -> Log.debug (fun m -> m "nemesis: %a" Sim.Fault.pp_action a))
           plan);
      Cluster.run cluster ~duration ();
      (* Quiesce: stop the workload, heal everything, revive stragglers the
         plan's own quiesce tail may have missed — but only nodes that are
         still part of the deployment: decommissioned voters and dark
         spare slots must stay down. *)
      stopped := true;
      Sim.Net.heal_all net;
      Sim.Net.clear_faults net;
      let in_deployment i =
        List.mem i (Cluster.members cluster)
        || List.mem i (Cluster.learners cluster)
      in
      Array.iter
        (fun r ->
          if in_deployment (Replica.id r) && not (Replica.is_alive r) then begin
            incr restarts;
            Cluster.restart_replica cluster (Replica.id r)
          end)
        (Cluster.replicas cluster);
      Cluster.run cluster ~duration:(500 * ms) ();
      (* Tainted ex-leaders hold speculative writes that were never
         released; rebuild them so the convergence check covers every
         replica. *)
      Array.iter
        (fun r ->
          if in_deployment (Replica.id r) && Replica.is_tainted r then begin
            incr restarts;
            Cluster.restart_replica cluster (Replica.id r)
          end)
        (Cluster.replicas cluster);
      (* Drain: heartbeat no-ops push the watermark past the last real
         transaction; followers finish replay. *)
      Cluster.run cluster ~duration:(2_500 * ms) ();
      let acked =
        Array.to_list sessions |> List.concat_map Client.acked_seqs
      in
      Check.Oracle.violations oracle
      @ !periodic_viols
      @ Check.agreement cluster
      @ Check.watermark_agreement cluster
      @ Check.membership_agreement cluster
      @ Check.convergence cluster
      @ Check.money cluster ~table:bank_table
          ~expected:(accounts * initial_balance)
      @ (if clients > 0 then Check.exactly_once cluster ~acked else [])
      @ (if follower_reads then Check.snapshot_reads cluster else [])
    with exn ->
      [
        {
          Check.check = "exception";
          detail = Printexc.to_string exn;
        };
      ]
  in
  let epochs =
    Array.fold_left
      (fun m r ->
        if Replica.is_alive r then max m (Paxos.Election.epoch (Replica.election r))
        else m)
      0 (Cluster.replicas cluster)
  in
  let sum f = Array.fold_left (fun acc c -> acc + f c) 0 sessions in
  let rsum f = Array.fold_left (fun acc c -> acc + f c) 0 read_sessions in
  {
    seed;
    violations;
    released = Cluster.released cluster;
    executed = Cluster.executed cluster;
    crashes = !crashes;
    restarts = !restarts;
    epochs;
    entries_checked = Check.Oracle.entries_checked oracle;
    acked = sum Client.acked_count;
    client_retries = sum Client.retries;
    busy_replies = sum Client.busy_replies;
    parked = sum Client.parked;
    checkpoints = Cluster.checkpoints_taken cluster;
    truncations = Cluster.truncation_rounds cluster;
    rebuilds = Cluster.auto_rebuilds cluster;
    adds = Cluster.adds cluster;
    removes = Cluster.removes cluster;
    handoffs = Cluster.handoffs cluster;
    ops_skipped = Cluster.ops_skipped cluster;
    reads_acked = rsum Client.acked_count;
    reads_served = Cluster.reads_served cluster;
    reads_parked = Cluster.reads_parked cluster;
    reads_redirected = Cluster.reads_redirected cluster;
    read_misses = Cluster.read_misses cluster;
    read_audit_skipped = Cluster.read_audit_skipped cluster;
    shards = 1;
    cross_committed = 0;
    cross_aborted = 0;
  }

(* ---- sharded chaos: crash coordinators and participants mid-2PC ----

   Each shard is a full cluster over its own partition of the account
   space; drivers run cross-shard transfers (one-sided halves committed
   through 2PC) at [cross_pct]. Every shard gets its own independent
   nemesis plan, so coordinator and participant shards crash, partition
   and fail over at uncorrelated moments — including between a prepare
   and its decision, and between a decision and its applies. The final
   audit layers the cross-shard oracle and *global* conservation on top
   of every per-shard check. Checkpointing stays off: truncation could
   drop decision-carrying slots the cross-shard oracle needs. *)
let run_sharded_seed ?(shards = 2) ?(cross_pct = 0.2) ?(replicas = 3)
    ?(workers = 4) ?(drivers = 6) ?(accounts_per_shard = 24)
    ?(duration = 2 * Sim.Engine.s) ~seed () =
  let accounts = shards * accounts_per_shard in
  let router = Router.ycsb ~keys:accounts ~shards in
  let cfg =
    {
      Config.default with
      Config.replicas;
      workers;
      cores = 2 * workers;
      batch_size = 50;
      costs = chaos_costs;
      physical_serialization = true;
      archive_entries = true;
      heartbeat_interval = 50 * ms;
      election_timeout = 300 * ms;
      clients = drivers;
      seed = Int64.of_int seed;
      shards;
      cross_pct;
    }
  in
  let oracles = Array.init shards (fun _ -> Check.Oracle.create ()) in
  let crashes = ref 0 and restarts = ref 0 in
  let dep =
    Shard.create
      ~on_durable:(fun ~shard -> Check.Oracle.observe oracles.(shard))
      cfg router
      (fun ~shard ->
        bank_app
          ~range:(Router.ycsb_key_range router ~keys:accounts shard)
          ~accounts ~stopped:(ref false) ())
      ~gen:(fun ~rng ~driver:_ () ->
        let sa = Sim.Rng.int rng shards in
        let lo, hi = Router.ycsb_key_range router ~keys:accounts sa in
        let a = lo + Sim.Rng.int rng (hi - lo + 1) in
        let amount = 1 + Sim.Rng.int rng 10 in
        if shards > 1 && Sim.Rng.float rng 1.0 < cross_pct then begin
          let sb =
            let x = Sim.Rng.int rng (shards - 1) in
            if x >= sa then x + 1 else x
          in
          let blo, bhi = Router.ycsb_key_range router ~keys:accounts sb in
          let b = blo + Sim.Rng.int rng (bhi - blo + 1) in
          Shard.Multi
            [
              (sa, Printf.sprintf "w %d %d" a amount);
              (sb, Printf.sprintf "c %d %d" b amount);
            ]
        end
        else
          let b =
            let x = lo + Sim.Rng.int rng (hi - lo) in
            if x >= a then x + 1 else x
          in
          Shard.Single (sa, Printf.sprintf "%d %d %d" a b amount))
  in
  let eng = Shard.engine dep in
  let clusters = Shard.clusters dep in
  let violations =
    try
      Shard.run dep ~duration:(300 * ms) ();
      (* One independent nemesis per shard, each a deterministic function
         of the run seed via engine-RNG splits. *)
      Array.iter
        (fun cluster ->
          let nrng = Sim.Rng.split (Sim.Engine.rng eng) in
          let plan = Sim.Fault.random_plan nrng ~nodes:replicas () in
          Log.debug (fun m -> m "seed %d plan:@.%a" seed Sim.Fault.pp_plan plan);
          ignore
            (Sim.Fault.spawn (Cluster.network cluster)
               ~on_crash:(fun i ->
                 incr crashes;
                 Cluster.crash_replica cluster i)
               ~on_restart:(fun i ->
                 incr restarts;
                 Cluster.restart_replica cluster i)
               ~on_step:(fun a ->
                 Log.debug (fun m -> m "nemesis: %a" Sim.Fault.pp_action a))
               plan))
        clusters;
      Shard.run dep ~duration ();
      (* Quiesce: freeze the drivers (each finishes its in-flight 2PC),
         heal every shard's network, revive stragglers and tainted
         ex-leaders, then drain replay everywhere. *)
      let drivers_idled = Shard.quiesce dep in
      Array.iter
        (fun cluster ->
          let net = Cluster.network cluster in
          Sim.Net.heal_all net;
          Sim.Net.clear_faults net;
          Array.iter
            (fun r ->
              if not (Replica.is_alive r) then begin
                incr restarts;
                Cluster.restart_replica cluster (Replica.id r)
              end)
            (Cluster.replicas cluster))
        clusters;
      Shard.run dep ~duration:(500 * ms) ();
      Array.iter
        (fun cluster ->
          Array.iter
            (fun r ->
              if Replica.is_tainted r then begin
                incr restarts;
                Cluster.restart_replica cluster (Replica.id r)
              end)
            (Cluster.replicas cluster))
        clusters;
      Shard.run dep ~duration:(2_500 * ms) ();
      let stuck =
        if Shard.quiesce ~timeout:(5 * Sim.Engine.s) dep then []
        else
          [
            Check.
              {
                check = "quiesce";
                detail = "a driver never finished its in-flight 2PC";
              };
          ]
      in
      ignore drivers_idled;
      let per_shard =
        Array.to_list
          (Array.mapi
             (fun s cluster ->
               Check.Oracle.violations oracles.(s)
               @ Check.agreement cluster
               @ Check.watermark_agreement cluster
               @ Check.convergence cluster
               @ Check.exactly_once cluster ~acked:(Shard.acked_seqs dep s))
             clusters)
        |> List.concat
      in
      stuck @ per_shard
      @ Check.cross_shard clusters
      @ Check.money_sharded clusters ~table:bank_table
          ~expected:(accounts * initial_balance)
    with exn ->
      [ { Check.check = "exception"; detail = Printexc.to_string exn } ]
  in
  let epochs =
    Array.fold_left
      (fun m cluster ->
        Array.fold_left
          (fun m r ->
            if Replica.is_alive r then
              max m (Paxos.Election.epoch (Replica.election r))
            else m)
          m (Cluster.replicas cluster))
      0 clusters
  in
  {
    seed;
    violations;
    released = Shard.released dep;
    executed =
      Array.fold_left (fun acc c -> acc + Cluster.executed c) 0 clusters;
    crashes = !crashes;
    restarts = !restarts;
    epochs;
    entries_checked =
      Array.fold_left
        (fun acc o -> acc + Check.Oracle.entries_checked o)
        0 oracles;
    acked =
      List.init shards (fun s -> List.length (Shard.acked_seqs dep s))
      |> List.fold_left ( + ) 0;
    client_retries = Shard.client_retries dep;
    busy_replies = 0;
    parked = 0;
    checkpoints = 0;
    truncations = 0;
    rebuilds = 0;
    adds = 0;
    removes = 0;
    handoffs = 0;
    ops_skipped = 0;
    reads_acked = 0;
    reads_served = 0;
    reads_parked = 0;
    reads_redirected = 0;
    read_misses = 0;
    read_audit_skipped =
      Array.fold_left
        (fun acc c -> acc + Cluster.read_audit_skipped c)
        0 clusters;
    shards;
    cross_committed = Shard.cross_committed dep;
    cross_aborted = Shard.cross_aborted dep;
  }

let run_sharded_seeds ?shards ?cross_pct ?replicas ?workers ?drivers
    ?accounts_per_shard ?duration ?(seed0 = 1) ?on_outcome ~seeds () =
  let outcomes = ref [] in
  for i = 0 to seeds - 1 do
    let o =
      run_sharded_seed ?shards ?cross_pct ?replicas ?workers ?drivers
        ?accounts_per_shard ?duration ~seed:(seed0 + i) ()
    in
    (match on_outcome with Some f -> f o | None -> ());
    outcomes := o :: !outcomes
  done;
  let outcomes = List.rev !outcomes in
  (outcomes, List.find_opt (fun o -> not (ok o)) outcomes)

let run_seeds ?replicas ?workers ?clients ?accounts ?duration ?checkpoint_interval
    ?history_warmup ?ops ?spares ?follower_reads ?read_clients ?read_lease
    ?wan_profile ?(seed0 = 1) ?on_outcome ~seeds () =
  let outcomes = ref [] in
  for i = 0 to seeds - 1 do
    let o =
      run_seed ?replicas ?workers ?clients ?accounts ?duration
        ?checkpoint_interval ?history_warmup ?ops ?spares ?follower_reads
        ?read_clients ?read_lease ?wan_profile ~seed:(seed0 + i) ()
    in
    (match on_outcome with Some f -> f o | None -> ());
    outcomes := o :: !outcomes
  done;
  let outcomes = List.rev !outcomes in
  (outcomes, List.find_opt (fun o -> not (ok o)) outcomes)
