(** One Rolis replica: execution layer + replication layer + replay layer
    on a single simulated machine (paper Fig. 4).

    Every replica runs the same processes; the election module decides the
    role:

    - {b workers} (leader only): generate and execute transactions to
      their speculative commit, append the write-set log to the worker's
      batcher, and queue a release record; with [Config.clients > 0] they
      instead serve queued client requests ({!Client}), consulting the
      per-session dedup table before execution and acking only at release;
    - {b batchers/streams}: one Paxos stream per worker ([Per_worker]) or
      a single shared stream (the strawman);
    - {b controller} (the paper's "+1 core"): every [watermark_interval]
      recomputes the watermark, releases transactions that fell below it
      (leader), and advances the replay epoch;
    - {b replay threads} (follower, and during promotion): apply durable
      entries below the watermark via per-key compare-and-swap;
    - {b promotion}: on winning an election the replica recovers all
      streams, seals the old epoch with per-stream no-ops, waits until its
      own replay drains the old epochs, compacts tombstones, and only then
      serves (paper §4.1). *)

type t

val create :
  Config.t ->
  Sim.Engine.t ->
  Paxos.Msg.t Sim.Net.t ->
  id:int ->
  app:App.t ->
  ?initial_leader:int ->
  ?membership:Paxos.Member.view * int ->
  ?learner:bool ->
  ?on_durable:(stream:int -> idx:int -> Store.Wire.entry -> unit) ->
  unit ->
  t
(** Builds the replica's state and spawns its processes. [app.setup] runs
    immediately on the fresh database. [on_durable] observes every
    durability commit (stream, index, entry) in commit order — the hook
    the invariant checker's oracle uses to cross-check agreement.
    [membership] seeds the voting view and its generation (default: the
    stable set [0 .. replicas-1] at generation 0 — spare pool slots are
    not voters); [learner] starts the replica non-voting and
    election-ineligible until a replicated configuration makes it a
    voter. *)

val id : t -> int

val view : t -> Paxos.Member.view
(** The voting view this replica currently believes in (accept-time
    adoption — latest configuration in its log, committed or not). *)

val mgen : t -> int
(** Membership generation of {!view}; monotone. *)

val members : t -> int list
(** Voters of {!view} (union of both configurations while joint). *)

val is_learner : t -> bool
(** Still non-voting: replicates and replays, never votes or stands. *)

val is_draining : t -> bool
(** A planned handoff is in progress: new client work is redirected at
    the designated successor while in-flight work finishes releasing. *)

val db : t -> Silo.Db.t
val cpu : t -> Sim.Cpu.t
val stats : t -> Stats.t

val trace : t -> Trace.t
(** The replica's {!Trace} recorder: pipeline-stage spans for sampled
    transactions (execute, serialize, batch-submit, replicate, watermark
    wait, release; replay on followers; client dispositions). *)

val election : t -> Paxos.Election.t
val streams : t -> Paxos.Stream.t array

val is_serving : t -> bool
(** Leader that has finished promotion and accepts transactions. *)

val served_epoch : t -> int
val is_tainted : t -> bool
(** Stepped down after serving: local state may contain speculative writes
    that were never released; a tainted replica must rejoin via
    {!Bootstrap} (paper §4.3). *)

val replay_epoch : t -> int
val replay_watermark : t -> int
val replay_backlog : t -> int
(** Durable entries queued but not yet replayed. O(1): maintained
    incrementally on enqueue/dequeue — admission control consults it on
    every client request. *)

val replay_backlog_scan : t -> int
(** The same count by folding over the replay queues (O(streams));
    reference implementation the tests assert {!replay_backlog}
    against. *)

val replay_frontier : t -> int
(** Minimum over streams of the last consumed entry timestamp — how far
    this replica has replayed (or skipped, for its own proposals) on the
    transaction-timestamp axis. [0] until every stream has consumed at
    least one entry. *)

val durable_frontier : t -> int
(** Highest entry timestamp this replica has seen reach quorum
    durability. [durable_frontier - replay_frontier] is the follower lag
    sampled into the [Replay_lag] stage histogram. *)

val read_pin : t -> int
(** The snapshot pin a read served right now would use: the release
    watermark on a serving leader, the minimum fully-applied frontier
    ([safe_ts]) on a follower. Monotone; reads never observe state above
    it. *)

val lease_valid : t -> bool
(** Whether this replica may serve snapshot reads right now: a serving
    leader with quorum contact, or a follower holding an unexpired
    freshness lease from the newest epoch it knows
    ([Config.follower_reads] only; always false otherwise). *)

val read_audits : t -> (int * (int * string * int) list) list
(** The deterministic sample of served reads kept for
    {!Check.snapshot_reads}: per audited read, its pin and every
    observation [(table id, key, observed version timestamp)] the read
    body made ([-1] = key absent at the pin). Oldest first; bounded
    (1-in-64 sampling, capped per replica). *)

val read_audit_skipped : t -> int
(** Audit-eligible serves dropped because the per-replica audit cap was
    reached. Non-zero means {!read_audits} is a truncated sample — the
    snapshot-read oracle covered a prefix of the run, not all of it. *)

val session_state : t -> cid:int -> (int * int) option
(** [(applied, released)] highest sequence numbers this replica knows for
    client session [cid] — from its own execution on a leader, from
    replay on a follower. [None] if the session is unknown. *)

val archived_entries : t -> Store.Wire.entry list
(** Every durable entry, in durability order, when the cluster was built
    with [archive_entries = true] (for {!Bootstrap}). *)

val journal : t -> (int * int * Store.Wire.entry) list
(** [(stream, idx, entry)] triples in durability order (requires
    [archive_entries]); the donor data for {!catch_up_from}. The absolute
    stream index keys checkpoint truncation — timestamps cannot, because
    leader-change no-op fill entries carry [ts = 0]. *)

val journal_length : t -> int

val journal_bytes : t -> int
(** Resident bytes of the archived journal, maintained incrementally —
    the quantity checkpoint truncation bounds (the `mem5` benchmark's
    unbounded-growth axis). *)

val truncated_entries : t -> int
(** Archived entries dropped by {!apply_truncation} so far. *)

val final_watermark : t -> epoch:int -> int option
(** The sealed final watermark of [epoch], once known on this replica. *)

val crash : t -> unit
(** Kill every process of this replica (crash-stop). The caller is
    responsible for [Sim.Net.crash]. *)

val is_alive : t -> bool

val catch_up_from : t -> donors:t list -> unit
(** Restart bootstrap: inject the per-stream {e union} of the donors'
    journals — durable entries only, so any alive replica is a safe
    donor — through the protocol commit path, rebuilding watermark /
    replay / journal state as if this replica had followed the streams
    from the start. The union matters: per-stream committed logs are
    prefixes of each other, but no single replica need hold the longest
    log of {e every} stream, and rebuilding from one donor could erase
    this replica's memory of a committed entry whose only other holder
    crashes next. The donors' accepted-but-uncommitted tails are merged
    in as {e accepted} state too: a survivor's accepted slot can be the
    only remaining copy of an entry committed at a since-crashed leader,
    and a rebuilt replica that lacks it could join a Prepare quorum that
    excludes that survivor. Entries committed after the snapshot arrive
    through the ordinary fetch path. Call on a freshly created replica,
    before the engine runs any of its events. *)

val salvage_protocol_state : t -> old:t -> unit
(** Voluntary rebuild of an {e alive} replica (a tainted ex-leader): only
    its database is suspect — the Paxos acceptor state is sound, and an
    accepted-but-uncommitted slot may be the last surviving copy of an
    entry committed at a since-dead leader. Grafts [old]'s accepted
    tails and granted vote onto the fresh replica. Call after
    {!catch_up_from}, before the engine runs. *)

val salvage_vote : t -> old:t -> unit
(** Carry only the granted vote of [old] onto this fresh replica — models
    persistent [votedFor]. Every restart path must call this (directly or
    via {!salvage_protocol_state}): a rejoining node that forgets its
    vote can grant two votes in one ballot, the removed-then-readded
    double-vote hazard. *)

(** {2 Membership change and planned handoff} *)

val propose_reconfig : t -> members:int list -> bool
(** Start a joint-consensus membership change toward voter set [members]
    (serving leader only; one change in flight; refused while draining).
    Commits the transitional C_old,new configuration first — durability
    then requires a majority of {e both} configurations — and follows up
    with the stable C_new once the joint stage is durable. A leader that
    commits its own removal hands off to the first remaining voter.
    Returns whether the change was started. *)

val begin_handoff : t -> target:int -> unit
(** Planned leader transfer: stop admitting client work (redirecting at
    [target]), drain the release queues (bounded by
    [Config.handoff_drain_timeout]), step down {e clean} — no taint; the
    database is exactly the replicated prefix — and grant [target]
    immediate candidacy with [Timeout_now], so the cluster never waits
    out an election timeout. A timed-out drain still transfers but takes
    the ordinary taint path; a transfer that elects no one resumes
    serving. *)

val set_learners : t -> int list -> unit
(** Register the learners every stream's truncation gate must retain log
    for (leader-side; see {!Paxos.Stream.set_learners}). *)

(** {2 Checkpoint-integrated recovery} *)

val last_checkpoint : t -> Checkpoint.replica_image option
(** The newest completed (and still-valid) fuzzy checkpoint, published
    for the cluster coordinator to persist. Followers only: a leader's
    database holds speculative above-watermark writes, and an image
    finishing after a mid-scan promotion or taint is discarded. *)

val checkpoints_taken : t -> int

val any_trunc_stalled : t -> bool
(** Some stream's log catch-up is wedged behind a peer's compaction
    floor ({!Paxos.Stream.trunc_stalled}); only a checkpoint rebuild
    ({!bootstrap_from_checkpoint}) can make progress. *)

val apply_truncation : t -> cover:int array -> unit
(** Truncate the archived journal up to the quorum-stable checkpoint
    frontier [cover] (per-stream absolute index, inclusive) and raise the
    streams' compaction floor so slot truncation may pass lagging peers.
    Driven by the cluster coordinator, which first harvests dedup
    evidence from the dropped entries. *)

val bootstrap_from_checkpoint :
  t -> ckpt:Checkpoint.replica_image -> donors:t list -> int
(** Checkpoint + journal-tail bootstrap (ARIES install-then-replay):
    install the image's rows, sessions, watermark history and frontiers,
    then inject only journal entries {e above} the image's cover from the
    donors' union. Every row and tail write lands through the
    strictly-newer [(epoch, ts)] CAS, so the overlap a fuzzy image has
    with the tail double-applies harmlessly. The modeled image-load time
    is paid as an election-ineligibility window. Returns the number of
    rows installed. Call on a freshly created replica, before the engine
    runs any of its events; compose with {!salvage_protocol_state} for
    voluntary rebuilds. *)
