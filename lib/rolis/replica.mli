(** One Rolis replica: execution layer + replication layer + replay layer
    on a single simulated machine (paper Fig. 4).

    Every replica runs the same processes; the election module decides the
    role:

    - {b workers} (leader only): generate and execute transactions to
      their speculative commit, append the write-set log to the worker's
      batcher, and queue a release record;
    - {b batchers/streams}: one Paxos stream per worker ([Per_worker]) or
      a single shared stream (the strawman);
    - {b controller} (the paper's "+1 core"): every [watermark_interval]
      recomputes the watermark, releases transactions that fell below it
      (leader), and advances the replay epoch;
    - {b replay threads} (follower, and during promotion): apply durable
      entries below the watermark via per-key compare-and-swap;
    - {b promotion}: on winning an election the replica recovers all
      streams, seals the old epoch with per-stream no-ops, waits until its
      own replay drains the old epochs, compacts tombstones, and only then
      serves (paper §4.1). *)

type t

val create :
  Config.t ->
  Sim.Engine.t ->
  Paxos.Msg.t Sim.Net.t ->
  id:int ->
  app:App.t ->
  ?initial_leader:int ->
  unit ->
  t
(** Builds the replica's state and spawns its processes. [app.setup] runs
    immediately on the fresh database. *)

val id : t -> int
val db : t -> Silo.Db.t
val cpu : t -> Sim.Cpu.t
val stats : t -> Stats.t
val election : t -> Paxos.Election.t
val streams : t -> Paxos.Stream.t array

val is_serving : t -> bool
(** Leader that has finished promotion and accepts transactions. *)

val served_epoch : t -> int
val is_tainted : t -> bool
(** Stepped down after serving: local state may contain speculative writes
    that were never released; a tainted replica must rejoin via
    {!Bootstrap} (paper §4.3). *)

val replay_epoch : t -> int
val replay_watermark : t -> int
val replay_backlog : t -> int
(** Durable entries queued but not yet replayed. *)

val archived_entries : t -> Store.Wire.entry list
(** Every durable entry, in durability order, when the cluster was built
    with [archive_entries = true] (for {!Bootstrap}). *)

val crash : t -> unit
(** Kill every process of this replica (crash-stop). The caller is
    responsible for [Sim.Net.crash]. *)

val is_alive : t -> bool
