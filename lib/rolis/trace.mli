(** Stage-level pipeline tracing.

    The paper's argument is a pipeline claim: execute, replicate, replay
    and release each stay off the critical path (Rolis §5-§6). {!Stats}
    only observes the ends of that pipeline; this module gives each
    replica eyes on the middle. A deterministic 1-in-N sample of
    transactions (see {!Config.t.trace_sample_interval}) records one
    {!span} per pipeline stage into bounded per-worker ring buffers, and
    feeds per-stage latency histograms in {!Stats} from which
    [stage_breakdown] summaries (and paper-Figure-15-style latency
    decompositions) are derived.

    Tracing performs no virtual-time operations — no sleeps, no CPU
    charges, no RNG draws — so enabling or disabling it cannot change
    simulated results: measured throughput and latency are bit-identical
    at any sampling rate. Its only cost is host-side bookkeeping.

    {2 Stage model}

    A sampled leader transaction moves through five consecutive stages,
    bounded by six timestamps, plus a derived end-to-end stage:

    - [Execute]: the worker starts the transaction body, through OCC
      commit.
    - [Serialize]: OCC commit through the per-transaction
      serialization/replication CPU charge (this implementation charges
      serialization at submit time, so [Serialize] precedes the batch
      wait).
    - [Batch_submit]: serialization done, until the batch containing the
      transaction flushes and its entry is proposed on the Paxos stream.
      Zero-width when this transaction itself filled the batch.
    - [Replicate_durable]: proposal until quorum durability.
    - [Under_watermark]: durable until the watermark passes the
      transaction and the release pass reaches it.
    - [Release]: the whole pipeline, execution start to release — the
      client-visible latency the other five stages decompose.

    Followers emit [Replay] spans (applying one replayed transaction).
    The client RPC layer emits zero-width [Redirect], [Busy] and [Cached]
    disposition events.

    On failover, a deposed leader's in-flight sampled transactions are
    flushed to the rings with [sp_dropped = true] (whatever stages
    completed, plus the stage that was in progress, truncated at the drop
    time); the pending table is left empty — spans are never leaked. *)

type stage =
  | Execute
  | Serialize
  | Batch_submit
  | Replicate_durable
  | Under_watermark
  | Release
  | Replay
  | Redirect
  | Busy
  | Cached
  | Deadline_flush
      (** adaptive batching: a batch hit its [target_batch_delay_ns]
          deadline and was flushed by the scheduled deadline event rather
          than by filling up (zero-width disposition event) *)
  | Replay_lag
      (** follower lag at one entry application: durable frontier minus
          replayed frontier on the transaction-timestamp axis — how far
          this replica's replay trails what is already durable *)
  | Client_park
      (** total ns one client request spent parked (retry limit reached,
          waiting out [client_park_interval] cycles) before finally
          resolving — the availability cost of an unreachable cluster,
          one histogram sample per resolved request *)
  | Client_redirect
      (** leader-chasing redirects ([Not_leader] replies) one client
          request absorbed before resolving — dimensionless count, one
          sample per resolved request *)
  | Read_serve
      (** dequeue-to-reply latency of one served snapshot read (virtual
          ns), one histogram sample per [Ok_read] *)
  | Read_staleness
      (** staleness of one served snapshot read: the replica's durable
          frontier minus the watermark pin it served at, on the
          transaction-timestamp axis (which rides virtual time) — how far
          behind the freshest durable state the read observed *)

val all_stages : stage list
val n_stages : int

val stage_index : stage -> int
(** Stable index in [0, n_stages), usable with {!Stats.note_stage}. *)

val stage_name : stage -> string
(** Lower-snake-case identifier, e.g. ["replicate_durable"]. *)

val stage_of_name : string -> stage option

type span = {
  sp_ts : int;  (** transaction timestamp; 0 for disposition events *)
  sp_worker : int;  (** worker id; -1 for replay/dispatcher events *)
  sp_stage : stage;
  sp_start : int;  (** virtual ns *)
  sp_end : int;  (** virtual ns; [>= sp_start] *)
  sp_dropped : bool;  (** speculative transaction dropped by failover *)
}

type t

val create :
  Sim.Engine.t ->
  stats:Stats.t ->
  workers:int ->
  sample_interval:int ->
  capacity:int ->
  t
(** [sample_interval = 0] disables tracing entirely (every call below is
    a cheap no-op); [n > 0] samples every [n]-th committed transaction
    per worker. [capacity] bounds each of the [workers + 1] ring buffers
    (the extra ring holds replay and disposition events).
    @raise Invalid_argument on negative interval or non-positive
    capacity. *)

val enabled : t -> bool

(** {2 Leader-side pipeline instrumentation} *)

type token
(** Handle to an in-flight sampled transaction, carried in the replica's
    release queue alongside the transaction's metadata. *)

val sample : t -> worker:int -> ts:int -> exec_start:int -> token option
(** Per-worker deterministic sampling decision at execution commit.
    [Some tok] for every [sample_interval]-th committed transaction of
    this worker; stamps the commit time and registers the transaction in
    the pending table. Call {e before} the batcher submit so the flush
    can observe the pending entry. *)

val note_serialized : t -> token -> unit
(** The submitting worker finished the serialization CPU charge. *)

val note_flushed : t -> ts:int -> unit
(** The batch containing [ts] flushed (entry proposed). No-op for
    unsampled [ts]. *)

val note_durable : t -> ts:int -> unit
(** The entry containing [ts] reached quorum durability. No-op for
    unsampled [ts]. *)

val has_pending : t -> bool
(** Fast guard for per-entry iteration on the durability path: followers
    (no pending sampled transactions) skip the per-transaction lookups. *)

val pending_count : t -> int

val note_released : t -> token -> unit
(** The watermark passed the transaction and the release pass acked it:
    emits the transaction's spans into its worker's ring and feeds
    {!Stats.note_stage}, then forgets the token. *)

val drop_all : t -> unit
(** Failover: the replica stopped serving and abandoned all speculative
    transactions. Every pending sampled transaction is emitted with
    [sp_dropped = true] and the pending table is cleared. Dropped spans
    do not feed the stage histograms. *)

(** {2 Follower and dispatcher instrumentation} *)

val sample_replay : t -> bool
(** Deterministic 1-in-N decision for replayed transactions. *)

val note_replay : t -> ts:int -> start:int -> stop:int -> unit
(** One replayed transaction was applied (guard with {!sample_replay}).
    Under bulk replay the span covers one whole entry. *)

val note_replay_lag : t -> frontier:int -> durable:int -> unit
(** One follower-lag sample (per applied entry, not 1-in-N-sampled): the
    replica has replayed up to timestamp [frontier] while [durable] is
    already durable cluster-wide. Feeds the [Replay_lag] stage histogram
    with [durable - frontier] (clamped at 0) and pushes the
    [frontier, durable] span into the replay ring. No-op when tracing is
    disabled, like every other stage recorder. *)

val note_read_serve : t -> start:int -> stop:int -> staleness:int -> unit
(** One snapshot read served: feeds the [Read_serve] histogram with
    [stop - start] (dequeue to reply) and the [Read_staleness] histogram
    with [staleness] (durable frontier minus pin), both clamped at 0.
    Histograms record every serve — they back the [reads:] diagnostics
    line and the bench staleness metric — while the ring sample follows
    the 1-in-N disposition sampling. *)

val note_disposition : t -> stage -> unit
(** A [Redirect], [Busy] or [Cached] client disposition, or a
    [Deadline_flush] batcher event (zero-width event, sampled 1-in-N). *)

(** {2 Reading the rings} *)

val spans : t -> span list
(** Contents of every ring, per ring oldest to newest (worker rings in
    worker order, then the shared replay/disposition ring). Bounded by
    [(workers + 1) * capacity]. *)
