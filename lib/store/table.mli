(** A named table: an index of {!Record.t} plus byte accounting.

    Tables expose records, not values: the OCC engine and the replay path
    both work directly on the record's version and lock fields. Scans skip
    tombstoned records.

    Two index representations live behind this interface. The default is
    the ordered B+tree; point-lookup-only tables (YCSB's usertable,
    TPC-C's item) can instead be declared {!Hash} — O(1) probes, no
    ordering, and therefore no range operations: {!scan}, {!scan_all},
    {!min_live}, {!max_live} and {!tree} raise [Invalid_argument] on a
    hash table. {!iter} visits keys in ascending order for {e both}
    representations (the hash arm sorts), so checkpointing and
    consistency sweeps are representation-independent and deterministic
    across compiler releases. *)

type t

type repr = Btree | Hash  (** index representation, fixed at creation *)

val create : ?repr:repr -> id:int -> name:string -> unit -> t
(** [repr] defaults to [Btree], the behavior-compatible representation. *)

val id : t -> int
val name : t -> string

val repr : t -> repr

val get : t -> string -> Record.t option
(** The record for [key], including tombstones ([deleted = true]). *)

val get_live : t -> string -> Record.t option
(** Like {!get} but [None] for tombstones. *)

val insert : t -> string -> Record.t -> unit
(** Bind [key] to a fresh record. @raise Invalid_argument if present
    (including as a tombstone); callers decide how to revive tombstones. *)

val remove_phys : t -> string -> unit
(** Physically drop the key (leader-side delete). No-op if absent. *)

val scan : t -> lo:string -> hi:string -> ?limit:int -> unit -> (string * Record.t) list
(** Live records with [lo <= key < hi], ascending, at most [limit]. *)

val scan_all : t -> lo:string -> hi:string -> (string * Record.t) list
(** Like {!scan} but including tombstones — used by replay-consistency
    checks and bootstrap. *)

val min_live : t -> lo:string -> hi:string -> (string * Record.t) option
(** First live record in the range (TPC-C delivery's oldest-order probe). *)

val max_live : t -> lo:string -> hi:string -> (string * Record.t) option
(** Last live record in [[lo, hi)] (TPC-C's latest-order probe). *)

val count : t -> int
(** Number of physical records, tombstones included. O(1). *)

val bytes : t -> int
(** Approximate resident bytes, maintained incrementally. *)

val account_growth : t -> int -> unit
(** Adjust the byte estimate (called when a record's value is replaced by
    one of a different size). *)

val compact : t -> int
(** Physically drop all tombstones; returns how many were dropped. Used
    when a follower is promoted to leader. *)

val iter : t -> (string -> Record.t -> unit) -> unit
(** Visit every record (tombstones included) in ascending key order,
    whatever the representation. *)

val tree : t -> Record.t Btree.t
(** Escape hatch for tests and bootstrap. @raise Invalid_argument on a
    hash-indexed table — dispatch through {!apply_sorted_run} instead. *)

val count_sorted_run : t -> (string * 'b) list -> Btree.bulk_counts
(** Predict the index work of {!apply_sorted_run} over a strictly
    ascending run without mutating: {!Btree.count_sorted} for trees, one
    descent (and no steps) per key for hash tables. *)

val apply_sorted_run :
  t ->
  (string * 'b) list ->
  f:(string -> 'b -> Record.t option -> Record.t option) ->
  Btree.bulk_counts
(** Representation-dispatched {!Btree.apply_sorted}: a single cursor
    sweep over a B-tree, independent point probes over a hash index.
    [f]'s contract is exactly {!Btree.apply_sorted}'s.
    @raise Invalid_argument if keys are not strictly ascending. *)
