(** A named table: a B+tree of {!Record.t} plus byte accounting.

    Tables expose records, not values: the OCC engine and the replay path
    both work directly on the record's version and lock fields. Scans skip
    tombstoned records. *)

type t

val create : id:int -> name:string -> t
val id : t -> int
val name : t -> string

val get : t -> string -> Record.t option
(** The record for [key], including tombstones ([deleted = true]). *)

val get_live : t -> string -> Record.t option
(** Like {!get} but [None] for tombstones. *)

val insert : t -> string -> Record.t -> unit
(** Bind [key] to a fresh record. @raise Invalid_argument if present
    (including as a tombstone); callers decide how to revive tombstones. *)

val remove_phys : t -> string -> unit
(** Physically drop the key (leader-side delete). No-op if absent. *)

val scan : t -> lo:string -> hi:string -> ?limit:int -> unit -> (string * Record.t) list
(** Live records with [lo <= key < hi], ascending, at most [limit]. *)

val scan_all : t -> lo:string -> hi:string -> (string * Record.t) list
(** Like {!scan} but including tombstones — used by replay-consistency
    checks and bootstrap. *)

val min_live : t -> lo:string -> hi:string -> (string * Record.t) option
(** First live record in the range (TPC-C delivery's oldest-order probe). *)

val max_live : t -> lo:string -> hi:string -> (string * Record.t) option
(** Last live record in [[lo, hi)] (TPC-C's latest-order probe). *)

val count : t -> int
(** Number of physical records, tombstones included. O(1). *)

val bytes : t -> int
(** Approximate resident bytes, maintained incrementally. *)

val account_growth : t -> int -> unit
(** Adjust the byte estimate (called when a record's value is replaced by
    one of a different size). *)

val compact : t -> int
(** Physically drop all tombstones; returns how many were dropped. Used
    when a follower is promoted to leader. *)

val iter : t -> (string -> Record.t -> unit) -> unit
val tree : t -> Record.t Btree.t
(** Escape hatch for tests and bootstrap. *)
