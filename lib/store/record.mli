(** Versioned record — the unit of concurrency control and replay.

    Each key in a table maps to one [Record.t] carrying:

    - the current value (or a tombstone after deletion);
    - the [(epoch, ts)] pair of its last writer, used by follower replay's
      compare-and-swap (paper §3.4): an apply only wins if its
      [(epoch, ts)] is strictly newer;
    - an OCC [version] counter bumped on every install, used by read-set
      validation on the leader;
    - a write-lock owner field (Silo locks the write-set at commit); and
    - a bounded prior-version slot ([snap_*]) holding the newest
      overwritten version still above the snapshot read-pin floor, so
      read-only transactions pinned at a watermark can read below
      concurrent replay installs. *)

type t = {
  mutable value : string;
  mutable deleted : bool;
  mutable epoch : int;
  mutable ts : int;
  mutable version : int;
  mutable locker : int;  (** worker id holding the write lock; -1 = free *)
  mutable snap_value : string;  (** prior version retained for snapshot reads *)
  mutable snap_deleted : bool;
  mutable snap_epoch : int;
  mutable snap_ts : int;  (** stamp of the retained version; -1 = slot empty *)
}

val make : ?epoch:int -> ?ts:int -> string -> t

val is_locked : t -> bool
val try_lock : t -> worker:int -> bool
(** Idempotent for the same worker (re-entrant within one commit). *)

val unlock : t -> worker:int -> unit
(** @raise Invalid_argument if [worker] does not hold the lock. *)

val install : t -> epoch:int -> ts:int -> value:string option -> unit
(** Leader-side install at commit: set value ([None] = tombstone), stamp
    [(epoch, ts)], bump [version]. *)

val cas_apply : t -> epoch:int -> ts:int -> value:string option -> bool
(** Replay-side apply: install only if [(epoch, ts)] is strictly newer
    than the record's current stamp; returns whether it won. Idempotent:
    re-applying the same stamped write is a no-op. *)

val install_retain :
  t -> floor:int -> epoch:int -> ts:int -> value:string option -> unit
(** [install], but first retains the outgoing version in the
    prior-version slot when a snapshot read pinned at or above [floor]
    could still need it ([floor < ts]); otherwise the slot is reclaimed.
    The slot never chains — it holds at most one prior version. *)

val cas_apply_retain :
  t -> floor:int -> epoch:int -> ts:int -> value:string option -> bool
(** [cas_apply] with the same retention discipline as [install_retain].
    Additionally, a {e rejected} write whose [ts] falls strictly between
    the slot's and the record's is parked in the slot: parallel
    per-stream replay can deliver a ts-older write after a ts-newer one
    already landed, and that loser is exactly the newest version below
    the current stamp — what a read pinned between the two must see. *)

val snap_clear : t -> unit
(** Empty the prior-version slot (reclaims its bytes). *)

type snapshot = Visible of string option * int | Miss

val read_at : t -> pin:int -> snapshot
(** Version visible at watermark [pin], with its stamp: the current
    version if [ts <= pin], else the retained prior version if it is
    itself at or below the pin, else [Visible (None, -1)] when the key
    did not exist at the pin, and [Miss] when the prior version has
    already been overwritten past the pin (the reader must retry at a
    fresher pin). Never returns torn state: each branch returns one
    atomically-stamped version. *)

val newer : epoch:int -> ts:int -> than:t -> bool
val byte_size : key:string -> t -> int
(** Approximate memory footprint for accounting, including the
    prior-version slot while it is occupied. *)
