(** Versioned record — the unit of concurrency control and replay.

    Each key in a table maps to one [Record.t] carrying:

    - the current value (or a tombstone after deletion);
    - the [(epoch, ts)] pair of its last writer, used by follower replay's
      compare-and-swap (paper §3.4): an apply only wins if its
      [(epoch, ts)] is strictly newer;
    - an OCC [version] counter bumped on every install, used by read-set
      validation on the leader; and
    - a write-lock owner field (Silo locks the write-set at commit). *)

type t = {
  mutable value : string;
  mutable deleted : bool;
  mutable epoch : int;
  mutable ts : int;
  mutable version : int;
  mutable locker : int;  (** worker id holding the write lock; -1 = free *)
}

val make : ?epoch:int -> ?ts:int -> string -> t

val is_locked : t -> bool
val try_lock : t -> worker:int -> bool
(** Idempotent for the same worker (re-entrant within one commit). *)

val unlock : t -> worker:int -> unit
(** @raise Invalid_argument if [worker] does not hold the lock. *)

val install : t -> epoch:int -> ts:int -> value:string option -> unit
(** Leader-side install at commit: set value ([None] = tombstone), stamp
    [(epoch, ts)], bump [version]. *)

val cas_apply : t -> epoch:int -> ts:int -> value:string option -> bool
(** Replay-side apply: install only if [(epoch, ts)] is strictly newer
    than the record's current stamp; returns whether it won. Idempotent:
    re-applying the same stamped write is a no-op. *)

val newer : epoch:int -> ts:int -> than:t -> bool
val byte_size : key:string -> t -> int
(** Approximate memory footprint for accounting. *)
