(* Branching factors. Non-root leaves hold [min_leaf, max_leaf] entries;
   non-root internal nodes hold [min_child, max_child] children. Nodes use
   plain arrays rebuilt on modification: nodes are small (<= 32 slots), so
   copying beats the bookkeeping of in-place shifting. *)
let max_leaf = 32
let min_leaf = max_leaf / 2
let max_child = 32
let min_child = max_child / 2

type 'a leaf = {
  mutable keys : string array;
  mutable vals : 'a array;
  mutable next : 'a leaf option;
}

type 'a node = Leaf of 'a leaf | Node of 'a inner

and 'a inner = {
  mutable seps : string array; (* length = Array.length kids - 1 *)
  mutable kids : 'a node array;
}

type 'a t = { mutable root : 'a node; mutable size : int }

let create () = { root = Leaf { keys = [||]; vals = [||]; next = None }; size = 0 }
let length t = t.size
let is_empty t = t.size = 0

(* ---- array helpers ---- *)

let array_insert a i x =
  let n = Array.length a in
  let b = Array.make (n + 1) x in
  Array.blit a 0 b 0 i;
  Array.blit a i b (i + 1) (n - i);
  b

let array_remove a i =
  let n = Array.length a in
  let b = Array.sub a 0 (n - 1) in
  Array.blit a (i + 1) b i (n - 1 - i);
  b

(* Binary search: [Ok i] if [keys.(i) = k], otherwise [Error i] where [i]
   is the insertion point. *)
let bsearch keys k =
  let lo = ref 0 and hi = ref (Array.length keys) in
  let found = ref (-1) in
  while !found < 0 && !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let c = compare k keys.(mid) in
    if c = 0 then found := mid else if c < 0 then hi := mid else lo := mid + 1
  done;
  if !found >= 0 then Ok !found else Error !lo

(* Index of the child to descend into: subtree [i] holds keys [k] with
   [seps.(i-1) <= k < seps.(i)]. *)
let child_index n k =
  let nseps = Array.length n.seps in
  let i = ref 0 in
  while !i < nseps && compare k n.seps.(!i) >= 0 do
    incr i
  done;
  !i

(* ---- find ---- *)

let rec find_node node k =
  match node with
  | Leaf l -> ( match bsearch l.keys k with Ok i -> Some l.vals.(i) | Error _ -> None)
  | Node n -> find_node n.kids.(child_index n k) k

let find t k = find_node t.root k
let mem t k = find t k <> None

(* ---- insert ---- *)

type 'a split = (string * 'a node) option

exception Duplicate

(* [guard = true] refuses to clobber an existing binding: the exception
   escapes before any node is touched, so a failed guarded insert leaves
   the tree bit-identical — no insert-then-undo dance in callers. *)
let rec ins ~guard node k v : 'a option * 'a split =
  match node with
  | Leaf l -> (
      match bsearch l.keys k with
      | Ok i ->
          if guard then raise_notrace Duplicate;
          let prev = l.vals.(i) in
          l.vals.(i) <- v;
          (Some prev, None)
      | Error i ->
          l.keys <- array_insert l.keys i k;
          l.vals <- array_insert l.vals i v;
          if Array.length l.keys <= max_leaf then (None, None)
          else begin
            let n = Array.length l.keys in
            let h = n / 2 in
            let right =
              {
                keys = Array.sub l.keys h (n - h);
                vals = Array.sub l.vals h (n - h);
                next = l.next;
              }
            in
            l.keys <- Array.sub l.keys 0 h;
            l.vals <- Array.sub l.vals 0 h;
            l.next <- Some right;
            (None, Some (right.keys.(0), Leaf right))
          end)
  | Node n -> (
      let i = child_index n k in
      let prev, split = ins ~guard n.kids.(i) k v in
      match split with
      | None -> (prev, None)
      | Some (sep, right) ->
          n.seps <- array_insert n.seps i sep;
          n.kids <- array_insert n.kids (i + 1) right;
          if Array.length n.kids <= max_child then (prev, None)
          else begin
            let m = Array.length n.kids in
            let h = m / 2 in
            let promoted = n.seps.(h - 1) in
            let right_node =
              {
                seps = Array.sub n.seps h (m - 1 - h);
                kids = Array.sub n.kids h (m - h);
              }
            in
            n.seps <- Array.sub n.seps 0 (h - 1);
            n.kids <- Array.sub n.kids 0 h;
            (prev, Some (promoted, Node right_node))
          end)

let root_split t = function
  | Some (sep, right) -> t.root <- Node { seps = [| sep |]; kids = [| t.root; right |] }
  | None -> ()

let insert t k v =
  let prev, split = ins ~guard:false t.root k v in
  root_split t split;
  if prev = None then t.size <- t.size + 1;
  prev

let insert_if_absent t k v =
  match ins ~guard:true t.root k v with
  | exception Duplicate -> false
  | _, split ->
      root_split t split;
      t.size <- t.size + 1;
      true

(* ---- delete ---- *)

let node_underflows = function
  | Leaf l -> Array.length l.keys < min_leaf
  | Node n -> Array.length n.kids < min_child

(* Repair an underfull child [i] of [n] by borrowing from or merging with
   a sibling. Separators are maintained so that
   max(subtree i) < seps.(i) <= min(subtree i+1). *)
let fix_child n i =
  let borrow_from_left i =
    match (n.kids.(i - 1), n.kids.(i)) with
    | Leaf left, Leaf cur ->
        let j = Array.length left.keys - 1 in
        let k = left.keys.(j) and v = left.vals.(j) in
        left.keys <- array_remove left.keys j;
        left.vals <- array_remove left.vals j;
        cur.keys <- array_insert cur.keys 0 k;
        cur.vals <- array_insert cur.vals 0 v;
        n.seps.(i - 1) <- k
    | Node left, Node cur ->
        let j = Array.length left.kids - 1 in
        let moved = left.kids.(j) in
        let moved_sep = left.seps.(j - 1) in
        left.kids <- array_remove left.kids j;
        left.seps <- array_remove left.seps (j - 1);
        cur.kids <- array_insert cur.kids 0 moved;
        cur.seps <- array_insert cur.seps 0 n.seps.(i - 1);
        n.seps.(i - 1) <- moved_sep
    | _ -> assert false (* siblings are always the same kind *)
  in
  let borrow_from_right i =
    match (n.kids.(i), n.kids.(i + 1)) with
    | Leaf cur, Leaf right ->
        let k = right.keys.(0) and v = right.vals.(0) in
        right.keys <- array_remove right.keys 0;
        right.vals <- array_remove right.vals 0;
        cur.keys <- array_insert cur.keys (Array.length cur.keys) k;
        cur.vals <- array_insert cur.vals (Array.length cur.vals) v;
        n.seps.(i) <- right.keys.(0)
    | Node cur, Node right ->
        let moved = right.kids.(0) in
        let moved_sep = right.seps.(0) in
        right.kids <- array_remove right.kids 0;
        right.seps <- array_remove right.seps 0;
        cur.kids <- array_insert cur.kids (Array.length cur.kids) moved;
        cur.seps <- array_insert cur.seps (Array.length cur.seps) n.seps.(i);
        n.seps.(i) <- moved_sep
    | _ -> assert false
  in
  (* Merge child [i+1] into child [i] and drop separator [i]. *)
  let merge i =
    (match (n.kids.(i), n.kids.(i + 1)) with
    | Leaf left, Leaf right ->
        left.keys <- Array.append left.keys right.keys;
        left.vals <- Array.append left.vals right.vals;
        left.next <- right.next
    | Node left, Node right ->
        left.seps <- Array.concat [ left.seps; [| n.seps.(i) |]; right.seps ];
        left.kids <- Array.append left.kids right.kids
    | _ -> assert false);
    n.seps <- array_remove n.seps i;
    n.kids <- array_remove n.kids (i + 1)
  in
  let has_spare = function
    | Leaf l -> Array.length l.keys > min_leaf
    | Node m -> Array.length m.kids > min_child
  in
  if node_underflows n.kids.(i) then begin
    if i > 0 && has_spare n.kids.(i - 1) then borrow_from_left i
    else if i < Array.length n.kids - 1 && has_spare n.kids.(i + 1) then
      borrow_from_right i
    else if i > 0 then merge (i - 1)
    else merge i
  end

let rec del node k : 'a option =
  match node with
  | Leaf l -> (
      match bsearch l.keys k with
      | Ok i ->
          let v = l.vals.(i) in
          l.keys <- array_remove l.keys i;
          l.vals <- array_remove l.vals i;
          Some v
      | Error _ -> None)
  | Node n ->
      let i = child_index n k in
      let removed = del n.kids.(i) k in
      if removed <> None then fix_child n i;
      removed

let remove t k =
  let removed = del t.root k in
  (match removed with
  | Some _ -> (
      t.size <- t.size - 1;
      match t.root with
      | Node n when Array.length n.kids = 1 -> t.root <- n.kids.(0)
      | Node _ | Leaf _ -> ())
  | None -> ());
  removed

(* ---- ordered access ---- *)

let rec leftmost_leaf = function Leaf l -> l | Node n -> leftmost_leaf n.kids.(0)

let rec rightmost_leaf = function
  | Leaf l -> l
  | Node n -> rightmost_leaf n.kids.(Array.length n.kids - 1)

let min_binding t =
  let l = leftmost_leaf t.root in
  if Array.length l.keys = 0 then None else Some (l.keys.(0), l.vals.(0))

let max_binding t =
  let l = rightmost_leaf t.root in
  let n = Array.length l.keys in
  if n = 0 then None else Some (l.keys.(n - 1), l.vals.(n - 1))

(* Leaf that would contain [k], i.e. the leaf reached by descent. *)
let rec seek_leaf node k =
  match node with Leaf l -> l | Node n -> seek_leaf n.kids.(child_index n k) k

(* ---- read cursor ---- *)

type 'a cursor = {
  c_tree : 'a t;
  mutable c_leaf : 'a leaf option;
  mutable c_idx : int;
}

let cursor t = { c_tree = t; c_leaf = None; c_idx = 0 }

(* Hop to the next leaf when the index ran off the end. One hop suffices:
   only the root leaf can be empty, and it has no successor. *)
let rec cursor_norm c =
  match c.c_leaf with
  | Some l when c.c_idx >= Array.length l.keys ->
      c.c_leaf <- l.next;
      c.c_idx <- 0;
      cursor_norm c
  | Some _ | None -> ()

let seek c k =
  let l = seek_leaf c.c_tree.root k in
  c.c_leaf <- Some l;
  c.c_idx <- (match bsearch l.keys k with Ok i -> i | Error i -> i);
  cursor_norm c

let current c =
  match c.c_leaf with
  | Some l when c.c_idx < Array.length l.keys -> Some (l.keys.(c.c_idx), l.vals.(c.c_idx))
  | Some _ | None -> None

let advance c =
  match c.c_leaf with
  | None -> ()
  | Some _ ->
      c.c_idx <- c.c_idx + 1;
      cursor_norm c

(* ---- sorted bulk apply (the follower-replay fast path) ---- *)

type bulk_counts = { descents : int; steps : int }

(* Descent that also returns the leaf's exclusive upper bound from the
   separator chain. The bound — not the next leaf's first key, which can
   drift above the separator after deletions — decides whether the next
   ascending key still belongs to this leaf. *)
let rec seek_leaf_hi node k hi =
  match node with
  | Leaf l -> (l, hi)
  | Node n ->
      let i = child_index n k in
      let hi = if i < Array.length n.seps then Some n.seps.(i) else hi in
      seek_leaf_hi n.kids.(i) k hi

let apply_sorted t kvs ~f =
  let descents = ref 0 and steps = ref 0 in
  (* Cached descent target: the current leaf plus its key-space bound.
     While ascending keys stay below the bound they reuse the leaf (a
     "step"); crossing it or splitting the leaf forces a fresh descent. *)
  let cached = ref None in
  let last = ref None in
  List.iter
    (fun (k, x) ->
      (match !last with
      | Some pk when compare pk k >= 0 ->
          invalid_arg "Btree.apply_sorted: keys must be strictly ascending"
      | Some _ | None -> ());
      last := Some k;
      let l, _hi =
        match !cached with
        | Some ((_, hi) as lh)
          when match hi with None -> true | Some h -> compare k h < 0 ->
            incr steps;
            lh
        | Some _ | None ->
            incr descents;
            let lh = seek_leaf_hi t.root k None in
            cached := Some lh;
            lh
      in
      match bsearch l.keys k with
      | Ok i -> (
          match f k x (Some l.vals.(i)) with
          | Some v -> l.vals.(i) <- v
          | None -> ())
      | Error i -> (
          match f k x None with
          | None -> ()
          | Some v ->
              if Array.length l.keys < max_leaf then begin
                l.keys <- array_insert l.keys i k;
                l.vals <- array_insert l.vals i v;
                t.size <- t.size + 1
              end
              else begin
                (* Full leaf: route through the rooted insert, which
                   handles the split (and any cascading parent splits).
                   The cached leaf now covers only half its range —
                   invalidate it and charge the extra descent. *)
                cached := None;
                incr descents;
                ignore (insert t k v)
              end))
    kvs;
  { descents = !descents; steps = !steps }

(* Read-only twin of [apply_sorted] for the replay decision pattern —
   present keys are mutated in place (no structural change), absent keys
   are always installed. It predicts the sweep's descent/step charges
   against the tree's current shape, so a cost model can be charged
   *before* the mutating sweep runs. The cached leaf carries a virtual
   occupancy (real key count plus pending inserts); a virtual split
   charges the rooted insert's extra descent, forces the next key to
   re-descend (the apply path invalidates its cache), and resumes with
   the post-split right half's occupancy — the half an ascending run
   keeps appending into. Keys that land in the left half after a split
   can trade a step for a descent versus the live sweep; the drift is at
   most one charge per split. *)
let count_sorted t kvs =
  let descents = ref 0 and steps = ref 0 in
  let cached = ref None in
  let vfill = ref 0 in
  let redescend = ref false in
  let last = ref None in
  List.iter
    (fun (k, _) ->
      (match !last with
      | Some pk when compare pk k >= 0 ->
          invalid_arg "Btree.count_sorted: keys must be strictly ascending"
      | Some _ | None -> ());
      last := Some k;
      let l =
        match !cached with
        | Some (l, hi)
          when match hi with None -> true | Some h -> compare k h < 0 ->
            if !redescend then begin
              redescend := false;
              incr descents
            end
            else incr steps;
            l
        | Some _ | None ->
            incr descents;
            let ((l, _) as lh) = seek_leaf_hi t.root k None in
            cached := Some lh;
            vfill := Array.length l.keys;
            redescend := false;
            l
      in
      match bsearch l.keys k with
      | Ok _ -> ()
      | Error _ ->
          if !vfill < max_leaf then incr vfill
          else begin
            incr descents;
            redescend := true;
            vfill := max_leaf + 1 - ((max_leaf + 1) / 2)
          end)
    kvs;
  { descents = !descents; steps = !steps }

let iter_from t k f =
  let start = seek_leaf t.root k in
  let pos = match bsearch start.keys k with Ok i -> i | Error i -> i in
  let rec walk (l : 'a leaf) i =
    if i >= Array.length l.keys then
      match l.next with None -> () | Some nl -> walk nl 0
    else if f l.keys.(i) l.vals.(i) then walk l (i + 1)
  in
  walk start pos

(* Largest binding with key < k: descend right-biased, backtracking to the
   nearest left sibling subtree when a child has nothing below [k]. *)
let find_last_lt t k =
  let rec descend node =
    match node with
    | Leaf l ->
        let i = match bsearch l.keys k with Ok i -> i | Error i -> i in
        if i = 0 then None else Some (l.keys.(i - 1), l.vals.(i - 1))
    | Node n ->
        let i = child_index n k in
        let rec try_child j =
          if j < 0 then None
          else
            match descend n.kids.(j) with
            | Some _ as r -> r
            | None -> try_child (j - 1)
        in
        try_child i
  in
  descend t.root

let find_first_geq t k =
  let result = ref None in
  iter_from t k (fun key v ->
      result := Some (key, v);
      false);
  !result

let fold_range t ~lo ~hi ~init ~f =
  let acc = ref init in
  iter_from t lo (fun k v ->
      if compare k hi >= 0 then false
      else begin
        acc := f !acc k v;
        true
      end);
  !acc

let iter t f =
  let rec walk = function
    | None -> ()
    | Some (l : 'a leaf) ->
        for i = 0 to Array.length l.keys - 1 do
          f l.keys.(i) l.vals.(i)
        done;
        walk l.next
  in
  walk (Some (leftmost_leaf t.root))

let to_list t =
  let acc = ref [] in
  iter t (fun k v -> acc := (k, v) :: !acc);
  List.rev !acc

(* ---- invariant checking (tests) ---- *)

let check_invariants t =
  let fail fmt = Printf.ksprintf failwith fmt in
  let check_sorted keys ctx =
    for i = 1 to Array.length keys - 1 do
      if compare keys.(i - 1) keys.(i) >= 0 then fail "%s: keys not strictly sorted" ctx
    done
  in
  let in_bounds k lo hi =
    (match lo with Some l -> compare k l >= 0 | None -> true)
    && match hi with Some h -> compare k h < 0 | None -> true
  in
  let count = ref 0 in
  let leaves = ref [] in
  let rec walk node ~is_root ~lo ~hi =
    match node with
    | Leaf l ->
        check_sorted l.keys "leaf";
        if (not is_root) && Array.length l.keys < min_leaf then fail "leaf underflow";
        if Array.length l.keys > max_leaf then fail "leaf overflow";
        Array.iter
          (fun k -> if not (in_bounds k lo hi) then fail "leaf key out of bounds")
          l.keys;
        count := !count + Array.length l.keys;
        leaves := l :: !leaves
    | Node n ->
        let nk = Array.length n.kids in
        if Array.length n.seps <> nk - 1 then fail "separator count mismatch";
        if (not is_root) && nk < min_child then fail "internal underflow";
        if nk > max_child then fail "internal overflow";
        if is_root && nk < 2 then fail "internal root with < 2 children";
        check_sorted n.seps "inner";
        Array.iter
          (fun s -> if not (in_bounds s lo hi) then fail "separator out of bounds")
          n.seps;
        for i = 0 to nk - 1 do
          let clo = if i = 0 then lo else Some n.seps.(i - 1) in
          let chi = if i = nk - 1 then hi else Some n.seps.(i) in
          walk n.kids.(i) ~is_root:false ~lo:clo ~hi:chi
        done
  in
  walk t.root ~is_root:true ~lo:None ~hi:None;
  if !count <> t.size then fail "size mismatch: counted %d, recorded %d" !count t.size;
  (* The leaf chain must visit exactly the in-order leaves. *)
  let in_order = List.rev !leaves in
  let rec chain = function
    | [] -> ()
    | [ (last : 'a leaf) ] -> if last.next <> None then fail "dangling leaf chain tail"
    | a :: (b :: _ as rest) ->
        (match a.next with
        | Some n when n == b -> ()
        | Some _ | None -> fail "leaf chain broken");
        chain rest
  in
  chain in_order
