type component = I of int | S of string

let flip_sign x = x lxor min_int

let encode_int buf x =
  let x = flip_sign x in
  for i = 7 downto 0 do
    Buffer.add_char buf (Char.chr ((x lsr (8 * i)) land 0xff))
  done

let encode_string buf s =
  String.iter
    (fun c ->
      if c = '\x00' then Buffer.add_string buf "\x00\xff" else Buffer.add_char buf c)
    s;
  Buffer.add_char buf '\x00'

(* Tag bytes keep decode unambiguous and keep I/S ordering stable. *)
let tag_int = '\x01'
let tag_string = '\x02'

let encode components =
  let buf = Buffer.create 32 in
  List.iter
    (fun c ->
      match c with
      | I x ->
          Buffer.add_char buf tag_int;
          encode_int buf x
      | S s ->
          Buffer.add_char buf tag_string;
          encode_string buf s)
    components;
  Buffer.contents buf

let decode s =
  let len = String.length s in
  let rec go pos acc =
    if pos >= len then List.rev acc
    else if s.[pos] = tag_int then begin
      if pos + 9 > len then invalid_arg "Keycodec.decode: truncated int";
      let x = ref 0 in
      for i = 0 to 7 do
        x := (!x lsl 8) lor Char.code s.[pos + 1 + i]
      done;
      go (pos + 9) (I (flip_sign !x) :: acc)
    end
    else if s.[pos] = tag_string then begin
      let buf = Buffer.create 16 in
      let rec scan i =
        if i >= len then invalid_arg "Keycodec.decode: unterminated string";
        match s.[i] with
        | '\x00' ->
            if i + 1 < len && s.[i + 1] = '\xff' then begin
              Buffer.add_char buf '\x00';
              scan (i + 2)
            end
            else i + 1
        | c ->
            Buffer.add_char buf c;
            scan (i + 1)
      in
      let next = scan (pos + 1) in
      go next (S (Buffer.contents buf) :: acc)
    end
    else invalid_arg "Keycodec.decode: bad tag byte"
  in
  go 0 []

let next_prefix p =
  let b = Bytes.of_string p in
  let rec bump i =
    if i < 0 then None
    else if Bytes.get b i = '\xff' then bump (i - 1)
    else begin
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) + 1));
      Some (Bytes.sub_string b 0 (i + 1))
    end
  in
  bump (Bytes.length b - 1)

let compare_component a b =
  match (a, b) with
  | I x, I y -> compare x y
  | S x, S y -> compare x y
  | I _, S _ -> -1
  | S _, I _ -> 1

let rec compare_components a b =
  match (a, b) with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | x :: xs, y :: ys ->
      let c = compare_component x y in
      if c <> 0 then c else compare_components xs ys
