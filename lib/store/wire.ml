type write = { table : int; key : string; value : string option }
type txn_log = { ts : int; req : (int * int) option; writes : write list }
type member_change = { m_gen : int; m_old : int list; m_new : int list }

type entry = {
  epoch : int;
  last_ts : int;
  txns : txn_log list;
  config : member_change option;
}

let make_entry ~epoch txns =
  match List.rev txns with
  | [] -> invalid_arg "Wire.make_entry: empty batch"
  | last :: _ -> { epoch; last_ts = last.ts; txns; config = None }

let noop ~epoch ~ts = { epoch; last_ts = ts; txns = []; config = None }

let config_entry ~epoch ~ts change =
  { epoch; last_ts = ts; txns = []; config = Some change }

let is_noop e = e.txns = []

(* Sizes mirror the encoding below exactly (tests enforce this). *)
let write_byte_size w =
  4 + 4 + String.length w.key + 1
  + match w.value with Some v -> 4 + String.length v | None -> 0

let txn_byte_size t =
  (* Per-transaction header: ts(8) + req tag(1) [+ client(4) + seq(4)]
     + nkv(4) + nbytes(4). *)
  17
  + (match t.req with Some _ -> 8 | None -> 0)
  + List.fold_left (fun acc w -> acc + write_byte_size w) 0 t.writes

(* Config trailer: tag(1) + gen(4) + n_old(4) + 4*|old| + n_new(4) +
   4*|new|. Entries without a config change append nothing, so the
   common-case encoding (and therefore simulated network timing) is
   byte-identical to the pre-reconfiguration format. *)
let config_byte_size = function
  | None -> 0
  | Some c -> 13 + (4 * List.length c.m_old) + (4 * List.length c.m_new)

let byte_size e =
  (* Entry header: epoch(8) + last_ts(8) + ntxns(4). *)
  20
  + List.fold_left (fun acc t -> acc + txn_byte_size t) 0 e.txns
  + config_byte_size e.config

let txn_count e = List.length e.txns

(* ---- binary encoding: little-endian fixed-width ints ----

   Encoded values are non-negative, so truncating [Int32.of_int] /
   sign-extending [Int64.of_int] produce the same bytes the manual
   shift-mask loops did. *)

let add_u8 buf v = Buffer.add_char buf (Char.chr (v land 0xff))
let add_u32 buf v = Buffer.add_int32_le buf (Int32.of_int v)
let add_u64 buf v = Buffer.add_int64_le buf (Int64.of_int v)

let encode e =
  (* One write-bytes pass per transaction, reused for both the buffer
     capacity and the per-transaction nbytes header. *)
  let txns =
    List.map
      (fun t ->
        (t, List.fold_left (fun acc w -> acc + write_byte_size w) 0 t.writes))
      e.txns
  in
  let cap =
    List.fold_left
      (fun acc (t, wbytes) ->
        acc + 17 + (match t.req with Some _ -> 8 | None -> 0) + wbytes)
      20 txns
  in
  let buf = Buffer.create cap in
  add_u64 buf e.epoch;
  add_u64 buf e.last_ts;
  add_u32 buf (List.length e.txns);
  List.iter
    (fun (t, wbytes) ->
      add_u64 buf t.ts;
      (match t.req with
      | Some (cid, seq) ->
          add_u8 buf 1;
          add_u32 buf cid;
          add_u32 buf seq
      | None -> add_u8 buf 0);
      add_u32 buf (List.length t.writes);
      add_u32 buf wbytes;
      List.iter
        (fun w ->
          add_u32 buf w.table;
          add_u32 buf (String.length w.key);
          Buffer.add_string buf w.key;
          match w.value with
          | Some v ->
              add_u8 buf 1;
              add_u32 buf (String.length v);
              Buffer.add_string buf v
          | None -> add_u8 buf 0)
        t.writes)
    txns;
  (match e.config with
  | None -> ()
  | Some c ->
      add_u8 buf 1;
      add_u32 buf c.m_gen;
      add_u32 buf (List.length c.m_old);
      List.iter (add_u32 buf) c.m_old;
      add_u32 buf (List.length c.m_new);
      List.iter (add_u32 buf) c.m_new);
  Buffer.contents buf

exception Malformed of string

let decode s =
  let pos = ref 0 in
  let len = String.length s in
  let need n = if !pos + n > len then raise (Malformed "truncated") in
  let u8 () =
    need 1;
    let v = Char.code s.[!pos] in
    incr pos;
    v
  in
  let u32 () =
    need 4;
    let v = ref 0 in
    for i = 0 to 3 do
      v := !v lor (Char.code s.[!pos + i] lsl (8 * i))
    done;
    pos := !pos + 4;
    !v
  in
  let u64 () =
    need 8;
    let v = ref 0 in
    for i = 0 to 7 do
      v := !v lor (Char.code s.[!pos + i] lsl (8 * i))
    done;
    pos := !pos + 8;
    !v
  in
  let str n =
    need n;
    let v = String.sub s !pos n in
    pos := !pos + n;
    v
  in
  try
    let epoch = u64 () in
    let last_ts = u64 () in
    let ntxns = u32 () in
    let txns =
      List.init ntxns (fun _ ->
          let ts = u64 () in
          let req =
            match u8 () with
            | 0 -> None
            | 1 ->
                let cid = u32 () in
                let seq = u32 () in
                Some (cid, seq)
            | _ -> raise (Malformed "bad request tag")
          in
          let nwrites = u32 () in
          let _nbytes = u32 () in
          let writes =
            List.init nwrites (fun _ ->
                let table = u32 () in
                let klen = u32 () in
                let key = str klen in
                let value =
                  match u8 () with
                  | 0 -> None
                  | 1 ->
                      let vlen = u32 () in
                      Some (str vlen)
                  | _ -> raise (Malformed "bad value tag")
                in
                { table; key; value })
          in
          { ts; req; writes })
    in
    let config =
      if !pos = len then None
      else begin
        (match u8 () with
        | 1 -> ()
        | _ -> raise (Malformed "bad config tag"));
        let m_gen = u32 () in
        let n_old = u32 () in
        let m_old = List.init n_old (fun _ -> u32 ()) in
        let n_new = u32 () in
        let m_new = List.init n_new (fun _ -> u32 ()) in
        Some { m_gen; m_old; m_new }
      end
    in
    if !pos <> len then raise (Malformed "trailing bytes");
    { epoch; last_ts; txns; config }
  with Malformed m -> invalid_arg ("Wire.decode: " ^ m)
