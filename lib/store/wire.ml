type write = { table : int; key : string; value : string option }

(* Cross-shard 2PC marks. A decision rides the transaction that recorded
   it, so it is replicated (and replayed, and recovered after failover)
   exactly like the data writes it governs. *)
type phase2 = Prepared | Committed | Aborted | Applied | Canceled

type decision = { d_xid : int; d_phase : phase2; d_parts : int list }

type txn_log = {
  ts : int;
  req : (int * int) option;
  decision : decision option;
  writes : write list;
}

type member_change = { m_gen : int; m_old : int list; m_new : int list }

type entry = {
  epoch : int;
  last_ts : int;
  txns : txn_log list;
  config : member_change option;
}

let make_entry ~epoch txns =
  match List.rev txns with
  | [] -> invalid_arg "Wire.make_entry: empty batch"
  | last :: _ -> { epoch; last_ts = last.ts; txns; config = None }

let noop ~epoch ~ts = { epoch; last_ts = ts; txns = []; config = None }

let config_entry ~epoch ~ts change =
  { epoch; last_ts = ts; txns = []; config = Some change }

let is_noop e = e.txns = []

(* Sizes mirror the encoding below exactly (tests enforce this). *)
let write_byte_size w =
  4 + 4 + String.length w.key + 1
  + match w.value with Some v -> 4 + String.length v | None -> 0

(* Decision trailer: xid(8) + phase(1) + nparts(4) + 4*|parts|. *)
let decision_byte_size = function
  | None -> 0
  | Some d -> 13 + (4 * List.length d.d_parts)

let txn_byte_size t =
  (* Per-transaction header: ts(8) + tag(1) [+ client(4) + seq(4)]
     [+ decision trailer] + nkv(4) + nbytes(4). The tag byte is a bit
     set — bit 0: req present, bit 1: decision present — so transactions
     without a decision (every pre-sharding entry) encode byte-identically
     to the historical format. *)
  17
  + (match t.req with Some _ -> 8 | None -> 0)
  + decision_byte_size t.decision
  + List.fold_left (fun acc w -> acc + write_byte_size w) 0 t.writes

(* Config trailer: tag(1) + gen(4) + n_old(4) + 4*|old| + n_new(4) +
   4*|new|. Entries without a config change append nothing, so the
   common-case encoding (and therefore simulated network timing) is
   byte-identical to the pre-reconfiguration format. *)
let config_byte_size = function
  | None -> 0
  | Some c -> 13 + (4 * List.length c.m_old) + (4 * List.length c.m_new)

let byte_size e =
  (* Entry header: epoch(8) + last_ts(8) + ntxns(4). *)
  20
  + List.fold_left (fun acc t -> acc + txn_byte_size t) 0 e.txns
  + config_byte_size e.config

let txn_count e = List.length e.txns

(* ---- binary encoding: little-endian fixed-width ints ----

   Encoded values are non-negative, so the manual shift-mask stores below
   write exactly the bytes the former [Buffer.add_int32/64_le] calls did.
   The encoder works over a reusable [Scratch] arena: [byte_size] gives
   the exact encoded length up front, the arena is grown (geometrically,
   amortized) to hold it, and the only per-call allocation is the result
   string itself — no [Buffer] doubling copies, no per-transaction
   intermediate lists. *)

module Scratch = struct
  type t = { mutable buf : Bytes.t }

  let create ?(capacity = 1 lsl 16) () = { buf = Bytes.create (max 16 capacity) }
  let capacity t = Bytes.length t.buf

  let reserve t n =
    if n > Bytes.length t.buf then begin
      let cap = ref (Bytes.length t.buf) in
      while !cap < n do
        cap := !cap * 2
      done;
      (* Grown for capacity only: encoders rewrite from offset 0, so the
         old contents need not be carried over. *)
      t.buf <- Bytes.create !cap
    end
end

let set_u8 b pos v = Bytes.unsafe_set b pos (Char.unsafe_chr (v land 0xff))

let set_u32 b pos v =
  Bytes.unsafe_set b pos (Char.unsafe_chr (v land 0xff));
  Bytes.unsafe_set b (pos + 1) (Char.unsafe_chr ((v lsr 8) land 0xff));
  Bytes.unsafe_set b (pos + 2) (Char.unsafe_chr ((v lsr 16) land 0xff));
  Bytes.unsafe_set b (pos + 3) (Char.unsafe_chr ((v lsr 24) land 0xff))

let set_u64 b pos v =
  set_u32 b pos v;
  set_u32 b (pos + 4) (v lsr 32)

let encode_into (scratch : Scratch.t) e =
  let n = byte_size e in
  Scratch.reserve scratch n;
  let b = scratch.Scratch.buf in
  let pos = ref 0 in
  let u8 v =
    set_u8 b !pos v;
    incr pos
  in
  let u32 v =
    set_u32 b !pos v;
    pos := !pos + 4
  in
  let u64 v =
    set_u64 b !pos v;
    pos := !pos + 8
  in
  let str s =
    let len = String.length s in
    Bytes.blit_string s 0 b !pos len;
    pos := !pos + len
  in
  u64 e.epoch;
  u64 e.last_ts;
  u32 (List.length e.txns);
  List.iter
    (fun t ->
      u64 t.ts;
      u8
        ((match t.req with Some _ -> 1 | None -> 0)
        lor match t.decision with Some _ -> 2 | None -> 0);
      (match t.req with
      | Some (cid, seq) ->
          u32 cid;
          u32 seq
      | None -> ());
      (match t.decision with
      | Some d ->
          u64 d.d_xid;
          u8
            (match d.d_phase with
            | Prepared -> 0
            | Committed -> 1
            | Aborted -> 2
            | Applied -> 3
            | Canceled -> 4);
          u32 (List.length d.d_parts);
          List.iter u32 d.d_parts
      | None -> ());
      u32 (List.length t.writes);
      u32 (List.fold_left (fun acc w -> acc + write_byte_size w) 0 t.writes);
      List.iter
        (fun w ->
          u32 w.table;
          u32 (String.length w.key);
          str w.key;
          match w.value with
          | Some v ->
              u8 1;
              u32 (String.length v);
              str v
          | None -> u8 0)
        t.writes)
    e.txns;
  (match e.config with
  | None -> ()
  | Some c ->
      u8 1;
      u32 c.m_gen;
      u32 (List.length c.m_old);
      List.iter u32 c.m_old;
      u32 (List.length c.m_new);
      List.iter u32 c.m_new);
  assert (!pos = n);
  Bytes.sub_string b 0 n

let encode e = encode_into (Scratch.create ~capacity:(byte_size e) ()) e

exception Malformed of string

let decode s =
  let pos = ref 0 in
  let len = String.length s in
  let need n = if !pos + n > len then raise (Malformed "truncated") in
  let u8 () =
    need 1;
    let v = Char.code s.[!pos] in
    incr pos;
    v
  in
  let u32 () =
    need 4;
    let v = ref 0 in
    for i = 0 to 3 do
      v := !v lor (Char.code s.[!pos + i] lsl (8 * i))
    done;
    pos := !pos + 4;
    !v
  in
  let u64 () =
    need 8;
    let v = ref 0 in
    for i = 0 to 7 do
      v := !v lor (Char.code s.[!pos + i] lsl (8 * i))
    done;
    pos := !pos + 8;
    !v
  in
  let str n =
    need n;
    let v = String.sub s !pos n in
    pos := !pos + n;
    v
  in
  try
    let epoch = u64 () in
    let last_ts = u64 () in
    let ntxns = u32 () in
    let txns =
      List.init ntxns (fun _ ->
          let ts = u64 () in
          let tag = u8 () in
          if tag land lnot 3 <> 0 then raise (Malformed "bad request tag");
          let req =
            if tag land 1 = 0 then None
            else
              let cid = u32 () in
              let seq = u32 () in
              Some (cid, seq)
          in
          let decision =
            if tag land 2 = 0 then None
            else
              let d_xid = u64 () in
              let d_phase =
                match u8 () with
                | 0 -> Prepared
                | 1 -> Committed
                | 2 -> Aborted
                | 3 -> Applied
                | 4 -> Canceled
                | _ -> raise (Malformed "bad decision phase")
              in
              let nparts = u32 () in
              let d_parts = List.init nparts (fun _ -> u32 ()) in
              Some { d_xid; d_phase; d_parts }
          in
          let nwrites = u32 () in
          let _nbytes = u32 () in
          let writes =
            List.init nwrites (fun _ ->
                let table = u32 () in
                let klen = u32 () in
                let key = str klen in
                let value =
                  match u8 () with
                  | 0 -> None
                  | 1 ->
                      let vlen = u32 () in
                      Some (str vlen)
                  | _ -> raise (Malformed "bad value tag")
                in
                { table; key; value })
          in
          { ts; req; decision; writes })
    in
    let config =
      if !pos = len then None
      else begin
        (match u8 () with
        | 1 -> ()
        | _ -> raise (Malformed "bad config tag"));
        let m_gen = u32 () in
        let n_old = u32 () in
        let m_old = List.init n_old (fun _ -> u32 ()) in
        let n_new = u32 () in
        let m_new = List.init n_new (fun _ -> u32 ()) in
        Some { m_gen; m_old; m_new }
      end
    in
    if !pos <> len then raise (Malformed "trailing bytes");
    { epoch; last_ts; txns; config }
  with Malformed m -> invalid_arg ("Wire.decode: " ^ m)
