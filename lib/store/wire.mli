(** Wire format for replicated log entries (paper Fig. 6).

    A log entry batches many transactions. Each transaction carries a
    header — timestamp, epoch (shared by the entry), number of key-value
    pairs, byte count — followed by its write-set; read-sets are never
    shipped. The entry's representative timestamp is the timestamp of the
    {e last} transaction in the batch, which is what the watermark
    compares against.

    [byte_size] computes the encoded size without materialising the bytes;
    the simulator charges serialization cost from sizes and only performs
    physical encode/decode when configured to (and always in tests). *)

type write = {
  table : int;
  key : string;
  value : string option;  (** [None] encodes a delete *)
}

(** Cross-shard 2PC lifecycle of one distributed transaction, as seen from
    one shard's log. [Prepared] marks a participant's vote-yes (its intent
    row is in the same transaction's write-set); [Committed] / [Aborted]
    mark the coordinator shard's replicated decision; [Applied] marks a
    participant installing a committed transaction's effects; [Canceled]
    marks a participant discarding a prepared intent after an abort. *)
type phase2 = Prepared | Committed | Aborted | Applied | Canceled

type decision = {
  d_xid : int;  (** globally unique cross-shard transaction id *)
  d_phase : phase2;
  d_parts : int list;
      (** participant shard ids; populated on coordinator decisions so
          recovery (and the atomicity oracle) knows the full cohort *)
}

type txn_log = {
  ts : int;
  req : (int * int) option;
      (** originating client request [(client_id, seq)], if the
          transaction was submitted by a networked client session; threads
          exactly-once identity through replication and replay *)
  decision : decision option;
      (** cross-shard 2PC mark: this transaction recorded a prepare vote,
          a coordinator decision, or a participant apply/cancel. Encoded as
          an optional trailer behind a tag bit, so transactions without one
          — every single-shard transaction — keep the historical wire bytes
          exactly *)
  writes : write list;
}

type member_change = {
  m_gen : int;  (** monotone membership generation; adoption is gated on it *)
  m_old : int list;
      (** previous voter set during a joint [C_old,new] transition; [[]]
          marks the final switch to a stable [m_new] configuration *)
  m_new : int list;  (** target voter set *)
}

type entry = {
  epoch : int;
  last_ts : int;  (** timestamp of the last transaction in the batch *)
  txns : txn_log list;
  config : member_change option;
      (** membership change replicated through the log (joint consensus);
          [None] for ordinary batches, and encoded as a trailing section so
          the common-case wire bytes are unchanged *)
}

val make_entry : epoch:int -> txn_log list -> entry
(** Computes [last_ts] from the batch. @raise Invalid_argument on an empty
    batch (heartbeats use {!noop} instead). *)

val noop : epoch:int -> ts:int -> entry
(** An empty entry whose only purpose is to advance the watermark
    (heartbeat / epoch-sealing no-op). *)

val config_entry : epoch:int -> ts:int -> member_change -> entry
(** A membership-change entry: txn-free like {!noop} (so the watermark
    machinery treats it uniformly) but carrying a [config] payload. *)

val is_noop : entry -> bool

val write_byte_size : write -> int
val decision_byte_size : decision option -> int
val txn_byte_size : txn_log -> int
val byte_size : entry -> int
val txn_count : entry -> int

(** Reusable encode arena. The hot path encodes thousands of entries per
    virtual second; threading one scratch per worker (or per replica)
    replaces per-entry [Buffer] churn with a single amortized allocation —
    after warm-up the only garbage per encode is the result string. *)
module Scratch : sig
  type t

  val create : ?capacity:int -> unit -> t
  (** Fresh arena; [capacity] defaults to 64 KiB and grows geometrically
      on demand. *)

  val capacity : t -> int
end

val encode_into : Scratch.t -> entry -> string
(** Same bytes as {!encode}, but staged through the caller's arena instead
    of a fresh [Buffer]. *)

val encode : entry -> string
val decode : string -> entry
(** @raise Invalid_argument on malformed input. *)
