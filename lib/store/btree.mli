(** In-memory B+tree from string keys to values.

    This is the ordered index underneath every table — the role Masstree
    plays in Silo. All values live in leaves; internal nodes hold copied
    separator keys. Leaves are singly linked for fast range scans.
    Deletion does full rebalancing (borrow from a sibling, else merge), so
    the tree never degrades under the TPC-C new-order/delivery churn.

    Not thread-safe: in the simulator, data-structure operations execute
    atomically between process yield points, so the concurrency-control
    story lives above this layer (in the OCC engine), exactly as conflicts
    are resolved above the index in Silo. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int
(** Number of live keys. O(1). *)

val is_empty : 'a t -> bool

val find : 'a t -> string -> 'a option

val mem : 'a t -> string -> bool

val insert : 'a t -> string -> 'a -> 'a option
(** [insert t k v] sets [k -> v] and returns the previous binding. *)

val remove : 'a t -> string -> 'a option
(** [remove t k] deletes [k] and returns the removed binding. *)

val min_binding : 'a t -> (string * 'a) option
val max_binding : 'a t -> (string * 'a) option

val find_first_geq : 'a t -> string -> (string * 'a) option
(** Smallest binding with key [>= k]. *)

val find_last_lt : 'a t -> string -> (string * 'a) option
(** Largest binding with key [< k] — the descending-probe primitive behind
    "latest order" lookups. *)

val iter_from : 'a t -> string -> (string -> 'a -> bool) -> unit
(** [iter_from t k f] visits bindings with key [>= k] in ascending order
    while [f] returns [true]. *)

val fold_range : 'a t -> lo:string -> hi:string -> init:'b -> f:('b -> string -> 'a -> 'b) -> 'b
(** Fold over keys in [[lo, hi)] ascending. *)

val iter : 'a t -> (string -> 'a -> unit) -> unit

val to_list : 'a t -> (string * 'a) list
(** Ascending; for tests. *)

val check_invariants : 'a t -> unit
(** Validate structural invariants (ordering, fill factors, separator
    consistency, leaf chain); raises [Failure] with a description
    otherwise. For tests. *)
