(** In-memory B+tree from string keys to values.

    This is the ordered index underneath every table — the role Masstree
    plays in Silo. All values live in leaves; internal nodes hold copied
    separator keys. Leaves are singly linked for fast range scans.
    Deletion does full rebalancing (borrow from a sibling, else merge), so
    the tree never degrades under the TPC-C new-order/delivery churn.

    Not thread-safe: in the simulator, data-structure operations execute
    atomically between process yield points, so the concurrency-control
    story lives above this layer (in the OCC engine), exactly as conflicts
    are resolved above the index in Silo. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int
(** Number of live keys. O(1). *)

val is_empty : 'a t -> bool

val find : 'a t -> string -> 'a option

val mem : 'a t -> string -> bool

val insert : 'a t -> string -> 'a -> 'a option
(** [insert t k v] sets [k -> v] and returns the previous binding. *)

val insert_if_absent : 'a t -> string -> 'a -> bool
(** [insert_if_absent t k v] binds [k -> v] only if [k] is absent;
    returns whether it inserted. A refused insert performs no mutation at
    all — the guarded form exists so callers never have to "undo" a
    clobbered binding on the failure path. *)

val remove : 'a t -> string -> 'a option
(** [remove t k] deletes [k] and returns the removed binding. *)

val min_binding : 'a t -> (string * 'a) option
val max_binding : 'a t -> (string * 'a) option

val find_first_geq : 'a t -> string -> (string * 'a) option
(** Smallest binding with key [>= k]. *)

val find_last_lt : 'a t -> string -> (string * 'a) option
(** Largest binding with key [< k] — the descending-probe primitive behind
    "latest order" lookups. *)

val iter_from : 'a t -> string -> (string -> 'a -> bool) -> unit
(** [iter_from t k f] visits bindings with key [>= k] in ascending order
    while [f] returns [true]. *)

val fold_range : 'a t -> lo:string -> hi:string -> init:'b -> f:('b -> string -> 'a -> 'b) -> 'b
(** Fold over keys in [[lo, hi)] ascending. *)

val iter : 'a t -> (string -> 'a -> unit) -> unit

val to_list : 'a t -> (string * 'a) list
(** Ascending; for tests. *)

(** {2 Cursors and sorted bulk application}

    The follower-replay fast path: a watermark-released log entry is a
    pre-serialized, conflict-free batch, so its write-set can be applied
    as one sorted sweep instead of per-key point operations. With TPC-C's
    warehouse-clustered keys most consecutive writes land in the same
    leaf, amortizing the descent. *)

type 'a cursor
(** Read cursor over the leaf chain. Positioning and stepping are O(1)
    amortized. The cursor observes live tree state; mutating the tree
    (insert/remove/bulk apply) while a cursor is live invalidates it —
    re-{!seek} before further use. *)

val cursor : 'a t -> 'a cursor
(** A fresh, unpositioned cursor ({!current} is [None] until {!seek}). *)

val seek : 'a cursor -> string -> unit
(** Position at the first binding with key [>= k] (end if none). *)

val current : 'a cursor -> (string * 'a) option
val advance : 'a cursor -> unit

type bulk_counts = { descents : int; steps : int }
(** Index work performed by {!apply_sorted}: [descents] root-to-leaf
    walks (fresh positioning, including splits) and [steps] in-leaf
    continuations — the two terms cost models charge separately. *)

val apply_sorted :
  'a t ->
  (string * 'b) list ->
  f:(string -> 'b -> 'a option -> 'a option) ->
  bulk_counts
(** [apply_sorted t kvs ~f] walks the tree once over the strictly
    ascending run [kvs], calling [f key payload existing] at each key
    with the current binding ([None] if absent). [f] returns [Some v] to
    bind [key -> v] (insert, or replace the stored value) and [None] to
    leave the tree's structure untouched — mutating an existing binding
    in place and declining the insert are both expressed this way.
    Leaf splits (and cascading parent splits) are handled; the sweep is
    observably equivalent to a sequential [find]/[insert] loop over the
    same run.
    @raise Invalid_argument if the keys are not strictly ascending. *)

val count_sorted : 'a t -> (string * 'b) list -> bulk_counts
(** [count_sorted t kvs] is a read-only prediction of the charges an
    {!apply_sorted} sweep over [kvs] will incur, for the replay decision
    pattern (present keys mutated in place, absent keys installed). The
    tree is not modified, so a cost model can consume the predicted work
    {e before} the mutating sweep makes its writes visible. Counts match
    the live sweep exactly except around leaf splits, where the
    prediction can drift by at most one descent/step per split.
    @raise Invalid_argument if the keys are not strictly ascending. *)

val check_invariants : 'a t -> unit
(** Validate structural invariants (ordering, fill factors, separator
    consistency, leaf chain); raises [Failure] with a description
    otherwise. For tests. *)
