type t = {
  table_id : int;
  table_name : string;
  tree : Record.t Btree.t;
  mutable bytes : int;
}

let create ~id ~name = { table_id = id; table_name = name; tree = Btree.create (); bytes = 0 }
let id t = t.table_id
let name t = t.table_name
let tree t = t.tree
let get t key = Btree.find t.tree key

let get_live t key =
  match Btree.find t.tree key with
  | Some r when not r.Record.deleted -> Some r
  | Some _ | None -> None

let insert t key r =
  (* Guarded insert: a duplicate key fails without ever touching the
     tree, instead of clobbering the binding and re-inserting it. *)
  if Btree.insert_if_absent t.tree key r then
    t.bytes <- t.bytes + Record.byte_size ~key r
  else invalid_arg (Printf.sprintf "Table.insert: duplicate key in %s" t.table_name)

let remove_phys t key =
  match Btree.remove t.tree key with
  | Some r -> t.bytes <- t.bytes - Record.byte_size ~key r
  | None -> ()

let scan t ~lo ~hi ?(limit = max_int) () =
  let acc = ref [] in
  let n = ref 0 in
  Btree.iter_from t.tree lo (fun k r ->
      if compare k hi >= 0 || !n >= limit then false
      else begin
        if not r.Record.deleted then begin
          acc := (k, r) :: !acc;
          incr n
        end;
        !n < limit
      end);
  List.rev !acc

let scan_all t ~lo ~hi =
  Btree.fold_range t.tree ~lo ~hi ~init:[] ~f:(fun acc k r -> (k, r) :: acc) |> List.rev

let max_live t ~lo ~hi =
  let rec probe below =
    match Btree.find_last_lt t.tree below with
    | Some (k, r) when compare k lo >= 0 ->
        if r.Record.deleted then probe k else Some (k, r)
    | Some _ | None -> None
  in
  probe hi

let min_live t ~lo ~hi =
  let result = ref None in
  Btree.iter_from t.tree lo (fun k r ->
      if compare k hi >= 0 then false
      else if r.Record.deleted then true
      else begin
        result := Some (k, r);
        false
      end);
  !result

let count t = Btree.length t.tree
let bytes t = t.bytes
let account_growth t delta = t.bytes <- t.bytes + delta

let compact t =
  let dead = ref [] in
  Btree.iter t.tree (fun k r -> if r.Record.deleted then dead := (k, r) :: !dead);
  List.iter
    (fun (k, r) ->
      ignore (Btree.remove t.tree k);
      t.bytes <- t.bytes - Record.byte_size ~key:k r)
    !dead;
  List.length !dead

let iter t f = Btree.iter t.tree f
