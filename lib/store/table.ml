type repr = Btree | Hash

type index =
  | Tree of Record.t Btree.t
  | Htbl of (string, Record.t) Hashtbl.t

type t = {
  table_id : int;
  table_name : string;
  index : index;
  mutable bytes : int;
}

let create ?(repr = Btree) ~id ~name () =
  let index =
    match repr with
    | Btree -> Tree (Btree.create ())
    | Hash -> Htbl (Hashtbl.create 256)
  in
  { table_id = id; table_name = name; index; bytes = 0 }

let id t = t.table_id
let name t = t.table_name
let repr t = match t.index with Tree _ -> Btree | Htbl _ -> Hash

let tree t =
  match t.index with
  | Tree tr -> tr
  | Htbl _ ->
      invalid_arg
        (Printf.sprintf
           "Table.tree: %s is hash-indexed; use apply_sorted_run / iter \
            instead of reaching for the B-tree"
           t.table_name)

let no_range t op =
  invalid_arg
    (Printf.sprintf
       "Table.%s: %s is hash-indexed (point lookups only). Range operations \
        need the ordered B-tree representation — drop the table from \
        Config.hash_tables if the workload scans it."
       op t.table_name)

let get t key =
  match t.index with
  | Tree tr -> Btree.find tr key
  | Htbl h -> Hashtbl.find_opt h key

let get_live t key =
  match get t key with
  | Some r when not r.Record.deleted -> Some r
  | Some _ | None -> None

let insert t key r =
  (* Guarded insert: a duplicate key fails without ever touching the
     index, instead of clobbering the binding and re-inserting it. *)
  let inserted =
    match t.index with
    | Tree tr -> Btree.insert_if_absent tr key r
    | Htbl h ->
        if Hashtbl.mem h key then false
        else begin
          Hashtbl.add h key r;
          true
        end
  in
  if inserted then t.bytes <- t.bytes + Record.byte_size ~key r
  else invalid_arg (Printf.sprintf "Table.insert: duplicate key in %s" t.table_name)

let remove_phys t key =
  let removed =
    match t.index with
    | Tree tr -> Btree.remove tr key
    | Htbl h ->
        let r = Hashtbl.find_opt h key in
        if r <> None then Hashtbl.remove h key;
        r
  in
  match removed with
  | Some r -> t.bytes <- t.bytes - Record.byte_size ~key r
  | None -> ()

let scan t ~lo ~hi ?(limit = max_int) () =
  match t.index with
  | Htbl _ -> no_range t "scan"
  | Tree tr ->
      let acc = ref [] in
      let n = ref 0 in
      Btree.iter_from tr lo (fun k r ->
          if compare k hi >= 0 || !n >= limit then false
          else begin
            if not r.Record.deleted then begin
              acc := (k, r) :: !acc;
              incr n
            end;
            !n < limit
          end);
      List.rev !acc

let scan_all t ~lo ~hi =
  match t.index with
  | Htbl _ -> no_range t "scan_all"
  | Tree tr ->
      Btree.fold_range tr ~lo ~hi ~init:[] ~f:(fun acc k r -> (k, r) :: acc)
      |> List.rev

let max_live t ~lo ~hi =
  match t.index with
  | Htbl _ -> no_range t "max_live"
  | Tree tr ->
      let rec probe below =
        match Btree.find_last_lt tr below with
        | Some (k, r) when compare k lo >= 0 ->
            if r.Record.deleted then probe k else Some (k, r)
        | Some _ | None -> None
      in
      probe hi

let min_live t ~lo ~hi =
  match t.index with
  | Htbl _ -> no_range t "min_live"
  | Tree tr ->
      let result = ref None in
      Btree.iter_from tr lo (fun k r ->
          if compare k hi >= 0 then false
          else if r.Record.deleted then true
          else begin
            result := Some (k, r);
            false
          end);
      !result

let count t =
  match t.index with Tree tr -> Btree.length tr | Htbl h -> Hashtbl.length h

let bytes t = t.bytes
let account_growth t delta = t.bytes <- t.bytes + delta

(* Hash iteration order is an implementation detail of [Hashtbl] (and has
   changed across compiler releases), so the hash arm sorts keys before
   visiting: [iter] promises ascending keys for *every* representation.
   Checkpointing leans on that promise — its table scans must produce
   strictly ascending runs for the bootstrap-side [apply_sorted] — and it
   keeps virtual-time results independent of the stdlib's hashing. *)
let iter t f =
  match t.index with
  | Tree tr -> Btree.iter tr f
  | Htbl h ->
      let keys = Hashtbl.fold (fun k _ acc -> k :: acc) h [] in
      List.iter
        (fun k -> match Hashtbl.find_opt h k with Some r -> f k r | None -> ())
        (List.sort compare keys)

let compact t =
  let dead = ref [] in
  iter t (fun k r -> if r.Record.deleted then dead := (k, r) :: !dead);
  List.iter
    (fun (k, r) ->
      (match t.index with
      | Tree tr -> ignore (Btree.remove tr k)
      | Htbl h -> Hashtbl.remove h k);
      t.bytes <- t.bytes - Record.byte_size ~key:k r)
    !dead;
  List.length !dead

(* ---- sorted bulk application, representation-dispatched ----

   The bulk-replay and checkpoint-bootstrap paths hand a strictly
   ascending (key, payload) run to the table. For a B-tree that is one
   cursor sweep (PR 5's fast path); for a hash index there is no locality
   to exploit, so each key is an independent probe — reported as one
   "descent" with zero in-leaf steps, which is exactly how the cost model
   wants to charge a hash lookup. *)

let check_ascending kvs =
  let rec go = function
    | (a, _) :: ((b, _) :: _ as rest) ->
        if compare a b >= 0 then
          invalid_arg "Table.apply_sorted_run: keys not strictly ascending";
        go rest
    | _ -> ()
  in
  go kvs

let count_sorted_run t kvs =
  match t.index with
  | Tree tr -> Btree.count_sorted tr kvs
  | Htbl _ ->
      check_ascending kvs;
      { Btree.descents = List.length kvs; steps = 0 }

let apply_sorted_run t kvs ~f =
  match t.index with
  | Tree tr -> Btree.apply_sorted tr kvs ~f
  | Htbl h ->
      check_ascending kvs;
      let descents = ref 0 in
      List.iter
        (fun (key, payload) ->
          incr descents;
          match f key payload (Hashtbl.find_opt h key) with
          | Some r -> Hashtbl.replace h key r
          | None -> ())
        kvs;
      { Btree.descents = !descents; steps = 0 }
