(** Order-preserving composite-key encoding.

    TPC-C keys are tuples like [(warehouse_id, district_id, order_id)];
    the B+tree stores flat strings. This codec encodes component tuples so
    that byte-wise comparison of the encodings equals lexicographic
    comparison of the tuples — which makes prefix scans over the encoded
    space equivalent to range queries over the composite key space.

    Encoding: integers become 8-byte big-endian with the sign bit flipped
    (so negative < positive); strings escape [\x00] as [\x00\xff] and end
    with a [\x00] terminator (so no encoded string is a strict prefix of
    another and ordering is preserved). *)

type component = I of int | S of string

val encode : component list -> string
(** Encode a full key. *)

val decode : string -> component list
(** Inverse of {!encode}. @raise Invalid_argument on malformed input. *)

val next_prefix : string -> string option
(** [next_prefix p] is the smallest string strictly greater than every
    string with prefix [p], or [None] if no such string exists (all
    [0xff]). Scanning [[p, next_prefix p)] visits exactly the keys with
    prefix [p]. *)

val compare_components : component list -> component list -> int
(** Lexicographic order on tuples; [I _ < S _] at equal positions by
    convention (mixed-type positions do not occur in practice). *)
