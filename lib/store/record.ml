type t = {
  mutable value : string;
  mutable deleted : bool;
  mutable epoch : int;
  mutable ts : int;
  mutable version : int;
  mutable locker : int;
}

let make ?(epoch = 0) ?(ts = 0) value =
  { value; deleted = false; epoch; ts; version = 0; locker = -1 }

let is_locked t = t.locker >= 0

let try_lock t ~worker =
  if t.locker = worker then true
  else if t.locker >= 0 then false
  else begin
    t.locker <- worker;
    true
  end

let unlock t ~worker =
  if t.locker <> worker then invalid_arg "Record.unlock: not the lock holder";
  t.locker <- -1

let stamp t ~epoch ~ts ~value =
  (match value with
  | Some v ->
      t.value <- v;
      t.deleted <- false
  | None ->
      t.value <- "";
      t.deleted <- true);
  t.epoch <- epoch;
  t.ts <- ts;
  t.version <- t.version + 1

let install t ~epoch ~ts ~value = stamp t ~epoch ~ts ~value

let newer ~epoch ~ts ~than:t = epoch > t.epoch || (epoch = t.epoch && ts > t.ts)

let cas_apply t ~epoch ~ts ~value =
  if newer ~epoch ~ts ~than:t then begin
    stamp t ~epoch ~ts ~value;
    true
  end
  else false

(* Rough heap footprint: record header + stamped fields + strings. *)
let byte_size ~key t = 64 + String.length key + String.length t.value
