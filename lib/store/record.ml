type t = {
  mutable value : string;
  mutable deleted : bool;
  mutable epoch : int;
  mutable ts : int;
  mutable version : int;
  mutable locker : int;
  mutable snap_value : string;
  mutable snap_deleted : bool;
  mutable snap_epoch : int;
  mutable snap_ts : int;
}

let make ?(epoch = 0) ?(ts = 0) value =
  {
    value;
    deleted = false;
    epoch;
    ts;
    version = 0;
    locker = -1;
    snap_value = "";
    snap_deleted = false;
    snap_epoch = 0;
    snap_ts = -1;
  }

let is_locked t = t.locker >= 0

let try_lock t ~worker =
  if t.locker = worker then true
  else if t.locker >= 0 then false
  else begin
    t.locker <- worker;
    true
  end

let unlock t ~worker =
  if t.locker <> worker then invalid_arg "Record.unlock: not the lock holder";
  t.locker <- -1

let stamp t ~epoch ~ts ~value =
  (match value with
  | Some v ->
      t.value <- v;
      t.deleted <- false
  | None ->
      t.value <- "";
      t.deleted <- true);
  t.epoch <- epoch;
  t.ts <- ts;
  t.version <- t.version + 1

let install t ~epoch ~ts ~value = stamp t ~epoch ~ts ~value

let newer ~epoch ~ts ~than:t = epoch > t.epoch || (epoch = t.epoch && ts > t.ts)

let cas_apply t ~epoch ~ts ~value =
  if newer ~epoch ~ts ~than:t then begin
    stamp t ~epoch ~ts ~value;
    true
  end
  else false

let snap_clear t =
  t.snap_value <- "";
  t.snap_deleted <- false;
  t.snap_epoch <- 0;
  t.snap_ts <- -1

(* Retain the current version in the prior-version slot before it is
   overwritten by a write stamped [ts]. A snapshot read is pinned at some
   [pin >= floor], so the outgoing version can only be needed by a live
   pin when [floor < ts]; otherwise every current and future pin already
   sees the incoming version and the slot can be reclaimed. This is what
   bounds the chain at depth one: the slot always holds the newest
   version still below the read-pin floor (or is empty). *)
let retain t ~floor ~ts =
  if floor < ts then begin
    t.snap_value <- t.value;
    t.snap_deleted <- t.deleted;
    t.snap_epoch <- t.epoch;
    t.snap_ts <- t.ts
  end
  else snap_clear t

let stamp_retain t ~floor ~epoch ~ts ~value =
  retain t ~floor ~ts;
  stamp t ~epoch ~ts ~value

let install_retain t ~floor ~epoch ~ts ~value = stamp_retain t ~floor ~epoch ~ts ~value

let cas_apply_retain t ~floor ~epoch ~ts ~value =
  if newer ~epoch ~ts ~than:t then begin
    stamp_retain t ~floor ~epoch ~ts ~value;
    true
  end
  else begin
    (* Parallel per-stream replay can install a ts-newer write before a
       ts-older one arrives from a slower stream; the strictly-newer CAS
       then discards the older write even though it is precisely the
       newest version below the current stamp — the version a read
       pinned between the two timestamps must observe. Park the loser in
       the slot instead of dropping it, keeping the slot's invariant
       (newest known version below the current stamp). *)
    (if ts > t.snap_ts && ts < t.ts then begin
       (match value with
       | Some v ->
           t.snap_value <- v;
           t.snap_deleted <- false
       | None ->
           t.snap_value <- "";
           t.snap_deleted <- true);
       t.snap_epoch <- epoch;
       t.snap_ts <- ts
     end);
    false
  end

type snapshot = Visible of string option * int | Miss

(* Timestamps ride the global counter and are monotone across epochs
   (watermarks never regress at an epoch seal), so visibility at a pin is
   a pure [ts] comparison. *)
let read_at t ~pin =
  if t.ts <= pin then Visible ((if t.deleted then None else Some t.value), t.ts)
  else if t.snap_ts < 0 then
    (* The slot is only empty above a pin when the record was created
       above it (reclamation clears the slot only once the floor — hence
       every live pin — has passed the current stamp). *)
    Visible (None, -1)
  else if t.snap_ts <= pin then
    Visible ((if t.snap_deleted then None else Some t.snap_value), t.snap_ts)
  else Miss

(* Rough heap footprint: record header + stamped fields + strings. The
   prior-version slot contributes only while occupied — with snapshot
   reads off it never is, keeping historical accounting unchanged. *)
let byte_size ~key t =
  64 + String.length key + String.length t.value
  + (if t.snap_ts >= 0 then 32 + String.length t.snap_value else 0)
