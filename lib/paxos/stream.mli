(** One MultiPaxos stream (paper §3.3).

    Rolis runs one stream per database worker thread. A stream is a
    replicated log of {!Store.Wire.entry} values: the leader proposes at
    successive indices (phase 2 only, under the election module's epoch);
    a new leader first runs a Prepare phase over the uncommitted tail and
    re-proposes what it learns (phase 1, leader completeness), filling
    gaps with no-ops.

    Commit is {e sequential}: index [i] only commits once [i-1] has — the
    paper's no-holes optimization (§4) — so [on_commit] fires in strict
    index order. Followers learn commit positions from piggybacked commit
    indices and fetch missing entries (catch-up) from whoever advertised
    them.

    Handlers never block; drive them from a per-replica dispatcher
    process. *)

type t

type stats = {
  proposals : int;
  commits : int;
  nacks : int;
  fetches : int;
  truncated : int;  (** slots reclaimed by log compaction *)
  retransmits : int;  (** leader re-sends of Prepare/Accept on heartbeat *)
  coalesced : int;
      (** proposals merged away into an earlier entry's quorum round
          (coalescing mode): [k] buffered proposals going out as one
          merged entry count [k - 1] here *)
}

val default_fetch_timeout : int

val create :
  Msg.t Sim.Net.t ->
  ?peers:int ->
  ?view:Member.view ->
  ?fetch_timeout:int ->
  ?coalesce:bool ->
  ?coalesce_max_bytes:int ->
  id:int ->
  me:int ->
  on_commit:(idx:int -> Store.Wire.entry -> unit) ->
  on_higher_epoch:(int -> unit) ->
  ?on_config:(Store.Wire.member_change -> unit) ->
  unit ->
  t
(** [peers] is the replica-slot count — nodes [0 .. peers-1] of the net;
    defaults to every node. Pass it when the net also carries non-replica
    nodes (client sessions). [view] is the initial voting membership
    (defaults to all [peers] slots); Accepts and Commits still reach every
    slot so non-voting learners replicate the log. [on_commit] fires
    exactly once per index, in order, on every replica that learns the
    commit. [on_higher_epoch] wires stream-level Nacks back into the
    election module. [on_config] fires whenever a membership-change entry
    is stored or learned (accept-time adoption — the replica routes it to
    every stream and the election); it may fire repeatedly for the same
    change, so receivers must adopt monotonically by generation.
    [fetch_timeout] bounds how long a follower waits for a [Fetch_rep]
    before re-issuing the fetch (lost fetches would otherwise wedge
    catch-up forever).

    [coalesce] (default false, used by the adaptive batching policy):
    while a quorum round is in flight, further proposals are buffered and
    go out as {e one} merged same-epoch entry when the pipeline drains —
    bursts of small batches then pay the fixed per-entry consensus cost
    once. Proposal order, per-stream timestamp monotonicity, and commit
    order are unchanged; an epoch change or the [coalesce_max_bytes] cap
    (default 1 MiB) forces the buffer out immediately. *)

val id : t -> int

val set_view : t -> Member.view -> gen:int -> unit
(** Adopt a membership view at generation [gen]; ignored unless [gen]
    exceeds the current generation. Changes which acks count toward
    quorums (commits, Prepare completion) from the next check onward. *)

val set_learners : t -> int list -> unit
(** Register the non-voting slots currently catching up: they gate the
    leader's safe truncation bound (their catch-up source must survive)
    without ever counting in quorums. Replaces the previous list. *)

val view : t -> Member.view

val become_leader : t -> epoch:int -> unit
(** Start the Prepare phase for [epoch]. Proposals made before the phase
    completes are buffered and flushed in order afterwards. *)

val step_down : t -> unit
(** Stop leading; buffered (unreplicated) proposals are dropped — they
    were speculative and their results were never released (§3.2). *)

val propose : t -> Store.Wire.entry -> unit
(** Leader-side append. Silently dropped when not leading (the caller's
    leadership may lapse concurrently; dropped proposals are exactly the
    speculative transactions failover discards). *)

val handle : t -> Msg.stream_msg -> from:int -> unit

val retransmit : t -> unit
(** Leader-side loss recovery, called on every heartbeat tick: re-send the
    in-flight Prepare (when preparing) or every uncommitted Accept still
    short of a majority (when active), plus the current commit position.
    All re-sends are idempotent — receivers dedup by sender. No-op on a
    follower. *)

val inject_committed : t -> Store.Wire.entry -> unit
(** Restart bootstrap: install an already-durable entry at the next index
    as if it had been learned through the protocol ([on_commit] fires).
    Only valid on a non-leading stream; feed entries in stream order from
    a donor replica's journal. *)

val inject_committed_at : t -> idx:int -> Store.Wire.entry -> unit
(** Like {!inject_committed} but at an absolute index, for checkpoint +
    journal-tail bootstrap where the donor's journal starts above zero: a
    gap below [idx] is recorded as this replica's compaction floor (the
    checkpoint image stands in for the missing slots). Feed indices in
    ascending order. @raise Invalid_argument if leading or if [idx] is
    already committed. *)

val set_bootstrap_floor : t -> idx:int -> unit
(** Checkpoint bootstrap: mark every slot below [idx] as committed
    elsewhere and covered by the checkpoint image installed alongside —
    the commit index jumps to [idx - 1] and the slots are recorded as
    truncated, so tail injection and ordinary catch-up start at [idx].
    No-op when the stream is already at or past [idx].
    @raise Invalid_argument if the stream is leading. *)

type tail
(** Opaque acceptor salvage state: the promised epoch plus every
    accepted-but-uncommitted slot above the commit index. *)

val export_tail : t -> tail

val import_tail : t -> tail -> unit
(** Graft a salvaged tail onto a freshly bootstrapped stream (after
    {!inject_committed} replayed the journal). Used when an {e alive}
    replica is voluntarily rebuilt — e.g. a tainted ex-leader: its
    database is suspect but its Paxos acceptor state is sound, and an
    accepted-but-uncommitted slot here may be the last surviving copy of
    an entry committed at a since-dead leader. Slots at or below the new
    commit index are skipped; higher-epoch slots win. Raises
    [Invalid_argument] if the stream is leading. *)

val is_leading : t -> bool
val is_caught_up : t -> bool
(** Leader only: the Prepare phase finished and every slot it adopted has
    committed — the stream is ready for the epoch-sealing no-op. *)

val commit_index : t -> int
(** Highest committed index on this replica (-1 when empty). *)

val next_index : t -> int

val retained_slots : t -> int
(** Live slots currently held (bounded by log compaction: the leader
    truncates below the minimum commit index it has heard from every
    replica, and piggybacks that bound to followers — so any future
    leader's Prepare, which starts at its own commit index, never needs a
    discarded slot). A replica that falls behind the bound forever (e.g.
    one that crashed) rejoins through {e bootstrap}, exactly as in the
    paper's §4.3. *)

val truncated_below : t -> int

val set_trunc_floor : t -> int -> unit
(** Raise the checkpoint-cover floor (monotone): a quorum-stable
    checkpoint covers every slot below it, so {e leader-side} compaction
    may advance to the floor even while a peer's commit index lags — that
    peer is expected to rebuild from the checkpoint (the
    InstallSnapshot discipline), and a candidate behind the floor
    abdicates instead of completing Prepare. Followers learn the bound
    through the piggybacked [trunc_upto]. *)

val trunc_floor : t -> int

val set_no_truncate : t -> bool -> unit
(** Ablation: disable slot compaction entirely (the [--no-truncate]
    mode); [trunc_upto] advertisements are ignored and the local log
    retains every slot. *)

val trunc_stalled : t -> bool
(** Log catch-up is wedged behind a peer's compaction floor: the slots
    this replica needs next were truncated cluster-wide, so only a
    checkpoint rebuild can make progress. Cleared by any commit
    progress. *)

val coalesce_factor : t -> float
(** EWMA (alpha 1/8) of proposals carried per proposed quorum round,
    >= 1.0. The batcher's closed loop folds it into the amortisation of
    [entry_overhead_ns]; stays 1.0 when coalescing is off. *)

val stats : t -> stats
