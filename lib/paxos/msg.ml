type accepted_slot = { a_idx : int; a_epoch : int; a_entry : Store.Wire.entry }

type elect =
  | Request_vote of { epoch : int; candidate : int }
  | Vote of { epoch : int; granted : bool }
  | Heartbeat of { epoch : int; leader : int }
  | Timeout_now of { epoch : int }

type stream_msg =
  | Prepare of { epoch : int; from_idx : int }
  | Promise of {
      epoch : int;
      commit_idx : int;
      truncated_below : int;
      accepted : accepted_slot list;
    }
  | Accept of { epoch : int; idx : int; commit_idx : int; entry : Store.Wire.entry }
  | Accepted of { epoch : int; idx : int; commit_idx : int }
  | Commit of { epoch : int; commit_idx : int; trunc_upto : int }
  | Fetch of { from_idx : int }
  | Fetch_rep of { commit_idx : int; truncated_below : int; entries : accepted_slot list }
  | Nack of { epoch : int }

type reply =
  | Ok_released
  | Ok_read of { value : string }
  | Aborted
  | Not_leader of { hint : int option }
  | Busy

type body =
  | Elect of elect
  | Stream of { stream : int; msg : stream_msg }
  | Client_req of { cid : int; seq : int; payload : string }
  | Client_rep of { cid : int; seq : int; reply : reply }
  | Read_req of { cid : int; seq : int; payload : string }
  | Read_lease of { epoch : int; until : int }

type t = { from : int; body : body }

let header = 24 (* from + stream tag + variant tag + framing *)

let slots_size slots =
  List.fold_left (fun acc s -> acc + 16 + Store.Wire.byte_size s.a_entry) 0 slots

let size t =
  header
  +
  match t.body with
  | Elect _ -> 16
  | Client_req { payload; _ } -> 16 + String.length payload
  | Client_rep { reply = Ok_read { value }; _ } -> 16 + String.length value
  | Client_rep _ -> 16
  | Read_req { payload; _ } -> 16 + String.length payload
  | Read_lease _ -> 16
  | Stream { msg; _ } -> (
      match msg with
      | Prepare _ | Accepted _ | Commit _ | Fetch _ | Nack _ -> 16
      | Promise { accepted; _ } -> 16 + slots_size accepted
      | Accept { entry; _ } -> 24 + Store.Wire.byte_size entry
      | Fetch_rep { entries; _ } -> 16 + slots_size entries)

let pp fmt t =
  let body =
    match t.body with
    | Elect (Request_vote { epoch; candidate }) ->
        Printf.sprintf "RequestVote(e=%d,c=%d)" epoch candidate
    | Elect (Vote { epoch; granted }) -> Printf.sprintf "Vote(e=%d,%b)" epoch granted
    | Elect (Heartbeat { epoch; leader }) ->
        Printf.sprintf "Heartbeat(e=%d,l=%d)" epoch leader
    | Elect (Timeout_now { epoch }) -> Printf.sprintf "TimeoutNow(e=%d)" epoch
    | Client_req { cid; seq; payload } ->
        Printf.sprintf "ClientReq(c=%d,s=%d,|p|=%d)" cid seq (String.length payload)
    | Client_rep { cid; seq; reply } ->
        let r =
          match reply with
          | Ok_released -> "ok"
          | Ok_read { value } -> Printf.sprintf "ok-read(|v|=%d)" (String.length value)
          | Aborted -> "aborted"
          | Not_leader { hint = Some h } -> Printf.sprintf "not-leader(hint=%d)" h
          | Not_leader { hint = None } -> "not-leader"
          | Busy -> "busy"
        in
        Printf.sprintf "ClientRep(c=%d,s=%d,%s)" cid seq r
    | Read_req { cid; seq; payload } ->
        Printf.sprintf "ReadReq(c=%d,s=%d,|p|=%d)" cid seq (String.length payload)
    | Read_lease { epoch; until } ->
        Printf.sprintf "ReadLease(e=%d,until=%d)" epoch until
    | Stream { stream; msg } ->
        let m =
          match msg with
          | Prepare { epoch; from_idx } -> Printf.sprintf "Prepare(e=%d,i>=%d)" epoch from_idx
          | Promise { epoch; commit_idx; truncated_below; accepted } ->
              Printf.sprintf "Promise(e=%d,ci=%d,tr=%d,|acc|=%d)" epoch commit_idx
                truncated_below (List.length accepted)
          | Accept { epoch; idx; commit_idx; _ } ->
              Printf.sprintf "Accept(e=%d,i=%d,ci=%d)" epoch idx commit_idx
          | Accepted { epoch; idx; commit_idx } ->
              Printf.sprintf "Accepted(e=%d,i=%d,ci=%d)" epoch idx commit_idx
          | Commit { epoch; commit_idx; trunc_upto } ->
              Printf.sprintf "Commit(e=%d,ci=%d,tr=%d)" epoch commit_idx trunc_upto
          | Fetch { from_idx } -> Printf.sprintf "Fetch(i>=%d)" from_idx
          | Fetch_rep { commit_idx; truncated_below; entries } ->
              Printf.sprintf "FetchRep(ci=%d,tr=%d,|e|=%d)" commit_idx truncated_below
                (List.length entries)
          | Nack { epoch } -> Printf.sprintf "Nack(e=%d)" epoch
        in
        Printf.sprintf "S%d:%s" stream m
  in
  Format.fprintf fmt "[%d]%s" t.from body
