let src = Logs.Src.create "paxos.election" ~doc:"Leader election events"

module Log = (val Logs.src_log src : Logs.LOG)

type role = Leader | Follower | Candidate

type t = {
  net : Msg.t Sim.Net.t;
  me : int;
  pool : int; (* broadcast bound: every replica slot, voter or not *)
  mutable view : Member.view;
  mutable mgen : int; (* membership generation of [view] *)
  hb_interval : int;
  base_timeout : int;
  rng : Sim.Rng.t;
  mutable role : role;
  mutable cur_epoch : int;
  mutable voted_epoch : int;
  mutable voted_for : int option; (* who we voted for in voted_epoch *)
  mutable eligible : bool; (* may stand for election (false once tainted) *)
  mutable votes : int list;
  mutable last_heartbeat : int;
  mutable leader : int option;
  mutable my_timeout : int;
  mutable failed_candidacies : int;
      (* consecutive candidacies without hearing a winner: drives capped
         exponential backoff so repeated split votes converge *)
  on_leader_elected : epoch:int -> unit;
  on_new_epoch : epoch:int -> leader:int option -> unit;
  on_heartbeat_tick : unit -> unit;
}

let create net ~me ?peers ?view ?(heartbeat_interval = 100 * Sim.Engine.ms)
    ?(election_timeout = Sim.Engine.s) ?initial_leader ~on_leader_elected ~on_new_epoch
    ?(on_heartbeat_tick = fun () -> ()) () =
  let eng = Sim.Net.engine net in
  (* [peers] bounds the replica slots: the net may carry extra
     non-replica nodes (client sessions) beyond the first [peers]. *)
  let pool = match peers with Some p -> p | None -> Sim.Net.nodes net in
  let t =
    {
      net;
      me;
      pool;
      view =
        (match view with
        | Some v -> v
        | None -> Member.stable (List.init pool Fun.id));
      mgen = 0;
      hb_interval = heartbeat_interval;
      base_timeout = election_timeout;
      rng = Sim.Rng.split (Sim.Engine.rng eng);
      role = Follower;
      cur_epoch = 0;
      voted_epoch = 0;
      voted_for = None;
      eligible = true;
      votes = [];
      last_heartbeat = Sim.Engine.now eng;
      leader = None;
      my_timeout = election_timeout;
      failed_candidacies = 0;
      on_leader_elected;
      on_new_epoch;
      on_heartbeat_tick;
    }
  in
  (match initial_leader with
  | Some l ->
      t.cur_epoch <- 1;
      t.voted_epoch <- 1;
      t.voted_for <- Some l;
      t.leader <- Some l;
      if l = me then t.role <- Leader
  | None -> ());
  t

let send t ~dst body = Sim.Net.send t.net ~src:t.me ~dst { Msg.from = t.me; body }

(* Broadcast reaches every replica slot, not just voters: non-voting
   learners must see heartbeats (to track the leader) and a removed
   member must learn it was deposed. Dead slots drop the message. *)
let broadcast t body =
  for dst = 0 to t.pool - 1 do
    if dst <> t.me then send t ~dst body
  done

(* Step down into epoch [e]; [leader] may still be unknown. *)
let adopt t e leader =
  t.cur_epoch <- e;
  t.role <- Follower;
  t.leader <- leader;
  t.votes <- [];
  t.voted_for <- None;
  t.on_new_epoch ~epoch:e ~leader

(* Backoff multiplier is capped so a healed cluster still elects within a
   small constant of the base timeout. *)
let backoff_cap = 2

let randomize_timeout t =
  let mult = 1 lsl min t.failed_candidacies backoff_cap in
  t.my_timeout <- (t.base_timeout * mult) + Sim.Rng.int t.rng (t.base_timeout / 2)

let become_leader t =
  Log.debug (fun m -> m "replica %d becomes leader of epoch %d" t.me t.cur_epoch);
  t.role <- Leader;
  t.failed_candidacies <- 0;
  t.leader <- Some t.me;
  t.on_leader_elected ~epoch:t.cur_epoch;
  broadcast t (Msg.Elect (Msg.Heartbeat { epoch = t.cur_epoch; leader = t.me }))

let start_election t =
  let e = t.cur_epoch + 1 in
  Log.debug (fun m -> m "replica %d starts election for epoch %d" t.me e);
  t.cur_epoch <- e;
  t.role <- Candidate;
  t.voted_epoch <- e;
  t.voted_for <- Some t.me;
  t.votes <- [ t.me ];
  t.leader <- None;
  t.last_heartbeat <- Sim.Engine.now (Sim.Net.engine t.net);
  t.failed_candidacies <- t.failed_candidacies + 1;
  randomize_timeout t;
  t.on_new_epoch ~epoch:e ~leader:None;
  if Member.quorum t.view [ t.me ] then become_leader t
  else broadcast t (Msg.Elect (Msg.Request_vote { epoch = e; candidate = t.me }))

let handle t msg ~from =
  let now = Sim.Engine.now (Sim.Net.engine t.net) in
  match msg with
  | Msg.Request_vote { epoch = e; candidate } ->
      if e > t.cur_epoch then adopt t e None;
      if e < t.cur_epoch then
        (* Stale candidate (e.g. freshly restarted): answering with our
           epoch lets it adopt instead of churning through elections. *)
        send t ~dst:candidate
          (Msg.Elect (Msg.Vote { epoch = t.cur_epoch; granted = false }))
      else if
        t.voted_epoch < e || (t.voted_epoch = e && t.voted_for = Some candidate)
      then begin
        (* Re-granting a duplicate request is safe and tolerates a lost
           Vote: the candidate retries, we answer again. *)
        t.voted_epoch <- e;
        t.voted_for <- Some candidate;
        t.last_heartbeat <- now;
        send t ~dst:candidate (Msg.Elect (Msg.Vote { epoch = e; granted = true }))
      end
      else send t ~dst:candidate (Msg.Elect (Msg.Vote { epoch = e; granted = false }))
  | Msg.Vote { epoch = e; granted } ->
      if e > t.cur_epoch then adopt t e None
      else if t.role = Candidate && e = t.cur_epoch && granted then begin
        if not (List.mem from t.votes) then t.votes <- from :: t.votes;
        (* Joint-consensus rule: during a C_old,new transition the vote
           set must hold a majority of both configurations (and grants
           from non-voting learners never count). *)
        if Member.quorum t.view t.votes then become_leader t
      end
  | Msg.Heartbeat { epoch = e; leader } ->
      if e > t.cur_epoch then begin
        adopt t e (Some leader);
        t.last_heartbeat <- now;
        if t.failed_candidacies > 0 then begin
          t.failed_candidacies <- 0;
          randomize_timeout t
        end
      end
      else if e = t.cur_epoch && leader <> t.me then begin
        t.role <- Follower;
        if t.leader <> Some leader then begin
          t.leader <- Some leader;
          t.on_new_epoch ~epoch:e ~leader:(Some leader)
        end;
        t.last_heartbeat <- now;
        if t.failed_candidacies > 0 then begin
          t.failed_candidacies <- 0;
          randomize_timeout t
        end
      end
  | Msg.Timeout_now { epoch = e } ->
      (* Planned handoff: the draining leader grants immediate candidacy.
         Stand right away (no timeout wait) — but only if we may lead at
         all, and only if the grant isn't stale. *)
      if
        e >= t.cur_epoch && t.role <> Leader && t.eligible
        && Member.mem t.view t.me
      then begin
        if e > t.cur_epoch then adopt t e None;
        start_election t
      end

let observe_epoch t e = if e > t.cur_epoch then adopt t e None

let start t =
  let eng = Sim.Net.engine t.net in
  Sim.Engine.spawn eng ~name:(Printf.sprintf "election-%d" t.me) (fun () ->
      randomize_timeout t;
      t.last_heartbeat <- Sim.Engine.now eng;
      if t.role = Leader then t.on_leader_elected ~epoch:t.cur_epoch;
      while true do
        if t.role = Leader then begin
          broadcast t (Msg.Elect (Msg.Heartbeat { epoch = t.cur_epoch; leader = t.me }));
          t.on_heartbeat_tick ()
        end
        else if
          t.eligible
          && Member.mem t.view t.me
          && Sim.Engine.time () - t.last_heartbeat > t.my_timeout
        then start_election t;
        Sim.Engine.sleep t.hb_interval
      done)

type vote = { v_epoch : int; v_voted_epoch : int; v_voted_for : int option }

let export_vote t =
  { v_epoch = t.cur_epoch; v_voted_epoch = t.voted_epoch; v_voted_for = t.voted_for }

(* Voluntary-rebuild salvage: carrying the vote across the rebuild keeps
   the replica from granting a second vote in an epoch it already voted
   in. Fields are set directly — the replica is mid-bootstrap and the
   step-down callbacks must not fire. *)
let import_vote t v =
  if v.v_epoch > t.cur_epoch then t.cur_epoch <- v.v_epoch;
  if v.v_voted_epoch > t.voted_epoch then begin
    t.voted_epoch <- v.v_voted_epoch;
    t.voted_for <- v.v_voted_for
  end

(* Adopt a membership view, keyed by its generation so replays of older
   config entries are ignored. Candidacy backoff is reset — the old
   split-vote history says nothing about the new configuration — but
   vote state ([voted_epoch]/[voted_for]) is deliberately left alone:
   clearing it here would let a removed-then-readded replica grant a
   second vote in a ballot it already voted in, electing two leaders. *)
let set_view t view ~gen =
  if gen > t.mgen then begin
    t.mgen <- gen;
    t.view <- view;
    if t.failed_candidacies > 0 then begin
      t.failed_candidacies <- 0;
      randomize_timeout t
    end
  end

let view t = t.view
let mgen t = t.mgen
let failed_candidacies t = t.failed_candidacies
let set_eligible t b = t.eligible <- b
let eligible t = t.eligible
let role t = t.role
let is_leader t = t.role = Leader
let epoch t = t.cur_epoch
let leader_id t = t.leader
let heartbeat_interval t = t.hb_interval
