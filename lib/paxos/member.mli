(** Cluster membership views for joint-consensus reconfiguration
    (Raft §6 / the C_old,new discipline, applied to this codebase's
    Paxos streams).

    A membership change never jumps from [Stable C_old] to
    [Stable C_new] directly: the leader first replicates (and everyone
    adopts, at {e accept} time) the transitional [Joint (C_old, C_new)]
    view, under which every quorum — votes and accept-acks alike — must
    hold a majority of {e both} configurations. Only once the joint
    config entry is committed under that rule is [Stable C_new]
    replicated. Any two quorums taken anywhere along the transition
    therefore intersect, which is the whole safety argument: no two
    leaders, no two chosen values, whatever the timing of adoption. *)

type config = int list
(** Sorted, duplicate-free voter node ids. *)

type view =
  | Stable of config
  | Joint of config * config  (** [(C_old, C_new)] transitional view *)

val stable : int list -> view
(** Normalizes (sorts, dedups). @raise Invalid_argument when empty. *)

val joint : old_:int list -> new_:int list -> view
(** @raise Invalid_argument when either side is empty. *)

val voters : view -> config
(** All voting members — for [Joint], the union of both sides. *)

val mem : view -> int -> bool
val size : view -> int

val quorum : view -> int list -> bool
(** Do the (deduplicated) acknowledgers [acks] form a quorum under this
    view? [Stable c]: a majority of [c]. [Joint (o, n)]: a majority of
    [o] {e and} a majority of [n]. Non-voters in [acks] (learners) are
    ignored. *)

val equal : view -> view -> bool
val pp : Format.formatter -> view -> unit
