type config = int list

type view = Stable of config | Joint of config * config

let norm c = List.sort_uniq compare c

let stable c =
  match norm c with
  | [] -> invalid_arg "Member.stable: empty membership"
  | c -> Stable c

let joint ~old_ ~new_ =
  match (norm old_, norm new_) with
  | [], _ | _, [] -> invalid_arg "Member.joint: empty membership"
  | o, n -> Joint (o, n)

let voters = function
  | Stable c -> c
  | Joint (o, n) -> norm (o @ n)

let mem view i = List.mem i (voters view)

let size view = List.length (voters view)

let majority_of c = (List.length c / 2) + 1

(* Count only acks from actual voters of [c]: ack lists may carry
   non-voting learners (they answer Accepts like everyone else), and a
   quorum that counted them could commit without intersecting the voting
   membership. *)
let config_quorum c acks =
  let hits = List.length (List.filter (fun a -> List.mem a c) acks) in
  hits >= majority_of c

(* The joint-consensus rule: during a C_old,new transition an operation
   needs a majority of *each* configuration, so any two quorums — old
   rule, new rule, or joint — intersect, and two leaders can never be
   elected (or two values chosen) across the switch. *)
let quorum view acks =
  match view with
  | Stable c -> config_quorum c acks
  | Joint (o, n) -> config_quorum o acks && config_quorum n acks

let equal a b =
  match (a, b) with
  | Stable x, Stable y -> x = y
  | Joint (a1, a2), Joint (b1, b2) -> a1 = b1 && a2 = b2
  | Stable _, Joint _ | Joint _, Stable _ -> false

let pp fmt = function
  | Stable c ->
      Format.fprintf fmt "{%s}" (String.concat "," (List.map string_of_int c))
  | Joint (o, n) ->
      Format.fprintf fmt "{%s}+{%s}"
        (String.concat "," (List.map string_of_int o))
        (String.concat "," (List.map string_of_int n))
