(** Wire messages for the replication layer.

    One cluster-wide message type covers the election module (replica
    level, one instance per machine) and every Paxos stream (one instance
    per database worker thread). Stream messages are tagged with their
    stream id so a single network inbox per replica can dispatch them. *)

type accepted_slot = {
  a_idx : int;
  a_epoch : int;  (** epoch under which the value was accepted *)
  a_entry : Store.Wire.entry;
}

type elect =
  | Request_vote of { epoch : int; candidate : int }
  | Vote of { epoch : int; granted : bool }
  | Heartbeat of { epoch : int; leader : int }
  | Timeout_now of { epoch : int }
      (** planned leader handoff: the draining leader (at [epoch]) grants
          the target immediate candidacy, so it starts an election at
          [epoch + 1] without waiting out its election timer *)

type stream_msg =
  | Prepare of { epoch : int; from_idx : int }
      (** phase 1: new leader asks for accepted values at [idx >= from_idx] *)
  | Promise of {
      epoch : int;
      commit_idx : int;
      truncated_below : int;
          (** the promiser's compaction floor: a candidate whose own
              commit index sits below it can never learn the missing
              (checkpoint-covered) slots from the log and must rebuild
              from a checkpoint instead of completing Prepare *)
      accepted : accepted_slot list;
    }
  | Accept of { epoch : int; idx : int; commit_idx : int; entry : Store.Wire.entry }
      (** phase 2; piggybacks the leader's commit index *)
  | Accepted of { epoch : int; idx : int; commit_idx : int }
      (** piggybacks the acceptor's own commit index, which feeds the
          leader's safe log-truncation bound *)
  | Commit of { epoch : int; commit_idx : int; trunc_upto : int }
      (** [trunc_upto]: every replica has committed below this index, so
          followers may discard those slots (log compaction) *)
  | Fetch of { from_idx : int }
      (** catch-up: ask for committed entries starting at [from_idx] *)
  | Fetch_rep of { commit_idx : int; truncated_below : int; entries : accepted_slot list }
      (** [truncated_below]: the donor's compaction floor — a fetcher
          whose gap starts beneath it is behind the checkpoint cover and
          stalls ({!Stream.trunc_stalled}) until rebuilt *)
  | Nack of { epoch : int }  (** receiver has promised a higher epoch *)

type reply =
  | Ok_released
      (** the transaction committed, fell under the watermark, and its
          result was released — the exactly-once ack *)
  | Ok_read of { value : string }
      (** a snapshot read served at the replica's pinned watermark;
          [value] is the app-encoded result *)
  | Aborted  (** user-level abort: the transaction had no effect anywhere *)
  | Not_leader of { hint : int option }
      (** receiver is not serving; [hint] is its current guess at the
          leader, for client redirect *)
  | Busy  (** admission control shed the request; client should back off *)

type body =
  | Elect of elect
  | Stream of { stream : int; msg : stream_msg }
  | Client_req of { cid : int; seq : int; payload : string }
      (** client session [cid] submits its [seq]-th request; [payload] is
          an app-defined operation encoding *)
  | Client_rep of { cid : int; seq : int; reply : reply }
  | Read_req of { cid : int; seq : int; payload : string }
      (** read-only session request: served from a watermark-pinned
          snapshot by any lease-holding replica, never proposed to Paxos *)
  | Read_lease of { epoch : int; until : int }
      (** leader grant riding the heartbeat tick: the receiver may serve
          snapshot reads until virtual time [until], provided its own
          election epoch still equals [epoch] *)

type t = { from : int; body : body }

val size : t -> int
(** Approximate wire size in bytes, for network accounting. *)

val pp : Format.formatter -> t -> unit
