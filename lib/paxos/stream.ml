type slot = {
  mutable s_epoch : int; (* ballot under which the value was accepted *)
  mutable s_entry : Store.Wire.entry;
  mutable s_acks : int list; (* leader bookkeeping for the current ballot *)
}

type leader_state =
  | Idle
  | Preparing of { mutable promises : int list (* who answered *) }
  | Active

type stats = {
  proposals : int;
  commits : int;
  nacks : int;
  fetches : int;
  truncated : int;
  retransmits : int;
  coalesced : int;
}

(* Truncation batching: only compact once this many slots are reclaimable,
   to avoid per-commit churn. *)
let truncate_batch = 64

let default_fetch_timeout = 100 * Sim.Engine.ms

type t = {
  net : Msg.t Sim.Net.t;
  stream_id : int;
  me : int;
  pool : int; (* replica slots on the net; broadcast bound *)
  mutable view : Member.view; (* voting membership (quorum rule) *)
  mutable mgen : int; (* membership generation of [view] *)
  mutable learners : int list;
  (* Non-voting slots currently catching up: they gate log truncation
     (so their catch-up source survives) but never count in quorums. *)
  slots : (int, slot) Hashtbl.t;
  mutable promised : int;
  mutable commit_idx : int;
  mutable next_idx : int;
  mutable lstate : leader_state;
  mutable leader_epoch : int;
  mutable recovery_target : int; (* leader: last index adopted during Prepare *)
  mutable promise_slots : Msg.accepted_slot list list; (* gathered during Prepare *)
  pending : Store.Wire.entry Queue.t;
  (* Proposal coalescing (adaptive-batching mode): while a previous
     quorum round is still in flight, newly proposed entries accumulate
     here and go out as ONE merged entry once the pipeline drains —
     bursts of small adaptive batches then pay the fixed per-entry
     consensus cost once instead of per batch. Same-epoch entries only;
     order (and hence per-stream timestamp monotonicity) is preserved. *)
  coalesce : bool;
  coalesce_max_bytes : int;
  cbuf : Store.Wire.entry Queue.t;
  mutable cbuf_bytes : int;
  mutable coalesce_ewma : float; (* entries per proposed round, >= 1 *)
  mutable fetch_inflight : bool;
  fetch_timeout : int;
  (* A Fetch or its reply can be lost; retry once the deadline passes and
     another commit advertisement shows we are still behind. *)
  mutable fetch_deadline : int;
  (* Log compaction: slots below [truncated_below] have been discarded.
     The leader may only truncate below the minimum commit index it has
     heard from every peer (piggybacked on Accepted), so any future
     leader's Prepare — which starts at that leader's own commit index —
     never asks for a discarded slot. *)
  mutable truncated_below : int;
  (* Checkpoint-cover floor: a quorum-stable checkpoint covers every slot
     below it, so the leader may truncate up to here even while some peer's
     commit index lags — that peer rebuilds from the checkpoint instead of
     the log (the Raft InstallSnapshot discipline). Monotone. *)
  mutable trunc_floor : int;
  (* Ablation switch: retain every slot forever (--no-truncate). *)
  mutable no_truncate : bool;
  (* Set when a peer's advertised compaction floor proves the slots this
     replica still needs are gone cluster-wide: log catch-up can never
     complete and only a checkpoint rebuild unwedges it. Cleared on any
     commit progress (another donor still held the slots). *)
  mutable trunc_stalled : bool;
  peer_commit : int array;
  on_commit : idx:int -> Store.Wire.entry -> unit;
  on_higher_epoch : int -> unit;
  on_config : Store.Wire.member_change -> unit;
  mutable s_proposals : int;
  mutable s_commits : int;
  mutable s_nacks : int;
  mutable s_fetches : int;
  mutable s_truncated : int;
  mutable s_retransmits : int;
  mutable s_coalesced : int;
}

let create net ?peers ?view ?(fetch_timeout = default_fetch_timeout)
    ?(coalesce = false) ?(coalesce_max_bytes = 1024 * 1024) ~id ~me ~on_commit
    ~on_higher_epoch ?(on_config = fun _ -> ()) () =
  (* [peers] bounds the replica slots: the net may carry extra
     non-replica nodes (client sessions) beyond the first [peers]. *)
  let pool = match peers with Some p -> p | None -> Sim.Net.nodes net in
  {
    net;
    stream_id = id;
    me;
    pool;
    view =
      (match view with
      | Some v -> v
      | None -> Member.stable (List.init pool Fun.id));
    mgen = 0;
    learners = [];
    slots = Hashtbl.create 256;
    promised = 0;
    commit_idx = -1;
    next_idx = 0;
    lstate = Idle;
    leader_epoch = 0;
    recovery_target = -1;
    promise_slots = [];
    pending = Queue.create ();
    coalesce;
    coalesce_max_bytes;
    cbuf = Queue.create ();
    cbuf_bytes = 0;
    coalesce_ewma = 1.0;
    fetch_inflight = false;
    fetch_timeout;
    fetch_deadline = 0;
    truncated_below = 0;
    trunc_floor = 0;
    no_truncate = false;
    trunc_stalled = false;
    peer_commit = Array.make pool (-1);
    on_commit;
    on_higher_epoch;
    on_config;
    s_proposals = 0;
    s_commits = 0;
    s_nacks = 0;
    s_fetches = 0;
    s_truncated = 0;
    s_retransmits = 0;
    s_coalesced = 0;
  }

let id t = t.stream_id

(* Membership views are adopted at *accept* time (the joint-consensus
   discipline), keyed by generation so stale replays are ignored. *)
let set_view t view ~gen =
  if gen > t.mgen then begin
    t.mgen <- gen;
    t.view <- view
  end

let set_learners t l = t.learners <- l
let view t = t.view

let note_config t (e : Store.Wire.entry) =
  match e.Store.Wire.config with Some c -> t.on_config c | None -> ()

let send t ~dst msg =
  let m = { Msg.from = t.me; body = Msg.Stream { stream = t.stream_id; msg } } in
  Sim.Net.send t.net ~size:(Msg.size m) ~src:t.me ~dst m

(* Broadcast reaches every replica slot: non-voting learners replicate
   the log too (that is how they catch up), they just never count toward
   a quorum. Dead slots drop the message. *)
let broadcast t msg =
  let m = { Msg.from = t.me; body = Msg.Stream { stream = t.stream_id; msg } } in
  for dst = 0 to t.pool - 1 do
    if dst <> t.me then Sim.Net.send t.net ~size:(Msg.size m) ~src:t.me ~dst m
  done

let deliver t idx =
  let slot = Hashtbl.find t.slots idx in
  t.s_commits <- t.s_commits + 1;
  t.trunc_stalled <- false;
  note_config t slot.s_entry;
  t.on_commit ~idx slot.s_entry

(* Discard slots below [upto]; [upto] must already be committed locally. *)
let truncate_below t upto =
  let upto = min upto (t.commit_idx + 1) in
  if (not t.no_truncate) && upto - t.truncated_below >= truncate_batch then begin
    for idx = t.truncated_below to upto - 1 do
      if Hashtbl.mem t.slots idx then begin
        Hashtbl.remove t.slots idx;
        t.s_truncated <- t.s_truncated + 1
      end
    done;
    t.truncated_below <- upto
  end

(* Leader: every voter (and we) has committed below this bound — or the
   slots beneath it are covered by a quorum-stable checkpoint
   ([trunc_floor]), in which case a peer that never committed them
   rebuilds from the checkpoint rather than the log. Either way no future
   Prepare that can *complete* starts beneath the bound. Only current
   voters and registered learners gate the bound: a removed member's
   frozen commit index must not pin the log forever, and empty spare
   slots never report at all. *)
let safe_trunc_bound t =
  let bound = ref t.commit_idx in
  let gate peer =
    if peer <> t.me && peer < Array.length t.peer_commit then
      bound := min !bound t.peer_commit.(peer)
  in
  List.iter gate (Member.voters t.view);
  List.iter gate t.learners;
  max 0 (max (!bound + 1) (min t.trunc_floor (t.commit_idx + 1)))

(* EWMA (alpha 1/8) of entries carried per proposed quorum round; the
   batcher's closed loop reads it to amortise the per-entry overhead. *)
let note_round t k =
  t.coalesce_ewma <- (0.875 *. t.coalesce_ewma) +. (0.125 *. float_of_int k)

(* Merge buffered same-epoch entries, oldest first, into one log entry:
   per-stream proposal order is preserved, so the concatenated
   transaction list stays timestamp-monotone and the merged [last_ts] is
   the newest tail — followers and the watermark see exactly what they
   would have seen from the individual entries, minus the per-entry
   consensus rounds. *)
let merge_entries entries =
  match entries with
  | [ e ] -> e
  | e0 :: _ ->
      {
        Store.Wire.epoch = e0.Store.Wire.epoch;
        last_ts =
          List.fold_left (fun acc e -> max acc e.Store.Wire.last_ts) 0 entries;
        txns = List.concat_map (fun e -> e.Store.Wire.txns) entries;
        (* A buffered membership change must survive the merge; keep the
           newest generation (changes are serialized, so at most one is
           ever in flight). *)
        config =
          List.fold_left
            (fun acc e ->
              match (acc, e.Store.Wire.config) with
              | None, c -> c
              | Some a, Some c when c.Store.Wire.m_gen > a.Store.Wire.m_gen ->
                  Some c
              | Some _, _ -> acc)
            None entries;
      }
  | [] -> invalid_arg "Stream.merge_entries: empty"

(* Leader: commit successive slots once a majority has accepted them under
   the current ballot, then tell the followers where commit now stands.
   With coalescing on, a drained pipeline also releases the buffered
   proposals as one merged round. *)
let rec try_commit t =
  let rec advance () =
    match t.lstate with
    | Active | Preparing _ -> (
        let idx = t.commit_idx + 1 in
        match Hashtbl.find_opt t.slots idx with
        | Some slot
          when slot.s_epoch = t.leader_epoch && Member.quorum t.view slot.s_acks
          ->
            t.commit_idx <- idx;
            deliver t idx;
            advance ()
        | Some _ | None -> ())
    | Idle -> ()
  in
  let before = t.commit_idx in
  advance ();
  if t.commit_idx > before then begin
    let bound = safe_trunc_bound t in
    truncate_below t bound;
    broadcast t
      (Msg.Commit { epoch = t.leader_epoch; commit_idx = t.commit_idx; trunc_upto = bound })
  end;
  match t.lstate with
  | Active when t.coalesce && t.next_idx = t.commit_idx + 1 -> flush_coalesced t
  | Active | Preparing _ | Idle -> ()

and do_propose t entry =
  let idx = t.next_idx in
  t.next_idx <- idx + 1;
  t.s_proposals <- t.s_proposals + 1;
  note_config t entry;
  Hashtbl.replace t.slots idx
    { s_epoch = t.leader_epoch; s_entry = entry; s_acks = [ t.me ] };
  broadcast t
    (Msg.Accept { epoch = t.leader_epoch; idx; commit_idx = t.commit_idx; entry });
  try_commit t

and flush_coalesced t =
  if not (Queue.is_empty t.cbuf) then begin
    let k = Queue.length t.cbuf in
    let entries = List.of_seq (Queue.to_seq t.cbuf) in
    Queue.clear t.cbuf;
    t.cbuf_bytes <- 0;
    if k > 1 then t.s_coalesced <- t.s_coalesced + (k - 1);
    note_round t k;
    do_propose t (merge_entries entries)
  end

(* Follower: advance through slots accepted under ballot [e], up to the
   advertised commit index. A stale or missing slot triggers a fetch from
   the advertiser. *)
let advance_follower t ~e ~upto ~src =
  let continue = ref true in
  while !continue && t.commit_idx < upto do
    match Hashtbl.find_opt t.slots (t.commit_idx + 1) with
    | Some slot when slot.s_epoch = e ->
        t.commit_idx <- t.commit_idx + 1;
        deliver t t.commit_idx
    | Some _ | None -> continue := false
  done;
  if t.commit_idx < upto then begin
    let now = Sim.Engine.now (Sim.Net.engine t.net) in
    if (not t.fetch_inflight) || now >= t.fetch_deadline then begin
      t.fetch_inflight <- true;
      t.fetch_deadline <- now + t.fetch_timeout;
      t.s_fetches <- t.s_fetches + 1;
      send t ~dst:src (Msg.Fetch { from_idx = t.commit_idx + 1 })
    end
  end

let accepted_tail t ~from_idx =
  let acc = ref [] in
  Hashtbl.iter
    (fun idx slot ->
      if idx >= from_idx then
        acc := { Msg.a_idx = idx; a_epoch = slot.s_epoch; a_entry = slot.s_entry } :: !acc)
    t.slots;
  List.sort (fun a b -> compare a.Msg.a_idx b.Msg.a_idx) !acc

let finish_prepare t =
  (* Adopt, per slot, the value accepted under the highest ballot; fill
     interior gaps with no-ops; re-propose everything under our ballot. *)
  let best : (int, Msg.accepted_slot) Hashtbl.t = Hashtbl.create 64 in
  let max_idx = ref t.commit_idx in
  List.iter
    (fun slots ->
      List.iter
        (fun (s : Msg.accepted_slot) ->
          if s.a_idx > !max_idx then max_idx := s.a_idx;
          match Hashtbl.find_opt best s.a_idx with
          | Some cur when cur.Msg.a_epoch >= s.a_epoch -> ()
          | Some _ | None -> Hashtbl.replace best s.a_idx s)
        slots)
    t.promise_slots;
  t.promise_slots <- [];
  t.recovery_target <- !max_idx;
  t.lstate <- Active;
  for idx = t.commit_idx + 1 to !max_idx do
    let entry =
      match Hashtbl.find_opt best idx with
      | Some s -> s.Msg.a_entry
      | None -> Store.Wire.noop ~epoch:t.leader_epoch ~ts:0
    in
    note_config t entry;
    Hashtbl.replace t.slots idx
      { s_epoch = t.leader_epoch; s_entry = entry; s_acks = [ t.me ] };
    broadcast t
      (Msg.Accept { epoch = t.leader_epoch; idx; commit_idx = t.commit_idx; entry })
  done;
  t.next_idx <- !max_idx + 1;
  try_commit t;
  Queue.iter (fun e -> do_propose t e) t.pending;
  Queue.clear t.pending

let become_leader t ~epoch =
  if epoch < t.promised then invalid_arg "Stream.become_leader: stale epoch";
  t.promised <- epoch;
  t.leader_epoch <- epoch;
  t.fetch_inflight <- false;
  t.promise_slots <- [ accepted_tail t ~from_idx:(t.commit_idx + 1) ];
  let quorum = [ t.me ] in
  t.lstate <- Preparing { promises = quorum };
  if Member.quorum t.view quorum then finish_prepare t
  else broadcast t (Msg.Prepare { epoch; from_idx = t.commit_idx + 1 })

let step_down t =
  t.lstate <- Idle;
  Queue.clear t.pending;
  (* Buffered coalesced proposals were never proposed: like [pending],
     they are speculative work the new leader's recovery cannot see. *)
  Queue.clear t.cbuf;
  t.cbuf_bytes <- 0

let propose t entry =
  match t.lstate with
  | Active ->
      if t.coalesce && t.next_idx > t.commit_idx + 1 then begin
        (* A round is in flight: buffer, to go out merged once the
           pipeline drains. An epoch change or the byte cap forces the
           buffer out immediately (still one merged round). *)
        (match Queue.peek_opt t.cbuf with
        | Some e0 when e0.Store.Wire.epoch <> entry.Store.Wire.epoch ->
            flush_coalesced t
        | Some _ | None -> ());
        Queue.add entry t.cbuf;
        t.cbuf_bytes <- t.cbuf_bytes + Store.Wire.byte_size entry;
        if t.cbuf_bytes >= t.coalesce_max_bytes then flush_coalesced t
      end
      else begin
        if t.coalesce then note_round t 1;
        do_propose t entry
      end
  | Preparing _ -> Queue.add entry t.pending
  | Idle -> () (* not leading: the proposal is speculative and lost *)

(* Leader-side loss recovery, driven from the heartbeat tick. A lost
   Prepare wedges the Preparing phase; a lost Accept leaves a slot short
   of its majority; a lost Commit leaves followers behind. All three are
   idempotent to re-send: receivers dedup promises/acks by sender and
   ignore stale indices. *)
let retransmit t =
  match t.lstate with
  | Idle -> ()
  | Preparing _ ->
      t.s_retransmits <- t.s_retransmits + 1;
      broadcast t (Msg.Prepare { epoch = t.leader_epoch; from_idx = t.commit_idx + 1 })
  | Active ->
      for idx = t.commit_idx + 1 to t.next_idx - 1 do
        match Hashtbl.find_opt t.slots idx with
        | Some slot
          when slot.s_epoch = t.leader_epoch
               && not (Member.quorum t.view slot.s_acks) ->
            t.s_retransmits <- t.s_retransmits + 1;
            broadcast t
              (Msg.Accept
                 { epoch = t.leader_epoch; idx; commit_idx = t.commit_idx; entry = slot.s_entry })
        | Some _ | None -> ()
      done;
      if t.commit_idx >= 0 then
        broadcast t
          (Msg.Commit
             { epoch = t.leader_epoch; commit_idx = t.commit_idx; trunc_upto = t.truncated_below })

(* Bootstrap path: install one already-chosen entry at the next index, as
   if it had been learned through the protocol — [on_commit] fires, so the
   watermark/replay machinery sees exactly the durable history a surviving
   replica saw. Only valid on a non-leading (fresh) stream, fed in
   stream order from a donor's journal. *)
let inject_committed_at t ~idx (entry : Store.Wire.entry) =
  if t.lstate <> Idle then invalid_arg "Stream.inject_committed_at: stream is leading";
  if idx <= t.commit_idx then
    invalid_arg "Stream.inject_committed_at: index already committed";
  (* A gap below [idx] means the donor truncated those slots under a
     checkpoint cover; this replica installs the checkpoint image instead,
     so record the same compaction floor rather than fake slots. *)
  if idx > t.commit_idx + 1 then begin
    t.commit_idx <- idx - 1;
    if t.truncated_below < idx then t.truncated_below <- idx
  end;
  Hashtbl.replace t.slots idx
    { s_epoch = entry.Store.Wire.epoch; s_entry = entry; s_acks = [] };
  t.commit_idx <- idx;
  if t.next_idx <= idx then t.next_idx <- idx + 1;
  if entry.Store.Wire.epoch > t.promised then t.promised <- entry.Store.Wire.epoch;
  deliver t idx

let inject_committed t entry = inject_committed_at t ~idx:(t.commit_idx + 1) entry

(* Checkpoint bootstrap: slots below [idx] are committed cluster-wide and
   reflected in the checkpoint image this replica just installed, but
   absent from every donor's log. Record them as this replica's compaction
   floor so tail injection and ordinary catch-up start at [idx] instead of
   fetching slots that no longer exist anywhere. *)
let set_bootstrap_floor t ~idx =
  if t.lstate <> Idle then
    invalid_arg "Stream.set_bootstrap_floor: stream is leading";
  if idx > t.commit_idx + 1 then begin
    t.commit_idx <- idx - 1;
    if t.next_idx <= t.commit_idx then t.next_idx <- idx;
    if t.truncated_below < idx then t.truncated_below <- idx
  end

(* Salvage path for a *voluntary* rebuild of an alive replica: its Paxos
   state is sound even when its database is tainted, and its accepted-but-
   uncommitted slots may hold the last copy of an entry committed at a
   since-dead leader. Export them from the old stream and graft them onto
   the freshly bootstrapped one. *)
type tail = int * Msg.accepted_slot list

let export_tail t = (t.promised, accepted_tail t ~from_idx:(t.commit_idx + 1))

let import_tail t (promised, slots) =
  if t.lstate <> Idle then invalid_arg "Stream.import_tail: stream is leading";
  if promised > t.promised then t.promised <- promised;
  List.iter
    (fun (s : Msg.accepted_slot) ->
      if s.a_idx > t.commit_idx then (
        match Hashtbl.find_opt t.slots s.a_idx with
        | Some slot when slot.s_epoch >= s.a_epoch -> ()
        | Some slot ->
            slot.s_epoch <- s.a_epoch;
            slot.s_entry <- s.a_entry;
            slot.s_acks <- [];
            note_config t s.a_entry
        | None ->
            Hashtbl.replace t.slots s.a_idx
              { s_epoch = s.a_epoch; s_entry = s.a_entry; s_acks = [] };
            note_config t s.a_entry;
            if t.next_idx <= s.a_idx then t.next_idx <- s.a_idx + 1))
    slots

let handle t msg ~from =
  match msg with
  | Msg.Prepare { epoch; from_idx } ->
      if epoch >= t.promised then begin
        t.promised <- epoch;
        if t.lstate <> Idle && epoch > t.leader_epoch then step_down t;
        send t ~dst:from
          (Msg.Promise
             {
               epoch;
               commit_idx = t.commit_idx;
               truncated_below = t.truncated_below;
               accepted = accepted_tail t ~from_idx;
             })
      end
      else begin
        t.s_nacks <- t.s_nacks + 1;
        send t ~dst:from (Msg.Nack { epoch = t.promised })
      end
  | Msg.Promise { epoch; accepted; truncated_below; commit_idx = _ } -> (
      match t.lstate with
      | Preparing p when epoch = t.leader_epoch ->
          if truncated_below > t.commit_idx + 1 then begin
            (* The promiser compacted slots we never committed: they are
               checkpoint-covered and gone from the log, so completing
               Prepare here would fill committed indices with no-ops.
               Abdicate and wait for a checkpoint rebuild. *)
            t.trunc_stalled <- true;
            step_down t
          end
          else if not (List.mem from p.promises) then begin
            p.promises <- from :: p.promises;
            t.promise_slots <- accepted :: t.promise_slots;
            if Member.quorum t.view p.promises then finish_prepare t
          end
      | Preparing _ | Active | Idle -> ())
  | Msg.Accept { epoch; idx; commit_idx; entry } ->
      if epoch >= t.promised then begin
        t.promised <- epoch;
        if t.lstate <> Idle && epoch > t.leader_epoch then begin
          step_down t;
          t.on_higher_epoch epoch
        end;
        (if idx > t.commit_idx then
           match Hashtbl.find_opt t.slots idx with
           | Some slot when slot.s_epoch > epoch -> ()
           | Some slot ->
               slot.s_epoch <- epoch;
               slot.s_entry <- entry;
               slot.s_acks <- [];
               note_config t entry
           | None ->
               Hashtbl.replace t.slots idx { s_epoch = epoch; s_entry = entry; s_acks = [] };
               note_config t entry);
        advance_follower t ~e:epoch ~upto:commit_idx ~src:from;
        send t ~dst:from (Msg.Accepted { epoch; idx; commit_idx = t.commit_idx })
      end
      else begin
        t.s_nacks <- t.s_nacks + 1;
        send t ~dst:from (Msg.Nack { epoch = t.promised })
      end
  | Msg.Accepted { epoch; idx; commit_idx } -> (
      if commit_idx > t.peer_commit.(from) then t.peer_commit.(from) <- commit_idx;
      match t.lstate with
      | (Active | Preparing _) when epoch = t.leader_epoch -> (
          match Hashtbl.find_opt t.slots idx with
          | Some slot when slot.s_epoch = epoch ->
              if not (List.mem from slot.s_acks) then
                slot.s_acks <- from :: slot.s_acks;
              try_commit t
          | Some _ | None -> ())
      | Active | Preparing _ | Idle -> ())
  | Msg.Commit { epoch; commit_idx; trunc_upto } ->
      if epoch >= t.promised then begin
        t.promised <- epoch;
        advance_follower t ~e:epoch ~upto:commit_idx ~src:from;
        truncate_below t trunc_upto
      end
  | Msg.Fetch { from_idx } ->
      let entries =
        List.filter (fun (s : Msg.accepted_slot) -> s.a_idx <= t.commit_idx)
          (accepted_tail t ~from_idx)
      in
      send t ~dst:from
        (Msg.Fetch_rep
           { commit_idx = t.commit_idx; truncated_below = t.truncated_below; entries })
  | Msg.Fetch_rep { commit_idx; truncated_below; entries } ->
      t.fetch_inflight <- false;
      List.iter
        (fun (s : Msg.accepted_slot) ->
          if s.a_idx > t.commit_idx then
            match Hashtbl.find_opt t.slots s.a_idx with
            | Some slot when slot.s_epoch > s.a_epoch -> ()
            | Some slot ->
                slot.s_epoch <- s.a_epoch;
                slot.s_entry <- s.a_entry;
                slot.s_acks <- [];
                note_config t s.a_entry
            | None ->
                Hashtbl.replace t.slots s.a_idx
                  { s_epoch = s.a_epoch; s_entry = s.a_entry; s_acks = [] };
                note_config t s.a_entry)
        entries;
      (* These came from a replica that had them committed: trust up to
         its commit index as long as we hold contiguous entries. *)
      let continue = ref true in
      while !continue && t.commit_idx < commit_idx do
        match Hashtbl.find_opt t.slots (t.commit_idx + 1) with
        | Some _ ->
            t.commit_idx <- t.commit_idx + 1;
            deliver t t.commit_idx
        | None -> continue := false
      done;
      (* The donor is ahead yet compacted the very slot we need next: the
         gap can never be filled from the log. Flag for a checkpoint
         rebuild instead of refetching forever. *)
      if t.commit_idx < commit_idx && truncated_below > t.commit_idx + 1 then
        t.trunc_stalled <- true
  | Msg.Nack { epoch } ->
      if epoch > t.promised then begin
        t.promised <- epoch;
        if t.lstate <> Idle then step_down t;
        t.on_higher_epoch epoch
      end

let is_leading t = match t.lstate with Active | Preparing _ -> true | Idle -> false
let is_caught_up t = t.lstate = Active && t.commit_idx >= t.recovery_target
let commit_index t = t.commit_idx
let next_index t = t.next_idx

let retained_slots t = Hashtbl.length t.slots
let truncated_below t = t.truncated_below

let set_trunc_floor t idx = if idx > t.trunc_floor then t.trunc_floor <- idx
let trunc_floor t = t.trunc_floor
let set_no_truncate t b = t.no_truncate <- b
let trunc_stalled t = t.trunc_stalled
let coalesce_factor t = Float.max 1.0 t.coalesce_ewma

let stats t =
  {
    proposals = t.s_proposals;
    commits = t.s_commits;
    nacks = t.s_nacks;
    fetches = t.s_fetches;
    truncated = t.s_truncated;
    retransmits = t.s_retransmits;
    coalesced = t.s_coalesced;
  }
