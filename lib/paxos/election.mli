(** Leader election module — one instance per replica (paper §4).

    Replicas exchange heartbeats; a follower that misses them for an
    election timeout becomes a candidate, increments the epoch, and asks
    for votes. A majority of votes makes it leader. There is {e no} log
    up-to-dateness restriction on voting (this is Paxos, not Raft): leader
    completeness is provided by each stream's Prepare phase, which reads
    the accepted tail from a majority.

    All Paxos streams on a replica follow this single election: one epoch
    number orders all leaders, and [<epoch, timestamp>] pairs serialize
    transactions across failovers (§3.3). *)

type role = Leader | Follower | Candidate

type t

val create :
  Msg.t Sim.Net.t ->
  me:int ->
  ?peers:int ->
  ?view:Member.view ->
  ?heartbeat_interval:int ->
  ?election_timeout:int ->
  ?initial_leader:int ->
  on_leader_elected:(epoch:int -> unit) ->
  on_new_epoch:(epoch:int -> leader:int option -> unit) ->
  ?on_heartbeat_tick:(unit -> unit) ->
  unit ->
  t
(** [peers] is the replica-slot count — nodes [0 .. peers-1] of the net;
    defaults to every node. Pass it when the net also carries non-replica
    nodes (client sessions). [view] is the initial voting membership
    (defaults to all [peers] slots); heartbeats and vote requests still
    reach every slot so learners can follow. [on_leader_elected] fires on
    the replica that wins an election, before it starts heartbeating.
    [on_new_epoch] fires on every replica whenever it observes a new epoch
    (leader may be unknown yet). [on_heartbeat_tick] fires on the leader
    at every heartbeat — Rolis hooks the per-stream empty transactions
    here (§5). [initial_leader] seeds epoch 1 with a known leader so
    experiments skip the cold-start election; omit it to start from
    scratch. *)

val set_view : t -> Member.view -> gen:int -> unit
(** Adopt membership [view] at generation [gen] (ignored unless [gen]
    exceeds the current generation — config entries can be replayed out
    of order during catch-up). Resets candidacy backoff, but {e never}
    clears [voted_for]: a removed-then-readded replica must not vote
    twice in one ballot. *)

val view : t -> Member.view
val mgen : t -> int

val failed_candidacies : t -> int
(** Consecutive candidacies since this replica last heard a live leader.
    Election timeouts back off exponentially (capped) in this counter, so
    repeated split votes under a lossy network converge; hearing a
    heartbeat or winning resets it. *)

val start : t -> Sim.Engine.proc
(** Spawn the ticker process (heartbeats when leader, timeout checks when
    follower). Returns the process so a crash can kill it. *)

val handle : t -> Msg.elect -> from:int -> unit
(** Feed an election message from the dispatcher. *)

val observe_epoch : t -> int -> unit
(** A stream saw a higher epoch (e.g. in a Nack): step down / catch up. *)

type vote
(** Opaque vote-salvage state: current epoch plus the (epoch, candidate)
    of the last vote granted. *)

val export_vote : t -> vote

val import_vote : t -> vote -> unit
(** Carry the vote across a {e voluntary} rebuild of an alive replica so
    it cannot grant a second vote in an epoch it already voted in (the
    in-memory analogue of persisting [votedFor]). Call on a freshly
    created election, before the engine runs its ticker. *)

val set_eligible : t -> bool -> unit
(** An ineligible replica never stands for election (it still votes and
    follows). Used for {e tainted} ex-leaders whose local database holds
    speculative writes that were never released: they must not lead again
    until rebuilt, or they would serve diverged state. *)

val eligible : t -> bool

val role : t -> role
val is_leader : t -> bool
val epoch : t -> int
val leader_id : t -> int option
val heartbeat_interval : t -> int
