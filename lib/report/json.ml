type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---- serializer ---- *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to_string f =
  if Float.is_nan f || Float.abs f = Float.infinity then
    invalid_arg "Json.to_string: NaN/infinity is not representable in JSON"
  else begin
    (* %.17g round-trips any finite double; ensure a '.' or exponent so
       the value parses back as a Float, not an Int. *)
    let s = Printf.sprintf "%.17g" f in
    if String.contains s '.' || String.contains s 'e' || String.contains s 'n' then s
    else s ^ ".0"
  end

let to_string ?(pretty = false) t =
  let buf = Buffer.create 256 in
  let indent n =
    if pretty then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (2 * n) ' ')
    end
  in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_to_string f)
    | String s -> escape_string buf s
    | List [] -> Buffer.add_string buf "[]"
    | List xs ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char buf ',';
            indent (depth + 1);
            go (depth + 1) x)
          xs;
        indent depth;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj kvs ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            indent (depth + 1);
            escape_string buf k;
            Buffer.add_char buf ':';
            if pretty then Buffer.add_char buf ' ';
            go (depth + 1) v)
          kvs;
        indent depth;
        Buffer.add_char buf '}'
  in
  go 0 t;
  Buffer.contents buf

(* ---- parser ---- *)

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (s.[!pos] = ' ' || s.[!pos] = '\t' || s.[!pos] = '\n' || s.[!pos] = '\r')
    do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let h = String.sub s !pos 4 in
    pos := !pos + 4;
    match int_of_string_opt ("0x" ^ h) with
    | Some c -> c
    | None -> fail "bad \\u escape"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape";
           match s.[!pos] with
           | '"' -> advance (); Buffer.add_char buf '"'
           | '\\' -> advance (); Buffer.add_char buf '\\'
           | '/' -> advance (); Buffer.add_char buf '/'
           | 'b' -> advance (); Buffer.add_char buf '\b'
           | 'f' -> advance (); Buffer.add_char buf '\012'
           | 'n' -> advance (); Buffer.add_char buf '\n'
           | 'r' -> advance (); Buffer.add_char buf '\r'
           | 't' -> advance (); Buffer.add_char buf '\t'
           | 'u' ->
               advance ();
               let c = parse_hex4 () in
               (* Encode the code point as UTF-8; we only emit \u for
                  control characters, but accept any BMP code point. *)
               if c < 0x80 then Buffer.add_char buf (Char.chr c)
               else if c < 0x800 then begin
                 Buffer.add_char buf (Char.chr (0xC0 lor (c lsr 6)));
                 Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3F)))
               end
               else begin
                 Buffer.add_char buf (Char.chr (0xE0 lor (c lsr 12)));
                 Buffer.add_char buf (Char.chr (0x80 lor ((c lsr 6) land 0x3F)));
                 Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3F)))
               end
           | c -> fail (Printf.sprintf "bad escape \\%c" c));
          go ()
      | c ->
          advance ();
          Buffer.add_char buf c;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    while
      !pos < n
      &&
      match s.[!pos] with
      | '0' .. '9' -> true
      | '.' | 'e' | 'E' | '+' | '-' ->
          is_float := true;
          true
      | _ -> false
    do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "bad number %S" text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
          (* Integer overflow: fall back to float. *)
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> fail (Printf.sprintf "bad number %S" text))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) -> Error (Printf.sprintf "at %d: %s" at msg)

(* ---- accessors ---- *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
let to_list = function List xs -> Some xs | _ -> None
let to_int = function Int i -> Some i | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_string_opt = function String s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
