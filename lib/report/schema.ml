type stage_summary = {
  stage : string;
  count : int;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
}

type point = {
  series : string;
  x : float;
  metrics : (string * float) list;
  stages : stage_summary list;
}

type result = {
  fig : string;
  title : string;
  x_label : string;
  gated : bool;
  knobs : (string * string) list;
  points : point list;
}

type report = { schema : string; mode : string; results : result list }

let schema_version = "rolis-bench/1"
let make_report ~mode results = { schema = schema_version; mode; results }

(* ---- encoding ---- *)

let encode_stage s =
  Json.Obj
    [
      ("stage", Json.String s.stage);
      ("count", Json.Int s.count);
      ("p50_ms", Json.Float s.p50_ms);
      ("p95_ms", Json.Float s.p95_ms);
      ("p99_ms", Json.Float s.p99_ms);
    ]

let encode_point p =
  Json.Obj
    [
      ("series", Json.String p.series);
      ("x", Json.Float p.x);
      ("metrics", Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) p.metrics));
      ("stages", Json.List (List.map encode_stage p.stages));
    ]

let encode_result r =
  Json.Obj
    [
      ("fig", Json.String r.fig);
      ("title", Json.String r.title);
      ("x_label", Json.String r.x_label);
      ("gated", Json.Bool r.gated);
      ("knobs", Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) r.knobs));
      ("points", Json.List (List.map encode_point r.points));
    ]

let encode r =
  Json.Obj
    [
      ("schema", Json.String r.schema);
      ("mode", Json.String r.mode);
      ("results", Json.List (List.map encode_result r.results));
    ]

(* ---- decoding ---- *)

let ( let* ) r f = Result.bind r f

let field ctx name conv j =
  match Option.bind (Json.member name j) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%s: missing or ill-typed field %S" ctx name)

let map_result f xs =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | x :: rest -> (
        match f x with Ok v -> go (v :: acc) rest | Error _ as e -> e)
  in
  go [] xs

let decode_stage j =
  let ctx = "stage" in
  let* stage = field ctx "stage" Json.to_string_opt j in
  let* count = field ctx "count" Json.to_int j in
  let* p50_ms = field ctx "p50_ms" Json.to_float j in
  let* p95_ms = field ctx "p95_ms" Json.to_float j in
  let* p99_ms = field ctx "p99_ms" Json.to_float j in
  Ok { stage; count; p50_ms; p95_ms; p99_ms }

let decode_assoc name conv j =
  match Json.member name j with
  | Some (Json.Obj kvs) ->
      map_result
        (fun (k, v) ->
          match conv v with
          | Some v -> Ok (k, v)
          | None -> Error (Printf.sprintf "ill-typed entry %S in %S" k name))
        kvs
  | Some _ -> Error (Printf.sprintf "field %S must be an object" name)
  | None -> Error (Printf.sprintf "missing field %S" name)

let decode_point j =
  let ctx = "point" in
  let* series = field ctx "series" Json.to_string_opt j in
  let* x = field ctx "x" Json.to_float j in
  let* metrics = decode_assoc "metrics" Json.to_float j in
  let* stages =
    match Json.member "stages" j with
    | Some (Json.List xs) -> map_result decode_stage xs
    | Some _ -> Error "field \"stages\" must be a list"
    | None -> Ok []
  in
  Ok { series; x; metrics; stages }

let decode_result j =
  let ctx = "result" in
  let* fig = field ctx "fig" Json.to_string_opt j in
  let* title = field ctx "title" Json.to_string_opt j in
  let* x_label = field ctx "x_label" Json.to_string_opt j in
  let* gated = field ctx "gated" Json.to_bool j in
  let* knobs = decode_assoc "knobs" Json.to_string_opt j in
  let* points =
    match Json.member "points" j with
    | Some (Json.List xs) -> map_result decode_point xs
    | _ -> Error (Printf.sprintf "%s %s: missing list field \"points\"" ctx fig)
  in
  Ok { fig; title; x_label; gated; knobs; points }

let decode j =
  let* schema = field "report" "schema" Json.to_string_opt j in
  if schema <> schema_version then
    Error (Printf.sprintf "unsupported schema %S (want %S)" schema schema_version)
  else
    let* mode = field "report" "mode" Json.to_string_opt j in
    let* results =
      match Json.member "results" j with
      | Some (Json.List xs) -> map_result decode_result xs
      | _ -> Error "report: missing list field \"results\""
    in
    Ok { schema; mode; results }

let to_string r = Json.to_string ~pretty:true (encode r) ^ "\n"

let of_string s =
  let* j = Json.of_string s in
  decode j

let find_result r ~fig = List.find_opt (fun res -> res.fig = fig) r.results

let find_point res ~series ~x =
  List.find_opt (fun p -> p.series = series && Float.abs (p.x -. x) < 1e-9) res.points

let metric p name = List.assoc_opt name p.metrics
