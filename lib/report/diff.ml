type verdict = {
  fig : string;
  series : string;
  x : float;
  metric : string;
  base : float;
  cur : float;
  delta : float;
  regressed : bool;
}

type outcome = { verdicts : verdict list; missing : string list }

type direction = Higher_better | Lower_better | Informational

let has_prefix ~prefix name =
  String.length name >= String.length prefix
  && String.sub name 0 (String.length prefix) = prefix

let direction_of_metric name =
  if has_prefix ~prefix:"tput" name then Higher_better
    (* "ratio" (replay vs execute, Fig. 15) and "speedup" (bulk vs per-txn
       replay) are throughput quotients: falling means the fast path lost
       ground, so they gate upward like throughput. *)
  else if has_prefix ~prefix:"ratio" name || has_prefix ~prefix:"speedup" name
  then Higher_better
    (* "penalty" metrics (cross-shard 2PC cost, bench shards) are relative
       throughput losses: growth means distributed commits got dearer. *)
  else if has_prefix ~prefix:"penalty" name then Lower_better
  else if
    String.length name >= 3 && String.sub name (String.length name - 3) 3 = "_ms"
  then Lower_better
    (* "_words" metrics are deterministic Gc allocation counts (bench
       alloc): growth is a commit-path allocation regression. *)
  else if
    String.length name >= 6
    && String.sub name (String.length name - 6) 6 = "_words"
  then Lower_better
  else Informational

(* Signed relative change, positive = worse. Zero baselines carry no
   signal (an idle stage, an empty histogram): treat as not comparable. *)
let relative_worse dir ~base ~cur =
  if base = 0.0 then None
  else
    match dir with
    | Higher_better -> Some ((base -. cur) /. Float.abs base)
    | Lower_better -> Some ((cur -. base) /. Float.abs base)
    | Informational -> None

let point_metrics (p : Schema.point) =
  p.Schema.metrics
  @ List.concat_map
      (fun (s : Schema.stage_summary) ->
        [ (Printf.sprintf "stage:%s:p95_ms" s.Schema.stage, s.Schema.p95_ms) ])
      p.Schema.stages

let compare_points ~tolerance ~fig (bp : Schema.point) (cp : Schema.point) =
  let cur_metrics = point_metrics cp in
  List.filter_map
    (fun (name, base) ->
      match List.assoc_opt name cur_metrics with
      | None -> None (* metric disappeared: not gated, coverage is per-point *)
      | Some cur -> (
          match relative_worse (direction_of_metric name) ~base ~cur with
          | None -> None
          | Some delta ->
              Some
                {
                  fig;
                  series = bp.Schema.series;
                  x = bp.Schema.x;
                  metric = name;
                  base;
                  cur;
                  delta;
                  regressed = delta > tolerance;
                }))
    (point_metrics bp)

let compare_reports ~tolerance ~baseline ~current =
  if tolerance < 0.0 then invalid_arg "Diff.compare_reports: negative tolerance";
  let verdicts = ref [] and missing = ref [] in
  List.iter
    (fun (br : Schema.result) ->
      if br.Schema.gated then
        match Schema.find_result current ~fig:br.Schema.fig with
        | None -> missing := Printf.sprintf "figure %s" br.Schema.fig :: !missing
        | Some cr ->
            List.iter
              (fun (bp : Schema.point) ->
                match
                  Schema.find_point cr ~series:bp.Schema.series ~x:bp.Schema.x
                with
                | None ->
                    missing :=
                      Printf.sprintf "%s %s@x=%g" br.Schema.fig bp.Schema.series
                        bp.Schema.x
                      :: !missing
                | Some cp ->
                    verdicts :=
                      List.rev_append
                        (compare_points ~tolerance ~fig:br.Schema.fig bp cp)
                        !verdicts)
              br.Schema.points)
    baseline.Schema.results;
  { verdicts = List.rev !verdicts; missing = List.rev !missing }

let regressions o = List.filter (fun v -> v.regressed) o.verdicts
let ok o = regressions o = [] && o.missing = []

let pp fmt o =
  let bad = regressions o in
  let improved =
    List.filter (fun v -> (not v.regressed) && v.delta < -0.05) o.verdicts
  in
  let row v =
    Format.fprintf fmt "  %-10s %-14s x=%-8g %-22s %12.4g -> %-12.4g %+6.1f%%@."
      v.fig v.series v.x v.metric v.base v.cur (100.0 *. v.delta)
  in
  if bad <> [] then begin
    Format.fprintf fmt "REGRESSIONS (worse than tolerance):@.";
    List.iter row bad
  end;
  if o.missing <> [] then begin
    Format.fprintf fmt "MISSING from current report:@.";
    List.iter (fun m -> Format.fprintf fmt "  %s@." m) o.missing
  end;
  if improved <> [] then begin
    Format.fprintf fmt "improvements (>5%%):@.";
    List.iter row improved
  end;
  (* The batch_submit stage is the pipeline's dominant latency term (and
     what the adaptive batching work targets): surface its worst delta in
     the summary so the gate's one-liner answers "did batching move?"
     without scanning rows. *)
  let worst_note ~label metrics =
    let vs = List.filter (fun v -> List.mem v.metric metrics) o.verdicts in
    match vs with
    | [] -> Printf.sprintf "%s: no samples" label
    | vs ->
        let worst = List.fold_left (fun acc v -> Float.max acc v.delta) neg_infinity vs in
        Printf.sprintf "%s worst delta %+.1f%%" label (100.0 *. worst)
  in
  let batch_submit_note =
    worst_note ~label:"batch_submit p95" [ "stage:batch_submit:p95_ms" ]
  in
  (* The replay fast path's two promises: the bulk sweep stays fast
     (replay stage / speedup) and does not let followers fall behind
     (replay_lag / lag p95). One line answers "did replay move?". *)
  let replay_note =
    worst_note ~label:"replay p95/lag"
      [ "stage:replay:p95_ms"; "stage:replay_lag:p95_ms"; "lag_p95_ms"; "speedup" ]
  in
  (* The allocation gate's one-liner: worst movement of the deterministic
     words-allocated counters (bench alloc). *)
  let alloc_note =
    worst_note ~label:"alloc words" [ "exec_words"; "encode_words" ]
  in
  (* The sharding gate's one-liner: did the cross-shard 2PC penalty curve
     (bench shards) get worse anywhere along the 0/1/5/15% sweep? *)
  let shard_note =
    worst_note ~label:"cross-shard penalty" [ "penalty_pct" ]
  in
  Format.fprintf fmt
    "%d datapoint metric(s) compared, %d regression(s), %d missing; %s; %s; %s; %s@."
    (List.length o.verdicts) (List.length bad)
    (List.length o.missing)
    batch_submit_note replay_note alloc_note shard_note
