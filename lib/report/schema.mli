(** Machine-readable benchmark results ([BENCH_rolis.json]).

    Every [bench/fig*.ml] experiment produces one or more {!result}
    records; the harness collects them into a {!report} written next to
    the human-readable transcript. [rolis-cli bench-diff] consumes two
    such files (see {!Diff}).

    Conventions:
    - [metrics] values are floats keyed by name. Keys ending in ["_ms"]
      are latencies (lower is better); the key ["tput"] is
      release-committed transactions per second (higher is better). Other
      keys are informational.
    - a {!point} is one datapoint of one series at one x position (e.g.
      series ["rolis"], x = 16 worker threads).
    - [gated = false] marks results that are not deterministic in virtual
      time (wall-clock micro-benchmarks) and are excluded from the CI
      regression gate. *)

type stage_summary = {
  stage : string;  (** {!Rolis.Trace.stage_name} of the pipeline stage *)
  count : int;  (** sampled spans in the window *)
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
}

type point = {
  series : string;
  x : float;
  metrics : (string * float) list;
  stages : stage_summary list;  (** empty when tracing is off / not a cluster run *)
}

type result = {
  fig : string;  (** experiment id, e.g. ["fig10a"] *)
  title : string;
  x_label : string;  (** meaning of [point.x], e.g. ["threads"] *)
  gated : bool;
  knobs : (string * string) list;  (** config knobs the run used *)
  points : point list;
}

type report = { schema : string; mode : string; results : result list }
(** [mode] is ["quick"] or ["full"]. *)

val schema_version : string
(** Current ["rolis-bench/1"]. {!decode} rejects other versions. *)

val make_report : mode:string -> result list -> report

val encode : report -> Json.t
val decode : Json.t -> (report, string) Stdlib.result
(** Structural validation: unknown fields are ignored, missing or
    ill-typed required fields are errors. *)

val to_string : report -> string
(** Pretty-printed JSON. *)

val of_string : string -> (report, string) Stdlib.result

val find_result : report -> fig:string -> result option
val find_point : result -> series:string -> x:float -> point option
val metric : point -> string -> float option
