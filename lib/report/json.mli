(** A minimal JSON tree with a serializer and a parser.

    The repository cannot take external dependencies, so this is the JSON
    layer used by the benchmark harness ([BENCH_rolis.json]), the
    [rolis-cli trace] JSONL dump and [rolis-cli bench-diff].

    Numbers: integers are kept exact ([Int]); floats are printed with
    enough digits ([%.17g]) that [of_string (to_string j)] round-trips
    bit-for-bit for finite values. NaN and infinities are not valid JSON
    and are rejected by {!to_string}. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string
(** Serialize. [pretty] (default false) adds newlines and 2-space
    indentation.
    @raise Invalid_argument on NaN or infinite floats. *)

val of_string : string -> (t, string) result
(** Parse one JSON value (surrounding whitespace allowed). The error
    string carries a character offset. *)

(** {1 Accessors} — total functions returning [option]. *)

val member : string -> t -> t option
(** Field of an [Obj]; [None] on missing field or non-object. *)

val to_list : t -> t list option
val to_int : t -> int option
val to_float : t -> float option
(** [Int] values coerce to float; [Float] values do not coerce to int. *)

val to_string_opt : t -> string option
val to_bool : t -> bool option
