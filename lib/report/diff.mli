(** Figure-by-figure comparison of two benchmark reports — the CI
    perf-regression gate behind [rolis-cli bench-diff].

    Only metrics with a known direction participate in the gate:
    - ["tput"] (and any key starting with ["tput"]), plus the throughput
      quotients ["ratio"] and ["speedup"]: higher is better;
    - keys ending in ["_ms"], including per-stage latency percentiles
      (compared as ["stage:<name>:p95_ms"]): lower is better;
    - keys ending in ["_words"] (deterministic Gc allocation counters
      from the alloc bench): lower is better.

    A datapoint regresses when it is worse than the baseline by more than
    [tolerance] (a fraction: 0.15 = 15%). Results with [gated = false]
    (wall-clock micro-benchmarks) are skipped. A figure or datapoint
    present in the baseline but absent from the current report is a
    coverage regression and fails the gate. *)

type verdict = {
  fig : string;
  series : string;
  x : float;
  metric : string;
  base : float;
  cur : float;
  delta : float;
      (** signed relative change, positive = worse: [(base-cur)/base] for
          higher-better metrics, [(cur-base)/base] for lower-better *)
  regressed : bool;
}

type outcome = {
  verdicts : verdict list;  (** every compared (point, metric) pair *)
  missing : string list;  (** figures/points in baseline absent from current *)
}

val compare_reports :
  tolerance:float -> baseline:Schema.report -> current:Schema.report -> outcome

val regressions : outcome -> verdict list
val ok : outcome -> bool
(** No regressions and nothing missing. *)

val pp : Format.formatter -> outcome -> unit
(** Human-readable table: regressions first, then notable improvements,
    then a one-line summary. *)
