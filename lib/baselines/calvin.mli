(** Calvin baseline (paper §6.3, Fig. 12; latency in §6.8).

    Deterministic database in the STAR-refined configuration the paper
    compares against: a {e central sequencer} batches incoming
    transactions into fixed 10 ms epochs, agrees on the batch with its
    replication group (ZooKeeper in the original latency experiment —
    replication is {e off} in throughput runs, matching the paper), and a
    multi-threaded lock manager feeds per-partition executor threads that
    run the batch deterministically (no aborts).

    Bottleneck structure reproduced here: per-transaction sequencer and
    lock-manager work is central, so throughput scales with partitions
    only until the sequencer saturates; latency is dominated by epoch
    batching plus batch agreement (~83 ms median in the paper). *)

type result = {
  tps : float;
  committed : int;
  p50_latency : int;
  p95_latency : int;
}

val run :
  ?seed:int64 ->
  ?epoch:int ->
  ?keys_per_partition:int ->
  ?ops_per_txn:int ->
  ?lock_managers:int ->
  ?replication:bool ->
  partitions:int ->
  duration:int ->
  unit ->
  result
(** Defaults: 10 ms epochs, 4 lock managers, replication disabled (the
    paper's throughput configuration); pass [~replication:true] for the
    §6.8 latency measurement. *)
