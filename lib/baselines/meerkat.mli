(** Meerkat baseline (paper §6.4, Fig. 13).

    Meerkat is a multicore-scalable replicated transactional store that
    follows the zero-coordination principle: per-transaction quorum-based
    OCC over a kernel-bypass (DPDK) network, with replication and
    execution {e mixed} — a transaction commits only after a validation
    round trip to all replicas.

    This implementation runs the real protocol skeleton in the simulator:
    each transaction executes against a local copy, then a validation
    round checks read versions on all three replica stores; unanimous
    success installs the write-set everywhere, any failure aborts and
    retries. DPDK-class latencies hide most of the round trip; the cost
    model charges the (coordinator + 2 replicas) per-transaction CPU that
    makes Meerkat CPU-bound — which is why Rolis overtakes it by ~7x on
    YCSB++ despite Meerkat's faster network. *)

type result = {
  tps : float;
  committed : int;
  aborted : int;
  p50_latency : int;
}

val run :
  ?seed:int64 ->
  ?keys_per_thread:int ->
  ?pipeline:int ->
  ?params:Workload.Ycsb.params ->
  threads:int ->
  duration:int ->
  unit ->
  result
(** [params] defaults to YCSB-T ({!Workload.Ycsb.ycsb_t}); pass
    [Workload.Ycsb.default] for YCSB++. [keys_per_thread] preserves the
    paper's constant-contention loading (1M rows per core there, scaled
    down here). [pipeline] is the number of outstanding client requests
    per server thread. *)
