(** Replay-only throughput (paper §6.6, Fig. 15).

    Pre-generates transaction logs from an independent Silo run, loads
    them into per-thread memory, then measures how fast [threads] replay
    workers can apply them with the watermark and Paxos disabled. The
    paper uses this to show replay (write-set only, compare-and-swap per
    key) is ~1.5x faster than Silo's execute path and therefore never the
    bottleneck. *)

type result = {
  replay_tps : float;
  silo_tps : float;  (** execute-path throughput of the generating run *)
  replayed : int;
}

val run :
  ?seed:int64 ->
  ?cores:int ->
  ?costs:Silo.Costs.t ->
  ?replay_batch:Rolis.Config.replay_batch ->
  ?batch_size:int ->
  ?replay_parallel:int ->
  ?hash_tables:string list ->
  threads:int ->
  generate_duration:int ->
  app:Rolis.App.t ->
  unit ->
  result
(** Phase 1: run [threads] Silo workers for [generate_duration], capturing
    every committed write-set per worker. Phase 2: fresh database, same
    initial load; [threads] replay workers apply their own worker's log
    sequentially — per transaction (default) or, with
    [replay_batch = Bulk], chunked into entries of [batch_size]
    transactions (default 1000) and applied through
    {!Silo.Db.apply_replay_entry}'s sorted sweep. [replay_parallel]
    (default 1) is passed to the bulk path as its intra-entry fan-out;
    [hash_tables] selects hash-indexed tables in both phases.
    [replay_tps] is transactions replayed per second. *)
