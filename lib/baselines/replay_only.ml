type result = { replay_tps : float; silo_tps : float; replayed : int }

(* Chunk a worker's captured log (forward order) into entries of
   [batch_size] transactions, mirroring what the batcher would have
   proposed. *)
let chunk ~epoch ~batch_size txns =
  let rec go acc cur n = function
    | [] -> List.rev (if cur = [] then acc else Store.Wire.make_entry ~epoch (List.rev cur) :: acc)
    | txn :: rest ->
        if n + 1 >= batch_size then
          go (Store.Wire.make_entry ~epoch (List.rev (txn :: cur)) :: acc) [] 0 rest
        else go acc (txn :: cur) (n + 1) rest
  in
  go [] [] 0 txns

let run ?(seed = 42L) ?(cores = 32) ?costs ?(replay_batch = Rolis.Config.PerTxn)
    ?(batch_size = 1000) ?(replay_parallel = 1) ?(hash_tables = []) ~threads
    ~generate_duration ~app () =
  (* Phase 1: generate logs with a plain Silo run. *)
  let eng = Sim.Engine.create ~seed () in
  let cpu = Sim.Cpu.create eng ~cores () in
  let db = Silo.Db.create eng cpu ?costs ~hash_tables () in
  app.Rolis.App.setup db;
  let logs = Array.make threads [] in
  (* per worker, reverse order *)
  for w = 0 to threads - 1 do
    let gen =
      app.Rolis.App.make_worker db
        ~rng:(Sim.Rng.split (Sim.Engine.rng eng))
        ~worker:w ~nworkers:threads
    in
    let _p =
      Sim.Engine.spawn eng (fun () ->
          Sim.Cpu.register cpu;
          while true do
            let body = gen () in
            let r = Silo.Db.run db ~worker:w body in
            match r.Silo.Db.tid with
            | Some tid ->
                logs.(w) <-
                  { Store.Wire.ts = tid.Silo.Tid.ts; req = None; decision = None; writes = r.Silo.Db.log } :: logs.(w)
            | None -> ()
          done)
    in
    ()
  done;
  Sim.Engine.run ~until:generate_duration eng;
  let generated = Array.fold_left (fun acc l -> acc + List.length l) 0 logs in
  let silo_tps = float_of_int generated *. 1e9 /. float_of_int generate_duration in
  (* Phase 2: fresh engine + database with the same initial load; replay
     the captured logs with [threads] workers — per transaction (the
     paper's loop) or through the sorted bulk-apply fast path, entry by
     entry. *)
  let eng2 = Sim.Engine.create ~seed () in
  let cpu2 = Sim.Cpu.create eng2 ~cores () in
  let db2 = Silo.Db.create eng2 cpu2 ?costs ~physical_deletes:false ~hash_tables () in
  app.Rolis.App.setup db2;
  let replayed = ref 0 in
  let t_done = ref 0 in
  for w = 0 to threads - 1 do
    let mine = List.rev logs.(w) in
    let _p =
      Sim.Engine.spawn eng2 (fun () ->
          Sim.Cpu.register cpu2;
          (match replay_batch with
          | Rolis.Config.PerTxn ->
              let applied = ref 0 in
              List.iter
                (fun (txn : Store.Wire.txn_log) ->
                  Silo.Db.apply_replay db2 txn ~epoch:1
                    ~writes:(List.length txn.Store.Wire.writes)
                    ~applied;
                  incr replayed)
                mine
          | Rolis.Config.Bulk ->
              List.iter
                (fun entry ->
                  let res =
                    Silo.Db.apply_replay_entry db2 entry ~ways:replay_parallel
                      ~upto:max_int ()
                  in
                  replayed := !replayed + res.Silo.Db.re_txns)
                (chunk ~epoch:1 ~batch_size mine));
          Sim.Cpu.unregister cpu2;
          if Sim.Engine.time () > !t_done then t_done := Sim.Engine.time ())
    in
    ()
  done;
  Sim.Engine.run eng2;
  let elapsed = max 1 !t_done in
  {
    replay_tps = float_of_int !replayed *. 1e9 /. float_of_int elapsed;
    silo_tps;
    replayed = !replayed;
  }
