type result = { replay_tps : float; silo_tps : float; replayed : int }

let run ?(seed = 42L) ?(cores = 32) ?costs ~threads ~generate_duration ~app () =
  (* Phase 1: generate logs with a plain Silo run. *)
  let eng = Sim.Engine.create ~seed () in
  let cpu = Sim.Cpu.create eng ~cores () in
  let db = Silo.Db.create eng cpu ?costs () in
  app.Rolis.App.setup db;
  let logs = Array.make threads [] in
  (* per worker, reverse order *)
  for w = 0 to threads - 1 do
    let gen =
      app.Rolis.App.make_worker db
        ~rng:(Sim.Rng.split (Sim.Engine.rng eng))
        ~worker:w ~nworkers:threads
    in
    let _p =
      Sim.Engine.spawn eng (fun () ->
          Sim.Cpu.register cpu;
          while true do
            let body = gen () in
            let r = Silo.Db.run db ~worker:w body in
            match r.Silo.Db.tid with
            | Some tid ->
                logs.(w) <-
                  { Store.Wire.ts = tid.Silo.Tid.ts; req = None; writes = r.Silo.Db.log } :: logs.(w)
            | None -> ()
          done)
    in
    ()
  done;
  Sim.Engine.run ~until:generate_duration eng;
  let generated = Array.fold_left (fun acc l -> acc + List.length l) 0 logs in
  let silo_tps = float_of_int generated *. 1e9 /. float_of_int generate_duration in
  (* Phase 2: fresh engine + database with the same initial load; replay
     the captured logs with [threads] workers. *)
  let eng2 = Sim.Engine.create ~seed () in
  let cpu2 = Sim.Cpu.create eng2 ~cores () in
  let db2 = Silo.Db.create eng2 cpu2 ?costs ~physical_deletes:false () in
  app.Rolis.App.setup db2;
  let replayed = ref 0 in
  let t_done = ref 0 in
  for w = 0 to threads - 1 do
    let mine = List.rev logs.(w) in
    let _p =
      Sim.Engine.spawn eng2 (fun () ->
          Sim.Cpu.register cpu2;
          let applied = ref 0 in
          List.iter
            (fun txn ->
              Silo.Db.apply_replay db2 txn ~epoch:1 ~applied;
              incr replayed)
            mine;
          Sim.Cpu.unregister cpu2;
          if Sim.Engine.time () > !t_done then t_done := Sim.Engine.time ())
    in
    ()
  done;
  Sim.Engine.run eng2;
  let elapsed = max 1 !t_done in
  {
    replay_tps = float_of_int !replayed *. 1e9 /. float_of_int elapsed;
    silo_tps;
    replayed = !replayed;
  }
