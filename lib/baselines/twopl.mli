(** Two-phase locking baseline (paper §6.3, Fig. 12; latency in §6.8).

    Modelled on Janus' 2PL implementation: a {e client-server,
    interactive} partitioned store. Each partition owns one CPU core and
    one Paxos stream (reusing this repository's MultiPaxos); every
    transaction is single-partition (the paper's "perfect partitioning"
    favour to the baseline). Clients issue each operation as a separate
    RPC; locks are held across those round trips (NO_WAIT on conflict:
    abort, release, back off, retry); commit replicates the write-set
    through the partition's Paxos stream and waits for durability before
    releasing locks and answering the client.

    The structural costs — per-operation RPCs, per-transaction
    synchronous replication, no batching, no pipelining — are what cap
    2PL an order of magnitude below Rolis while giving it the lowest
    latency of the three software systems (no batching delay). *)

type result = {
  tps : float;
  committed : int;
  aborted : int;  (** lock-conflict aborts (retried) *)
  p50_latency : int;  (** ns *)
  p95_latency : int;
}

val run :
  ?seed:int64 ->
  ?clients_per_partition:int ->
  ?keys_per_partition:int ->
  ?ops_per_txn:int ->
  ?read_ratio:float ->
  partitions:int ->
  duration:int ->
  unit ->
  result
(** Defaults: 96 closed-loop clients per partition, ~35k keys/partition
    (1M total at 28 partitions), 4 ops, 50%% read-only — the paper's
    YCSB++ shape. *)
