type result = {
  tps : float;
  commits : int;
  user_aborts : int;
  conflict_aborts : int;
  cpu_utilization : float;
}

let run ?(seed = 42L) ?(cores = 32) ?costs ?(warmup = 0)
    ?(extra_cost_per_txn = fun _ -> 0) ?(hash_tables = []) ~workers ~duration
    ~app () =
  let eng = Sim.Engine.create ~seed () in
  let cpu = Sim.Cpu.create eng ~cores () in
  let db = Silo.Db.create eng cpu ?costs ~hash_tables () in
  app.Rolis.App.setup db;
  for w = 0 to workers - 1 do
    let gen =
      app.Rolis.App.make_worker db
        ~rng:(Sim.Rng.split (Sim.Engine.rng eng))
        ~worker:w ~nworkers:workers
    in
    let _p =
      Sim.Engine.spawn eng ~name:(Printf.sprintf "silo-worker%d" w) (fun () ->
          Sim.Cpu.register cpu;
          while true do
            let body = gen () in
            let r = Silo.Db.run db ~worker:w body in
            match r.Silo.Db.tid with
            | Some tid ->
                let extra =
                  extra_cost_per_txn
                    { Store.Wire.ts = tid.Silo.Tid.ts; req = None; decision = None; writes = r.Silo.Db.log }
                in
                if extra > 0 then Sim.Cpu.consume cpu extra
            | None -> ()
          done)
    in
    ()
  done;
  if warmup > 0 then begin
    Sim.Engine.run ~until:warmup eng;
    Silo.Db.reset_stats db;
    Sim.Cpu.reset_busy cpu
  end;
  let start = Sim.Engine.now eng in
  Sim.Engine.run ~until:(start + duration) eng;
  let stats = Silo.Db.stats db in
  {
    tps = float_of_int stats.Silo.Db.commits *. 1e9 /. float_of_int duration;
    commits = stats.Silo.Db.commits;
    user_aborts = stats.Silo.Db.user_aborts;
    conflict_aborts = stats.Silo.Db.conflict_aborts;
    cpu_utilization = Sim.Cpu.utilization cpu ~since:start;
  }
