type result = {
  tps : float;
  committed : int;
  aborted : int;
  p50_latency : int;
  p95_latency : int;
}

(* Server-side CPU costs per partition core (ns). RPC handling dominates:
   Janus' 2PL spends most of its cycles marshalling per-operation
   messages and running the 2PC/Paxos state machines. *)
let op_server_cost = 33_000
let commit_server_cost = 35_000
let paxos_leader_cost = 37_000
let abort_backoff = 200_000

type partition = {
  table : Store.Record.t Store.Btree.t;
  locks : (string, unit) Hashtbl.t; (* held locks (NO_WAIT) *)
  core : Sim.Sync.Semaphore.t; (* the partition's single CPU core *)
  stream : Paxos.Stream.t;
  waiting : (int, unit Sim.Sync.Ivar.t) Hashtbl.t; (* ts -> durability *)
  mutable next_ts : int;
}

let run ?(seed = 42L) ?(clients_per_partition = 96) ?(keys_per_partition = 35_000)
    ?(ops_per_txn = 4) ?(read_ratio = 0.5) ~partitions ~duration () =
  let eng = Sim.Engine.create ~seed () in
  let net =
    Sim.Net.create eng ~nodes:3
      ~latency:(Sim.Net.Exp_jitter { base = 25 * Sim.Engine.us; jitter_mean = 8 * Sim.Engine.us })
  in
  let committed = ref 0 and aborted = ref 0 in
  let lat = Sim.Metrics.Hist.create () in
  (* Streams: one per partition; node 0 leads all of them (stable leader,
     no election — this benchmark measures the failure-free data path). *)
  let all_streams = Array.make 3 [||] in
  let parts =
    Array.init partitions (fun p ->
        let waiting = Hashtbl.create 64 in
        let on_commit ~idx:_ (entry : Store.Wire.entry) =
          match Hashtbl.find_opt waiting entry.last_ts with
          | Some iv ->
              Hashtbl.remove waiting entry.last_ts;
              Sim.Sync.Ivar.fill iv ()
          | None -> ()
        in
        let stream =
          Paxos.Stream.create net ~id:p ~me:0 ~on_commit ~on_higher_epoch:(fun _ -> ()) ()
        in
        Paxos.Stream.become_leader stream ~epoch:1;
        let table = Store.Btree.create () in
        for i = 0 to keys_per_partition - 1 do
          ignore
            (Store.Btree.insert table
               (Store.Keycodec.encode [ Store.Keycodec.I i ])
               (Store.Record.make "0"))
        done;
        {
          table;
          locks = Hashtbl.create 1024;
          core = Sim.Sync.Semaphore.create eng 1;
          stream;
          waiting;
          next_ts = 0;
        })
  in
  all_streams.(0) <- Array.map (fun p -> p.stream) parts;
  (* Follower replicas accept and acknowledge. *)
  for node = 1 to 2 do
    all_streams.(node) <-
      Array.init partitions (fun p ->
          Paxos.Stream.create net ~id:p ~me:node
            ~on_commit:(fun ~idx:_ _ -> ())
            ~on_higher_epoch:(fun _ -> ())
            ())
  done;
  for node = 0 to 2 do
    ignore
      (Sim.Engine.spawn eng ~name:(Printf.sprintf "2pl-dispatch-%d" node) (fun () ->
           while true do
             let m = Sim.Net.recv net node in
             match m.Paxos.Msg.body with
             | Paxos.Msg.Stream { stream; msg } ->
                 Paxos.Stream.handle all_streams.(node).(stream) msg ~from:m.Paxos.Msg.from
             | Paxos.Msg.Elect _ | Paxos.Msg.Client_req _ | Paxos.Msg.Client_rep _
             | Paxos.Msg.Read_req _ | Paxos.Msg.Read_lease _ -> ()
           done))
  done;
  (* Server-side work occupies the partition's core exclusively. *)
  let server_work part cost =
    Sim.Sync.Semaphore.acquire part.core;
    Sim.Engine.sleep cost;
    Sim.Sync.Semaphore.release part.core
  in
  let one_way = 25 * Sim.Engine.us in
  for p = 0 to partitions - 1 do
    for _ = 1 to clients_per_partition do
      let rng = Sim.Rng.split (Sim.Engine.rng eng) in
      let part = parts.(p) in
      ignore
        (Sim.Engine.spawn eng ~name:"2pl-client" (fun () ->
             while true do
               let t_start = Sim.Engine.time () in
               let read_only = Sim.Rng.float rng 1.0 < read_ratio in
               let keys =
                 List.init ops_per_txn (fun _ ->
                     Store.Keycodec.encode
                       [ Store.Keycodec.I (Sim.Rng.int rng keys_per_partition) ])
               in
               (* One attempt; NO_WAIT aborts restart the whole txn. *)
               let rec attempt () =
                 let held = ref [] in
                 let release () =
                   List.iter (fun k -> Hashtbl.remove part.locks k) !held
                 in
                 let conflict = ref false in
                 List.iter
                   (fun k ->
                     if not !conflict then begin
                       Sim.Engine.sleep one_way;
                       (* Request reaches the server. Readers are blocked
                          by writers too (shared/exclusive simplified to
                          NO_WAIT against any holder). *)
                       if Hashtbl.mem part.locks k then conflict := true
                       else begin
                         if not read_only then begin
                           Hashtbl.replace part.locks k ();
                           held := k :: !held
                         end;
                         server_work part op_server_cost;
                         Sim.Engine.sleep one_way (* response to client *)
                       end
                     end)
                   keys;
                 if !conflict then begin
                   release ();
                   incr aborted;
                   Sim.Engine.sleep abort_backoff;
                   attempt ()
                 end
                 else if read_only then ()
                 else begin
                   (* Commit: replicate the write-set, wait durability,
                      install, unlock. *)
                   Sim.Engine.sleep one_way;
                   server_work part (commit_server_cost + paxos_leader_cost);
                   part.next_ts <- part.next_ts + 1;
                   let ts = part.next_ts in
                   let writes =
                     List.map (fun k -> { Store.Wire.table = p; key = k; value = Some "1" }) keys
                   in
                   let entry =
                     Store.Wire.make_entry ~epoch:1 [ { Store.Wire.ts; req = None; decision = None; writes } ]
                   in
                   let iv = Sim.Sync.Ivar.create eng in
                   Hashtbl.replace part.waiting ts iv;
                   Paxos.Stream.propose part.stream entry;
                   Sim.Sync.Ivar.read iv;
                   List.iter
                     (fun k ->
                       match Store.Btree.find part.table k with
                       | Some r ->
                           r.Store.Record.value <-
                             string_of_int (int_of_string r.Store.Record.value + 1)
                       | None -> ())
                     keys;
                   release ();
                   Sim.Engine.sleep one_way
                 end
               in
               attempt ();
               incr committed;
               Sim.Metrics.Hist.add lat (Sim.Engine.time () - t_start)
             done))
    done
  done;
  (* Warm up briefly, then measure. *)
  let warmup = 100 * Sim.Engine.ms in
  Sim.Engine.run ~until:warmup eng;
  committed := 0;
  aborted := 0;
  Sim.Metrics.Hist.clear lat;
  Sim.Engine.run ~until:(warmup + duration) eng;
  {
    tps = float_of_int !committed *. 1e9 /. float_of_int duration;
    committed = !committed;
    aborted = !aborted;
    p50_latency = Sim.Metrics.Hist.quantile lat 0.5;
    p95_latency = Sim.Metrics.Hist.quantile lat 0.95;
  }
