(** Unreplicated Silo on one machine — the paper's upper bound for every
    throughput figure (Figs. 10, 11, 15, 17, 18).

    Runs [workers] database worker threads against one {!Silo.Db} with no
    replication layer at all. The optional [extra_cost_per_txn] hook
    supports the factor analysis (Fig. 18): "+Serialization" is Silo plus
    the per-transaction memcpy of its would-be log entry. *)

type result = {
  tps : float;  (** committed transactions per second *)
  commits : int;
  user_aborts : int;
  conflict_aborts : int;
  cpu_utilization : float;
}

val run :
  ?seed:int64 ->
  ?cores:int ->
  ?costs:Silo.Costs.t ->
  ?warmup:int ->
  ?extra_cost_per_txn:(Store.Wire.txn_log -> int) ->
  ?hash_tables:string list ->
  workers:int ->
  duration:int ->
  app:Rolis.App.t ->
  unit ->
  result
