type result = { tps : float; committed : int; aborted : int; p50_latency : int }

(* Per-transaction CPU across the three replicas (coordinator execution +
   eRPC handling + validation on every replica), charged to the
   system-wide core pool. Calibrated so 28 threads give ~2.6M TPS on
   YCSB-T and ~1.2M on YCSB++, as measured in the paper. *)
let base_cost = 3_600
let per_op_cost = 2_200
let abort_backoff = 30_000

let run ?(seed = 42L) ?(keys_per_thread = 10_000) ?(pipeline = 16)
    ?(params = Workload.Ycsb.ycsb_t) ~threads ~duration () =
  let eng = Sim.Engine.create ~seed () in
  let cpu = Sim.Cpu.create eng ~cores:threads () in
  (* DPDK-class network: ~10us one way, thin tail. *)
  let net =
    Sim.Net.create eng ~nodes:3
      ~latency:(Sim.Net.Exp_jitter { base = 8 * Sim.Engine.us; jitter_mean = 3 * Sim.Engine.us })
  in
  let nkeys = keys_per_thread * threads in
  let key i = Store.Keycodec.encode [ Store.Keycodec.I i ] in
  (* The three replica stores are identical by construction (the
     simulator applies installs atomically and unanimously), so one
     physical copy stands in for all of them; the per-replica CPU and the
     validation round trip are still charged. *)
  let store = Store.Btree.create () in
  for i = 0 to nkeys - 1 do
    ignore
      (Store.Btree.insert store (key i)
         (Store.Record.make (Workload.Row.pad params.Workload.Ycsb.value_size)))
  done;
  let committed = ref 0 and aborted = ref 0 in
  let lat = Sim.Metrics.Hist.create () in
  let ops = params.Workload.Ycsb.ops_per_txn in
  for _t = 0 to threads - 1 do
    for _c = 1 to pipeline do
      let rng = Sim.Rng.split (Sim.Engine.rng eng) in
      ignore
        (Sim.Engine.spawn eng ~name:"meerkat-client" (fun () ->
             Sim.Cpu.register cpu;
             while true do
               let t_start = Sim.Engine.time () in
               let rec attempt () =
                 let read_only =
                   Sim.Rng.float rng 1.0 < params.Workload.Ycsb.read_ratio
                 in
                 let keys = List.init ops (fun _ -> key (Sim.Rng.int rng nkeys)) in
                 (* Execute locally: record read versions. *)
                 let read_set =
                   List.map
                     (fun k ->
                       match Store.Btree.find store k with
                       | Some r -> (k, r.Store.Record.version)
                       | None -> (k, -1))
                     keys
                 in
                 (* Coordinator + replica CPU for execution, validation
                    and replication of this transaction. *)
                 Sim.Cpu.consume cpu (base_cost + (ops * per_op_cost));
                 (* One validation round trip to the farthest replica. *)
                 Sim.Engine.sleep (2 * Sim.Net.sample_latency net ~src:0 ~dst:1);
                 (* Atomic validation across the three stores. *)
                 let ok =
                   List.for_all
                     (fun (k, v) ->
                       match Store.Btree.find store k with
                       | Some r -> r.Store.Record.version = v
                       | None -> false)
                     read_set
                 in
                 if not ok then begin
                   incr aborted;
                   Sim.Engine.sleep abort_backoff;
                   attempt ()
                 end
                 else if not read_only then
                   (* Unanimous validation succeeded: install (bump
                      versions) on every replica. *)
                   List.iter
                     (fun (k, _) ->
                       match Store.Btree.find store k with
                       | Some r -> r.Store.Record.version <- r.Store.Record.version + 1
                       | None -> ())
                     read_set
               in
               attempt ();
               incr committed;
               Sim.Metrics.Hist.add lat (Sim.Engine.time () - t_start)
             done))
    done
  done;
  let warmup = 100 * Sim.Engine.ms in
  Sim.Engine.run ~until:warmup eng;
  committed := 0;
  aborted := 0;
  Sim.Metrics.Hist.clear lat;
  Sim.Engine.run ~until:(warmup + duration) eng;
  {
    tps = float_of_int !committed *. 1e9 /. float_of_int duration;
    committed = !committed;
    aborted = !aborted;
    p50_latency = Sim.Metrics.Hist.quantile lat 0.5;
  }
