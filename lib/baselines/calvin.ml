type result = { tps : float; committed : int; p50_latency : int; p95_latency : int }

(* Central-stage costs (ns per transaction). The sequencer is the scaling
   ceiling; lock managers are provisioned 4-wide (the paper grants Calvin
   these extra cores for free, and so do we). *)
let seq_cost = 1_600
let lm_cost = 1_200
let exec_cost_per_op = 5_500
let exec_cost_base = 3_500
let zk_latency = 25 * Sim.Engine.ms
let input_cap = 700 (* per-partition backpressure bound *)

type request = { t_start : int; keys : string list; partition : int }

let run ?(seed = 42L) ?(epoch = 10 * Sim.Engine.ms) ?(keys_per_partition = 35_000)
    ?(ops_per_txn = 4) ?(lock_managers = 4) ?(replication = false) ~partitions
    ~duration () =
  let eng = Sim.Engine.create ~seed () in
  let committed = ref 0 in
  let lat = Sim.Metrics.Hist.create () in
  let tables =
    Array.init partitions (fun _ ->
        let t = Store.Btree.create () in
        for i = 0 to keys_per_partition - 1 do
          ignore
            (Store.Btree.insert t
               (Store.Keycodec.encode [ Store.Keycodec.I i ])
               (Store.Record.make "0"))
        done;
        t)
  in
  let inputs = Array.init partitions (fun _ -> Queue.create ()) in
  let lm_boxes = Array.init lock_managers (fun _ -> Sim.Sync.Mailbox.create eng) in
  let exec_boxes = Array.init partitions (fun _ -> Sim.Sync.Mailbox.create eng) in
  (* Clients: keep each partition's input queue topped up (open loop with
     backpressure). *)
  for p = 0 to partitions - 1 do
    let rng = Sim.Rng.split (Sim.Engine.rng eng) in
    ignore
      (Sim.Engine.spawn eng ~name:"calvin-client" (fun () ->
           while true do
             if Queue.length inputs.(p) < input_cap then
               Queue.add
                 {
                   t_start = Sim.Engine.time ();
                   partition = p;
                   keys =
                     List.init ops_per_txn (fun _ ->
                         Store.Keycodec.encode
                           [ Store.Keycodec.I (Sim.Rng.int rng keys_per_partition) ]);
                 }
                 inputs.(p)
             else Sim.Engine.sleep (Sim.Engine.ms / 2)
           done))
  done;
  (* Sequencer: drain per epoch, order, (optionally) agree with the
     replication group, then hand the batch to the lock managers. The
     agreement is pipelined so it adds latency, not throughput loss. *)
  ignore
    (Sim.Engine.spawn eng ~name:"calvin-sequencer" (fun () ->
         let lm_rr = ref 0 in
         while true do
           Sim.Engine.sleep epoch;
           let batch = ref [] in
           Array.iter
             (fun q ->
               Queue.iter (fun r -> batch := r :: !batch) q;
               Queue.clear q)
             inputs;
           let batch = List.rev !batch in
           let n = List.length batch in
           if n > 0 then begin
             Sim.Engine.sleep (n * seq_cost);
             let dispatch () =
               List.iter
                 (fun r ->
                   Sim.Sync.Mailbox.send lm_boxes.(!lm_rr) r;
                   lm_rr := (!lm_rr + 1) mod lock_managers)
                 batch
             in
             if replication then
               ignore
                 (Sim.Engine.spawn eng (fun () ->
                      Sim.Engine.sleep zk_latency;
                      dispatch ()))
             else dispatch ()
           end
         done));
  (* Lock managers: grant in batch order, forward to the owning
     partition's executor. Single-partition transactions never wait. *)
  for i = 0 to lock_managers - 1 do
    ignore
      (Sim.Engine.spawn eng ~name:"calvin-lm" (fun () ->
           while true do
             let r = Sim.Sync.Mailbox.recv lm_boxes.(i) in
             Sim.Engine.sleep lm_cost;
             Sim.Sync.Mailbox.send exec_boxes.(r.partition) r
           done))
  done;
  (* Executors: deterministic execution, no aborts. *)
  for p = 0 to partitions - 1 do
    ignore
      (Sim.Engine.spawn eng ~name:"calvin-exec" (fun () ->
           while true do
             let r = Sim.Sync.Mailbox.recv exec_boxes.(p) in
             Sim.Engine.sleep (exec_cost_base + (List.length r.keys * exec_cost_per_op));
             List.iter
               (fun k ->
                 match Store.Btree.find tables.(p) k with
                 | Some rec_ ->
                     rec_.Store.Record.value <-
                       string_of_int (int_of_string rec_.Store.Record.value + 1)
                 | None -> ())
               r.keys;
             incr committed;
             Sim.Metrics.Hist.add lat (Sim.Engine.time () - r.t_start)
           done))
  done;
  let warmup = 200 * Sim.Engine.ms in
  Sim.Engine.run ~until:warmup eng;
  committed := 0;
  Sim.Metrics.Hist.clear lat;
  Sim.Engine.run ~until:(warmup + duration) eng;
  {
    tps = float_of_int !committed *. 1e9 /. float_of_int duration;
    committed = !committed;
    p50_latency = Sim.Metrics.Hist.quantile lat 0.5;
    p95_latency = Sim.Metrics.Hist.quantile lat 0.95;
  }
