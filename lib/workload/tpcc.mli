(** TPC-C: the full five-transaction OLTP benchmark (paper §6.1, Fig. 9).

    Nine tables (warehouse, district, customer, history, new-order, order,
    order-line, item, stock) plus two secondary indexes (customer by last
    name; order by customer), with the official transaction mix:
    NewOrder 45%%, Payment 43%%, OrderStatus 4%%, StockLevel 4%%,
    Delivery 4%%. Each warehouse is served by the worker that owns it
    (workers own disjoint warehouse sets), matching Silo's affinity setup.

    Scale note: the default cardinalities are reduced (10k items instead
    of 100k, 300 customers/district instead of 3000, 300 initial orders)
    so a simulated run loads in seconds; contention characteristics are
    preserved because hot rows (district next-order ids, warehouse YTD)
    are per-(warehouse, district) regardless of catalogue size. Full-scale
    numbers are a parameter away.

    [fast_ids] reproduces Silo's FastIds optimization: NewOrder ids come
    from a per-(warehouse, district) counter outside the transaction
    instead of a read-modify-write on the hot district row. The paper
    enables it everywhere except the skew experiment (Fig. 17). *)

type params = {
  warehouses : int;
  districts : int;  (** per warehouse; spec: 10 *)
  customers_per_district : int;
  items : int;
  init_orders_per_district : int;
  fast_ids : bool;
  mix : mix;
}

and mix = {
  new_order : int;
  payment : int;
  order_status : int;
  stock_level : int;
  delivery : int;  (** percentages; must sum to 100 *)
}

val official_mix : mix
val default : params
(** 8 warehouses, reduced cardinalities, FastIds on, official mix. *)

val with_warehouses : params -> int -> params

val skewed : params
(** The Fig. 17 setting: 4 warehouses, 100%% NewOrder, FastIds off. *)

type txn_kind = New_order | Payment | Order_status | Stock_level | Delivery

val kind_name : txn_kind -> string
val all_kinds : txn_kind list

val setup : params -> Silo.Db.t -> unit
(** Create and populate all tables. Deterministic: every replica loads
    identical data. *)

(** Per-replica generator state (FastIds counters, history sequence). *)
type state

val make_state : params -> Silo.Db.t -> state

val pick_kind : params -> Sim.Rng.t -> txn_kind

val run_kind :
  state -> Sim.Rng.t -> worker:int -> nworkers:int -> txn_kind -> Silo.Txn.t -> unit
(** Build and execute one transaction body of the given kind. NewOrder
    raises {!Silo.Txn.Abort} for the spec's 1%% rollbacks. *)

val app : params -> Rolis.App.t

(** {2 Sharded deployments}

    A parallel, seed-based client-op path: payloads carry an op code, a
    home warehouse and a 31-bit seed, and every transaction parameter is
    derived from [Sim.Rng.create seed] inside the body — so OCC
    re-execution and retried network requests replay the identical
    transaction. The embedded worker bodies above are untouched (they
    feed the bit-identical default benchmarks). Cross-shard NewOrder and
    Payment split into escrow-style halves sharing one seed; see
    {!Rolis.Shard}. *)

val client_app : params -> Rolis.App.t
(** {!app} with [client_op] populated by the seed-based path. *)

val veto : params -> payload:string -> bool
(** Prepare-time veto for {!Rolis.Shard.wrap_app}: true for a
    cross-shard NewOrder home half whose seed derives the spec's 1%%
    rollback, so the abort surfaces as a clean global 2PC abort. *)

val shard_gen :
  params ->
  Rolis.Router.t ->
  cross_pct:float ->
  rng:Sim.Rng.t ->
  unit ->
  Rolis.Shard.op
(** Partition-aware logical-transaction generator: routes by home
    warehouse; with probability [cross_pct] a NewOrder or Payment
    becomes a distributed transaction against a second shard's
    warehouse (remote supplier / remote customer). *)

val consistency_errors : params -> Silo.Db.t -> string list
(** TPC-C consistency conditions (adapted): W_YTD = sum of D_YTD; every
    order has exactly its OL_CNT order lines; every new-order row has an
    order row; the global customer-balance equation holds. Empty list =
    consistent. *)
