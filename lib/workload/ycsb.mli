(** YCSB-family transactional workloads.

    - {b YCSB++} (paper §6.1): derived from YCSB workload F — 50%%
      read-only transactions of 4 point reads, 50%% read-modify-write
      transactions of 4 RMWs; keys chosen uniformly over the keyspace.
    - {b YCSB-T}: the small-transaction variant used by the Meerkat
      comparison (Fig. 13) — one op per transaction, 50/50 read / RMW.

    The same generators back the Rolis cluster (as a {!Rolis.App.t}), the
    Silo-only baseline, and the 2PL / Calvin / Meerkat baselines. *)

type params = {
  keys : int;  (** records in the table (paper: 1 million) *)
  value_size : int;  (** bytes per value *)
  ops_per_txn : int;  (** reads or RMWs per transaction (paper: 4) *)
  read_ratio : float;  (** fraction of read-only transactions (0.5) *)
  theta : float option;  (** Zipf skew; [None] = uniform (the paper) *)
}

val default : params
(** 1M keys, small (24-byte) values, 4 ops, 50/50, uniform — YCSB++'s
    write-sets are much smaller than TPC-C's (§6.2). *)

val ycsb_t : params
(** Meerkat's YCSB-T shape: 1 op per transaction. *)

val workload_a : params
(** Classic YCSB-A: 50/50 read/update, Zipfian skew. *)

val workload_b : params
(** Classic YCSB-B: 95/5 read/update, Zipfian skew. *)

val workload_c : params
(** Classic YCSB-C: read-only, uniform. *)

val table_name : string
val key : int -> string
val setup : params -> Silo.Db.t -> unit

val txn_body : params -> Silo.Db.t -> Sim.Rng.t -> Silo.Txn.t -> unit
(** One transaction: flips read-only vs RMW and touches [ops_per_txn]
    random records. *)

val app : params -> Rolis.App.t
(** The cluster app. Its [read_op] interprets a read-session payload of
    space-separated key indices as point reads against a pinned snapshot
    (the read-only counterpart of {!txn_body}, for follower reads). *)

val read_payload_gen : params -> Sim.Rng.t -> unit -> string
(** Per-session generator of read payloads: [ops_per_txn] key indices
    drawn with the workload's skew, space-separated. *)

(** {2 Sharded deployments} *)

val client_app : params -> Rolis.App.t
(** {!app} with [client_op] populated: ["t <ro> <k1,k2,...>"] runs a
    transaction over the listed keys (reads when [ro=1], RMWs
    otherwise); ["m <k>"] is a single-key RMW — the cross-range 2PC
    sub-transaction. Keys travel in the payload, so retries replay
    identically. *)

val shard_gen :
  params ->
  Rolis.Router.t ->
  cross_pct:float ->
  rng:Sim.Rng.t ->
  unit ->
  Rolis.Shard.op
(** Partition-aware generator: single-shard transactions draw all keys
    inside one shard's range (uniform within the shard); with
    probability [cross_pct] the transaction becomes a two-shard RMW
    pair committed through 2PC. *)
