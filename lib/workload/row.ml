let pack fields =
  let buf = Buffer.create 64 in
  List.iter
    (fun f ->
      Buffer.add_string buf (string_of_int (String.length f));
      Buffer.add_char buf ':';
      Buffer.add_string buf f)
    fields;
  Buffer.contents buf

let unpack s =
  let len = String.length s in
  let rec go pos acc =
    if pos >= len then List.rev acc
    else
      match String.index_from_opt s pos ':' with
      | None -> invalid_arg "Row.unpack: missing length separator"
      | Some colon ->
          let n =
            match int_of_string_opt (String.sub s pos (colon - pos)) with
            | Some n when n >= 0 -> n
            | Some _ | None -> invalid_arg "Row.unpack: bad length"
          in
          if colon + 1 + n > len then invalid_arg "Row.unpack: truncated field";
          go (colon + 1 + n) (String.sub s (colon + 1) n :: acc)
  in
  go 0 []

let int_field = string_of_int

let to_int s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> failwith (Printf.sprintf "Row.to_int: %S is not numeric" s)

let field row i = List.nth (unpack row) i

let set_field row i v =
  let fields = unpack row in
  pack (List.mapi (fun j f -> if j = i then v else f) fields)

let pad n = String.make n 'x'
