type t = {
  n : int;
  theta : float;
  alpha : float;
  zetan : float;
  eta : float;
}

let zeta n theta =
  let sum = ref 0.0 in
  for i = 1 to n do
    sum := !sum +. (1.0 /. (float_of_int i ** theta))
  done;
  !sum

let create ~n ~theta =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  if theta < 0.0 || theta >= 1.0 then invalid_arg "Zipf.create: theta in [0,1)";
  let zetan = zeta n theta in
  let zeta2 = zeta 2 theta in
  {
    n;
    theta;
    alpha = 1.0 /. (1.0 -. theta);
    zetan;
    eta = (1.0 -. ((2.0 /. float_of_int n) ** (1.0 -. theta))) /. (1.0 -. (zeta2 /. zetan));
  }

let next t rng =
  let u = Sim.Rng.float rng 1.0 in
  let uz = u *. t.zetan in
  if uz < 1.0 then 0
  else if uz < 1.0 +. (0.5 ** t.theta) then 1
  else
    let v =
      float_of_int t.n *. (((t.eta *. u) -. t.eta +. 1.0) ** t.alpha)
    in
    let i = int_of_float v in
    if i >= t.n then t.n - 1 else if i < 0 then 0 else i

let n t = t.n
let theta t = t.theta
