(** Minimal row codec: a row is a list of string fields packed into one
    value with length framing. Numeric fields go through
    {!int_field}/{!to_int}. Padding fields reproduce realistic TPC-C row
    and log-entry sizes (the paper measures ~875 bytes of log per TPC-C
    transaction). *)

val pack : string list -> string
val unpack : string -> string list
(** @raise Invalid_argument on malformed input. *)

val int_field : int -> string
val to_int : string -> int
(** @raise Failure on a non-numeric field. *)

val field : string -> int -> string
(** [field row i] unpacks and selects; convenience for sparse access. *)

val set_field : string -> int -> string -> string
(** Functional field update (unpack, replace, repack). *)

val pad : int -> string
(** A filler string of the given length (deterministic content). *)
