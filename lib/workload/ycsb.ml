type params = {
  keys : int;
  value_size : int;
  ops_per_txn : int;
  read_ratio : float;
  theta : float option;
}

let default =
  { keys = 1_000_000; value_size = 24; ops_per_txn = 4; read_ratio = 0.5; theta = None }

let ycsb_t = { default with ops_per_txn = 1 }

(* Standard YCSB mixes, transactionalised the same way as YCSB++ (each
   transaction groups [ops_per_txn] operations). Workloads A/B use the
   YCSB-default Zipfian skew; C is read-only. *)
let workload_a = { default with read_ratio = 0.5; theta = Some 0.99 }
let workload_b = { default with read_ratio = 0.95; theta = Some 0.99 }
let workload_c = { default with read_ratio = 1.0; theta = None }
let table_name = "usertable"
let key i = Store.Keycodec.encode [ Store.Keycodec.I i ]

let setup p db =
  let t = Silo.Db.create_table db table_name in
  let value = Row.pad p.value_size in
  for i = 0 to p.keys - 1 do
    Store.Table.insert t (key i) (Store.Record.make value)
  done

let pick_key p chooser rng =
  match chooser with Some z -> Zipf.next z rng | None -> Sim.Rng.int rng p.keys

let body p table chooser rng txn =
  let read_only = Sim.Rng.float rng 1.0 < p.read_ratio in
  for _ = 1 to p.ops_per_txn do
    let k = key (pick_key p chooser rng) in
    let v = Silo.Txn.get txn table k in
    if not read_only then
      (* Read-modify-write: flip a byte so the value really changes. *)
      let v' =
        match v with
        | Some s when String.length s > 0 ->
            let b = Bytes.of_string s in
            Bytes.set b 0 (if Bytes.get b 0 = 'x' then 'y' else 'x');
            Bytes.to_string b
        | Some _ | None -> Row.pad p.value_size
      in
      Silo.Txn.put txn table k v'
  done

let chooser_of p = Option.map (fun theta -> Zipf.create ~n:p.keys ~theta) p.theta

let txn_body p db rng txn =
  let table = Silo.Db.table db table_name in
  body p table (chooser_of p) rng txn

let app p =
  {
    Rolis.App.name = "ycsb++";
    setup = setup p;
    make_worker =
      (fun db ~rng ~worker:_ ~nworkers:_ ->
        let table = Silo.Db.table db table_name in
        let chooser = chooser_of p in
        fun () txn -> body p table chooser rng txn);
    client_op = None;
    read_op =
      Some
        (fun db ~payload snap ->
          let table = Silo.Db.table db table_name in
          let last = ref "" in
          List.iter
            (fun s ->
              match Silo.Db.snap_get snap table (key (int_of_string s)) with
              | Some v -> last := v
              | None -> ())
            (String.split_on_char ' ' payload);
          !last);
  }

(* ---- sharded deployments ----

   Client-op payloads carry their keys explicitly (no seed derivation
   needed — the key list fixes the transaction), so retries and OCC
   re-execution replay identically:

     "t <ro> <k1,k2,...>"  a [ops_per_txn]-style transaction over the
                           listed keys: reads when ro=1, RMWs when ro=0;
     "m <k>"               a single-key RMW — the cross-range 2PC
                           sub-transaction (byte-flips commute with
                           nothing, but atomic durability is what the
                           cross-shard oracle asserts; each half touches
                           a different key, so applies never conflict). *)

let rmw p table k txn =
  let v' =
    match Silo.Txn.get txn table k with
    | Some s when String.length s > 0 ->
        let b = Bytes.of_string s in
        Bytes.set b 0 (if Bytes.get b 0 = 'x' then 'y' else 'x');
        Bytes.to_string b
    | Some _ | None -> Row.pad p.value_size
  in
  Silo.Txn.put txn table k v'

let client_op p db ~payload txn =
  let table = Silo.Db.table db table_name in
  match String.split_on_char ' ' payload with
  | [ "t"; ro; keys ] ->
      let ro = ro = "1" in
      List.iter
        (fun k ->
          let k = key (int_of_string k) in
          if ro then ignore (Silo.Txn.get txn table k) else rmw p table k txn)
        (String.split_on_char ',' keys)
  | [ "m"; k ] -> rmw p table (key (int_of_string k)) txn
  | _ -> failwith ("ycsb: bad client payload " ^ payload)

let client_app p = { (app p) with Rolis.App.client_op = Some (client_op p) }

(* Partition-aware generator: single-shard transactions keep all their
   keys inside one shard's range (uniform within the shard — the Zipfian
   chooser spans the global space and would break partitioning); with
   probability [cross_pct] the transaction becomes a two-shard RMW pair
   committed through 2PC. *)
let shard_gen p router ~cross_pct ~rng () =
  let nsh = Rolis.Router.shards router in
  let key_in s =
    let lo, hi = Rolis.Router.ycsb_key_range router ~keys:p.keys s in
    lo + Sim.Rng.int rng (hi - lo + 1)
  in
  if nsh > 1 && Sim.Rng.float rng 1.0 < cross_pct then begin
    let sa = Sim.Rng.int rng nsh in
    let sb = (sa + 1 + Sim.Rng.int rng (nsh - 1)) mod nsh in
    Rolis.Shard.Multi
      [
        (sa, Printf.sprintf "m %d" (key_in sa));
        (sb, Printf.sprintf "m %d" (key_in sb));
      ]
  end
  else begin
    let s = Sim.Rng.int rng nsh in
    let ro = Sim.Rng.float rng 1.0 < p.read_ratio in
    (* Explicit loop: key draws must happen in a defined order. *)
    let ks = ref [] in
    for _ = 1 to p.ops_per_txn do
      ks := string_of_int (key_in s) :: !ks
    done;
    let keys = String.concat "," (List.rev !ks) in
    Rolis.Shard.Single (s, Printf.sprintf "t %d %s" (if ro then 1 else 0) keys)
  end

(* Read-session payload generator: [ops_per_txn] key indices drawn with
   the workload's skew, space-separated — the read-only counterpart of
   [body], interpreted by [read_op] against a pinned snapshot. *)
let read_payload_gen p rng =
  let chooser = chooser_of p in
  fun () ->
    String.concat " "
      (List.init p.ops_per_txn (fun _ -> string_of_int (pick_key p chooser rng)))
