type params = {
  keys : int;
  value_size : int;
  ops_per_txn : int;
  read_ratio : float;
  theta : float option;
}

let default =
  { keys = 1_000_000; value_size = 24; ops_per_txn = 4; read_ratio = 0.5; theta = None }

let ycsb_t = { default with ops_per_txn = 1 }

(* Standard YCSB mixes, transactionalised the same way as YCSB++ (each
   transaction groups [ops_per_txn] operations). Workloads A/B use the
   YCSB-default Zipfian skew; C is read-only. *)
let workload_a = { default with read_ratio = 0.5; theta = Some 0.99 }
let workload_b = { default with read_ratio = 0.95; theta = Some 0.99 }
let workload_c = { default with read_ratio = 1.0; theta = None }
let table_name = "usertable"
let key i = Store.Keycodec.encode [ Store.Keycodec.I i ]

let setup p db =
  let t = Silo.Db.create_table db table_name in
  let value = Row.pad p.value_size in
  for i = 0 to p.keys - 1 do
    Store.Table.insert t (key i) (Store.Record.make value)
  done

let pick_key p chooser rng =
  match chooser with Some z -> Zipf.next z rng | None -> Sim.Rng.int rng p.keys

let body p table chooser rng txn =
  let read_only = Sim.Rng.float rng 1.0 < p.read_ratio in
  for _ = 1 to p.ops_per_txn do
    let k = key (pick_key p chooser rng) in
    let v = Silo.Txn.get txn table k in
    if not read_only then
      (* Read-modify-write: flip a byte so the value really changes. *)
      let v' =
        match v with
        | Some s when String.length s > 0 ->
            let b = Bytes.of_string s in
            Bytes.set b 0 (if Bytes.get b 0 = 'x' then 'y' else 'x');
            Bytes.to_string b
        | Some _ | None -> Row.pad p.value_size
      in
      Silo.Txn.put txn table k v'
  done

let chooser_of p = Option.map (fun theta -> Zipf.create ~n:p.keys ~theta) p.theta

let txn_body p db rng txn =
  let table = Silo.Db.table db table_name in
  body p table (chooser_of p) rng txn

let app p =
  {
    Rolis.App.name = "ycsb++";
    setup = setup p;
    make_worker =
      (fun db ~rng ~worker:_ ~nworkers:_ ->
        let table = Silo.Db.table db table_name in
        let chooser = chooser_of p in
        fun () txn -> body p table chooser rng txn);
    client_op = None;
    read_op =
      Some
        (fun db ~payload snap ->
          let table = Silo.Db.table db table_name in
          let last = ref "" in
          List.iter
            (fun s ->
              match Silo.Db.snap_get snap table (key (int_of_string s)) with
              | Some v -> last := v
              | None -> ())
            (String.split_on_char ' ' payload);
          !last);
  }

(* Read-session payload generator: [ops_per_txn] key indices drawn with
   the workload's skew, space-separated — the read-only counterpart of
   [body], interpreted by [read_op] against a pinned snapshot. *)
let read_payload_gen p rng =
  let chooser = chooser_of p in
  fun () ->
    String.concat " "
      (List.init p.ops_per_txn (fun _ -> string_of_int (pick_key p chooser rng)))
