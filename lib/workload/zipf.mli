(** Zipfian key chooser (YCSB's algorithm, Gray et al.'s rejection-free
    formula).

    The paper's headline experiments pick keys {e uniformly} (§6.1); this
    generator backs the extra skew ablations and is exposed because any
    YCSB-family harness is expected to have one. *)

type t

val create : n:int -> theta:float -> t
(** [create ~n ~theta] draws from [\[0, n)] with skew [theta] (0 = uniform
    limit; YCSB default 0.99). @raise Invalid_argument unless
    [0 <= theta < 1] and [n > 0]. *)

val next : t -> Sim.Rng.t -> int
val n : t -> int
val theta : t -> float
