type params = {
  warehouses : int;
  districts : int;
  customers_per_district : int;
  items : int;
  init_orders_per_district : int;
  fast_ids : bool;
  mix : mix;
}

and mix = {
  new_order : int;
  payment : int;
  order_status : int;
  stock_level : int;
  delivery : int;
}

let official_mix =
  { new_order = 45; payment = 43; order_status = 4; stock_level = 4; delivery = 4 }

let default =
  {
    warehouses = 8;
    districts = 10;
    customers_per_district = 300;
    items = 10_000;
    init_orders_per_district = 100;
    fast_ids = true;
    mix = official_mix;
  }

let with_warehouses p w = { p with warehouses = w }

let skewed =
  {
    default with
    warehouses = 4;
    fast_ids = false;
    mix = { new_order = 100; payment = 0; order_status = 0; stock_level = 0; delivery = 0 };
  }

type txn_kind = New_order | Payment | Order_status | Stock_level | Delivery

let kind_name = function
  | New_order -> "NewOrder"
  | Payment -> "Payment"
  | Order_status -> "OrderStatus"
  | Stock_level -> "StockLevel"
  | Delivery -> "Delivery"

let all_kinds = [ New_order; Payment; Order_status; Stock_level; Delivery ]

(* ---- keys ---- *)

let enc = Store.Keycodec.encode

let range components =
  let p = enc components in
  match Store.Keycodec.next_prefix p with
  | Some q -> (p, q)
  | None -> invalid_arg "Tpcc.range: prefix has no successor"

open Store.Keycodec

let k_warehouse w = enc [ I w ]
let k_district w d = enc [ I w; I d ]
let k_customer w d c = enc [ I w; I d; I c ]
let k_cust_name w d last c = enc [ I w; I d; S last; I c ]
let k_item i = enc [ I i ]
let k_stock w i = enc [ I w; I i ]
let k_order w d o = enc [ I w; I d; I o ]
let k_order_by_cust w d c o = enc [ I w; I d; I c; I o ]
let k_new_order w d o = enc [ I w; I d; I o ]
let k_order_line w d o ol = enc [ I w; I d; I o; I ol ]
let k_history w d c worker seq = enc [ I w; I d; I c; I worker; I seq ]

(* ---- last names (spec 4.3.2.3) ---- *)

let syllables =
  [| "BAR"; "OUGHT"; "ABLE"; "PRI"; "PRES"; "ESE"; "ANTI"; "CALLY"; "ATION"; "EING" |]

let last_name n = syllables.(n / 100 mod 10) ^ syllables.(n / 10 mod 10) ^ syllables.(n mod 10)
let name_num_of_customer c = (c - 1) mod 1000

(* ---- row layouts (see .mli for field meanings) ---- *)

let warehouse_row ~ytd ~tax = Row.pack [ Row.int_field ytd; Row.int_field tax; "WH"; Row.pad 20 ]

let district_row ~next_o_id ~ytd ~tax =
  Row.pack [ Row.int_field next_o_id; Row.int_field ytd; Row.int_field tax; "DIST"; Row.pad 20 ]

let customer_row ~balance ~ytd_payment ~payment_cnt ~delivery_cnt ~last ~first ~credit =
  Row.pack
    [
      Row.int_field balance;
      Row.int_field ytd_payment;
      Row.int_field payment_cnt;
      Row.int_field delivery_cnt;
      last;
      first;
      credit;
      Row.pad 40;
    ]

let item_row ~price ~name = Row.pack [ Row.int_field price; name; Row.pad 10 ]

let stock_row ~quantity ~ytd ~order_cnt ~remote_cnt =
  Row.pack
    [
      Row.int_field quantity;
      Row.int_field ytd;
      Row.int_field order_cnt;
      Row.int_field remote_cnt;
      Row.pad 6;
    ]

let oorder_row ~c_id ~carrier ~ol_cnt ~all_local ~entry_d =
  Row.pack
    [
      Row.int_field c_id;
      Row.int_field carrier;
      Row.int_field ol_cnt;
      Row.int_field all_local;
      Row.int_field entry_d;
    ]

let new_order_row = Row.pack [ "1" ]

let order_line_row ~i_id ~supply_w ~quantity ~amount ~delivery_d =
  Row.pack
    [
      Row.int_field i_id;
      Row.int_field supply_w;
      Row.int_field quantity;
      Row.int_field amount;
      Row.int_field delivery_d;
      Row.pad 6;
    ]

let history_row ~amount = Row.pack [ Row.int_field amount; Row.pad 8 ]

(* ---- loading ---- *)

let table_names =
  [
    "warehouse"; "district"; "customer"; "customer_name_idx"; "history"; "new_order";
    "oorder"; "oorder_by_cust_idx"; "order_line"; "item"; "stock";
  ]

let setup p db =
  List.iter (fun n -> ignore (Silo.Db.create_table db n)) table_names;
  let t n = Silo.Db.table db n in
  let warehouse = t "warehouse"
  and district = t "district"
  and customer = t "customer"
  and cust_name = t "customer_name_idx"
  and new_order = t "new_order"
  and oorder = t "oorder"
  and by_cust = t "oorder_by_cust_idx"
  and order_line = t "order_line"
  and item = t "item"
  and stock = t "stock" in
  (* Loading must be identical on every replica: fixed seed, independent
     of the engine's RNG. *)
  let rng = Sim.Rng.create 0x7ccc_10adL in
  let ins table key value = Store.Table.insert table key (Store.Record.make value) in
  for i = 1 to p.items do
    ins item (k_item i)
      (item_row ~price:(100 + Sim.Rng.int rng 9_900) ~name:(Printf.sprintf "item-%d" i))
  done;
  for w = 1 to p.warehouses do
    ins warehouse (k_warehouse w)
      (warehouse_row ~ytd:(p.districts * 3_000_000) ~tax:(Sim.Rng.int rng 2_000));
    for i = 1 to p.items do
      ins stock (k_stock w i)
        (stock_row ~quantity:(10 + Sim.Rng.int rng 91) ~ytd:0 ~order_cnt:0 ~remote_cnt:0)
    done;
    for d = 1 to p.districts do
      ins district (k_district w d)
        (district_row ~next_o_id:(p.init_orders_per_district + 1) ~ytd:3_000_000
           ~tax:(Sim.Rng.int rng 2_000));
      for c = 1 to p.customers_per_district do
        let last = last_name (name_num_of_customer c) in
        ins customer (k_customer w d c)
          (customer_row ~balance:(-1_000) ~ytd_payment:1_000 ~payment_cnt:1
             ~delivery_cnt:0 ~last ~first:(Printf.sprintf "first-%d" c)
             ~credit:(if Sim.Rng.int rng 10 = 0 then "BC" else "GC"));
        ins cust_name (k_cust_name w d last c) (Row.int_field c)
      done;
      (* Initial orders: the last third are undelivered (new_order rows),
         matching the spec's 2100/900 split proportionally. *)
      let delivered_upto = p.init_orders_per_district * 2 / 3 in
      for o = 1 to p.init_orders_per_district do
        let c = 1 + Sim.Rng.int rng p.customers_per_district in
        let ol_cnt = 5 + Sim.Rng.int rng 11 in
        let delivered = o <= delivered_upto in
        ins oorder (k_order w d o)
          (oorder_row ~c_id:c
             ~carrier:(if delivered then 1 + Sim.Rng.int rng 10 else 0)
             ~ol_cnt ~all_local:1 ~entry_d:0);
        ins by_cust (k_order_by_cust w d c o) (Row.int_field o);
        if not delivered then ins new_order (k_new_order w d o) new_order_row;
        for ol = 1 to ol_cnt do
          let i_id = 1 + Sim.Rng.int rng p.items in
          ins order_line (k_order_line w d o ol)
            (order_line_row ~i_id ~supply_w:w ~quantity:5
               ~amount:(if delivered then 0 else 1 + Sim.Rng.int rng 999_999)
               ~delivery_d:(if delivered then 1 else 0))
        done
      done
    done
  done

(* ---- generator state ---- *)

type tables = {
  tw : Store.Table.t;
  td : Store.Table.t;
  tc : Store.Table.t;
  tcn : Store.Table.t;
  th : Store.Table.t;
  tno : Store.Table.t;
  to_ : Store.Table.t;
  tbc : Store.Table.t;
  tol : Store.Table.t;
  ti : Store.Table.t;
  ts : Store.Table.t;
}

type state = {
  p : params;
  db : Silo.Db.t;
  tb : tables;
  next_oid : (int * int, int ref) Hashtbl.t; (* FastIds counters *)
  mutable history_seq : int;
}

let make_state p db =
  let t n = Silo.Db.table db n in
  {
    p;
    db;
    tb =
      {
        tw = t "warehouse";
        td = t "district";
        tc = t "customer";
        tcn = t "customer_name_idx";
        th = t "history";
        tno = t "new_order";
        to_ = t "oorder";
        tbc = t "oorder_by_cust_idx";
        tol = t "order_line";
        ti = t "item";
        ts = t "stock";
      };
    next_oid = Hashtbl.create 64;
    history_seq = 0;
  }

(* FastIds: per-(warehouse, district) order-id counter, initialised from
   the largest existing order id so a promoted leader resumes cleanly. *)
let fast_next_oid st w d =
  let key = (w, d) in
  let r =
    match Hashtbl.find_opt st.next_oid key with
    | Some r -> r
    | None ->
        let lo, hi = range [ I w; I d ] in
        let max_o =
          match Store.Table.max_live st.tb.to_ ~lo ~hi with
          | Some (k, _) -> (
              match Store.Keycodec.decode k with
              | [ I _; I _; I o ] -> o
              | _ -> 0)
          | None -> 0
        in
        let r = ref max_o in
        Hashtbl.add st.next_oid key r;
        r
  in
  incr r;
  !r

let peek_next_oid st w d =
  match Hashtbl.find_opt st.next_oid (w, d) with
  | Some r -> !r + 1
  | None ->
      let lo, hi = range [ I w; I d ] in
      (match Store.Table.max_live st.tb.to_ ~lo ~hi with
      | Some (k, _) -> (
          match Store.Keycodec.decode k with [ I _; I _; I o ] -> o + 1 | _ -> 1)
      | None -> 1)

let pick_kind p rng =
  let m = p.mix in
  let total = m.new_order + m.payment + m.order_status + m.stock_level + m.delivery in
  let x = Sim.Rng.int rng total in
  if x < m.new_order then New_order
  else if x < m.new_order + m.payment then Payment
  else if x < m.new_order + m.payment + m.order_status then Order_status
  else if x < m.new_order + m.payment + m.order_status + m.stock_level then Stock_level
  else Delivery

let home_warehouse p ~worker = (worker mod p.warehouses) + 1

let get_exn txn table key what =
  match Silo.Txn.get txn table key with
  | Some v -> v
  | None -> failwith ("tpcc: missing " ^ what)

(* Choose a customer: 40% by id, 60% by last name (middle match). *)
let choose_customer st rng txn w d =
  let p = st.p in
  if Sim.Rng.int rng 100 < 40 then 1 + Sim.Rng.int rng p.customers_per_district
  else begin
    let seed_c = 1 + Sim.Rng.int rng p.customers_per_district in
    let last = last_name (name_num_of_customer seed_c) in
    let lo, hi = range [ I w; I d; S last ] in
    let matches = Silo.Txn.scan txn st.tb.tcn ~lo ~hi () in
    match matches with
    | [] -> seed_c (* cannot happen: the seed customer has this name *)
    | _ ->
        let n = List.length matches in
        let _, c = List.nth matches (n / 2) in
        Row.to_int c
  end

(* ---- the five transactions ---- *)

let new_order st rng ~worker txn =
  let p = st.p in
  let tb = st.tb in
  let w = home_warehouse p ~worker in
  let d = 1 + Sim.Rng.int rng p.districts in
  let c = 1 + Sim.Rng.int rng p.customers_per_district in
  let ol_cnt = 5 + Sim.Rng.int rng 11 in
  let rollback = Sim.Rng.int rng 100 = 0 in
  let w_row = get_exn txn tb.tw (k_warehouse w) "warehouse" in
  let _w_tax = Row.to_int (Row.field w_row 1) in
  let _c_row = get_exn txn tb.tc (k_customer w d c) "customer" in
  let o_id =
    if p.fast_ids then fast_next_oid st w d
    else begin
      let d_row = get_exn txn tb.td (k_district w d) "district" in
      let next = Row.to_int (Row.field d_row 0) in
      Silo.Txn.put txn tb.td (k_district w d) (Row.set_field d_row 0 (Row.int_field (next + 1)));
      next
    end
  in
  (* Read the district row for its tax even with FastIds (no write). *)
  if p.fast_ids then ignore (get_exn txn tb.td (k_district w d) "district");
  let all_local = ref 1 in
  let inserted = ref 0 in
  for ol = 1 to ol_cnt do
    (* 1% of NewOrder transactions pick an invalid item and roll back
       (spec 2.4.1.4); trigger on the last line like real generators. *)
    if rollback && ol = ol_cnt then Silo.Txn.abort ();
    let i_id = 1 + Sim.Rng.int rng p.items in
    let supply_w =
      if p.warehouses > 1 && Sim.Rng.int rng 100 = 0 then begin
        all_local := 0;
        1 + Sim.Rng.int rng p.warehouses
      end
      else w
    in
    let i_row = get_exn txn tb.ti (k_item i_id) "item" in
    let price = Row.to_int (Row.field i_row 0) in
    let s_key = k_stock supply_w i_id in
    let s_row = get_exn txn tb.ts s_key "stock" in
    let quantity = Row.to_int (Row.field s_row 0) in
    let ordered = 1 + Sim.Rng.int rng 10 in
    let new_qty = if quantity >= ordered + 10 then quantity - ordered else quantity - ordered + 91 in
    let s_fields = Row.unpack s_row in
    let s_row' =
      match s_fields with
      | _ :: ytd :: cnt :: rest ->
          Row.pack
            (Row.int_field new_qty
            :: Row.int_field (Row.to_int ytd + ordered)
            :: Row.int_field (Row.to_int cnt + 1)
            :: rest)
      | _ -> failwith "tpcc: bad stock row"
    in
    Silo.Txn.put txn tb.ts s_key s_row';
    Silo.Txn.put txn tb.tol (k_order_line w d o_id ol)
      (order_line_row ~i_id ~supply_w ~quantity:ordered ~amount:(price * ordered)
         ~delivery_d:0);
    incr inserted
  done;
  Silo.Txn.put txn tb.to_ (k_order w d o_id)
    (oorder_row ~c_id:c ~carrier:0 ~ol_cnt:!inserted ~all_local:!all_local
       ~entry_d:0);
  Silo.Txn.put txn tb.tbc (k_order_by_cust w d c o_id) (Row.int_field o_id);
  Silo.Txn.put txn tb.tno (k_new_order w d o_id) new_order_row

let payment st rng ~worker txn =
  let p = st.p in
  let tb = st.tb in
  let w = home_warehouse p ~worker in
  let d = 1 + Sim.Rng.int rng p.districts in
  let c = choose_customer st rng txn w d in
  let amount = 100 + Sim.Rng.int rng 499_900 in
  let w_row = get_exn txn tb.tw (k_warehouse w) "warehouse" in
  Silo.Txn.put txn tb.tw (k_warehouse w)
    (Row.set_field w_row 0 (Row.int_field (Row.to_int (Row.field w_row 0) + amount)));
  let d_row = get_exn txn tb.td (k_district w d) "district" in
  Silo.Txn.put txn tb.td (k_district w d)
    (Row.set_field d_row 1 (Row.int_field (Row.to_int (Row.field d_row 1) + amount)));
  let c_key = k_customer w d c in
  let c_row = get_exn txn tb.tc c_key "customer" in
  let fields = Row.unpack c_row in
  let c_row' =
    match fields with
    | bal :: ytd :: cnt :: rest ->
        Row.pack
          (Row.int_field (Row.to_int bal - amount)
          :: Row.int_field (Row.to_int ytd + amount)
          :: Row.int_field (Row.to_int cnt + 1)
          :: rest)
    | _ -> failwith "tpcc: bad customer row"
  in
  Silo.Txn.put txn tb.tc c_key c_row';
  st.history_seq <- st.history_seq + 1;
  Silo.Txn.put txn tb.th (k_history w d c worker st.history_seq) (history_row ~amount)

let order_status st rng ~worker txn =
  let p = st.p in
  let tb = st.tb in
  let w = home_warehouse p ~worker in
  let d = 1 + Sim.Rng.int rng p.districts in
  let c = choose_customer st rng txn w d in
  ignore (get_exn txn tb.tc (k_customer w d c) "customer");
  let lo, hi = range [ I w; I d; I c ] in
  match Silo.Txn.last_live txn tb.tbc ~lo ~hi with
  | None -> () (* customer has no orders *)
  | Some (_, o_field) ->
      let o = Row.to_int o_field in
      let o_row = get_exn txn tb.to_ (k_order w d o) "order" in
      let ol_cnt = Row.to_int (Row.field o_row 2) in
      for ol = 1 to ol_cnt do
        ignore (get_exn txn tb.tol (k_order_line w d o ol) "order_line")
      done

let stock_level st rng ~worker txn =
  let p = st.p in
  let tb = st.tb in
  let w = home_warehouse p ~worker in
  let d = 1 + Sim.Rng.int rng p.districts in
  let threshold = 10 + Sim.Rng.int rng 11 in
  let next_o =
    if p.fast_ids then peek_next_oid st w d
    else Row.to_int (Row.field (get_exn txn tb.td (k_district w d) "district") 0)
  in
  (* Order lines of the last 20 orders of the district. *)
  let lo = k_order_line w d (max 1 (next_o - 20)) 0 in
  let _, hi = range [ I w; I d ] in
  let lines = Silo.Txn.scan txn tb.tol ~lo ~hi () in
  let seen = Hashtbl.create 64 in
  let low = ref 0 in
  List.iter
    (fun (_, row) ->
      let i_id = Row.to_int (Row.field row 0) in
      if not (Hashtbl.mem seen i_id) then begin
        Hashtbl.add seen i_id ();
        let s_row = get_exn txn tb.ts (k_stock w i_id) "stock" in
        if Row.to_int (Row.field s_row 0) < threshold then incr low
      end)
    lines

let delivery st rng ~worker txn =
  let p = st.p in
  let tb = st.tb in
  let w = home_warehouse p ~worker in
  let carrier = 1 + Sim.Rng.int rng 10 in
  for d = 1 to p.districts do
    let lo, hi = range [ I w; I d ] in
    match Silo.Txn.first_live txn tb.tno ~lo ~hi with
    | None -> () (* no undelivered order in this district *)
    | Some (no_key, _) ->
        let o =
          match Store.Keycodec.decode no_key with
          | [ I _; I _; I o ] -> o
          | _ -> failwith "tpcc: bad new_order key"
        in
        Silo.Txn.delete txn tb.tno no_key;
        let o_key = k_order w d o in
        let o_row = get_exn txn tb.to_ o_key "order" in
        let c = Row.to_int (Row.field o_row 0) in
        let ol_cnt = Row.to_int (Row.field o_row 2) in
        Silo.Txn.put txn tb.to_ o_key (Row.set_field o_row 1 (Row.int_field carrier));
        let total = ref 0 in
        for ol = 1 to ol_cnt do
          let ol_key = k_order_line w d o ol in
          let ol_row = get_exn txn tb.tol ol_key "order_line" in
          total := !total + Row.to_int (Row.field ol_row 3);
          Silo.Txn.put txn tb.tol ol_key (Row.set_field ol_row 4 (Row.int_field 1))
        done;
        let c_key = k_customer w d c in
        let c_row = get_exn txn tb.tc c_key "customer" in
        let fields = Row.unpack c_row in
        let c_row' =
          match fields with
          | bal :: ytd :: cnt :: dcnt :: rest ->
              Row.pack
                (Row.int_field (Row.to_int bal + !total)
                :: ytd :: cnt
                :: Row.int_field (Row.to_int dcnt + 1)
                :: rest)
          | _ -> failwith "tpcc: bad customer row"
        in
        Silo.Txn.put txn tb.tc c_key c_row'
  done

let run_kind st rng ~worker ~nworkers:_ kind txn =
  match kind with
  | New_order -> new_order st rng ~worker txn
  | Payment -> payment st rng ~worker txn
  | Order_status -> order_status st rng ~worker txn
  | Stock_level -> stock_level st rng ~worker txn
  | Delivery -> delivery st rng ~worker txn

(* Per-database generator state, shared by all workers of a replica. *)
let states : (Silo.Db.t * state) list ref = ref []

let state_for p db =
  match List.find_opt (fun (d, _) -> d == db) !states with
  | Some (_, st) -> st
  | None ->
      let st = make_state p db in
      states := (db, st) :: !states;
      st

let app p =
  {
    Rolis.App.name = "tpcc";
    setup = setup p;
    make_worker =
      (fun db ~rng ~worker ~nworkers ->
        let st = state_for p db in
        fun () ->
          let kind = pick_kind p rng in
          fun txn -> run_kind st rng ~worker ~nworkers kind txn);
    client_op = None;
    read_op = None;
  }

(* ---- seed-based client transactions (sharded deployments) ----

   The embedded worker bodies above draw every parameter from a
   long-lived per-worker RNG, which is exactly right for a closed-loop
   generator but useless for a networked request: a retry would re-draw.
   The client-op path instead ships a compact payload — op code, home
   warehouse, 31-bit seed — and derives every parameter from
   [Sim.Rng.create seed] *inside* the body, so OCC re-execution and
   cross-shard sub-transactions replay the identical transaction. The
   embedded bodies are deliberately not refactored onto this path: they
   feed the bit-identical default benchmarks.

   Cross-shard transactions split into escrow-style halves sharing one
   seed (same derived line list on both sides):

     "nh w rw seed"  NewOrder home half: order/order-lines at [w], local
                     stock updates; lines flagged remote name [rw] as
                     supplier but skip the stock update here;
     "nr rw seed"    NewOrder remote half: only the remote-flagged
                     lines' stock updates, at [rw];
     "ph w seed"     Payment home half: warehouse/district YTD at [w];
     "pr cw seed"    Payment remote half: customer balance + history at
                     the customer's warehouse [cw].

   Both halves are relative adjustments, so applies commute across
   shards; atomicity comes from the 2PC decision being replicated
   (see {!Rolis.Shard}). *)

(* Shared derivation for "n"/"nh"/"nr" and the prepare-time veto: one
   seed fixes (district, customer, rollback, line list). Lines carry a
   remote flag only the split ops honour; the first line is always
   remote so a cross transaction really is distributed. *)
let no_derive p seed =
  let rng = Sim.Rng.create (Int64.of_int seed) in
  let d = 1 + Sim.Rng.int rng p.districts in
  let c = 1 + Sim.Rng.int rng p.customers_per_district in
  let ol_cnt = 5 + Sim.Rng.int rng 11 in
  let rollback = Sim.Rng.int rng 100 = 0 in
  let lines = ref [] in
  for i = 0 to ol_cnt - 1 do
    let i_id = 1 + Sim.Rng.int rng p.items in
    let qty = 1 + Sim.Rng.int rng 10 in
    let rflag = Sim.Rng.int rng 100 < 10 || i = 0 in
    lines := (i_id, qty, rflag) :: !lines
  done;
  (d, c, rollback, List.rev !lines)

let pay_derive p seed =
  let rng = Sim.Rng.create (Int64.of_int seed) in
  let d = 1 + Sim.Rng.int rng p.districts in
  let cd = 1 + Sim.Rng.int rng p.districts in
  let c = 1 + Sim.Rng.int rng p.customers_per_district in
  let amount = 100 + Sim.Rng.int rng 499_900 in
  (d, cd, c, amount)

let stock_update st txn ~supply_w ~i_id ~qty =
  let tb = st.tb in
  let s_key = k_stock supply_w i_id in
  let s_row = get_exn txn tb.ts s_key "stock" in
  let quantity = Row.to_int (Row.field s_row 0) in
  let new_qty = if quantity >= qty + 10 then quantity - qty else quantity - qty + 91 in
  match Row.unpack s_row with
  | _ :: ytd :: cnt :: rest ->
      Silo.Txn.put txn tb.ts s_key
        (Row.pack
           (Row.int_field new_qty
           :: Row.int_field (Row.to_int ytd + qty)
           :: Row.int_field (Row.to_int cnt + 1)
           :: rest))
  | _ -> failwith "tpcc: bad stock row"

(* History keys carry a worker component; client-op transactions use a
   sentinel outside any embedded worker id range. *)
let client_worker_slot = 9_999

let c_new_order st ~w ~remote ~seed txn =
  let p = st.p and tb = st.tb in
  let d, c, rollback, lines = no_derive p seed in
  ignore (get_exn txn tb.tw (k_warehouse w) "warehouse");
  ignore (get_exn txn tb.tc (k_customer w d c) "customer");
  let o_id =
    if p.fast_ids then fast_next_oid st w d
    else begin
      let d_row = get_exn txn tb.td (k_district w d) "district" in
      let next = Row.to_int (Row.field d_row 0) in
      Silo.Txn.put txn tb.td (k_district w d)
        (Row.set_field d_row 0 (Row.int_field (next + 1)));
      next
    end
  in
  if p.fast_ids then ignore (get_exn txn tb.td (k_district w d) "district");
  let n = List.length lines in
  let all_local = ref 1 in
  List.iteri
    (fun i (i_id, qty, rflag) ->
      (* The 1% rollback aborts on the last line, as the embedded body
         does. A cross-shard "nh" never reaches here with [rollback]:
         {!veto} surfaces it at prepare time as a global abort. *)
      if rollback && i = n - 1 then Silo.Txn.abort ();
      let supply_w, local =
        match remote with
        | Some rw when rflag ->
            all_local := 0;
            (rw, false)
        | _ -> (w, true)
      in
      let i_row = get_exn txn tb.ti (k_item i_id) "item" in
      let price = Row.to_int (Row.field i_row 0) in
      if local then stock_update st txn ~supply_w:w ~i_id ~qty;
      Silo.Txn.put txn tb.tol
        (k_order_line w d o_id (i + 1))
        (order_line_row ~i_id ~supply_w ~quantity:qty ~amount:(price * qty)
           ~delivery_d:0))
    lines;
  Silo.Txn.put txn tb.to_ (k_order w d o_id)
    (oorder_row ~c_id:c ~carrier:0 ~ol_cnt:n ~all_local:!all_local ~entry_d:0);
  Silo.Txn.put txn tb.tbc (k_order_by_cust w d c o_id) (Row.int_field o_id);
  Silo.Txn.put txn tb.tno (k_new_order w d o_id) new_order_row

let c_new_order_remote st ~rw ~seed txn =
  let _, _, _, lines = no_derive st.p seed in
  List.iter
    (fun (i_id, qty, rflag) ->
      if rflag then stock_update st txn ~supply_w:rw ~i_id ~qty)
    lines

let pay_customer st txn ~cw ~cd ~c ~amount =
  let tb = st.tb in
  let c_key = k_customer cw cd c in
  let c_row = get_exn txn tb.tc c_key "customer" in
  (match Row.unpack c_row with
  | bal :: ytd :: cnt :: rest ->
      Silo.Txn.put txn tb.tc c_key
        (Row.pack
           (Row.int_field (Row.to_int bal - amount)
           :: Row.int_field (Row.to_int ytd + amount)
           :: Row.int_field (Row.to_int cnt + 1)
           :: rest))
  | _ -> failwith "tpcc: bad customer row");
  st.history_seq <- st.history_seq + 1;
  Silo.Txn.put txn tb.th
    (k_history cw cd c client_worker_slot st.history_seq)
    (history_row ~amount)

let pay_home st txn ~w ~d ~amount =
  let tb = st.tb in
  let w_row = get_exn txn tb.tw (k_warehouse w) "warehouse" in
  Silo.Txn.put txn tb.tw (k_warehouse w)
    (Row.set_field w_row 0 (Row.int_field (Row.to_int (Row.field w_row 0) + amount)));
  let d_row = get_exn txn tb.td (k_district w d) "district" in
  Silo.Txn.put txn tb.td (k_district w d)
    (Row.set_field d_row 1 (Row.int_field (Row.to_int (Row.field d_row 1) + amount)))

let c_payment st ~w ~seed txn =
  let p = st.p in
  let rng = Sim.Rng.create (Int64.of_int seed) in
  let d = 1 + Sim.Rng.int rng p.districts in
  let amount = 100 + Sim.Rng.int rng 499_900 in
  let c = choose_customer st rng txn w d in
  pay_home st txn ~w ~d ~amount;
  pay_customer st txn ~cw:w ~cd:d ~c ~amount

let c_order_status st ~w ~seed txn =
  let p = st.p and tb = st.tb in
  let rng = Sim.Rng.create (Int64.of_int seed) in
  let d = 1 + Sim.Rng.int rng p.districts in
  let c = choose_customer st rng txn w d in
  ignore (get_exn txn tb.tc (k_customer w d c) "customer");
  let lo, hi = range [ I w; I d; I c ] in
  match Silo.Txn.last_live txn tb.tbc ~lo ~hi with
  | None -> ()
  | Some (_, o_field) ->
      let o = Row.to_int o_field in
      let o_row = get_exn txn tb.to_ (k_order w d o) "order" in
      let ol_cnt = Row.to_int (Row.field o_row 2) in
      for ol = 1 to ol_cnt do
        ignore (get_exn txn tb.tol (k_order_line w d o ol) "order_line")
      done

let c_stock_level st ~w ~seed txn =
  let p = st.p and tb = st.tb in
  let rng = Sim.Rng.create (Int64.of_int seed) in
  let d = 1 + Sim.Rng.int rng p.districts in
  let threshold = 10 + Sim.Rng.int rng 11 in
  let next_o =
    if p.fast_ids then peek_next_oid st w d
    else Row.to_int (Row.field (get_exn txn tb.td (k_district w d) "district") 0)
  in
  let lo = k_order_line w d (max 1 (next_o - 20)) 0 in
  let _, hi = range [ I w; I d ] in
  let lines = Silo.Txn.scan txn tb.tol ~lo ~hi () in
  let seen = Hashtbl.create 64 in
  let low = ref 0 in
  List.iter
    (fun (_, row) ->
      let i_id = Row.to_int (Row.field row 0) in
      if not (Hashtbl.mem seen i_id) then begin
        Hashtbl.add seen i_id ();
        let s_row = get_exn txn tb.ts (k_stock w i_id) "stock" in
        if Row.to_int (Row.field s_row 0) < threshold then incr low
      end)
    lines

let c_delivery st ~w ~seed txn =
  let p = st.p and tb = st.tb in
  let rng = Sim.Rng.create (Int64.of_int seed) in
  let carrier = 1 + Sim.Rng.int rng 10 in
  for d = 1 to p.districts do
    let lo, hi = range [ I w; I d ] in
    match Silo.Txn.first_live txn tb.tno ~lo ~hi with
    | None -> ()
    | Some (no_key, _) ->
        let o =
          match Store.Keycodec.decode no_key with
          | [ I _; I _; I o ] -> o
          | _ -> failwith "tpcc: bad new_order key"
        in
        Silo.Txn.delete txn tb.tno no_key;
        let o_key = k_order w d o in
        let o_row = get_exn txn tb.to_ o_key "order" in
        let c = Row.to_int (Row.field o_row 0) in
        let ol_cnt = Row.to_int (Row.field o_row 2) in
        Silo.Txn.put txn tb.to_ o_key (Row.set_field o_row 1 (Row.int_field carrier));
        let total = ref 0 in
        for ol = 1 to ol_cnt do
          let ol_key = k_order_line w d o ol in
          let ol_row = get_exn txn tb.tol ol_key "order_line" in
          total := !total + Row.to_int (Row.field ol_row 3);
          Silo.Txn.put txn tb.tol ol_key (Row.set_field ol_row 4 (Row.int_field 1))
        done;
        let c_key = k_customer w d c in
        let c_row = get_exn txn tb.tc c_key "customer" in
        let fields = Row.unpack c_row in
        let c_row' =
          match fields with
          | bal :: ytd :: cnt :: dcnt :: rest ->
              Row.pack
                (Row.int_field (Row.to_int bal + !total)
                :: ytd :: cnt
                :: Row.int_field (Row.to_int dcnt + 1)
                :: rest)
          | _ -> failwith "tpcc: bad customer row"
        in
        Silo.Txn.put txn tb.tc c_key c_row'
  done

let client_op p db ~payload txn =
  let st = state_for p db in
  let i = int_of_string in
  match String.split_on_char ' ' payload with
  | [ "n"; w; seed ] -> c_new_order st ~w:(i w) ~remote:None ~seed:(i seed) txn
  | [ "nh"; w; rw; seed ] ->
      c_new_order st ~w:(i w) ~remote:(Some (i rw)) ~seed:(i seed) txn
  | [ "nr"; rw; seed ] -> c_new_order_remote st ~rw:(i rw) ~seed:(i seed) txn
  | [ "p"; w; seed ] -> c_payment st ~w:(i w) ~seed:(i seed) txn
  | [ "ph"; w; seed ] ->
      let d, _, _, amount = pay_derive p (i seed) in
      pay_home st txn ~w:(i w) ~d ~amount
  | [ "pr"; cw; seed ] ->
      let _, cd, c, amount = pay_derive p (i seed) in
      pay_customer st txn ~cw:(i cw) ~cd ~c ~amount
  | [ "o"; w; seed ] -> c_order_status st ~w:(i w) ~seed:(i seed) txn
  | [ "s"; w; seed ] -> c_stock_level st ~w:(i w) ~seed:(i seed) txn
  | [ "d"; w; seed ] -> c_delivery st ~w:(i w) ~seed:(i seed) txn
  | _ -> failwith ("tpcc: bad client payload " ^ payload)

let client_app p = { (app p) with Rolis.App.client_op = Some (client_op p) }

let veto p ~payload =
  match String.split_on_char ' ' payload with
  | [ "nh"; _; _; seed ] ->
      let _, _, rollback, _ = no_derive p (int_of_string seed) in
      rollback
  | _ -> false

(* Partition-aware logical-transaction generator for a {!Rolis.Shard}
   deployment: route by home warehouse; with probability [cross_pct]
   a NewOrder or Payment becomes a genuine distributed transaction
   against a second shard's warehouse. *)
let shard_gen p router ~cross_pct ~rng () =
  let sp = Printf.sprintf in
  let w = 1 + Sim.Rng.int rng p.warehouses in
  let home = Rolis.Router.tpcc_shard_of_warehouse router w in
  let kind = pick_kind p rng in
  let seed = Sim.Rng.int rng 0x3FFF_FFFF in
  let nshards = Rolis.Router.shards router in
  let cross_eligible =
    match kind with New_order | Payment -> nshards > 1 | _ -> false
  in
  if cross_eligible && Sim.Rng.float rng 1.0 < cross_pct then begin
    let s' =
      let x = Sim.Rng.int rng (nshards - 1) in
      if x >= home then x + 1 else x
    in
    let lo, hi =
      Rolis.Router.tpcc_warehouse_range router ~warehouses:p.warehouses s'
    in
    let rw = lo + Sim.Rng.int rng (hi - lo + 1) in
    match kind with
    | New_order ->
        Rolis.Shard.Multi
          [ (home, sp "nh %d %d %d" w rw seed); (s', sp "nr %d %d" rw seed) ]
    | Payment ->
        Rolis.Shard.Multi
          [ (home, sp "ph %d %d" w seed); (s', sp "pr %d %d" rw seed) ]
    | _ -> assert false
  end
  else
    let op =
      match kind with
      | New_order -> "n"
      | Payment -> "p"
      | Order_status -> "o"
      | Stock_level -> "s"
      | Delivery -> "d"
    in
    Rolis.Shard.Single (home, sp "%s %d %d" op w seed)

(* ---- consistency checks ---- *)

let consistency_errors p db =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  let t n = Silo.Db.table db n in
  let warehouse = t "warehouse"
  and district = t "district"
  and customer = t "customer"
  and new_order = t "new_order"
  and oorder = t "oorder"
  and order_line = t "order_line" in
  let live table key =
    Option.map (fun (r : Store.Record.t) -> r.value) (Store.Table.get_live table key)
  in
  (* 1. W_YTD = sum(D_YTD). *)
  for w = 1 to p.warehouses do
    match live warehouse (k_warehouse w) with
    | None -> err "warehouse %d missing" w
    | Some w_row ->
        let w_ytd = Row.to_int (Row.field w_row 0) in
        let d_sum = ref 0 in
        for d = 1 to p.districts do
          match live district (k_district w d) with
          | None -> err "district %d/%d missing" w d
          | Some d_row -> d_sum := !d_sum + Row.to_int (Row.field d_row 1)
        done;
        if w_ytd <> !d_sum then err "W_YTD mismatch for w=%d: %d <> %d" w w_ytd !d_sum
  done;
  (* 2. Every order has exactly OL_CNT order lines; every new_order row
        has an order. 3. Global balance equation. *)
  let delivered_amount = ref 0 in
  Store.Table.iter oorder (fun key r ->
      if not r.Store.Record.deleted then begin
        match Store.Keycodec.decode key with
        | [ I w; I d; I o ] ->
            let ol_cnt = Row.to_int (Row.field r.Store.Record.value 2) in
            let delivered = Row.to_int (Row.field r.Store.Record.value 1) <> 0 in
            for ol = 1 to ol_cnt do
              match Store.Table.get_live order_line (k_order_line w d o ol) with
              | None -> err "order %d/%d/%d missing line %d" w d o ol
              | Some lr ->
                  if delivered then
                    delivered_amount :=
                      !delivered_amount + Row.to_int (Row.field lr.Store.Record.value 3)
            done
        | _ -> err "bad order key"
      end);
  Store.Table.iter new_order (fun key r ->
      if not r.Store.Record.deleted then
        match Store.Keycodec.decode key with
        | [ I w; I d; I o ] ->
            if Store.Table.get_live oorder (k_order w d o) = None then
              err "new_order %d/%d/%d without order row" w d o
        | _ -> err "bad new_order key");
  let balance_sum = ref 0 in
  Store.Table.iter customer (fun _ r ->
      if not r.Store.Record.deleted then begin
        let row = r.Store.Record.value in
        balance_sum :=
          !balance_sum + Row.to_int (Row.field row 0) + Row.to_int (Row.field row 1)
      end);
  if !balance_sum <> !delivered_amount then
    err "balance equation: sum(C_BALANCE + C_YTD_PAYMENT) = %d but delivered amounts = %d"
      !balance_sum !delivered_amount;
  List.rev !errors
