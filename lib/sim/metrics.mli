(** Measurement utilities for experiments: histograms (latency
    percentiles), time series (throughput over time), and simple meters. *)

module Hist : sig
  (** Sample histogram. Stores all samples (runs are bounded, virtual-time
      experiments) and sorts lazily for quantiles. *)

  type t

  val create : unit -> t
  val add : t -> int -> unit
  val count : t -> int
  val mean : t -> float
  val max_value : t -> int
  val min_value : t -> int
  val quantile : t -> float -> int
  (** [quantile h q] with [0 <= q <= 1]; nearest-rank. 0 when empty. *)

  val percentile : t -> float -> int
  (** [percentile h 95.0 = quantile h 0.95]. *)

  val clear : t -> unit
  val values : t -> int array
  val merge : t list -> t
end

module Series : sig
  (** Values bucketed by virtual-time interval — e.g. committed
      transactions per 100 ms for the failover timeline (paper Fig. 14). *)

  type t

  val create : bucket_ns:int -> t
  val add : t -> at:int -> int -> unit
  (** Accumulate [v] into the bucket containing time [at]. *)

  val buckets : t -> (int * int) list
  (** [(bucket_start_time, total)] pairs in time order, including empty
      buckets between the first and last used ones. *)

  val rate_per_sec : t -> (float * float) list
  (** Buckets converted to (seconds, events/sec). *)
end

module Meter : sig
  (** Monotonic counter with windowed rate computation. *)

  type t

  val create : unit -> t
  val incr : t -> unit
  val add : t -> int -> unit
  val count : t -> int
  val rate : t -> start:int -> stop:int -> float
  (** Events per (virtual) second over the given window, assuming all
      counted events fell inside it. *)
end
