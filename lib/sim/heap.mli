(** Array-backed binary min-heap.

    Used as the simulator's event queue, so it is specialised for speed:
    mutable, non-thread-safe, with an explicit comparison supplied at
    creation. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** [create ~cmp] is an empty heap ordered by [cmp] (minimum first). *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** [peek h] is the minimum element without removing it. *)

val pop : 'a t -> 'a option
(** [pop h] removes and returns the minimum element. *)

val pop_exn : 'a t -> 'a
(** @raise Invalid_argument on an empty heap. *)

val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** Elements in unspecified order; for inspection and tests. *)
