(** Deterministic fault injection ("nemesis").

    A fault {e plan} is a scripted sequence of crash / restart /
    partition / heal / loss-burst events with virtual-time gaps between
    them. {!spawn} runs the plan as a simulated process, so a plan plus a
    seed reproduces the exact same adversarial schedule on every run —
    which is what makes chaos failures bisectable.

    Crash and restart semantics are owned by the caller: the default
    handlers only toggle the network ({!Net.crash} / {!Net.recover});
    pass [on_crash] / [on_restart] to also kill and rebuild the node's
    processes (e.g. [Rolis.Cluster.crash_replica] / [restart_replica]). *)

type action =
  | Crash of int
  | Restart of int
  | Partition of int * int  (** cut both directions *)
  | Partition_oneway of int * int  (** cut src -> dst only *)
  | Heal of int * int
  | Heal_all
  | Set_faults of Net.faults  (** loss burst: applies to every link *)
  | Clear_faults
  | Add_node of int  (** bring a spare pool slot in as a voter *)
  | Remove_node of int  (** reconfigure a voter out and decommission it *)
  | Handoff_to of int  (** planned leader transfer to this node *)

type step = { after : int; action : action }
(** [after] is the virtual-time delay since the previous step (ns). *)

type plan = step list

val pp_action : Format.formatter -> action -> unit
val pp_plan : Format.formatter -> plan -> unit

val random_plan :
  Rng.t ->
  nodes:int ->
  ?steps:int ->
  ?min_gap:int ->
  ?mean_gap:int ->
  ?max_drop:float ->
  ?max_dup:float ->
  ?max_reorder:int ->
  ?max_down:int ->
  ?quiesce:bool ->
  unit ->
  plan
(** Generate a random plan from a seeded {!Rng.t}. By construction at
    most [max_down] nodes (default: a minority) are down at any moment,
    and with [quiesce] (default true) the plan tail restarts every downed
    node, heals all partitions, and clears the loss model so the cluster
    can converge. *)

val ops_plan :
  Rng.t ->
  base:int ->
  spares:int ->
  ?min_members:int ->
  ?ops:int ->
  ?min_gap:int ->
  ?mean_gap:int ->
  unit ->
  plan
(** Generate a rolling-operations plan over a pool of [base + spares]
    node slots: add-replica, remove-replica, planned handoff, and rolling
    restarts that cycle every current member with at most one node down
    at a time. Membership is tracked by construction — never below
    [min_members], adds only target non-members — so each scheduled
    operation is legal if the cluster kept up; the management plane
    re-checks and skips safely otherwise. [ops] counts operation rounds
    (a rolling restart is one round). Gaps default wider than
    {!random_plan}'s ([min_gap] 400 ms, [mean_gap] 700 ms): membership
    changes need time to commit between ops. *)

val spawn :
  'm Net.t ->
  ?on_crash:(int -> unit) ->
  ?on_restart:(int -> unit) ->
  ?on_add:(int -> unit) ->
  ?on_remove:(int -> unit) ->
  ?on_handoff:(int -> unit) ->
  ?on_step:(action -> unit) ->
  plan ->
  Engine.proc
(** Run the plan as a process on the network's engine. [on_step] fires
    before each action is applied (logging / tracing). The membership
    actions dispatch to [on_add] / [on_remove] / [on_handoff] (e.g.
    [Rolis.Cluster.add_replica] / [remove_replica] / [handoff]); they
    default to no-ops. *)
