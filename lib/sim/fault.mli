(** Deterministic fault injection ("nemesis").

    A fault {e plan} is a scripted sequence of crash / restart /
    partition / heal / loss-burst events with virtual-time gaps between
    them. {!spawn} runs the plan as a simulated process, so a plan plus a
    seed reproduces the exact same adversarial schedule on every run —
    which is what makes chaos failures bisectable.

    Crash and restart semantics are owned by the caller: the default
    handlers only toggle the network ({!Net.crash} / {!Net.recover});
    pass [on_crash] / [on_restart] to also kill and rebuild the node's
    processes (e.g. [Rolis.Cluster.crash_replica] / [restart_replica]). *)

type action =
  | Crash of int
  | Restart of int
  | Partition of int * int  (** cut both directions *)
  | Partition_oneway of int * int  (** cut src -> dst only *)
  | Heal of int * int
  | Heal_all
  | Set_faults of Net.faults  (** loss burst: applies to every link *)
  | Clear_faults

type step = { after : int; action : action }
(** [after] is the virtual-time delay since the previous step (ns). *)

type plan = step list

val pp_action : Format.formatter -> action -> unit
val pp_plan : Format.formatter -> plan -> unit

val random_plan :
  Rng.t ->
  nodes:int ->
  ?steps:int ->
  ?min_gap:int ->
  ?mean_gap:int ->
  ?max_drop:float ->
  ?max_dup:float ->
  ?max_reorder:int ->
  ?max_down:int ->
  ?quiesce:bool ->
  unit ->
  plan
(** Generate a random plan from a seeded {!Rng.t}. By construction at
    most [max_down] nodes (default: a minority) are down at any moment,
    and with [quiesce] (default true) the plan tail restarts every downed
    node, heals all partitions, and clears the loss model so the cluster
    can converge. *)

val spawn :
  'm Net.t ->
  ?on_crash:(int -> unit) ->
  ?on_restart:(int -> unit) ->
  ?on_step:(action -> unit) ->
  plan ->
  Engine.proc
(** Run the plan as a process on the network's engine. [on_step] fires
    before each action is applied (logging / tracing). *)
