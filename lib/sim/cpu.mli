(** Virtual CPU model for one simulated machine.

    Worker processes charge their computation to a [Cpu.t] with {!consume};
    the charge is converted into virtual-time sleep, inflated by

    - an {e efficiency} factor modelling shared-resource slowdown (L3,
      memory bandwidth) as more threads become active — this is what bends
      the per-core throughput curves (paper Fig. 11); and
    - an {e oversubscription} factor [max 1 (active/cores)] when more
      threads are runnable than there are cores.

    The model is intentionally simple: it reproduces saturation and scaling
    shape, not cycle accuracy. *)

type t

val create :
  Engine.t ->
  cores:int ->
  ?efficiency:(active:int -> float) ->
  unit ->
  t
(** [create eng ~cores ()] is a machine with [cores] cores and the
    {!default_efficiency} curve. *)

val default_efficiency : active:int -> float
(** [1 + 0.85 * (min active 16 - 1) / 15]: cost grows linearly up to 16
    active threads, then flattens — calibrated so a Silo-like workload's
    per-core throughput declines for the first ~15 cores and then
    stabilises, as in the paper. *)

val cores : t -> int
val active : t -> int
val engine_of : t -> Engine.t

val register : t -> unit
(** Mark one more thread as active on this machine. *)

val unregister : t -> unit

val consume : t -> int -> unit
(** [consume t cost] charges [cost] ns of computation: the calling process
    sleeps for the inflated amount, and the machine's busy-time accounting
    is updated. Must be called from inside a process. *)

val cost_factor : t -> float
(** Current inflation factor (efficiency x oversubscription). *)

val busy_ns : t -> float
(** Total core-nanoseconds of work consumed so far. *)

val utilization : t -> since:int -> float
(** [utilization t ~since] is busy-time divided by [cores * (now - since)],
    i.e. fraction of machine capacity used since time [since]. *)

val reset_busy : t -> unit
