(* xoshiro256** by Blackman & Vigna (public domain reference
   implementation), seeded through splitmix64 as the authors recommend. *)

type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed =
  let state = ref seed in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let int64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t = create (int64 t)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Masked rejection sampling keeps the distribution exactly uniform. *)
  let mask =
    let rec widen m = if m >= n - 1 then m else widen ((m lsl 1) lor 1) in
    widen 1
  in
  let rec draw () =
    let v = Int64.to_int (int64 t) land mask in
    if v < n then v else draw ()
  in
  draw ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t x =
  (* 53 random bits give a uniform double in [0,1). *)
  let bits = Int64.to_int (Int64.shift_right_logical (int64 t) 11) in
  x *. (float_of_int bits /. 9007199254740992.0)

let bool t = Int64.logand (int64 t) 1L = 1L

let exponential t ~mean =
  let u = 1.0 -. float t 1.0 in
  -.mean *. log u

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))
