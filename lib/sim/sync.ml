type 'a waiter = { mutable active : bool; deliver : 'a -> unit }

(* Deliver through the event queue so that the waker never yields. *)
let deferred_wake eng wake v = Engine.schedule eng (Engine.now eng) (fun () -> wake v)

(* Pop waiters until one is still active; claim and return it. *)
let rec claim_waiter waiters =
  match Queue.take_opt waiters with
  | None -> None
  | Some w -> if w.active then begin w.active <- false; Some w end else claim_waiter waiters

module Ivar = struct
  type 'a t = {
    eng : Engine.t;
    mutable value : 'a option;
    waiters : 'a waiter Queue.t;
  }

  let create eng = { eng; value = None; waiters = Queue.create () }

  let fill t v =
    match t.value with
    | Some _ -> invalid_arg "Ivar.fill: already filled"
    | None ->
        t.value <- Some v;
        let rec flush () =
          match claim_waiter t.waiters with
          | None -> ()
          | Some w ->
              w.deliver v;
              flush ()
        in
        flush ()

  let is_filled t = t.value <> None
  let peek t = t.value

  let read t =
    match t.value with
    | Some v -> v
    | None ->
        Engine.suspend (fun ~wake ->
            Queue.add { active = true; deliver = deferred_wake t.eng wake } t.waiters)
end

module Mailbox = struct
  type 'a t = {
    eng : Engine.t;
    msgs : 'a Queue.t;
    waiters : 'a waiter Queue.t;
  }

  let create eng = { eng; msgs = Queue.create (); waiters = Queue.create () }

  let send t msg =
    match claim_waiter t.waiters with
    | Some w -> w.deliver msg
    | None -> Queue.add msg t.msgs

  let try_recv t = Queue.take_opt t.msgs

  let recv t =
    match Queue.take_opt t.msgs with
    | Some v -> v
    | None ->
        Engine.suspend (fun ~wake ->
            Queue.add { active = true; deliver = deferred_wake t.eng wake } t.waiters)

  let recv_timeout t d =
    match Queue.take_opt t.msgs with
    | Some v -> Some v
    | None ->
        Engine.suspend (fun ~wake ->
            let w =
              { active = true; deliver = (fun v -> deferred_wake t.eng wake (Some v)) }
            in
            Queue.add w t.waiters;
            Engine.schedule t.eng
              (Engine.now t.eng + d)
              (fun () ->
                if w.active then begin
                  w.active <- false;
                  wake None
                end))

  let length t = Queue.length t.msgs
  let clear t = Queue.clear t.msgs
end

module Mutex = struct
  type t = {
    eng : Engine.t;
    mutable held : bool;
    waiters : unit waiter Queue.t;
  }

  let create eng = { eng; held = false; waiters = Queue.create () }

  let try_lock t =
    if t.held then false
    else begin
      t.held <- true;
      true
    end

  let lock t =
    if not (try_lock t) then
      Engine.suspend (fun ~wake ->
          Queue.add { active = true; deliver = deferred_wake t.eng wake } t.waiters)

  let unlock t =
    if not t.held then invalid_arg "Mutex.unlock: not locked";
    match claim_waiter t.waiters with
    | Some w -> w.deliver () (* ownership transfers to the waiter *)
    | None -> t.held <- false

  let is_locked t = t.held

  let with_lock t f =
    lock t;
    Fun.protect ~finally:(fun () -> unlock t) f
end

module Condition = struct
  type t = { eng : Engine.t; waiters : unit waiter Queue.t }

  let create eng = { eng; waiters = Queue.create () }

  let wait t mu =
    Engine.suspend (fun ~wake ->
        Queue.add { active = true; deliver = deferred_wake t.eng wake } t.waiters;
        Mutex.unlock mu);
    Mutex.lock mu

  let signal t = match claim_waiter t.waiters with Some w -> w.deliver () | None -> ()

  let broadcast t =
    let rec flush () =
      match claim_waiter t.waiters with
      | None -> ()
      | Some w ->
          w.deliver ();
          flush ()
    in
    flush ()
end

module Semaphore = struct
  type t = {
    eng : Engine.t;
    mutable count : int;
    waiters : unit waiter Queue.t;
  }

  let create eng count =
    if count < 0 then invalid_arg "Semaphore.create: negative count";
    { eng; count; waiters = Queue.create () }

  let try_acquire t =
    if t.count > 0 then begin
      t.count <- t.count - 1;
      true
    end
    else false

  let acquire t =
    if not (try_acquire t) then
      Engine.suspend (fun ~wake ->
          Queue.add { active = true; deliver = deferred_wake t.eng wake } t.waiters)

  let release t =
    match claim_waiter t.waiters with
    | Some w -> w.deliver () (* the permit transfers directly *)
    | None -> t.count <- t.count + 1

  let value t = t.count
end

module Waitgroup = struct
  type t = {
    eng : Engine.t;
    mutable count : int;
    waiters : unit waiter Queue.t;
  }

  let create eng = { eng; count = 0; waiters = Queue.create () }

  let add t n =
    if t.count + n < 0 then invalid_arg "Waitgroup.add: negative count";
    t.count <- t.count + n

  let finish t =
    if t.count <= 0 then invalid_arg "Waitgroup.finish: count underflow";
    t.count <- t.count - 1;
    if t.count = 0 then begin
      let rec flush () =
        match claim_waiter t.waiters with
        | None -> ()
        | Some w ->
            w.deliver ();
            flush ()
      in
      flush ()
    end

  let wait t =
    if t.count > 0 then
      Engine.suspend (fun ~wake ->
          Queue.add { active = true; deliver = deferred_wake t.eng wake } t.waiters)
end
