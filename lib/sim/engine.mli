(** Deterministic discrete-event simulation engine.

    The engine owns a virtual clock (integer nanoseconds) and an event
    queue. Simulated activities are {e processes}: ordinary OCaml functions
    that run cooperatively via effect handlers. A process runs atomically
    between suspension points ([sleep], [suspend], or primitives in
    {!Sync} built on them), which gives the usual DES guarantee that state
    mutations between yields need no locking.

    Determinism: given the same seed and the same program, every run
    produces the same event order. Ties in virtual time are broken by a
    monotonically increasing sequence number. *)

type t
(** A simulation engine instance. *)

type proc
(** Handle to a spawned process. *)

exception Process_failure of string * exn
(** An exception escaped a process body: the simulation model has a bug.
    Carries the process name and the original exception. *)

val create : ?seed:int64 -> unit -> t
(** [create ?seed ()] is a fresh engine with virtual time 0. *)

val now : t -> int
(** Current virtual time in nanoseconds. *)

val rng : t -> Rng.t
(** The engine's root RNG; components should [Rng.split] it. *)

val schedule : t -> int -> (unit -> unit) -> unit
(** [schedule t at thunk] runs [thunk] at absolute virtual time [at]
    (clamped to [now t] if in the past). The thunk runs outside any
    process; it may spawn processes or wake suspended ones. *)

val spawn : t -> ?name:string -> (unit -> unit) -> proc
(** [spawn t f] schedules process [f] to start at the current time. The
    process may use the effect-based operations below. An exception
    escaping [f] aborts the whole simulation (it is a bug in the model). *)

val kill : proc -> unit
(** [kill p] marks [p] dead. If it is suspended it will never resume; its
    pending wakeups are dropped. Used to simulate thread/machine crashes. *)

val alive : proc -> bool

val proc_name : proc -> string

val run : ?until:int -> ?max_events:int -> t -> unit
(** [run t] executes events until the queue drains, or virtual time would
    exceed [until], or [max_events] events have fired. When [until] is
    given the clock is advanced to exactly [until] on return. *)

(** {1 Operations usable only inside a process} *)

val self : unit -> proc

val time : unit -> int
(** Current virtual time, from inside a process. *)

val engine : unit -> t
(** The engine running the current process. *)

val sleep : int -> unit
(** [sleep d] suspends the current process for [d] nanoseconds ([d <= 0]
    yields: the process is rescheduled at the current time, after already
    queued events). *)

val sleep_until : int -> unit

val suspend : (wake:('a -> unit) -> unit) -> 'a
(** [suspend register] parks the current process and calls
    [register ~wake]. A later call to [wake v] (from an event thunk or
    another process) resumes the process with value [v]. Only the first
    call to [wake] has any effect; wakeups of dead processes are dropped.
    This is the single primitive from which all of {!Sync} is built. *)

val ns : int
val us : int
val ms : int
val s : int
(** Unit helpers: [5 * ms] is five virtual milliseconds. *)

val pp_time : Format.formatter -> int -> unit
(** Render a virtual time compactly ("12.5ms"). *)
