type action =
  | Crash of int
  | Restart of int
  | Partition of int * int
  | Partition_oneway of int * int
  | Heal of int * int
  | Heal_all
  | Set_faults of Net.faults
  | Clear_faults
  | Add_node of int
  | Remove_node of int
  | Handoff_to of int

type step = { after : int; action : action }
type plan = step list

let pp_action fmt = function
  | Crash i -> Format.fprintf fmt "crash %d" i
  | Restart i -> Format.fprintf fmt "restart %d" i
  | Partition (a, b) -> Format.fprintf fmt "partition %d<->%d" a b
  | Partition_oneway (src, dst) -> Format.fprintf fmt "partition %d->%d" src dst
  | Heal (a, b) -> Format.fprintf fmt "heal %d<->%d" a b
  | Heal_all -> Format.fprintf fmt "heal-all"
  | Set_faults f ->
      Format.fprintf fmt "faults drop=%.2f dup=%.2f reorder=%dus" f.Net.drop f.Net.dup
        (f.Net.reorder / 1_000)
  | Clear_faults -> Format.fprintf fmt "clear-faults"
  | Add_node i -> Format.fprintf fmt "add-node %d" i
  | Remove_node i -> Format.fprintf fmt "remove-node %d" i
  | Handoff_to i -> Format.fprintf fmt "handoff-to %d" i

let pp_plan fmt plan =
  let at = ref 0 in
  List.iter
    (fun { after; action } ->
      at := !at + after;
      Format.fprintf fmt "  t=+%dms %a@." (!at / 1_000_000) pp_action action)
    plan

(* Random fault plan. Invariants kept by construction: never more than
   [max_down] nodes down at once (a majority survives so the cluster can
   make progress), and — when [quiesce] — the plan ends by restarting
   every downed node, healing every partition, and clearing the loss
   model, so the cluster can converge afterwards. *)
let random_plan rng ~nodes ?(steps = 12) ?(min_gap = 50 * Engine.ms)
    ?(mean_gap = 150 * Engine.ms) ?(max_drop = 0.25) ?(max_dup = 0.2)
    ?(max_reorder = 2 * Engine.ms) ?max_down ?(quiesce = true) () =
  if nodes < 1 then invalid_arg "Fault.random_plan: need at least one node";
  let max_down =
    match max_down with Some m -> m | None -> max 0 ((nodes - 1) / 2)
  in
  let down = Array.make nodes false in
  let ndown () = Array.fold_left (fun a b -> if b then a + 1 else a) 0 down in
  let parted = ref false and faulty = ref false in
  let node () = Rng.int rng nodes in
  let pair () =
    let a = node () in
    let b = (a + 1 + Rng.int rng (max 1 (nodes - 1))) mod nodes in
    (a, b)
  in
  let gap () =
    min_gap + int_of_float (Rng.exponential rng ~mean:(float_of_int mean_gap))
  in
  let steps_acc = ref [] in
  let emit action = steps_acc := { after = gap (); action } :: !steps_acc in
  for _ = 1 to steps do
    (* Weighted choice among the actions legal in the current state. *)
    let choices = ref [] in
    let add w c = for _ = 1 to w do choices := c :: !choices done in
    if ndown () < max_down then add 3 `Crash;
    if ndown () > 0 then add 4 `Restart;
    if nodes > 1 then begin
      add 2 `Partition;
      add 2 `Oneway
    end;
    if !parted then add 3 `Heal_all;
    if !faulty then add 2 `Clear_faults else add 3 `Set_faults;
    let arr = Array.of_list !choices in
    if Array.length arr > 0 then
      match Rng.pick rng arr with
      | `Crash ->
          (* Pick an up node, scanning from a random start. *)
          let start = node () in
          let found = ref None in
          for k = 0 to nodes - 1 do
            let i = (start + k) mod nodes in
            if !found = None && not down.(i) then found := Some i
          done;
          Option.iter
            (fun i ->
              down.(i) <- true;
              emit (Crash i))
            !found
      | `Restart ->
          let start = node () in
          let found = ref None in
          for k = 0 to nodes - 1 do
            let i = (start + k) mod nodes in
            if !found = None && down.(i) then found := Some i
          done;
          Option.iter
            (fun i ->
              down.(i) <- false;
              emit (Restart i))
            !found
      | `Partition ->
          let a, b = pair () in
          parted := true;
          emit (Partition (a, b))
      | `Oneway ->
          let a, b = pair () in
          parted := true;
          emit (Partition_oneway (a, b))
      | `Heal_all ->
          parted := false;
          emit Heal_all
      | `Set_faults ->
          faulty := true;
          emit
            (Set_faults
               {
                 Net.drop = Rng.float rng max_drop;
                 dup = Rng.float rng max_dup;
                 reorder = Rng.int rng (max_reorder + 1);
               })
      | `Clear_faults ->
          faulty := false;
          emit Clear_faults
  done;
  if quiesce then begin
    for i = 0 to nodes - 1 do
      if down.(i) then emit (Restart i)
    done;
    if !parted then emit Heal_all;
    if !faulty then emit Clear_faults
  end;
  List.rev !steps_acc

(* Rolling-operations plan: membership changes, planned handoffs and
   rolling restarts over a pool of [base + spares] slots, while at most
   one node is ever down. Membership is tracked by construction so every
   scheduled operation is legal {e if} the cluster kept up — the
   management plane still re-checks and skips safely when a concurrent
   election makes it stale. *)
let ops_plan rng ~base ~spares ?(min_members = 1) ?(ops = 8)
    ?(min_gap = 400 * Engine.ms) ?(mean_gap = 700 * Engine.ms) () =
  if base < 1 then invalid_arg "Fault.ops_plan: need at least one base node";
  if spares < 0 then invalid_arg "Fault.ops_plan: negative spares";
  let pool = base + spares in
  let member = Array.make pool false in
  for i = 0 to base - 1 do
    member.(i) <- true
  done;
  let nmembers () =
    Array.fold_left (fun a b -> if b then a + 1 else a) 0 member
  in
  let pick_where pred =
    let start = Rng.int rng pool in
    let found = ref None in
    for k = 0 to pool - 1 do
      let i = (start + k) mod pool in
      if !found = None && pred i then found := Some i
    done;
    !found
  in
  let gap () =
    min_gap + int_of_float (Rng.exponential rng ~mean:(float_of_int mean_gap))
  in
  let steps_acc = ref [] in
  let emit action = steps_acc := { after = gap (); action } :: !steps_acc in
  for _ = 1 to ops do
    let choices = ref [] in
    let add w c = for _ = 1 to w do choices := c :: !choices done in
    if nmembers () < pool then add 3 `Add;
    if nmembers () > min_members then add 2 `Remove;
    if nmembers () > 1 then begin
      add 3 `Handoff;
      add 2 `Rolling
    end;
    let arr = Array.of_list !choices in
    if Array.length arr > 0 then
      match Rng.pick rng arr with
      | `Add ->
          Option.iter
            (fun i ->
              member.(i) <- true;
              emit (Add_node i))
            (pick_where (fun i -> not member.(i)))
      | `Remove ->
          Option.iter
            (fun i ->
              member.(i) <- false;
              emit (Remove_node i))
            (pick_where (fun i -> member.(i)))
      | `Handoff ->
          Option.iter (fun i -> emit (Handoff_to i))
            (pick_where (fun i -> member.(i)))
      | `Rolling ->
          (* Cycle every current member, one down at a time. *)
          for i = 0 to pool - 1 do
            if member.(i) then begin
              emit (Crash i);
              emit (Restart i)
            end
          done
  done;
  List.rev !steps_acc

let apply net ?(on_add = ignore) ?(on_remove = ignore) ?(on_handoff = ignore)
    ~on_crash ~on_restart = function
  | Crash i -> on_crash i
  | Restart i -> on_restart i
  | Partition (a, b) -> Net.partition net a b
  | Partition_oneway (src, dst) -> Net.partition_oneway net ~src ~dst
  | Heal (a, b) -> Net.heal net a b
  | Heal_all -> Net.heal_all net
  | Set_faults f -> Net.set_default_faults net f
  | Clear_faults -> Net.clear_faults net
  | Add_node i -> on_add i
  | Remove_node i -> on_remove i
  | Handoff_to i -> on_handoff i

let spawn net ?on_crash ?on_restart ?on_add ?on_remove ?on_handoff ?on_step plan
    =
  let on_crash = match on_crash with Some f -> f | None -> Net.crash net in
  let on_restart = match on_restart with Some f -> f | None -> Net.recover net in
  let eng = Net.engine net in
  Engine.spawn eng ~name:"nemesis" (fun () ->
      List.iter
        (fun { after; action } ->
          if after > 0 then Engine.sleep after;
          (match on_step with Some f -> f action | None -> ());
          apply net ?on_add ?on_remove ?on_handoff ~on_crash ~on_restart action)
        plan)
