module Hist = struct
  type t = {
    mutable data : int array;
    mutable size : int;
    mutable sorted : bool;
  }

  let create () = { data = [||]; size = 0; sorted = true }

  let add t v =
    let cap = Array.length t.data in
    if t.size = cap then begin
      let ncap = if cap = 0 then 1024 else cap * 2 in
      let data = Array.make ncap 0 in
      Array.blit t.data 0 data 0 t.size;
      t.data <- data
    end;
    t.data.(t.size) <- v;
    t.size <- t.size + 1;
    t.sorted <- false

  let count t = t.size

  let ensure_sorted t =
    if not t.sorted then begin
      let live = Array.sub t.data 0 t.size in
      Array.sort compare live;
      Array.blit live 0 t.data 0 t.size;
      t.sorted <- true
    end

  let mean t =
    if t.size = 0 then 0.0
    else begin
      let sum = ref 0.0 in
      for i = 0 to t.size - 1 do
        sum := !sum +. float_of_int t.data.(i)
      done;
      !sum /. float_of_int t.size
    end

  let max_value t =
    if t.size = 0 then 0
    else begin
      ensure_sorted t;
      t.data.(t.size - 1)
    end

  let min_value t =
    if t.size = 0 then 0
    else begin
      ensure_sorted t;
      t.data.(0)
    end

  let quantile t q =
    if t.size = 0 then 0
    else begin
      if q < 0.0 || q > 1.0 then invalid_arg "Hist.quantile: q outside [0,1]";
      ensure_sorted t;
      let rank = int_of_float (ceil (q *. float_of_int t.size)) in
      let idx = if rank <= 0 then 0 else rank - 1 in
      t.data.(min idx (t.size - 1))
    end

  let percentile t p = quantile t (p /. 100.0)

  let clear t =
    t.size <- 0;
    t.sorted <- true

  let values t = Array.sub t.data 0 t.size

  let merge ts =
    let out = create () in
    List.iter (fun t -> Array.iter (add out) (values t)) ts;
    out
end

module Series = struct
  type t = { bucket : int; tbl : (int, int ref) Hashtbl.t }

  let create ~bucket_ns =
    if bucket_ns <= 0 then invalid_arg "Series.create: bucket must be positive";
    { bucket = bucket_ns; tbl = Hashtbl.create 64 }

  let add t ~at v =
    let b = at / t.bucket in
    match Hashtbl.find_opt t.tbl b with
    | Some r -> r := !r + v
    | None -> Hashtbl.add t.tbl b (ref v)

  let buckets t =
    if Hashtbl.length t.tbl = 0 then []
    else begin
      let keys = Hashtbl.fold (fun k _ acc -> k :: acc) t.tbl [] in
      let lo = List.fold_left min (List.hd keys) keys in
      let hi = List.fold_left max (List.hd keys) keys in
      List.init
        (hi - lo + 1)
        (fun i ->
          let b = lo + i in
          let v = match Hashtbl.find_opt t.tbl b with Some r -> !r | None -> 0 in
          (b * t.bucket, v))
    end

  let rate_per_sec t =
    let scale = 1e9 /. float_of_int t.bucket in
    List.map
      (fun (at, v) -> (float_of_int at /. 1e9, float_of_int v *. scale))
      (buckets t)
end

module Meter = struct
  type t = { mutable n : int }

  let create () = { n = 0 }
  let incr t = t.n <- t.n + 1
  let add t v = t.n <- t.n + v
  let count t = t.n

  let rate t ~start ~stop =
    let dt = stop - start in
    if dt <= 0 then 0.0 else float_of_int t.n *. 1e9 /. float_of_int dt
end
