(** Synchronization primitives for simulated processes.

    All blocking operations must be called from inside a process spawned on
    the engine the primitive was created with. Wakeups are delivered
    through the event queue (never synchronously inside the waker), so a
    [send]/[signal]/[fill] never yields the calling process. *)

module Ivar : sig
  (** Write-once cell ("future"). *)

  type 'a t

  val create : Engine.t -> 'a t
  val fill : 'a t -> 'a -> unit
  (** @raise Invalid_argument if already filled. *)

  val is_filled : 'a t -> bool
  val peek : 'a t -> 'a option
  val read : 'a t -> 'a
  (** Blocks until filled. *)
end

module Mailbox : sig
  (** Unbounded FIFO channel. *)

  type 'a t

  val create : Engine.t -> 'a t
  val send : 'a t -> 'a -> unit
  val recv : 'a t -> 'a
  (** Blocks until a message is available. *)

  val recv_timeout : 'a t -> int -> 'a option
  (** [recv_timeout mb d] waits at most [d] ns; [None] on timeout. *)

  val try_recv : 'a t -> 'a option
  val length : 'a t -> int
  val clear : 'a t -> unit
end

module Mutex : sig
  (** FIFO mutex with ownership handoff on unlock. *)

  type t

  val create : Engine.t -> t
  val lock : t -> unit
  val try_lock : t -> bool
  val unlock : t -> unit
  val is_locked : t -> bool
  val with_lock : t -> (unit -> 'a) -> 'a
end

module Condition : sig
  type t

  val create : Engine.t -> t
  val wait : t -> Mutex.t -> unit
  (** Atomically releases the mutex and waits; re-acquires before
      returning. *)

  val signal : t -> unit
  val broadcast : t -> unit
end

module Semaphore : sig
  type t

  val create : Engine.t -> int -> t
  val acquire : t -> unit
  val try_acquire : t -> bool
  val release : t -> unit
  val value : t -> int
end

module Waitgroup : sig
  (** Counts outstanding tasks; [wait] blocks until the count reaches 0. *)

  type t

  val create : Engine.t -> t
  val add : t -> int -> unit
  val finish : t -> unit
  val wait : t -> unit
end
