type t = {
  eng : Engine.t;
  cores : int;
  efficiency : active:int -> float;
  mutable active : int;
  mutable busy : float;
}

let default_efficiency ~active =
  let a = if active < 1 then 1 else if active > 16 then 16 else active in
  1.0 +. (0.85 *. float_of_int (a - 1) /. 15.0)

let create eng ~cores ?(efficiency = default_efficiency) () =
  if cores <= 0 then invalid_arg "Cpu.create: cores must be positive";
  { eng; cores; efficiency; active = 0; busy = 0.0 }

let cores t = t.cores
let active t = t.active
let engine_of t = t.eng
let register t = t.active <- t.active + 1

let unregister t =
  if t.active <= 0 then invalid_arg "Cpu.unregister: no active threads";
  t.active <- t.active - 1

let cost_factor t =
  let eff = t.efficiency ~active:t.active in
  let oversub =
    if t.active > t.cores then float_of_int t.active /. float_of_int t.cores else 1.0
  in
  eff *. oversub

let consume t cost =
  if cost < 0 then invalid_arg "Cpu.consume: negative cost";
  let factor = cost_factor t in
  let eff = t.efficiency ~active:t.active in
  (* Busy time counts real work done (efficiency-inflated), not queueing
     delay from oversubscription. *)
  t.busy <- t.busy +. (float_of_int cost *. eff);
  Engine.sleep (int_of_float (float_of_int cost *. factor))

let busy_ns t = t.busy

let utilization t ~since =
  let elapsed = Engine.now t.eng - since in
  if elapsed <= 0 then 0.0
  else t.busy /. (float_of_int t.cores *. float_of_int elapsed)

let reset_busy t = t.busy <- 0.0
