(** Deterministic, splittable pseudo-random number generator.

    The simulator must be fully deterministic for a given seed: every run of
    an experiment with the same configuration produces the same virtual-time
    trace. We therefore avoid [Stdlib.Random] (whose global state would be
    shared across unrelated components) and use an explicit xoshiro256**
    state that can be split per component. *)

type t

val create : int64 -> t
(** [create seed] seeds a generator; any seed (including 0) is valid. *)

val split : t -> t
(** [split t] derives an independent generator; both streams remain
    deterministic. Used to give each simulated component its own stream so
    that adding draws in one component does not perturb another. *)

val int64 : t -> int64
(** Uniform over all 64-bit values. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]. @raise Invalid_argument if [n <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in the inclusive range [\[lo, hi\]]. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** Exponentially distributed with the given mean; used for network jitter. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniformly chosen element. @raise Invalid_argument on an empty array. *)
