(** Simulated message-passing network.

    Nodes are integers [0 .. nodes-1]; each has an unbounded inbox.
    Delivery takes a sampled latency. Crash-stop failures, symmetric and
    one-way link partitions, and a per-link fault model (loss, duplication,
    reorder jitter) drop, repeat, or delay messages — which matches the
    asynchronous-network assumption in the paper: messages can be lost,
    duplicated, or arbitrarily delayed, and consensus — not the network —
    provides reliability.

    Each node carries an {e incarnation number}, bumped on {!crash}: a
    message in flight across a crash can never be delivered into a later
    incarnation, even if the node recovers before the delivery event. *)

type latency_model =
  | Fixed of int  (** constant one-way delay, ns *)
  | Uniform of int * int  (** uniform in [lo, hi] ns *)
  | Exp_jitter of { base : int; jitter_mean : int }
      (** [base] plus exponentially distributed jitter; heavy-ish tail,
          good default for a datacenter network *)

type faults = {
  drop : float;  (** probability in [0,1) of losing a message at send *)
  dup : float;  (** probability in [0,1) of delivering a second copy *)
  reorder : int;
      (** extra uniform delay in [0, reorder] ns added per message;
          enough jitter reorders deliveries *)
}

val no_faults : faults

type 'm t

val create : Engine.t -> nodes:int -> latency:latency_model -> 'm t

val nodes : 'm t -> int
val engine : 'm t -> Engine.t

val send : 'm t -> ?size:int -> src:int -> dst:int -> 'm -> unit
(** Queue [m] for delivery to [dst]. Dropped silently if either end is
    crashed or the [src -> dst] direction is cut (checked both at send and
    at delivery time), or by the link's fault model. [size] feeds byte
    accounting only. *)

val broadcast : 'm t -> ?size:int -> src:int -> 'm -> unit
(** Send to every node except [src]. *)

val recv : 'm t -> int -> 'm
(** Blocking receive on a node's inbox. *)

val recv_timeout : 'm t -> int -> int -> 'm option
(** [recv_timeout t node d]: wait at most [d] ns. *)

val try_recv : 'm t -> int -> 'm option
val inbox_length : 'm t -> int -> int

val crash : 'm t -> int -> unit
(** Crash-stop: inbox is discarded, the incarnation number advances (so
    in-flight messages die with the old incarnation); all traffic to/from
    drops. The caller is responsible for killing the node's processes. *)

val recover : 'm t -> int -> unit
(** The node rejoins with an empty inbox, in its current incarnation. *)

val is_up : 'm t -> int -> bool

val incarnation : 'm t -> int -> int
(** Number of crashes this node has suffered. *)

val partition : 'm t -> int -> int -> unit
(** Cut the (bidirectional) link between two nodes. *)

val partition_oneway : 'm t -> src:int -> dst:int -> unit
(** Cut only the [src -> dst] direction (asymmetric partition). *)

val heal : 'm t -> int -> int -> unit
(** Restore both directions between two nodes. *)

val heal_all : 'm t -> unit

val is_connected : 'm t -> int -> int -> bool
(** Both directions intact. *)

val can_send : 'm t -> src:int -> dst:int -> bool
(** The [src -> dst] direction is intact. *)

val set_default_faults : 'm t -> faults -> unit
(** Fault model applied to every link without a per-link override. *)

val set_link_faults : 'm t -> src:int -> dst:int -> faults -> unit
(** Directed per-link override of the default fault model. *)

val clear_faults : 'm t -> unit
(** Reset the default and every per-link override to {!no_faults}. *)

val messages_sent : 'm t -> int
(** Messages actually put on the wire (duplicates included). Sends that
    hit a dead endpoint, a cut link, or the loss model are not counted
    here — see {!messages_dropped}. *)

val bytes_sent : 'm t -> int

val messages_dropped : 'm t -> int
(** Messages lost for any reason: dead endpoint or cut link at send time,
    random loss, or crash/cut/restart while in flight. *)

val messages_duplicated : 'm t -> int

(** {2 Geo topologies}

    Every link defaults to the global [latency] model; directed per-link
    overrides express region matrices (intra-DC vs cross-region
    distributions) for leader-placement and follower-read experiments.
    With no overrides installed, sampling draws exactly the same RNG
    sequence as the historical single-model network. *)

val set_link_latency : 'm t -> src:int -> dst:int -> latency_model -> unit
(** Directed per-link override of the global latency model.
    @raise Invalid_argument on a malformed model. *)

val link_latency_model : 'm t -> src:int -> dst:int -> latency_model
(** The model governing [src -> dst] (the override, or the global one). *)

val apply_regions :
  'm t -> regions:int array -> intra:latency_model -> inter:latency_model -> unit
(** Install a region matrix: [regions.(i)] is node [i]'s region; every
    ordered pair of covered nodes gets [intra] when co-located and
    [inter] across regions. Nodes beyond the array keep the global
    model. *)

type wan_profile = {
  wp_regions : int;  (** region count nodes are assigned to round-robin *)
  wp_intra : latency_model;
  wp_inter : latency_model;
}

val wan_profile : string -> wan_profile option
(** Named profiles: ["wan3"] (3 regions, ~25 us intra-DC vs ~30 ms
    cross-region one-way) and ["metro3"] (3 availability zones, ~1 ms
    between zones). [None] for unknown names. *)

val wan_profile_names : string list

val sample_latency : 'm t -> src:int -> dst:int -> int
(** Draw one latency sample from the link's model (for
    tests/calibration). Consumes the network's latency RNG stream. *)
