(** Simulated message-passing network.

    Nodes are integers [0 .. nodes-1]; each has an unbounded inbox.
    Delivery takes a sampled latency. Crash-stop failures and (symmetric)
    link partitions drop messages, which matches the asynchronous-network
    assumption in the paper: messages can be lost or arbitrarily delayed,
    and consensus — not the network — provides reliability. *)

type latency_model =
  | Fixed of int  (** constant one-way delay, ns *)
  | Uniform of int * int  (** uniform in [lo, hi] ns *)
  | Exp_jitter of { base : int; jitter_mean : int }
      (** [base] plus exponentially distributed jitter; heavy-ish tail,
          good default for a datacenter network *)

type 'm t

val create : Engine.t -> nodes:int -> latency:latency_model -> 'm t

val nodes : 'm t -> int
val engine : 'm t -> Engine.t

val send : 'm t -> ?size:int -> src:int -> dst:int -> 'm -> unit
(** Queue [m] for delivery to [dst]. Dropped silently if either end is
    crashed or the link is partitioned (checked both at send and at
    delivery time). [size] feeds byte accounting only. *)

val broadcast : 'm t -> ?size:int -> src:int -> 'm -> unit
(** Send to every node except [src]. *)

val recv : 'm t -> int -> 'm
(** Blocking receive on a node's inbox. *)

val recv_timeout : 'm t -> int -> int -> 'm option
(** [recv_timeout t node d]: wait at most [d] ns. *)

val try_recv : 'm t -> int -> 'm option
val inbox_length : 'm t -> int -> int

val crash : 'm t -> int -> unit
(** Crash-stop: inbox is discarded; all traffic to/from drops. The caller
    is responsible for killing the node's processes. *)

val recover : 'm t -> int -> unit
(** The node rejoins with an empty inbox. *)

val is_up : 'm t -> int -> bool

val partition : 'm t -> int -> int -> unit
(** Cut the (bidirectional) link between two nodes. *)

val heal : 'm t -> int -> int -> unit
val heal_all : 'm t -> unit
val is_connected : 'm t -> int -> int -> bool

val messages_sent : 'm t -> int
val bytes_sent : 'm t -> int
val sample_latency : 'm t -> int
(** Draw one latency sample from the model (for tests/calibration). *)
