type event = { at : int; seq : int; thunk : unit -> unit }

type t = {
  mutable clock : int;
  mutable seq : int;
  queue : event Heap.t;
  root_rng : Rng.t;
  mutable next_pid : int;
  mutable running : bool;
}

type proc = {
  pid : int;
  name : string;
  eng : t;
  mutable dead : bool;
}

(* The generic suspension effect: the payload receives a one-shot wake
   function. Declared with an existential result type. *)
type _ Effect.t += Suspend : (('a -> unit) -> unit) -> 'a Effect.t
type _ Effect.t += Self : proc Effect.t

exception Process_failure of string * exn

let cmp_event a b = if a.at <> b.at then compare a.at b.at else compare a.seq b.seq

let create ?(seed = 42L) () =
  {
    clock = 0;
    seq = 0;
    queue = Heap.create ~cmp:cmp_event;
    root_rng = Rng.create seed;
    next_pid = 0;
    running = false;
  }

let now t = t.clock
let rng t = t.root_rng

let schedule t at thunk =
  let at = if at < t.clock then t.clock else at in
  t.seq <- t.seq + 1;
  Heap.push t.queue { at; seq = t.seq; thunk }

let proc_name p = Printf.sprintf "%s#%d" p.name p.pid
let alive p = not p.dead
let kill p = p.dead <- true

(* Run [f] as the body of process [p], handling its suspension effects. *)
let exec_process (p : proc) (f : unit -> unit) : unit =
  let open Effect.Deep in
  match_with f ()
    {
      retc = (fun () -> p.dead <- true);
      exnc =
        (fun e ->
          p.dead <- true;
          raise (Process_failure (proc_name p, e)));
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Suspend register ->
              Some
                (fun (k : (a, _) continuation) ->
                  let fired = ref false in
                  let wake (v : a) =
                    if (not !fired) && not p.dead then begin
                      fired := true;
                      continue k v
                    end
                    else fired := true
                  in
                  register wake)
          | Self -> Some (fun (k : (a, _) continuation) -> continue k p)
          | _ -> None);
    }

let spawn t ?(name = "proc") f =
  t.next_pid <- t.next_pid + 1;
  let p = { pid = t.next_pid; name; eng = t; dead = false } in
  schedule t t.clock (fun () -> if not p.dead then exec_process p f);
  p

let run ?until ?(max_events = max_int) t =
  if t.running then invalid_arg "Engine.run: already running (re-entrant run)";
  t.running <- true;
  Fun.protect
    ~finally:(fun () -> t.running <- false)
    (fun () ->
      let fired = ref 0 in
      let continue_run = ref true in
      while !continue_run do
        match Heap.peek t.queue with
        | None -> continue_run := false
        | Some ev ->
            let past_deadline =
              match until with Some u -> ev.at > u | None -> false
            in
            if past_deadline || !fired >= max_events then continue_run := false
            else begin
              ignore (Heap.pop_exn t.queue);
              t.clock <- ev.at;
              incr fired;
              ev.thunk ()
            end
      done;
      match until with
      | Some u -> if t.clock < u then t.clock <- u
      | None -> ())

(* ---- In-process operations ---- *)

let self () = Effect.perform Self

let suspend (register : wake:('a -> unit) -> unit) : 'a =
  Effect.perform (Suspend (fun wake -> register ~wake))

let engine () = (self ()).eng
let time () = (engine ()).clock

let sleep_until at =
  let p = self () in
  suspend (fun ~wake -> schedule p.eng at (fun () -> wake ()))

let sleep d =
  let p = self () in
  let at = p.eng.clock + if d < 0 then 0 else d in
  sleep_until at

let ns = 1
let us = 1_000
let ms = 1_000_000
let s = 1_000_000_000

let pp_time fmt t =
  if t >= s then Format.fprintf fmt "%.3fs" (float_of_int t /. float_of_int s)
  else if t >= ms then Format.fprintf fmt "%.3fms" (float_of_int t /. float_of_int ms)
  else if t >= us then Format.fprintf fmt "%.3fus" (float_of_int t /. float_of_int us)
  else Format.fprintf fmt "%dns" t
