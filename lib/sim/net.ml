type latency_model =
  | Fixed of int
  | Uniform of int * int
  | Exp_jitter of { base : int; jitter_mean : int }

type 'm t = {
  eng : Engine.t;
  n : int;
  latency : latency_model;
  rng : Rng.t;
  inboxes : 'm Sync.Mailbox.t array;
  up : bool array;
  cut : (int * int, unit) Hashtbl.t; (* normalised (min,max) pairs *)
  mutable messages_sent : int;
  mutable bytes_sent : int;
}

let create eng ~nodes ~latency =
  if nodes <= 0 then invalid_arg "Net.create: need at least one node";
  {
    eng;
    n = nodes;
    latency;
    rng = Rng.split (Engine.rng eng);
    inboxes = Array.init nodes (fun _ -> Sync.Mailbox.create eng);
    up = Array.make nodes true;
    cut = Hashtbl.create 7;
    messages_sent = 0;
    bytes_sent = 0;
  }

let nodes t = t.n
let engine t = t.eng

let check_node t i =
  if i < 0 || i >= t.n then invalid_arg (Printf.sprintf "Net: bad node id %d" i)

let link_key a b = if a < b then (a, b) else (b, a)

let is_up t i =
  check_node t i;
  t.up.(i)

let is_connected t a b =
  check_node t a;
  check_node t b;
  not (Hashtbl.mem t.cut (link_key a b))

let sample_latency t =
  match t.latency with
  | Fixed d -> d
  | Uniform (lo, hi) -> Rng.int_in t.rng lo hi
  | Exp_jitter { base; jitter_mean } ->
      base + int_of_float (Rng.exponential t.rng ~mean:(float_of_int jitter_mean))

let send t ?(size = 0) ~src ~dst m =
  check_node t src;
  check_node t dst;
  t.messages_sent <- t.messages_sent + 1;
  t.bytes_sent <- t.bytes_sent + size;
  if t.up.(src) && t.up.(dst) && is_connected t src dst then begin
    let delay = if src = dst then 0 else sample_latency t in
    Engine.schedule t.eng
      (Engine.now t.eng + delay)
      (fun () ->
        (* Re-check at delivery: the destination may have crashed, or the
           link may have been cut, while the message was in flight. *)
        if t.up.(dst) && is_connected t src dst then
          Sync.Mailbox.send t.inboxes.(dst) m)
  end

let broadcast t ?size ~src m =
  for dst = 0 to t.n - 1 do
    if dst <> src then send t ?size ~src ~dst m
  done

let recv t i =
  check_node t i;
  Sync.Mailbox.recv t.inboxes.(i)

let recv_timeout t i d =
  check_node t i;
  Sync.Mailbox.recv_timeout t.inboxes.(i) d

let try_recv t i =
  check_node t i;
  Sync.Mailbox.try_recv t.inboxes.(i)

let inbox_length t i =
  check_node t i;
  Sync.Mailbox.length t.inboxes.(i)

let crash t i =
  check_node t i;
  t.up.(i) <- false;
  Sync.Mailbox.clear t.inboxes.(i)

let recover t i =
  check_node t i;
  Sync.Mailbox.clear t.inboxes.(i);
  t.up.(i) <- true

let partition t a b =
  check_node t a;
  check_node t b;
  Hashtbl.replace t.cut (link_key a b) ()

let heal t a b = Hashtbl.remove t.cut (link_key a b)
let heal_all t = Hashtbl.reset t.cut
let messages_sent t = t.messages_sent
let bytes_sent t = t.bytes_sent
