type latency_model =
  | Fixed of int
  | Uniform of int * int
  | Exp_jitter of { base : int; jitter_mean : int }

type faults = { drop : float; dup : float; reorder : int }

let no_faults = { drop = 0.0; dup = 0.0; reorder = 0 }

let validate_faults f =
  if f.drop < 0.0 || f.drop >= 1.0 then invalid_arg "Net: drop must be in [0,1)";
  if f.dup < 0.0 || f.dup >= 1.0 then invalid_arg "Net: dup must be in [0,1)";
  if f.reorder < 0 then invalid_arg "Net: reorder jitter must be >= 0"

let validate_latency = function
  | Fixed d -> if d < 0 then invalid_arg "Net: Fixed latency must be >= 0"
  | Uniform (lo, hi) ->
      if lo < 0 || hi < lo then invalid_arg "Net: Uniform needs 0 <= lo <= hi"
  | Exp_jitter { base; jitter_mean } ->
      if base < 0 || jitter_mean < 0 then
        invalid_arg "Net: Exp_jitter needs non-negative base and jitter"

type 'm t = {
  eng : Engine.t;
  n : int;
  latency : latency_model;
  rng : Rng.t;
  frng : Rng.t; (* fault decisions draw from their own stream so enabling
                   faults does not perturb latency sampling *)
  inboxes : 'm Sync.Mailbox.t array;
  up : bool array;
  incarnation : int array;
  cut : (int * int, unit) Hashtbl.t; (* directed (src, dst) pairs *)
  mutable default_faults : faults;
  link_faults : (int * int, faults) Hashtbl.t; (* directed overrides *)
  link_latency : (int * int, latency_model) Hashtbl.t;
      (* directed per-link latency overrides (geo topologies); links
         without an entry use the global model *)
  mutable messages_sent : int;
  mutable bytes_sent : int;
  mutable messages_dropped : int;
  mutable messages_duplicated : int;
}

let create eng ~nodes ~latency =
  if nodes <= 0 then invalid_arg "Net.create: need at least one node";
  let rng = Rng.split (Engine.rng eng) in
  {
    eng;
    n = nodes;
    latency;
    rng;
    frng = Rng.split rng;
    inboxes = Array.init nodes (fun _ -> Sync.Mailbox.create eng);
    up = Array.make nodes true;
    incarnation = Array.make nodes 0;
    cut = Hashtbl.create 7;
    default_faults = no_faults;
    link_faults = Hashtbl.create 7;
    link_latency = Hashtbl.create 7;
    messages_sent = 0;
    bytes_sent = 0;
    messages_dropped = 0;
    messages_duplicated = 0;
  }

let nodes t = t.n
let engine t = t.eng

let check_node t i =
  if i < 0 || i >= t.n then invalid_arg (Printf.sprintf "Net: bad node id %d" i)

let is_up t i =
  check_node t i;
  t.up.(i)

let incarnation t i =
  check_node t i;
  t.incarnation.(i)

let can_send t ~src ~dst =
  check_node t src;
  check_node t dst;
  not (Hashtbl.mem t.cut (src, dst))

let is_connected t a b = can_send t ~src:a ~dst:b && can_send t ~src:b ~dst:a

let set_default_faults t f =
  validate_faults f;
  t.default_faults <- f

let set_link_faults t ~src ~dst f =
  check_node t src;
  check_node t dst;
  validate_faults f;
  Hashtbl.replace t.link_faults (src, dst) f

let clear_faults t =
  t.default_faults <- no_faults;
  Hashtbl.reset t.link_faults

let link_faults t ~src ~dst =
  match Hashtbl.find_opt t.link_faults (src, dst) with
  | Some f -> f
  | None -> t.default_faults

let set_link_latency t ~src ~dst model =
  check_node t src;
  check_node t dst;
  validate_latency model;
  Hashtbl.replace t.link_latency (src, dst) model

let link_latency_model t ~src ~dst =
  match Hashtbl.find_opt t.link_latency (src, dst) with
  | Some m -> m
  | None -> t.latency

let sample_model t model =
  match model with
  | Fixed d -> d
  | Uniform (lo, hi) -> Rng.int_in t.rng lo hi
  | Exp_jitter { base; jitter_mean } ->
      base + int_of_float (Rng.exponential t.rng ~mean:(float_of_int jitter_mean))

let sample_latency t ~src ~dst = sample_model t (link_latency_model t ~src ~dst)

(* ---- geo topologies ---- *)

(* [regions.(i)] is node [i]'s region; nodes beyond the array keep the
   global model. Every ordered pair of covered nodes gets an explicit
   per-link override, so a later profile application fully replaces an
   earlier one for those nodes. *)
let apply_regions t ~regions ~intra ~inter =
  validate_latency intra;
  validate_latency inter;
  let n = min (Array.length regions) t.n in
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      if src <> dst then
        set_link_latency t ~src ~dst
          (if regions.(src) = regions.(dst) then intra else inter)
    done
  done

type wan_profile = {
  wp_regions : int;  (** region count nodes are assigned to round-robin *)
  wp_intra : latency_model;
  wp_inter : latency_model;
}

(* Named profiles keep CLI flags and Config validation in one place.
   Numbers are one-way delays: intra-DC a few tens of microseconds,
   cross-region tens of milliseconds (continental RTT ~60-70 ms),
   metro-area ~1 ms between availability zones. *)
let wan_profile = function
  | "wan3" ->
      Some
        {
          wp_regions = 3;
          wp_intra = Exp_jitter { base = 25 * 1_000; jitter_mean = 8 * 1_000 };
          wp_inter =
            Exp_jitter { base = 30 * 1_000_000; jitter_mean = 3 * 1_000_000 };
        }
  | "metro3" ->
      Some
        {
          wp_regions = 3;
          wp_intra = Exp_jitter { base = 25 * 1_000; jitter_mean = 8 * 1_000 };
          wp_inter =
            Exp_jitter { base = 1_000_000; jitter_mean = 150 * 1_000 };
        }
  | _ -> None

let wan_profile_names = [ "wan3"; "metro3" ]

(* A message only counts as sent once it is actually put on the wire;
   sends that hit a dead endpoint, a cut link, or the loss model count in
   [messages_dropped] instead (in-flight losses count in both). *)
let send t ?(size = 0) ~src ~dst m =
  check_node t src;
  check_node t dst;
  if (not t.up.(src)) || (not t.up.(dst)) || Hashtbl.mem t.cut (src, dst) then
    t.messages_dropped <- t.messages_dropped + 1
  else begin
    let f = link_faults t ~src ~dst in
    if f.drop > 0.0 && Rng.float t.frng 1.0 < f.drop then
      t.messages_dropped <- t.messages_dropped + 1
    else begin
      let deliver_copy () =
        t.messages_sent <- t.messages_sent + 1;
        t.bytes_sent <- t.bytes_sent + size;
        let delay =
          if src = dst then 0
          else
            sample_latency t ~src ~dst
            + (if f.reorder > 0 then Rng.int t.frng (f.reorder + 1) else 0)
        in
        let inc = t.incarnation.(dst) in
        Engine.schedule t.eng
          (Engine.now t.eng + delay)
          (fun () ->
            (* Re-check at delivery: the destination may have crashed (or
               crashed and restarted: the incarnation moved on), or the
               link may have been cut, while the message was in flight. *)
            if t.up.(dst) && t.incarnation.(dst) = inc
               && not (Hashtbl.mem t.cut (src, dst))
            then Sync.Mailbox.send t.inboxes.(dst) m
            else t.messages_dropped <- t.messages_dropped + 1)
      in
      deliver_copy ();
      if f.dup > 0.0 && Rng.float t.frng 1.0 < f.dup then begin
        t.messages_duplicated <- t.messages_duplicated + 1;
        deliver_copy ()
      end
    end
  end

let broadcast t ?size ~src m =
  for dst = 0 to t.n - 1 do
    if dst <> src then send t ?size ~src ~dst m
  done

let recv t i =
  check_node t i;
  Sync.Mailbox.recv t.inboxes.(i)

let recv_timeout t i d =
  check_node t i;
  Sync.Mailbox.recv_timeout t.inboxes.(i) d

let try_recv t i =
  check_node t i;
  Sync.Mailbox.try_recv t.inboxes.(i)

let inbox_length t i =
  check_node t i;
  Sync.Mailbox.length t.inboxes.(i)

let crash t i =
  check_node t i;
  t.up.(i) <- false;
  (* In-flight messages captured the old incarnation and can never be
     delivered, even if the node recovers before their delivery event. *)
  t.incarnation.(i) <- t.incarnation.(i) + 1;
  Sync.Mailbox.clear t.inboxes.(i)

let recover t i =
  check_node t i;
  Sync.Mailbox.clear t.inboxes.(i);
  t.up.(i) <- true

let partition t a b =
  check_node t a;
  check_node t b;
  Hashtbl.replace t.cut (a, b) ();
  Hashtbl.replace t.cut (b, a) ()

let partition_oneway t ~src ~dst =
  check_node t src;
  check_node t dst;
  Hashtbl.replace t.cut (src, dst) ()

let heal t a b =
  Hashtbl.remove t.cut (a, b);
  Hashtbl.remove t.cut (b, a)

let heal_all t = Hashtbl.reset t.cut
let messages_sent t = t.messages_sent
let bytes_sent t = t.bytes_sent
let messages_dropped t = t.messages_dropped
let messages_duplicated t = t.messages_duplicated
