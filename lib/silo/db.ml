type stats = {
  commits : int;
  user_aborts : int;
  conflict_aborts : int;
  retries : int;
}

type 'a result = {
  value : 'a option;
  tid : Tid.t option;
  log : Store.Wire.write list;
  retries : int;
  reads : int;
  writes : int;
}

type t = {
  eng : Sim.Engine.t;
  cpu : Sim.Cpu.t;
  cost_model : Costs.t;
  mutable physical_deletes : bool;
  hash_tables : string list;
      (* table names created with the hash-index representation *)
  mutable table_list : Store.Table.t list; (* reverse creation order *)
  by_name : (string, Store.Table.t) Hashtbl.t;
  mutable by_id : Store.Table.t array;
  txn_pool : (int, Txn.t) Hashtbl.t;
  pending_decisions : (int, Store.Wire.decision) Hashtbl.t;
      (* per-worker decision mark of the last committed transaction;
         populated only by 2PC control transactions, so the common path
         never touches it beyond a lookup in an empty table *)
  mutable install_scratch : Txn.write_entry array;
  mutable cur_epoch : int;
  mutable ts_counter : int;
  mutable read_floor : (unit -> int) option;
      (* snapshot read-pin floor; [Some _] turns on prior-version
         retention at every install site *)
  mutable s_commits : int;
  mutable s_user_aborts : int;
  mutable s_conflict_aborts : int;
  mutable s_retries : int;
  mutable s_snap_reads : int;
  mutable s_snap_misses : int;
}

let create eng cpu ?(costs = Costs.default) ?(physical_deletes = true)
    ?(hash_tables = []) () =
  {
    eng;
    cpu;
    cost_model = costs;
    physical_deletes;
    hash_tables;
    table_list = [];
    by_name = Hashtbl.create 16;
    by_id = [||];
    txn_pool = Hashtbl.create 16;
    pending_decisions = Hashtbl.create 4;
    install_scratch = [||];
    cur_epoch = 1;
    ts_counter = 0;
    read_floor = None;
    s_commits = 0;
    s_user_aborts = 0;
    s_conflict_aborts = 0;
    s_retries = 0;
    s_snap_reads = 0;
    s_snap_misses = 0;
  }

let engine t = t.eng
let cpu t = t.cpu
let costs t = t.cost_model

let create_table t name =
  if Hashtbl.mem t.by_name name then
    invalid_arg (Printf.sprintf "Db.create_table: duplicate table %s" name);
  let id = Array.length t.by_id in
  let repr =
    if List.mem name t.hash_tables then Store.Table.Hash else Store.Table.Btree
  in
  let table = Store.Table.create ~repr ~id ~name () in
  Hashtbl.add t.by_name name table;
  t.by_id <- Array.append t.by_id [| table |];
  t.table_list <- table :: t.table_list;
  table

let set_read_floor t f = t.read_floor <- f

let table t name = Hashtbl.find t.by_name name
let table_by_id t id = t.by_id.(id)
let tables t = List.rev t.table_list
let epoch t = t.cur_epoch
let set_physical_deletes t b = t.physical_deletes <- b

let set_epoch t e =
  if e < t.cur_epoch then invalid_arg "Db.set_epoch: epoch must not decrease";
  t.cur_epoch <- e

let next_ts t =
  let now = Sim.Engine.now t.eng in
  let ts = if now > t.ts_counter then now else t.ts_counter + 1 in
  t.ts_counter <- ts;
  ts

let last_ts t = t.ts_counter

(* ---- validation ---- *)

let reads_valid (txn : Txn.t) =
  List.for_all
    (fun ((r : Store.Record.t), seen) -> r.version = seen)
    txn.reads

let absents_valid (txn : Txn.t) =
  List.for_all (fun (table, key) -> Store.Table.get_live table key = None) txn.absents

let scan_valid (s : Txn.scan_entry) =
  let rows = Store.Table.scan s.s_table ~lo:s.s_lo ~hi:s.s_hi ~limit:s.s_limit () in
  let now = List.map (fun (k, (r : Store.Record.t)) -> (k, r.version)) rows in
  now = s.s_seen

let probe_valid (p : Txn.probe_entry) =
  let now =
    Store.Table.max_live p.p_table ~lo:p.p_lo ~hi:p.p_hi
    |> Option.map (fun (k, (r : Store.Record.t)) -> (k, r.version))
  in
  now = p.p_seen

let validate txn =
  reads_valid txn && absents_valid txn
  && List.for_all scan_valid txn.Txn.scans
  && List.for_all probe_valid txn.Txn.probes

(* ---- install ---- *)

(* Bytes attributable to a record's occupied prior-version slot; mirrors
   the slot term of [Store.Record.byte_size]. *)
let slot_bytes (r : Store.Record.t) =
  if r.Store.Record.snap_ts >= 0 then
    32 + String.length r.Store.Record.snap_value
  else 0

let ws_cmp (a : Txn.write_entry) (b : Txn.write_entry) =
  let c = compare (Store.Table.id a.w_table) (Store.Table.id b.w_table) in
  if c <> 0 then c else compare a.w_key b.w_key

(* In-place sort of [arr.(0 .. n-1)] by (table, key). Keys are unique
   within a write-set, so the comparator is total and stability is moot.
   Transactional write-sets are small — insertion sort there is both
   allocation-free and fast; the [Array.sort]-over-a-copy fallback only
   triggers for the rare huge loader transactions. *)
let sort_prefix arr n =
  if n <= 32 then
    for i = 1 to n - 1 do
      let w = arr.(i) in
      let j = ref (i - 1) in
      while !j >= 0 && ws_cmp arr.(!j) w > 0 do
        arr.(!j + 1) <- arr.(!j);
        decr j
      done;
      arr.(!j + 1) <- w
    done
  else begin
    let sub = Array.sub arr 0 n in
    Array.sort ws_cmp sub;
    Array.blit sub 0 arr 0 n
  end

(* Install runs yield-free (between validation and the log hand-off), so
   one per-Db scratch array can be shared by every worker: staging the
   write-set there and sorting in place replaces the List.rev + List.sort
   cons churn of the former list pipeline. *)
let install t (txn : Txn.t) ~epoch ~ts : Store.Wire.write list =
  match txn.Txn.write_order with
  | [] -> []
  | first :: _ ->
      let n = Hashtbl.length txn.Txn.writes in
      if Array.length t.install_scratch < n then begin
        let cap = ref (max 16 (Array.length t.install_scratch)) in
        while !cap < n do
          cap := !cap * 2
        done;
        t.install_scratch <- Array.make !cap first
      end;
      let arr = t.install_scratch in
      let i = ref n in
      List.iter
        (fun w ->
          decr i;
          arr.(!i) <- w)
        txn.write_order;
      sort_prefix arr n;
      for k = 0 to n - 1 do
        let w = arr.(k) in
        let table = w.Txn.w_table in
        let key = w.Txn.w_key in
        match (Store.Table.get table key, w.Txn.w_value) with
        | Some r, value -> (
            match t.read_floor with
            | None ->
                let delta =
                  (match value with Some v -> String.length v | None -> 0)
                  - String.length r.Store.Record.value
                in
                Store.Record.install r ~epoch ~ts ~value;
                Store.Table.account_growth table delta;
                if value = None && t.physical_deletes then
                  Store.Table.remove_phys table key
            | Some floor ->
                let before = String.length r.Store.Record.value + slot_bytes r in
                Store.Record.install_retain r ~floor:(floor ()) ~epoch ~ts ~value;
                let after = String.length r.Store.Record.value + slot_bytes r in
                Store.Table.account_growth table (after - before);
                (* A retained tombstone must stay in the index: a pinned
                   reader still resolves the prior version through it. *)
                if
                  value = None && t.physical_deletes
                  && r.Store.Record.snap_ts < 0
                then Store.Table.remove_phys table key)
        | None, Some v ->
            let r = Store.Record.make ~epoch ~ts v in
            r.Store.Record.version <- 1;
            Store.Table.insert table key r
        | None, None -> () (* delete of an absent key: nothing to do *)
      done;
      let rec build k acc =
        if k < 0 then acc
        else
          let w = arr.(k) in
          build (k - 1)
            ({
               Store.Wire.table = Store.Table.id w.Txn.w_table;
               key = w.Txn.w_key;
               value = w.Txn.w_value;
             }
            :: acc)
      in
      build (n - 1) []

(* ---- the run loop ---- *)

(* Per-worker pooled transaction contexts. The pool hands a context out
   by *removing* it: a worker id shared by two concurrently-running procs
   (legal in tests) then simply falls back to a fresh [Txn.create] for the
   second taker instead of two attempts clobbering one context across the
   yield points of [Sim.Cpu.consume]. *)
let take_txn t ~worker =
  match Hashtbl.find_opt t.txn_pool worker with
  | Some txn ->
      Hashtbl.remove t.txn_pool worker;
      Txn.reset txn;
      txn
  | None -> Txn.create ~worker ~costs:t.cost_model

let release_txn t (txn : Txn.t) = Hashtbl.replace t.txn_pool txn.Txn.worker txn

let run_attempt t ~worker f =
  let txn = take_txn t ~worker in
  let finish outcome =
    release_txn t txn;
    outcome
  in
  match f txn with
  | exception Txn.Abort ->
      Sim.Cpu.consume t.cpu (Txn.exec_cost_ns txn);
      t.s_user_aborts <- t.s_user_aborts + 1;
      finish (`User_abort txn)
  | v ->
      Sim.Cpu.consume t.cpu (Txn.exec_cost_ns txn + Txn.commit_cost_ns txn);
      (* Atomic from here: no yields between validation and install. *)
      if validate txn then begin
        let epoch = t.cur_epoch in
        let ts = next_ts t in
        let log = install t txn ~epoch ~ts in
        t.s_commits <- t.s_commits + 1;
        finish (`Committed (v, { Tid.epoch; ts }, log, txn))
      end
      else begin
        t.s_conflict_aborts <- t.s_conflict_aborts + 1;
        Sim.Cpu.consume t.cpu t.cost_model.Costs.abort_ns;
        finish `Conflict
      end

(* Paper (Fig. 9) convention: a scan counts as one read operation. *)
let counts (txn : Txn.t) = (txn.Txn.nreads + txn.Txn.nscans, txn.Txn.nwrites)

let run t ~worker f =
  let rec loop retries =
    match run_attempt t ~worker f with
    | `User_abort txn ->
        let reads, writes = counts txn in
        { value = None; tid = None; log = []; retries; reads; writes }
    | `Committed (v, tid, log, txn) ->
        let reads, writes = counts txn in
        (match txn.Txn.decision with
        | None -> ()
        | Some d -> Hashtbl.replace t.pending_decisions worker d);
        { value = Some v; tid = Some tid; log; retries; reads; writes }
    | `Conflict ->
        t.s_retries <- t.s_retries + 1;
        loop (retries + 1)
  in
  loop 0

let run_once t ~worker f =
  match run_attempt t ~worker f with
  | `User_abort txn ->
      let reads, writes = counts txn in
      Some { value = None; tid = None; log = []; retries = 0; reads; writes }
  | `Committed (v, tid, log, txn) ->
      let reads, writes = counts txn in
      (match txn.Txn.decision with
      | None -> ()
      | Some d -> Hashtbl.replace t.pending_decisions worker d);
      Some { value = Some v; tid = Some tid; log; retries = 0; reads; writes }
  | `Conflict -> None

let take_decision t ~worker =
  match Hashtbl.find_opt t.pending_decisions worker with
  | None -> None
  | Some _ as d ->
      Hashtbl.remove t.pending_decisions worker;
      d

(* ---- replay ---- *)

(* Replay CAS against an existing record, with byte accounting; when the
   snapshot read floor is wired, the losing version is retained in the
   prior-version slot (and its bytes accounted) so pinned readers keep a
   consistent view under concurrent replay. *)
let cas_existing t table r ~epoch ~ts ~value =
  match t.read_floor with
  | None ->
      let old_len = String.length r.Store.Record.value in
      if Store.Record.cas_apply r ~epoch ~ts ~value then begin
        let new_len = match value with Some v -> String.length v | None -> 0 in
        Store.Table.account_growth table (new_len - old_len);
        true
      end
      else false
  | Some floor ->
      let before = String.length r.Store.Record.value + slot_bytes r in
      let applied =
        Store.Record.cas_apply_retain r ~floor:(floor ()) ~epoch ~ts ~value
      in
      (* Both outcomes can move bytes: an applied write swaps value and
         slot, a rejected ts-crossed write can still land in the slot. *)
      let after = String.length r.Store.Record.value + slot_bytes r in
      if after <> before then Store.Table.account_growth table (after - before);
      applied

(* [writes] is the precomputed [List.length txn.writes]: callers already
   need the count for their own accounting, so the hot path computes it
   exactly once. *)
let apply_replay t (txn : Store.Wire.txn_log) ~epoch ~writes ~applied =
  Sim.Cpu.consume t.cpu (Costs.replay_cost t.cost_model ~writes);
  (* Atomic: apply the whole write-set at one instant. *)
  List.iter
    (fun (w : Store.Wire.write) ->
      let table = table_by_id t w.table in
      match Store.Table.get table w.key with
      | Some r ->
          if cas_existing t table r ~epoch ~ts:txn.ts ~value:w.value then
            incr applied
      | None ->
          let r = Store.Record.make ~epoch:0 ~ts:(-1) "" in
          if Store.Record.cas_apply r ~epoch ~ts:txn.ts ~value:w.value then begin
            Store.Table.insert table w.key r;
            incr applied
          end)
    txn.writes

type replay_entry_result = {
  re_txns : int;
  re_writes : int;
  re_installed : int;
  re_seeks : int;
  re_steps : int;
}

(* Bulk replay of one durable log entry: merge every transaction's
   write-set with [ts <= upto] (per-key last-writer-wins — timestamps are
   strictly monotone across a stream's transactions, so the entry-order
   winner equals the CAS-sequence winner), sort once by (table, key), and
   sweep each table's B-tree with a cursor. One CPU charge for the whole
   entry replaces the per-transaction charges; the per-key CAS semantics
   (and therefore idempotence and crash-tolerance) are exactly those of
   [apply_replay] run transaction by transaction. *)
let apply_replay_entry t (entry : Store.Wire.entry) ?(ways = 1) ~upto () =
  if ways < 1 then invalid_arg "Db.apply_replay_entry: ways must be >= 1";
  let epoch = entry.Store.Wire.epoch in
  let txns = ref 0 and writes = ref 0 in
  let merged : (int * string, int * string option) Hashtbl.t =
    Hashtbl.create 256
  in
  List.iter
    (fun (txn : Store.Wire.txn_log) ->
      if txn.Store.Wire.ts <= upto then begin
        incr txns;
        List.iter
          (fun (w : Store.Wire.write) ->
            incr writes;
            (* Transactions appear in ts order; keys are unique within
               one write-set — plain replace implements last-writer-wins. *)
            Hashtbl.replace merged (w.table, w.key) (txn.Store.Wire.ts, w.value))
          txn.writes
      end)
    entry.Store.Wire.txns;
  let run =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) merged []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  (* Group a sorted (sub-)run by table (key order preserved within each). *)
  let rec by_table = function
    | [] -> []
    | (((tid, _), _) :: _) as rest ->
        let mine, others =
          List.partition (fun (((tid', _), _) : (int * string) * _) -> tid' = tid) rest
        in
        (tid, List.map (fun ((_, key), v) -> (key, v)) mine) :: by_table others
  in
  let seeks = ref 0 and steps = ref 0 and hash_probes = ref 0 in
  let installed = ref 0 in
  (* Predict the index work of [groups]: tree tables report cursor
     descents + in-leaf steps, hash tables one probe per key. *)
  let charge_of groups =
    let s = ref 0 and st = ref 0 and hp = ref 0 in
    List.iter
      (fun (tid, kvs) ->
        let table = table_by_id t tid in
        let counts = Store.Table.count_sorted_run table kvs in
        match Store.Table.repr table with
        | Store.Table.Hash -> hp := !hp + counts.Store.Btree.descents
        | Store.Table.Btree ->
            s := !s + counts.Store.Btree.descents;
            st := !st + counts.Store.Btree.steps)
      groups;
    seeks := !seeks + !s;
    steps := !steps + !st;
    hash_probes := !hash_probes + !hp;
    Costs.replay_bulk_cost t.cost_model ~hash_probes:!hp ~seeks:!s ~steps:!st ()
  in
  let sweep groups =
    List.iter
      (fun (tid, kvs) ->
        let table = table_by_id t tid in
        ignore
          (Store.Table.apply_sorted_run table kvs
             ~f:(fun key (ts, value) existing ->
               match existing with
               | Some r ->
                   if cas_existing t table r ~epoch ~ts ~value then
                     incr installed;
                   None (* record mutated in place; no structural change *)
               | None ->
                   let r = Store.Record.make ~epoch:0 ~ts:(-1) "" in
                   if Store.Record.cas_apply r ~epoch ~ts ~value then begin
                     Store.Table.account_growth table (Store.Record.byte_size ~key r);
                     incr installed;
                     Some r
                   end
                   else None)))
      groups
  in
  (* Count, charge, then sweep: a read-only pass predicts the index work
     and the CPU is consumed *before* the indexes are touched, so
     bulk-replayed state becomes visible at the same virtual time as the
     equivalent per-transaction consume-then-apply sequence. The
     predicted counts are also the charged/reported ones, keeping cost
     and stats consistent; they can drift from the live sweep by at most
     one charge per leaf split. *)
  let n = List.length run in
  if ways = 1 || n <= 1 then begin
    let groups = by_table run in
    Sim.Cpu.consume t.cpu (charge_of groups);
    sweep groups
  end
  else begin
    (* Parallel bulk replay: slice the globally sorted run into [w]
       contiguous pieces. Contiguity in the sorted order makes the key
       ranges disjoint, so the slices commute — each helper process
       charges and sweeps its own slice concurrently, and follower replay
       scales with the machine's cores the way leader execution does.
       Safe below the watermark for the same reason the sequential bulk
       path is: everything in [run] is already durable and conflict-free.
       Helpers register as active threads, so the CPU model's efficiency
       and oversubscription factors apply to replay exactly as they do to
       leader workers. *)
    let w = min ways n in
    let arr = Array.of_list run in
    let wg = Sim.Sync.Waitgroup.create t.eng in
    Sim.Sync.Waitgroup.add wg w;
    for i = 0 to w - 1 do
      let lo = i * n / w and hi = (i + 1) * n / w in
      let groups = by_table (Array.to_list (Array.sub arr lo (hi - lo))) in
      ignore
        (Sim.Engine.spawn t.eng ~name:(Printf.sprintf "replay-par-%d" i)
           (fun () ->
             Sim.Cpu.register t.cpu;
             Sim.Cpu.consume t.cpu (charge_of groups);
             sweep groups;
             Sim.Cpu.unregister t.cpu;
             Sim.Sync.Waitgroup.finish wg))
    done;
    Sim.Sync.Waitgroup.wait wg
  end;
  {
    re_txns = !txns;
    re_writes = !writes;
    re_installed = !installed;
    re_seeks = !seeks;
    re_steps = !steps;
  }

(* ---- snapshot reads ---- *)

exception Snapshot_miss

type snap = {
  s_pin : int;
  mutable s_reads : int;
  s_audited : bool;
  mutable s_obs : (int * string * int) list;
}

let snap_pin s = s.s_pin

let snap_get s table key =
  s.s_reads <- s.s_reads + 1;
  let v, ts =
    match Store.Table.get table key with
    | None -> (None, -1)
    | Some r -> (
        match Store.Record.read_at r ~pin:s.s_pin with
        | Store.Record.Visible (v, ts) -> (v, ts)
        | Store.Record.Miss -> raise Snapshot_miss)
  in
  if s.s_audited then s.s_obs <- (Store.Table.id table, key, ts) :: s.s_obs;
  v

let read_at t ?(audit = false) ~pin f =
  let s = { s_pin = pin; s_reads = 0; s_audited = audit; s_obs = [] } in
  (* The body is yield-free (no locks, no validation): the cost is
     consumed after it, so a pinned read never spans an install — which
     is what lets retention reclaim slots against the bare floor. *)
  let charge () =
    Sim.Cpu.consume t.cpu
      (t.cost_model.Costs.txn_begin_ns
      + (s.s_reads * t.cost_model.Costs.snapshot_read_ns))
  in
  match f s with
  | v ->
      t.s_snap_reads <- t.s_snap_reads + 1;
      charge ();
      (v, s.s_obs)
  | exception Snapshot_miss ->
      t.s_snap_misses <- t.s_snap_misses + 1;
      charge ();
      raise Snapshot_miss

let snapshot_reads t = t.s_snap_reads
let snapshot_misses t = t.s_snap_misses

let stats t =
  {
    commits = t.s_commits;
    user_aborts = t.s_user_aborts;
    conflict_aborts = t.s_conflict_aborts;
    retries = t.s_retries;
  }

let reset_stats t =
  t.s_commits <- 0;
  t.s_user_aborts <- 0;
  t.s_conflict_aborts <- 0;
  t.s_retries <- 0

let total_bytes t =
  List.fold_left (fun acc table -> acc + Store.Table.bytes table) 0 t.table_list
