exception Abort

type write_entry = {
  w_table : Store.Table.t;
  w_key : string;
  mutable w_value : string option;
}

type scan_entry = {
  s_table : Store.Table.t;
  s_lo : string;
  s_hi : string;
  s_limit : int;
  s_seen : (string * int) list;
}

type probe_entry = {
  p_table : Store.Table.t;
  p_lo : string;
  p_hi : string;
  p_seen : (string * int) option; (* max-live (key, version), if any *)
}

type t = {
  worker : int;
  costs : Costs.t;
  mutable reads : (Store.Record.t * int) list;
  read_keys : (int * string, unit) Hashtbl.t;
  mutable absents : (Store.Table.t * string) list;
  mutable scans : scan_entry list;
  mutable probes : probe_entry list;
  writes : (int * string, write_entry) Hashtbl.t;
  mutable write_order : write_entry list;
  mutable nreads : int;
  mutable nhash_reads : int;
  mutable nwrites : int;
  mutable nscans : int;
  mutable nscan_rows : int;
  mutable nvalue_bytes : int;
  mutable decision : Store.Wire.decision option;
}

let create ~worker ~costs =
  {
    worker;
    costs;
    reads = [];
    read_keys = Hashtbl.create 16;
    absents = [];
    scans = [];
    probes = [];
    writes = Hashtbl.create 8;
    write_order = [];
    nreads = 0;
    nhash_reads = 0;
    nwrites = 0;
    nscans = 0;
    nscan_rows = 0;
    nvalue_bytes = 0;
    decision = None;
  }

(* Return a transaction context to its just-created state so a worker can
   reuse it across attempts. [Hashtbl.clear] (not [reset]) keeps the grown
   bucket arrays, so a warmed-up context executes without allocating its
   bookkeeping structures again. *)
let reset t =
  t.reads <- [];
  Hashtbl.clear t.read_keys;
  t.absents <- [];
  t.scans <- [];
  t.probes <- [];
  Hashtbl.clear t.writes;
  t.write_order <- [];
  t.nreads <- 0;
  t.nhash_reads <- 0;
  t.nwrites <- 0;
  t.nscans <- 0;
  t.nscan_rows <- 0;
  t.nvalue_bytes <- 0;
  t.decision <- None

let track_read t table key (r : Store.Record.t option) =
  let id = (Store.Table.id table, key) in
  if not (Hashtbl.mem t.read_keys id) then begin
    Hashtbl.add t.read_keys id ();
    match r with
    | Some rec_ -> t.reads <- (rec_, rec_.Store.Record.version) :: t.reads
    | None -> t.absents <- (table, key) :: t.absents
  end

let note_bytes t = function
  | Some v -> t.nvalue_bytes <- t.nvalue_bytes + String.length v
  | None -> ()

let get t table key =
  t.nreads <- t.nreads + 1;
  if Store.Table.repr table = Store.Table.Hash then
    t.nhash_reads <- t.nhash_reads + 1;
  match Hashtbl.find_opt t.writes (Store.Table.id table, key) with
  | Some w ->
      note_bytes t w.w_value;
      w.w_value (* read-own-write; None if we deleted it *)
  | None -> (
      match Store.Table.get table key with
      | Some r ->
          track_read t table key (Some r);
          if r.Store.Record.deleted then None
          else begin
            note_bytes t (Some r.Store.Record.value);
            Some r.Store.Record.value
          end
      | None ->
          track_read t table key None;
          None)

let buffer_write t table key value =
  t.nwrites <- t.nwrites + 1;
  note_bytes t value;
  let id = (Store.Table.id table, key) in
  match Hashtbl.find_opt t.writes id with
  | Some w -> w.w_value <- value
  | None ->
      let w = { w_table = table; w_key = key; w_value = value } in
      Hashtbl.add t.writes id w;
      t.write_order <- w :: t.write_order

let put t table key value = buffer_write t table key (Some value)
let delete t table key = buffer_write t table key None

let scan t table ~lo ~hi ?(limit = max_int) () =
  t.nscans <- t.nscans + 1;
  let rows = Store.Table.scan table ~lo ~hi ~limit () in
  t.nscan_rows <- t.nscan_rows + List.length rows;
  List.iter
    (fun (_, (r : Store.Record.t)) ->
      t.nvalue_bytes <- t.nvalue_bytes + String.length r.value)
    rows;
  let seen = List.map (fun (k, (r : Store.Record.t)) -> (k, r.version)) rows in
  t.scans <- { s_table = table; s_lo = lo; s_hi = hi; s_limit = limit; s_seen = seen } :: t.scans;
  List.map (fun (k, (r : Store.Record.t)) -> (k, r.value)) rows

let first_live t table ~lo ~hi =
  match scan t table ~lo ~hi ~limit:1 () with [] -> None | kv :: _ -> Some kv

let last_live t table ~lo ~hi =
  t.nreads <- t.nreads + 1;
  let found = Store.Table.max_live table ~lo ~hi in
  let seen = Option.map (fun (k, (r : Store.Record.t)) -> (k, r.version)) found in
  t.probes <- { p_table = table; p_lo = lo; p_hi = hi; p_seen = seen } :: t.probes;
  Option.map (fun (k, (r : Store.Record.t)) -> (k, r.value)) found

let abort () = raise Abort
let set_decision t d = t.decision <- Some d

let exec_cost_ns t =
  Costs.exec_cost t.costs ~hash_reads:t.nhash_reads ~reads:t.nreads
    ~writes:t.nwrites ~scan_rows:t.nscan_rows ~scans:t.nscans
    ~value_bytes:t.nvalue_bytes ()

let commit_cost_ns t =
  (* Validation revisits the scan rows, so they count as reads here. *)
  Costs.commit_cost t.costs
    ~reads:(List.length t.reads + List.length t.absents + t.nscan_rows)
    ~writes:(Hashtbl.length t.writes)

let write_count t = Hashtbl.length t.writes
