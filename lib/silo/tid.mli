(** Transaction identifiers: [(epoch, timestamp)] pairs.

    The timestamp plays the role of the paper's [rdtscp] value — a
    monotone counter shared by all cores of a machine — and the epoch is
    the replication layer's leader-election round. Together they totally
    order transactions across failovers (§3.3): a larger epoch always
    wins; within an epoch, the timestamp is the serialization order. *)

type t = { epoch : int; ts : int }

val compare : t -> t -> int
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val pp : Format.formatter -> t -> unit
val zero : t
