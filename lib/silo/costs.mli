(** Virtual-time cost model for database operations.

    Every operation the engine performs charges virtual nanoseconds to the
    machine's {!Sim.Cpu}. The defaults are calibrated so that a Silo-only
    run reproduces the paper's absolute scale — roughly 1.5M TPC-C TPS and
    ~13M YCSB++ TPS at 32 threads — and, more importantly, the relative
    shapes of every figure (see the calibration notes in the
    implementation). *)

type t = {
  txn_begin_ns : int;  (** starting a transaction + client-side generation *)
  read_ns : int;  (** one point read: index descent + record fetch *)
  write_ns : int;  (** buffering one write during execution *)
  scan_base_ns : int;  (** fixed cost of positioning a range scan *)
  scan_row_ns : int;  (** per row visited by a scan *)
  commit_base_ns : int;  (** fixed commit-protocol overhead *)
  lock_ns : int;  (** per write-set key: lock + install bookkeeping *)
  validate_ns : int;  (** per read-set key at validation *)
  abort_ns : int;  (** cleanup + backoff after an abort *)
  value_byte_ns : float;  (** touching one byte of row data *)
  serialize_byte_ns : float;
      (** building the transaction's log entry (the paper's
          "+Serialization" factor, Fig. 18) *)
  replicate_byte_ns : float;
      (** copying the entry into the Paxos stream + consensus CPU (the
          "+Replication" factor) *)
  replay_write_ns : int;
      (** per key applied during follower replay (a compare-and-swap
          wrapped as a small transaction, §5) — the per-transaction path *)
  replay_seek_ns : int;
      (** bulk replay: positioning the B-tree cursor with a fresh
          root-to-leaf descent (plus the key's CAS + install) *)
  replay_next_ns : int;
      (** bulk replay: applying the next key of a sorted run inside the
          already-positioned leaf (plus its CAS + install) *)
  hash_read_ns : int;
      (** one point read against a hash-indexed table: a bucket probe
          instead of a root-to-leaf descent *)
  hash_write_ns : int;
      (** bulk replay against a hash-indexed table: probe + CAS + install
          for one key — no run locality to amortize *)
  snapshot_read_ns : int;
      (** one point read inside a watermark-pinned snapshot transaction:
          index descent + stamped-visibility check, no lock, no
          validation *)
}

val default : t
(** The calibrated defaults used by all experiments. *)

val scale : float -> t -> t
(** Multiply every cost by a factor. Long-timeline experiments (e.g. the
    30-second failover run) scale costs up so the simulated database does
    not outgrow host memory; timing-structure results are unaffected. *)

val exec_cost :
  t ->
  ?hash_reads:int ->
  reads:int ->
  writes:int ->
  scan_rows:int ->
  scans:int ->
  value_bytes:int ->
  unit ->
  int
(** Execution-phase cost of a transaction with the given access counts.
    [hash_reads] (default 0) is the subset of [reads] that hit
    hash-indexed tables; those are charged [hash_read_ns] instead of
    [read_ns]. *)

val commit_cost : t -> reads:int -> writes:int -> int
(** Commit-phase (lock + validate + install) cost. *)

val serialize_cost : t -> bytes:int -> int
val replicate_cost : t -> bytes:int -> int
val replay_cost : t -> writes:int -> int
(** Per-transaction replay: [writes * replay_write_ns]. *)

val replay_bulk_cost : t -> ?hash_probes:int -> seeks:int -> steps:int -> unit -> int
(** Sorted bulk replay of one log entry:
    [seeks * replay_seek_ns + steps * replay_next_ns +
    hash_probes * hash_write_ns], where [seeks]/[steps] come from
    {!Store.Btree.apply_sorted} over tree tables and [hash_probes]
    (default 0) counts keys applied to hash-indexed tables. *)
