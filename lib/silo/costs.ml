type t = {
  txn_begin_ns : int;
  read_ns : int;
  write_ns : int;
  scan_base_ns : int;
  scan_row_ns : int;
  commit_base_ns : int;
  lock_ns : int;
  validate_ns : int;
  abort_ns : int;
  value_byte_ns : float;
  serialize_byte_ns : float;
  replicate_byte_ns : float;
  replay_write_ns : int;
  replay_seek_ns : int;
  replay_next_ns : int;
  hash_read_ns : int;
  hash_write_ns : int;
  snapshot_read_ns : int;
}

(* Calibration notes. Targets are the paper's absolute scales at 32
   threads: Silo ~1.5M TPC-C TPS and ~13M YCSB++ TPS; Rolis retains
   ~69% / ~77% of those. TPC-C transactions average ~40 accesses of
   ~200-byte rows; YCSB++ transactions are 4 small accesses. The
   replication overheads are byte-proportional, split so the factor
   analysis (Fig. 18) reproduces: serialization ~9%, replication ~18% of
   a TPC-C transaction whose log entry is ~875 bytes. Per-transaction
   replay costs 380 ns per written key, making replay ~1.5x faster than
   execution on TPC-C (Fig. 15) — that knob is untouched by the bulk
   path, so Fig. 15's ratio reproduces from the same seeds. The bulk
   knobs split the same work into a fresh cursor positioning
   (index descent + CAS + install, 240 ns) and an in-leaf continuation
   (cheap key step + CAS + install, 120 ns): even an all-seeks batch
   replays >= 1.5x faster per write than the per-transaction path, and
   TPC-C's warehouse-clustered runs (order-line inserts are consecutive
   keys) push most writes onto the 120 ns step. *)
let default =
  {
    txn_begin_ns = 250;
    read_ns = 150;
    write_ns = 90;
    scan_base_ns = 300;
    scan_row_ns = 90;
    commit_base_ns = 150;
    lock_ns = 60;
    validate_ns = 45;
    abort_ns = 3_000;
    value_byte_ns = 0.5;
    serialize_byte_ns = 1.1;
    replicate_byte_ns = 2.2;
    replay_write_ns = 380;
    replay_seek_ns = 240;
    replay_next_ns = 120;
    (* Hash-index probes skip the root-to-leaf descent: a point read is a
       single bucket probe (~90 ns vs the tree's 150 ns descent+fetch),
       and a replay install (probe + CAS + install) lands between the
       tree's positioned-leaf step and a fresh descent. The gap is what
       the hash-vs-btree YCSB-C experiment measures. *)
    hash_read_ns = 90;
    hash_write_ns = 180;
    (* A snapshot read takes no locks and skips validation, but pays the
       index descent plus a stamped-visibility check against the pin
       (and, on a concurrent overwrite, the prior-slot fallback): a
       little over a plain read, far below read + validate. *)
    snapshot_read_ns = 160;
  }

let scale k t =
  let f x = int_of_float (float_of_int x *. k) in
  {
    txn_begin_ns = f t.txn_begin_ns;
    read_ns = f t.read_ns;
    write_ns = f t.write_ns;
    scan_base_ns = f t.scan_base_ns;
    scan_row_ns = f t.scan_row_ns;
    commit_base_ns = f t.commit_base_ns;
    lock_ns = f t.lock_ns;
    validate_ns = f t.validate_ns;
    abort_ns = f t.abort_ns;
    value_byte_ns = t.value_byte_ns *. k;
    serialize_byte_ns = t.serialize_byte_ns *. k;
    replicate_byte_ns = t.replicate_byte_ns *. k;
    replay_write_ns = f t.replay_write_ns;
    replay_seek_ns = f t.replay_seek_ns;
    replay_next_ns = f t.replay_next_ns;
    hash_read_ns = f t.hash_read_ns;
    hash_write_ns = f t.hash_write_ns;
    snapshot_read_ns = f t.snapshot_read_ns;
  }

let exec_cost t ?(hash_reads = 0) ~reads ~writes ~scan_rows ~scans ~value_bytes
    () =
  t.txn_begin_ns
  + ((reads - hash_reads) * t.read_ns)
  + (hash_reads * t.hash_read_ns)
  + (writes * t.write_ns)
  + (scans * t.scan_base_ns)
  + (scan_rows * t.scan_row_ns)
  + int_of_float (float_of_int value_bytes *. t.value_byte_ns)

let commit_cost t ~reads ~writes =
  t.commit_base_ns + (writes * t.lock_ns) + (reads * t.validate_ns)

let serialize_cost t ~bytes = int_of_float (float_of_int bytes *. t.serialize_byte_ns)
let replicate_cost t ~bytes = int_of_float (float_of_int bytes *. t.replicate_byte_ns)
let replay_cost t ~writes = writes * t.replay_write_ns

let replay_bulk_cost t ?(hash_probes = 0) ~seeks ~steps () =
  (seeks * t.replay_seek_ns) + (steps * t.replay_next_ns)
  + (hash_probes * t.hash_write_ns)
