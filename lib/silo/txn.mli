(** Transaction execution context (read-set, write-set, scan-set).

    A transaction body runs instantaneously in virtual time; its
    accumulated cost is charged by {!Db.run} just before the atomic
    validate-and-install step. Reads record the version of every record
    they observe; scans record the exact [(key, version)] sequence they
    produced and are re-executed at validation (full phantom protection —
    the moral equivalent of Masstree's node-version validation in Silo).

    Writes are buffered: reads observe the transaction's own writes, and
    nothing touches the shared store until commit. One known, documented
    divergence from a real engine: {e scans} do not merge the
    transaction's own uncommitted writes into their results; no workload
    in this repository scans a range it has written in the same
    transaction.

    The record fields are exposed for the engine ({!Db}); treat this
    module's type as engine-internal. *)

exception Abort
(** Raised by a transaction body to request a user abort (e.g. the 1%% of
    TPC-C NewOrder transactions that roll back). *)

type write_entry = {
  w_table : Store.Table.t;
  w_key : string;
  mutable w_value : string option;  (** [None] = delete *)
}

type scan_entry = {
  s_table : Store.Table.t;
  s_lo : string;
  s_hi : string;
  s_limit : int;
  s_seen : (string * int) list;  (** (key, record version) observed *)
}

type probe_entry = {
  p_table : Store.Table.t;
  p_lo : string;
  p_hi : string;
  p_seen : (string * int) option;
}

type t = {
  worker : int;
  costs : Costs.t;
  mutable reads : (Store.Record.t * int) list;  (** record, version seen *)
  read_keys : (int * string, unit) Hashtbl.t;
  mutable absents : (Store.Table.t * string) list;
  mutable scans : scan_entry list;
  mutable probes : probe_entry list;
  writes : (int * string, write_entry) Hashtbl.t;
  mutable write_order : write_entry list;  (** reverse execution order *)
  mutable nreads : int;
  mutable nhash_reads : int;
      (** subset of [nreads] that hit hash-indexed tables (charged at
          [Costs.hash_read_ns]) *)
  mutable nwrites : int;
  mutable nscans : int;
  mutable nscan_rows : int;
  mutable nvalue_bytes : int;
  mutable decision : Store.Wire.decision option;
      (** cross-shard 2PC mark to stamp on this transaction's replicated
          log record; cleared by {!reset} like the rest of the context *)
}

val create : worker:int -> costs:Costs.t -> t

val reset : t -> unit
(** Restore the just-created state while keeping the (grown) hash-table
    buckets, so pooled contexts run allocation-light. Only {!Db} calls
    this — a context must never be reset while an attempt still reads
    it. *)

val get : t -> Store.Table.t -> string -> string option
(** Point read; observes the transaction's own writes first. *)

val put : t -> Store.Table.t -> string -> string -> unit
val delete : t -> Store.Table.t -> string -> unit

val scan : t -> Store.Table.t -> lo:string -> hi:string -> ?limit:int -> unit -> (string * string) list
(** Live records in [[lo, hi)], ascending, at most [limit]. *)

val first_live : t -> Store.Table.t -> lo:string -> hi:string -> (string * string) option
(** Smallest live record in range ([scan ~limit:1]). *)

val last_live : t -> Store.Table.t -> lo:string -> hi:string -> (string * string) option
(** Largest live record in [[lo, hi)] — validated by re-probe at commit,
    like a scan. *)

val abort : unit -> 'a
(** [abort ()] raises {!Abort}. *)

val set_decision : t -> Store.Wire.decision -> unit
(** Stamp a cross-shard 2PC mark on the transaction. If it commits, the
    mark rides its {!Store.Wire.txn_log} into the replicated log — making
    the prepare vote / decision durable exactly when its row effects
    are. *)

val exec_cost_ns : t -> int
(** Accumulated execution cost of the body so far. *)

val commit_cost_ns : t -> int
val write_count : t -> int
