(** The multi-core in-memory database (Silo's role in the paper).

    One [Db.t] lives on each simulated machine. Worker processes call
    {!run} with a transaction body; the engine executes it with optimistic
    concurrency control:

    + the body runs against buffered writes, recording read/scan versions;
    + the accumulated execution + commit cost is charged to the machine's
      CPU (the process yields here — this is the window in which
      conflicting transactions interleave);
    + an atomic validate-and-install step checks every read and re-runs
      every scan; on success the transaction receives a fresh [(epoch,
      ts)] TID and its write-set is installed, otherwise it retries.

    Timestamps come from {!next_ts}: the virtual clock made strictly
    monotone per machine — the simulator's stand-in for [rdtscp]
    (paper §3.2). Because install happens atomically at commit, the
    TID order {e is} the serialization order, which is exactly the
    property Rolis's replay depends on. *)

type t

type stats = {
  commits : int;
  user_aborts : int;
  conflict_aborts : int;
  retries : int;
}

type 'a result = {
  value : 'a option;  (** [None] iff the body raised {!Txn.Abort} *)
  tid : Tid.t option;  (** [None] iff user-aborted *)
  log : Store.Wire.write list;  (** committed write-set, install order *)
  retries : int;
  reads : int;
      (** point reads of the final attempt, counting each scan once
          (the paper's Fig. 9 convention) *)
  writes : int;
}

val create :
  Sim.Engine.t ->
  Sim.Cpu.t ->
  ?costs:Costs.t ->
  ?physical_deletes:bool ->
  ?hash_tables:string list ->
  unit ->
  t
(** [physical_deletes] (default true) removes deleted keys from the index
    at commit — leader behaviour. Followers keep tombstones so that
    replay's compare-and-swap has a stamp to compare against.
    [hash_tables] (default []) names tables that {!create_table} will back
    with the point-lookup hash representation instead of the B-tree; every
    replica of a database must use the same list, or replay and checkpoint
    exchange runs against mismatched index semantics. *)

val engine : t -> Sim.Engine.t
val cpu : t -> Sim.Cpu.t
val costs : t -> Costs.t

val create_table : t -> string -> Store.Table.t
(** @raise Invalid_argument if the name is taken. *)

val table : t -> string -> Store.Table.t
(** @raise Not_found for unknown names. *)

val table_by_id : t -> int -> Store.Table.t
val tables : t -> Store.Table.t list

val epoch : t -> int

val set_epoch : t -> int -> unit
(** @raise Invalid_argument if the epoch would decrease. *)

val set_physical_deletes : t -> bool -> unit
(** Flip delete behaviour — used when a follower is promoted to leader. *)

val next_ts : t -> int
(** Strictly monotone timestamp (the [rdtscp] stand-in). *)

val last_ts : t -> int

val run : t -> worker:int -> (Txn.t -> 'a) -> 'a result
(** Execute a transaction body to (execution-)commit, retrying on
    conflicts. Must be called from inside a simulation process. *)

val run_once : t -> worker:int -> (Txn.t -> 'a) -> 'a result option
(** Single attempt; [None] on a conflict abort (no retry). For baselines
    that handle retry themselves. *)

val take_decision : t -> worker:int -> Store.Wire.decision option
(** Cross-shard 2PC mark the last committed transaction on [worker]
    stamped via {!Txn.set_decision}, cleared by the take. Carried
    out-of-band rather than on {!type-result} so ordinary transactions —
    the overwhelming majority — pay nothing for the field: the common
    path is a lookup in an empty table. [None] if the last commit on
    [worker] stamped no decision (or the body aborted — an aborted body
    decided nothing durable). *)

val apply_replay :
  t -> Store.Wire.txn_log -> epoch:int -> writes:int -> applied:int ref -> unit
(** Follower-side replay of one transaction's write-set: per-key
    compare-and-swap on [(epoch, ts)] (paper §3.4, §5), charging
    {!Costs.replay_cost}. [writes] is the precomputed
    [List.length txn.writes] — callers already hold the count for their
    own accounting, so the hot path never recomputes it. Missing keys are
    created; deletes tombstone. Increments [applied] per key that
    actually won its CAS. Idempotent. *)

type replay_entry_result = {
  re_txns : int;  (** transactions with [ts <= upto] (all merged) *)
  re_writes : int;  (** their total logged writes *)
  re_installed : int;  (** keys whose CAS won (deduped per key) *)
  re_seeks : int;  (** fresh cursor descents charged *)
  re_steps : int;  (** in-leaf continuations charged *)
}

val apply_replay_entry :
  t -> Store.Wire.entry -> ?ways:int -> upto:int -> unit -> replay_entry_result
(** Bulk replay of one durable entry (the follower fast path): merges the
    write-sets of every transaction with [ts <= upto] (per-key
    last-writer-wins, which equals the per-transaction CAS outcome since
    stream timestamps are strictly monotone), sorts once by (table, key),
    and applies each table's run through a
    {!Store.Table.apply_sorted_run} sweep — one {!Costs.replay_bulk_cost}
    CPU charge for the whole entry. Observably equivalent to calling
    {!apply_replay} on each truncated transaction in order; idempotent
    for the same reason.

    [ways] (default 1) parallelizes the sweep: the globally sorted run is
    cut into [ways] contiguous — hence key-disjoint, hence commuting —
    slices, each charged and applied by its own spawned process
    registered on the machine's CPU. [ways = 1] is exactly the
    sequential path. Final state and reported counts are
    [ways]-independent; only the virtual-time shape changes.
    @raise Invalid_argument if [ways < 1]. *)

val set_read_floor : t -> (unit -> int) option -> unit
(** Wire the snapshot read-pin floor. [Some f] turns on prior-version
    retention at every install site: before a record is overwritten by a
    write stamped [ts], the outgoing version is kept in its bounded slot
    iff [f () < ts] (some live or future read pinned at or above the
    floor may still need it), otherwise the slot is reclaimed. [f] must
    be monotone (a watermark); [None] (the default) keeps every install
    path byte-identical to the pre-snapshot behaviour. *)

exception Snapshot_miss
(** A pinned read needed a version already reclaimed past its pin (the
    key was overwritten twice above the pin). Retry at a fresher pin. *)

type snap
(** A watermark-pinned read-only transaction context. *)

val snap_pin : snap -> int
val snap_get : snap -> Store.Table.t -> string -> string option
(** Point read at the snapshot's pin: no lock, no read-set, no
    validation. [None] = key absent (or deleted) at the pin.
    @raise Snapshot_miss if the pinned version was reclaimed. *)

val read_at :
  t ->
  ?audit:bool ->
  pin:int ->
  (snap -> 'a) ->
  'a * (int * string * int) list
(** Run a read-only body against the snapshot at watermark [pin],
    charging [txn_begin_ns + reads * snapshot_read_ns] to the CPU. The
    body must not yield. With [audit] (default false) the second
    component lists every read as [(table_id, key, observed_ts)]
    ([observed_ts = -1] for keys absent at the pin) for the
    {e snapshot_reads} oracle. Must be called from inside a simulation
    process.
    @raise Snapshot_miss (after charging the partial cost) on a
    reclaimed version; the caller retries at a fresher pin. *)

val snapshot_reads : t -> int
(** Completed snapshot-read transactions. *)

val snapshot_misses : t -> int
(** Snapshot reads that raised {!Snapshot_miss}. *)

val stats : t -> stats
val reset_stats : t -> unit
val total_bytes : t -> int
(** Approximate resident bytes across all tables. *)
