type t = { epoch : int; ts : int }

let compare a b =
  let c = Stdlib.compare a.epoch b.epoch in
  if c <> 0 then c else Stdlib.compare a.ts b.ts

let ( < ) a b = compare a b < 0
let ( <= ) a b = compare a b <= 0
let pp fmt t = Format.fprintf fmt "<%d,%d>" t.epoch t.ts
let zero = { epoch = 0; ts = 0 }
