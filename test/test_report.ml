(* Tests for the report library: the JSON layer, the benchmark result
   schema, and the bench-diff regression gate. The round-trip properties
   here are what lets CI trust a committed baseline file: encode/decode
   must be lossless or the gate would drift. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let contains_substring ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let replace_substring ~sub ~by s =
  let n = String.length sub in
  let buf = Buffer.create (String.length s) in
  let rec go i =
    if i >= String.length s then ()
    else if i + n <= String.length s && String.sub s i n = sub then begin
      Buffer.add_string buf by;
      go (i + n)
    end
    else begin
      Buffer.add_char buf s.[i];
      go (i + 1)
    end
  in
  go 0;
  Buffer.contents buf

(* ---------- Json ---------- *)

(* Random JSON trees. Floats are drawn from a finite generator (NaN and
   infinities are rejected by the serializer by design); object keys
   exercise the escaper with quotes, backslashes and control bytes. *)
let json_gen =
  let open QCheck.Gen in
  let scalar =
    oneof
      [
        return Report.Json.Null;
        map (fun b -> Report.Json.Bool b) bool;
        map (fun i -> Report.Json.Int i) (int_range (-1_000_000_000) 1_000_000_000);
        map (fun f -> Report.Json.Float f) (float_bound_exclusive 1e12);
        map (fun f -> Report.Json.Float (-.f)) (float_bound_exclusive 1e-3);
        map (fun s -> Report.Json.String s) (string_size ~gen:printable (int_bound 12));
        map
          (fun s -> Report.Json.String ("\"\\\n\t " ^ s))
          (string_size ~gen:printable (int_bound 6));
      ]
  in
  let key = string_size ~gen:printable (int_bound 8) in
  fix
    (fun self depth ->
      if depth = 0 then scalar
      else
        frequency
          [
            (3, scalar);
            ( 1,
              map (fun l -> Report.Json.List l)
                (list_size (int_bound 4) (self (depth - 1))) );
            ( 1,
              map (fun l -> Report.Json.Obj l)
                (list_size (int_bound 4) (pair key (self (depth - 1)))) );
          ])
    3

let json_arb =
  QCheck.make ~print:(fun j -> Report.Json.to_string ~pretty:true j) json_gen

let json_roundtrip_qcheck =
  QCheck.Test.make ~name:"json: of_string (to_string j) = j" ~count:500 json_arb
    (fun j ->
      match Report.Json.of_string (Report.Json.to_string j) with
      | Ok j' -> j' = j
      | Error e -> QCheck.Test.fail_reportf "parse error: %s" e)

let json_pretty_roundtrip_qcheck =
  QCheck.Test.make ~name:"json: pretty printing parses back identically"
    ~count:200 json_arb (fun j ->
      match Report.Json.of_string (Report.Json.to_string ~pretty:true j) with
      | Ok j' -> j' = j
      | Error e -> QCheck.Test.fail_reportf "parse error: %s" e)

let test_json_rejects_non_finite () =
  List.iter
    (fun f ->
      match Report.Json.to_string (Report.Json.Float f) with
      | exception Invalid_argument _ -> ()
      | s -> Alcotest.failf "serialized non-finite float as %s" s)
    [ Float.nan; Float.infinity; Float.neg_infinity ]

let test_json_parse_errors () =
  List.iter
    (fun s ->
      match Report.Json.of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted invalid JSON %S" s)
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2"; "nan" ]

let test_json_accessors () =
  let j =
    Report.Json.Obj
      [
        ("n", Report.Json.Int 3);
        ("f", Report.Json.Float 2.5);
        ("s", Report.Json.String "x");
        ("l", Report.Json.List [ Report.Json.Bool true ]);
      ]
  in
  check_bool "member present" true (Report.Json.member "n" j <> None);
  check_bool "member absent" true (Report.Json.member "zz" j = None);
  check_bool "int coerces to float" true
    (Report.Json.member "n" j |> Option.get |> Report.Json.to_float = Some 3.0);
  check_bool "float does not coerce to int" true
    (Report.Json.member "f" j |> Option.get |> Report.Json.to_int = None);
  check_bool "to_list" true
    (Report.Json.member "l" j |> Option.get |> Report.Json.to_list
    = Some [ Report.Json.Bool true ])

(* ---------- Schema ---------- *)

(* A small but fully-populated report: two figures, multiple series,
   stage summaries, knobs, a non-gated figure. *)
let sample_report =
  let stages =
    [
      { Report.Schema.stage = "execute"; count = 512; p50_ms = 0.012; p95_ms = 0.030; p99_ms = 0.055 };
      { Report.Schema.stage = "replicate_durable"; count = 512; p50_ms = 1.5; p95_ms = 2.75; p99_ms = 4.0 };
    ]
  in
  Report.Schema.make_report ~mode:"quick"
    [
      {
        Report.Schema.fig = "fig10a";
        title = "Rolis vs Silo, TPC-C";
        x_label = "threads";
        gated = true;
        knobs = [ ("warehouses", "8"); ("batch", "50000") ];
        points =
          [
            {
              Report.Schema.series = "rolis";
              x = 16.0;
              metrics = [ ("tput", 1.23e6); ("p50_ms", 3.5); ("p95_ms", 9.25) ];
              stages;
            };
            {
              Report.Schema.series = "silo";
              x = 16.0;
              metrics = [ ("tput", 1.9e6) ];
              stages = [];
            };
          ];
      };
      {
        Report.Schema.fig = "micro";
        title = "wall clock";
        x_label = "n/a";
        gated = false;
        knobs = [];
        points =
          [
            {
              Report.Schema.series = "btree.find";
              x = 0.0;
              metrics = [ ("ns_per_op", 312.5) ];
              stages = [];
            };
          ];
      };
    ]

let test_schema_roundtrip () =
  match Report.Schema.of_string (Report.Schema.to_string sample_report) with
  | Error e -> Alcotest.failf "decode failed: %s" e
  | Ok r ->
      check_bool "report survives encode/decode" true (r = sample_report);
      check_string "schema version stamped" Report.Schema.schema_version r.Report.Schema.schema

let schema_metrics_qcheck =
  QCheck.Test.make ~name:"schema: arbitrary finite metrics round-trip"
    ~count:200
    QCheck.(
      list
        (pair (string_of_size (Gen.int_bound 10))
           (map (fun (m, e) -> Float.of_int m *. (10.0 ** Float.of_int e))
              (pair (int_range (-1_000_000) 1_000_000) (int_range (-9) 9)))))
    (fun metrics ->
      let r =
        Report.Schema.make_report ~mode:"full"
          [
            {
              Report.Schema.fig = "f";
              title = "t";
              x_label = "x";
              gated = true;
              knobs = [];
              points =
                [ { Report.Schema.series = "s"; x = 1.0; metrics; stages = [] } ];
            };
          ]
      in
      match Report.Schema.of_string (Report.Schema.to_string r) with
      | Ok r' -> r' = r
      | Error e -> QCheck.Test.fail_reportf "decode error: %s" e)

let test_schema_rejects_bad_version () =
  let s = Report.Schema.to_string sample_report in
  let doctored =
    replace_substring ~sub:Report.Schema.schema_version ~by:"rolis-bench/999" s
  in
  match Report.Schema.of_string doctored with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted unknown schema version"

let test_schema_rejects_garbage () =
  List.iter
    (fun s ->
      match Report.Schema.of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %S" s)
    [ "{}"; "[]"; "{\"schema\":\"rolis-bench/1\"}"; "not json at all" ]

let test_schema_lookups () =
  let r = Option.get (Report.Schema.find_result sample_report ~fig:"fig10a") in
  let p = Option.get (Report.Schema.find_point r ~series:"rolis" ~x:16.0) in
  check_bool "metric present" true (Report.Schema.metric p "tput" = Some 1.23e6);
  check_bool "metric absent" true (Report.Schema.metric p "nope" = None);
  check_bool "missing series" true
    (Report.Schema.find_point r ~series:"calvin" ~x:16.0 = None);
  check_bool "missing figure" true
    (Report.Schema.find_result sample_report ~fig:"fig99" = None)

(* ---------- Diff ---------- *)

(* Rebuild a copy of [sample_report] with one metric of one point
   rewritten — the "doctored regression" the acceptance criteria call
   for. *)
let with_metric report ~fig ~series ~metric v =
  {
    report with
    Report.Schema.results =
      List.map
        (fun (r : Report.Schema.result) ->
          if r.Report.Schema.fig <> fig then r
          else
            {
              r with
              Report.Schema.points =
                List.map
                  (fun (p : Report.Schema.point) ->
                    if p.Report.Schema.series <> series then p
                    else
                      {
                        p with
                        Report.Schema.metrics =
                          List.map
                            (fun (k, x) -> if k = metric then (k, v) else (k, x))
                            p.Report.Schema.metrics;
                      })
                  r.Report.Schema.points;
            })
        report.Report.Schema.results;
  }

let test_diff_identical_ok () =
  let o =
    Report.Diff.compare_reports ~tolerance:0.15 ~baseline:sample_report
      ~current:sample_report
  in
  check_bool "identical reports pass" true (Report.Diff.ok o);
  check_int "no regressions" 0 (List.length (Report.Diff.regressions o));
  check_int "nothing missing" 0 (List.length o.Report.Diff.missing);
  (* tput x2, p50_ms, p95_ms, tput, and the two stage p95s — but never
     the ungated micro figure. *)
  check_bool "gated metrics compared" true (o.Report.Diff.verdicts <> []);
  List.iter
    (fun (v : Report.Diff.verdict) ->
      check_bool "micro excluded from gate" true (v.Report.Diff.fig <> "micro"))
    o.Report.Diff.verdicts

let test_diff_catches_tput_drop () =
  let current =
    with_metric sample_report ~fig:"fig10a" ~series:"rolis" ~metric:"tput"
      (1.23e6 *. 0.5)
  in
  let o =
    Report.Diff.compare_reports ~tolerance:0.15 ~baseline:sample_report ~current
  in
  check_bool "halved tput fails the gate" false (Report.Diff.ok o);
  match Report.Diff.regressions o with
  | [ v ] ->
      check_string "regressed metric" "tput" v.Report.Diff.metric;
      check_bool "delta ~ +50%" true (Float.abs (v.Report.Diff.delta -. 0.5) < 1e-9)
  | vs -> Alcotest.failf "expected 1 regression, got %d" (List.length vs)

let test_diff_catches_latency_rise () =
  let current =
    with_metric sample_report ~fig:"fig10a" ~series:"rolis" ~metric:"p95_ms" 20.0
  in
  let o =
    Report.Diff.compare_reports ~tolerance:0.15 ~baseline:sample_report ~current
  in
  check_bool "latency rise fails the gate" false (Report.Diff.ok o);
  check_bool "the p95_ms verdict regressed" true
    (List.exists
       (fun (v : Report.Diff.verdict) ->
         v.Report.Diff.metric = "p95_ms" && v.Report.Diff.regressed)
       o.Report.Diff.verdicts)

let test_diff_within_tolerance_ok () =
  (* 10% worse on a 15% gate: compared, flagged in delta, not a failure. *)
  let current =
    with_metric sample_report ~fig:"fig10a" ~series:"rolis" ~metric:"tput"
      (1.23e6 *. 0.9)
  in
  let o =
    Report.Diff.compare_reports ~tolerance:0.15 ~baseline:sample_report ~current
  in
  check_bool "10% drop under 15% tolerance passes" true (Report.Diff.ok o);
  (* The same drop under a 5% gate fails: tolerance is honoured. *)
  let o5 =
    Report.Diff.compare_reports ~tolerance:0.05 ~baseline:sample_report ~current
  in
  check_bool "10% drop over 5% tolerance fails" false (Report.Diff.ok o5)

let test_diff_improvement_ok () =
  let current =
    with_metric sample_report ~fig:"fig10a" ~series:"rolis" ~metric:"tput"
      (1.23e6 *. 2.0)
  in
  let o =
    Report.Diff.compare_reports ~tolerance:0.15 ~baseline:sample_report ~current
  in
  check_bool "improvement is not a regression" true (Report.Diff.ok o)

let test_diff_missing_figure_fails () =
  let current =
    {
      sample_report with
      Report.Schema.results =
        List.filter
          (fun (r : Report.Schema.result) -> r.Report.Schema.fig <> "fig10a")
          sample_report.Report.Schema.results;
    }
  in
  let o =
    Report.Diff.compare_reports ~tolerance:0.15 ~baseline:sample_report ~current
  in
  check_bool "missing figure fails the gate" false (Report.Diff.ok o);
  check_bool "missing list names the figure" true
    (List.exists (contains_substring ~sub:"fig10a") o.Report.Diff.missing)

let test_diff_ungated_drop_ignored () =
  let current =
    with_metric sample_report ~fig:"micro" ~series:"btree.find"
      ~metric:"ns_per_op" 1.0e9
  in
  let o =
    Report.Diff.compare_reports ~tolerance:0.15 ~baseline:sample_report ~current
  in
  check_bool "wall-clock figures never gate" true (Report.Diff.ok o)

(* A delta of exactly the tolerance is not a regression (the gate is
   strict-greater): tolerance 0.15 must accept a 15.000% drop and reject
   the first representable step past it. *)
let test_diff_tolerance_boundary () =
  let drop frac =
    with_metric sample_report ~fig:"fig10a" ~series:"rolis" ~metric:"tput"
      (1.23e6 *. (1.0 -. frac))
  in
  let run current =
    Report.Diff.compare_reports ~tolerance:0.15 ~baseline:sample_report ~current
  in
  let at = run (drop 0.15) in
  check_bool "drop = tolerance passes" true (Report.Diff.ok at);
  (let v =
     List.find
       (fun (v : Report.Diff.verdict) -> v.Report.Diff.metric = "tput")
       at.Report.Diff.verdicts
   in
   check_bool "boundary delta still reported" true
     (Float.abs (v.Report.Diff.delta -. 0.15) < 1e-9));
  let past = run (drop 0.1501) in
  check_bool "a hair past tolerance fails" false (Report.Diff.ok past)

(* A single datapoint (series, x) present in the baseline but absent
   from the run is a coverage regression even when the figure itself
   survives. *)
let test_diff_missing_point_fails () =
  let current =
    {
      sample_report with
      Report.Schema.results =
        List.map
          (fun (r : Report.Schema.result) ->
            if r.Report.Schema.fig <> "fig10a" then r
            else
              {
                r with
                Report.Schema.points =
                  List.filter
                    (fun (p : Report.Schema.point) ->
                      p.Report.Schema.series <> "silo")
                    r.Report.Schema.points;
              })
          sample_report.Report.Schema.results;
    }
  in
  let o =
    Report.Diff.compare_reports ~tolerance:0.15 ~baseline:sample_report ~current
  in
  check_bool "missing datapoint fails the gate" false (Report.Diff.ok o);
  check_bool "missing list names series and x" true
    (List.exists (contains_substring ~sub:"silo@x=16") o.Report.Diff.missing);
  (* The surviving series is still compared as usual. *)
  check_bool "other points still compared" true
    (List.exists
       (fun (v : Report.Diff.verdict) -> v.Report.Diff.series = "rolis")
       o.Report.Diff.verdicts)

(* "_words" allocation counters gate downward: growth is a regression,
   shrinkage an improvement. *)
let test_diff_words_lower_better () =
  let with_words v =
    {
      sample_report with
      Report.Schema.results =
        sample_report.Report.Schema.results
        @ [
            {
              Report.Schema.fig = "alloc";
              title = "words allocated";
              x_label = "workload";
              gated = true;
              knobs = [];
              points =
                [
                  {
                    Report.Schema.series = "tpcc";
                    x = 1.0;
                    metrics = [ ("exec_words", v) ];
                    stages = [];
                  };
                ];
            };
          ];
    }
  in
  let baseline = with_words 900.0 in
  let grown =
    Report.Diff.compare_reports ~tolerance:0.15 ~baseline
      ~current:(with_words 1200.0)
  in
  check_bool "allocation growth fails the gate" false (Report.Diff.ok grown);
  (match Report.Diff.regressions grown with
  | [ v ] -> check_string "regressed metric" "exec_words" v.Report.Diff.metric
  | vs -> Alcotest.failf "expected one regression, got %d" (List.length vs));
  let shrunk =
    Report.Diff.compare_reports ~tolerance:0.15 ~baseline
      ~current:(with_words 500.0)
  in
  check_bool "allocation drop passes" true (Report.Diff.ok shrunk)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "report"
    [
      ( "json",
        [
          qc json_roundtrip_qcheck;
          qc json_pretty_roundtrip_qcheck;
          Alcotest.test_case "rejects NaN/inf" `Quick test_json_rejects_non_finite;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
        ] );
      ( "schema",
        [
          Alcotest.test_case "report round-trip" `Quick test_schema_roundtrip;
          qc schema_metrics_qcheck;
          Alcotest.test_case "rejects unknown version" `Quick
            test_schema_rejects_bad_version;
          Alcotest.test_case "rejects malformed input" `Quick
            test_schema_rejects_garbage;
          Alcotest.test_case "find_result/find_point/metric" `Quick
            test_schema_lookups;
        ] );
      ( "diff",
        [
          Alcotest.test_case "identical reports pass" `Quick test_diff_identical_ok;
          Alcotest.test_case "doctored tput drop fails" `Quick
            test_diff_catches_tput_drop;
          Alcotest.test_case "latency rise fails" `Quick
            test_diff_catches_latency_rise;
          Alcotest.test_case "tolerance honoured" `Quick
            test_diff_within_tolerance_ok;
          Alcotest.test_case "improvement passes" `Quick test_diff_improvement_ok;
          Alcotest.test_case "missing figure fails" `Quick
            test_diff_missing_figure_fails;
          Alcotest.test_case "ungated drop ignored" `Quick
            test_diff_ungated_drop_ignored;
          Alcotest.test_case "tolerance boundary exact" `Quick
            test_diff_tolerance_boundary;
          Alcotest.test_case "missing datapoint fails" `Quick
            test_diff_missing_point_fails;
          Alcotest.test_case "_words gates downward" `Quick
            test_diff_words_lower_better;
        ] );
    ]
