(* Tests for the workload generators: row codec, Zipf, YCSB++, TPC-C
   (including consistency conditions after concurrent runs and across a
   Rolis failover). *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let ms = Sim.Engine.ms
let s = Sim.Engine.s

(* ---------- Row ---------- *)

let row_roundtrip_qcheck =
  QCheck.Test.make ~name:"row pack/unpack roundtrip" ~count:300
    QCheck.(list (string_of_size Gen.(0 -- 40)))
    (fun fields -> Workload.Row.unpack (Workload.Row.pack fields) = fields)

let test_row_field_ops () =
  let row = Workload.Row.pack [ "a"; "42"; "c" ] in
  Alcotest.(check string) "field" "42" (Workload.Row.field row 1);
  check_int "to_int" 42 (Workload.Row.to_int (Workload.Row.field row 1));
  let row' = Workload.Row.set_field row 1 "43" in
  check_int "set_field" 43 (Workload.Row.to_int (Workload.Row.field row' 1));
  Alcotest.(check string) "others untouched" "c" (Workload.Row.field row' 2)

(* ---------- Zipf ---------- *)

let test_zipf_bounds_and_skew () =
  let z = Workload.Zipf.create ~n:1000 ~theta:0.99 in
  let rng = Sim.Rng.create 7L in
  let counts = Array.make 1000 0 in
  for _ = 1 to 20_000 do
    let v = Workload.Zipf.next z rng in
    check_bool "in range" true (v >= 0 && v < 1000);
    counts.(v) <- counts.(v) + 1
  done;
  (* Head keys dominate the tail under theta = 0.99. *)
  let head = counts.(0) + counts.(1) + counts.(2) in
  let tail = counts.(997) + counts.(998) + counts.(999) in
  check_bool "skewed towards head" true (head > 50 * max tail 1)

(* ---------- helpers: a standalone DB in a simulation ---------- *)

let in_sim f =
  let eng = Sim.Engine.create () in
  let cpu = Sim.Cpu.create eng ~cores:8 ~efficiency:(fun ~active:_ -> 1.0) () in
  let db = Silo.Db.create eng cpu () in
  let finished = ref false in
  let _p =
    Sim.Engine.spawn eng (fun () ->
        f eng db;
        finished := true)
  in
  Sim.Engine.run eng;
  check_bool "sim body completed" true !finished

(* ---------- YCSB ---------- *)

let test_ycsb_setup_and_run () =
  let p = { Workload.Ycsb.default with Workload.Ycsb.keys = 1_000 } in
  in_sim (fun eng db ->
      Workload.Ycsb.setup p db;
      check_int "table populated" 1_000
        (Store.Table.count (Silo.Db.table db Workload.Ycsb.table_name));
      let rng = Sim.Rng.split (Sim.Engine.rng eng) in
      for _ = 1 to 200 do
        let r = Silo.Db.run db ~worker:0 (Workload.Ycsb.txn_body p db rng) in
        check_bool "committed" true (r.Silo.Db.tid <> None);
        check_int "4 ops read" 4 r.Silo.Db.reads
      done;
      let st = Silo.Db.stats db in
      check_int "200 commits" 200 st.Silo.Db.commits)

(* ---------- TPC-C ---------- *)

let small_tpcc =
  {
    Workload.Tpcc.default with
    Workload.Tpcc.warehouses = 2;
    items = 500;
    customers_per_district = 30;
    init_orders_per_district = 30;
  }

let test_tpcc_setup_consistent () =
  in_sim (fun _eng db ->
      Workload.Tpcc.setup small_tpcc db;
      Alcotest.(check (list string))
        "fresh load is consistent" []
        (Workload.Tpcc.consistency_errors small_tpcc db))

let test_tpcc_each_kind_runs () =
  in_sim (fun eng db ->
      Workload.Tpcc.setup small_tpcc db;
      let st = Workload.Tpcc.make_state small_tpcc db in
      let rng = Sim.Rng.split (Sim.Engine.rng eng) in
      List.iter
        (fun kind ->
          (* Several instances of each kind, to hit by-name paths etc. *)
          for _ = 1 to 25 do
            let r =
              Silo.Db.run db ~worker:0
                (Workload.Tpcc.run_kind st rng ~worker:0 ~nworkers:1 kind)
            in
            match kind with
            | Workload.Tpcc.New_order ->
                (* Commits or 1% user rollback; both are fine. *)
                ()
            | _ -> check_bool (Workload.Tpcc.kind_name kind ^ " commits") true (r.Silo.Db.tid <> None)
          done)
        Workload.Tpcc.all_kinds;
      Alcotest.(check (list string))
        "consistent after every kind" []
        (Workload.Tpcc.consistency_errors small_tpcc db))

let test_tpcc_concurrent_mix_consistent () =
  in_sim (fun eng db ->
      Workload.Tpcc.setup small_tpcc db;
      let st = Workload.Tpcc.make_state small_tpcc db in
      for w = 0 to 3 do
        let rng = Sim.Rng.split (Sim.Engine.rng eng) in
        let _p =
          Sim.Engine.spawn eng (fun () ->
              for _ = 1 to 150 do
                let kind = Workload.Tpcc.pick_kind small_tpcc rng in
                ignore
                  (Silo.Db.run db ~worker:w
                     (Workload.Tpcc.run_kind st rng ~worker:w ~nworkers:4 kind))
              done)
        in
        ()
      done;
      (* Let the spawned workers finish before checking. *)
      Sim.Engine.sleep (10 * s);
      Alcotest.(check (list string))
        "consistent after concurrent mix" []
        (Workload.Tpcc.consistency_errors small_tpcc db))

let test_tpcc_skewed_contention () =
  (* FastIds off + one district-heavy mix: conflict aborts must appear. *)
  let p = { small_tpcc with Workload.Tpcc.warehouses = 1; fast_ids = false;
            mix = { new_order = 100; payment = 0; order_status = 0; stock_level = 0; delivery = 0 } } in
  in_sim (fun eng db ->
      Workload.Tpcc.setup p db;
      let st = Workload.Tpcc.make_state p db in
      for w = 0 to 7 do
        let rng = Sim.Rng.split (Sim.Engine.rng eng) in
        let _p =
          Sim.Engine.spawn eng (fun () ->
              for _ = 1 to 50 do
                ignore
                  (Silo.Db.run db ~worker:w
                     (Workload.Tpcc.run_kind st rng ~worker:w ~nworkers:8
                        Workload.Tpcc.New_order))
              done)
        in
        ()
      done;
      Sim.Engine.sleep (10 * s);
      let stats = Silo.Db.stats db in
      check_bool "district counter contention causes conflicts" true
        (stats.Silo.Db.conflict_aborts > 0);
      Alcotest.(check (list string))
        "still consistent" []
        (Workload.Tpcc.consistency_errors p db))

(* The heavyweight end-to-end check: TPC-C on a Rolis cluster, crash the
   leader, and require full TPC-C consistency on the new leader. *)
let test_tpcc_on_cluster_with_failover () =
  let cfg =
    {
      Rolis.Config.default with
      Rolis.Config.workers = 4;
      cores = 8;
      batch_size = 20;
      costs = { Silo.Costs.default with Silo.Costs.txn_begin_ns = 100_000 };
      heartbeat_interval = 50 * ms;
      election_timeout = 300 * ms;
    }
  in
  let cluster = Rolis.Cluster.create cfg (Workload.Tpcc.app small_tpcc) in
  let eng = Rolis.Cluster.engine cluster in
  Sim.Engine.schedule eng (800 * ms) (fun () -> Rolis.Cluster.crash_replica cluster 0);
  Rolis.Cluster.run cluster ~duration:(3 * s) ();
  check_bool "released transactions" true (Rolis.Cluster.released cluster > 50);
  match Rolis.Cluster.leader cluster with
  | None -> Alcotest.fail "no leader after failover"
  | Some r ->
      Alcotest.(check (list string))
        "TPC-C consistent on the new leader" []
        (Workload.Tpcc.consistency_errors small_tpcc (Rolis.Replica.db r))

let test_zipf_low_theta_near_uniform () =
  (* theta -> 0 approaches uniform: the head must not dominate. *)
  let z = Workload.Zipf.create ~n:100 ~theta:0.01 in
  let rng = Sim.Rng.create 3L in
  let counts = Array.make 100 0 in
  for _ = 1 to 50_000 do
    let v = Workload.Zipf.next z rng in
    counts.(v) <- counts.(v) + 1
  done;
  (* Every cell within 3x of the uniform expectation (500). *)
  Array.iteri
    (fun i c ->
      if c > 1_500 then Alcotest.failf "cell %d overrepresented (%d)" i c)
    counts

let test_ycsb_standard_mixes () =
  check_bool "A is skewed" true (Workload.Ycsb.workload_a.Workload.Ycsb.theta <> None);
  check_bool "B mostly reads" true (Workload.Ycsb.workload_b.Workload.Ycsb.read_ratio > 0.9);
  check_bool "C read-only" true (Workload.Ycsb.workload_c.Workload.Ycsb.read_ratio = 1.0);
  (* A skewed run produces conflict aborts that the uniform run avoids. *)
  let run p =
    let r =
      Baselines.Silo_only.run ~cores:8 ~workers:8 ~duration:(100 * ms)
        ~app:(Workload.Ycsb.app { p with Workload.Ycsb.keys = 2_000 })
        ()
    in
    r.Baselines.Silo_only.conflict_aborts
  in
  let skewed = run { Workload.Ycsb.workload_a with Workload.Ycsb.theta = Some 0.99 } in
  let uniform = run Workload.Ycsb.default in
  check_bool "skew raises conflicts" true (skewed > uniform)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "workload"
    [
      ( "row",
        [ Alcotest.test_case "field ops" `Quick test_row_field_ops; qc row_roundtrip_qcheck ]
      );
      ( "zipf",
        [
          Alcotest.test_case "bounds and skew" `Quick test_zipf_bounds_and_skew;
          Alcotest.test_case "low theta near uniform" `Quick
            test_zipf_low_theta_near_uniform;
        ] );
      ( "ycsb",
        [
          Alcotest.test_case "setup and run" `Quick test_ycsb_setup_and_run;
          Alcotest.test_case "standard mixes" `Quick test_ycsb_standard_mixes;
        ] );
      ( "tpcc",
        [
          Alcotest.test_case "fresh load consistent" `Quick test_tpcc_setup_consistent;
          Alcotest.test_case "each kind runs" `Quick test_tpcc_each_kind_runs;
          Alcotest.test_case "concurrent mix consistent" `Quick
            test_tpcc_concurrent_mix_consistent;
          Alcotest.test_case "skewed contention" `Quick test_tpcc_skewed_contention;
          Alcotest.test_case "cluster failover consistency" `Slow
            test_tpcc_on_cluster_with_failover;
        ] );
    ]
