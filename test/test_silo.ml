(* Tests for the OCC engine: conflict handling, phantom protection,
   replay CAS, and a serializability oracle. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let with_db ?(cores = 8) ?physical_deletes f =
  let eng = Sim.Engine.create () in
  let cpu = Sim.Cpu.create eng ~cores ~efficiency:(fun ~active:_ -> 1.0) () in
  let db = Silo.Db.create eng cpu ?physical_deletes () in
  f eng cpu db

let test_commit_and_read () =
  with_db (fun eng _cpu db ->
      let t = Silo.Db.create_table db "accounts" in
      let _p =
        Sim.Engine.spawn eng (fun () ->
            let r =
              Silo.Db.run db ~worker:0 (fun txn ->
                  Silo.Txn.put txn t "alice" "100";
                  Silo.Txn.put txn t "bob" "50")
            in
            check_bool "committed" true (r.Silo.Db.tid <> None);
            check_int "two writes in log" 2 (List.length r.Silo.Db.log);
            let r2 =
              Silo.Db.run db ~worker:0 (fun txn -> Silo.Txn.get txn t "alice")
            in
            check_bool "read back" true (r2.Silo.Db.value = Some (Some "100")))
      in
      Sim.Engine.run eng;
      check_int "two commits" 2 (Silo.Db.stats db).Silo.Db.commits)

let test_read_own_write () =
  with_db (fun eng _cpu db ->
      let t = Silo.Db.create_table db "t" in
      let _p =
        Sim.Engine.spawn eng (fun () ->
            let r =
              Silo.Db.run db ~worker:0 (fun txn ->
                  Silo.Txn.put txn t "k" "v1";
                  let own = Silo.Txn.get txn t "k" in
                  Silo.Txn.delete txn t "k";
                  let deleted = Silo.Txn.get txn t "k" in
                  (own, deleted))
            in
            check_bool "sees own write" true (r.Silo.Db.value = Some (Some "v1", None)))
      in
      Sim.Engine.run eng)

let test_user_abort_rolls_back () =
  with_db (fun eng _cpu db ->
      let t = Silo.Db.create_table db "t" in
      let _p =
        Sim.Engine.spawn eng (fun () ->
            let r =
              Silo.Db.run db ~worker:0 (fun txn ->
                  Silo.Txn.put txn t "k" "doomed";
                  Silo.Txn.abort ())
            in
            check_bool "no value" true (r.Silo.Db.value = None);
            check_bool "no tid" true (r.Silo.Db.tid = None);
            check_bool "nothing installed" true (Store.Table.get t "k" = None))
      in
      Sim.Engine.run eng;
      check_int "user abort counted" 1 (Silo.Db.stats db).Silo.Db.user_aborts)

(* Concurrent increments must not lose updates. *)
let test_no_lost_updates () =
  with_db (fun eng _cpu db ->
      let t = Silo.Db.create_table db "t" in
      Store.Table.insert t "ctr" (Store.Record.make "0");
      for w = 0 to 3 do
        let _p =
          Sim.Engine.spawn eng (fun () ->
              for _ = 1 to 50 do
                ignore
                  (Silo.Db.run db ~worker:w (fun txn ->
                       let v =
                         match Silo.Txn.get txn t "ctr" with
                         | Some s -> int_of_string s
                         | None -> Alcotest.fail "counter missing"
                       in
                       Silo.Txn.put txn t "ctr" (string_of_int (v + 1))))
              done)
        in
        ()
      done;
      Sim.Engine.run eng;
      (match Store.Table.get_live t "ctr" with
      | Some r -> check_int "no lost updates" 200 (int_of_string r.Store.Record.value)
      | None -> Alcotest.fail "counter vanished");
      let s = Silo.Db.stats db in
      check_int "200 commits (+1 seed ignored)" 200 s.Silo.Db.commits;
      check_bool "some conflicts retried" true (s.Silo.Db.conflict_aborts > 0))

(* A scan must abort if a row is inserted into its range before commit. *)
let test_phantom_protection () =
  with_db (fun eng _cpu db ->
      let t = Silo.Db.create_table db "t" in
      Store.Table.insert t "a1" (Store.Record.make "x");
      let retries = ref 0 in
      let scanned = ref [] in
      let _scanner =
        Sim.Engine.spawn eng (fun () ->
            let r =
              Silo.Db.run db ~worker:0 (fun txn ->
                  let rows = Silo.Txn.scan txn t ~lo:"a" ~hi:"b" () in
                  (* Pad the execution so the commit lands after the
                     conflicting insert at t=2000ns. *)
                  for _ = 1 to 100 do
                    ignore (Silo.Txn.get txn t "a1")
                  done;
                  rows)
            in
            retries := r.Silo.Db.retries;
            scanned := Option.value r.Silo.Db.value ~default:[])
      in
      let _inserter =
        Sim.Engine.spawn eng (fun () ->
            Sim.Engine.sleep 2_000;
            ignore
              (Silo.Db.run db ~worker:1 (fun txn -> Silo.Txn.put txn t "a5" "phantom")))
      in
      Sim.Engine.run eng;
      check_bool "scanner retried" true (!retries >= 1);
      check_int "retry saw the phantom" 2 (List.length !scanned))

let test_physical_vs_tombstone_delete () =
  with_db ~physical_deletes:true (fun eng _cpu db ->
      let t = Silo.Db.create_table db "t" in
      Store.Table.insert t "k" (Store.Record.make "v");
      let _p =
        Sim.Engine.spawn eng (fun () ->
            ignore (Silo.Db.run db ~worker:0 (fun txn -> Silo.Txn.delete txn t "k")))
      in
      Sim.Engine.run eng;
      check_bool "physically removed" true (Store.Table.get t "k" = None));
  with_db ~physical_deletes:false (fun eng _cpu db ->
      let t = Silo.Db.create_table db "t" in
      Store.Table.insert t "k" (Store.Record.make "v");
      let _p =
        Sim.Engine.spawn eng (fun () ->
            ignore (Silo.Db.run db ~worker:0 (fun txn -> Silo.Txn.delete txn t "k")))
      in
      Sim.Engine.run eng;
      match Store.Table.get t "k" with
      | Some r -> check_bool "tombstoned" true r.Store.Record.deleted
      | None -> Alcotest.fail "tombstone expected")

let test_next_ts_monotone () =
  with_db (fun eng _cpu db ->
      let _p =
        Sim.Engine.spawn eng (fun () ->
            let a = Silo.Db.next_ts db in
            let b = Silo.Db.next_ts db in
            check_bool "strictly increasing at same instant" true (b > a);
            Sim.Engine.sleep 1_000;
            let c = Silo.Db.next_ts db in
            check_bool "tracks the clock" true (c >= 1_000 && c > b))
      in
      Sim.Engine.run eng)

let test_replay_cas_semantics () =
  with_db ~physical_deletes:false (fun eng _cpu db ->
      let t = Silo.Db.create_table db "t" in
      let applied = ref 0 in
      let mk ts writes = { Store.Wire.ts; req = None; decision = None; writes } in
      let w key value = { Store.Wire.table = 0; key; value } in
      let ap txn ~epoch = Silo.Db.apply_replay db txn ~epoch ~writes:1 ~applied in
      let _p =
        Sim.Engine.spawn eng (fun () ->
            (* Newer-first application: the older write must lose. *)
            ap (mk 100 [ w "k" (Some "new") ]) ~epoch:1;
            ap (mk 50 [ w "k" (Some "old") ]) ~epoch:1;
            (* Re-applying is a no-op (idempotence). *)
            ap (mk 100 [ w "k" (Some "new") ]) ~epoch:1;
            (* A delete from a later epoch tombstones it. *)
            ap (mk 10 [ w "k" None ]) ~epoch:2)
      in
      Sim.Engine.run eng;
      check_int "two applies won" 2 !applied;
      match Store.Table.get t "k" with
      | Some r ->
          check_bool "tombstoned by epoch-2 delete" true r.Store.Record.deleted;
          check_int "stamped epoch" 2 r.Store.Record.epoch
      | None -> Alcotest.fail "record should exist as tombstone")

(* The bulk path merges an entry's write-sets (per-key last-writer-wins)
   and installs them through one sorted cursor sweep. Its semantics must
   be exactly those of per-txn [apply_replay]: idempotent, CAS-guarded,
   and truncatable at a timestamp. *)
let test_bulk_replay_entry () =
  with_db ~physical_deletes:false (fun eng _cpu db ->
      let t = Silo.Db.create_table db "t" in
      let mk ts writes = { Store.Wire.ts; req = None; decision = None; writes } in
      let w key value = { Store.Wire.table = 0; key; value } in
      let entry =
        Store.Wire.make_entry ~epoch:1
          [
            mk 10 [ w "k1" (Some "a"); w "k2" (Some "a") ];
            mk 20 [ w "k2" (Some "b") ];
            mk 30 [ w "k1" None ];
          ]
      in
      let _p =
        Sim.Engine.spawn eng (fun () ->
            let r = Silo.Db.apply_replay_entry db entry ~upto:max_int () in
            check_int "all txns merged" 3 r.Silo.Db.re_txns;
            check_int "all logged writes counted" 4 r.Silo.Db.re_writes;
            (* Two distinct keys survive the merge; both CAS in. *)
            check_int "deduped installs" 2 r.Silo.Db.re_installed;
            check_bool "bulk work charged" true
              (r.Silo.Db.re_seeks >= 1
              && r.Silo.Db.re_seeks + r.Silo.Db.re_steps = 2);
            (* Re-applying the same entry is a no-op: every CAS loses to
               the stamp it already installed. *)
            let r2 = Silo.Db.apply_replay_entry db entry ~upto:max_int () in
            check_int "second pass installs nothing" 0 r2.Silo.Db.re_installed)
      in
      Sim.Engine.run eng;
      (match Store.Table.get t "k1" with
      | Some r ->
          check_bool "k1 tombstoned by ts-30 delete" true r.Store.Record.deleted
      | None -> Alcotest.fail "k1 should exist as tombstone");
      match Store.Table.get t "k2" with
      | Some r ->
          check_bool "k2 kept the last writer" true
            ((not r.Store.Record.deleted) && r.Store.Record.value = "b")
      | None -> Alcotest.fail "k2 should exist")

(* An entry straddling the epoch boundary is applied twice: first
   truncated at the final watermark ([upto]), then in full once the next
   epoch's watermark covers it. The two passes must land on the same
   state as one untruncated pass. *)
let test_bulk_replay_upto_truncation () =
  let final_state apply =
    with_db ~physical_deletes:false (fun eng _cpu db ->
        let t = Silo.Db.create_table db "t" in
        let _p = Sim.Engine.spawn eng (fun () -> apply db) in
        Sim.Engine.run eng;
        List.map
          (fun (k, (r : Store.Record.t)) ->
            (k, r.Store.Record.value, r.Store.Record.deleted))
          (Store.Btree.to_list (Store.Table.tree t)))
  in
  let mk ts writes = { Store.Wire.ts; req = None; decision = None; writes } in
  let w key value = { Store.Wire.table = 0; key; value } in
  let entry =
    Store.Wire.make_entry ~epoch:1
      [
        mk 10 [ w "a" (Some "1"); w "b" (Some "1") ];
        mk 40 [ w "b" (Some "2"); w "c" (Some "2") ];
      ]
  in
  let truncated =
    final_state (fun db ->
        let r = Silo.Db.apply_replay_entry db entry ~upto:20 () in
        Alcotest.(check int) "only the pre-watermark txn" 1 r.Silo.Db.re_txns;
        Alcotest.(check int) "its writes only" 2 r.Silo.Db.re_writes)
  in
  check_bool "ts-40 writes held back" true
    (truncated = [ ("a", "1", false); ("b", "1", false) ]);
  let two_pass =
    final_state (fun db ->
        ignore (Silo.Db.apply_replay_entry db entry ~upto:20 ());
        let r = Silo.Db.apply_replay_entry db entry ~upto:max_int () in
        (* The full pass re-merges everything, but only ts-40's keys win
           their CAS; ts-10's are already installed. *)
        Alcotest.(check int) "catch-up installs the rest" 2 r.Silo.Db.re_installed)
  in
  let one_pass =
    final_state (fun db ->
        ignore (Silo.Db.apply_replay_entry db entry ~upto:max_int ()))
  in
  check_bool "truncated+catch-up = one pass" true (two_pass = one_pass);
  (* And both agree with the per-txn replay path. *)
  let per_txn =
    final_state (fun db ->
        let applied = ref 0 in
        List.iter
          (fun txn ->
            Silo.Db.apply_replay db txn ~epoch:1
              ~writes:(List.length txn.Store.Wire.writes)
              ~applied)
          entry.Store.Wire.txns)
  in
  check_bool "bulk = per-txn" true (one_pass = per_txn)

(* Intra-entry parallel replay: slicing the sorted run into [ways]
   key-disjoint pieces applied by concurrent processes must land on
   exactly the sequential sweep's state and install count, for any
   [ways] (including more ways than keys) and for both index
   representations. *)
let test_parallel_replay_ways_equivalence () =
  let mk ts writes = { Store.Wire.ts; req = None; decision = None; writes } in
  let w key value = { Store.Wire.table = 0; key; value } in
  let entry =
    (* 6 txns over 20 keys with overwrites and deletes, so the merged run
       exercises CAS losers and tombstones in every slice. *)
    Store.Wire.make_entry ~epoch:1
      (List.init 6 (fun i ->
           mk
             ((i + 1) * 10)
             (List.init 7 (fun j ->
                  let k = Printf.sprintf "k%02d" ((i * 5 + j * 3) mod 20) in
                  if (i + j) mod 5 = 4 then w k None
                  else w k (Some (Printf.sprintf "v%d.%d" i j))))))
  in
  let final_state ~hash_tables ~ways () =
    let eng = Sim.Engine.create () in
    let cpu = Sim.Cpu.create eng ~cores:8 ~efficiency:(fun ~active:_ -> 1.0) () in
    let db =
      Silo.Db.create eng cpu ~physical_deletes:false ~hash_tables ()
    in
    let t = Silo.Db.create_table db "t" in
    let installed = ref 0 in
    let _p =
      Sim.Engine.spawn eng (fun () ->
          let r = Silo.Db.apply_replay_entry db entry ~ways ~upto:max_int () in
          installed := r.Silo.Db.re_installed;
          check_int "all txns merged" 6 r.Silo.Db.re_txns)
    in
    Sim.Engine.run eng;
    let dump = ref [] in
    Store.Table.iter t (fun k (r : Store.Record.t) ->
        dump := (k, r.Store.Record.value, r.Store.Record.deleted) :: !dump);
    (!installed, List.rev !dump)
  in
  List.iter
    (fun hash_tables ->
      let seq = final_state ~hash_tables ~ways:1 () in
      check_bool "sequential installs something" true (fst seq > 0);
      List.iter
        (fun ways ->
          let par = final_state ~hash_tables ~ways () in
          check_bool
            (Printf.sprintf "ways=%d matches sequential (hash=%b)" ways
               (hash_tables <> []))
            true (par = seq))
        [ 2; 3; 7; 64 ])
    [ []; [ "t" ] ]

(* A reader that observed "key absent" must abort if the key appears
   before it commits. *)
let test_absent_read_validation () =
  with_db (fun eng _cpu db ->
      let t = Silo.Db.create_table db "t" in
      let retries = ref (-1) in
      let _reader =
        Sim.Engine.spawn eng (fun () ->
            let r =
              Silo.Db.run db ~worker:0 (fun txn ->
                  let v = Silo.Txn.get txn t "k" in
                  (* Pad so the conflicting insert lands mid-flight. *)
                  for _ = 1 to 100 do
                    ignore (Silo.Txn.get txn t "other")
                  done;
                  v)
            in
            retries := r.Silo.Db.retries;
            (* The final (retried) attempt must see the new value. *)
            check_bool "retry observes insert" true (r.Silo.Db.value = Some (Some "v")))
      in
      let _writer =
        Sim.Engine.spawn eng (fun () ->
            Sim.Engine.sleep 2_000;
            ignore (Silo.Db.run db ~worker:1 (fun txn -> Silo.Txn.put txn t "k" "v")))
      in
      Sim.Engine.run eng;
      check_bool "reader retried" true (!retries >= 1))

(* A last_live probe must be invalidated when a larger key appears. *)
let test_probe_validation () =
  with_db (fun eng _cpu db ->
      let t = Silo.Db.create_table db "t" in
      Store.Table.insert t "a1" (Store.Record.make "old");
      let seen = ref None in
      let _prober =
        Sim.Engine.spawn eng (fun () ->
            let r =
              Silo.Db.run db ~worker:0 (fun txn ->
                  let probe = Silo.Txn.last_live txn t ~lo:"a" ~hi:"b" in
                  for _ = 1 to 100 do
                    ignore (Silo.Txn.get txn t "a1")
                  done;
                  probe)
            in
            seen := Option.join r.Silo.Db.value)
      in
      let _writer =
        Sim.Engine.spawn eng (fun () ->
            Sim.Engine.sleep 2_000;
            ignore (Silo.Db.run db ~worker:1 (fun txn -> Silo.Txn.put txn t "a9" "new")))
      in
      Sim.Engine.run eng;
      check_bool "probe sees the newest key after retry" true (!seen = Some ("a9", "new")))

let test_delete_then_reinsert () =
  with_db (fun eng _cpu db ->
      let t = Silo.Db.create_table db "t" in
      Store.Table.insert t "k" (Store.Record.make "v1");
      let _p =
        Sim.Engine.spawn eng (fun () ->
            ignore (Silo.Db.run db ~worker:0 (fun txn -> Silo.Txn.delete txn t "k"));
            ignore (Silo.Db.run db ~worker:0 (fun txn -> Silo.Txn.put txn t "k" "v2"));
            let r = Silo.Db.run db ~worker:0 (fun txn -> Silo.Txn.get txn t "k") in
            check_bool "reinserted value" true (r.Silo.Db.value = Some (Some "v2")))
      in
      Sim.Engine.run eng)

(* ---- serializability oracle ----

   Random transactions of the form "read two keys, write their sum+1 to a
   third key" run on concurrent workers. Afterwards, replaying the
   committed transactions serially in TID order on a fresh store must
   produce exactly the same final state. *)

let oracle_qcheck =
  QCheck.Test.make ~name:"OCC history is equivalent to serial TID order" ~count:30
    QCheck.(pair (int_range 2 5) small_int)
    (fun (nworkers, seed) ->
      let eng = Sim.Engine.create ~seed:(Int64.of_int (seed + 1)) () in
      let cpu = Sim.Cpu.create eng ~cores:4 ~efficiency:(fun ~active:_ -> 1.0) () in
      let db = Silo.Db.create eng cpu () in
      let t = Silo.Db.create_table db "t" in
      let nkeys = 6 in
      let key i = Printf.sprintf "k%d" i in
      for i = 0 to nkeys - 1 do
        Store.Table.insert t (key i) (Store.Record.make "0")
      done;
      let committed = ref [] in
      (* (tid, a, b, c) *)
      for w = 0 to nworkers - 1 do
        let rng = Sim.Rng.split (Sim.Engine.rng eng) in
        let _p =
          Sim.Engine.spawn eng (fun () ->
              for _ = 1 to 20 do
                let a = Sim.Rng.int rng nkeys
                and b = Sim.Rng.int rng nkeys
                and c = Sim.Rng.int rng nkeys in
                let r =
                  Silo.Db.run db ~worker:w (fun txn ->
                      let va =
                        int_of_string (Option.get (Silo.Txn.get txn t (key a)))
                      in
                      let vb =
                        int_of_string (Option.get (Silo.Txn.get txn t (key b)))
                      in
                      Silo.Txn.put txn t (key c) (string_of_int (va + vb + 1)))
                in
                match r.Silo.Db.tid with
                | Some tid -> committed := (tid, a, b, c) :: !committed
                | None -> ()
              done)
        in
        ()
      done;
      Sim.Engine.run eng;
      (* Serial replay in TID order. *)
      let serial = Array.make nkeys 0 in
      let in_order =
        List.sort (fun (x, _, _, _) (y, _, _, _) -> Silo.Tid.compare x y) !committed
      in
      List.iter
        (fun (_, a, b, c) -> serial.(c) <- serial.(a) + serial.(b) + 1)
        in_order;
      let final i =
        match Store.Table.get_live t (key i) with
        | Some r -> int_of_string r.Store.Record.value
        | None -> -1
      in
      List.for_all (fun i -> final i = serial.(i)) (List.init nkeys Fun.id))

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "silo"
    [
      ( "occ",
        [
          Alcotest.test_case "commit and read" `Quick test_commit_and_read;
          Alcotest.test_case "read own write" `Quick test_read_own_write;
          Alcotest.test_case "user abort" `Quick test_user_abort_rolls_back;
          Alcotest.test_case "no lost updates" `Quick test_no_lost_updates;
          Alcotest.test_case "phantom protection" `Quick test_phantom_protection;
          Alcotest.test_case "delete modes" `Quick test_physical_vs_tombstone_delete;
          Alcotest.test_case "absent-read validation" `Quick test_absent_read_validation;
          Alcotest.test_case "probe validation" `Quick test_probe_validation;
          Alcotest.test_case "delete then reinsert" `Quick test_delete_then_reinsert;
          Alcotest.test_case "monotone timestamps" `Quick test_next_ts_monotone;
          qc oracle_qcheck;
        ] );
      ( "replay",
        [
          Alcotest.test_case "cas semantics" `Quick test_replay_cas_semantics;
          Alcotest.test_case "bulk entry apply" `Quick test_bulk_replay_entry;
          Alcotest.test_case "bulk upto truncation" `Quick
            test_bulk_replay_upto_truncation;
          Alcotest.test_case "parallel ways equivalence" `Quick
            test_parallel_replay_ways_equivalence;
        ] );
    ]
