(* Tests for the baseline systems: Silo-only, replay-only, 2PL, Calvin,
   Meerkat. Shape checks only — full curves are the bench harness's job. *)

let check_bool = Alcotest.(check bool)
let ms = Sim.Engine.ms

let small_tpcc =
  {
    Workload.Tpcc.default with
    Workload.Tpcc.warehouses = 4;
    items = 1_000;
    customers_per_district = 50;
    init_orders_per_district = 50;
  }

let test_silo_only_scales () =
  (* Scale warehouses with workers (the paper's affinity setup) so the
     scaling measurement is not confounded by contention. *)
  let run workers =
    let p = { small_tpcc with Workload.Tpcc.warehouses = workers } in
    (Baselines.Silo_only.run ~cores:16 ~workers ~duration:(200 * ms)
       ~app:(Workload.Tpcc.app p) ())
      .Baselines.Silo_only.tps
  in
  let t2 = run 2 and t8 = run 8 in
  check_bool "throughput positive" true (t2 > 0.0);
  check_bool "more workers help" true (t8 > 2.0 *. t2)

let test_silo_only_utilization () =
  let r =
    Baselines.Silo_only.run ~cores:4 ~workers:4 ~duration:(200 * ms)
      ~app:(Rolis.App.counter_app ~keys:1000) ()
  in
  check_bool "CPU saturated with workers = cores" true
    (r.Baselines.Silo_only.cpu_utilization > 0.9)

let test_replay_faster_than_execute () =
  (* The Fig. 15 claim: replay-only beats Silo's execute path because it
     touches only the write-set. *)
  let r =
    Baselines.Replay_only.run ~cores:16 ~threads:8 ~generate_duration:(300 * ms)
      ~app:(Workload.Tpcc.app small_tpcc) ()
  in
  check_bool "generated transactions" true (r.Baselines.Replay_only.replayed > 1_000);
  check_bool "replay faster than execute" true
    (r.Baselines.Replay_only.replay_tps > r.Baselines.Replay_only.silo_tps)

let test_twopl_runs () =
  let r = Baselines.Twopl.run ~partitions:2 ~clients_per_partition:32 ~duration:(200 * ms) () in
  check_bool "2PL commits" true (r.Baselines.Twopl.committed > 100);
  (* Interactive execution with many closed-loop clients: latency is in
     the milliseconds, far above a bare network round trip. *)
  check_bool "latency in ms range" true
    (r.Baselines.Twopl.p50_latency > ms && r.Baselines.Twopl.p50_latency < 200 * ms)

let test_twopl_scales_with_partitions () =
  let run partitions =
    (Baselines.Twopl.run ~partitions ~clients_per_partition:32 ~duration:(200 * ms) ())
      .Baselines.Twopl.tps
  in
  check_bool "perfect partitioning scales" true (run 8 > 3.0 *. run 2)

let test_calvin_runs_and_latency () =
  let r = Baselines.Calvin.run ~partitions:4 ~replication:true ~duration:(300 * ms) () in
  check_bool "Calvin commits" true (r.Baselines.Calvin.committed > 1_000);
  (* Epoch batching + agreement dominates latency: tens of ms. *)
  check_bool "latency tens of ms" true
    (r.Baselines.Calvin.p50_latency > 20 * ms && r.Baselines.Calvin.p50_latency < 300 * ms)

let test_calvin_sequencer_ceiling () =
  let run partitions =
    (Baselines.Calvin.run ~partitions ~duration:(250 * ms) ()).Baselines.Calvin.tps
  in
  let t4 = run 4 and t8 = run 8 and t28 = run 28 in
  check_bool "scales at small partition counts" true (t8 > 1.5 *. t4);
  (* The central sequencer flattens the curve well below linear. *)
  check_bool "central sequencer caps scaling" true (t28 < 4.0 *. t8)

let test_meerkat_runs () =
  let r = Baselines.Meerkat.run ~threads:4 ~duration:(200 * ms) () in
  check_bool "Meerkat commits" true (r.Baselines.Meerkat.committed > 1_000);
  check_bool "low abort rate (constant contention)" true
    (r.Baselines.Meerkat.aborted * 50 < r.Baselines.Meerkat.committed);
  (* DPDK-class latency: well under a millisecond. *)
  check_bool "sub-ms latency" true (r.Baselines.Meerkat.p50_latency < ms)

let test_meerkat_ycsbpp_slower_than_ycsbt () =
  let t =
    (Baselines.Meerkat.run ~threads:8 ~duration:(200 * ms) ()).Baselines.Meerkat.tps
  in
  let pp =
    (Baselines.Meerkat.run ~threads:8 ~params:Workload.Ycsb.default
       ~duration:(200 * ms) ())
      .Baselines.Meerkat.tps
  in
  check_bool "YCSB-T faster than YCSB++" true (t > 1.5 *. pp)

let () =
  Alcotest.run "baselines"
    [
      ( "silo-only",
        [
          Alcotest.test_case "scales" `Quick test_silo_only_scales;
          Alcotest.test_case "utilization" `Quick test_silo_only_utilization;
        ] );
      ( "replay-only",
        [ Alcotest.test_case "faster than execute" `Quick test_replay_faster_than_execute ]
      );
      ( "2pl",
        [
          Alcotest.test_case "runs" `Quick test_twopl_runs;
          Alcotest.test_case "scales with partitions" `Quick
            test_twopl_scales_with_partitions;
        ] );
      ( "calvin",
        [
          Alcotest.test_case "runs + latency" `Quick test_calvin_runs_and_latency;
          Alcotest.test_case "sequencer ceiling" `Quick test_calvin_sequencer_ceiling;
        ] );
      ( "meerkat",
        [
          Alcotest.test_case "runs" `Quick test_meerkat_runs;
          Alcotest.test_case "workload sensitivity" `Quick
            test_meerkat_ycsbpp_slower_than_ycsbt;
        ] );
    ]
