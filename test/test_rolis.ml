(* End-to-end tests for the Rolis core: watermark laws, release/replay
   convergence, failover safety (the paper's Fig. 3 scenario), bootstrap. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let ms = Sim.Engine.ms
let s = Sim.Engine.s

(* ---------- Watermark (pure) ---------- *)

let test_watermark_min_law () =
  let wm = Rolis.Watermark.create ~streams:3 in
  check_bool "undefined before any entries" true
    (Rolis.Watermark.compute wm ~epoch:1 = None);
  Rolis.Watermark.note_durable wm ~stream:0 ~epoch:1 ~ts:10;
  Rolis.Watermark.note_durable wm ~stream:1 ~epoch:1 ~ts:7;
  check_bool "still undefined with a silent stream" true
    (Rolis.Watermark.compute wm ~epoch:1 = None);
  Rolis.Watermark.note_durable wm ~stream:2 ~epoch:1 ~ts:30;
  check_bool "min over streams" true (Rolis.Watermark.compute wm ~epoch:1 = Some 7);
  Rolis.Watermark.note_durable wm ~stream:1 ~epoch:1 ~ts:25;
  check_bool "grows with the laggard" true
    (Rolis.Watermark.compute wm ~epoch:1 = Some 10)

let test_watermark_monotone () =
  let wm = Rolis.Watermark.create ~streams:2 in
  Rolis.Watermark.note_durable wm ~stream:0 ~epoch:1 ~ts:10;
  Rolis.Watermark.note_durable wm ~stream:1 ~epoch:1 ~ts:10;
  let w1 = Rolis.Watermark.compute wm ~epoch:1 in
  (* Stale stamps are ignored. *)
  Rolis.Watermark.note_durable wm ~stream:0 ~epoch:1 ~ts:5;
  check_bool "stale durable ignored" true (Rolis.Watermark.compute wm ~epoch:1 = w1)

let test_watermark_epoch_sealing () =
  let wm = Rolis.Watermark.create ~streams:2 in
  Rolis.Watermark.note_durable wm ~stream:0 ~epoch:1 ~ts:34;
  Rolis.Watermark.note_durable wm ~stream:1 ~epoch:1 ~ts:21;
  check_bool "not sealed yet" false (Rolis.Watermark.is_sealed wm ~epoch:1);
  check_bool "no final watermark yet" true
    (Rolis.Watermark.final_watermark wm ~epoch:1 = None);
  (* Epoch-2 no-ops seal epoch 1 on both streams. *)
  Rolis.Watermark.note_durable wm ~stream:0 ~epoch:2 ~ts:100;
  check_bool "half sealed" false (Rolis.Watermark.is_sealed wm ~epoch:1);
  Rolis.Watermark.note_durable wm ~stream:1 ~epoch:2 ~ts:101;
  check_bool "sealed" true (Rolis.Watermark.is_sealed wm ~epoch:1);
  check_bool "final = min of sealed tails" true
    (Rolis.Watermark.final_watermark wm ~epoch:1 = Some 21);
  (* The Fig. 8 example: five streams, W = min(34,27,41,21,23) = 21. *)
  let wm8 = Rolis.Watermark.create ~streams:5 in
  List.iteri
    (fun i ts -> Rolis.Watermark.note_durable wm8 ~stream:i ~epoch:1 ~ts)
    [ 34; 27; 41; 21; 23 ];
  List.iteri
    (fun i _ -> Rolis.Watermark.note_durable wm8 ~stream:i ~epoch:2 ~ts:200)
    [ (); (); (); (); () ];
  check_bool "paper Fig. 8 watermark" true
    (Rolis.Watermark.final_watermark wm8 ~epoch:1 = Some 21)

let test_watermark_skipped_epoch () =
  let wm = Rolis.Watermark.create ~streams:2 in
  Rolis.Watermark.note_durable wm ~stream:0 ~epoch:1 ~ts:10;
  Rolis.Watermark.note_durable wm ~stream:1 ~epoch:1 ~ts:20;
  (* Stream 0 has entries in epoch 2; stream 1 jumps straight to 3. *)
  Rolis.Watermark.note_durable wm ~stream:0 ~epoch:2 ~ts:30;
  Rolis.Watermark.note_durable wm ~stream:0 ~epoch:3 ~ts:40;
  Rolis.Watermark.note_durable wm ~stream:1 ~epoch:3 ~ts:50;
  check_bool "epoch 2 sealed" true (Rolis.Watermark.is_sealed wm ~epoch:2);
  (* Stream 1 never wrote in epoch 2, so only stream 0 constrains it. *)
  check_bool "final for epoch 2" true
    (Rolis.Watermark.final_watermark wm ~epoch:2 = Some 30)

(* Random durability feeds: within one epoch the computed watermark must
   be monotone over time and always equal the min of per-stream maxima. *)
let watermark_qcheck =
  QCheck.Test.make ~name:"watermark = min of stream maxima, monotone" ~count:200
    QCheck.(list (pair (int_range 0 3) (int_range 1 1000)))
    (fun feed ->
      let wm = Rolis.Watermark.create ~streams:4 in
      let maxima = Array.make 4 0 in
      let last_w = ref None in
      List.for_all
        (fun (stream, ts) ->
          Rolis.Watermark.note_durable wm ~stream ~epoch:1 ~ts;
          maxima.(stream) <- max maxima.(stream) ts;
          let expected =
            if Array.exists (fun m -> m = 0) maxima then None
            else Some (Array.fold_left min max_int maxima)
          in
          let got = Rolis.Watermark.compute wm ~epoch:1 in
          let monotone =
            match (!last_w, got) with
            | Some prev, Some cur -> cur >= prev
            | Some _, None -> false
            | None, _ -> true
          in
          last_w := got;
          got = expected && monotone)
        feed)

(* Random multi-epoch feeds, checked against an independent model:
   - sealing is permanent — once [final_watermark ~epoch] is [Some w] it
     never changes or reverts to [None];
   - an absent stream does not constrain a sealed epoch (contributes
     max_int): the final watermark equals the min over the streams that
     actually wrote in that epoch, of their accepted maxima.
   The model tracks per-stream epochs so out-of-order stale feeds (an
   epoch below the stream's current one) are ignored, like the real
   durability pipeline. *)
let watermark_sealing_qcheck =
  QCheck.Test.make ~name:"sealing permanent; absent stream contributes max_int"
    ~count:300
    QCheck.(list (triple (int_range 0 2) (int_range 1 4) (int_range 1 1000)))
    (fun feed ->
      let streams = 3 and max_epoch = 4 in
      let wm = Rolis.Watermark.create ~streams in
      let model_epoch = Array.make streams 0 in
      let maxima : (int * int, int) Hashtbl.t = Hashtbl.create 16 in
      let sealed_seen : (int, int) Hashtbl.t = Hashtbl.create 4 in
      List.for_all
        (fun (stream, epoch, ts) ->
          Rolis.Watermark.note_durable wm ~stream ~epoch ~ts;
          if epoch >= model_epoch.(stream) then begin
            model_epoch.(stream) <- epoch;
            let cur =
              match Hashtbl.find_opt maxima (stream, epoch) with
              | Some m -> m
              | None -> 0
            in
            Hashtbl.replace maxima (stream, epoch) (max cur ts)
          end;
          let ok = ref true in
          for e = 1 to max_epoch do
            match Rolis.Watermark.final_watermark wm ~epoch:e with
            | Some w ->
                let expected =
                  List.init streams Fun.id
                  |> List.filter_map (fun s -> Hashtbl.find_opt maxima (s, e))
                  |> List.fold_left min max_int
                in
                if w <> expected then ok := false;
                (match Hashtbl.find_opt sealed_seen e with
                | Some w0 -> if w <> w0 then ok := false
                | None -> Hashtbl.replace sealed_seen e w)
            | None -> if Hashtbl.mem sealed_seen e then ok := false
          done;
          !ok)
        feed)

(* The incremental min cache (cached min + count-at-min + undefined
   count) must be indistinguishable from the reference full fold,
   including across epoch switches and interleaved queries of different
   epochs. *)
let watermark_incremental_qcheck =
  QCheck.Test.make ~name:"incremental compute = reference scan" ~count:300
    QCheck.(list (triple (int_range 0 3) (int_range 1 3) (int_range 1 500)))
    (fun feed ->
      let wm = Rolis.Watermark.create ~streams:4 in
      List.for_all
        (fun (stream, epoch, ts) ->
          Rolis.Watermark.note_durable wm ~stream ~epoch ~ts;
          List.for_all
            (fun e ->
              Rolis.Watermark.compute wm ~epoch:e
              = Rolis.Watermark.compute_scan wm ~epoch:e)
            [ 1; 2; 3 ])
        feed)

(* What makes the event-driven release path affordable: repeated queries
   of a stable epoch cost O(1). A full rescan happens only when the
   unique minimum holder advances. *)
let test_watermark_scan_amortized () =
  let wm = Rolis.Watermark.create ~streams:4 in
  for s = 0 to 3 do
    Rolis.Watermark.note_durable wm ~stream:s ~epoch:1 ~ts:(s + 1)
  done;
  ignore (Rolis.Watermark.compute wm ~epoch:1);
  let scans0 = Rolis.Watermark.scan_count wm in
  (* Stream 0 stays the unique laggard: advancing the others updates the
     cache in place and never forces a rescan. *)
  for i = 1 to 100 do
    for s = 1 to 3 do
      Rolis.Watermark.note_durable wm ~stream:s ~epoch:1 ~ts:(100 + i)
    done;
    check_bool "min pinned at the laggard" true
      (Rolis.Watermark.compute wm ~epoch:1 = Some 1)
  done;
  check_int "no rescans while the min holder is unchanged" scans0
    (Rolis.Watermark.scan_count wm);
  (* Moving the laggard relocates the minimum: exactly one rescan. *)
  Rolis.Watermark.note_durable wm ~stream:0 ~epoch:1 ~ts:50;
  check_bool "watermark advanced" true
    (Rolis.Watermark.compute wm ~epoch:1 = Some 50);
  check_int "one rescan to relocate the min" (scans0 + 1)
    (Rolis.Watermark.scan_count wm)

(* ---------- cluster helpers ---------- *)

(* Slow, test-friendly cost model: ~50us per transaction keeps event
   counts small while exercising every code path. *)
let test_costs =
  { Silo.Costs.default with Silo.Costs.txn_begin_ns = 50_000; abort_ns = 5_000 }

let test_cfg ?(workers = 4) ?(batch = 50) () =
  {
    Rolis.Config.default with
    Rolis.Config.workers;
    cores = 8;
    batch_size = batch;
    costs = test_costs;
    physical_serialization = true;
    heartbeat_interval = 50 * ms;
    election_timeout = 300 * ms;
  }

(* A transfer app over [accounts] accounts, each starting with
   [initial] units; every transaction moves a random amount between two
   random accounts inside one transaction — the paper's Fig. 3 workload.
   [stopped] freezes generation (bodies become read-only no-ops). *)
let transfer_app ~accounts ~initial ~stopped =
  let key i = Store.Keycodec.encode [ Store.Keycodec.I i ] in
  {
    Rolis.App.name = "transfer";
    setup =
      (fun db ->
        let t = Silo.Db.create_table db "accounts" in
        for i = 0 to accounts - 1 do
          Store.Table.insert t (key i) (Store.Record.make (string_of_int initial))
        done);
    make_worker =
      (fun db ~rng ~worker:_ ~nworkers:_ ->
        let t = Silo.Db.table db "accounts" in
        fun () txn ->
          if not !stopped then begin
            let a = Sim.Rng.int rng accounts and b = Sim.Rng.int rng accounts in
            if a <> b then begin
              let bal k =
                match Silo.Txn.get txn t (key k) with
                | Some v -> int_of_string v
                | None -> Alcotest.failf "account %d missing" k
              in
              let va = bal a and vb = bal b in
              let amount = 1 + Sim.Rng.int rng 10 in
              Silo.Txn.put txn t (key a) (string_of_int (va - amount));
              Silo.Txn.put txn t (key b) (string_of_int (vb + amount))
            end
          end);
    client_op =
      Some
        (fun db ~payload txn ->
          let t = Silo.Db.table db "accounts" in
          match String.split_on_char ' ' payload with
          | [ a; b; amt ] ->
              let a = int_of_string a and b = int_of_string b in
              let amount = int_of_string amt in
              let bal k =
                match Silo.Txn.get txn t (key k) with
                | Some v -> int_of_string v
                | None -> Alcotest.failf "account %d missing" k
              in
              let va = bal a and vb = bal b in
              Silo.Txn.put txn t (key a) (string_of_int (va - amount));
              Silo.Txn.put txn t (key b) (string_of_int (vb + amount))
          | _ -> Alcotest.failf "bad transfer payload %S" payload);
    read_op =
      Some
        (fun db ~payload snap ->
          let t = Silo.Db.table db "accounts" in
          match Silo.Db.snap_get snap t (key (int_of_string payload)) with
          | Some v -> v
          | None -> string_of_int initial);
  }

let total_money db ~accounts =
  let t = Silo.Db.table db "accounts" in
  let sum = ref 0 in
  for i = 0 to accounts - 1 do
    match Store.Table.get_live t (Store.Keycodec.encode [ Store.Keycodec.I i ]) with
    | Some r -> sum := !sum + int_of_string r.Store.Record.value
    | None -> Alcotest.failf "account %d missing" i
  done;
  !sum

let table_state db name =
  let t = Silo.Db.table db name in
  let acc = ref [] in
  Store.Table.iter t (fun k r ->
      if not r.Store.Record.deleted then acc := (k, r.Store.Record.value) :: !acc);
  List.rev !acc

(* ---------- end-to-end ---------- *)

let test_basic_release () =
  let cfg = test_cfg () in
  let cluster = Rolis.Cluster.create cfg (Rolis.App.counter_app ~keys:100) in
  (* No warm-up here: with a reset window, releases of pre-window
     executions would make the release/execute comparison meaningless. *)
  Rolis.Cluster.run cluster ~duration:(1 * s) ();
  let released = Rolis.Cluster.released cluster in
  check_bool "transactions released" true (released > 1_000);
  (match Rolis.Cluster.leader cluster with
  | Some r -> check_int "initial leader serves" 0 (Rolis.Replica.id r)
  | None -> Alcotest.fail "no serving leader");
  let lat = Rolis.Cluster.latency cluster in
  let p50 = Sim.Metrics.Hist.quantile lat 0.5 in
  check_bool "median latency sane (>0.5ms, <100ms)" true
    (p50 > ms / 2 && p50 < 100 * ms);
  (* Released never exceeds executed. *)
  check_bool "release <= execute" true (released <= Rolis.Cluster.executed cluster)

let test_convergence_after_drain () =
  let stopped = ref false in
  let accounts = 50 in
  let cfg = test_cfg () in
  let app = transfer_app ~accounts ~initial:1_000 ~stopped in
  let cluster = Rolis.Cluster.create cfg app in
  (* The incremental backlog counter must agree with the reference fold
     at all times, not just after the drain: check mid-run under load. *)
  let check_backlog where =
    Array.iter
      (fun r ->
        check_int
          (Printf.sprintf "backlog counter = fold (%s, replica %d)" where
             (Rolis.Replica.id r))
          (Rolis.Replica.replay_backlog_scan r)
          (Rolis.Replica.replay_backlog r))
      (Rolis.Cluster.replicas cluster)
  in
  Sim.Engine.schedule (Rolis.Cluster.engine cluster) (500 * ms) (fun () ->
      check_backlog "mid-run");
  Rolis.Cluster.run cluster ~duration:(1 * s) ();
  stopped := true;
  (* Drain: heartbeat no-ops push the watermark past the last real txn;
     followers finish replay. *)
  Rolis.Cluster.run cluster ~duration:(1 * s) ();
  check_backlog "after drain";
  let leader_state = table_state (Rolis.Replica.db (Rolis.Cluster.replica cluster 0)) "accounts" in
  check_bool "some transfers happened" true
    (Rolis.Cluster.released cluster > 100);
  for i = 1 to 2 do
    let f = Rolis.Cluster.replica cluster i in
    (* Only the pipeline tail may still be queued: the freshest heartbeat
       no-op per stream, plus at most one entry whose timestamp the
       follower's (slightly lagging) watermark has not yet covered. *)
    check_bool
      (Printf.sprintf "follower %d drained to the pipeline tail" i)
      true
      (Rolis.Replica.replay_backlog f <= 2 * cfg.Rolis.Config.workers);
    check_bool
      (Printf.sprintf "follower %d state equals leader" i)
      true
      (table_state (Rolis.Replica.db f) "accounts" = leader_state)
  done;
  (* Money is conserved everywhere. *)
  Array.iter
    (fun r ->
      check_int "money conserved" (accounts * 1_000)
        (total_money (Rolis.Replica.db r) ~accounts))
    (Rolis.Cluster.replicas cluster)

let test_failover_money_conservation () =
  (* The Fig. 3 scenario: crash the leader mid-stream. The new leader must
     replay a consistent prefix — transfers are two-key transactions, so
     any torn or transitively-inconsistent replay breaks the total. *)
  let stopped = ref false in
  let accounts = 40 in
  let cfg = test_cfg () in
  let app = transfer_app ~accounts ~initial:500 ~stopped in
  let cluster = Rolis.Cluster.create cfg app in
  let eng = Rolis.Cluster.engine cluster in
  Sim.Engine.schedule eng (700 * ms) (fun () -> Rolis.Cluster.crash_replica cluster 0);
  Rolis.Cluster.run cluster ~duration:(3 * s) ();
  (* A new leader must have taken over and be serving. *)
  (match Rolis.Cluster.leader cluster with
  | Some r ->
      check_bool "new leader is a former follower" true (Rolis.Replica.id r <> 0);
      check_bool "epoch advanced" true
        (Paxos.Election.epoch (Rolis.Replica.election r) >= 2);
      check_int "money conserved on new leader" (accounts * 500)
        (total_money (Rolis.Replica.db r) ~accounts)
  | None -> Alcotest.fail "no leader after failover");
  (* And the cluster kept releasing transactions after the crash. *)
  let post_crash =
    List.filter (fun (t, rate) -> t > 1.2 && rate > 0.0) (Rolis.Cluster.release_rate cluster)
  in
  check_bool "throughput resumed after failover" true (post_crash <> [])

(* Regression for the per-txn seal-probe memo: single-transaction entries
   with a long watermark interval leave several entries per stream beyond
   the running watermark when the leader dies. After promotion seals the
   epoch, each of those entries must probe the final watermark and drain;
   memoizing a *successful* probe left every straddler after the first
   waiting on a durability event that never comes (no replica serves
   while promotion waits on replay), so replay stalled, the replay epoch
   never advanced, and the cluster stayed leaderless. *)
let test_failover_straddler_backlog () =
  let cfg =
    {
      (test_cfg ~workers:2 ~batch:1 ()) with
      Rolis.Config.watermark_interval = 100 * ms;
    }
  in
  (* Worker 1 stops committing after 300 ms: its stream's durable tail
     then only moves on heartbeat no-ops, so at the 700 ms crash the
     sealed epoch's final watermark (the min across stream tails) sits
     up to a heartbeat interval behind stream 0 — a dozen
     single-transaction entries straddle it, more than promotion's few
     post-seal durability commits can unlock one at a time. *)
  let app =
    let base = Rolis.App.counter_app ~keys:200 in
    {
      base with
      Rolis.App.make_worker =
        (fun db ~rng ~worker ~nworkers ->
          let gen = base.Rolis.App.make_worker db ~rng ~worker ~nworkers in
          fun () ->
            let body = gen () in
            fun txn ->
              if worker = 1 && Sim.Engine.time () > 300 * ms then
                Silo.Txn.abort ()
              else body txn);
    }
  in
  let cluster = Rolis.Cluster.create cfg app in
  let eng = Rolis.Cluster.engine cluster in
  Sim.Engine.schedule eng (700 * ms) (fun () ->
      Rolis.Cluster.crash_replica cluster 0);
  Rolis.Cluster.run cluster ~duration:(4 * s) ();
  (match Rolis.Cluster.leader cluster with
  | Some r ->
      check_bool "new leader is a former follower" true (Rolis.Replica.id r <> 0)
  | None -> Alcotest.fail "no leader after straddler-heavy failover");
  (* Every survivor replayed past the sealed epoch: a stalled seal probe
     pins the replay epoch at the crashed leader's epoch forever. *)
  Array.iter
    (fun r ->
      if Rolis.Replica.is_alive r then
        check_bool
          (Printf.sprintf "replica %d replay epoch advanced" (Rolis.Replica.id r))
          true
          (Rolis.Replica.replay_epoch r >= 2))
    (Rolis.Cluster.replicas cluster);
  let post_crash =
    List.filter
      (fun (t, rate) -> t > 1.5 && rate > 0.0)
      (Rolis.Cluster.release_rate cluster)
  in
  check_bool "throughput resumed after failover" true (post_crash <> [])

let test_failover_gap_then_recovery () =
  let cfg = test_cfg () in
  let cluster = Rolis.Cluster.create cfg (Rolis.App.counter_app ~keys:200) in
  let eng = Rolis.Cluster.engine cluster in
  Sim.Engine.schedule eng (1 * s) (fun () -> Rolis.Cluster.crash_replica cluster 0);
  Rolis.Cluster.run cluster ~duration:(3 * s) ();
  let series = Rolis.Cluster.release_rate cluster in
  let rate_at t0 =
    match List.assoc_opt t0 series with Some r -> r | None -> 0.0
  in
  check_bool "busy before crash" true (rate_at 0.5 > 0.0);
  (* Election timeout is 300ms in the test config: there is a visible gap
     right after the crash. *)
  check_bool "gap right after crash" true (rate_at 1.2 = 0.0);
  let resumed = List.exists (fun (t, r) -> t > 1.3 && r > 0.0) series in
  check_bool "recovered within the run" true resumed

(* Durability of released results: everything the old leader released to
   clients must survive on the new leader. Counters only grow, so the sum
   of counters on the new leader must be at least the number of releases
   counted at crash time. *)
let test_released_results_survive_crash () =
  let cfg = test_cfg () in
  let cluster = Rolis.Cluster.create cfg (Rolis.App.counter_app ~keys:100) in
  let eng = Rolis.Cluster.engine cluster in
  let released_at_crash = ref 0 in
  Sim.Engine.schedule eng (900 * ms) (fun () ->
      released_at_crash :=
        Rolis.Stats.released (Rolis.Replica.stats (Rolis.Cluster.replica cluster 0));
      Rolis.Cluster.crash_replica cluster 0);
  Rolis.Cluster.run cluster ~duration:(3 * s) ();
  match Rolis.Cluster.leader cluster with
  | None -> Alcotest.fail "no leader after crash"
  | Some r ->
      let t = Silo.Db.table (Rolis.Replica.db r) "counters" in
      let sum = ref 0 in
      Store.Table.iter t (fun _ rec_ ->
          if not rec_.Store.Record.deleted then
            sum := !sum + int_of_string rec_.Store.Record.value);
      check_bool "released increments survived" true (!sum >= !released_at_crash);
      check_bool "sanity: something was released" true (!released_at_crash > 100)

let test_sharded_stream_mode () =
  let cfg =
    { (test_cfg ()) with Rolis.Config.stream_mode = Rolis.Config.Sharded 2 }
  in
  let stopped = ref false in
  let accounts = 30 in
  let app = transfer_app ~accounts ~initial:100 ~stopped in
  let cluster = Rolis.Cluster.create cfg app in
  Rolis.Cluster.run cluster ~duration:(1 * s) ();
  check_bool "sharded mode releases" true (Rolis.Cluster.released cluster > 200);
  stopped := true;
  Rolis.Cluster.run cluster ~duration:(1 * s) ();
  (* Convergence and conservation must hold with workers sharing streams. *)
  Array.iter
    (fun r ->
      check_int "money conserved (sharded)" (accounts * 100)
        (total_money (Rolis.Replica.db r) ~accounts))
    (Rolis.Cluster.replicas cluster)

let test_networked_clients_mode () =
  let cfg = { (test_cfg ()) with Rolis.Config.networked_clients = true } in
  let cluster = Rolis.Cluster.create cfg (Rolis.App.counter_app ~keys:100) in
  Rolis.Cluster.run cluster ~duration:(1 * s) ();
  check_bool "networked mode releases" true (Rolis.Cluster.released cluster > 500);
  (* Client-observed latency includes the request/response round trip. *)
  let p50 = Sim.Metrics.Hist.quantile (Rolis.Cluster.latency cluster) 0.5 in
  check_bool "latency includes client RTT" true
    (p50 >= cfg.Rolis.Config.client_rtt)

let test_disable_replay_mode () =
  let cfg = { (test_cfg ()) with Rolis.Config.disable_replay = true } in
  let cluster = Rolis.Cluster.create cfg (Rolis.App.counter_app ~keys:100) in
  Rolis.Cluster.run cluster ~duration:(1 * s) ();
  check_bool "leader throughput unaffected" true (Rolis.Cluster.released cluster > 500);
  (* Followers learn durability but never apply. *)
  let f = Rolis.Cluster.replica cluster 1 in
  check_int "follower applied nothing" 0 (Rolis.Stats.replayed_txns (Rolis.Replica.stats f));
  let t = Silo.Db.table (Rolis.Replica.db f) "counters" in
  let all_zero = ref true in
  Store.Table.iter t (fun _ r -> if r.Store.Record.value <> "0" then all_zero := false);
  check_bool "follower data untouched" true !all_zero

let test_bulk_replay_convergence () =
  (* The event-driven bulk fast path must be a pure performance change:
     followers drain to the leader's exact state and every replica still
     conserves money — the transfer workload tears immediately if the
     sorted sweep merges, truncates, or re-applies anything wrongly. *)
  let stopped = ref false in
  let accounts = 50 in
  let cfg = { (test_cfg ()) with Rolis.Config.replay_batch = Rolis.Config.Bulk } in
  let cluster =
    Rolis.Cluster.create cfg (transfer_app ~accounts ~initial:1_000 ~stopped)
  in
  Rolis.Cluster.run cluster ~duration:(1 * s) ();
  (* Mid-run, the replayed frontier can never pass the durable one. *)
  Array.iter
    (fun r ->
      check_bool "replay frontier <= durable frontier" true
        (Rolis.Replica.replay_frontier r <= Rolis.Replica.durable_frontier r))
    (Rolis.Cluster.replicas cluster);
  stopped := true;
  Rolis.Cluster.run cluster ~duration:(1 * s) ();
  check_bool "bulk mode releases" true (Rolis.Cluster.released cluster > 100);
  let leader_state =
    table_state (Rolis.Replica.db (Rolis.Cluster.replica cluster 0)) "accounts"
  in
  for i = 1 to 2 do
    let f = Rolis.Cluster.replica cluster i in
    check_bool
      (Printf.sprintf "follower %d replayed in bulk" i)
      true
      (Rolis.Stats.replayed_txns (Rolis.Replica.stats f) > 0);
    check_bool
      (Printf.sprintf "follower %d state equals leader" i)
      true
      (table_state (Rolis.Replica.db f) "accounts" = leader_state)
  done;
  Array.iter
    (fun r ->
      check_int "money conserved" (accounts * 1_000)
        (total_money (Rolis.Replica.db r) ~accounts))
    (Rolis.Cluster.replicas cluster);
  (* The lag telemetry sampled on the controller tick has data. *)
  match Rolis.Cluster.replay_lag cluster with
  | Some (n, p50, p95) ->
      check_bool "lag samples accumulated" true (n > 0);
      check_bool "lag percentiles ordered" true (0 <= p50 && p50 <= p95)
  | None -> Alcotest.fail "no replay-lag samples"

let test_parallel_hash_replay_convergence () =
  (* Both new raw-speed knobs at once: intra-entry parallel bulk replay
     (4 ways) over a hash-indexed table. Correctness must be untouched —
     followers drain to the leader's exact state and money is conserved
     on every replica. *)
  let stopped = ref false in
  let accounts = 50 in
  let cfg =
    {
      (test_cfg ()) with
      Rolis.Config.replay_batch = Rolis.Config.Bulk;
      replay_parallel = 4;
      hash_tables = [ "accounts" ];
    }
  in
  Rolis.Config.validate cfg;
  let cluster =
    Rolis.Cluster.create cfg (transfer_app ~accounts ~initial:1_000 ~stopped)
  in
  Rolis.Cluster.run cluster ~duration:(1 * s) ();
  stopped := true;
  Rolis.Cluster.run cluster ~duration:(1 * s) ();
  check_bool "parallel hash mode releases" true
    (Rolis.Cluster.released cluster > 100);
  let leader_db = Rolis.Replica.db (Rolis.Cluster.replica cluster 0) in
  check_bool "table is hash-indexed" true
    (Store.Table.repr (Silo.Db.table leader_db "accounts") = Store.Table.Hash);
  let leader_state = table_state leader_db "accounts" in
  for i = 1 to 2 do
    let f = Rolis.Cluster.replica cluster i in
    check_bool
      (Printf.sprintf "follower %d replayed" i)
      true
      (Rolis.Stats.replayed_txns (Rolis.Replica.stats f) > 0);
    check_bool
      (Printf.sprintf "follower %d state equals leader" i)
      true
      (table_state (Rolis.Replica.db f) "accounts" = leader_state)
  done;
  Array.iter
    (fun r ->
      check_int "money conserved" (accounts * 1_000)
        (total_money (Rolis.Replica.db r) ~accounts))
    (Rolis.Cluster.replicas cluster)

let test_old_leader_tainted_on_partition () =
  let cfg = test_cfg () in
  let cluster = Rolis.Cluster.create cfg (Rolis.App.counter_app ~keys:100) in
  let eng = Rolis.Cluster.engine cluster in
  (* Cut replica 0 (the leader) off from both followers. *)
  Sim.Engine.schedule eng (500 * ms) (fun () ->
      let net = Rolis.Cluster.network cluster in
      Sim.Net.partition net 0 1;
      Sim.Net.partition net 0 2);
  Rolis.Cluster.run cluster ~duration:(2 * s) ();
  let old_leader = Rolis.Cluster.replica cluster 0 in
  check_bool "old leader stopped serving" false (Rolis.Replica.is_serving old_leader);
  check_bool "old leader tainted" true (Rolis.Replica.is_tainted old_leader);
  match Rolis.Cluster.leader cluster with
  | Some r -> check_bool "new leader among survivors" true (Rolis.Replica.id r <> 0)
  | None -> Alcotest.fail "no new leader"

let test_single_stream_mode () =
  let cfg = { (test_cfg ~workers:4 ()) with Rolis.Config.stream_mode = Rolis.Config.Single } in
  let cluster = Rolis.Cluster.create cfg (Rolis.App.counter_app ~keys:100) in
  Rolis.Cluster.run cluster ~warmup:(200 * ms) ~duration:(1 * s) ();
  check_bool "strawman releases transactions" true (Rolis.Cluster.released cluster > 500)

let test_bootstrap_new_replica () =
  let stopped = ref false in
  let accounts = 30 in
  let cfg = { (test_cfg ()) with Rolis.Config.archive_entries = true } in
  let app = transfer_app ~accounts ~initial:200 ~stopped in
  let cluster = Rolis.Cluster.create cfg app in
  let eng = Rolis.Cluster.engine cluster in
  (* The new replica's empty machine. *)
  let new_cpu = Sim.Cpu.create eng ~cores:8 () in
  let new_db = Silo.Db.create eng new_cpu ~costs:test_costs ~physical_deletes:false () in
  let sync_done = ref false in
  (* Start the asynchronous pull while the cluster is under load. *)
  Sim.Engine.schedule eng (500 * ms) (fun () ->
      ignore
        (Sim.Engine.spawn eng ~name:"bootstrap" (fun () ->
             let src = Rolis.Cluster.replica cluster 1 in
             let rows, applies = Rolis.Bootstrap.sync_new_replica ~src ~dst:new_db () in
             check_bool "copied rows" true (rows >= accounts);
             ignore applies;
             sync_done := true)));
  Rolis.Cluster.run cluster ~duration:(1 * s) ();
  stopped := true;
  Rolis.Cluster.run cluster ~duration:(1 * s) ();
  check_bool "sync completed" true !sync_done;
  (* Top up with everything the source has made durable since, then the
     new replica must match the source exactly (idempotent replay). *)
  let finished = ref false in
  ignore
    (Sim.Engine.spawn eng (fun () ->
         let src = Rolis.Cluster.replica cluster 1 in
         ignore
           (Rolis.Bootstrap.replay_entries ~dst:new_db
              (Rolis.Replica.archived_entries src));
         finished := true));
  Rolis.Cluster.run cluster ~duration:(1 * s) ();
  check_bool "top-up ran" true !finished;
  check_int "money conserved on the new replica" (accounts * 200)
    (total_money new_db ~accounts);
  let src_db = Rolis.Replica.db (Rolis.Cluster.replica cluster 1) in
  check_bool "new replica equals source" true
    (table_state new_db "accounts" = table_state src_db "accounts")

let test_restart_rejoin_convergence () =
  (* Crash a follower mid-run, restart it while the cluster is still under
     load: it rebuilds from the survivors' journals (per-stream union),
     closes the remaining gap over the fetch path, and must end up
     byte-identical to the leader after the drain. *)
  let stopped = ref false in
  let accounts = 40 in
  let cfg = { (test_cfg ()) with Rolis.Config.archive_entries = true } in
  let app = transfer_app ~accounts ~initial:300 ~stopped in
  let cluster = Rolis.Cluster.create cfg app in
  let eng = Rolis.Cluster.engine cluster in
  Sim.Engine.schedule eng (300 * ms) (fun () -> Rolis.Cluster.crash_replica cluster 2);
  Sim.Engine.schedule eng (800 * ms) (fun () -> Rolis.Cluster.restart_replica cluster 2);
  Rolis.Cluster.run cluster ~duration:(1_500 * ms) ();
  stopped := true;
  Rolis.Cluster.run cluster ~duration:(1 * s) ();
  check_bool "progress under churn" true (Rolis.Cluster.released cluster > 100);
  let r2 = Rolis.Cluster.replica cluster 2 in
  check_bool "restarted replica alive" true (Rolis.Replica.is_alive r2);
  let leader_state =
    table_state (Rolis.Replica.db (Rolis.Cluster.replica cluster 0)) "accounts"
  in
  check_bool "restarted replica equals leader" true
    (table_state (Rolis.Replica.db r2) "accounts" = leader_state);
  check_int "money conserved on restarted replica" (accounts * 300)
    (total_money (Rolis.Replica.db r2) ~accounts)

(* ---------- adaptive batching ---------- *)

(* The adaptive batcher, driven standalone over random arrival schedules:
   every submitted transaction is flushed exactly once and in order
   (entry timestamps monotone per stream), and no transaction waits in a
   batch longer than target_batch_delay_ns — the per-batch deadline
   event guarantees it even without the coarse flush timer, which runs
   here too as the controller's backstop. *)
let batcher_adaptive_qcheck =
  QCheck.Test.make ~name:"adaptive batching: bounded delay, monotone, lossless"
    ~count:60
    QCheck.(list_of_size Gen.(int_range 1 60) (int_range 0 (3 * ms)))
    (fun gaps ->
      let cfg =
        {
          (test_cfg ~workers:1 ~batch:100 ()) with
          Rolis.Config.batch_policy = Rolis.Config.Adaptive;
        }
      in
      let target = cfg.Rolis.Config.target_batch_delay_ns in
      let flush_iv = cfg.Rolis.Config.batch_flush_interval in
      let eng = Sim.Engine.create () in
      let cpu = Sim.Cpu.create eng ~cores:2 () in
      let stats = Rolis.Stats.create eng in
      let trace =
        Rolis.Trace.create eng ~stats ~workers:1 ~sample_interval:0 ~capacity:8
      in
      let flushed = ref [] in
      (* (flush time, entry), newest first *)
      let b =
        Rolis.Batcher.create cfg ~cpu ~stats ~trace
          ~epoch:(fun () -> 1)
          ~propose:(fun e -> flushed := (Sim.Engine.now eng, e) :: !flushed)
          ~shared:false ()
      in
      (* Submit times are cumulative random gaps; ts is the submit index. *)
      let submit_at = Hashtbl.create 64 in
      let last = ref 0 in
      List.iteri
        (fun i gap ->
          last := !last + gap;
          let at = !last and ts = i + 1 in
          Hashtbl.replace submit_at ts at;
          Sim.Engine.schedule eng at (fun () ->
              Rolis.Batcher.submit b { Store.Wire.ts; req = None; decision = None; writes = [] }))
        gaps;
      let horizon = !last + target + (2 * flush_iv) in
      let ticks = (horizon / flush_iv) + 1 in
      for i = 1 to ticks do
        Sim.Engine.schedule eng (i * flush_iv) (fun () ->
            Rolis.Batcher.maybe_flush b ~max_age:flush_iv)
      done;
      Sim.Engine.run eng;
      let n = List.length gaps in
      (* Chronological flush order; concatenated ts must be exactly
         1..n — lossless and monotone per stream. *)
      let entries = List.rev !flushed in
      let ts_order =
        List.concat_map
          (fun (_, e) ->
            List.map (fun (t : Store.Wire.txn_log) -> t.Store.Wire.ts)
              e.Store.Wire.txns)
          entries
      in
      ts_order = List.init n (fun i -> i + 1)
      && List.for_all
           (fun (at, e) ->
             List.for_all
               (fun (t : Store.Wire.txn_log) ->
                 at - Hashtbl.find submit_at t.Store.Wire.ts <= target + flush_iv)
               e.Store.Wire.txns)
           entries)

(* The Fixed policy must stay bit-identical to the pre-adaptive pipeline:
   the counts and latency quantiles below were captured on the tree just
   before the adaptive batching work landed. Any virtual-time drift in
   the Fixed path — which is every default configuration — shows up here
   as an exact mismatch. *)
let check_fixed_golden name cfg app ~duration ~golden =
  let g_released, g_executed, g_p50, g_p95 = golden in
  let cluster = Rolis.Cluster.create cfg app in
  Rolis.Cluster.run cluster ~duration ();
  let lat = Rolis.Cluster.latency cluster in
  check_int (name ^ ": released") g_released (Rolis.Cluster.released cluster);
  check_int (name ^ ": executed") g_executed (Rolis.Cluster.executed cluster);
  check_int (name ^ ": p50") g_p50 (Sim.Metrics.Hist.quantile lat 0.5);
  check_int (name ^ ": p95") g_p95 (Sim.Metrics.Hist.quantile lat 0.95)

let test_fixed_golden_counter () =
  check_fixed_golden "counter" (test_cfg ())
    (Rolis.App.counter_app ~keys:100)
    ~duration:(1 * s)
    ~golden:(60245, 60287, 2405678, 3685286)

let test_fixed_golden_tpcc () =
  let workers = 4 in
  let app =
    Workload.Tpcc.app (Workload.Tpcc.with_warehouses Workload.Tpcc.default workers)
  in
  let cfg = { Rolis.Config.default with Rolis.Config.workers; cores = 8 } in
  check_fixed_golden "tpcc" cfg app ~duration:(200 * ms)
    ~golden:(42171, 46192, 12748870, 17246154)

(* The acceptance criterion: at low/medium load the adaptive policy must
   cut TPC-C release latency at least 2x against the fixed default batch
   (the bench sweep shows 4-7x; assert the contractual bound). *)
let test_adaptive_p50_win () =
  let run policy =
    let workers = 2 in
    let cfg =
      {
        Rolis.Config.default with
        Rolis.Config.workers;
        cores = 8;
        batch_policy = policy;
      }
    in
    let app =
      Workload.Tpcc.app
        (Workload.Tpcc.with_warehouses Workload.Tpcc.default workers)
    in
    let cluster = Rolis.Cluster.create cfg app in
    Rolis.Cluster.run cluster ~warmup:(150 * ms) ~duration:(100 * ms) ();
    cluster
  in
  let fixed = run Rolis.Config.Fixed in
  let adaptive = run Rolis.Config.Adaptive in
  let p50 c = Sim.Metrics.Hist.quantile (Rolis.Cluster.latency c) 0.5 in
  check_bool "both made progress" true
    (Rolis.Cluster.released fixed > 500 && Rolis.Cluster.released adaptive > 500);
  check_bool
    (Printf.sprintf "adaptive p50 (%d ns) at least 2x below fixed (%d ns)"
       (p50 adaptive) (p50 fixed))
    true
    (2 * p50 adaptive <= p50 fixed);
  (* The event-driven machinery actually carried the run. *)
  let st = Rolis.Replica.stats (Rolis.Cluster.replica adaptive 0) in
  check_bool "deadline flushes observed" true (Rolis.Stats.deadline_flushes st > 0);
  check_bool "event-driven releases observed" true (Rolis.Stats.event_releases st > 0)

(* End-to-end safety under the Adaptive policy: leader crash mid-run,
   then drain — money conserved on every survivor, and the incremental
   backlog counter still agrees with the reference fold after the
   failover churn (clear/step-down paths included). *)
let test_adaptive_failover_conservation () =
  let stopped = ref false in
  let accounts = 40 in
  let cfg = { (test_cfg ()) with Rolis.Config.batch_policy = Rolis.Config.Adaptive } in
  let app = transfer_app ~accounts ~initial:500 ~stopped in
  let cluster = Rolis.Cluster.create cfg app in
  let eng = Rolis.Cluster.engine cluster in
  Sim.Engine.schedule eng (700 * ms) (fun () -> Rolis.Cluster.crash_replica cluster 0);
  Rolis.Cluster.run cluster ~duration:(2 * s) ();
  stopped := true;
  Rolis.Cluster.run cluster ~duration:(1 * s) ();
  (match Rolis.Cluster.leader cluster with
  | Some r ->
      check_bool "new leader took over" true (Rolis.Replica.id r <> 0);
      check_int "money conserved on the new leader" (accounts * 500)
        (total_money (Rolis.Replica.db r) ~accounts)
  | None -> Alcotest.fail "no leader after failover");
  Array.iter
    (fun r ->
      if Rolis.Replica.is_alive r then begin
        check_int "money conserved" (accounts * 500)
          (total_money (Rolis.Replica.db r) ~accounts);
        check_int
          (Printf.sprintf "replica %d backlog counter = fold" (Rolis.Replica.id r))
          (Rolis.Replica.replay_backlog_scan r)
          (Rolis.Replica.replay_backlog r)
      end)
    (Rolis.Cluster.replicas cluster)

(* ---------- config validation ---------- *)

let expect_invalid name cfg =
  match Rolis.Config.validate cfg with
  | () -> Alcotest.failf "%s: expected Invalid_argument" name
  | exception Invalid_argument _ -> ()

let test_config_validate_timing () =
  let ok = test_cfg () in
  Rolis.Config.validate ok;
  expect_invalid "heartbeat = election timeout"
    { ok with Rolis.Config.heartbeat_interval = ok.Rolis.Config.election_timeout };
  expect_invalid "heartbeat > election timeout"
    { ok with Rolis.Config.heartbeat_interval = 2 * ok.Rolis.Config.election_timeout };
  expect_invalid "heartbeat zero" { ok with Rolis.Config.heartbeat_interval = 0 };
  expect_invalid "flush interval zero" { ok with Rolis.Config.batch_flush_interval = 0 };
  expect_invalid "negative flush interval"
    { ok with Rolis.Config.batch_flush_interval = -ms };
  expect_invalid "negative client rtt" { ok with Rolis.Config.client_rtt = -1 };
  expect_invalid "negative client rpc overhead"
    { ok with Rolis.Config.client_rpc_overhead = -1 }

let test_config_validate_clients () =
  let ok = test_cfg () in
  expect_invalid "negative clients" { ok with Rolis.Config.clients = -1 };
  (* Session knobs are only constrained once sessions exist... *)
  Rolis.Config.validate { ok with Rolis.Config.client_timeout = 0 };
  Rolis.Config.validate { ok with Rolis.Config.admission_max_pending = 0 };
  (* ...then every one of them is. *)
  let on = { ok with Rolis.Config.clients = 4 } in
  Rolis.Config.validate on;
  expect_invalid "client timeout zero" { on with Rolis.Config.client_timeout = 0 };
  expect_invalid "retry limit zero" { on with Rolis.Config.client_retry_limit = 0 };
  expect_invalid "backoff base zero" { on with Rolis.Config.client_backoff_base = 0 };
  expect_invalid "backoff max below base"
    { on with Rolis.Config.client_backoff_max = on.Rolis.Config.client_backoff_base - 1 };
  expect_invalid "park interval zero" { on with Rolis.Config.client_park_interval = 0 };
  expect_invalid "admission pending zero" { on with Rolis.Config.admission_max_pending = 0 };
  expect_invalid "admission release zero" { on with Rolis.Config.admission_max_release = 0 };
  expect_invalid "admission backlog zero" { on with Rolis.Config.admission_max_backlog = 0 }

let test_config_validate_batching () =
  let ok = test_cfg () in
  Rolis.Config.validate ok;
  expect_invalid "target delay zero"
    { ok with Rolis.Config.target_batch_delay_ns = 0 };
  expect_invalid "negative target delay"
    { ok with Rolis.Config.target_batch_delay_ns = -ms };
  expect_invalid "byte cap below one max-size transaction"
    { ok with Rolis.Config.max_batch_bytes = Rolis.Config.max_txn_bytes - 1 };
  Rolis.Config.validate
    { ok with Rolis.Config.max_batch_bytes = Rolis.Config.max_txn_bytes };
  (* The flush timer is only the idle-stream backstop under Adaptive:
     finer than the watermark tick is rejected there, accepted under
     Fixed (where it is the sole latency bound). *)
  let fine =
    { ok with Rolis.Config.batch_flush_interval = ok.Rolis.Config.watermark_interval - 1 }
  in
  Rolis.Config.validate fine;
  expect_invalid "adaptive flush timer finer than watermark tick"
    { fine with Rolis.Config.batch_policy = Rolis.Config.Adaptive };
  Rolis.Config.validate { ok with Rolis.Config.batch_policy = Rolis.Config.Adaptive }

let test_config_validate_checkpoint () =
  let ok = test_cfg () in
  let on =
    {
      ok with
      Rolis.Config.checkpoint_interval = 500 * ms;
      archive_entries = true;
      checkpoint_retention = ok.Rolis.Config.election_timeout;
    }
  in
  Rolis.Config.validate on;
  expect_invalid "negative interval"
    { ok with Rolis.Config.checkpoint_interval = -1 };
  expect_invalid "interval at watermark tick"
    { on with Rolis.Config.checkpoint_interval = ok.Rolis.Config.watermark_interval };
  expect_invalid "checkpointing without archived journal"
    { on with Rolis.Config.archive_entries = false };
  expect_invalid "retention under election timeout"
    { on with Rolis.Config.checkpoint_retention = ok.Rolis.Config.election_timeout - 1 };
  expect_invalid "zero disk bandwidth"
    { on with Rolis.Config.checkpoint_disk_mb_per_s = 0 };
  expect_invalid "zero checkpoint threads"
    { on with Rolis.Config.checkpoint_threads = 0 };
  (* The checkpoint knobs are unconstrained while checkpointing is off. *)
  Rolis.Config.validate
    {
      ok with
      Rolis.Config.checkpoint_disk_mb_per_s = 0;
      checkpoint_threads = 0;
      checkpoint_retention = 0;
    }

let test_config_validate_replay () =
  let ok = test_cfg () in
  Rolis.Config.validate ok;
  expect_invalid "replay fan-out zero" { ok with Rolis.Config.replay_parallel = 0 };
  expect_invalid "negative replay fan-out"
    { ok with Rolis.Config.replay_parallel = -2 };
  (* Fan-out only exists on the bulk path: PerTxn has no sorted run to
     slice, so asking for both is a configuration contradiction. *)
  expect_invalid "parallel replay without bulk batching"
    { ok with Rolis.Config.replay_parallel = 4 };
  Rolis.Config.validate
    {
      ok with
      Rolis.Config.replay_parallel = 4;
      replay_batch = Rolis.Config.Bulk;
    };
  Rolis.Config.validate { ok with Rolis.Config.hash_tables = [ "item"; "usertable" ] };
  expect_invalid "duplicate hash table"
    { ok with Rolis.Config.hash_tables = [ "item"; "usertable"; "item" ] }

let test_config_validate_reconfig () =
  let ok = test_cfg () in
  Rolis.Config.validate ok;
  (* A deployment with spare slots and a raised floor is legal... *)
  Rolis.Config.validate
    { ok with Rolis.Config.spare_replicas = 2; min_members = 2 };
  (* ...and each reconfiguration knob is individually constrained. *)
  expect_invalid "negative spare slots" { ok with Rolis.Config.spare_replicas = -1 };
  expect_invalid "membership floor zero" { ok with Rolis.Config.min_members = 0 };
  expect_invalid "membership floor above initial voters"
    { ok with Rolis.Config.min_members = ok.Rolis.Config.replicas + 1 };
  expect_invalid "learner lag bound zero" { ok with Rolis.Config.learner_lag_bound = 0 };
  expect_invalid "negative learner lag bound"
    { ok with Rolis.Config.learner_lag_bound = -ms };
  expect_invalid "handoff drain timeout zero"
    { ok with Rolis.Config.handoff_drain_timeout = 0 };
  expect_invalid "negative handoff drain timeout"
    { ok with Rolis.Config.handoff_drain_timeout = -ms }

(* ---------- client sessions ---------- *)

(* The exactly-once release-visibility case from the issue: the leader
   dies the instant its first client transaction becomes durable — i.e.
   after commit but before the release pass could ack it. The client must
   never see that ack from the dead leader; its retry against the new
   leader must succeed exactly once (either the entry was below the final
   watermark and replay rebuilt the session table, answering from cache,
   or it was above and the retry re-executes fresh). *)
let test_release_visibility_across_crash () =
  let stopped = ref false in
  let accounts = 20 in
  let cfg =
    { (test_cfg ()) with Rolis.Config.clients = 4; archive_entries = true }
  in
  let cluster = ref None in
  let sessions = ref [||] in
  let sum f = Array.fold_left (fun a c -> a + f c) 0 !sessions in
  let crash_fired = ref false in
  let acked_at_crash = ref (-1) in
  let on_durable ~replica ~stream:_ ~idx:_ (e : Store.Wire.entry) =
    if
      (not !crash_fired)
      && replica = 0
      && List.exists
           (fun (t : Store.Wire.txn_log) -> t.Store.Wire.req <> None)
           e.Store.Wire.txns
    then begin
      crash_fired := true;
      match !cluster with
      | Some c ->
          Sim.Engine.schedule (Rolis.Cluster.engine c) 0 (fun () ->
              acked_at_crash := sum Rolis.Client.acked_count;
              Rolis.Cluster.crash_replica c 0)
      | None -> ()
    end
  in
  let c =
    Rolis.Cluster.create ~on_durable cfg (transfer_app ~accounts ~initial:1_000 ~stopped)
  in
  cluster := Some c;
  let eng = Rolis.Cluster.engine c and net = Rolis.Cluster.network c in
  sessions :=
    Array.init cfg.Rolis.Config.clients (fun cid ->
        let crng = Sim.Rng.split (Sim.Engine.rng eng) in
        Rolis.Client.spawn net ~cfg ~cid ~stopped
          ~gen:(fun () -> Rolis.Chaos.bank_payload crng ~accounts)
          ());
  Rolis.Cluster.run c ~duration:(4 * s) ();
  check_bool "leader crashed on its first durable client txn" true !crash_fired;
  check_int "nothing was acked before the crash" 0 !acked_at_crash;
  (match Rolis.Cluster.leader c with
  | Some r -> check_bool "failover happened" true (Rolis.Replica.id r <> 0)
  | None -> Alcotest.fail "no leader after the crash");
  check_bool "acks resumed through the new leader" true
    (sum Rolis.Client.acked_count > 0);
  (* Quiesce, then audit every ack against the union durable log. *)
  stopped := true;
  Rolis.Cluster.run c ~duration:(2_500 * ms) ();
  let acked = Array.to_list !sessions |> List.concat_map Rolis.Client.acked_seqs in
  check_bool "sanity: something was acked" true (acked <> []);
  let viols = Rolis.Check.exactly_once c ~acked in
  if viols <> [] then
    Alcotest.failf "exactly-once violated: %s"
      (String.concat "; "
         (List.map (fun v -> v.Rolis.Check.detail) viols));
  check_bool "money conserved on the new leader" true
    (match Rolis.Cluster.leader c with
    | Some r -> total_money (Rolis.Replica.db r) ~accounts = accounts * 1_000
    | None -> false)

(* Admission control: with a starved admission queue the leader answers
   [Busy] instead of buffering unboundedly; clients back off and retry,
   and backpressure never costs exactly-once. *)
let test_admission_backpressure () =
  let stopped = ref false in
  let accounts = 20 in
  let cfg =
    {
      (test_cfg ()) with
      Rolis.Config.clients = 6;
      client_timeout = 50 * ms;
      admission_max_pending = 1;
      archive_entries = true;
    }
  in
  let c = Rolis.Cluster.create cfg (transfer_app ~accounts ~initial:1_000 ~stopped) in
  let eng = Rolis.Cluster.engine c and net = Rolis.Cluster.network c in
  let sessions =
    Array.init cfg.Rolis.Config.clients (fun cid ->
        let crng = Sim.Rng.split (Sim.Engine.rng eng) in
        Rolis.Client.spawn net ~cfg ~cid ~stopped
          ~gen:(fun () -> Rolis.Chaos.bank_payload crng ~accounts)
          ())
  in
  Rolis.Cluster.run c ~duration:(1 * s) ();
  stopped := true;
  Rolis.Cluster.run c ~duration:(1_500 * ms) ();
  let sum f = Array.fold_left (fun a cl -> a + f cl) 0 sessions in
  check_bool "leader pushed back" true (sum Rolis.Client.busy_replies > 0);
  check_bool "clients still made progress" true (sum Rolis.Client.acked_count > 0);
  let acked = Array.to_list sessions |> List.concat_map Rolis.Client.acked_seqs in
  let viols = Rolis.Check.exactly_once c ~acked in
  if viols <> [] then
    Alcotest.failf "exactly-once violated under backpressure: %s"
      (String.concat "; " (List.map (fun v -> v.Rolis.Check.detail) viols));
  Array.iter
    (fun r ->
      if Rolis.Replica.is_alive r then
        check_int "money conserved" (accounts * 1_000)
          (total_money (Rolis.Replica.db r) ~accounts))
    (Rolis.Cluster.replicas c)

(* ---------- follower reads ---------- *)

(* End to end: read-only sessions mixed with write sessions; followers
   serve snapshot reads under leases, the audited read sample passes the
   snapshot oracle, and money stays conserved with the read traffic on. *)
let test_follower_reads_e2e () =
  let stopped = ref false in
  let accounts = 40 in
  let cfg =
    {
      (test_cfg ()) with
      Rolis.Config.clients = 4;
      follower_reads = true;
      read_lease = 150 * ms;
      archive_entries = true;
    }
  in
  let c = Rolis.Cluster.create cfg (transfer_app ~accounts ~initial:1_000 ~stopped) in
  let eng = Rolis.Cluster.engine c and net = Rolis.Cluster.network c in
  (* cids 0-1 write transfers; cids 2-3 are read-only balance readers. *)
  let writers =
    Array.init 2 (fun cid ->
        let crng = Sim.Rng.split (Sim.Engine.rng eng) in
        Rolis.Client.spawn net ~cfg ~cid ~stopped
          ~gen:(fun () -> Rolis.Chaos.bank_payload crng ~accounts)
          ())
  in
  let ro_stopped = ref false in
  let readers =
    Array.init 2 (fun i ->
        let crng = Sim.Rng.split (Sim.Engine.rng eng) in
        Rolis.Client.spawn net ~cfg ~cid:(2 + i) ~stopped:ro_stopped ~ro:true
          ~stats:(Rolis.Cluster.client_read_stats c)
          ~gen:(fun () -> Rolis.Chaos.bank_read_payload crng ~accounts)
          ())
  in
  Rolis.Cluster.run c ~duration:(3 * s) ();
  stopped := true;
  ro_stopped := true;
  Rolis.Cluster.run c ~duration:(1 * s) ();
  let sum arr f = Array.fold_left (fun a cl -> a + f cl) 0 arr in
  check_bool "write sessions acked" true (sum writers Rolis.Client.acked_count > 0);
  check_bool "read sessions acked" true (sum readers Rolis.Client.acked_count > 0);
  let leader_id =
    match Rolis.Cluster.leader c with
    | Some r -> Rolis.Replica.id r
    | None -> Alcotest.fail "no leader"
  in
  let follower_served =
    Array.fold_left
      (fun a r ->
        if Rolis.Replica.id r = leader_id then a
        else a + Rolis.Stats.reads_served (Rolis.Replica.stats r))
      0 (Rolis.Cluster.replicas c)
  in
  check_bool "followers served reads" true (follower_served > 0);
  let viols = Rolis.Check.snapshot_reads c in
  if viols <> [] then
    Alcotest.failf "snapshot reads violated: %s"
      (String.concat "; " (List.map (fun v -> v.Rolis.Check.detail) viols));
  (* Only write acks feed the exactly-once audit — reads are idempotent. *)
  let acked = Array.to_list writers |> List.concat_map Rolis.Client.acked_seqs in
  let viols = Rolis.Check.exactly_once c ~acked in
  if viols <> [] then
    Alcotest.failf "exactly-once violated with follower reads: %s"
      (String.concat "; " (List.map (fun v -> v.Rolis.Check.detail) viols));
  (match Rolis.Cluster.leader c with
  | Some r -> check_int "money conserved" (accounts * 1_000) (total_money (Rolis.Replica.db r) ~accounts)
  | None -> ())

(* Safety: a follower cut off from its peers keeps its lease only until
   it lapses, then parks every read — it can never serve a stale snapshot
   while a majority elects a new epoch elsewhere. Clients can still reach
   the isolated follower throughout (only replica-replica links are cut),
   so every request it sheds is a genuine lease park. *)
let test_lease_partition_parks () =
  let stopped = ref false in
  let accounts = 20 in
  let cfg =
    {
      (test_cfg ()) with
      Rolis.Config.clients = 2;
      follower_reads = true;
      read_lease = 150 * ms;
    }
  in
  let c = Rolis.Cluster.create cfg (transfer_app ~accounts ~initial:500 ~stopped) in
  let eng = Rolis.Cluster.engine c and net = Rolis.Cluster.network c in
  let _readers =
    Array.init 2 (fun cid ->
        let crng = Sim.Rng.split (Sim.Engine.rng eng) in
        Rolis.Client.spawn net ~cfg ~cid ~stopped ~ro:true ~prefer:[| 2 |]
          ~stats:(Rolis.Cluster.client_read_stats c)
          ~gen:(fun () -> Rolis.Chaos.bank_read_payload crng ~accounts)
          ())
  in
  Rolis.Cluster.run c ~duration:(1 * s) ();
  let served () = Rolis.Stats.reads_served (Rolis.Replica.stats (Rolis.Cluster.replica c 2)) in
  check_bool "follower served while leased" true (served () > 0);
  Sim.Net.partition net 0 2;
  Sim.Net.partition net 1 2;
  Rolis.Cluster.run c ~duration:(cfg.Rolis.Config.read_lease + (200 * ms)) ();
  check_bool "lease lapsed in isolation" false
    (Rolis.Replica.lease_valid (Rolis.Cluster.replica c 2));
  let served_mid = served () in
  Rolis.Cluster.run c ~duration:(1 * s) ();
  check_int "no reads served without a lease" served_mid (served ());
  check_bool "reads parked instead" true
    (Rolis.Stats.reads_parked (Rolis.Replica.stats (Rolis.Cluster.replica c 2)) > 0);
  (* Heal: a fresh lease arrives with the next heartbeat and serving
     resumes at the current epoch. *)
  Sim.Net.heal net 0 2;
  Sim.Net.heal net 1 2;
  Rolis.Cluster.run c ~duration:(1 * s) ();
  check_bool "serving resumed after heal" true (served () > served_mid)

(* Chaos sweep with the read path on: crashes, partitions and elections
   racing lease grants — exactly-once, money and the snapshot-read oracle
   must all hold on every seed. *)
let test_follower_reads_chaos () =
  for seed = 0 to 2 do
    let o = Rolis.Chaos.run_seed ~follower_reads:true ~seed () in
    if not (Rolis.Chaos.ok o) then
      Alcotest.failf "chaos seed %d with follower reads failed: %s" seed
        (Format.asprintf "%a" Rolis.Chaos.pp_outcome o);
    check_bool
      (Printf.sprintf "seed %d exercised the read path" seed)
      true
      (o.Rolis.Chaos.reads_acked > 0)
  done

(* ---------- checkpoint ---------- *)

let test_checkpoint_roundtrip () =
  let eng = Sim.Engine.create () in
  let cpu = Sim.Cpu.create eng ~cores:8 () in
  let db = Silo.Db.create eng cpu () in
  let t = Silo.Db.create_table db "data" in
  for i = 0 to 999 do
    let r = Store.Record.make ~epoch:1 ~ts:i (Printf.sprintf "v%d" i) in
    Store.Table.insert t (Store.Keycodec.encode [ Store.Keycodec.I i ]) r
  done;
  (* A tombstone must not survive the checkpoint. *)
  (Store.Table.get t (Store.Keycodec.encode [ Store.Keycodec.I 0 ]) |> Option.get)
    .Store.Record.deleted <- true;
  let duration = ref 0 in
  let checked = ref false in
  let _p =
    Sim.Engine.spawn eng (fun () ->
        let t0 = Sim.Engine.time () in
        let img = Rolis.Checkpoint.write db () in
        check_int "999 live rows captured" 999 (Rolis.Checkpoint.row_count img);
        check_bool "bytes accounted" true (Rolis.Checkpoint.size_bytes img > 0);
        let fresh = Silo.Db.create eng cpu () in
        Rolis.Checkpoint.recover ~into:fresh img;
        duration := Sim.Engine.time () - t0;
        let ft = Silo.Db.table fresh "data" in
        check_int "all rows recovered" 999 (Store.Table.count ft);
        (match Store.Table.get_live ft (Store.Keycodec.encode [ Store.Keycodec.I 7 ]) with
        | Some r ->
            check_bool "value preserved" true (r.Store.Record.value = "v7");
            check_int "stamp preserved" 7 r.Store.Record.ts
        | None -> Alcotest.fail "row 7 missing");
        checked := true)
  in
  Sim.Engine.run eng;
  check_bool "checkpoint body ran" true !checked;
  check_bool "checkpointing takes virtual time" true (!duration > 0)

let test_checkpoint_plus_log_replay () =
  (* Fuzzy checkpoint composes with idempotent log replay: recovering the
     checkpoint and then replaying a log that overlaps it converges. *)
  let eng = Sim.Engine.create () in
  let cpu = Sim.Cpu.create eng ~cores:8 () in
  let db = Silo.Db.create eng cpu ~physical_deletes:false () in
  let t = Silo.Db.create_table db "data" in
  let key i = Store.Keycodec.encode [ Store.Keycodec.I i ] in
  for i = 0 to 99 do
    Store.Table.insert t (key i) (Store.Record.make ~epoch:1 ~ts:i "old")
  done;
  let log =
    List.init 50 (fun i ->
        {
          Store.Wire.ts = 1_000 + i;
          req = None;
          decision = None;
          writes = [ { Store.Wire.table = 0; key = key i; value = Some "new" } ];
        })
  in
  let ok = ref false in
  let _p =
    Sim.Engine.spawn eng (fun () ->
        let img = Rolis.Checkpoint.write db () in
        let fresh = Silo.Db.create eng cpu ~physical_deletes:false () in
        Rolis.Checkpoint.recover ~into:fresh img;
        let applied =
          Rolis.Bootstrap.replay_entries ~dst:fresh
            [ Store.Wire.make_entry ~epoch:1 log ]
        in
        check_int "all log writes won" 50 applied;
        let ft = Silo.Db.table fresh "data" in
        let value i =
          (Option.get (Store.Table.get_live ft (key i))).Store.Record.value
        in
        check_bool "updated prefix" true (value 0 = "new" && value 49 = "new");
        check_bool "untouched tail" true (value 50 = "old" && value 99 = "old");
        ok := true)
  in
  Sim.Engine.run eng;
  check_bool "ran" true !ok

(* Full-state dump including tombstones and stamps: the multiset a replica
   image must preserve exactly. *)
let stamp_dump db =
  Silo.Db.tables db
  |> List.concat_map (fun t ->
         let acc = ref [] in
         Store.Table.iter t (fun k r ->
             acc :=
               ( Store.Table.name t,
                 k,
                 r.Store.Record.value,
                 r.Store.Record.epoch,
                 r.Store.Record.ts,
                 r.Store.Record.deleted )
               :: !acc);
         !acc)
  |> List.sort compare

let checkpoint_image_multiset_qcheck =
  QCheck.Test.make ~name:"replica image round-trips the full state multiset"
    ~count:25
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let eng = Sim.Engine.create () in
      let cpu = Sim.Cpu.create eng ~cores:4 () in
      let db = Silo.Db.create eng cpu ~physical_deletes:false () in
      let ntables = 1 + Random.State.int st 3 in
      for tn = 0 to ntables - 1 do
        let t = Silo.Db.create_table db (Printf.sprintf "t%d" tn) in
        for _ = 0 to Random.State.int st 150 do
          let key =
            Store.Keycodec.encode [ Store.Keycodec.I (Random.State.int st 400) ]
          in
          if Store.Table.get t key = None then begin
            let r =
              Store.Record.make
                ~epoch:(1 + Random.State.int st 3)
                ~ts:(Random.State.int st 10_000)
                (String.make
                   (1 + Random.State.int st 12)
                   (Char.chr (97 + Random.State.int st 26)))
            in
            if Random.State.int st 5 = 0 then r.Store.Record.deleted <- true;
            Store.Table.insert t key r
          end
        done
      done;
      let ok = ref false in
      ignore
        (Sim.Engine.spawn eng (fun () ->
             (* live_only:false is the replica-image mode: tombstones must
                survive, or below-frontier deletes of setup-seeded keys would
                resurrect on a rebuild. *)
             let img = Rolis.Checkpoint.write db ~live_only:false () in
             let fresh = Silo.Db.create eng cpu ~physical_deletes:false () in
             let installed = Rolis.Checkpoint.install ~into:fresh img in
             ok :=
               installed = Rolis.Checkpoint.row_count img
               && stamp_dump fresh = stamp_dump db));
      Sim.Engine.run eng;
      !ok)

let checkpoint_fuzzy_tail_qcheck =
  QCheck.Test.make
    ~name:"fuzzy checkpoint + journal tail equals crash-free execution"
    ~count:25
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let eng = Sim.Engine.create () in
      let cpu = Sim.Cpu.create eng ~cores:4 () in
      let key i = Store.Keycodec.encode [ Store.Keycodec.I i ] in
      let keys = 60 in
      let fresh_db () =
        let db = Silo.Db.create eng cpu ~physical_deletes:false () in
        let t = Silo.Db.create_table db "data" in
        for i = 0 to keys - 1 do
          Store.Table.insert t (key i) (Store.Record.make ~epoch:1 ~ts:i "init")
        done;
        db
      in
      (* One random history of writes and deletes, as a wire entry. *)
      let ntxn = 1 + Random.State.int st 120 in
      let log =
        List.init ntxn (fun i ->
            {
              Store.Wire.ts = 1_000 + i;
              req = None;
              decision = None;
              writes =
                [
                  {
                    Store.Wire.table = 0;
                    key = key (Random.State.int st keys);
                    value =
                      (if Random.State.int st 6 = 0 then None
                       else Some (Printf.sprintf "v%d" i));
                  };
                ];
            })
      in
      let entry l = Store.Wire.make_entry ~epoch:1 l in
      let cut = Random.State.int st (ntxn + 1) in
      let prefix = List.filteri (fun i _ -> i < cut) log in
      let ok = ref false in
      ignore
        (Sim.Engine.spawn eng (fun () ->
             (* The image is taken after some prefix of the history. *)
             let a = fresh_db () in
             if prefix <> [] then
               ignore (Rolis.Bootstrap.replay_entries ~dst:a [ entry prefix ]);
             let img = Rolis.Checkpoint.write a ~live_only:false () in
             (* Recovery: install, then replay the FULL history — the overlap
                with the image double-applies through the strictly-newer CAS
                and must be harmless. *)
             let b = Silo.Db.create eng cpu ~physical_deletes:false () in
             ignore (Rolis.Checkpoint.install ~into:b img);
             ignore (Rolis.Bootstrap.replay_entries ~dst:b [ entry log ]);
             (* Reference: crash-free execution of the same history. *)
             let c = fresh_db () in
             ignore (Rolis.Bootstrap.replay_entries ~dst:c [ entry log ]);
             ok := stamp_dump b = stamp_dump c));
      Sim.Engine.run eng;
      !ok)

(* End-to-end: a cluster with live checkpointing truncates its journals
   and still recovers a crashed follower — across the truncation frontier
   — to byte-identical state. *)
let test_checkpoint_truncation_restart () =
  let stopped = ref false in
  let accounts = 40 in
  let cfg =
    {
      (test_cfg ()) with
      Rolis.Config.archive_entries = true;
      checkpoint_interval = 100 * ms;
      checkpoint_retention = 300 * ms;
    }
  in
  let app = transfer_app ~accounts ~initial:300 ~stopped in
  let cluster = Rolis.Cluster.create cfg app in
  let eng = Rolis.Cluster.engine cluster in
  (* Long healthy history first, so checkpoints complete and truncation
     rounds fire; then a crash and a mid-load restart — recovery must go
     through checkpoint install + journal tail. *)
  Sim.Engine.schedule eng (1_200 * ms) (fun () -> Rolis.Cluster.crash_replica cluster 2);
  Sim.Engine.schedule eng (1_500 * ms) (fun () -> Rolis.Cluster.restart_replica cluster 2);
  Rolis.Cluster.run cluster ~duration:(2_500 * ms) ();
  stopped := true;
  Rolis.Cluster.run cluster ~duration:(1 * s) ();
  check_bool "checkpoints completed" true (Rolis.Cluster.checkpoints_taken cluster > 0);
  check_bool "truncation fired" true (Rolis.Cluster.truncation_rounds cluster > 0);
  check_bool "entries dropped" true (Rolis.Cluster.truncated_entries_total cluster > 0);
  let r2 = Rolis.Cluster.replica cluster 2 in
  check_bool "restarted replica alive" true (Rolis.Replica.is_alive r2);
  let viols = Rolis.Check.agreement cluster @ Rolis.Check.convergence cluster in
  if viols <> [] then
    Alcotest.failf "violations: %s"
      (String.concat "; " (List.map (fun v -> v.Rolis.Check.detail) viols));
  check_int "money conserved on restarted replica" (accounts * 300)
    (total_money (Rolis.Replica.db r2) ~accounts)

(* One deterministic chaos seed with checkpointing on: crashes land on a
   compacted history, restarts bootstrap from checkpoint + tail, and every
   invariant (including end-to-end exactly-once across truncated journal
   entries) must hold. *)
let test_chaos_checkpoint_seed () =
  let o =
    Rolis.Chaos.run_seed
      ~checkpoint_interval:(150 * ms)
      ~history_warmup:(1 * s)
      ~duration:(1_200 * ms) ~seed:7 ()
  in
  if not (Rolis.Chaos.ok o) then
    Alcotest.failf "chaos seed failed: %s"
      (Format.asprintf "%a" Rolis.Chaos.pp_outcome o);
  check_bool "checkpoints exercised" true (o.Rolis.Chaos.checkpoints > 0);
  check_bool "truncation exercised" true (o.Rolis.Chaos.truncations > 0)

(* ---------- live reconfiguration ---------- *)

(* A spare brought in *after* the cluster has truncated its journals can
   no longer be bootstrapped from the log alone: promotion must go
   through the newest checkpoint image plus the retained tail. The
   property: for any seed, the add completes, the new voter appears in a
   higher membership generation, and its database matches the deployment
   (money conserved, full convergence). *)
let learner_after_truncation_qcheck =
  QCheck.Test.make
    ~name:"learner added after truncation converges from image + tail" ~count:5
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let stopped = ref false in
      let accounts = 30 in
      let cfg =
        {
          (test_cfg ()) with
          Rolis.Config.archive_entries = true;
          checkpoint_interval = 100 * ms;
          checkpoint_retention = 300 * ms;
          spare_replicas = 1;
          seed = Int64.of_int (0x5EED + seed);
        }
      in
      let cluster =
        Rolis.Cluster.create cfg (transfer_app ~accounts ~initial:500 ~stopped)
      in
      let eng = Rolis.Cluster.engine cluster in
      let added = ref false in
      (* Long healthy prefix so checkpoints land and truncation discards
         the journal head; only then bring the dark spare (slot 3) in. *)
      ignore
        (Sim.Engine.spawn eng ~name:"add-op" (fun () ->
             Sim.Engine.sleep (1_500 * ms);
             added := Rolis.Cluster.add_replica cluster 3));
      Rolis.Cluster.run cluster ~duration:(2_500 * ms) ();
      stopped := true;
      Rolis.Cluster.run cluster ~duration:(1 * s) ();
      let viols =
        Rolis.Check.agreement cluster
        @ Rolis.Check.membership_agreement cluster
        @ Rolis.Check.convergence cluster
      in
      Rolis.Cluster.truncation_rounds cluster > 0
      && !added
      && List.mem 3 (Rolis.Cluster.members cluster)
      && Rolis.Cluster.membership_gen cluster > 0
      && Rolis.Replica.is_alive (Rolis.Cluster.replica cluster 3)
      && total_money (Rolis.Replica.db (Rolis.Cluster.replica cluster 3)) ~accounts
         = accounts * 500
      && viols = [])

(* End-to-end rolling restart: clients keep committing while a planned
   handoff runs and then every voter is cycled (crash + restart) one at a
   time. Exactly-once must hold across all three generations of each
   node's life, and money must be conserved everywhere. *)
let test_rolling_restart_exactly_once () =
  let stopped = ref false in
  let accounts = 24 in
  let cfg =
    {
      (test_cfg ()) with
      Rolis.Config.clients = 4;
      archive_entries = true;
      checkpoint_interval = 200 * ms;
      checkpoint_retention = 300 * ms;
      min_members = 2;
    }
  in
  let cluster =
    Rolis.Cluster.create cfg (transfer_app ~accounts ~initial:1_000 ~stopped)
  in
  let eng = Rolis.Cluster.engine cluster and net = Rolis.Cluster.network cluster in
  let sessions =
    Array.init cfg.Rolis.Config.clients (fun cid ->
        let crng = Sim.Rng.split (Sim.Engine.rng eng) in
        Rolis.Client.spawn net ~cfg ~cid ~stopped
          ~stats:(Rolis.Cluster.client_stats cluster)
          ~gen:(fun () -> Rolis.Chaos.bank_payload crng ~accounts)
          ())
  in
  let cycled = ref [] in
  ignore
    (Sim.Engine.spawn eng ~name:"rolling-op" (fun () ->
         Sim.Engine.sleep (600 * ms);
         ignore (Rolis.Cluster.handoff cluster ~target:1);
         List.iter
           (fun i ->
             Rolis.Cluster.crash_replica cluster i;
             Sim.Engine.sleep (400 * ms);
             Rolis.Cluster.restart_replica cluster i;
             Sim.Engine.sleep (500 * ms);
             cycled := i :: !cycled)
           (Rolis.Cluster.members cluster)));
  Rolis.Cluster.run cluster ~duration:(5 * s) ();
  stopped := true;
  Rolis.Cluster.run cluster ~duration:(2_500 * ms) ();
  check_int "all three voters were cycled" 3 (List.length !cycled);
  let sum f = Array.fold_left (fun a c -> a + f c) 0 sessions in
  check_bool "clients committed through the operations" true
    (sum Rolis.Client.acked_count > 0);
  check_bool "leader churn was visible to clients as redirects" true
    (sum Rolis.Client.redirects > 0);
  Array.iter
    (fun r ->
      if Rolis.Replica.is_alive r then
        check_int
          (Printf.sprintf "money conserved on replica %d" (Rolis.Replica.id r))
          (accounts * 1_000)
          (total_money (Rolis.Replica.db r) ~accounts))
    (Rolis.Cluster.replicas cluster);
  let acked = Array.to_list sessions |> List.concat_map Rolis.Client.acked_seqs in
  check_bool "sanity: something was acked" true (acked <> []);
  let viols =
    Rolis.Check.membership_agreement cluster
    @ Rolis.Check.exactly_once cluster ~acked
  in
  if viols <> [] then
    Alcotest.failf "rolling restart violated invariants: %s"
      (String.concat "; " (List.map (fun v -> v.Rolis.Check.detail) viols))

(* One deterministic rolling-operations chaos seed: the nemesis schedules
   add / remove / handoff / rolling-restart operations against a pool with
   spares while clients run, and every invariant (agreement across
   membership generations, exactly-once with evidence harvested from
   removed nodes) must hold. *)
let test_chaos_ops_seed () =
  let o =
    Rolis.Chaos.run_seed ~ops:true ~history_warmup:(1 * s)
      ~duration:(3 * s) ~seed:11 ()
  in
  if not (Rolis.Chaos.ok o) then
    Alcotest.failf "ops chaos seed failed: %s"
      (Format.asprintf "%a" Rolis.Chaos.pp_outcome o);
  check_bool "management-plane operations ran" true
    (o.Rolis.Chaos.adds + o.Rolis.Chaos.removes + o.Rolis.Chaos.handoffs > 0)

(* ---------- Sharding ---------- *)

(* Router sanity: TPC-C warehouse partitioning and YCSB key ranges must
   tile the keyspace — every warehouse/key maps to exactly the shard
   whose range contains it. *)
let test_router_partitioning () =
  let warehouses = 13 and shards = 4 in
  let r = Rolis.Router.tpcc ~warehouses ~shards in
  check_int "router shard count" shards (Rolis.Router.shards r);
  for s = 0 to shards - 1 do
    let lo, hi = Rolis.Router.tpcc_warehouse_range r ~warehouses s in
    check_bool (Printf.sprintf "shard %d range non-empty" s) true (lo <= hi);
    for w = lo to hi do
      check_int
        (Printf.sprintf "warehouse %d maps to shard %d" w s)
        s
        (Rolis.Router.tpcc_shard_of_warehouse r w)
    done;
    (* The range map is also what shard_of_key sees for encoded keys. *)
    let k = Store.Keycodec.encode [ Store.Keycodec.I lo; Store.Keycodec.I 7 ] in
    check_int "district key routes with its warehouse" s
      (Rolis.Router.shard_of_key r k)
  done;
  (* Ranges tile [1..warehouses] without gap or overlap. *)
  let covered = ref 0 in
  for s = 0 to shards - 1 do
    let lo, hi = Rolis.Router.tpcc_warehouse_range r ~warehouses s in
    covered := !covered + (hi - lo + 1)
  done;
  check_int "warehouse ranges tile the space" warehouses !covered;
  let keys = 1000 and yshards = 3 in
  let yr = Rolis.Router.ycsb ~keys ~shards:yshards in
  let ycovered = ref 0 in
  for s = 0 to yshards - 1 do
    let lo, hi = Rolis.Router.ycsb_key_range yr ~keys s in
    ycovered := !ycovered + (hi - lo + 1);
    check_int
      (Printf.sprintf "ycsb lo of shard %d routes home" s)
      s
      (Rolis.Router.shard_of_key yr (Store.Keycodec.encode [ Store.Keycodec.I lo ]));
    check_int
      (Printf.sprintf "ycsb hi of shard %d routes home" s)
      s
      (Rolis.Router.shard_of_key yr (Store.Keycodec.encode [ Store.Keycodec.I hi ]))
  done;
  check_int "ycsb ranges tile the space" keys !ycovered

(* The satellite e2e: crash the coordinator shard's leader after a
   prepare is durable but (with overwhelming likelihood) before the
   decision lands — the classic 2PC in-doubt window. Every transaction
   is cross-shard (cross_pct = 1), so the crash interrupts live 2PC
   rounds; the freshly elected leader must recover the staged intents,
   the session table and any already-replicated decision from its
   journal, and the drivers' retries must drive every round to one
   atomic outcome. Afterwards: cross-shard atomicity, per-shard
   exactly-once, and global money conservation. *)
let test_shard_coordinator_crash_recovers_decision () =
  let shards = 2 and drivers = 4 and accounts_per_shard = 16 in
  let accounts = shards * accounts_per_shard in
  let router = Rolis.Router.ycsb ~keys:accounts ~shards in
  let cfg =
    {
      Rolis.Config.default with
      Rolis.Config.replicas = 3;
      workers = 2;
      cores = 4;
      batch_size = 50;
      physical_serialization = true;
      archive_entries = true;
      heartbeat_interval = 50 * ms;
      election_timeout = 300 * ms;
      clients = drivers;
      seed = 7L;
      shards;
      cross_pct = 1.0;
    }
  in
  let stopped = ref false in
  let dep_ref = ref None in
  let crashed = ref false in
  (* Fires on every durability commit on shard 0; the first Prepared mark
     schedules a leader crash 1 ms later — inside the in-doubt window of
     whatever rounds are then in flight. *)
  let on_durable ~shard ~replica:_ ~stream:_ ~idx:_ (e : Store.Wire.entry) =
    if shard = 0 && not !crashed then
      let has_prepare =
        List.exists
          (fun (t : Store.Wire.txn_log) ->
            match t.Store.Wire.decision with
            | Some d -> d.Store.Wire.d_phase = Store.Wire.Prepared
            | None -> false)
          e.Store.Wire.txns
      in
      if has_prepare then begin
        crashed := true;
        match !dep_ref with
        | None -> ()
        | Some dep ->
            let cluster = Rolis.Shard.cluster dep 0 in
            let eng = Rolis.Shard.engine dep in
            Sim.Engine.schedule eng
              (Sim.Engine.now eng + (1 * ms))
              (fun () ->
                match Rolis.Cluster.leader cluster with
                | Some r ->
                    Rolis.Cluster.crash_replica cluster (Rolis.Replica.id r)
                | None -> ())
      end
  in
  let dep =
    Rolis.Shard.create ~on_durable cfg router
      (fun ~shard ->
        Rolis.Chaos.bank_app
          ~range:(Rolis.Router.ycsb_key_range router ~keys:accounts shard)
          ~accounts ~stopped ())
      ~gen:(fun ~rng ~driver:_ () ->
        (* Always cross-shard: a withdraw on one shard paired with a
           credit on the other. *)
        let sa = Sim.Rng.int rng shards in
        let sb = (sa + 1) mod shards in
        let alo, ahi = Rolis.Router.ycsb_key_range router ~keys:accounts sa in
        let blo, bhi = Rolis.Router.ycsb_key_range router ~keys:accounts sb in
        let a = alo + Sim.Rng.int rng (ahi - alo + 1) in
        let b = blo + Sim.Rng.int rng (bhi - blo + 1) in
        let amount = 1 + Sim.Rng.int rng 10 in
        Rolis.Shard.Multi
          [
            (sa, Printf.sprintf "w %d %d" a amount);
            (sb, Printf.sprintf "c %d %d" b amount);
          ])
  in
  dep_ref := Some dep;
  Rolis.Shard.run dep ~duration:(2 * s) ();
  check_bool "a prepare was observed and the coordinator leader crashed" true
    !crashed;
  (* Quiesce, restart the dead replica, drain replay, then audit. *)
  check_bool "drivers quiesced" true (Rolis.Shard.quiesce dep);
  Array.iter
    (fun cluster ->
      Array.iter
        (fun r ->
          if not (Rolis.Replica.is_alive r) then
            Rolis.Cluster.restart_replica cluster (Rolis.Replica.id r))
        (Rolis.Cluster.replicas cluster))
    (Rolis.Shard.clusters dep);
  Rolis.Shard.run dep ~duration:(2 * s) ();
  check_bool "cross-shard transactions committed through the crash" true
    (Rolis.Shard.cross_committed dep > 0);
  let clusters = Rolis.Shard.clusters dep in
  let viols =
    (Array.to_list clusters
    |> List.concat_map (fun c ->
           Rolis.Check.agreement c @ Rolis.Check.convergence c))
    @ (List.init shards (fun sh ->
           Rolis.Check.exactly_once clusters.(sh)
             ~acked:(Rolis.Shard.acked_seqs dep sh))
      |> List.concat)
    @ Rolis.Check.cross_shard clusters
    @ Rolis.Check.money_sharded clusters ~table:Rolis.Chaos.bank_table
        ~expected:(accounts * Rolis.Chaos.initial_balance)
  in
  if viols <> [] then
    Alcotest.failf "coordinator crash violated invariants: %s"
      (String.concat "; "
         (List.map
            (fun v ->
              Printf.sprintf "%s: %s" v.Rolis.Check.check v.Rolis.Check.detail)
            viols))

(* One deterministic sharded chaos seed end-to-end through the harness:
   independent per-shard nemeses, cross-shard 2PC under fire, and the
   full final audit (including the cross-shard oracle and global
   conservation). *)
let test_sharded_chaos_seed () =
  let o = Rolis.Chaos.run_sharded_seed ~duration:(2 * s) ~seed:3 () in
  if not (Rolis.Chaos.ok o) then
    Alcotest.failf "sharded chaos seed failed: %s"
      (Format.asprintf "%a" Rolis.Chaos.pp_outcome o);
  check_int "outcome records the shard count" 2 o.Rolis.Chaos.shards;
  check_bool "cross-shard transactions committed under chaos" true
    (o.Rolis.Chaos.cross_committed > 0);
  check_bool "faults actually fired" true (o.Rolis.Chaos.crashes > 0)

(* ---------- Trace ---------- *)

(* Every released sampled transaction emits 6 spans; with [capacity = 8]
   and [sample_interval = 1], ten transactions overflow the worker ring
   and only the newest 8 spans survive. *)
let test_trace_ring_wraparound () =
  let eng = Sim.Engine.create () in
  let st = Rolis.Stats.create eng in
  let tr =
    Rolis.Trace.create eng ~stats:st ~workers:1 ~sample_interval:1 ~capacity:8
  in
  check_bool "enabled at interval 1" true (Rolis.Trace.enabled tr);
  (* Stamps use [Sim.Engine.now], so drive the pipeline from scheduled
     events at t > 0 as the replica does (0 means "stage not reached"). *)
  for i = 1 to 10 do
    Sim.Engine.schedule eng (i * ms) (fun () ->
        match Rolis.Trace.sample tr ~worker:0 ~ts:i ~exec_start:((i * ms) - 100) with
        | None -> Alcotest.fail "interval 1 must sample every transaction"
        | Some tok ->
            Rolis.Trace.note_serialized tr tok;
            Rolis.Trace.note_flushed tr ~ts:i;
            Rolis.Trace.note_durable tr ~ts:i;
            Rolis.Trace.note_released tr tok)
  done;
  Sim.Engine.run eng;
  let spans = Rolis.Trace.spans tr in
  check_int "ring bounded at capacity" 8 (List.length spans);
  (* 6 spans per transaction: the survivors all belong to the last two. *)
  List.iter
    (fun sp -> check_bool "only newest spans survive" true (sp.Rolis.Trace.sp_ts >= 9))
    spans;
  check_int "no tokens left pending" 0 (Rolis.Trace.pending_count tr);
  (* The histograms saw every released transaction, wrapped or not. *)
  check_int "stage histogram kept all samples" 10
    (Sim.Metrics.Hist.count
       (Rolis.Stats.stage_hist st (Rolis.Trace.stage_index Rolis.Trace.Execute)))

let run_traced_cluster ~interval =
  let cfg =
    { (test_cfg ()) with Rolis.Config.trace_sample_interval = interval }
  in
  let cluster = Rolis.Cluster.create cfg (Rolis.App.counter_app ~keys:100) in
  Rolis.Cluster.run cluster ~warmup:(200 * ms) ~duration:(1 * s) ();
  cluster

let leader_spans cluster =
  Rolis.Trace.spans (Rolis.Replica.trace (Rolis.Cluster.replica cluster 0))

let test_trace_sampling_deterministic () =
  let c1 = run_traced_cluster ~interval:16 in
  let c2 = run_traced_cluster ~interval:16 in
  let s1 = leader_spans c1 and s2 = leader_spans c2 in
  check_bool "spans recorded" true (s1 <> []);
  check_bool "same seed, same interval -> identical spans" true (s1 = s2);
  check_bool "pipeline stages present" true
    (List.exists (fun sp -> sp.Rolis.Trace.sp_stage = Rolis.Trace.Execute) s1
    && List.exists (fun sp -> sp.Rolis.Trace.sp_stage = Rolis.Trace.Release) s1);
  (* Follower rings hold replay spans. *)
  let follower =
    Rolis.Trace.spans (Rolis.Replica.trace (Rolis.Cluster.replica c1 1))
  in
  check_bool "followers record replay spans" true
    (List.exists (fun sp -> sp.Rolis.Trace.sp_stage = Rolis.Trace.Replay) follower);
  let breakdown = Rolis.Cluster.stage_breakdown c1 in
  check_bool "stage breakdown covers the pipeline" true
    (List.exists (fun (name, n, _, _, _) -> name = "execute" && n > 0) breakdown)

let test_trace_zero_overhead () =
  (* Tracing performs no virtual-time operations, so simulated results
     are bit-identical whether sampling is off or on — the "< 3%
     throughput change" acceptance criterion is exactly 0 in this
     deterministic setting. *)
  let on = run_traced_cluster ~interval:64 in
  let off = run_traced_cluster ~interval:0 in
  check_int "released identical with tracing off" (Rolis.Cluster.released on)
    (Rolis.Cluster.released off);
  check_bool "latency histogram identical with tracing off" true
    (Sim.Metrics.Hist.values (Rolis.Cluster.latency on)
    = Sim.Metrics.Hist.values (Rolis.Cluster.latency off));
  check_int "tracing off records nothing" 0 (List.length (leader_spans off));
  (* Replay lag is telemetry, not tracing: it feeds the bench-diff lag
     gate, so it records with sampling off. Every pipeline stage stays
     silent. *)
  check_bool "tracing off reports no pipeline stages" true
    (List.for_all
       (fun (name, _, _, _, _) -> name = "replay_lag")
       (Rolis.Cluster.stage_breakdown off));
  check_bool "lag telemetry survives tracing off" true
    (Rolis.Cluster.replay_lag off <> None)

(* The Fig. 3 scenario through the tracing lens: partition the leader so
   it steps down and abandons its speculative pipeline. Every pending
   sampled transaction must come out as a dropped span — none may leak
   in the pending table, and none may feed the stage histograms. *)
let test_trace_dropped_not_leaked_on_stepdown () =
  let cfg = { (test_cfg ()) with Rolis.Config.trace_sample_interval = 4 } in
  let cluster = Rolis.Cluster.create cfg (Rolis.App.counter_app ~keys:100) in
  let eng = Rolis.Cluster.engine cluster in
  Sim.Engine.schedule eng (500 * ms) (fun () ->
      let net = Rolis.Cluster.network cluster in
      Sim.Net.partition net 0 1;
      Sim.Net.partition net 0 2);
  Rolis.Cluster.run cluster ~duration:(2 * s) ();
  let old_leader = Rolis.Cluster.replica cluster 0 in
  check_bool "old leader stepped down" false (Rolis.Replica.is_serving old_leader);
  let tr = Rolis.Replica.trace old_leader in
  check_int "no sampled tokens leak across step-down" 0
    (Rolis.Trace.pending_count tr);
  let spans = Rolis.Trace.spans tr in
  check_bool "abandoned transactions emitted as dropped spans" true
    (List.exists (fun sp -> sp.Rolis.Trace.sp_dropped) spans);
  List.iter
    (fun sp ->
      check_bool "span widths never negative" true
        (sp.Rolis.Trace.sp_end >= sp.Rolis.Trace.sp_start))
    spans;
  (* The new leader's pipeline keeps tracing cleanly after the failover. *)
  match Rolis.Cluster.leader cluster with
  | None -> Alcotest.fail "no leader after partition"
  | Some r ->
      check_bool "new leader records released (non-dropped) spans" true
        (List.exists
           (fun sp ->
             sp.Rolis.Trace.sp_stage = Rolis.Trace.Release
             && not sp.Rolis.Trace.sp_dropped)
           (Rolis.Trace.spans (Rolis.Replica.trace r)))

let test_trace_create_validation () =
  let eng = Sim.Engine.create () in
  let st = Rolis.Stats.create eng in
  let bad f = match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "accepted invalid trace configuration"
  in
  bad (fun () ->
      Rolis.Trace.create eng ~stats:st ~workers:1 ~sample_interval:(-1) ~capacity:8);
  bad (fun () ->
      Rolis.Trace.create eng ~stats:st ~workers:1 ~sample_interval:1 ~capacity:0);
  bad (fun () ->
      Rolis.Trace.create eng ~stats:st ~workers:0 ~sample_interval:1 ~capacity:8)

(* ---------- Stats window ---------- *)

let test_stats_window_excludes_prewarmup () =
  let eng = Sim.Engine.create () in
  let st = Rolis.Stats.create eng in
  (* A release whose transaction began before the window reset must not
     pollute the latency histogram — but it still counts as a release
     for throughput. *)
  Sim.Engine.schedule eng (100 * ms) (fun () -> Rolis.Stats.reset_window st);
  Sim.Engine.schedule eng (150 * ms) (fun () ->
      Rolis.Stats.note_released st ~start:(50 * ms) ~latency:(100 * ms) ~bytes:8;
      Rolis.Stats.note_released st ~start:(120 * ms) ~latency:(30 * ms) ~bytes:8);
  Sim.Engine.run eng;
  check_int "both releases counted" 2 (Rolis.Stats.released st);
  check_int "pre-window latency sample excluded" 1
    (Sim.Metrics.Hist.count (Rolis.Stats.latency st));
  check_int "surviving sample is the post-window one" (30 * ms)
    (Sim.Metrics.Hist.percentile (Rolis.Stats.latency st) 50.0)

let () =
  Alcotest.run "rolis"
    [
      ( "watermark",
        [
          Alcotest.test_case "min law" `Quick test_watermark_min_law;
          Alcotest.test_case "monotone" `Quick test_watermark_monotone;
          Alcotest.test_case "epoch sealing (Fig 8)" `Quick test_watermark_epoch_sealing;
          Alcotest.test_case "skipped epoch" `Quick test_watermark_skipped_epoch;
          QCheck_alcotest.to_alcotest watermark_qcheck;
          QCheck_alcotest.to_alcotest watermark_sealing_qcheck;
          QCheck_alcotest.to_alcotest watermark_incremental_qcheck;
          Alcotest.test_case "scan count amortized" `Quick
            test_watermark_scan_amortized;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "basic release" `Quick test_basic_release;
          Alcotest.test_case "convergence after drain" `Quick test_convergence_after_drain;
          Alcotest.test_case "single-stream strawman" `Quick test_single_stream_mode;
          Alcotest.test_case "sharded streams" `Quick test_sharded_stream_mode;
          Alcotest.test_case "networked clients" `Quick test_networked_clients_mode;
          Alcotest.test_case "replay disabled" `Quick test_disable_replay_mode;
          Alcotest.test_case "bulk replay convergence" `Quick
            test_bulk_replay_convergence;
          Alcotest.test_case "parallel replay over hash index" `Quick
            test_parallel_hash_replay_convergence;
        ] );
      ( "failover",
        [
          Alcotest.test_case "money conservation (Fig 3)" `Quick
            test_failover_money_conservation;
          Alcotest.test_case "straddler backlog drains on promotion" `Quick
            test_failover_straddler_backlog;
          Alcotest.test_case "gap then recovery" `Quick test_failover_gap_then_recovery;
          Alcotest.test_case "released results survive crash" `Quick
            test_released_results_survive_crash;
          Alcotest.test_case "old leader tainted" `Quick
            test_old_leader_tainted_on_partition;
        ] );
      ( "batching",
        [
          QCheck_alcotest.to_alcotest batcher_adaptive_qcheck;
          Alcotest.test_case "fixed policy golden (counter)" `Quick
            test_fixed_golden_counter;
          Alcotest.test_case "fixed policy golden (tpcc)" `Quick
            test_fixed_golden_tpcc;
          Alcotest.test_case "adaptive p50 at least 2x below fixed" `Quick
            test_adaptive_p50_win;
          Alcotest.test_case "adaptive failover conservation" `Quick
            test_adaptive_failover_conservation;
        ] );
      ( "config",
        [
          Alcotest.test_case "timing constraints" `Quick test_config_validate_timing;
          Alcotest.test_case "client/admission constraints" `Quick
            test_config_validate_clients;
          Alcotest.test_case "batching constraints" `Quick
            test_config_validate_batching;
          Alcotest.test_case "checkpoint constraints" `Quick
            test_config_validate_checkpoint;
          Alcotest.test_case "replay fan-out and hash-table constraints" `Quick
            test_config_validate_replay;
          Alcotest.test_case "reconfiguration constraints" `Quick
            test_config_validate_reconfig;
        ] );
      ( "clients",
        [
          Alcotest.test_case "release visibility across crash" `Quick
            test_release_visibility_across_crash;
          Alcotest.test_case "admission backpressure" `Quick test_admission_backpressure;
        ] );
      ( "reads",
        [
          Alcotest.test_case "follower reads e2e" `Quick test_follower_reads_e2e;
          Alcotest.test_case "lease partition parks" `Quick
            test_lease_partition_parks;
          Alcotest.test_case "chaos with follower reads" `Quick
            test_follower_reads_chaos;
        ] );
      ( "bootstrap",
        [
          Alcotest.test_case "new replica sync" `Quick test_bootstrap_new_replica;
          Alcotest.test_case "restart rejoin convergence" `Quick
            test_restart_rejoin_convergence;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "roundtrip" `Quick test_checkpoint_roundtrip;
          Alcotest.test_case "checkpoint + log replay" `Quick
            test_checkpoint_plus_log_replay;
          QCheck_alcotest.to_alcotest checkpoint_image_multiset_qcheck;
          QCheck_alcotest.to_alcotest checkpoint_fuzzy_tail_qcheck;
          Alcotest.test_case "truncation + restart convergence" `Quick
            test_checkpoint_truncation_restart;
          Alcotest.test_case "chaos seed with checkpointing" `Quick
            test_chaos_checkpoint_seed;
        ] );
      ( "reconfig",
        [
          QCheck_alcotest.to_alcotest learner_after_truncation_qcheck;
          Alcotest.test_case "rolling restart exactly-once" `Quick
            test_rolling_restart_exactly_once;
          Alcotest.test_case "ops chaos seed" `Quick test_chaos_ops_seed;
        ] );
      ( "shard",
        [
          Alcotest.test_case "router partitioning" `Quick test_router_partitioning;
          Alcotest.test_case "coordinator crash recovers decision" `Quick
            test_shard_coordinator_crash_recovers_decision;
          Alcotest.test_case "sharded chaos seed" `Quick test_sharded_chaos_seed;
        ] );
      ( "trace",
        [
          Alcotest.test_case "ring wraparound" `Quick test_trace_ring_wraparound;
          Alcotest.test_case "deterministic sampling" `Quick
            test_trace_sampling_deterministic;
          Alcotest.test_case "zero virtual-time overhead" `Quick
            test_trace_zero_overhead;
          Alcotest.test_case "dropped not leaked on step-down" `Quick
            test_trace_dropped_not_leaked_on_stepdown;
          Alcotest.test_case "create validation" `Quick test_trace_create_validation;
        ] );
      ( "stats",
        [
          Alcotest.test_case "window excludes pre-warm-up latency" `Quick
            test_stats_window_excludes_prewarmup;
        ] );
    ]
