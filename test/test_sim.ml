(* Tests for the discrete-event simulation substrate. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---------- Heap ---------- *)

let test_heap_order () =
  let h = Sim.Heap.create ~cmp:compare in
  List.iter (Sim.Heap.push h) [ 5; 1; 4; 1; 3; 9; 2 ];
  let rec drain acc =
    match Sim.Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  Alcotest.(check (list int)) "sorted drain" [ 1; 1; 2; 3; 4; 5; 9 ] (drain [])

let test_heap_empty () =
  let h = Sim.Heap.create ~cmp:compare in
  check_bool "empty" true (Sim.Heap.is_empty h);
  check_bool "pop none" true (Sim.Heap.pop h = None);
  Alcotest.check_raises "pop_exn raises" (Invalid_argument "Heap.pop_exn: empty heap")
    (fun () -> ignore (Sim.Heap.pop_exn h))

let heap_qcheck =
  QCheck.Test.make ~name:"heap drains any list in sorted order" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Sim.Heap.create ~cmp:compare in
      List.iter (Sim.Heap.push h) xs;
      let rec drain acc =
        match Sim.Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain [] = List.sort compare xs)

(* ---------- Rng ---------- *)

let test_rng_deterministic () =
  let a = Sim.Rng.create 7L and b = Sim.Rng.create 7L in
  for _ = 1 to 100 do
    check_bool "same stream" true (Sim.Rng.int64 a = Sim.Rng.int64 b)
  done

let test_rng_split_independent () =
  let a = Sim.Rng.create 7L in
  let c = Sim.Rng.split a in
  (* Drawing from the parent after the split must not change the child's
     stream relative to a reference reconstruction. *)
  let a' = Sim.Rng.create 7L in
  let c' = Sim.Rng.split a' in
  ignore (Sim.Rng.int64 a');
  for _ = 1 to 50 do
    check_bool "child unaffected" true (Sim.Rng.int64 c = Sim.Rng.int64 c')
  done

let rng_bounds_qcheck =
  QCheck.Test.make ~name:"Rng.int stays in bounds" ~count:500
    QCheck.(pair small_int (int_range 1 1_000_000))
    (fun (seed, n) ->
      let r = Sim.Rng.create (Int64.of_int seed) in
      let v = Sim.Rng.int r n in
      v >= 0 && v < n)

let test_rng_int_in () =
  let r = Sim.Rng.create 1L in
  for _ = 1 to 1000 do
    let v = Sim.Rng.int_in r 10 20 in
    check_bool "in range" true (v >= 10 && v <= 20)
  done

let test_rng_uniformity () =
  (* Coarse sanity: each of 10 cells of [0,10) gets 5-15% of 10k draws. *)
  let r = Sim.Rng.create 99L in
  let cells = Array.make 10 0 in
  for _ = 1 to 10_000 do
    let v = Sim.Rng.int r 10 in
    cells.(v) <- cells.(v) + 1
  done;
  Array.iter (fun c -> check_bool "roughly uniform" true (c > 500 && c < 1500)) cells

(* ---------- Engine ---------- *)

let test_engine_time_order () =
  let eng = Sim.Engine.create () in
  let log = ref [] in
  Sim.Engine.schedule eng 30 (fun () -> log := 3 :: !log);
  Sim.Engine.schedule eng 10 (fun () -> log := 1 :: !log);
  Sim.Engine.schedule eng 20 (fun () -> log := 2 :: !log);
  Sim.Engine.run eng;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !log);
  check_int "clock at last event" 30 (Sim.Engine.now eng)

let test_engine_fifo_ties () =
  let eng = Sim.Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Sim.Engine.schedule eng 10 (fun () -> log := i :: !log)
  done;
  Sim.Engine.run eng;
  Alcotest.(check (list int)) "FIFO among equal times" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_process_sleep () =
  let eng = Sim.Engine.create () in
  let trace = ref [] in
  let _p =
    Sim.Engine.spawn eng (fun () ->
        trace := (0, Sim.Engine.time ()) :: !trace;
        Sim.Engine.sleep 100;
        trace := (1, Sim.Engine.time ()) :: !trace;
        Sim.Engine.sleep 50;
        trace := (2, Sim.Engine.time ()) :: !trace)
  in
  Sim.Engine.run eng;
  Alcotest.(check (list (pair int int)))
    "sleep advances virtual time"
    [ (0, 0); (1, 100); (2, 150) ]
    (List.rev !trace)

let test_run_until () =
  let eng = Sim.Engine.create () in
  let hits = ref 0 in
  let _p =
    Sim.Engine.spawn eng (fun () ->
        let continue = ref true in
        while !continue do
          Sim.Engine.sleep 10;
          incr hits;
          if !hits > 1000 then continue := false
        done)
  in
  Sim.Engine.run ~until:105 eng;
  check_int "ten sleeps fit in 105ns" 10 !hits;
  check_int "clock clamped to until" 105 (Sim.Engine.now eng)

let test_kill_process () =
  let eng = Sim.Engine.create () in
  let hits = ref 0 in
  let p =
    Sim.Engine.spawn eng (fun () ->
        while true do
          Sim.Engine.sleep 10;
          incr hits
        done)
  in
  Sim.Engine.schedule eng 35 (fun () -> Sim.Engine.kill p);
  Sim.Engine.run ~until:1000 eng;
  check_int "killed after 3 wakeups" 3 !hits;
  check_bool "marked dead" false (Sim.Engine.alive p)

let test_nested_spawn () =
  let eng = Sim.Engine.create () in
  let log = ref [] in
  let _p =
    Sim.Engine.spawn eng (fun () ->
        log := "outer" :: !log;
        let _child =
          Sim.Engine.spawn eng (fun () ->
              Sim.Engine.sleep 10;
              log := "child" :: !log)
        in
        Sim.Engine.sleep 50;
        log := "outer-end" :: !log)
  in
  Sim.Engine.run eng;
  Alcotest.(check (list string))
    "nested spawn interleaves" [ "outer"; "child"; "outer-end" ] (List.rev !log)

let test_process_exception_surfaces () =
  let eng = Sim.Engine.create () in
  let _p = Sim.Engine.spawn eng (fun () -> failwith "boom") in
  match Sim.Engine.run eng with
  | () -> Alcotest.fail "expected the process failure to surface"
  | exception Sim.Engine.Process_failure (_, Failure msg) ->
      Alcotest.(check string) "original exception carried" "boom" msg

let test_schedule_in_past_clamps () =
  let eng = Sim.Engine.create () in
  let fired_at = ref (-1) in
  Sim.Engine.schedule eng 100 (fun () ->
      (* Scheduling before "now" must clamp to now, not travel back. *)
      Sim.Engine.schedule eng 5 (fun () -> fired_at := Sim.Engine.now eng));
  Sim.Engine.run eng;
  check_int "clamped to now" 100 !fired_at

let test_engine_determinism () =
  let run_once () =
    let eng = Sim.Engine.create ~seed:5L () in
    let rng = Sim.Rng.split (Sim.Engine.rng eng) in
    let log = Buffer.create 64 in
    for i = 1 to 5 do
      let _p =
        Sim.Engine.spawn eng (fun () ->
            for _ = 1 to 10 do
              Sim.Engine.sleep (Sim.Rng.int rng 100 + 1);
              Buffer.add_string log (Printf.sprintf "%d@%d;" i (Sim.Engine.time ()))
            done)
      in
      ()
    done;
    Sim.Engine.run eng;
    Buffer.contents log
  in
  Alcotest.(check string) "identical traces" (run_once ()) (run_once ())

(* ---------- Sync ---------- *)

let test_ivar () =
  let eng = Sim.Engine.create () in
  let iv = Sim.Sync.Ivar.create eng in
  let got = ref (-1) in
  let _reader =
    Sim.Engine.spawn eng (fun () -> got := Sim.Sync.Ivar.read iv)
  in
  let _writer =
    Sim.Engine.spawn eng (fun () ->
        Sim.Engine.sleep 50;
        Sim.Sync.Ivar.fill iv 42)
  in
  Sim.Engine.run eng;
  check_int "ivar value" 42 !got

let test_mailbox_fifo () =
  let eng = Sim.Engine.create () in
  let mb = Sim.Sync.Mailbox.create eng in
  let got = ref [] in
  let _reader =
    Sim.Engine.spawn eng (fun () ->
        for _ = 1 to 3 do
          got := Sim.Sync.Mailbox.recv mb :: !got
        done)
  in
  let _writer =
    Sim.Engine.spawn eng (fun () ->
        Sim.Engine.sleep 10;
        Sim.Sync.Mailbox.send mb 1;
        Sim.Sync.Mailbox.send mb 2;
        Sim.Engine.sleep 10;
        Sim.Sync.Mailbox.send mb 3)
  in
  Sim.Engine.run eng;
  Alcotest.(check (list int)) "FIFO" [ 1; 2; 3 ] (List.rev !got)

let test_mailbox_timeout () =
  let eng = Sim.Engine.create () in
  let mb = Sim.Sync.Mailbox.create eng in
  let first = ref (Some 0) and second = ref None in
  let _reader =
    Sim.Engine.spawn eng (fun () ->
        first := Sim.Sync.Mailbox.recv_timeout mb 50;
        second := Sim.Sync.Mailbox.recv_timeout mb 100)
  in
  let _writer =
    Sim.Engine.spawn eng (fun () ->
        Sim.Engine.sleep 120;
        Sim.Sync.Mailbox.send mb 9)
  in
  Sim.Engine.run eng;
  check_bool "first timed out" true (!first = None);
  check_bool "second delivered" true (!second = Some 9)

let test_mailbox_timeout_no_double_delivery () =
  (* A message sent after the timeout fired must stay in the queue (the
     timed-out waiter must not consume it). *)
  let eng = Sim.Engine.create () in
  let mb = Sim.Sync.Mailbox.create eng in
  let r = ref None in
  let _reader =
    Sim.Engine.spawn eng (fun () ->
        (match Sim.Sync.Mailbox.recv_timeout mb 10 with
        | Some _ -> Alcotest.fail "unexpected delivery"
        | None -> ());
        Sim.Engine.sleep 100;
        r := Sim.Sync.Mailbox.try_recv mb)
  in
  let _writer =
    Sim.Engine.spawn eng (fun () ->
        Sim.Engine.sleep 50;
        Sim.Sync.Mailbox.send mb 7)
  in
  Sim.Engine.run eng;
  check_bool "message kept" true (!r = Some 7)

let test_mutex_exclusion () =
  let eng = Sim.Engine.create () in
  let mu = Sim.Sync.Mutex.create eng in
  let inside = ref 0 and max_inside = ref 0 and total = ref 0 in
  for _ = 1 to 5 do
    let _p =
      Sim.Engine.spawn eng (fun () ->
          for _ = 1 to 10 do
            Sim.Sync.Mutex.lock mu;
            incr inside;
            if !inside > !max_inside then max_inside := !inside;
            Sim.Engine.sleep 7;
            decr inside;
            incr total;
            Sim.Sync.Mutex.unlock mu
          done)
    in
    ()
  done;
  Sim.Engine.run eng;
  check_int "mutual exclusion" 1 !max_inside;
  check_int "all sections ran" 50 !total

let test_semaphore () =
  let eng = Sim.Engine.create () in
  let sem = Sim.Sync.Semaphore.create eng 2 in
  let inside = ref 0 and max_inside = ref 0 in
  for _ = 1 to 6 do
    let _p =
      Sim.Engine.spawn eng (fun () ->
          Sim.Sync.Semaphore.acquire sem;
          incr inside;
          if !inside > !max_inside then max_inside := !inside;
          Sim.Engine.sleep 10;
          decr inside;
          Sim.Sync.Semaphore.release sem)
    in
    ()
  done;
  Sim.Engine.run eng;
  check_int "at most 2 inside" 2 !max_inside

let test_condition () =
  let eng = Sim.Engine.create () in
  let mu = Sim.Sync.Mutex.create eng in
  let cv = Sim.Sync.Condition.create eng in
  let ready = ref false and observed = ref false in
  let _waiter =
    Sim.Engine.spawn eng (fun () ->
        Sim.Sync.Mutex.lock mu;
        while not !ready do
          Sim.Sync.Condition.wait cv mu
        done;
        observed := true;
        Sim.Sync.Mutex.unlock mu)
  in
  let _signaller =
    Sim.Engine.spawn eng (fun () ->
        Sim.Engine.sleep 100;
        Sim.Sync.Mutex.lock mu;
        ready := true;
        Sim.Sync.Condition.broadcast cv;
        Sim.Sync.Mutex.unlock mu)
  in
  Sim.Engine.run eng;
  check_bool "condition woke waiter" true !observed

let test_waitgroup () =
  let eng = Sim.Engine.create () in
  let wg = Sim.Sync.Waitgroup.create eng in
  let finished_at = ref (-1) in
  Sim.Sync.Waitgroup.add wg 3;
  for i = 1 to 3 do
    let _p =
      Sim.Engine.spawn eng (fun () ->
          Sim.Engine.sleep (i * 100);
          Sim.Sync.Waitgroup.finish wg)
    in
    ()
  done;
  let _waiter =
    Sim.Engine.spawn eng (fun () ->
        Sim.Sync.Waitgroup.wait wg;
        finished_at := Sim.Engine.time ())
  in
  Sim.Engine.run eng;
  check_int "waits for slowest" 300 !finished_at

(* Model-based check: a semaphore of capacity k with random hold times
   never admits more than k holders, and every acquirer eventually runs. *)
let semaphore_model_qcheck =
  QCheck.Test.make ~name:"semaphore admits at most k concurrent holders" ~count:50
    QCheck.(pair (int_range 1 4) (list_of_size Gen.(1 -- 30) (int_range 1 50)))
    (fun (k, holds) ->
      let eng = Sim.Engine.create () in
      let sem = Sim.Sync.Semaphore.create eng k in
      let inside = ref 0 and max_inside = ref 0 and completed = ref 0 in
      List.iter
        (fun hold ->
          ignore
            (Sim.Engine.spawn eng (fun () ->
                 Sim.Sync.Semaphore.acquire sem;
                 incr inside;
                 if !inside > !max_inside then max_inside := !inside;
                 Sim.Engine.sleep hold;
                 decr inside;
                 incr completed;
                 Sim.Sync.Semaphore.release sem)))
        holds;
      Sim.Engine.run eng;
      !max_inside <= k && !completed = List.length holds)

(* ---------- Cpu ---------- *)

let test_cpu_inflation () =
  let eng = Sim.Engine.create () in
  let cpu = Sim.Cpu.create eng ~cores:4 ~efficiency:(fun ~active:_ -> 1.0) () in
  (* 8 threads on 4 cores: 2x oversubscription. *)
  for _ = 1 to 8 do
    Sim.Cpu.register cpu
  done;
  let t_end = ref 0 in
  let _p =
    Sim.Engine.spawn eng (fun () ->
        Sim.Cpu.consume cpu 100;
        t_end := Sim.Engine.time ())
  in
  Sim.Engine.run eng;
  check_int "oversubscription doubles cost" 200 !t_end

let test_cpu_efficiency_curve () =
  check_bool "single thread no penalty" true (Sim.Cpu.default_efficiency ~active:1 = 1.0);
  check_bool "penalty grows" true
    (Sim.Cpu.default_efficiency ~active:8 > Sim.Cpu.default_efficiency ~active:2);
  check_bool "flattens past 16" true
    (Sim.Cpu.default_efficiency ~active:32 = Sim.Cpu.default_efficiency ~active:16)

let test_cpu_utilization () =
  let eng = Sim.Engine.create () in
  let cpu = Sim.Cpu.create eng ~cores:2 ~efficiency:(fun ~active:_ -> 1.0) () in
  Sim.Cpu.register cpu;
  let _p =
    Sim.Engine.spawn eng (fun () ->
        Sim.Cpu.consume cpu 500;
        Sim.Engine.sleep 500)
  in
  Sim.Engine.run eng;
  (* 500ns of work over 1000ns x 2 cores = 25%. *)
  Alcotest.(check (float 0.001)) "utilization" 0.25 (Sim.Cpu.utilization cpu ~since:0)

(* ---------- Net ---------- *)

let test_net_delivery () =
  let eng = Sim.Engine.create () in
  let net = Sim.Net.create eng ~nodes:2 ~latency:(Sim.Net.Fixed 100) in
  let got_at = ref (-1) in
  let _receiver =
    Sim.Engine.spawn eng (fun () ->
        let msg = Sim.Net.recv net 1 in
        check_int "payload" 7 msg;
        got_at := Sim.Engine.time ())
  in
  let _sender = Sim.Engine.spawn eng (fun () -> Sim.Net.send net ~src:0 ~dst:1 7) in
  Sim.Engine.run eng;
  check_int "fixed latency" 100 !got_at

let test_net_crash_drops () =
  let eng = Sim.Engine.create () in
  let net = Sim.Net.create eng ~nodes:2 ~latency:(Sim.Net.Fixed 100) in
  Sim.Net.crash net 1;
  let _sender = Sim.Engine.spawn eng (fun () -> Sim.Net.send net ~src:0 ~dst:1 7) in
  Sim.Engine.run eng;
  check_int "no delivery to crashed node" 0 (Sim.Net.inbox_length net 1);
  Sim.Net.recover net 1;
  check_bool "recovered" true (Sim.Net.is_up net 1)

let test_net_crash_in_flight () =
  (* The destination crashes while the message is in flight: drop. *)
  let eng = Sim.Engine.create () in
  let net = Sim.Net.create eng ~nodes:2 ~latency:(Sim.Net.Fixed 100) in
  let _sender = Sim.Engine.spawn eng (fun () -> Sim.Net.send net ~src:0 ~dst:1 7) in
  Sim.Engine.schedule eng 50 (fun () -> Sim.Net.crash net 1);
  Sim.Engine.run eng;
  check_int "in-flight message dropped" 0 (Sim.Net.inbox_length net 1)

(* ---- WAN profiles ---- *)

(* One end-to-end delivery on a region-profiled net: returns the arrival
   time of a single message from [src] to [dst]. *)
let wan_deliver_once ~seed ~profile ~src ~dst =
  let eng = Sim.Engine.create ~seed:(Int64.of_int seed) () in
  let net = Sim.Net.create eng ~nodes:6 ~latency:(Sim.Net.Fixed 10) in
  let p = Option.get (Sim.Net.wan_profile profile) in
  let regions = Array.init 6 (fun i -> i mod p.Sim.Net.wp_regions) in
  Sim.Net.apply_regions net ~regions ~intra:p.Sim.Net.wp_intra
    ~inter:p.Sim.Net.wp_inter;
  let got_at = ref (-1) in
  let _receiver =
    Sim.Engine.spawn eng (fun () ->
        ignore (Sim.Net.recv net dst);
        got_at := Sim.Engine.time ())
  in
  let _sender = Sim.Engine.spawn eng (fun () -> Sim.Net.send net ~src ~dst 0) in
  Sim.Engine.run eng;
  !got_at

let model_base = function
  | Sim.Net.Fixed d -> d
  | Sim.Net.Uniform (lo, _) -> lo
  | Sim.Net.Exp_jitter { base; _ } -> base

(* Every named profile, on every ordered node pair: the delivery pays at
   least the link class's base delay, an inter-region hop is never
   cheaper than an intra-region one, and the sample is deterministic per
   engine seed. *)
let wan_profile_qcheck =
  QCheck.Test.make ~name:"wan profile links respect region bounds" ~count:60
    QCheck.(triple (int_range 0 5) (int_range 0 5) small_nat)
    (fun (src, dst, seed) ->
      QCheck.assume (src <> dst);
      List.for_all
        (fun name ->
          let p = Option.get (Sim.Net.wan_profile name) in
          let same_region =
            src mod p.Sim.Net.wp_regions = dst mod p.Sim.Net.wp_regions
          in
          let lo =
            model_base (if same_region then p.Sim.Net.wp_intra else p.Sim.Net.wp_inter)
          in
          let lat = wan_deliver_once ~seed ~profile:name ~src ~dst in
          lat >= lo
          && (same_region || lo > model_base p.Sim.Net.wp_intra)
          && lat = wan_deliver_once ~seed ~profile:name ~src ~dst)
        Sim.Net.wan_profile_names)

let test_wan_profile_lookup () =
  check_bool "wan3 known" true (Sim.Net.wan_profile "wan3" <> None);
  check_bool "metro3 known" true (Sim.Net.wan_profile "metro3" <> None);
  check_bool "default empty unknown" true (Sim.Net.wan_profile "" = None);
  check_bool "typo unknown" true (Sim.Net.wan_profile "wan9" = None);
  List.iter
    (fun n -> check_bool n true (Sim.Net.wan_profile n <> None))
    Sim.Net.wan_profile_names

let test_net_partition () =
  let eng = Sim.Engine.create () in
  let net = Sim.Net.create eng ~nodes:3 ~latency:(Sim.Net.Fixed 10) in
  Sim.Net.partition net 0 1;
  let _sender =
    Sim.Engine.spawn eng (fun () ->
        Sim.Net.send net ~src:0 ~dst:1 1;
        Sim.Net.send net ~src:0 ~dst:2 2)
  in
  Sim.Engine.run eng;
  check_int "partitioned link drops" 0 (Sim.Net.inbox_length net 1);
  check_int "other link delivers" 1 (Sim.Net.inbox_length net 2);
  Sim.Net.heal net 0 1;
  check_bool "healed" true (Sim.Net.is_connected net 0 1)

let test_net_crash_recover_in_flight () =
  (* Regression: the destination crashes *and recovers* while a message is
     in flight. The incarnation bump must still kill the message — a
     restarted node must never receive mail addressed to its previous
     incarnation. *)
  let eng = Sim.Engine.create () in
  let net = Sim.Net.create eng ~nodes:2 ~latency:(Sim.Net.Fixed 100) in
  let _sender = Sim.Engine.spawn eng (fun () -> Sim.Net.send net ~src:0 ~dst:1 7) in
  Sim.Engine.schedule eng 50 (fun () -> Sim.Net.crash net 1);
  Sim.Engine.schedule eng 60 (fun () -> Sim.Net.recover net 1);
  Sim.Engine.run eng;
  check_bool "node is back up" true (Sim.Net.is_up net 1);
  check_int "incarnation advanced" 1 (Sim.Net.incarnation net 1);
  check_int "pre-crash message never arrives" 0 (Sim.Net.inbox_length net 1);
  check_int "counted as dropped" 1 (Sim.Net.messages_dropped net);
  (* A fresh post-recovery message flows normally. *)
  let _sender2 = Sim.Engine.spawn eng (fun () -> Sim.Net.send net ~src:0 ~dst:1 8) in
  Sim.Engine.run eng;
  check_int "post-recovery message arrives" 1 (Sim.Net.inbox_length net 1)

let test_net_oneway_partition () =
  (* An asymmetric cut blocks exactly one direction. *)
  let eng = Sim.Engine.create () in
  let net = Sim.Net.create eng ~nodes:2 ~latency:(Sim.Net.Fixed 10) in
  Sim.Net.partition_oneway net ~src:0 ~dst:1;
  check_bool "0->1 cut" false (Sim.Net.can_send net ~src:0 ~dst:1);
  check_bool "1->0 open" true (Sim.Net.can_send net ~src:1 ~dst:0);
  check_bool "not fully connected" false (Sim.Net.is_connected net 0 1);
  let _s =
    Sim.Engine.spawn eng (fun () ->
        Sim.Net.send net ~src:0 ~dst:1 1;
        Sim.Net.send net ~src:1 ~dst:0 2)
  in
  Sim.Engine.run eng;
  check_int "cut direction drops" 0 (Sim.Net.inbox_length net 1);
  check_int "open direction delivers" 1 (Sim.Net.inbox_length net 0);
  check_int "drop accounted" 1 (Sim.Net.messages_dropped net);
  check_int "only the delivered message counts as sent" 1 (Sim.Net.messages_sent net);
  Sim.Net.heal net 0 1;
  check_bool "healed both ways" true (Sim.Net.is_connected net 0 1)

let test_net_fault_model () =
  (* drop = 1-epsilon loses almost everything; dup > 0 delivers extras;
     accounting separates sent / dropped / duplicated. *)
  let eng = Sim.Engine.create () in
  let net = Sim.Net.create eng ~nodes:2 ~latency:(Sim.Net.Fixed 10) in
  Sim.Net.set_default_faults net { Sim.Net.drop = 0.99; dup = 0.0; reorder = 0 };
  let n = 200 in
  let _s =
    Sim.Engine.spawn eng (fun () ->
        for i = 1 to n do
          Sim.Net.send net ~src:0 ~dst:1 i
        done)
  in
  Sim.Engine.run eng;
  let got = Sim.Net.inbox_length net 1 in
  check_bool "almost all lost" true (got < n / 4);
  check_int "sent + dropped = offered" n (Sim.Net.messages_sent net + Sim.Net.messages_dropped net);
  (* Duplication: every message arrives at least once, some twice. *)
  let eng2 = Sim.Engine.create () in
  let net2 = Sim.Net.create eng2 ~nodes:2 ~latency:(Sim.Net.Fixed 10) in
  Sim.Net.set_link_faults net2 ~src:0 ~dst:1 { Sim.Net.drop = 0.0; dup = 0.5; reorder = 0 };
  let _s2 =
    Sim.Engine.spawn eng2 (fun () ->
        for i = 1 to n do
          Sim.Net.send net2 ~src:0 ~dst:1 i
        done)
  in
  Sim.Engine.run eng2;
  let got2 = Sim.Net.inbox_length net2 1 in
  check_int "delivered = n + duplicates" (n + Sim.Net.messages_duplicated net2) got2;
  check_bool "some duplicates happened" true (Sim.Net.messages_duplicated net2 > 0);
  Sim.Net.clear_faults net2;
  let _s3 = Sim.Engine.spawn eng2 (fun () -> Sim.Net.send net2 ~src:0 ~dst:1 0) in
  let before = got2 in
  Sim.Engine.run eng2;
  check_int "cleared faults deliver exactly once" (before + 1) (Sim.Net.inbox_length net2 1)

let test_fault_plan_deterministic () =
  (* The same seed yields the same plan; plans keep a majority up and end
     quiesced. *)
  let plan_of seed =
    let rng = Sim.Rng.create seed in
    Sim.Fault.random_plan rng ~nodes:5 ~steps:30 ()
  in
  let p1 = plan_of 11L and p2 = plan_of 11L and p3 = plan_of 12L in
  check_bool "same seed, same plan" true (p1 = p2);
  check_bool "different seed, different plan" true (p1 <> p3);
  let down = Array.make 5 false in
  let ndown () = Array.fold_left (fun a b -> if b then a + 1 else a) 0 down in
  List.iter
    (fun { Sim.Fault.action; _ } ->
      (match action with
      | Sim.Fault.Crash i -> down.(i) <- true
      | Sim.Fault.Restart i -> down.(i) <- false
      | _ -> ());
      check_bool "majority always up" true (ndown () <= 2))
    p1;
  check_int "plan ends with every node up" 0 (ndown ())

let test_net_broadcast () =
  let eng = Sim.Engine.create () in
  let net = Sim.Net.create eng ~nodes:4 ~latency:(Sim.Net.Fixed 10) in
  let _sender = Sim.Engine.spawn eng (fun () -> Sim.Net.broadcast net ~src:0 9) in
  Sim.Engine.run eng;
  check_int "not self" 0 (Sim.Net.inbox_length net 0);
  for i = 1 to 3 do
    check_int "others got it" 1 (Sim.Net.inbox_length net i)
  done

(* ---------- Metrics ---------- *)

let test_hist_quantiles () =
  let h = Sim.Metrics.Hist.create () in
  for i = 1 to 100 do
    Sim.Metrics.Hist.add h i
  done;
  check_int "p50" 50 (Sim.Metrics.Hist.quantile h 0.5);
  check_int "p95" 95 (Sim.Metrics.Hist.quantile h 0.95);
  check_int "p100" 100 (Sim.Metrics.Hist.quantile h 1.0);
  check_int "min" 1 (Sim.Metrics.Hist.min_value h);
  Alcotest.(check (float 0.001)) "mean" 50.5 (Sim.Metrics.Hist.mean h)

let hist_qcheck =
  QCheck.Test.make ~name:"hist max quantile equals max sample" ~count:200
    QCheck.(list_of_size Gen.(1 -- 200) small_nat)
    (fun xs ->
      let h = Sim.Metrics.Hist.create () in
      List.iter (Sim.Metrics.Hist.add h) xs;
      Sim.Metrics.Hist.quantile h 1.0 = List.fold_left max 0 xs)

let test_series () =
  let s = Sim.Metrics.Series.create ~bucket_ns:100 in
  Sim.Metrics.Series.add s ~at:10 1;
  Sim.Metrics.Series.add s ~at:90 1;
  Sim.Metrics.Series.add s ~at:250 5;
  Alcotest.(check (list (pair int int)))
    "buckets with gap filled"
    [ (0, 2); (100, 0); (200, 5) ]
    (Sim.Metrics.Series.buckets s)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "sim"
    [
      ( "heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_order;
          Alcotest.test_case "empty" `Quick test_heap_empty;
          qc heap_qcheck;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "int_in bounds" `Quick test_rng_int_in;
          Alcotest.test_case "uniformity" `Quick test_rng_uniformity;
          qc rng_bounds_qcheck;
        ] );
      ( "engine",
        [
          Alcotest.test_case "time order" `Quick test_engine_time_order;
          Alcotest.test_case "FIFO ties" `Quick test_engine_fifo_ties;
          Alcotest.test_case "process sleep" `Quick test_process_sleep;
          Alcotest.test_case "run until" `Quick test_run_until;
          Alcotest.test_case "kill process" `Quick test_kill_process;
          Alcotest.test_case "nested spawn" `Quick test_nested_spawn;
          Alcotest.test_case "process exception surfaces" `Quick
            test_process_exception_surfaces;
          Alcotest.test_case "past schedule clamps" `Quick test_schedule_in_past_clamps;
          Alcotest.test_case "determinism" `Quick test_engine_determinism;
        ] );
      ( "sync",
        [
          Alcotest.test_case "ivar" `Quick test_ivar;
          Alcotest.test_case "mailbox fifo" `Quick test_mailbox_fifo;
          Alcotest.test_case "mailbox timeout" `Quick test_mailbox_timeout;
          Alcotest.test_case "timeout no double delivery" `Quick
            test_mailbox_timeout_no_double_delivery;
          Alcotest.test_case "mutex exclusion" `Quick test_mutex_exclusion;
          Alcotest.test_case "semaphore" `Quick test_semaphore;
          Alcotest.test_case "condition" `Quick test_condition;
          Alcotest.test_case "waitgroup" `Quick test_waitgroup;
          qc semaphore_model_qcheck;
        ] );
      ( "cpu",
        [
          Alcotest.test_case "oversubscription" `Quick test_cpu_inflation;
          Alcotest.test_case "efficiency curve" `Quick test_cpu_efficiency_curve;
          Alcotest.test_case "utilization" `Quick test_cpu_utilization;
        ] );
      ( "net",
        [
          Alcotest.test_case "delivery" `Quick test_net_delivery;
          Alcotest.test_case "crash drops" `Quick test_net_crash_drops;
          Alcotest.test_case "crash in flight" `Quick test_net_crash_in_flight;
          Alcotest.test_case "partition" `Quick test_net_partition;
          Alcotest.test_case "crash+recover in flight" `Quick
            test_net_crash_recover_in_flight;
          Alcotest.test_case "one-way partition" `Quick test_net_oneway_partition;
          Alcotest.test_case "fault model" `Quick test_net_fault_model;
          Alcotest.test_case "fault plan deterministic" `Quick
            test_fault_plan_deterministic;
          Alcotest.test_case "broadcast" `Quick test_net_broadcast;
          Alcotest.test_case "wan profile lookup" `Quick test_wan_profile_lookup;
          qc wan_profile_qcheck;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "quantiles" `Quick test_hist_quantiles;
          Alcotest.test_case "series" `Quick test_series;
          qc hist_qcheck;
        ] );
    ]
