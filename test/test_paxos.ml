(* Tests for the replication substrate: election + MultiPaxos streams.

   The harness builds an n-replica cluster with k streams per replica and
   records every stream's committed sequence per replica, asserting
   sequential (no-holes) delivery as it goes. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let ms = Sim.Engine.ms

let entry ~epoch ~ts =
  Store.Wire.make_entry ~epoch
    [ { Store.Wire.ts; req = None; decision = None; writes = [ { Store.Wire.table = 0; key = "k"; value = Some "v" } ] } ]

type replica = {
  id : int;
  election : Paxos.Election.t;
  streams : Paxos.Stream.t array;
  committed : (int * Store.Wire.entry) list ref array; (* reverse order *)
  mutable dispatcher : Sim.Engine.proc option;
  mutable ticker : Sim.Engine.proc option;
}

type cluster = {
  eng : Sim.Engine.t;
  net : Paxos.Msg.t Sim.Net.t;
  replicas : replica array;
  elected : (int * int) list ref; (* (epoch, leader) in election order *)
}

let make_cluster ?(n = 3) ?(k = 2) ?(heartbeat = 20 * ms) ?(timeout = 100 * ms)
    ?(initial_leader = Some 0) ?(seed = 1L) ?(coalesce = false) ?faults () =
  let eng = Sim.Engine.create ~seed () in
  let net =
    Sim.Net.create eng ~nodes:n
      ~latency:(Sim.Net.Exp_jitter { base = 50 * Sim.Engine.us; jitter_mean = 20 * Sim.Engine.us })
  in
  (match faults with Some f -> Sim.Net.set_default_faults net f | None -> ());
  let elected = ref [] in
  let replicas =
    Array.init n (fun id ->
        let committed = Array.init k (fun _ -> ref []) in
        let streams = Array.make k None in
        let election = ref None in
        let on_commit s ~idx e =
          (* Sequential, exactly-once delivery. *)
          (match !(committed.(s)) with
          | [] -> if idx <> 0 then Alcotest.failf "replica %d stream %d: first commit %d" id s idx
          | (prev, _) :: _ ->
              if idx <> prev + 1 then
                Alcotest.failf "replica %d stream %d: hole %d -> %d" id s prev idx);
          committed.(s) := (idx, e) :: !(committed.(s))
        in
        let on_higher_epoch e =
          match !election with Some el -> Paxos.Election.observe_epoch el e | None -> ()
        in
        for s = 0 to k - 1 do
          streams.(s) <-
            Some
              (Paxos.Stream.create net ~id:s ~me:id ~coalesce
                 ~on_commit:(on_commit s) ~on_higher_epoch ())
        done;
        let streams = Array.map Option.get streams in
        let el =
          Paxos.Election.create net ~me:id ~heartbeat_interval:heartbeat
            ~election_timeout:timeout ?initial_leader
            ~on_leader_elected:(fun ~epoch ->
              elected := (epoch, id) :: !elected;
              Array.iter (fun s -> Paxos.Stream.become_leader s ~epoch) streams)
            ~on_new_epoch:(fun ~epoch:_ ~leader ->
              if leader <> Some id then Array.iter Paxos.Stream.step_down streams)
            ()
        in
        election := Some el;
        { id; election = el; streams; committed; dispatcher = None; ticker = None })
  in
  let cluster = { eng; net; replicas; elected } in
  Array.iter
    (fun r ->
      let dispatcher =
        Sim.Engine.spawn eng ~name:(Printf.sprintf "dispatch-%d" r.id) (fun () ->
            while true do
              let m = Sim.Net.recv net r.id in
              match m.Paxos.Msg.body with
              | Paxos.Msg.Elect e -> Paxos.Election.handle r.election e ~from:m.Paxos.Msg.from
              | Paxos.Msg.Stream { stream; msg } ->
                  Paxos.Stream.handle r.streams.(stream) msg ~from:m.Paxos.Msg.from
              | Paxos.Msg.Client_req _ | Paxos.Msg.Client_rep _
              | Paxos.Msg.Read_req _ | Paxos.Msg.Read_lease _ -> ()
            done)
      in
      r.dispatcher <- Some dispatcher;
      r.ticker <- Some (Paxos.Election.start r.election))
    replicas;
  cluster

let crash c id =
  Sim.Net.crash c.net id;
  let r = c.replicas.(id) in
  Option.iter Sim.Engine.kill r.dispatcher;
  Option.iter Sim.Engine.kill r.ticker

let current_leader c =
  let leaders =
    Array.to_list c.replicas
    |> List.filter (fun r -> Paxos.Election.is_leader r.election && Sim.Net.is_up c.net r.id)
  in
  match leaders with [ r ] -> Some r | [] -> None | _ :: _ -> None

let committed_list r s = List.rev !(r.committed.(s))

(* Proposer process: feed [count] entries into stream [s] of whichever
   replica currently leads, one per [gap] ns. *)
let spawn_proposer c ~s ~count ~gap =
  Sim.Engine.spawn c.eng ~name:"proposer" (fun () ->
      let sent = ref 0 in
      while !sent < count do
        (match current_leader c with
        | Some r when Paxos.Stream.is_caught_up r.streams.(s) ->
            incr sent;
            Paxos.Stream.propose r.streams.(s) (entry ~epoch:(Paxos.Election.epoch r.election) ~ts:!sent)
        | Some _ | None -> ());
        Sim.Engine.sleep gap
      done)

let test_stable_replication () =
  let c = make_cluster () in
  let _p = spawn_proposer c ~s:0 ~count:50 ~gap:(1 * ms) in
  Sim.Engine.run ~until:(500 * ms) c.eng;
  Array.iter
    (fun r ->
      check_int
        (Printf.sprintf "replica %d committed all" r.id)
        50
        (List.length (committed_list r 0)))
    c.replicas;
  (* Same values in the same order everywhere. *)
  let reference = committed_list c.replicas.(0) 0 in
  Array.iter
    (fun r -> check_bool "identical logs" true (committed_list r 0 = reference))
    c.replicas

let test_streams_independent () =
  let c = make_cluster ~k:3 () in
  let _p0 = spawn_proposer c ~s:0 ~count:30 ~gap:(1 * ms) in
  let _p1 = spawn_proposer c ~s:1 ~count:10 ~gap:(3 * ms) in
  (* stream 2 gets nothing *)
  Sim.Engine.run ~until:(500 * ms) c.eng;
  let r = c.replicas.(1) in
  check_int "stream 0" 30 (List.length (committed_list r 0));
  check_int "stream 1" 10 (List.length (committed_list r 1));
  check_int "stream 2" 0 (List.length (committed_list r 2))

let test_cold_start_election () =
  let c = make_cluster ~initial_leader:None () in
  Sim.Engine.run ~until:(400 * ms) c.eng;
  (match current_leader c with
  | Some r -> check_bool "epoch advanced" true (Paxos.Election.epoch r.election >= 1)
  | None -> Alcotest.fail "no leader elected from cold start");
  (* Exactly one leader. *)
  let nleaders =
    Array.to_list c.replicas
    |> List.filter (fun r -> Paxos.Election.is_leader r.election)
    |> List.length
  in
  check_int "single leader" 1 nleaders

let test_failover_preserves_committed () =
  let c = make_cluster () in
  let _p = spawn_proposer c ~s:0 ~count:1000 ~gap:(1 * ms) in
  (* Kill the initial leader mid-run. *)
  Sim.Engine.schedule c.eng (200 * ms) (fun () -> crash c 0);
  Sim.Engine.run ~until:(2_000 * ms) c.eng;
  (match current_leader c with
  | Some r ->
      check_bool "new leader is not replica 0" true (r.id <> 0);
      check_bool "epoch bumped" true (Paxos.Election.epoch r.election >= 2)
  | None -> Alcotest.fail "no leader after failover");
  (* Agreement: survivors' logs must be identical prefixes of each other
     and strictly longer than what was committed before the crash. *)
  let l1 = committed_list c.replicas.(1) 0 and l2 = committed_list c.replicas.(2) 0 in
  let rec is_prefix a b =
    match (a, b) with
    | [], _ -> true
    | _, [] -> false
    | x :: xs, y :: ys -> x = y && is_prefix xs ys
  in
  check_bool "survivor logs agree" true (is_prefix l1 l2 || is_prefix l2 l1);
  check_bool "progress after failover" true (List.length l1 > 190)

let test_follower_catch_up_after_partition () =
  let c = make_cluster () in
  let _p = spawn_proposer c ~s:0 ~count:200 ~gap:(1 * ms) in
  (* Cut replica 2 off from both peers for a while; majority continues. *)
  Sim.Engine.schedule c.eng (50 * ms) (fun () ->
      Sim.Net.partition c.net 0 2;
      Sim.Net.partition c.net 1 2);
  Sim.Engine.schedule c.eng (150 * ms) (fun () -> Sim.Net.heal_all c.net);
  Sim.Engine.run ~until:(1_500 * ms) c.eng;
  let l0 = committed_list c.replicas.(0) 0 in
  let l2 = committed_list c.replicas.(2) 0 in
  check_int "master log complete" 200 (List.length l0);
  check_bool "partitioned follower caught up" true (List.length l2 >= 200);
  check_bool "same content" true (l0 = l2)

let test_old_leader_steps_down () =
  let c = make_cluster () in
  (* Partition the leader from both followers: they elect a new leader;
     when healed, the old leader must step down via Nack/Heartbeat. *)
  Sim.Engine.schedule c.eng (50 * ms) (fun () ->
      Sim.Net.partition c.net 0 1;
      Sim.Net.partition c.net 0 2);
  Sim.Engine.schedule c.eng (600 * ms) (fun () -> Sim.Net.heal_all c.net);
  Sim.Engine.run ~until:(1_500 * ms) c.eng;
  let r0 = c.replicas.(0) in
  check_bool "old leader stepped down" false (Paxos.Election.is_leader r0.election);
  let nleaders =
    Array.to_list c.replicas
    |> List.filter (fun r -> Paxos.Election.is_leader r.election)
    |> List.length
  in
  check_int "exactly one leader after heal" 1 nleaders

let test_candidacy_backoff_bounded () =
  (* Livelock hardening: an isolated replica can never win an election, so
     without backoff it would start a candidacy (and bump its epoch) every
     ~timeout — 25+ over three seconds — and on heal its inflated epoch
     would keep disrupting the stable majority. The capped exponential
     backoff (2^min(failures, 2) × base + jitter) bounds the rate, and the
     first heartbeat accepted after healing resets the failure count. *)
  let c = make_cluster () in
  Sim.Engine.schedule c.eng (100 * ms) (fun () ->
      Sim.Net.partition c.net 0 2;
      Sim.Net.partition c.net 1 2);
  Sim.Engine.run ~until:(3_100 * ms) c.eng;
  let r2 = c.replicas.(2) in
  let tried = Paxos.Election.failed_candidacies r2.election in
  check_bool "isolated node kept trying" true (tried >= 3);
  check_bool (Printf.sprintf "candidacies bounded by backoff (got %d)" tried) true
    (tried <= 12);
  (* Majority side is undisturbed: replica 0 still leads epoch 1. *)
  check_bool "majority leader undisturbed" true
    (Paxos.Election.is_leader c.replicas.(0).election);
  Sim.Net.heal_all c.net;
  Sim.Engine.run ~until:(4_600 * ms) c.eng;
  let nleaders =
    Array.to_list c.replicas
    |> List.filter (fun r -> Paxos.Election.is_leader r.election)
    |> List.length
  in
  check_int "exactly one leader after heal" 1 nleaders;
  check_int "backoff reset once the node rejoins" 0
    (Paxos.Election.failed_candidacies r2.election)

let test_log_truncation_bounds_memory () =
  let c = make_cluster () in
  let _p = spawn_proposer c ~s:0 ~count:600 ~gap:(1 * ms) in
  Sim.Engine.run ~until:(1_500 * ms) c.eng;
  Array.iter
    (fun r ->
      check_int "all committed" 600 (List.length (committed_list r 0));
      let retained = Paxos.Stream.retained_slots r.streams.(0) in
      check_bool
        (Printf.sprintf "replica %d log compacted (%d retained)" r.id retained)
        true (retained < 300);
      check_bool "truncation accounted" true
        ((Paxos.Stream.stats r.streams.(0)).Paxos.Stream.truncated > 0))
    c.replicas

let test_truncation_freezes_for_lagging_follower () =
  (* While a follower is partitioned, the leader must stop truncating past
     the follower's last known commit, so the follower can still catch up
     from the retained log after healing. *)
  let c = make_cluster () in
  let _p = spawn_proposer c ~s:0 ~count:500 ~gap:(1 * ms) in
  Sim.Engine.schedule c.eng (50 * ms) (fun () ->
      Sim.Net.partition c.net 0 2;
      Sim.Net.partition c.net 1 2);
  Sim.Engine.schedule c.eng (400 * ms) (fun () -> Sim.Net.heal_all c.net);
  Sim.Engine.run ~until:(2_000 * ms) c.eng;
  let l0 = committed_list c.replicas.(0) 0 and l2 = committed_list c.replicas.(2) 0 in
  check_int "leader committed everything" 500 (List.length l0);
  check_bool "lagging follower fully caught up" true (l0 = l2)

let test_failover_after_truncation () =
  let c = make_cluster () in
  let _p = spawn_proposer c ~s:0 ~count:800 ~gap:(1 * ms) in
  Sim.Engine.schedule c.eng (600 * ms) (fun () -> crash c 0);
  Sim.Engine.run ~until:(3_000 * ms) c.eng;
  (match current_leader c with
  | Some r -> check_bool "new leader" true (r.id <> 0)
  | None -> Alcotest.fail "no leader after failover");
  let l1 = committed_list c.replicas.(1) 0 and l2 = committed_list c.replicas.(2) 0 in
  let rec is_prefix a b =
    match (a, b) with
    | [], _ -> true
    | _, [] -> false
    | x :: xs, y :: ys -> x = y && is_prefix xs ys
  in
  check_bool "agreement preserved across truncation + failover" true
    (is_prefix l1 l2 || is_prefix l2 l1);
  check_bool "progress" true (List.length l1 > 500)

(* Proposal coalescing: a back-to-back burst while the first quorum round
   is still in flight must buffer and then merge into one follow-up round
   — fewer entries on the wire, every transaction delivered exactly once
   and in order on every replica. *)
let test_proposal_coalescing () =
  let c = make_cluster ~coalesce:true () in
  Sim.Engine.schedule c.eng (50 * ms) (fun () ->
      match current_leader c with
      | Some r ->
          (* All 20 proposals land in one event: the first opens a round,
             the other 19 find it in flight and buffer. *)
          for ts = 1 to 20 do
            Paxos.Stream.propose r.streams.(0)
              (entry ~epoch:(Paxos.Election.epoch r.election) ~ts)
          done
      | None -> Alcotest.fail "no leader at burst time");
  Sim.Engine.run ~until:(500 * ms) c.eng;
  let reference = committed_list c.replicas.(0) 0 in
  check_bool
    (Printf.sprintf "fewer quorum rounds than proposals (got %d)"
       (List.length reference))
    true
    (List.length reference < 20);
  check_bool "first proposal went out alone" true (List.length reference >= 2);
  Array.iter
    (fun r ->
      check_bool
        (Printf.sprintf "replica %d log identical" r.id)
        true
        (committed_list r 0 = reference))
    c.replicas;
  let ts_order =
    List.concat_map
      (fun (_, e) ->
        List.map (fun (t : Store.Wire.txn_log) -> t.Store.Wire.ts) e.Store.Wire.txns)
      reference
  in
  check_bool "every transaction delivered once, in order" true
    (ts_order = List.init 20 (fun i -> i + 1));
  let st = Paxos.Stream.stats c.replicas.(0).streams.(0) in
  check_bool "merges counted in stats" true (st.Paxos.Stream.coalesced > 0);
  check_bool "coalesce factor reflects multi-entry rounds" true
    (Paxos.Stream.coalesce_factor c.replicas.(0).streams.(0) > 1.0)

(* Randomized agreement property: random leader crashes and partitions;
   afterwards all replicas' committed logs for every stream must be
   prefixes of one another (agreement + no divergence). Run both with and
   without proposal coalescing — merging pending proposals must never
   cost agreement, whatever the failure schedule. *)
let agreement_prop ~coalesce seed =
      let c = make_cluster ~k:2 ~coalesce () in
      let rng = Sim.Rng.create (Int64.of_int (seed + 17)) in
      let _p0 = spawn_proposer c ~s:0 ~count:300 ~gap:(1 * ms) in
      let _p1 = spawn_proposer c ~s:1 ~count:300 ~gap:(1 * ms) in
      (* One random partition episode plus one crash of the current leader. *)
      let t_part = 20 * ms + Sim.Rng.int rng (200 * ms) in
      let isolate = Sim.Rng.int rng 3 in
      Sim.Engine.schedule c.eng t_part (fun () ->
          Array.iter
            (fun (r : replica) ->
              if r.id <> isolate then Sim.Net.partition c.net isolate r.id)
            c.replicas);
      Sim.Engine.schedule c.eng (t_part + (150 * ms)) (fun () -> Sim.Net.heal_all c.net);
      let t_crash = 400 * ms + Sim.Rng.int rng (200 * ms) in
      Sim.Engine.schedule c.eng t_crash (fun () ->
          match current_leader c with Some r -> crash c r.id | None -> ());
      Sim.Engine.run ~until:(3_000 * ms) c.eng;
      let rec is_prefix a b =
        match (a, b) with
        | [], _ -> true
        | _, [] -> false
        | x :: xs, y :: ys -> x = y && is_prefix xs ys
      in
      let ok = ref true in
      for s = 0 to 1 do
        let logs =
          Array.to_list c.replicas
          |> List.filter (fun r -> Sim.Net.is_up c.net r.id)
          |> List.map (fun r -> committed_list r s)
        in
        List.iter
          (fun a -> List.iter (fun b -> if not (is_prefix a b || is_prefix b a) then ok := false) logs)
          logs
      done;
      (* Election safety: at most one leader per epoch, ever. *)
      let epochs = List.map fst !(c.elected) in
      let distinct = List.sort_uniq compare epochs in
      if List.length distinct <> List.length epochs then ok := false;
      !ok

let agreement_qcheck =
  QCheck.Test.make ~name:"paxos agreement under random failures" ~count:15
    QCheck.(int_range 0 10_000)
    (agreement_prop ~coalesce:false)

let agreement_coalesce_qcheck =
  QCheck.Test.make ~name:"paxos agreement under random failures (coalescing)"
    ~count:15
    QCheck.(int_range 0 10_000)
    (agreement_prop ~coalesce:true)

(* Lossless but hostile delivery: every message may be duplicated and
   delayed by a random reorder jitter. The on_commit harness already fails
   the test on any hole or out-of-order delivery, so this property checks
   both agreement and no-hole sequential commit under dup + reorder. *)
let dup_reorder_qcheck =
  QCheck.Test.make ~name:"paxos agreement under duplication + reordering" ~count:15
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Sim.Rng.create (Int64.of_int (seed + 3)) in
      let dup = 0.1 +. (float_of_int (Sim.Rng.int rng 300) /. 1000.0) in
      let reorder = Sim.Rng.int rng (2 * ms) in
      let c =
        make_cluster ~k:2
          ~seed:(Int64.of_int (seed + 101))
          ~faults:{ Sim.Net.drop = 0.0; dup; reorder }
          ()
      in
      let _p0 = spawn_proposer c ~s:0 ~count:200 ~gap:(1 * ms) in
      let _p1 = spawn_proposer c ~s:1 ~count:200 ~gap:(1 * ms) in
      Sim.Engine.run ~until:(2_000 * ms) c.eng;
      (* Drain with clean links so every replica converges. *)
      Sim.Net.clear_faults c.net;
      Sim.Engine.run ~until:(3_000 * ms) c.eng;
      let ok = ref (Sim.Net.messages_duplicated c.net > 0) in
      for s = 0 to 1 do
        let reference = committed_list c.replicas.(0) s in
        if List.length reference < 200 then ok := false;
        Array.iter (fun r -> if committed_list r s <> reference then ok := false) c.replicas
      done;
      !ok)

(* ---------- checkpoint bootstrap floor ---------- *)

let test_entry i =
  Store.Wire.make_entry ~epoch:1 [ { Store.Wire.ts = 100 + i; req = None; decision = None; writes = [] } ]

let mk_bare_stream eng =
  let net =
    Sim.Net.create eng ~nodes:3
      ~latency:(Sim.Net.Exp_jitter { base = 50 * Sim.Engine.us; jitter_mean = 20 * Sim.Engine.us })
  in
  let committed = ref [] in
  let s =
    Paxos.Stream.create net ~id:0 ~me:1
      ~on_commit:(fun ~idx e -> committed := (idx, e) :: !committed)
      ~on_higher_epoch:(fun _ -> ())
      ()
  in
  (s, committed)

let test_bootstrap_floor () =
  let eng = Sim.Engine.create () in
  let s, committed = mk_bare_stream eng in
  (* Position a fresh follower as if slots 0-9 were checkpoint-covered and
     truncated cluster-wide: the commit index jumps, the gap is recorded as
     truncated, and no on_commit fires for the covered slots. *)
  Paxos.Stream.set_bootstrap_floor s ~idx:10;
  Alcotest.(check int) "commit index jumps" 9 (Paxos.Stream.commit_index s);
  Alcotest.(check int) "gap recorded as truncated" 10 (Paxos.Stream.truncated_below s);
  Alcotest.(check int) "no commits for covered slots" 0 (List.length !committed);
  (* Journal-tail injection continues from the floor, firing per slot. *)
  Paxos.Stream.inject_committed_at s ~idx:10 (test_entry 0);
  Paxos.Stream.inject_committed_at s ~idx:11 (test_entry 1);
  Alcotest.(check int) "tail committed" 11 (Paxos.Stream.commit_index s);
  Alcotest.(check int) "on_commit fired per tail slot" 2 (List.length !committed);
  (* A floor at or below the commit index is a no-op, never a regression. *)
  Paxos.Stream.set_bootstrap_floor s ~idx:5;
  Alcotest.(check int) "floor below commit is a no-op" 11 (Paxos.Stream.commit_index s);
  (* Re-injecting an already-committed index is a caller bug. *)
  (match Paxos.Stream.inject_committed_at s ~idx:11 (test_entry 9) with
  | () -> Alcotest.fail "expected Invalid_argument for committed idx"
  | exception Invalid_argument _ -> ());
  (* Leading streams refuse the floor outright. *)
  Paxos.Stream.become_leader s ~epoch:2;
  match Paxos.Stream.set_bootstrap_floor s ~idx:50 with
  | () -> Alcotest.fail "expected Invalid_argument on a leader"
  | exception Invalid_argument _ -> ()

let test_trunc_floor_monotone () =
  let eng = Sim.Engine.create () in
  let s, _ = mk_bare_stream eng in
  Alcotest.(check int) "floor starts at zero" 0 (Paxos.Stream.trunc_floor s);
  Paxos.Stream.set_trunc_floor s 5;
  Alcotest.(check int) "floor set" 5 (Paxos.Stream.trunc_floor s);
  Paxos.Stream.set_trunc_floor s 3;
  Alcotest.(check int) "floor never regresses" 5 (Paxos.Stream.trunc_floor s);
  Alcotest.(check bool) "fresh stream not stalled" false (Paxos.Stream.trunc_stalled s)

(* ---------- membership: quorum rules, vote persistence, Timeout_now ---------- *)

let test_member_quorum () =
  let stable = Paxos.Member.stable [ 0; 1; 2 ] in
  check_bool "stable majority" true (Paxos.Member.quorum stable [ 0; 1 ]);
  check_bool "stable minority" false (Paxos.Member.quorum stable [ 0 ]);
  check_bool "learner acks ignored" false (Paxos.Member.quorum stable [ 0; 5 ]);
  check_bool "learner plus majority" true
    (Paxos.Member.quorum stable [ 0; 1; 5 ]);
  let joint = Paxos.Member.joint ~old_:[ 0; 1; 2 ] ~new_:[ 2; 3; 4 ] in
  (* Joint quorums need a majority of BOTH configurations — the
     intersection argument. *)
  check_bool "majority of both sides" true
    (Paxos.Member.quorum joint [ 0; 1; 2; 3 ]);
  check_bool "old majority alone is not enough" false
    (Paxos.Member.quorum joint [ 0; 1; 2 ]);
  check_bool "new majority alone is not enough" false
    (Paxos.Member.quorum joint [ 2; 3; 4 ]);
  check_bool "overlap node counts for both" true
    (Paxos.Member.quorum joint [ 0; 2; 3 ]);
  Alcotest.(check (list int))
    "joint voters are the union" [ 0; 1; 2; 3; 4 ]
    (Paxos.Member.voters joint);
  check_bool "views equal" true
    (Paxos.Member.equal stable (Paxos.Member.stable [ 2; 1; 0 ]))

(* A replica that is removed from the membership and later re-added (or
   rebuilt in between) must still remember the vote it granted: forgetting
   [voted_for] lets one ballot collect two votes from the same node. *)
let test_vote_survives_membership_cycle () =
  let eng = Sim.Engine.create () in
  let net =
    Sim.Net.create eng ~nodes:3
      ~latency:
        (Sim.Net.Exp_jitter
           { base = 50 * Sim.Engine.us; jitter_mean = 20 * Sim.Engine.us })
  in
  let votes = Array.make 2 [] in
  (* Candidates 0 and 1 are passive recorders of the vote replies. *)
  for cand = 0 to 1 do
    ignore
      (Sim.Engine.spawn eng ~name:(Printf.sprintf "cand-%d" cand) (fun () ->
           while true do
             match (Sim.Net.recv net cand).Paxos.Msg.body with
             | Paxos.Msg.Elect (Paxos.Msg.Vote { epoch; granted }) ->
                 votes.(cand) <- (epoch, granted) :: votes.(cand)
             | _ -> ()
           done))
  done;
  let mk () =
    Paxos.Election.create net ~me:2
      ~on_leader_elected:(fun ~epoch:_ -> ())
      ~on_new_epoch:(fun ~epoch:_ ~leader:_ -> ())
      ()
  in
  let el = mk () in
  (* Grant epoch 5 to candidate 0. *)
  Paxos.Election.handle el
    (Paxos.Msg.Request_vote { epoch = 5; candidate = 0 })
    ~from:0;
  (* Membership churn: removed at gen 1, re-added at gen 2. The backoff
     reset on a generation change must not clear the granted vote. *)
  Paxos.Election.set_view el (Paxos.Member.stable [ 0; 1 ]) ~gen:1;
  Paxos.Election.set_view el (Paxos.Member.stable [ 0; 1; 2 ]) ~gen:2;
  Paxos.Election.handle el
    (Paxos.Msg.Request_vote { epoch = 5; candidate = 1 })
    ~from:1;
  (* Same cycle across a rebuild: only the salvaged vote protects the
     ballot. *)
  let el2 = mk () in
  Paxos.Election.import_vote el2 (Paxos.Election.export_vote el);
  Paxos.Election.handle el2
    (Paxos.Msg.Request_vote { epoch = 5; candidate = 1 })
    ~from:1;
  Sim.Engine.run eng;
  (match votes.(0) with
  | [ (5, true) ] -> ()
  | v ->
      Alcotest.failf "candidate 0 expected one granted vote, got %d (%s)"
        (List.length v)
        (String.concat ","
           (List.map (fun (e, g) -> Printf.sprintf "%d:%b" e g) v)));
  List.iter
    (fun (e, g) ->
      check_int "denied vote is for epoch 5" 5 e;
      check_bool "epoch 5 already voted: denied" false g)
    votes.(1);
  check_int "both denials arrived" 2 (List.length votes.(1))

(* Planned handoff: a Timeout_now grant makes the target stand immediately
   — the new leader emerges well inside the election timeout, with no
   heartbeat-silence gap. *)
let test_timeout_now_handoff () =
  let c = make_cluster () in
  Sim.Engine.run ~until:(30 * ms) c.eng;
  check_bool "initial leader serving" true
    (Paxos.Election.is_leader c.replicas.(0).election);
  let t0 = Sim.Engine.now c.eng in
  Paxos.Election.handle c.replicas.(1).election
    (Paxos.Msg.Timeout_now { epoch = 2 })
    ~from:0;
  (* Run strictly less than the 100 ms election timeout: a timeout-driven
     election cannot have fired, so any new leader came from the grant. *)
  Sim.Engine.run ~until:(t0 + (50 * ms)) c.eng;
  check_bool "target took over" true
    (Paxos.Election.is_leader c.replicas.(1).election);
  check_int "above the granted epoch" 3
    (Paxos.Election.epoch c.replicas.(1).election);
  check_bool "old leader stepped down" false
    (Paxos.Election.is_leader c.replicas.(0).election);
  (* A grant to a non-member is refused: removed nodes cannot be handed
     the cluster. *)
  Paxos.Election.set_view
    c.replicas.(2).election
    (Paxos.Member.stable [ 0; 1 ])
    ~gen:1;
  Paxos.Election.handle c.replicas.(2).election
    (Paxos.Msg.Timeout_now { epoch = 4 })
    ~from:1;
  Sim.Engine.run ~until:(t0 + (90 * ms)) c.eng;
  check_bool "non-member grant refused" false
    (Paxos.Election.is_leader c.replicas.(2).election)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "paxos"
    [
      ( "stream",
        [
          Alcotest.test_case "stable replication" `Quick test_stable_replication;
          Alcotest.test_case "independent streams" `Quick test_streams_independent;
          Alcotest.test_case "follower catch-up" `Quick test_follower_catch_up_after_partition;
          Alcotest.test_case "log truncation bounds memory" `Quick
            test_log_truncation_bounds_memory;
          Alcotest.test_case "truncation freezes for laggard" `Quick
            test_truncation_freezes_for_lagging_follower;
          Alcotest.test_case "failover after truncation" `Quick
            test_failover_after_truncation;
          Alcotest.test_case "proposal coalescing" `Quick test_proposal_coalescing;
          Alcotest.test_case "checkpoint bootstrap floor" `Quick test_bootstrap_floor;
          Alcotest.test_case "trunc floor monotone" `Quick test_trunc_floor_monotone;
        ] );
      ( "election",
        [
          Alcotest.test_case "cold start" `Quick test_cold_start_election;
          Alcotest.test_case "failover preserves commits" `Quick
            test_failover_preserves_committed;
          Alcotest.test_case "old leader steps down" `Quick test_old_leader_steps_down;
          Alcotest.test_case "candidacy backoff bounded" `Quick
            test_candidacy_backoff_bounded;
        ] );
      ( "membership",
        [
          Alcotest.test_case "joint quorum rules" `Quick test_member_quorum;
          Alcotest.test_case "vote survives membership cycle" `Quick
            test_vote_survives_membership_cycle;
          Alcotest.test_case "timeout-now handoff" `Quick
            test_timeout_now_handoff;
        ] );
      ( "properties",
        [ qc agreement_qcheck; qc agreement_coalesce_qcheck; qc dup_reorder_qcheck ]
      );
    ]
