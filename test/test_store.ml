(* Tests for the storage substrate: key codec, B+tree, records, wire. *)

module SMap = Map.Make (String)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---------- Keycodec ---------- *)

let component =
  let open QCheck.Gen in
  let int_comp = map (fun i -> Store.Keycodec.I i) int in
  let small_int_comp = map (fun i -> Store.Keycodec.I i) (int_range (-1000) 1000) in
  let str_comp = map (fun s -> Store.Keycodec.S s) (string_size (0 -- 8)) in
  oneof [ int_comp; small_int_comp; str_comp ]

let components_gen = QCheck.Gen.(list_size (1 -- 4) component)

let components_arb =
  let print cs =
    String.concat ","
      (List.map
         (function
           | Store.Keycodec.I i -> Printf.sprintf "I %d" i
           | Store.Keycodec.S s -> Printf.sprintf "S %S" s)
         cs)
  in
  QCheck.make ~print components_gen

let codec_roundtrip =
  QCheck.Test.make ~name:"keycodec roundtrip" ~count:500 components_arb (fun cs ->
      Store.Keycodec.decode (Store.Keycodec.encode cs) = cs)

let codec_order_preserving =
  QCheck.Test.make ~name:"keycodec preserves order" ~count:1000
    (QCheck.pair components_arb components_arb)
    (fun (a, b) ->
      let ca = Store.Keycodec.compare_components a b in
      let cb = compare (Store.Keycodec.encode a) (Store.Keycodec.encode b) in
      (ca < 0) = (cb < 0) && (ca = 0) = (cb = 0))

let codec_decode_fuzz =
  QCheck.Test.make ~name:"decode of arbitrary bytes never crashes" ~count:500
    QCheck.(string_of_size Gen.(0 -- 60))
    (fun s ->
      match Store.Keycodec.decode s with
      | _ -> true
      | exception Invalid_argument _ -> true)

(* TPC-C-shaped composite keys. The shard router splits each table's
   keyspace on encoded warehouse prefixes, which is only sound if the
   encoding preserves the tuple's lexicographic order — bytes of
   different warehouses must never interleave. Tuples mirror the real
   TPC-C key shapes: (w,d,o,ol) order-lines and (w,d,last,c) the
   by-last-name customer index (string component in the middle). *)
let tpcc_tuple_gen =
  let open QCheck.Gen in
  let last_name =
    oneofl [ "BARBARBAR"; "OUGHT"; "ABLE"; "PRI"; "ESE"; "ANTICALLYATION" ]
  in
  oneof
    [
      map
        (fun (w, d, o, ol) ->
          Store.Keycodec.[ I w; I d; I o; I ol ])
        (quad (1 -- 64) (1 -- 10) (0 -- 100_000) (1 -- 15));
      map
        (fun (w, d, last, c) ->
          Store.Keycodec.[ I w; I d; S last; I c ])
        (quad (1 -- 64) (1 -- 10) last_name (1 -- 3000));
    ]

let tpcc_tuple_arb =
  let print cs =
    String.concat ";"
      (List.map
         (function
           | Store.Keycodec.I i -> string_of_int i
           | Store.Keycodec.S s -> Printf.sprintf "%S" s)
         cs)
  in
  QCheck.make ~print tpcc_tuple_gen

let codec_tpcc_order =
  QCheck.Test.make ~name:"keycodec preserves order on TPC-C-shaped tuples"
    ~count:1000
    (QCheck.pair tpcc_tuple_arb tpcc_tuple_arb)
    (fun (a, b) ->
      let ca = Store.Keycodec.compare_components a b in
      let cb = compare (Store.Keycodec.encode a) (Store.Keycodec.encode b) in
      (ca < 0) = (cb < 0) && (ca = 0) = (cb = 0))

(* Split-key soundness: a router split key [enc [I w]] bounds every key
   of warehouses < w strictly below it and every key of warehouses >= w
   at or above it, whatever the key's tail looks like. *)
let codec_split_key_soundness =
  QCheck.Test.make ~name:"warehouse split keys bound all composite tails"
    ~count:1000
    (QCheck.pair (QCheck.make QCheck.Gen.(1 -- 64)) tpcc_tuple_arb)
    (fun (w, tail_tuple) ->
      let tuple =
        match tail_tuple with
        | _ :: rest -> Store.Keycodec.I w :: rest
        | [] -> [ Store.Keycodec.I w ]
      in
      let split_lo = Store.Keycodec.encode [ Store.Keycodec.I w ] in
      let split_hi = Store.Keycodec.encode [ Store.Keycodec.I (w + 1) ] in
      let k = Store.Keycodec.encode tuple in
      compare split_lo k <= 0 && compare k split_hi < 0)

let test_next_prefix () =
  check_bool "simple bump" true (Store.Keycodec.next_prefix "ab" = Some "ac");
  check_bool "carries over 0xff" true
    (Store.Keycodec.next_prefix "a\xff" = Some "b");
  check_bool "all 0xff has no successor" true
    (Store.Keycodec.next_prefix "\xff\xff" = None)

let test_prefix_scan_semantics () =
  (* Every key beginning with prefix p satisfies p <= k < next_prefix p. *)
  let p = Store.Keycodec.encode [ Store.Keycodec.I 3 ] in
  let inside = Store.Keycodec.encode [ Store.Keycodec.I 3; Store.Keycodec.I 99 ] in
  let below = Store.Keycodec.encode [ Store.Keycodec.I 2; Store.Keycodec.I 99 ] in
  let above = Store.Keycodec.encode [ Store.Keycodec.I 4 ] in
  match Store.Keycodec.next_prefix p with
  | None -> Alcotest.fail "expected a successor"
  | Some q ->
      check_bool "inside >= p" true (compare inside p >= 0);
      check_bool "inside < q" true (compare inside q < 0);
      check_bool "below < p" true (compare below p < 0);
      check_bool "above >= q" true (compare above q >= 0)

(* ---------- Btree ---------- *)

let test_btree_basic () =
  let t = Store.Btree.create () in
  check_bool "empty" true (Store.Btree.is_empty t);
  check_bool "insert new" true (Store.Btree.insert t "b" 2 = None);
  check_bool "insert replace" true (Store.Btree.insert t "b" 3 = Some 2);
  check_int "size" 1 (Store.Btree.length t);
  check_bool "find" true (Store.Btree.find t "b" = Some 3);
  check_bool "remove" true (Store.Btree.remove t "b" = Some 3);
  check_bool "remove absent" true (Store.Btree.remove t "b" = None);
  check_int "size after" 0 (Store.Btree.length t)

let test_btree_many_sorted_inserts () =
  let t = Store.Btree.create () in
  for i = 0 to 9999 do
    ignore (Store.Btree.insert t (Printf.sprintf "%08d" i) i)
  done;
  Store.Btree.check_invariants t;
  check_int "size" 10000 (Store.Btree.length t);
  for i = 0 to 9999 do
    if Store.Btree.find t (Printf.sprintf "%08d" i) <> Some i then
      Alcotest.failf "lost key %d" i
  done

let test_btree_reverse_inserts_then_deletes () =
  let t = Store.Btree.create () in
  for i = 9999 downto 0 do
    ignore (Store.Btree.insert t (Printf.sprintf "%08d" i) i)
  done;
  Store.Btree.check_invariants t;
  (* Delete every other key, then validate again. *)
  for i = 0 to 9999 do
    if i mod 2 = 0 then
      if Store.Btree.remove t (Printf.sprintf "%08d" i) <> Some i then
        Alcotest.failf "failed to delete %d" i
  done;
  Store.Btree.check_invariants t;
  check_int "half remain" 5000 (Store.Btree.length t);
  for i = 0 to 9999 do
    let expect = if i mod 2 = 0 then None else Some i in
    if Store.Btree.find t (Printf.sprintf "%08d" i) <> expect then
      Alcotest.failf "wrong lookup for %d" i
  done

let test_btree_drain () =
  let t = Store.Btree.create () in
  for i = 0 to 999 do
    ignore (Store.Btree.insert t (Printf.sprintf "%04d" i) i)
  done;
  for i = 0 to 999 do
    ignore (Store.Btree.remove t (Printf.sprintf "%04d" i));
    if i mod 97 = 0 then Store.Btree.check_invariants t
  done;
  Store.Btree.check_invariants t;
  check_int "empty after drain" 0 (Store.Btree.length t);
  check_bool "min of empty" true (Store.Btree.min_binding t = None)

let test_btree_range () =
  let t = Store.Btree.create () in
  for i = 0 to 99 do
    ignore (Store.Btree.insert t (Printf.sprintf "%04d" i) i)
  done;
  let r =
    Store.Btree.fold_range t ~lo:"0010" ~hi:"0015" ~init:[] ~f:(fun acc _ v -> v :: acc)
  in
  Alcotest.(check (list int)) "range [10,15)" [ 14; 13; 12; 11; 10 ] r;
  check_bool "first geq" true (Store.Btree.find_first_geq t "0010x" = Some ("0011", 11));
  check_bool "min" true (Store.Btree.min_binding t = Some ("0000", 0));
  check_bool "max" true (Store.Btree.max_binding t = Some ("0099", 99))

(* Model-based qcheck: a random op sequence must behave like Map. *)
type op = Insert of string * int | Remove of string | Find of string

let op_gen =
  let open QCheck.Gen in
  let key = map (fun i -> Printf.sprintf "%03d" i) (int_range 0 200) in
  frequency
    [
      (5, map2 (fun k v -> Insert (k, v)) key small_nat);
      (3, map (fun k -> Remove k) key);
      (2, map (fun k -> Find k) key);
    ]

let ops_arb =
  let print ops =
    String.concat ";"
      (List.map
         (function
           | Insert (k, v) -> Printf.sprintf "I(%s,%d)" k v
           | Remove k -> Printf.sprintf "R(%s)" k
           | Find k -> Printf.sprintf "F(%s)" k)
         ops)
  in
  QCheck.make ~print QCheck.Gen.(list_size (0 -- 400) op_gen)

let btree_model_qcheck =
  QCheck.Test.make ~name:"btree behaves like Map under random ops" ~count:200 ops_arb
    (fun ops ->
      let t = Store.Btree.create () in
      let model = ref SMap.empty in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | Insert (k, v) ->
              let prev = Store.Btree.insert t k v in
              let mprev = SMap.find_opt k !model in
              model := SMap.add k v !model;
              if prev <> mprev then ok := false
          | Remove k ->
              let prev = Store.Btree.remove t k in
              let mprev = SMap.find_opt k !model in
              model := SMap.remove k !model;
              if prev <> mprev then ok := false
          | Find k -> if Store.Btree.find t k <> SMap.find_opt k !model then ok := false)
        ops;
      Store.Btree.check_invariants t;
      !ok
      && Store.Btree.length t = SMap.cardinal !model
      && Store.Btree.to_list t = SMap.bindings !model)

let btree_find_last_lt_qcheck =
  QCheck.Test.make ~name:"find_last_lt equals Map.find_last_opt" ~count:150
    (QCheck.pair ops_arb QCheck.small_nat)
    (fun (ops, probe) ->
      let k = Printf.sprintf "%03d" (probe mod 1000) in
      let t = Store.Btree.create () in
      let model = ref SMap.empty in
      List.iter
        (function
          | Insert (key, v) ->
              ignore (Store.Btree.insert t key v);
              model := SMap.add key v !model
          | Remove key ->
              ignore (Store.Btree.remove t key);
              model := SMap.remove key !model
          | Find _ -> ())
        ops;
      Store.Btree.find_last_lt t k = SMap.find_last_opt (fun key -> key < k) !model)

let btree_range_qcheck =
  QCheck.Test.make ~name:"btree range equals Map filtered range" ~count:100
    (QCheck.pair ops_arb (QCheck.pair QCheck.small_nat QCheck.small_nat))
    (fun (ops, (a, b)) ->
      let lo = Printf.sprintf "%03d" (min a b mod 1000)
      and hi = Printf.sprintf "%03d" (max a b mod 1000) in
      let t = Store.Btree.create () in
      let model = ref SMap.empty in
      List.iter
        (function
          | Insert (k, v) ->
              ignore (Store.Btree.insert t k v);
              model := SMap.add k v !model
          | Remove k ->
              ignore (Store.Btree.remove t k);
              model := SMap.remove k !model
          | Find _ -> ())
        ops;
      let got =
        Store.Btree.fold_range t ~lo ~hi ~init:[] ~f:(fun acc k v -> (k, v) :: acc)
        |> List.rev
      in
      let want =
        SMap.bindings !model |> List.filter (fun (k, _) -> k >= lo && k < hi)
      in
      got = want)

(* ---------- Btree cursors + sorted bulk apply ---------- *)

let test_btree_insert_if_absent () =
  let t = Store.Btree.create () in
  check_bool "absent inserts" true (Store.Btree.insert_if_absent t "k" 1);
  check_bool "present refuses" false (Store.Btree.insert_if_absent t "k" 2);
  check_bool "binding untouched by refusal" true (Store.Btree.find t "k" = Some 1);
  check_int "size counted once" 1 (Store.Btree.length t);
  (* Refusal must leave no structural damage even deep in a grown tree. *)
  for i = 0 to 999 do
    ignore (Store.Btree.insert_if_absent t (Printf.sprintf "%04d" i) i)
  done;
  for i = 0 to 999 do
    if Store.Btree.insert_if_absent t (Printf.sprintf "%04d" i) (-1) then
      Alcotest.failf "duplicate %d accepted" i
  done;
  Store.Btree.check_invariants t;
  check_int "size stable" 1001 (Store.Btree.length t)

let test_btree_cursor_walk () =
  let t = Store.Btree.create () in
  for i = 0 to 499 do
    ignore (Store.Btree.insert t (Printf.sprintf "%04d" (2 * i)) i)
  done;
  let c = Store.Btree.cursor t in
  check_bool "unpositioned" true (Store.Btree.current c = None);
  (* Seek to an absent key lands on the next present one. *)
  Store.Btree.seek c "0003";
  check_bool "first geq" true (Store.Btree.current c = Some ("0004", 2));
  (* Walking the cursor from the start yields exactly to_list. *)
  Store.Btree.seek c "";
  let walked = ref [] in
  let continue = ref true in
  while !continue do
    match Store.Btree.current c with
    | Some kv ->
        walked := kv :: !walked;
        Store.Btree.advance c
    | None -> continue := false
  done;
  check_bool "cursor walk = to_list" true
    (List.rev !walked = Store.Btree.to_list t);
  Store.Btree.seek c "9999";
  check_bool "past the end" true (Store.Btree.current c = None)

(* Reference semantics for apply_sorted: a sequential find/insert loop. *)
let apply_seq t kvs ~f =
  List.iter
    (fun (k, x) ->
      match f k x (Store.Btree.find t k) with
      | Some v -> ignore (Store.Btree.insert t k v)
      | None -> ())
    kvs

let batch_gen =
  let open QCheck.Gen in
  let key = map (fun i -> Printf.sprintf "%03d" i) (int_range 0 300) in
  pair
    (list_size (0 -- 300) (pair key small_nat)) (* seed inserts *)
    (list_size (0 -- 200) (pair key small_nat)) (* bulk batch *)

let batch_arb =
  let print (seed, batch) =
    let p l = String.concat ";" (List.map (fun (k, v) -> Printf.sprintf "(%s,%d)" k v) l) in
    Printf.sprintf "seed=[%s] batch=[%s]" (p seed) (p batch)
  in
  QCheck.make ~print batch_gen

(* Dedup (last wins, like the entry merge) then sort: apply_sorted
   requires a strictly ascending run. *)
let sorted_run batch =
  let tbl = Hashtbl.create 64 in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k v) batch;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let btree_apply_sorted_qcheck =
  QCheck.Test.make
    ~name:"apply_sorted = sequential find/insert loop (with splits)" ~count:300
    batch_arb
    (fun (seed, batch) ->
      let run = sorted_run batch in
      (* Install everywhere; on existing keys sum so the callback's
         [existing] argument is exercised, not just overwritten. *)
      let f _k x existing =
        match existing with Some v -> Some (v + x) | None -> Some x
      in
      let t = Store.Btree.create () and r = Store.Btree.create () in
      List.iter
        (fun (k, v) ->
          ignore (Store.Btree.insert t k v);
          ignore (Store.Btree.insert r k v))
        seed;
      let counts = Store.Btree.apply_sorted t run ~f in
      apply_seq r run ~f;
      Store.Btree.check_invariants t;
      Store.Btree.to_list t = Store.Btree.to_list r
      && Store.Btree.length t = Store.Btree.length r
      && counts.Store.Btree.descents + counts.Store.Btree.steps
         >= List.length run)

let btree_apply_sorted_decline_qcheck =
  QCheck.Test.make ~name:"apply_sorted None leaves the tree untouched"
    ~count:200 batch_arb
    (fun (seed, batch) ->
      let run = sorted_run batch in
      (* Decline every odd payload: those keys must keep their old
         binding (or stay absent). *)
      let f _k x existing =
        if x mod 2 = 1 then None
        else match existing with Some v -> Some (v + x) | None -> Some x
      in
      let t = Store.Btree.create () and r = Store.Btree.create () in
      List.iter
        (fun (k, v) ->
          ignore (Store.Btree.insert t k v);
          ignore (Store.Btree.insert r k v))
        seed;
      ignore (Store.Btree.apply_sorted t run ~f);
      apply_seq r run ~f;
      Store.Btree.check_invariants t;
      Store.Btree.to_list t = Store.Btree.to_list r)

let btree_apply_sorted_cursor_qcheck =
  QCheck.Test.make
    ~name:"cursor iteration agrees with to_list after random bulk applies"
    ~count:150 batch_arb
    (fun (seed, batch) ->
      let t = Store.Btree.create () in
      List.iter (fun (k, v) -> ignore (Store.Btree.insert t k v)) seed;
      ignore
        (Store.Btree.apply_sorted t (sorted_run batch) ~f:(fun _k x _ -> Some x));
      let c = Store.Btree.cursor t in
      Store.Btree.seek c "";
      let walked = ref [] in
      let continue = ref true in
      while !continue do
        match Store.Btree.current c with
        | Some kv ->
            walked := kv :: !walked;
            Store.Btree.advance c
        | None -> continue := false
      done;
      List.rev !walked = Store.Btree.to_list t)

(* The replay decision pattern count_sorted models: present keys mutate
   in place (no structural change), absent keys always install. *)
let replay_f _k x existing =
  match existing with Some _ -> None | None -> Some x

let btree_count_sorted_qcheck =
  QCheck.Test.make
    ~name:"count_sorted is read-only and predicts update-only runs exactly"
    ~count:200 batch_arb
    (fun (seed, batch) ->
      let t = Store.Btree.create () in
      List.iter (fun (k, v) -> ignore (Store.Btree.insert t k v)) seed;
      let run = sorted_run batch in
      let before = Store.Btree.to_list t in
      let predicted = Store.Btree.count_sorted t run in
      let read_only = Store.Btree.to_list t = before in
      (* Updates only (no structural change): the prediction must equal
         the live sweep's charges, key for key. *)
      let updates =
        List.filter (fun (k, _) -> Store.Btree.mem t k) run
      in
      let predicted_upd = Store.Btree.count_sorted t updates in
      let live_upd = Store.Btree.apply_sorted t updates ~f:replay_f in
      read_only
      && predicted_upd = live_upd
      && predicted.Store.Btree.descents + predicted.Store.Btree.steps
         >= List.length run)

let btree_count_sorted_splits_qcheck =
  QCheck.Test.make
    ~name:"count_sorted models split charges exactly on ascending appends"
    ~count:100
    QCheck.(int_range 1 400)
    (fun n ->
      (* A fresh tree plus a strictly ascending insert run keeps every
         key in the rightmost leaf, so the virtual-occupancy model must
         reproduce the live sweep's split descents exactly. *)
      let run = List.init n (fun i -> (Printf.sprintf "%04d" i, i)) in
      let t = Store.Btree.create () in
      let predicted = Store.Btree.count_sorted t run in
      let live = Store.Btree.apply_sorted t run ~f:replay_f in
      Store.Btree.check_invariants t;
      predicted = live)

let test_btree_apply_sorted_validation () =
  let t = Store.Btree.create () in
  Alcotest.check_raises "keys must be strictly ascending"
    (Invalid_argument "Btree.apply_sorted: keys must be strictly ascending")
    (fun () ->
      ignore
        (Store.Btree.apply_sorted t
           [ ("b", 1); ("a", 2) ]
           ~f:(fun _ x _ -> Some x)));
  Alcotest.check_raises "duplicates rejected too"
    (Invalid_argument "Btree.apply_sorted: keys must be strictly ascending")
    (fun () ->
      ignore
        (Store.Btree.apply_sorted t
           [ ("a", 1); ("a", 2) ]
           ~f:(fun _ x _ -> Some x)))

(* ---------- Record ---------- *)

let test_record_lock () =
  let r = Store.Record.make "v" in
  check_bool "lock free" true (Store.Record.try_lock r ~worker:1);
  check_bool "reentrant" true (Store.Record.try_lock r ~worker:1);
  check_bool "other blocked" false (Store.Record.try_lock r ~worker:2);
  Store.Record.unlock r ~worker:1;
  check_bool "now free" true (Store.Record.try_lock r ~worker:2);
  Alcotest.check_raises "wrong unlocker"
    (Invalid_argument "Record.unlock: not the lock holder") (fun () ->
      Store.Record.unlock r ~worker:1)

let test_record_cas () =
  let r = Store.Record.make ~epoch:1 ~ts:100 "old" in
  check_bool "older write loses" false
    (Store.Record.cas_apply r ~epoch:1 ~ts:50 ~value:(Some "x"));
  check_bool "value unchanged" true (r.Store.Record.value = "old");
  check_bool "same stamp loses (idempotent)" false
    (Store.Record.cas_apply r ~epoch:1 ~ts:100 ~value:(Some "x"));
  check_bool "newer ts wins" true
    (Store.Record.cas_apply r ~epoch:1 ~ts:101 ~value:(Some "new"));
  check_bool "value updated" true (r.Store.Record.value = "new");
  check_bool "newer epoch beats bigger ts" true
    (Store.Record.cas_apply r ~epoch:2 ~ts:1 ~value:None);
  check_bool "tombstoned" true r.Store.Record.deleted

let record_cas_monotone_qcheck =
  QCheck.Test.make ~name:"record stamp never regresses under random CAS" ~count:200
    QCheck.(list (pair (int_range 0 3) (int_range 0 100)))
    (fun stamps ->
      let r = Store.Record.make "init" in
      List.for_all
        (fun (epoch, ts) ->
          let before = (r.Store.Record.epoch, r.Store.Record.ts) in
          let won = Store.Record.cas_apply r ~epoch ~ts ~value:(Some "v") in
          let after = (r.Store.Record.epoch, r.Store.Record.ts) in
          if won then after = (epoch, ts) && after > before else after = before)
        stamps)

let test_record_snapshot_retention () =
  let r = Store.Record.make ~epoch:1 ~ts:100 "v100" in
  (* A pin >= floor may still need ts=100, so the install retains it. *)
  ignore (Store.Record.cas_apply_retain r ~floor:90 ~epoch:1 ~ts:200 ~value:(Some "v200"));
  check_bool "current at high pin" true
    (Store.Record.read_at r ~pin:250 = Store.Record.Visible (Some "v200", 200));
  check_bool "slot at mid pin" true
    (Store.Record.read_at r ~pin:150 = Store.Record.Visible (Some "v100", 100));
  check_bool "miss below the slot" true
    (Store.Record.read_at r ~pin:50 = Store.Record.Miss);
  (* Once the floor has passed the current stamp, retention reclaims. *)
  ignore (Store.Record.cas_apply_retain r ~floor:300 ~epoch:1 ~ts:300 ~value:(Some "v300"));
  check_bool "slot reclaimed" true (r.Store.Record.snap_ts = -1);
  check_bool "below-pin key absent" true
    (match Store.Record.read_at r ~pin:250 with
    | Store.Record.Visible (None, -1) -> true
    | _ -> false);
  (* Tombstones are versions too: a deletion retained in the slot reads
     back as [None] at an old pin. *)
  ignore (Store.Record.cas_apply_retain r ~floor:250 ~epoch:1 ~ts:400 ~value:None);
  check_bool "prior survives delete" true
    (Store.Record.read_at r ~pin:350 = Store.Record.Visible (Some "v300", 300));
  check_bool "delete visible above" true
    (Store.Record.read_at r ~pin:400 = Store.Record.Visible (None, 400))

let test_record_reject_refresh () =
  (* Parallel per-stream replay: ts=300 lands first, then the slower
     stream delivers ts=200. The CAS rejects it, but it is the newest
     version below the current stamp — it must land in the slot so a read
     pinned in [200, 300) still sees it. *)
  let r = Store.Record.make ~epoch:1 ~ts:100 "v100" in
  ignore (Store.Record.cas_apply_retain r ~floor:90 ~epoch:1 ~ts:300 ~value:(Some "v300"));
  check_bool "crossed write rejected" false
    (Store.Record.cas_apply_retain r ~floor:90 ~epoch:1 ~ts:200 ~value:(Some "v200"));
  check_bool "current untouched" true (r.Store.Record.ts = 300);
  check_bool "loser parked in slot" true
    (Store.Record.read_at r ~pin:250 = Store.Record.Visible (Some "v200", 200));
  (* A second, even older loser must not displace the newer slot entry. *)
  check_bool "older loser rejected" false
    (Store.Record.cas_apply_retain r ~floor:90 ~epoch:1 ~ts:150 ~value:(Some "v150"));
  check_bool "slot keeps newer loser" true (r.Store.Record.snap_ts = 200)

let test_record_byte_size_slot () =
  let r = Store.Record.make ~epoch:1 ~ts:100 "aaaa" in
  let base = Store.Record.byte_size ~key:"k" r in
  check_int "no slot overhead while empty" base (64 + 1 + 4);
  ignore
    (Store.Record.cas_apply_retain r ~floor:90 ~epoch:1 ~ts:200
       ~value:(Some "bbbbbbbb"));
  (* Occupied slot: fixed 32-byte overhead plus the retained value. *)
  check_int "slot overhead while occupied"
    (64 + 1 + 8 + 32 + 4)
    (Store.Record.byte_size ~key:"k" r);
  Store.Record.snap_clear r;
  check_int "reclaimed after snap_clear" (64 + 1 + 8)
    (Store.Record.byte_size ~key:"k" r)

(* Interleave retained installs and rejected crossed writes at random;
   [read_at] must never surface a version stamped above the pin, and a
   visible version must carry the value written at that stamp. *)
let record_read_at_qcheck =
  QCheck.Test.make ~name:"read_at never exceeds the pin" ~count:300
    QCheck.(list (pair (int_range 1 60) (int_range 0 40)))
    (fun writes ->
      let r = Store.Record.make "init" in
      List.for_all
        (fun (ts, floor) ->
          ignore
            (Store.Record.cas_apply_retain r ~floor ~epoch:0 ~ts
               ~value:(Some (string_of_int ts)));
          List.for_all
            (fun pin ->
              match Store.Record.read_at r ~pin with
              | Store.Record.Miss -> true
              | Store.Record.Visible (None, vts) -> vts <= pin
              | Store.Record.Visible (Some v, vts) ->
                  (* ts=0 is the seed record's own stamp ("init"). *)
                  vts <= pin && (vts = 0 || v = string_of_int vts))
            [ 0; 10; 20; 30; 40; 50; 60 ])
        writes)

(* ---------- Table ---------- *)

let test_table_tombstones () =
  let t = Store.Table.create ~id:0 ~name:"t" () in
  Store.Table.insert t "a" (Store.Record.make "1");
  let r = Store.Record.make "2" in
  Store.Table.insert t "b" r;
  r.Store.Record.deleted <- true;
  check_bool "get sees tombstone" true (Store.Table.get t "b" <> None);
  check_bool "get_live hides tombstone" true (Store.Table.get_live t "b" = None);
  check_int "scan skips tombstone" 1 (List.length (Store.Table.scan t ~lo:"" ~hi:"z" ()));
  check_int "scan_all includes it" 2 (List.length (Store.Table.scan_all t ~lo:"" ~hi:"z"));
  check_int "compact drops one" 1 (Store.Table.compact t);
  check_int "one physical record left" 1 (Store.Table.count t)

let test_table_min_live () =
  let t = Store.Table.create ~id:0 ~name:"t" () in
  let r1 = Store.Record.make "1" in
  r1.Store.Record.deleted <- true;
  Store.Table.insert t "a" r1;
  Store.Table.insert t "b" (Store.Record.make "2");
  match Store.Table.min_live t ~lo:"" ~hi:"z" with
  | Some ("b", _) -> ()
  | Some (k, _) -> Alcotest.failf "expected b, got %s" k
  | None -> Alcotest.fail "expected a live record"

let test_table_bytes_accounting () =
  let t = Store.Table.create ~id:0 ~name:"t" () in
  check_int "empty" 0 (Store.Table.bytes t);
  Store.Table.insert t "k" (Store.Record.make "0123456789");
  check_bool "grew" true (Store.Table.bytes t > 0);
  Store.Table.remove_phys t "k";
  check_int "back to zero" 0 (Store.Table.bytes t)

let test_table_duplicate_insert () =
  let t = Store.Table.create ~id:0 ~name:"dup" () in
  Store.Table.insert t "k" (Store.Record.make "1");
  Alcotest.check_raises "duplicate rejected"
    (Invalid_argument "Table.insert: duplicate key in dup") (fun () ->
      Store.Table.insert t "k" (Store.Record.make "2"));
  (* Original binding survives the failed insert. *)
  match Store.Table.get t "k" with
  | Some r -> check_bool "old value" true (r.Store.Record.value = "1")
  | None -> Alcotest.fail "binding lost"

(* ---------- Hash-indexed tables ---------- *)

let test_hash_point_ops () =
  let t = Store.Table.create ~repr:Store.Table.Hash ~id:7 ~name:"item" () in
  check_bool "repr" true (Store.Table.repr t = Store.Table.Hash);
  Store.Table.insert t "a" (Store.Record.make "1");
  let r = Store.Record.make "2" in
  Store.Table.insert t "b" r;
  r.Store.Record.deleted <- true;
  check_bool "get sees tombstone" true (Store.Table.get t "b" <> None);
  check_bool "get_live hides tombstone" true (Store.Table.get_live t "b" = None);
  check_int "count" 2 (Store.Table.count t);
  Alcotest.check_raises "duplicate rejected"
    (Invalid_argument "Table.insert: duplicate key in item") (fun () ->
      Store.Table.insert t "a" (Store.Record.make "x"));
  check_int "compact drops tombstone" 1 (Store.Table.compact t);
  Store.Table.remove_phys t "a";
  check_int "empty after removes" 0 (Store.Table.count t)

let test_hash_range_ops_raise () =
  let t = Store.Table.create ~repr:Store.Table.Hash ~id:0 ~name:"h" () in
  Store.Table.insert t "k" (Store.Record.make "v");
  let expect_raise label f =
    try
      ignore (f ());
      Alcotest.failf "%s must raise on a hash table" label
    with Invalid_argument _ -> ()
  in
  expect_raise "scan" (fun () -> Store.Table.scan t ~lo:"" ~hi:"z" ());
  expect_raise "scan_all" (fun () -> Store.Table.scan_all t ~lo:"" ~hi:"z");
  expect_raise "min_live" (fun () -> Store.Table.min_live t ~lo:"" ~hi:"z");
  expect_raise "max_live" (fun () -> Store.Table.max_live t ~lo:"" ~hi:"z");
  expect_raise "tree" (fun () -> Store.Table.tree t)

let test_hash_iter_ascending () =
  let t = Store.Table.create ~repr:Store.Table.Hash ~id:0 ~name:"h" () in
  List.iter
    (fun k -> Store.Table.insert t k (Store.Record.make k))
    [ "q"; "b"; "z"; "a"; "m" ];
  let seen = ref [] in
  Store.Table.iter t (fun k _ -> seen := k :: !seen);
  check_bool "ascending order" true
    (List.rev !seen = [ "a"; "b"; "m"; "q"; "z" ])

let test_hash_apply_sorted_run () =
  let t = Store.Table.create ~repr:Store.Table.Hash ~id:0 ~name:"h" () in
  Store.Table.insert t "b" (Store.Record.make "old");
  let run = [ ("a", "1"); ("b", "2"); ("c", "3") ] in
  let counts = Store.Table.count_sorted_run t run in
  check_int "one descent per key" 3 counts.Store.Btree.descents;
  check_int "no steps on hash" 0 counts.Store.Btree.steps;
  let applied =
    Store.Table.apply_sorted_run t run ~f:(fun _key payload existing ->
        match existing with
        | Some r ->
            r.Store.Record.value <- payload;
            None
        | None -> Some (Store.Record.make payload))
  in
  check_int "applied descents" 3 applied.Store.Btree.descents;
  check_int "all present" 3 (Store.Table.count t);
  (match Store.Table.get t "b" with
  | Some r -> check_bool "updated in place" true (r.Store.Record.value = "2")
  | None -> Alcotest.fail "b lost");
  Alcotest.check_raises "unsorted run rejected"
    (Invalid_argument "Table.apply_sorted_run: keys not strictly ascending")
    (fun () ->
      ignore
        (Store.Table.apply_sorted_run t [ ("z", "1"); ("a", "2") ]
           ~f:(fun _ _ _ -> None)))

(* Model-based equivalence: the same random point-op trace against a
   B-tree table and a hash table must be observationally identical —
   every get result, the final count, and the ascending [iter] listing.
   This is the contract that lets a config flip a table's representation
   without replicas diverging. *)
let hash_btree_equiv_qcheck =
  let op_gen =
    let open QCheck.Gen in
    let key = map (Printf.sprintf "k%02d") (int_range 0 30) in
    frequency
      [
        (4, map2 (fun k v -> `Upsert (k, v)) key (string_size (1 -- 8)));
        (2, map (fun k -> `Get k) key);
        (1, map (fun k -> `Remove k) key);
        (1, map (fun k -> `Tombstone k) key);
      ]
  in
  QCheck.Test.make ~name:"hash table = btree table (point ops)" ~count:200
    (QCheck.make QCheck.Gen.(list_size (0 -- 60) op_gen))
    (fun ops ->
      let bt = Store.Table.create ~id:0 ~name:"t" () in
      let ht = Store.Table.create ~repr:Store.Table.Hash ~id:0 ~name:"t" () in
      let value t k =
        match Store.Table.get t k with
        | None -> None
        | Some r -> Some (r.Store.Record.value, r.Store.Record.deleted)
      in
      let upsert t k v =
        match Store.Table.get t k with
        | Some r ->
            r.Store.Record.value <- v;
            r.Store.Record.deleted <- false
        | None -> Store.Table.insert t k (Store.Record.make v)
      in
      let tombstone t k =
        match Store.Table.get t k with
        | Some r -> r.Store.Record.deleted <- true
        | None -> ()
      in
      List.for_all
        (fun op ->
          (match op with
          | `Upsert (k, v) ->
              upsert bt k v;
              upsert ht k v
          | `Remove k ->
              Store.Table.remove_phys bt k;
              Store.Table.remove_phys ht k
          | `Tombstone k ->
              tombstone bt k;
              tombstone ht k
          | `Get _ -> ());
          match op with
          | `Get k -> value bt k = value ht k
          | _ -> true)
        ops
      &&
      let listing t =
        let acc = ref [] in
        Store.Table.iter t (fun k r ->
            acc := (k, r.Store.Record.value, r.Store.Record.deleted) :: !acc);
        List.rev !acc
      in
      Store.Table.count bt = Store.Table.count ht && listing bt = listing ht)

(* ---------- Wire ---------- *)

let sample_entry () =
  let w1 = { Store.Wire.table = 1; key = "k1"; value = Some "v1" } in
  let w2 = { Store.Wire.table = 2; key = "k2"; value = None } in
  Store.Wire.make_entry ~epoch:3
    [
      {
        Store.Wire.ts = 100;
        req = Some (7, 42);
        decision =
          Some { Store.Wire.d_xid = 9001; d_phase = Store.Wire.Committed; d_parts = [ 0; 2 ] };
        writes = [ w1; w2 ];
      };
      { Store.Wire.ts = 105; req = None; decision = None; writes = [ w1 ] };
    ]

let test_wire_roundtrip () =
  let e = sample_entry () in
  check_int "last ts from batch" 105 e.Store.Wire.last_ts;
  let e' = Store.Wire.decode (Store.Wire.encode e) in
  check_bool "roundtrip" true (e = e')

let test_wire_size_matches_encoding () =
  let e = sample_entry () in
  check_int "byte_size = encoded length" (String.length (Store.Wire.encode e))
    (Store.Wire.byte_size e)

let test_wire_noop () =
  let n = Store.Wire.noop ~epoch:2 ~ts:55 in
  check_bool "is noop" true (Store.Wire.is_noop n);
  check_bool "roundtrip noop" true (Store.Wire.decode (Store.Wire.encode n) = n)

let test_wire_malformed () =
  let e = sample_entry () in
  let enc = Store.Wire.encode e in
  let truncated = String.sub enc 0 (String.length enc - 3) in
  (try
     ignore (Store.Wire.decode truncated);
     Alcotest.fail "truncated input must be rejected"
   with Invalid_argument _ -> ());
  let extended = enc ^ "xx" in
  try
    ignore (Store.Wire.decode extended);
    Alcotest.fail "trailing bytes must be rejected"
  with Invalid_argument _ -> ()

let wire_entry_gen =
  let open QCheck.Gen in
  let write =
    map3
      (fun table key value -> { Store.Wire.table; key; value })
      (int_range 0 20) (string_size (0 -- 10))
      (option (string_size (0 -- 30)))
  in
  let txn =
    let req =
      option (map2 (fun cid seq -> (cid, seq)) (int_range 0 100) (int_range 1 1000))
    in
    let decision =
      option
        (map3
           (fun d_xid phase d_parts ->
             let d_phase =
               match phase with
               | 0 -> Store.Wire.Prepared
               | 1 -> Store.Wire.Committed
               | 2 -> Store.Wire.Aborted
               | 3 -> Store.Wire.Applied
               | _ -> Store.Wire.Canceled
             in
             { Store.Wire.d_xid; d_phase; d_parts })
           big_nat (int_range 0 4)
           (list_size (0 -- 4) (int_range 0 7)))
    in
    map3
      (fun ts (req, decision) writes -> { Store.Wire.ts; req; decision; writes })
      big_nat (pair req decision)
      (list_size (0 -- 5) write)
  in
  map2
    (fun epoch txns ->
      match txns with
      | [] -> Store.Wire.noop ~epoch ~ts:0
      | _ -> Store.Wire.make_entry ~epoch txns)
    (int_range 0 100) (list_size (0 -- 8) txn)

let wire_roundtrip_qcheck =
  QCheck.Test.make ~name:"wire roundtrip + size law" ~count:300
    (QCheck.make wire_entry_gen) (fun e ->
      let enc = Store.Wire.encode e in
      Store.Wire.decode enc = e && String.length enc = Store.Wire.byte_size e)

(* The allocation-light encoder must be byte-for-byte the same as the
   one-shot [encode], including when the scratch buffer is reused across
   entries of wildly different sizes (reuse is the whole point: one
   scratch per worker, never reallocated once warm). *)
let wire_encode_into_qcheck =
  let scratch = Store.Wire.Scratch.create ~capacity:8 () in
  QCheck.Test.make ~name:"encode_into = encode (reused scratch)" ~count:300
    (QCheck.make QCheck.Gen.(list_size (1 -- 6) wire_entry_gen))
    (fun entries ->
      List.for_all
        (fun e -> Store.Wire.encode_into scratch e = Store.Wire.encode e)
        entries)

let test_wire_scratch_growth () =
  let s = Store.Wire.Scratch.create ~capacity:4 () in
  check_bool "initial capacity honoured" true
    (Store.Wire.Scratch.capacity s >= 4);
  let e = sample_entry () in
  let enc = Store.Wire.encode_into s e in
  check_bool "matches one-shot encode" true (enc = Store.Wire.encode e);
  check_bool "grew to fit" true
    (Store.Wire.Scratch.capacity s >= String.length enc);
  let cap = Store.Wire.Scratch.capacity s in
  ignore (Store.Wire.encode_into s e);
  check_int "stable once warm" cap (Store.Wire.Scratch.capacity s)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "store"
    [
      ( "keycodec",
        [
          Alcotest.test_case "next_prefix" `Quick test_next_prefix;
          Alcotest.test_case "prefix scan semantics" `Quick test_prefix_scan_semantics;
          qc codec_roundtrip;
          qc codec_order_preserving;
          qc codec_tpcc_order;
          qc codec_split_key_soundness;
          qc codec_decode_fuzz;
        ] );
      ( "btree",
        [
          Alcotest.test_case "basic" `Quick test_btree_basic;
          Alcotest.test_case "sorted inserts" `Quick test_btree_many_sorted_inserts;
          Alcotest.test_case "reverse + deletes" `Quick
            test_btree_reverse_inserts_then_deletes;
          Alcotest.test_case "drain" `Quick test_btree_drain;
          Alcotest.test_case "range ops" `Quick test_btree_range;
          Alcotest.test_case "insert_if_absent" `Quick
            test_btree_insert_if_absent;
          Alcotest.test_case "cursor walk" `Quick test_btree_cursor_walk;
          Alcotest.test_case "apply_sorted validation" `Quick
            test_btree_apply_sorted_validation;
          qc btree_model_qcheck;
          qc btree_range_qcheck;
          qc btree_find_last_lt_qcheck;
          qc btree_apply_sorted_qcheck;
          qc btree_apply_sorted_decline_qcheck;
          qc btree_apply_sorted_cursor_qcheck;
          qc btree_count_sorted_qcheck;
          qc btree_count_sorted_splits_qcheck;
        ] );
      ( "record",
        [
          Alcotest.test_case "locking" `Quick test_record_lock;
          Alcotest.test_case "cas" `Quick test_record_cas;
          Alcotest.test_case "snapshot retention" `Quick
            test_record_snapshot_retention;
          Alcotest.test_case "reject refresh" `Quick test_record_reject_refresh;
          Alcotest.test_case "byte_size slot overhead" `Quick
            test_record_byte_size_slot;
          qc record_cas_monotone_qcheck;
          qc record_read_at_qcheck;
        ] );
      ( "table",
        [
          Alcotest.test_case "tombstones" `Quick test_table_tombstones;
          Alcotest.test_case "min_live" `Quick test_table_min_live;
          Alcotest.test_case "byte accounting" `Quick test_table_bytes_accounting;
          Alcotest.test_case "duplicate insert" `Quick test_table_duplicate_insert;
        ] );
      ( "hash-table",
        [
          Alcotest.test_case "point ops" `Quick test_hash_point_ops;
          Alcotest.test_case "range ops raise" `Quick test_hash_range_ops_raise;
          Alcotest.test_case "iter ascending" `Quick test_hash_iter_ascending;
          Alcotest.test_case "apply_sorted_run" `Quick test_hash_apply_sorted_run;
          qc hash_btree_equiv_qcheck;
        ] );
      ( "wire",
        [
          Alcotest.test_case "roundtrip" `Quick test_wire_roundtrip;
          Alcotest.test_case "size law" `Quick test_wire_size_matches_encoding;
          Alcotest.test_case "noop" `Quick test_wire_noop;
          Alcotest.test_case "malformed input" `Quick test_wire_malformed;
          Alcotest.test_case "scratch growth" `Quick test_wire_scratch_growth;
          qc wire_roundtrip_qcheck;
          qc wire_encode_into_qcheck;
        ] );
    ]
