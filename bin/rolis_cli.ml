(* Command-line driver: run a Rolis cluster or a baseline system with
   custom parameters and print a measurement summary.

   Examples:
     rolis-cli run --workload tpcc --workers 16 --duration-ms 500
     rolis-cli run --workload ycsb --workers 8 --batch 10000 --crash-at-ms 800
     rolis-cli baseline --system 2pl --partitions 16
     rolis-cli baseline --system meerkat --threads 28 --workload ycsb
     rolis-cli trace --workload tpcc --workers 8 -o spans.jsonl
     rolis-cli bench-diff bench/baseline_quick.json BENCH_rolis.json *)

open Cmdliner

let ms = Sim.Engine.ms

let fmt_tps v =
  if v >= 1e6 then Printf.sprintf "%.2fM" (v /. 1e6)
  else if v >= 1e3 then Printf.sprintf "%.0fK" (v /. 1e3)
  else Printf.sprintf "%.0f" v

(* ---- run: a Rolis cluster ---- *)

let batch_policy_of_string s =
  match String.lowercase_ascii s with
  | "fixed" -> Rolis.Config.Fixed
  | "adaptive" -> Rolis.Config.Adaptive
  | other ->
      Printf.eprintf "unknown batch policy %S (fixed|adaptive)\n" other;
      exit 2

let replay_batch_of_string s =
  match String.lowercase_ascii s with
  | "pertxn" | "per-txn" -> Rolis.Config.PerTxn
  | "bulk" -> Rolis.Config.Bulk
  | other ->
      Printf.eprintf "unknown replay batch mode %S (pertxn|bulk)\n" other;
      exit 2

(* Sharded deployment: each shard is a full cluster; drivers route
   single-shard transactions directly and commit cross-shard ones with
   the replicated-2PC protocol (see Rolis.Shard). *)
let run_sharded workload workers cores batch batch_policy shards cross_pct
    drivers duration_ms warmup_ms seed =
  let cfg =
    {
      Rolis.Config.default with
      Rolis.Config.workers;
      cores;
      batch_size = batch;
      batch_policy = batch_policy_of_string batch_policy;
      clients = drivers;
      seed = Int64.of_int seed;
      shards;
      cross_pct;
    }
  in
  let router, app, veto, gen =
    match workload with
    | "tpcc" ->
        let warehouses = workers * shards in
        let p = Workload.Tpcc.with_warehouses Workload.Tpcc.default warehouses in
        let router = Rolis.Router.tpcc ~warehouses ~shards in
        ( router,
          Workload.Tpcc.client_app p,
          Some (Workload.Tpcc.veto p),
          fun ~rng ~driver:_ -> Workload.Tpcc.shard_gen p router ~cross_pct ~rng )
    | "ycsb" ->
        let p = { Workload.Ycsb.default with Workload.Ycsb.keys = 200_000 } in
        let router = Rolis.Router.ycsb ~keys:p.Workload.Ycsb.keys ~shards in
        ( router,
          Workload.Ycsb.client_app p,
          None,
          fun ~rng ~driver:_ -> Workload.Ycsb.shard_gen p router ~cross_pct ~rng )
    | other ->
        Printf.eprintf "unknown workload %S (tpcc|ycsb)\n" other;
        exit 2
  in
  let dep =
    try Rolis.Shard.create ?veto cfg router (fun ~shard:_ -> app) ~gen
    with Invalid_argument msg ->
      Printf.eprintf "sharded run: %s\n" msg;
      exit 2
  in
  Rolis.Shard.run dep ~warmup:(warmup_ms * ms) ~duration:(duration_ms * ms) ();
  let lat = Rolis.Shard.latency dep in
  Printf.printf "workload:        %s, %d shards x %d workers, %.0f%% cross-shard, %d drivers\n"
    workload shards workers (100.0 *. cross_pct) drivers;
  Printf.printf "throughput:      %s TPS aggregate (logical transactions)\n"
    (fmt_tps (Rolis.Shard.throughput dep));
  Printf.printf "committed:       %d (aborted %d); cross-shard %d committed / %d aborted, %d prepares\n"
    (Rolis.Shard.committed dep) (Rolis.Shard.aborted dep)
    (Rolis.Shard.cross_committed dep) (Rolis.Shard.cross_aborted dep)
    (Rolis.Shard.prepares dep);
  Printf.printf "latency:         p50 %.1f ms, p95 %.1f ms\n"
    (float_of_int (Sim.Metrics.Hist.quantile lat 0.5) /. 1e6)
    (float_of_int (Sim.Metrics.Hist.quantile lat 0.95) /. 1e6);
  if Rolis.Shard.cross_committed dep > 0 then begin
    let xlat = Rolis.Shard.cross_latency dep in
    Printf.printf "cross latency:   p50 %.1f ms, p95 %.1f ms\n"
      (float_of_int (Sim.Metrics.Hist.quantile xlat 0.5) /. 1e6)
      (float_of_int (Sim.Metrics.Hist.quantile xlat 0.95) /. 1e6)
  end;
  Printf.printf "released:        %d sub-transactions across %d shards; retries %d\n"
    (Rolis.Shard.released dep) shards
    (Rolis.Shard.client_retries dep);
  Array.iteri
    (fun s cluster ->
      match Rolis.Cluster.leader cluster with
      | Some r ->
          Printf.printf "shard %d leader:  replica %d (epoch %d)\n" s
            (Rolis.Replica.id r)
            (Paxos.Election.epoch (Rolis.Replica.election r))
      | None -> Printf.printf "shard %d leader:  none!\n" s)
    (Rolis.Shard.clusters dep)

let run_cluster workload workers cores batch batch_policy replay_batch
    replay_parallel hash_tables target_delay_us duration_ms warmup_ms networked
    single_stream crash_at_ms ckpt_interval_ms no_truncate follower_reads
    read_lease_us wan_profile shards cross_pct drivers seed =
  if shards > 1 then
    run_sharded workload workers cores batch batch_policy shards cross_pct
      drivers duration_ms warmup_ms seed
  else begin
  let ycsb_params = { Workload.Ycsb.default with Workload.Ycsb.keys = 200_000 } in
  let app, is_tpcc =
    match workload with
    | "tpcc" ->
        (Workload.Tpcc.app (Workload.Tpcc.with_warehouses Workload.Tpcc.default workers), true)
    | "ycsb" -> (Workload.Ycsb.app ycsb_params, false)
    | other ->
        Printf.eprintf "unknown workload %S (tpcc|ycsb)\n" other;
        exit 2
  in
  if follower_reads && is_tpcc then begin
    Printf.eprintf "--follower-reads needs a workload with a read_op (use --workload ycsb)\n";
    exit 2
  end;
  let policy = batch_policy_of_string batch_policy in
  let rbatch = replay_batch_of_string replay_batch in
  let cfg =
    {
      Rolis.Config.default with
      Rolis.Config.workers;
      cores;
      batch_size = batch;
      batch_policy = policy;
      replay_batch = rbatch;
      replay_parallel;
      hash_tables;
      target_batch_delay_ns = target_delay_us * Sim.Engine.us;
      networked_clients = networked;
      stream_mode = (if single_stream then Rolis.Config.Single else Rolis.Config.Per_worker);
      (* Checkpointing implies archived journals: recovery is checkpoint +
         journal tail, and truncation needs a journal to bound. *)
      checkpoint_interval = ckpt_interval_ms * ms;
      checkpoint_truncate = not no_truncate;
      archive_entries =
        Rolis.Config.default.Rolis.Config.archive_entries || ckpt_interval_ms > 0;
      seed = Int64.of_int seed;
      follower_reads;
      read_lease = read_lease_us * Sim.Engine.us;
      wan_profile;
      (* Read-only sessions ride client network slots; the write path
         stays on the embedded generator (Ycsb.app has no client_op). *)
      clients = (if follower_reads then 4 else Rolis.Config.default.Rolis.Config.clients);
    }
  in
  let cluster = Rolis.Cluster.create cfg app in
  let read_sessions =
    if not follower_reads then [||]
    else
      Array.init cfg.Rolis.Config.clients (fun cid ->
          let rng = Sim.Rng.split (Sim.Engine.rng (Rolis.Cluster.engine cluster)) in
          Rolis.Client.spawn (Rolis.Cluster.network cluster) ~cfg ~cid ~ro:true
            ~stats:(Rolis.Cluster.client_read_stats cluster)
            ~gen:(Workload.Ycsb.read_payload_gen ycsb_params rng)
            ())
  in
  (match crash_at_ms with
  | Some at ->
      Sim.Engine.schedule (Rolis.Cluster.engine cluster) (at * ms) (fun () ->
          Printf.printf "[t=%dms] crashing leader (replica 0)\n%!" at;
          Rolis.Cluster.crash_replica cluster 0)
  | None -> ());
  Rolis.Cluster.run cluster ~warmup:(warmup_ms * ms) ~duration:(duration_ms * ms) ();
  let lat = Rolis.Cluster.latency cluster in
  Printf.printf "workload:        %s, %d workers, batch %d (%s policy)%s%s\n" workload
    workers batch
    (match policy with Rolis.Config.Fixed -> "fixed" | Rolis.Config.Adaptive -> "adaptive")
    (if networked then ", networked clients" else "")
    (if single_stream then ", SINGLE shared stream (strawman)" else "");
  Printf.printf "throughput:      %s TPS (release-committed)\n"
    (fmt_tps (Rolis.Cluster.throughput cluster));
  Printf.printf "latency:         p50 %.1f ms, p95 %.1f ms\n"
    (float_of_int (Sim.Metrics.Hist.quantile lat 0.5) /. 1e6)
    (float_of_int (Sim.Metrics.Hist.quantile lat 0.95) /. 1e6);
  if policy = Rolis.Config.Adaptive then
    Printf.printf
      "adaptive:        %d deadline flushes, %d event releases, %d coalesced proposals\n"
      (Rolis.Cluster.deadline_flushes cluster)
      (Rolis.Cluster.event_releases cluster)
      (Rolis.Cluster.coalesced_proposals cluster);
  Printf.printf "replay:          %d txns replayed (%s mode)%s\n"
    (Rolis.Cluster.replayed_txns cluster)
    (match rbatch with
    | Rolis.Config.PerTxn -> "per-txn"
    | Rolis.Config.Bulk ->
        if replay_parallel > 1 then Printf.sprintf "bulk x%d" replay_parallel
        else "bulk")
    (match Rolis.Cluster.replay_lag cluster with
    | Some (n, p50, p95) ->
        Printf.sprintf ", follower lag p50 %.2f ms / p95 %.2f ms (%d samples)"
          (float_of_int p50 /. 1e6)
          (float_of_int p95 /. 1e6)
          n
    | None -> "");
  Printf.printf "executed:        %d (user aborts: %d)\n" (Rolis.Cluster.executed cluster)
    (Rolis.Cluster.user_aborts cluster);
  if follower_reads then begin
    let acked =
      Array.fold_left (fun a c -> a + Rolis.Client.acked_count c) 0 read_sessions
    in
    Printf.printf
      "reads:           %d acked / %d served, parked %d, redirected %d, \
       misses %d%s%s\n"
      acked
      (Rolis.Cluster.reads_served cluster)
      (Rolis.Cluster.reads_parked cluster)
      (Rolis.Cluster.reads_redirected cluster)
      (Rolis.Cluster.read_misses cluster)
      (match Rolis.Cluster.read_staleness cluster with
      | Some (n, p50, p95) ->
          Printf.sprintf ", staleness p50 %.2f ms / p95 %.2f ms (%d samples)"
            (float_of_int p50 /. 1e6)
            (float_of_int p95 /. 1e6)
            n
      | None -> "")
      (if wan_profile <> "" then Printf.sprintf " [%s]" wan_profile else "")
  end;
  if ckpt_interval_ms > 0 then begin
    let newest =
      match Rolis.Cluster.newest_checkpoint cluster with
      | Some ck ->
          Printf.sprintf "newest %d rows / %.1f MB at t=%dms"
            (Rolis.Checkpoint.row_count ck.Rolis.Checkpoint.ri_image)
            (float_of_int (Rolis.Checkpoint.size_bytes ck.Rolis.Checkpoint.ri_image)
            /. 1e6)
            (ck.Rolis.Checkpoint.ri_taken_at / ms)
      | None -> "none completed"
    in
    Printf.printf
      "checkpoint:      %d taken (%s); journal %d entries / %.1f MB resident, \
       %d truncated in %d rounds%s\n"
      (Rolis.Cluster.checkpoints_taken cluster)
      newest
      (Rolis.Cluster.journal_entries_total cluster)
      (float_of_int (Rolis.Cluster.journal_bytes_total cluster) /. 1e6)
      (Rolis.Cluster.truncated_entries_total cluster)
      (Rolis.Cluster.truncation_rounds cluster)
      (if no_truncate then " (truncation disabled)" else "")
  end;
  (match Rolis.Cluster.leader cluster with
  | Some r ->
      Printf.printf "leader:          replica %d (epoch %d)\n" (Rolis.Replica.id r)
        (Paxos.Election.epoch (Rolis.Replica.election r));
      if is_tpcc then begin
        let errors =
          Workload.Tpcc.consistency_errors
            (Workload.Tpcc.with_warehouses Workload.Tpcc.default workers)
            (Rolis.Replica.db r)
        in
        Printf.printf "tpcc-consistency: %s\n"
          (if errors = [] then "OK" else String.concat "; " errors)
      end
  | None -> Printf.printf "leader:          none!\n")
  end

let workload_arg =
  Arg.(value & opt string "tpcc" & info [ "workload"; "w" ] ~doc:"Workload: tpcc or ycsb.")

let workers_arg = Arg.(value & opt int 8 & info [ "workers" ] ~doc:"Database worker threads.")
let cores_arg = Arg.(value & opt int 32 & info [ "cores" ] ~doc:"CPU cores per machine.")
let batch_arg = Arg.(value & opt int 1000 & info [ "batch" ] ~doc:"Transactions per log entry.")

let batch_policy_arg =
  Arg.(
    value & opt string "fixed"
    & info [ "batch-policy" ]
        ~doc:
          "Batching policy: $(b,fixed) (static batch size + flush timer) or \
           $(b,adaptive) (latency-targeted sizing, deadline flush, \
           event-driven release, proposal coalescing).")

let replay_batch_arg =
  Arg.(
    value & opt string "pertxn"
    & info [ "replay-batch" ]
        ~doc:
          "Follower replay mode: $(b,pertxn) (one CAS transaction per \
           replayed write-set, the paper's loop) or $(b,bulk) (sorted \
           entry-at-a-time cursor sweep with event-driven wakeups).")

let replay_parallel_arg =
  Arg.(
    value & opt int 1
    & info [ "replay-parallel" ]
        ~doc:
          "Bulk replay fan-out: cut each released entry's sorted run into \
           this many key-disjoint slices applied concurrently on the \
           follower (requires $(b,--replay-batch bulk)). 1 = sequential \
           sweep.")

let hash_tables_arg =
  Arg.(
    value
    & opt (list string) []
    & info [ "hash-tables" ]
        ~doc:
          "Comma-separated table names to back with the point-lookup hash \
           index instead of the B-tree (e.g. $(b,usertable) for YCSB, \
           $(b,item) for TPC-C). Listed tables must never be range-scanned.")

let target_delay_arg =
  Arg.(
    value
    & opt int (Rolis.Config.default.Rolis.Config.target_batch_delay_ns / Sim.Engine.us)
    & info [ "target-delay-us" ]
        ~doc:"Adaptive policy: per-batch latency budget in microseconds.")

let duration_arg =
  Arg.(value & opt int 500 & info [ "duration-ms" ] ~doc:"Measured virtual time (ms).")

let warmup_arg = Arg.(value & opt int 200 & info [ "warmup-ms" ] ~doc:"Warm-up (ms).")
let networked_arg = Arg.(value & flag & info [ "networked" ] ~doc:"Open-loop networked clients.")

let single_arg =
  Arg.(value & flag & info [ "single-stream" ] ~doc:"Strawman: one shared Paxos stream.")

let crash_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "crash-at-ms" ] ~doc:"Kill the leader at this virtual time (ms).")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Simulation seed.")

let ckpt_interval_arg =
  Arg.(
    value & opt int 0
    & info [ "checkpoint-interval" ]
        ~doc:
          "Take a fuzzy checkpoint on each follower every this many virtual \
           milliseconds (0 disables). Implies journal archiving; once a \
           checkpoint frontier is quorum-stable and the retention window \
           has passed, journals are truncated up to it.")

let no_truncate_arg =
  Arg.(
    value & flag
    & info [ "no-truncate" ]
        ~doc:
          "Keep taking checkpoints but never truncate the journals — the \
           unbounded-memory comparison arm of the mem5 benchmark.")

let follower_reads_arg =
  Arg.(
    value & flag
    & info [ "follower-reads" ]
        ~doc:
          "Serve watermark-snapshot reads from every replica: read-only \
           client sessions hit lease-holding followers (and the leader) at \
           a pin no higher than the release watermark. Requires a workload \
           with a read_op ($(b,ycsb)).")

let read_lease_arg =
  Arg.(
    value
    & opt int (Rolis.Config.default.Rolis.Config.read_lease / Sim.Engine.us)
    & info [ "read-lease-us" ]
        ~doc:
          "Follower freshness-lease duration in microseconds (must be \
           smaller than the election timeout — that gap is the fencing \
           margin).")

let wan_profile_arg =
  Arg.(
    value & opt string ""
    & info [ "wan-profile" ]
        ~doc:
          "Named inter-region latency matrix applied to every link \
           (replicas and clients round-robin over the regions): \
           $(b,wan3) (3 regions, ~30 ms cross-region), $(b,metro3) \
           (~1 ms). Empty = uniform latency.")

let shards_arg =
  Arg.(
    value & opt int 1
    & info [ "shards" ]
        ~doc:
          "Deploy this many complete shard groups (each a full replicated \
           cluster) behind a key-range router, with cross-shard \
           transactions committed through replicated 2PC. 1 = the classic \
           single-group path, bit-identical to builds without the flag.")

let cross_pct_arg =
  Arg.(
    value & opt float 0.0
    & info [ "cross-pct" ]
        ~doc:
          "Fraction of transactions spanning two shards (0.0-1.0): remote \
           NewOrder/Payment for TPC-C, cross-range RMW pairs for YCSB. \
           Only meaningful with $(b,--shards) > 1.")

let drivers_arg =
  Arg.(
    value & opt int 16
    & info [ "drivers" ]
        ~doc:
          "Closed-loop driver processes issuing transactions to a sharded \
           deployment (each holds one session per shard).")

let run_cmd =
  let term =
    Term.(
      const run_cluster $ workload_arg $ workers_arg $ cores_arg $ batch_arg
      $ batch_policy_arg $ replay_batch_arg $ replay_parallel_arg
      $ hash_tables_arg $ target_delay_arg $ duration_arg $ warmup_arg
      $ networked_arg $ single_arg $ crash_arg $ ckpt_interval_arg
      $ no_truncate_arg $ follower_reads_arg $ read_lease_arg $ wan_profile_arg
      $ shards_arg $ cross_pct_arg $ drivers_arg $ seed_arg)
  in
  Cmd.v (Cmd.info "run" ~doc:"Run a Rolis cluster in the simulator.") term

(* ---- chaos: seeded fault-injection runs ---- *)

(* Re-run one seed with the nemesis debug log captured to [path], so a CI
   failure ships the exact fault schedule as an artifact. Determinism
   makes the re-run identical to the original failure. *)
let dump_nemesis_log ~path ~replicas ~workers ~clients ~accounts ~duration
    ~checkpoint_interval ~history_warmup ~ops ~spares ~follower_reads
    ~read_lease ~wan_profile ~seed =
  let oc = open_out path in
  let fmt = Format.formatter_of_out_channel oc in
  let reporter =
    {
      Logs.report =
        (fun _src level ~over k msgf ->
          msgf (fun ?header:_ ?tags:_ f ->
              Format.kfprintf
                (fun fmt ->
                  Format.pp_print_newline fmt ();
                  over ();
                  k ())
                fmt
                ("[%a] " ^^ f)
                Logs.pp_level level));
    }
  in
  let saved_reporter = Logs.reporter () and saved_level = Logs.level () in
  Logs.set_reporter reporter;
  Logs.set_level (Some Logs.Debug);
  let o =
    Rolis.Chaos.run_seed ~replicas ~workers ~clients ~accounts ~duration
      ~checkpoint_interval ~history_warmup ~ops ~spares ~follower_reads
      ?read_lease ~wan_profile ~seed ()
  in
  Format.fprintf fmt "%a@." Rolis.Chaos.pp_outcome o;
  Logs.set_reporter saved_reporter;
  Logs.set_level saved_level;
  close_out oc

(* Sharded chaos: per-shard nemesis plans against a Shard deployment of
   bank partitions; checks add cross-shard atomicity and global
   conservation. Incompatible with the single-group-only extras. *)
let run_sharded_chaos seeds seed0 shards cross_pct replicas workers drivers
    accounts duration_ms verbose =
  if verbose then begin
    Logs.set_reporter (Logs.format_reporter ());
    Logs.set_level (Some Logs.Debug)
  end;
  let accounts_per_shard = max 8 (accounts / shards) in
  Printf.printf
    "chaos: %d sharded seed(s) starting at %d — %d shards (%.0f%% cross), \
     %d replicas, %d workers, %d drivers, %d accounts/shard, %d ms of \
     faults per seed\n\
     %!"
    seeds seed0 shards (100.0 *. cross_pct) replicas workers drivers
    accounts_per_shard duration_ms;
  let _, first_failure =
    try
      Rolis.Chaos.run_sharded_seeds ~shards ~cross_pct ~replicas ~workers
        ~drivers ~accounts_per_shard ~duration:(duration_ms * ms) ~seed0 ~seeds
        ~on_outcome:(fun o -> Format.printf "%a@." Rolis.Chaos.pp_outcome o)
        ()
    with Invalid_argument msg ->
      Printf.eprintf "chaos: invalid parameters: %s\n" msg;
      exit 2
  in
  match first_failure with
  | None -> Printf.printf "chaos: all %d sharded seed(s) passed\n" seeds
  | Some o ->
      Printf.printf
        "chaos: FIRST FAILING SEED = %d (reproduce with --shards %d --seeds 1 \
         --seed0 %d)\n"
        o.Rolis.Chaos.seed shards o.Rolis.Chaos.seed;
      exit 1

let run_chaos seeds seed0 replicas workers clients accounts duration_ms
    ckpt_interval_ms history_warmup_ms ops spares follower_reads read_lease_us
    wan_profile shards cross_pct verbose nemesis_log =
  if shards > 1 then begin
    if ops || follower_reads || ckpt_interval_ms > 0 then begin
      Printf.eprintf
        "chaos: --shards is incompatible with --ops, --follower-reads and \
         --checkpoint-interval (checkpoint truncation would drop \
         decision-carrying slots the cross-shard oracle needs)\n";
      exit 2
    end;
    run_sharded_chaos seeds seed0 shards cross_pct replicas workers clients
      accounts duration_ms verbose;
    exit 0
  end;
  if verbose then begin
    Logs.set_reporter (Logs.format_reporter ());
    Logs.set_level (Some Logs.Debug)
  end;
  Printf.printf
    "chaos: %d seed(s) starting at %d — %d replicas, %d workers, %d clients, \
     %d accounts, %d ms of faults per seed%s%s\n\
     %!"
    seeds seed0 replicas workers clients accounts duration_ms
    (if ckpt_interval_ms > 0 then
       Printf.sprintf ", checkpoints every %d ms (+%d ms history warm-up)"
         ckpt_interval_ms history_warmup_ms
     else "")
    (if ops then
       Printf.sprintf ", rolling operations over %d spare slot(s)" spares
     else "");
  if follower_reads then
    Printf.printf "chaos: follower reads ON%s%s\n%!"
      (if read_lease_us > 0 then Printf.sprintf " (lease %d us)" read_lease_us
       else "")
      (if wan_profile <> "" then Printf.sprintf ", WAN profile %s" wan_profile
       else "");
  let duration = duration_ms * ms in
  let checkpoint_interval = ckpt_interval_ms * ms in
  let history_warmup = history_warmup_ms * ms in
  let read_lease =
    if read_lease_us > 0 then Some (read_lease_us * Sim.Engine.us) else None
  in
  let _, first_failure =
    try
      Rolis.Chaos.run_seeds ~replicas ~workers ~clients ~accounts ~duration
        ~checkpoint_interval ~history_warmup ~ops ~spares ~follower_reads
        ?read_lease ~wan_profile ~seed0 ~seeds
        ~on_outcome:(fun o -> Format.printf "%a@." Rolis.Chaos.pp_outcome o)
        ()
    with Invalid_argument msg ->
      Printf.eprintf "chaos: invalid parameters: %s\n" msg;
      exit 2
  in
  match first_failure with
  | None -> Printf.printf "chaos: all %d seed(s) passed\n" seeds
  | Some o ->
      let seed = o.Rolis.Chaos.seed in
      Printf.printf "chaos: FIRST FAILING SEED = %d (reproduce with --seeds 1 --seed0 %d)\n"
        seed seed;
      (match nemesis_log with
      | Some path ->
          dump_nemesis_log ~path ~replicas ~workers ~clients ~accounts ~duration
            ~checkpoint_interval ~history_warmup ~ops ~spares ~follower_reads
            ~read_lease ~wan_profile ~seed;
          Printf.printf "chaos: nemesis log for seed %d written to %s\n" seed path
      | None -> ());
      exit 1

let seeds_arg = Arg.(value & opt int 20 & info [ "seeds" ] ~doc:"Number of seeds to run.")
let seed0_arg = Arg.(value & opt int 1 & info [ "seed0" ] ~doc:"First seed.")

let replicas_arg =
  Arg.(value & opt int 3 & info [ "replicas" ] ~doc:"Replicas in the cluster.")

let chaos_workers_arg =
  Arg.(value & opt int 4 & info [ "workers" ] ~doc:"Database worker threads.")

let clients_arg =
  Arg.(
    value & opt int 8
    & info [ "clients" ]
        ~doc:
          "Retrying client sessions driving the bank end-to-end (timeouts, \
           leader redirects, exactly-once dedup across failover). 0 falls \
           back to the embedded per-worker generator.")

let accounts_arg =
  Arg.(value & opt int 48 & info [ "accounts" ] ~doc:"Bank accounts in the workload.")

let chaos_duration_arg =
  Arg.(
    value & opt int 3000
    & info [ "duration-ms" ] ~doc:"Virtual time under fault injection (ms).")

let chaos_ckpt_interval_arg =
  Arg.(
    value & opt int 0
    & info [ "checkpoint-interval" ]
        ~doc:
          "Follower fuzzy-checkpoint cadence in virtual ms (0 = checkpointing \
           off). Retention is pinned to the election timeout so truncation \
           rounds fire during the run.")

let history_warmup_arg =
  Arg.(
    value & opt int 0
    & info [ "history-warmup" ]
        ~doc:
          "Extra fault-free virtual ms before the nemesis starts — grows the \
           journals (and, with checkpointing on, lets truncation fire) so \
           crashes land on a long, already-compacted history.")

let ops_arg =
  Arg.(
    value & flag
    & info [ "ops" ]
        ~doc:
          "Rolling-operations nemesis instead of crash/partition chaos: \
           add-replica, remove-replica, planned leader handoff, and rolling \
           restarts while clients keep committing. Turns checkpointing on \
           (joining learners bootstrap from the newest image + tail) and \
           additionally checks membership agreement.")

let spares_arg =
  Arg.(
    value & opt int 2
    & info [ "spares" ]
        ~doc:
          "Dark spare pool slots add-replica may bring in as voters (ops \
           mode only).")

let verbose_arg =
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Log every nemesis action.")

let nemesis_log_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "nemesis-log" ]
        ~doc:
          "On failure, re-run the first failing seed with debug logging and \
           write the full nemesis/fault schedule to this file (CI artifact).")

let chaos_follower_reads_arg =
  Arg.(
    value & flag
    & info [ "follower-reads" ]
        ~doc:
          "Add read-only client sessions driving watermark-snapshot balance \
           reads at the whole replica pool during the faults, and run the \
           snapshot-read oracle at the end (no read above its pin, none \
           torn, lease-lapsed followers never serve).")

let chaos_read_lease_arg =
  Arg.(
    value & opt int 0
    & info [ "read-lease-us" ]
        ~doc:
          "Follower freshness-lease duration in microseconds (0 = the \
           chaos default, 150 ms against the 300 ms election timeout).")

let chaos_wan_profile_arg =
  Arg.(
    value & opt string ""
    & info [ "wan-profile" ]
        ~doc:
          "Named inter-region latency matrix ($(b,wan3), $(b,metro3)); \
           empty = uniform.")

let chaos_shards_arg =
  Arg.(
    value & opt int 1
    & info [ "shards" ]
        ~doc:
          "Run the sharded chaos harness instead: this many bank shard \
           groups under independent per-shard nemesis plans, with \
           cross-shard transfers committed through replicated 2PC. The \
           $(b,--clients) sessions become cross-shard drivers and \
           $(b,--accounts) is split across the shards. Adds the \
           cross-shard atomicity and global-conservation checks.")

let chaos_cross_pct_arg =
  Arg.(
    value & opt float 0.2
    & info [ "cross-pct" ]
        ~doc:
          "Fraction of transfers spanning two shards (sharded mode only).")

let chaos_cmd =
  let term =
    Term.(
      const run_chaos $ seeds_arg $ seed0_arg $ replicas_arg $ chaos_workers_arg
      $ clients_arg $ accounts_arg $ chaos_duration_arg $ chaos_ckpt_interval_arg
      $ history_warmup_arg $ ops_arg $ spares_arg $ chaos_follower_reads_arg
      $ chaos_read_lease_arg $ chaos_wan_profile_arg $ chaos_shards_arg
      $ chaos_cross_pct_arg $ verbose_arg $ nemesis_log_arg)
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run seeded fault-injection (crash/restart/partition/loss) against \
          retrying client sessions and check invariants, including end-to-end \
          exactly-once; exits 1 with the first failing seed.")
    term

(* ---- trace: stage-span dump (JSONL) ---- *)

let run_trace workload workers cores batch batch_policy duration_ms warmup_ms
    sample_interval capacity seed out =
  let app =
    match workload with
    | "tpcc" ->
        Workload.Tpcc.app (Workload.Tpcc.with_warehouses Workload.Tpcc.default workers)
    | "ycsb" ->
        Workload.Ycsb.app { Workload.Ycsb.default with Workload.Ycsb.keys = 200_000 }
    | other ->
        Printf.eprintf "unknown workload %S (tpcc|ycsb)\n" other;
        exit 2
  in
  let cfg =
    {
      Rolis.Config.default with
      Rolis.Config.workers;
      cores;
      batch_size = batch;
      batch_policy = batch_policy_of_string batch_policy;
      trace_sample_interval = sample_interval;
      trace_buffer_capacity = capacity;
      seed = Int64.of_int seed;
    }
  in
  let cluster = Rolis.Cluster.create cfg app in
  Rolis.Cluster.run cluster ~warmup:(warmup_ms * ms) ~duration:(duration_ms * ms) ();
  let oc = match out with Some path -> open_out path | None -> stdout in
  let count = ref 0 in
  Array.iter
    (fun r ->
      let rid = Rolis.Replica.id r in
      List.iter
        (fun (sp : Rolis.Trace.span) ->
          let line =
            Report.Json.Obj
              [
                ("replica", Report.Json.Int rid);
                ("worker", Report.Json.Int sp.Rolis.Trace.sp_worker);
                ( "stage",
                  Report.Json.String (Rolis.Trace.stage_name sp.Rolis.Trace.sp_stage) );
                ("ts", Report.Json.Int sp.Rolis.Trace.sp_ts);
                ("start_ns", Report.Json.Int sp.Rolis.Trace.sp_start);
                ("end_ns", Report.Json.Int sp.Rolis.Trace.sp_end);
                ("dropped", Report.Json.Bool sp.Rolis.Trace.sp_dropped);
              ]
          in
          output_string oc (Report.Json.to_string line);
          output_char oc '\n';
          incr count)
        (Rolis.Trace.spans (Rolis.Replica.trace r)))
    (Rolis.Cluster.replicas cluster);
  if out <> None then close_out oc else flush stdout;
  (* The summary goes to stderr so `rolis-cli trace | jq` stays clean. *)
  Printf.eprintf "%d spans (1-in-%d sampling, %d workers); stage breakdown:\n" !count
    sample_interval workers;
  List.iter
    (fun (stage, n, p50, p95, p99) ->
      Printf.eprintf "  %-18s %7d spans  p50 %9.3f ms  p95 %9.3f ms  p99 %9.3f ms\n"
        stage n
        (float_of_int p50 /. 1e6)
        (float_of_int p95 /. 1e6)
        (float_of_int p99 /. 1e6))
    (Rolis.Cluster.stage_breakdown cluster)

let sample_interval_arg =
  Arg.(
    value
    & opt int Rolis.Config.default.Rolis.Config.trace_sample_interval
    & info [ "sample-interval" ]
        ~doc:"Record spans for every N-th committed transaction per worker.")

let capacity_arg =
  Arg.(
    value
    & opt int Rolis.Config.default.Rolis.Config.trace_buffer_capacity
    & info [ "capacity" ] ~doc:"Spans retained per ring buffer.")

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write JSONL here instead of stdout.")

let trace_cmd =
  let term =
    Term.(
      const run_trace $ workload_arg $ workers_arg $ cores_arg $ batch_arg
      $ batch_policy_arg $ duration_arg $ warmup_arg $ sample_interval_arg
      $ capacity_arg $ seed_arg $ out_arg)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run a Rolis cluster with stage-level pipeline tracing and dump the \
          sampled spans as JSONL (one object per span); a per-stage latency \
          summary goes to stderr.")
    term

(* ---- bench-diff: the CI perf-regression gate ---- *)

let run_bench_diff baseline_path current_path tolerance =
  let load path =
    let ic =
      try open_in_bin path
      with Sys_error e ->
        Printf.eprintf "bench-diff: %s\n" e;
        exit 2
    in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match Report.Schema.of_string s with
    | Ok r -> r
    | Error e ->
        Printf.eprintf "bench-diff: %s: %s\n" path e;
        exit 2
  in
  if tolerance < 0.0 then begin
    Printf.eprintf "bench-diff: tolerance must be non-negative\n";
    exit 2
  end;
  let baseline = load baseline_path in
  let current = load current_path in
  let outcome = Report.Diff.compare_reports ~tolerance ~baseline ~current in
  Format.printf "%a@." Report.Diff.pp outcome;
  if not (Report.Diff.ok outcome) then exit 1

let baseline_path_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"BASELINE" ~doc:"Baseline report (committed reference).")

let current_path_arg =
  Arg.(
    required
    & pos 1 (some string) None
    & info [] ~docv:"CURRENT" ~doc:"Freshly produced report to check.")

let tolerance_arg =
  Arg.(
    value & opt float 0.15
    & info [ "tolerance" ]
        ~doc:"Allowed relative slowdown before a metric counts as regressed.")

let bench_diff_cmd =
  let term =
    Term.(const run_bench_diff $ baseline_path_arg $ current_path_arg $ tolerance_arg)
  in
  Cmd.v
    (Cmd.info "bench-diff"
       ~doc:
         "Compare two BENCH_rolis.json reports and exit non-zero when any \
          gated metric regressed beyond the tolerance or baseline coverage \
          is missing.")
    term

(* ---- baseline ---- *)

let run_baseline system threads duration_ms workload =
  let duration = duration_ms * ms in
  match system with
  | "silo" ->
      let app =
        match workload with
        | "ycsb" -> Workload.Ycsb.app { Workload.Ycsb.default with Workload.Ycsb.keys = 200_000 }
        | _ -> Workload.Tpcc.app (Workload.Tpcc.with_warehouses Workload.Tpcc.default threads)
      in
      let r = Baselines.Silo_only.run ~workers:threads ~duration ~app () in
      Printf.printf "silo: %s TPS (aborts %d, cpu %.0f%%)\n"
        (fmt_tps r.Baselines.Silo_only.tps)
        r.Baselines.Silo_only.conflict_aborts
        (100.0 *. r.Baselines.Silo_only.cpu_utilization)
  | "2pl" ->
      let r = Baselines.Twopl.run ~partitions:threads ~duration () in
      Printf.printf "2pl: %s TPS, p50 %.1f ms (aborts %d)\n"
        (fmt_tps r.Baselines.Twopl.tps)
        (float_of_int r.Baselines.Twopl.p50_latency /. 1e6)
        r.Baselines.Twopl.aborted
  | "calvin" ->
      let r = Baselines.Calvin.run ~partitions:threads ~replication:true ~duration () in
      Printf.printf "calvin: %s TPS, p50 %.1f ms\n"
        (fmt_tps r.Baselines.Calvin.tps)
        (float_of_int r.Baselines.Calvin.p50_latency /. 1e6)
  | "meerkat" ->
      let params =
        if workload = "ycsb" then { Workload.Ycsb.default with Workload.Ycsb.keys = 200_000 }
        else Workload.Ycsb.ycsb_t
      in
      let r = Baselines.Meerkat.run ~threads ~params ~duration () in
      Printf.printf "meerkat: %s TPS, p50 %.3f ms (aborts %d)\n"
        (fmt_tps r.Baselines.Meerkat.tps)
        (float_of_int r.Baselines.Meerkat.p50_latency /. 1e6)
        r.Baselines.Meerkat.aborted
  | other ->
      Printf.eprintf "unknown system %S (silo|2pl|calvin|meerkat)\n" other;
      exit 2

let system_arg =
  Arg.(
    value & opt string "silo"
    & info [ "system"; "s" ] ~doc:"Baseline: silo, 2pl, calvin, or meerkat.")

let threads_arg =
  Arg.(value & opt int 8 & info [ "threads"; "partitions" ] ~doc:"Threads / partitions.")

let baseline_workload_arg =
  Arg.(value & opt string "tpcc" & info [ "workload"; "w" ] ~doc:"tpcc, ycsb, or ycsb-t.")

let baseline_cmd =
  let term =
    Term.(const run_baseline $ system_arg $ threads_arg $ duration_arg $ baseline_workload_arg)
  in
  Cmd.v (Cmd.info "baseline" ~doc:"Run a baseline system (Silo/2PL/Calvin/Meerkat).") term

let () =
  let doc = "Rolis (EuroSys 2022) reproduction - simulator CLI" in
  let info = Cmd.info "rolis-cli" ~doc in
  exit (Cmd.eval (Cmd.group info [ run_cmd; chaos_cmd; baseline_cmd; trace_cmd; bench_diff_cmd ]))
